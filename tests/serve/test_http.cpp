#include "serve/http.h"

#include <gtest/gtest.h>

#include <string>

namespace sqz::serve {
namespace {

TEST(Http, ParsesSimpleRequest) {
  const std::string wire =
      "POST /v1/simulate HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 2\r\n"
      "\r\n"
      "{}";
  HttpRequest req;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(parse_http_request(wire, req, consumed, &error), ParseStatus::Ok)
      << error;
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.target, "/v1/simulate");
  EXPECT_EQ(req.version, "HTTP/1.1");
  EXPECT_EQ(req.body, "{}");
  ASSERT_NE(req.header("content-type"), nullptr);  // case-insensitive
  EXPECT_EQ(*req.header("content-type"), "application/json");
  EXPECT_EQ(req.header("X-Missing"), nullptr);
}

TEST(Http, RequestWithoutBodyNeedsNoContentLength) {
  const std::string wire = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  HttpRequest req;
  std::size_t consumed = 0;
  ASSERT_EQ(parse_http_request(wire, req, consumed, nullptr), ParseStatus::Ok);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_TRUE(req.body.empty());
}

TEST(Http, IncrementalParseReportsNeedMore) {
  const std::string wire =
      "POST /v1/simulate HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
  HttpRequest req;
  std::size_t consumed = 0;
  // Every proper prefix is incomplete; the full message parses.
  for (std::size_t n = 0; n < wire.size(); ++n) {
    EXPECT_EQ(parse_http_request(wire.substr(0, n), req, consumed, nullptr),
              ParseStatus::NeedMore)
        << "prefix length " << n;
  }
  ASSERT_EQ(parse_http_request(wire, req, consumed, nullptr), ParseStatus::Ok);
  EXPECT_EQ(req.body, "abcd");
}

TEST(Http, PipelinedMessagesConsumeOneAtATime) {
  const std::string one = "GET /healthz HTTP/1.1\r\n\r\n";
  const std::string wire = one + one;
  HttpRequest req;
  std::size_t consumed = 0;
  ASSERT_EQ(parse_http_request(wire, req, consumed, nullptr), ParseStatus::Ok);
  EXPECT_EQ(consumed, one.size());
}

TEST(Http, RejectsMalformedRequests) {
  const char* bad[] = {
      "NOT A REQUEST\r\n\r\n",                           // no version
      "GET /x HTTP/2.0\r\n\r\n",                         // unsupported version
      "GET /x HTTP/1.1\r\nBad header\r\n\r\n",           // no colon
      "GET /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n",   // negative length
      "GET /x HTTP/1.1\r\nContent-Length: pig\r\n\r\n",  // non-numeric
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",  // no chunked
  };
  for (const char* wire : bad) {
    HttpRequest req;
    std::size_t consumed = 0;
    std::string error;
    EXPECT_EQ(parse_http_request(wire, req, consumed, &error),
              ParseStatus::Error)
        << wire;
    EXPECT_FALSE(error.empty()) << wire;
  }
}

TEST(Http, RequestSerializeRoundTrips) {
  HttpRequest req;
  req.method = "POST";
  req.target = "/v1/sweep";
  req.headers.emplace_back("Content-Type", "application/json");
  req.body = "{\"model\":\"sqnxt23\"}";
  const std::string wire = req.serialize();

  HttpRequest back;
  std::size_t consumed = 0;
  ASSERT_EQ(parse_http_request(wire, back, consumed, nullptr), ParseStatus::Ok);
  EXPECT_EQ(back.method, req.method);
  EXPECT_EQ(back.target, req.target);
  EXPECT_EQ(back.body, req.body);
  ASSERT_NE(back.header("Content-Length"), nullptr);
  EXPECT_EQ(*back.header("Content-Length"), "19");
}

TEST(Http, ResponseSerializeRoundTrips) {
  const HttpResponse resp = make_response(200, "application/json", "{\"a\":1}");
  const std::string wire = resp.serialize();

  HttpResponse back;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(parse_http_response(wire, back, consumed, &error), ParseStatus::Ok)
      << error;
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(back.status, 200);
  EXPECT_EQ(back.reason, "OK");
  EXPECT_EQ(back.body, "{\"a\":1}");
  ASSERT_NE(back.header("content-type"), nullptr);
  EXPECT_EQ(*back.header("content-type"), "application/json");
}

TEST(Http, MakeResponseKnowsStandardReasons) {
  EXPECT_EQ(make_response(400, "text/plain", "").reason, "Bad Request");
  EXPECT_EQ(make_response(404, "text/plain", "").reason, "Not Found");
  EXPECT_EQ(make_response(405, "text/plain", "").reason, "Method Not Allowed");
  EXPECT_EQ(make_response(500, "text/plain", "").reason,
            "Internal Server Error");
}

TEST(Http, EmptyBodyResponseStillFramesWithContentLength) {
  const HttpResponse resp = make_response(404, "text/plain", "");
  EXPECT_NE(resp.serialize().find("Content-Length: 0\r\n"), std::string::npos);
}

TEST(Http, WantsCloseSemantics) {
  HttpRequest req;  // HTTP/1.1 defaults to keep-alive
  EXPECT_FALSE(req.wants_close());
  req.headers.emplace_back("Connection", "close");
  EXPECT_TRUE(req.wants_close());

  HttpRequest old;
  old.version = "HTTP/1.0";
  EXPECT_TRUE(old.wants_close());
}

}  // namespace
}  // namespace sqz::serve
