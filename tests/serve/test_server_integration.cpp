// Loopback integration: an in-process sqzserved Server must answer with the
// exact bytes the local CLI produces (`sqzsim --json` for /v1/simulate,
// `sqzsim --dump-rf-sweep` for /v1/sweep), and repeated requests must come
// out of the content-addressed cache. Running the server in-process keeps
// the report provenance (jobs, host concurrency) identical on both sides,
// which is what makes byte-for-byte comparison meaningful.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/cli.h"
#include "serve/http.h"
#include "serve/server.h"
#include "util/json_parse.h"

namespace sqz::serve {
namespace {

namespace fs = std::filesystem;

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun cli(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = core::run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

HttpResponse post(int port, const std::string& target,
                  const std::string& body) {
  HttpRequest req;
  req.method = "POST";
  req.target = target;
  req.headers.emplace_back("Content-Type", "application/json");
  req.body = body;
  return http_fetch("127.0.0.1", port, std::move(req));
}

HttpResponse get(int port, const std::string& target) {
  HttpRequest req;
  req.method = "GET";
  req.target = target;
  return http_fetch("127.0.0.1", port, std::move(req));
}

// One ephemeral-port server shared by the suite (startup is cheap, but the
// simulations behind the identity checks are not worth repeating per test).
class ServerIntegration : public ::testing::Test {
 protected:
  static Server* server_;

  static void SetUpTestSuite() {
    ServerOptions opt;
    opt.port = 0;  // ephemeral
    opt.cache_entries = 64;
    server_ = new Server(opt);
    server_->start();
  }

  static void TearDownTestSuite() {
    delete server_;  // ~Server drains and joins
    server_ = nullptr;
  }

  int port() const { return server_->port(); }
};

Server* ServerIntegration::server_ = nullptr;

TEST_F(ServerIntegration, HealthzAnswersOk) {
  const HttpResponse r = get(port(), "/healthz");
  EXPECT_EQ(r.status, 200);  // the bare liveness contract: 200 = alive
  // The body is a readiness JSON document now; probe the load-bearing
  // members rather than pinning every byte.
  const util::JsonValue doc = util::parse_json(r.body);
  EXPECT_EQ(doc.at("status").as_string(), "ok");
  EXPECT_GE(doc.at("requests_in_flight").as_int(), 1);  // this request
  EXPECT_GE(doc.at("dispatch_queue_depth").as_int(), 0);
  EXPECT_EQ(doc.at("cache").at("disk_tier").as_string(), "disabled");
  EXPECT_FALSE(doc.at("journal").at("enabled").as_bool());
  EXPECT_FALSE(doc.at("coordinator").at("enabled").as_bool());
  EXPECT_EQ(doc.at("coordinator").at("workers").as_int(), 0);
}

TEST_F(ServerIntegration, SimulateMatchesLocalJsonByteForByte) {
  const fs::path json = fs::temp_directory_path() / "sqz_serve_local.json";
  const CliRun local = cli({"--model", "squeezenet11", "--json", json.string()});
  ASSERT_EQ(local.code, 0) << local.err;
  const std::string expected = read_file(json);
  fs::remove(json);
  ASSERT_FALSE(expected.empty());

  const HttpResponse r =
      post(port(), "/v1/simulate", R"({"model":"squeezenet11"})");
  ASSERT_EQ(r.status, 200) << r.body;
  EXPECT_EQ(r.body, expected);  // byte-identical to `sqzsim --json`
}

TEST_F(ServerIntegration, RepeatRequestsAreServedFromCache) {
  const std::string body =
      R"({"model":"squeezenet11","config":{"rf_entries":8}})";
  const std::uint64_t hits_before = server_->cache().stats().hits;

  const HttpResponse first = post(port(), "/v1/simulate", body);
  ASSERT_EQ(first.status, 200) << first.body;
  ASSERT_NE(first.header("X-Sqz-Cache"), nullptr);
  EXPECT_EQ(*first.header("X-Sqz-Cache"), "miss");

  const HttpResponse second = post(port(), "/v1/simulate", body);
  ASSERT_EQ(second.status, 200);
  ASSERT_NE(second.header("X-Sqz-Cache"), nullptr);
  EXPECT_EQ(*second.header("X-Sqz-Cache"), "hit");
  EXPECT_EQ(second.body, first.body);
  EXPECT_EQ(server_->cache().stats().hits, hits_before + 1);

  // /metrics reflects the counter.
  const HttpResponse metrics = get(port(), "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("sqzserved_cache_hits_total " +
                              std::to_string(hits_before + 1)),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("sqzserved_requests_total"), std::string::npos);
}

TEST_F(ServerIntegration, ConnectModeMatchesLocalJsonByteForByte) {
  const fs::path json = fs::temp_directory_path() / "sqz_serve_connect.json";
  const CliRun local = cli({"--model", "tinydarknet", "--json", json.string()});
  ASSERT_EQ(local.code, 0) << local.err;
  const std::string expected = read_file(json);
  fs::remove(json);

  const std::string endpoint = "127.0.0.1:" + std::to_string(port());
  const CliRun remote = cli({"--connect", endpoint, "--model", "tinydarknet"});
  ASSERT_EQ(remote.code, 0) << remote.err;
  EXPECT_EQ(remote.out, expected);

  // --json writes the response to a file, same as a local run.
  const fs::path remote_json =
      fs::temp_directory_path() / "sqz_serve_connect2.json";
  const CliRun to_file = cli({"--connect", endpoint, "--model", "tinydarknet",
                              "--json", remote_json.string()});
  ASSERT_EQ(to_file.code, 0) << to_file.err;
  EXPECT_TRUE(to_file.out.empty());
  EXPECT_EQ(read_file(remote_json), expected);
  fs::remove(remote_json);
}

TEST_F(ServerIntegration, SweepMatchesLocalDumpByteForByte) {
  const CliRun local = cli({"--model", "sqnxt23", "--dump-rf-sweep"});
  ASSERT_EQ(local.code, 0) << local.err;

  const HttpResponse direct = post(
      port(), "/v1/sweep",
      R"({"model":"sqnxt23","sweep":{"knob":"rf_entries","values":[8,16]}})");
  ASSERT_EQ(direct.status, 200) << direct.body;
  EXPECT_EQ(direct.body, local.out);

  const std::string endpoint = "127.0.0.1:" + std::to_string(port());
  const CliRun remote =
      cli({"--connect", endpoint, "--model", "sqnxt23", "--dump-rf-sweep"});
  ASSERT_EQ(remote.code, 0) << remote.err;
  EXPECT_EQ(remote.out, local.out);
}

TEST_F(ServerIntegration, ErrorPathsMapToHttpStatuses) {
  EXPECT_EQ(get(port(), "/nope").status, 404);
  EXPECT_EQ(get(port(), "/v1/simulate").status, 405);

  const HttpResponse bad = post(port(), "/v1/simulate", "{not json");
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(bad.body.find("\"error\""), std::string::npos);

  const HttpResponse unknown =
      post(port(), "/v1/simulate", R"({"model":"resnet50"})");
  EXPECT_EQ(unknown.status, 400);
  EXPECT_NE(unknown.body.find("unknown model"), std::string::npos);
}

TEST_F(ServerIntegration, CliConnectRejectsLocalOnlyFlagsAndBadEndpoints) {
  const std::string endpoint = "127.0.0.1:" + std::to_string(port());
  const CliRun csv =
      cli({"--connect", endpoint, "--model", "sqnxt23", "--csv"});
  EXPECT_EQ(csv.code, 1);
  EXPECT_NE(csv.err.find("local-only"), std::string::npos);

  EXPECT_EQ(cli({"--connect", "nocolon"}).code, 1);
  EXPECT_EQ(cli({"--connect", "127.0.0.1:notaport"}).code, 1);
  // Nothing listens on port 1: connect refused maps to a clean failure.
  // --retries 0 keeps the test fast (the default client policy retries).
  const CliRun refused = cli({"--connect", "127.0.0.1:1", "--retries", "0"});
  EXPECT_EQ(refused.code, 1);
  EXPECT_FALSE(refused.err.empty());
  EXPECT_EQ(cli({"--connect", "127.0.0.1:1", "--retries", "pig"}).code, 1);
}

TEST_F(ServerIntegration, ConcurrentMixedRequestsAllSucceed) {
  std::vector<std::thread> threads;
  std::vector<int> statuses(6, 0);
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([this, t, &statuses] {
      const std::string body =
          t % 2 == 0
              ? R"({"model":"squeezenet11"})"
              : R"({"model":"squeezenet11","config":{"rf_entries":8}})";
      statuses[t] = post(port(), "/v1/simulate", body).status;
    });
  }
  for (auto& th : threads) th.join();
  for (const int s : statuses) EXPECT_EQ(s, 200);
}

TEST(ServeShutdown, StopDrainsAndIsIdempotent) {
  ServerOptions opt;
  opt.port = 0;
  Server server(opt);
  server.start();
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  EXPECT_EQ(get(server.port(), "/healthz").status, 200);
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_THROW(get(server.port(), "/healthz"), std::runtime_error);
  server.stop();  // idempotent
}

TEST(ServeShutdown, DiskCacheWarmsTheNextServer) {
  const fs::path dir = fs::temp_directory_path() / "sqz_serve_disk_cache";
  fs::remove_all(dir);
  const std::string body = R"({"model":"tinydarknet"})";

  std::string first_body;
  {
    ServerOptions opt;
    opt.port = 0;
    opt.cache_dir = dir.string();
    Server server(opt);
    server.start();
    const HttpResponse r = post(server.port(), "/v1/simulate", body);
    ASSERT_EQ(r.status, 200) << r.body;
    first_body = r.body;
  }
  {
    ServerOptions opt;
    opt.port = 0;
    opt.cache_dir = dir.string();
    Server server(opt);
    server.start();
    const HttpResponse r = post(server.port(), "/v1/simulate", body);
    ASSERT_EQ(r.status, 200);
    ASSERT_NE(r.header("X-Sqz-Cache"), nullptr);
    EXPECT_EQ(*r.header("X-Sqz-Cache"), "hit");  // warmed from disk
    EXPECT_EQ(r.body, first_body);
    EXPECT_EQ(server.cache().stats().disk_hits, 1u);
  }
  fs::remove_all(dir);
}

TEST(ServeSweepJournal, DaemonRestartResumesJournaledSweeps) {
  const fs::path dir = fs::temp_directory_path() / "sqz_served_journal";
  fs::remove_all(dir);
  const std::string body =
      R"({"model":"squeezenet11","sweep":{"knob":"rf_entries","values":[8,16]}})";

  std::string first_body;
  {
    ServerOptions opt;
    opt.port = 0;
    opt.sweep_journal_dir = dir.string();
    Server server(opt);
    server.start();
    const HttpResponse r = post(server.port(), "/v1/sweep", body);
    ASSERT_EQ(r.status, 200) << r.body;
    first_body = r.body;
    const auto m = server.metrics().snapshot();
    EXPECT_EQ(m.sweep_points_total, 2u);
    EXPECT_EQ(m.sweep_point_errors_total, 0u);
    EXPECT_EQ(m.sweep_resumed_total, 0u);
  }
  {
    // Restarted daemon, same journal dir, empty in-memory cache: the sweep
    // restores from the journal instead of re-simulating, byte-identically.
    ServerOptions opt;
    opt.port = 0;
    opt.sweep_journal_dir = dir.string();
    Server server(opt);
    server.start();
    const HttpResponse r = post(server.port(), "/v1/sweep", body);
    ASSERT_EQ(r.status, 200) << r.body;
    EXPECT_EQ(r.body, first_body);
    EXPECT_EQ(server.metrics().snapshot().sweep_resumed_total, 2u);
  }
  fs::remove_all(dir);
}

TEST(ServeSweepJournal, PartialSweepCountsOnMetricsAndIsNotCached) {
  ServerOptions opt;
  opt.port = 0;
  Server server(opt);
  server.start();
  const std::string body =
      R"({"model":"squeezenet11","sweep":{"knob":"array_n","values":[16,2000]}})";

  const HttpResponse first = post(server.port(), "/v1/sweep", body);
  ASSERT_EQ(first.status, 200) << first.body;  // partial, not a 4xx/5xx
  EXPECT_NE(first.body.find("\"errors\""), std::string::npos);
  EXPECT_NE(first.body.find("\"phase\": \"validate\""), std::string::npos);

  // The repeat is a miss (partial bodies are never cached) with identical
  // bytes, and the counters account for both runs.
  const HttpResponse second = post(server.port(), "/v1/sweep", body);
  ASSERT_EQ(second.status, 200);
  ASSERT_NE(second.header("X-Sqz-Cache"), nullptr);
  EXPECT_EQ(*second.header("X-Sqz-Cache"), "miss");
  EXPECT_EQ(second.body, first.body);

  const auto m = server.metrics().snapshot();
  EXPECT_EQ(m.sweep_points_total, 2u);        // one good point per run
  EXPECT_EQ(m.sweep_point_errors_total, 2u);  // one failure per run
  EXPECT_EQ(m.sweeps_partial_total, 2u);

  const HttpResponse metrics = get(server.port(), "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("sqzserved_sweep_points_total 2"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("sqzserved_sweep_point_errors_total 2"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("sqzserved_sweeps_partial_total 2"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("sqzserved_sweep_resumed_total 0"),
            std::string::npos);
}

}  // namespace
}  // namespace sqz::serve
