#include "serve/api.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/cli.h"
#include "core/config_io.h"
#include "core/report.h"
#include "core/sweepjournal.h"
#include "nn/serialize.h"
#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "util/json_parse.h"

namespace sqz::serve {
namespace {

// Assert that parsing `body` as a simulate request raises ApiError(400)
// whose message mentions `needle`.
void expect_bad_simulate(const std::string& body, const std::string& needle) {
  try {
    parse_simulate_request(body);
    FAIL() << "expected ApiError for: " << body;
  } catch (const ApiError& e) {
    EXPECT_EQ(e.status(), 400) << body;
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message '" << e.what() << "' lacks '" << needle << "'";
  }
}

void expect_bad_sweep(const std::string& body, const std::string& needle) {
  try {
    parse_sweep_request(body);
    FAIL() << "expected ApiError for: " << body;
  } catch (const ApiError& e) {
    EXPECT_EQ(e.status(), 400) << body;
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message '" << e.what() << "' lacks '" << needle << "'";
  }
}

TEST(Api, ParsesMinimalSimulateRequest) {
  const SimulateRequest req = parse_simulate_request(R"({"model":"sqnxt23"})");
  EXPECT_EQ(req.model_label, "sqnxt23");
  EXPECT_EQ(req.model.name(), nn::zoo::squeezenext().name());
  // Config and options take their defaults.
  EXPECT_EQ(req.config.rf_entries,
            sim::AcceleratorConfig::squeezelerator().rf_entries);
  EXPECT_EQ(req.options.objective, sched::Objective::Cycles);
  EXPECT_FALSE(req.options.tile_timeline);
  EXPECT_TRUE(req.options.double_buffered);
}

TEST(Api, ConfigKnobsAndOptionsApply) {
  const SimulateRequest req = parse_simulate_request(
      R"({"model":"squeezenet11",
          "config":{"rf_entries":8,"weight_sparsity":0.4,"support":"ws"},
          "options":{"objective":"energy","tile_search":true}})");
  EXPECT_EQ(req.config.rf_entries, 8);
  EXPECT_DOUBLE_EQ(req.config.weight_sparsity, 0.4);
  EXPECT_EQ(req.config.support, sim::DataflowSupport::WsOnly);
  EXPECT_EQ(req.options.objective, sched::Objective::Energy);
  EXPECT_TRUE(req.options.tile_search);
  EXPECT_TRUE(req.options.tile_timeline);  // implied, as with the CLI flag
}

TEST(Api, RejectsInvalidRequests) {
  expect_bad_simulate("not json", "not valid JSON");
  expect_bad_simulate("[1,2]", "must be a JSON object");
  expect_bad_simulate(R"({"model":"sqnxt23","bogus":1})", "unknown field");
  expect_bad_simulate("{}", "'model'");
  expect_bad_simulate(R"({"model":"sqnxt23","model_text":"x"})", "not both");
  expect_bad_simulate(R"({"model":"vgg16"})", "unknown model");
  expect_bad_simulate(R"({"model":"sqnxt23","config":{"bogus":1}})",
                      "unknown key 'bogus'");
  expect_bad_simulate(
      R"({"model":"sqnxt23","config":{},"config_ini":""})", "not both");
  expect_bad_simulate(
      R"({"model":"sqnxt23","options":{"objective":"latency"}})",
      "cycles|energy");
  expect_bad_simulate(R"({"model":"sqnxt23","options":{"bogus":true}})",
                      "unknown field");
  expect_bad_simulate(R"({"model":"sqnxt23","config":{"rf_entries":0}})", "");
}

TEST(Api, RejectsInvalidSweepRequests) {
  expect_bad_sweep(R"({"model":"sqnxt23"})", "'sweep'");
  expect_bad_sweep(
      R"({"model":"sqnxt23","sweep":{"knob":"pe_voltage","values":[1]}})",
      "sweep.knob");
  expect_bad_sweep(R"({"model":"sqnxt23","sweep":{"knob":"rf_entries"}})",
                   "'knob' and 'values'");
  expect_bad_sweep(
      R"({"model":"sqnxt23","sweep":{"knob":"rf_entries","values":[]}})",
      "non-empty");
  expect_bad_sweep(
      R"({"model":"sqnxt23","sweep":{"knob":"rf_entries","values":["8"]}})",
      "numbers");
}

TEST(Api, CanonicalKeyCollapsesModelSpellings) {
  // Zoo aliases and the inline serialized text all mean the same network,
  // so they must share one cache entry.
  const auto by_name = parse_simulate_request(R"({"model":"sqnxt23"})");
  const auto by_alias = parse_simulate_request(R"({"model":"sqnxt"})");
  EXPECT_EQ(canonical_key(by_name), canonical_key(by_alias));

  std::string text = nn::serialize_model(nn::zoo::squeezenext());
  std::string escaped;
  for (const char c : text) {
    if (c == '"' || c == '\\') escaped += '\\';
    if (c == '\n') { escaped += "\\n"; continue; }
    escaped += c;
  }
  const auto by_text =
      parse_simulate_request("{\"model_text\":\"" + escaped + "\"}");
  EXPECT_EQ(canonical_key(by_name), canonical_key(by_text));
}

TEST(Api, CanonicalKeyCollapsesConfigSpellings) {
  sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();
  cfg.rf_entries = 8;
  std::string ini = core::config_to_ini(cfg);
  std::string escaped;
  for (const char c : ini) {
    if (c == '"' || c == '\\') escaped += '\\';
    if (c == '\n') { escaped += "\\n"; continue; }
    escaped += c;
  }
  const auto knob = parse_simulate_request(
      R"({"model":"sqnxt23","config":{"rf_entries":8}})");
  const auto full = parse_simulate_request(
      "{\"model\":\"sqnxt23\",\"config_ini\":\"" + escaped + "\"}");
  EXPECT_EQ(canonical_key(knob), canonical_key(full));

  // Field order inside the request must not matter either.
  const auto reordered = parse_simulate_request(
      R"({"config":{"rf_entries":8},"model":"sqnxt23"})");
  EXPECT_EQ(canonical_key(knob), canonical_key(reordered));
}

TEST(Api, CanonicalKeySeparatesDistinctRequests) {
  const auto base = parse_simulate_request(R"({"model":"sqnxt23"})");
  const auto timeline = parse_simulate_request(
      R"({"model":"sqnxt23","options":{"timeline":true}})");
  const auto rf8 = parse_simulate_request(
      R"({"model":"sqnxt23","config":{"rf_entries":8}})");
  EXPECT_NE(canonical_key(base), canonical_key(timeline));
  EXPECT_NE(canonical_key(base), canonical_key(rf8));

  // Explicitly spelling a default is the same request.
  const auto explicit_default = parse_simulate_request(
      R"({"model":"sqnxt23","options":{"objective":"cycles"}})");
  EXPECT_EQ(canonical_key(base), canonical_key(explicit_default));
}

TEST(Api, SweepKeyCarriesTheResponseLabel) {
  // The sweep response embeds the verbatim model label in its "sweep" name,
  // so two spellings of the same network must not share response bytes.
  const auto a = parse_sweep_request(
      R"({"model":"sqnxt23","sweep":{"knob":"rf_entries","values":[8,16]}})");
  const auto b = parse_sweep_request(
      R"({"model":"sqnxt","sweep":{"knob":"rf_entries","values":[8,16]}})");
  EXPECT_NE(canonical_key(a), canonical_key(b));
  EXPECT_EQ(canonical_key(a), canonical_key(a));
}

TEST(Api, RunSimulateMatchesTheCoreReport) {
  const SimulateRequest req = parse_simulate_request(R"({"model":"squeezenet11"})");
  const sim::NetworkResult result =
      sched::simulate_network(req.model, req.config, req.options);
  EXPECT_EQ(run_simulate(req),
            core::json_report_string(req.model, result, req.options.units));
}

TEST(Api, SimServiceServesRepeatsFromCache) {
  SimCache cache(8);
  SimService service(&cache);
  const std::string body = R"({"model":"squeezenet11"})";

  const SimService::Result first = service.simulate(body);
  EXPECT_FALSE(first.cache_hit);
  const SimService::Result second = service.simulate(body);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.body, second.body);

  // An equivalent spelling of the same request also hits.
  const SimService::Result third =
      service.simulate(R"({"options":{},"model":"squeezenet11"})");
  EXPECT_TRUE(third.cache_hit);
  EXPECT_EQ(third.body, first.body);

  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(Api, SimServiceWorksWithoutACache) {
  SimService service(nullptr);
  const SimService::Result r =
      service.simulate(R"({"model":"squeezenet11"})");
  EXPECT_FALSE(r.cache_hit);
  EXPECT_FALSE(r.body.empty());
}

TEST(Api, CleanSweepFillsStatsAndCaches) {
  SimCache cache(8);
  SimService service(&cache);
  const std::string body =
      R"({"model":"squeezenet11","sweep":{"knob":"rf_entries","values":[8,16]}})";

  const SimService::Result first = service.sweep(body);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.sweep.points, 2u);
  EXPECT_EQ(first.sweep.point_errors, 0u);
  EXPECT_EQ(first.sweep.resumed, 0u);
  EXPECT_FALSE(first.sweep.partial());

  const SimService::Result second = service.sweep(body);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.body, first.body);
}

TEST(Api, PartialSweepReportsErrorsAndIsNeverCached) {
  SimCache cache(8);
  SimService service(&cache);
  // array_n=2000 fails pre-flight validation; array_n=16 simulates fine.
  const std::string body =
      R"({"model":"squeezenet11","sweep":{"knob":"array_n","values":[16,2000]}})";

  const SimService::Result r = service.sweep(body);
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(r.sweep.points, 1u);
  EXPECT_EQ(r.sweep.point_errors, 1u);
  EXPECT_TRUE(r.sweep.partial());

  const util::JsonValue doc = util::parse_json(r.body);
  ASSERT_EQ(doc.at("points").items.size(), 1u);
  ASSERT_EQ(doc.at("errors").items.size(), 1u);
  const util::JsonValue& e = doc.at("errors").at(std::size_t{0});
  EXPECT_EQ(e.at("phase").as_string(), "validate");
  EXPECT_NE(e.at("what").as_string().find("array_n=2000"), std::string::npos);

  // A partial response must not be cached: the failure may be transient,
  // and a cached body would pin it. The repeat is a miss that re-runs.
  const SimService::Result again = service.sweep(body);
  EXPECT_FALSE(again.cache_hit);
  EXPECT_EQ(again.body, r.body);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(Api, ScreenedSweepParsesKeysAndFillsStats) {
  // sweep.screen/screen_keep parse, are rejected when malformed, and are
  // appended to the canonical key only when screening — an unscreened
  // request's key (and cached body) is unchanged by the feature.
  const std::string plain =
      R"({"model":"squeezenet11","sweep":{"knob":"rf_entries","values":[2,4,8,16]}})";
  const std::string screened =
      R"({"model":"squeezenet11","sweep":{"knob":"rf_entries","values":[2,4,8,16],"screen":true,"screen_keep":0.5}})";
  EXPECT_EQ(canonical_key(parse_sweep_request(plain)),
            canonical_key(parse_sweep_request(
                R"({"model":"squeezenet11","sweep":{"knob":"rf_entries","values":[2,4,8,16],"screen":false}})")));
  EXPECT_NE(canonical_key(parse_sweep_request(plain)),
            canonical_key(parse_sweep_request(screened)));
  expect_bad_sweep(
      R"({"model":"squeezenet11","sweep":{"knob":"rf_entries","values":[8],"screen_keep":0.5}})",
      "requires sweep.screen");
  expect_bad_sweep(
      R"({"model":"squeezenet11","sweep":{"knob":"rf_entries","values":[8],"screen":true,"screen_keep":1.5}})",
      "(0, 1]");

  SimService service(nullptr);
  const SimService::Result r = service.sweep(screened);
  EXPECT_EQ(r.sweep.points, 4u);
  EXPECT_EQ(r.sweep.screen_points, 4u);
  EXPECT_EQ(r.sweep.screen_kept, 2u);  // ceil(0.5 * 4)
  EXPECT_EQ(r.sweep.screen_error_max_pct, 0.0);  // flat fidelity is exact
  EXPECT_NE(r.body.find("\"screening\":"), std::string::npos);

  const SimService::Result plain_r = service.sweep(plain);
  EXPECT_EQ(plain_r.sweep.screen_points, 0u);
  EXPECT_EQ(plain_r.body.find("\"screening\":"), std::string::npos);
}

TEST(Api, SweepJournalRestoresAcrossServiceInstances) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sqz_api_journal").string();
  std::filesystem::remove_all(dir);
  const std::string body =
      R"({"model":"squeezenet11","sweep":{"knob":"rf_entries","values":[8,16]}})";

  std::string first_body;
  {
    core::SweepJournal journal(dir);
    SimService service(nullptr, &journal);
    const SimService::Result r = service.sweep(body);
    EXPECT_EQ(r.sweep.resumed, 0u);
    EXPECT_EQ(journal.entries().size(), 2u);
    first_body = r.body;
  }
  {
    // A "restarted daemon": fresh journal object over the same directory.
    core::SweepJournal journal(dir);
    EXPECT_EQ(journal.recovery().records, 2u);
    SimService service(nullptr, &journal);
    const SimService::Result r = service.sweep(body);
    EXPECT_EQ(r.sweep.resumed, 2u);  // nothing re-simulated
    EXPECT_EQ(r.body, first_body);   // and the bytes match exactly
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sqz::serve
