// The coordinator's worker registry (serve/workerpool.h): the pure health
// state machine, table-driven over the full transition graph — time is a
// parameter, so probation windows are tested without waiting them out —
// the consistent-hash ring's routing invariants, and the dynamic-membership
// lease lifecycle (register/renew/expire/rejoin with epoch versioning).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/workerpool.h"
#include "util/faultinject.h"
#include "util/hash.h"

namespace sqz::serve {
namespace {

ProbePolicy test_policy() {
  ProbePolicy p;
  p.fail_threshold = 3;
  p.probation_ms = 1000;
  return p;
}

// --- the state machine, table-driven --------------------------------------

// One scripted event against the machine: feed a probe/dispatch outcome, or
// ask whether a probe is due (which is also the Ejected -> Probation edge).
struct Event {
  enum class Kind { Result, Due } kind;
  bool value;           // Result: the outcome. Due: the expected answer.
  std::int64_t now_ms;
  WorkerHealth expect;  // Health after the event.
};

Event result(bool ok, std::int64_t now_ms, WorkerHealth expect) {
  return {Event::Kind::Result, ok, now_ms, expect};
}
Event due(bool expect_due, std::int64_t now_ms, WorkerHealth expect) {
  return {Event::Kind::Due, expect_due, now_ms, expect};
}

struct Scenario {
  const char* name;
  std::vector<Event> events;
};

TEST(WorkerStateMachine, TransitionGraph) {
  const WorkerHealth H = WorkerHealth::Healthy;
  const WorkerHealth S = WorkerHealth::Suspect;
  const WorkerHealth E = WorkerHealth::Ejected;
  const WorkerHealth P = WorkerHealth::Probation;
  const std::vector<Scenario> scenarios = {
      {"healthy stays healthy on success",
       {result(true, 0, H), result(true, 10, H), result(true, 20, H)}},
      {"one failure makes a suspect, not a corpse",
       {result(false, 0, S), due(true, 10, S)}},
      {"a suspect recovers on the next success",
       {result(false, 0, S), result(true, 10, H)}},
      {"failures below the threshold never eject",
       {result(false, 0, S), result(false, 10, S), result(true, 20, H),
        result(false, 30, S), result(false, 40, S), result(true, 50, H)}},
      {"threshold consecutive failures eject",
       {result(false, 0, S), result(false, 10, S), result(false, 20, E)}},
      {"ejected workers are not probed inside the probation window",
       {result(false, 0, S), result(false, 10, S), result(false, 20, E),
        due(false, 500, E), due(false, 1019, E)}},
      {"the probation window elapsing grants a single trial",
       {result(false, 0, S), result(false, 10, S), result(false, 20, E),
        due(true, 1020, P)}},
      {"a passed trial readmits",
       {result(false, 0, S), result(false, 10, S), result(false, 20, E),
        due(true, 1020, P), result(true, 1030, H)}},
      {"a failed trial re-ejects and restarts the timer",
       {result(false, 0, S), result(false, 10, S), result(false, 20, E),
        due(true, 1020, P), result(false, 1030, E),
        due(false, 1040, E),          // old window origin would say due
        due(true, 2031, P)}},         // the restarted one eventually does
      {"a success observed while ejected readmits (straggling dispatch)",
       {result(false, 0, S), result(false, 10, S), result(false, 20, E),
        result(true, 100, H)}},
      {"readmission resets the failure count",
       {result(false, 0, S), result(false, 10, S), result(true, 20, H),
        result(false, 30, S), result(false, 40, S), result(false, 50, E)}},
  };

  for (const Scenario& sc : scenarios) {
    WorkerStateMachine m(test_policy());
    for (std::size_t i = 0; i < sc.events.size(); ++i) {
      const Event& e = sc.events[i];
      if (e.kind == Event::Kind::Result) {
        m.on_result(e.value, e.now_ms);
      } else {
        EXPECT_EQ(m.probe_due(e.now_ms), e.value)
            << sc.name << ", event " << i;
      }
      EXPECT_EQ(m.health(), e.expect) << sc.name << ", event " << i;
    }
  }
}

TEST(WorkerStateMachine, UsableMeansHealthyOrSuspect) {
  WorkerStateMachine m(test_policy());
  EXPECT_TRUE(m.usable());
  m.on_result(false, 0);
  EXPECT_TRUE(m.usable());  // Suspect still takes chunks
  m.on_result(false, 10);
  m.on_result(false, 20);
  EXPECT_FALSE(m.usable());  // Ejected
  m.probe_due(2000);
  EXPECT_EQ(m.health(), WorkerHealth::Probation);
  EXPECT_FALSE(m.usable());  // Probation waits for its trial
  m.on_result(true, 2010);
  EXPECT_TRUE(m.usable());
}

TEST(WorkerStateMachine, EjectionTransitionFiresOnce) {
  WorkerStateMachine m(test_policy());
  m.on_result(false, 0);
  m.on_result(false, 10);
  EXPECT_TRUE(m.on_result(false, 20).ejected);
  // Further failures while already ejected are not "new" ejections.
  EXPECT_FALSE(m.on_result(false, 30).ejected);
}

// --- the consistent-hash ring ----------------------------------------------

// Distinct loopback addresses for ring and membership tests. Ports come from
// the kernel's ephemeral range (bind port 0, learn the number, release) —
// never hard-coded — so a parallel ctest shard that *does* bind sockets can
// never race these suites into EADDRINUSE, and an accidentally started
// prober can never probe some unrelated service squatting on a fixed port.
// The fds are held until all are allocated so the ports are distinct.
std::vector<HostPort> fleet(int n) {
  std::vector<int> fds;
  std::vector<HostPort> out;
  for (int i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    out.push_back({"127.0.0.1", ntohs(addr.sin_port)});
    fds.push_back(fd);
  }
  for (const int fd : fds) ::close(fd);
  return out;
}

TEST(WorkerPoolRing, RoutingIsDeterministic) {
  WorkerPool pool(fleet(3), test_policy());
  for (int i = 0; i < 32; ++i) {
    const std::uint64_t h = util::fnv1a64("point-" + std::to_string(i));
    const int w = pool.route(h);
    ASSERT_GE(w, 0);
    ASSERT_LT(w, 3);
    EXPECT_EQ(pool.route(h), w);  // same hash, same worker, every time
  }
}

TEST(WorkerPoolRing, EveryWorkerOwnsSomeArc) {
  WorkerPool pool(fleet(3), test_policy());
  std::map<int, int> hits;
  for (int i = 0; i < 4096; ++i)
    ++hits[pool.route(util::fnv1a64("key-" + std::to_string(i)))];
  EXPECT_EQ(hits.size(), 3u) << "64 vnodes each should spread 4096 keys";
}

TEST(WorkerPoolRing, ExclusionPicksADifferentWorker) {
  WorkerPool pool(fleet(3), test_policy());
  const std::uint64_t h = util::fnv1a64("some chunk");
  const int first = pool.route(h);
  const int second = pool.route(h, {first});
  ASSERT_GE(second, 0);
  EXPECT_NE(second, first);
  const int third = pool.route(h, {first, second});
  ASSERT_GE(third, 0);
  EXPECT_NE(third, first);
  EXPECT_NE(third, second);
  EXPECT_EQ(pool.route(h, {first, second, third}), -1);
}

TEST(WorkerPoolRing, EjectionRedistributesOnlyTheDeadWorkersArcs) {
  WorkerPool pool(fleet(3), test_policy());
  std::map<std::uint64_t, int> before;
  for (int i = 0; i < 128; ++i) {
    const std::uint64_t h = util::fnv1a64("stable-" + std::to_string(i));
    before[h] = pool.route(h);
  }
  // Eject worker 0 through dispatch reports — the same signal a failed
  // chunk POST feeds.
  pool.report(0, false);
  pool.report(0, false);
  pool.report(0, false);
  EXPECT_EQ(pool.health(0), WorkerHealth::Ejected);
  EXPECT_EQ(pool.usable_count(), 2u);
  for (const auto& [h, w] : before) {
    const int now = pool.route(h);
    ASSERT_GE(now, 0);
    if (w != 0)
      EXPECT_EQ(now, w) << "a survivor's shard must not move";
    else
      EXPECT_NE(now, 0) << "the dead worker's arcs must move";
  }
}

TEST(WorkerPoolRing, AllEjectedRoutesNowhere) {
  WorkerPool pool(fleet(2), test_policy());
  for (int w = 0; w < 2; ++w)
    for (int i = 0; i < 3; ++i) pool.report(static_cast<std::size_t>(w), false);
  EXPECT_EQ(pool.usable_count(), 0u);
  EXPECT_EQ(pool.route(util::fnv1a64("anything")), -1);
  // A straggling in-flight success readmits its worker and routing resumes.
  pool.report(1, true);
  EXPECT_EQ(pool.route(util::fnv1a64("anything")), 1);
}

// --- dynamic membership & leases --------------------------------------------

TEST(WorkerPoolMembership, RegistrationAddsRoutableMemberAndBumpsEpoch) {
  const std::vector<HostPort> addrs = fleet(2);
  WorkerPool pool({addrs[0]}, test_policy());
  EXPECT_EQ(pool.epoch(), 1u);
  EXPECT_EQ(pool.member_count(), 1u);

  const WorkerPool::Registration r =
      pool.register_worker(addrs[1], /*lease_ms=*/5000, /*now_ms=*/0);
  EXPECT_TRUE(r.newly_added);
  EXPECT_EQ(r.epoch, 2u);
  EXPECT_EQ(r.lease_ms, 5000);
  EXPECT_EQ(pool.epoch(), 2u);
  EXPECT_EQ(pool.member_count(), 2u);
  EXPECT_EQ(pool.usable_count(), 2u);

  // The joiner owns arcs: some keys route to slot 1.
  bool hit = false;
  for (int i = 0; i < 512 && !hit; ++i)
    hit = pool.route(util::fnv1a64("join-" + std::to_string(i))) == 1;
  EXPECT_TRUE(hit) << "a registered worker must own some arc";
}

TEST(WorkerPoolMembership, EmptyPoolBootstrapsFromFirstRegistration) {
  // A coordinator started with --coordinator and no static --workers begins
  // with an empty ring and waits for joiners.
  WorkerPool pool({}, test_policy());
  EXPECT_EQ(pool.member_count(), 0u);
  EXPECT_EQ(pool.route(util::fnv1a64("anything")), -1);

  const HostPort joiner = fleet(1)[0];
  pool.register_worker(joiner, 1000, 0);
  EXPECT_EQ(pool.route(util::fnv1a64("anything")), 0);
}

TEST(WorkerPoolMembership, RenewalKeepsEpochAndReadmitsASuspect) {
  const HostPort w = fleet(1)[0];
  WorkerPool pool({}, test_policy());
  pool.register_worker(w, 1000, 0);
  const std::uint64_t epoch = pool.epoch();

  pool.report(0, false);
  EXPECT_EQ(pool.health(0), WorkerHealth::Suspect);

  // A heartbeat is proof of life: the renewal readmits without an epoch
  // bump — the ring did not change, so in-flight routing stays valid.
  const WorkerPool::Registration r = pool.register_worker(w, 1000, 300);
  EXPECT_FALSE(r.newly_added);
  EXPECT_EQ(r.epoch, epoch);
  EXPECT_EQ(pool.epoch(), epoch);
  EXPECT_EQ(pool.health(0), WorkerHealth::Healthy);
}

TEST(WorkerPoolMembership, LeaseFloorClampsAbsurdTtls) {
  WorkerPool pool({}, test_policy());
  const WorkerPool::Registration r =
      pool.register_worker(fleet(1)[0], /*lease_ms=*/5, /*now_ms=*/0);
  EXPECT_EQ(r.lease_ms, WorkerPool::kMinLeaseMs);
}

TEST(WorkerPoolMembership, LeaseLapseDepartsTheWorker) {
  const std::vector<HostPort> addrs = fleet(2);
  // Slot 0 is static (lease 0 = never expires); slot 1 holds a 200 ms lease.
  WorkerPool pool({addrs[0]}, test_policy());
  pool.register_worker(addrs[1], 200, /*now_ms=*/0);
  const std::uint64_t epoch = pool.epoch();

  std::vector<std::string> observed;
  pool.set_expiry_callback(
      [&](const std::vector<std::string>& e) { observed = e; });

  // Inside the TTL: nothing lapses. A renewal pushes the window out.
  EXPECT_TRUE(pool.expire_leases(150).empty());
  pool.register_worker(addrs[1], 200, /*now_ms=*/150);
  EXPECT_TRUE(pool.expire_leases(300).empty()) << "renewal must extend";

  // Silence past the TTL departs the member — and only it.
  const std::vector<std::string> expired = pool.expire_leases(351);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0],
            addrs[1].host + ":" + std::to_string(addrs[1].port));
  EXPECT_EQ(observed, expired);
  EXPECT_EQ(pool.epoch(), epoch + 1);
  EXPECT_EQ(pool.member_count(), 1u);
  EXPECT_EQ(pool.member_counts().departed, 1u);

  // The static worker's lease never lapses, no matter how late the clock.
  EXPECT_TRUE(pool.expire_leases(1'000'000'000).empty());

  // Slots are never reused: the departed worker's index is still
  // addressable, so an in-flight chunk dispatched before the expiry can
  // still report its result.
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.address(1).port, addrs[1].port);
}

TEST(WorkerPoolMembership, RejoinAfterDepartureGetsAFreshStateMachine) {
  const HostPort w = fleet(1)[0];
  WorkerPool pool({}, test_policy());
  pool.register_worker(w, 1000, 0);
  for (int i = 0; i < 3; ++i) pool.report(0, false);
  EXPECT_EQ(pool.health(0), WorkerHealth::Ejected);

  std::uint64_t epoch_after_drain = 0;
  EXPECT_TRUE(pool.deregister_worker(w, 100, &epoch_after_drain));
  EXPECT_EQ(pool.member_count(), 0u);
  // Double-deregister is a no-op, not a new epoch.
  EXPECT_FALSE(pool.deregister_worker(w, 110));
  EXPECT_EQ(pool.epoch(), epoch_after_drain);

  // The rejoin is a fresh enlistment: stale ejection evidence is dropped.
  const WorkerPool::Registration r = pool.register_worker(w, 1000, 200);
  EXPECT_TRUE(r.newly_added);
  EXPECT_EQ(r.epoch, epoch_after_drain + 1);
  EXPECT_EQ(pool.health(0), WorkerHealth::Healthy);
  EXPECT_EQ(pool.usable_count(), 1u);
}

TEST(WorkerPoolMembership, JoinMovesOnlyTheNewWorkersArcs) {
  const std::vector<HostPort> addrs = fleet(4);
  WorkerPool pool({addrs[0], addrs[1], addrs[2]}, test_policy());
  std::map<std::uint64_t, int> before;
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t h = util::fnv1a64("churn-" + std::to_string(i));
    before[h] = pool.route(h);
  }
  pool.register_worker(addrs[3], 1000, 0);
  for (const auto& [h, w] : before) {
    const int now = pool.route(h);
    EXPECT_TRUE(now == w || now == 3)
        << "a key may move only to the joiner, never between survivors";
  }
}

TEST(WorkerPoolMembership, GracefulDeregisterMovesOnlyTheDrainedArcs) {
  const std::vector<HostPort> addrs = fleet(3);
  WorkerPool pool(addrs, test_policy());
  std::map<std::uint64_t, int> before;
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t h = util::fnv1a64("drain-" + std::to_string(i));
    before[h] = pool.route(h);
  }
  ASSERT_TRUE(pool.deregister_worker(addrs[1], 0));
  for (const auto& [h, w] : before) {
    const int now = pool.route(h);
    ASSERT_GE(now, 0);
    EXPECT_NE(now, 1);
    if (w != 1) EXPECT_EQ(now, w) << "a survivor's shard must not move";
  }
}

TEST(WorkerPoolMembership, CoordLeaseFaultForceExpiresAFreshLease) {
  WorkerPool pool({}, test_policy());
  pool.register_worker(fleet(1)[0], /*lease_ms=*/60'000, /*now_ms=*/0);
  // The TTL has not lapsed — only the armed fault can expire it.
  EXPECT_TRUE(pool.expire_leases(10).empty());
  util::fault::arm("coord.lease", util::fault::make_errno(ETIMEDOUT), 1);
  EXPECT_EQ(pool.expire_leases(20).size(), 1u);
  util::fault::reset();
  EXPECT_EQ(pool.member_counts().departed, 1u);
}

TEST(WorkerPoolMembership, LeaseTableReportsAgesAndStaticLeases) {
  const std::vector<HostPort> addrs = fleet(2);
  WorkerPool pool({addrs[0]}, test_policy());
  pool.register_worker(addrs[1], 500, /*now_ms=*/100);

  const std::vector<LeaseInfo> table = pool.lease_table(/*now_ms=*/400);
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table[0].lease_ms, 0) << "static workers carry no TTL";
  EXPECT_TRUE(table[0].alive);
  EXPECT_EQ(table[1].lease_ms, 500);
  EXPECT_EQ(table[1].age_ms, 300);
  EXPECT_TRUE(table[1].alive);
}

}  // namespace
}  // namespace sqz::serve
