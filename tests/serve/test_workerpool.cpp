// The coordinator's worker registry (serve/workerpool.h): the pure health
// state machine, table-driven over the full transition graph — time is a
// parameter, so probation windows are tested without waiting them out —
// and the consistent-hash ring's routing invariants.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/workerpool.h"
#include "util/hash.h"

namespace sqz::serve {
namespace {

ProbePolicy test_policy() {
  ProbePolicy p;
  p.fail_threshold = 3;
  p.probation_ms = 1000;
  return p;
}

// --- the state machine, table-driven --------------------------------------

// One scripted event against the machine: feed a probe/dispatch outcome, or
// ask whether a probe is due (which is also the Ejected -> Probation edge).
struct Event {
  enum class Kind { Result, Due } kind;
  bool value;           // Result: the outcome. Due: the expected answer.
  std::int64_t now_ms;
  WorkerHealth expect;  // Health after the event.
};

Event result(bool ok, std::int64_t now_ms, WorkerHealth expect) {
  return {Event::Kind::Result, ok, now_ms, expect};
}
Event due(bool expect_due, std::int64_t now_ms, WorkerHealth expect) {
  return {Event::Kind::Due, expect_due, now_ms, expect};
}

struct Scenario {
  const char* name;
  std::vector<Event> events;
};

TEST(WorkerStateMachine, TransitionGraph) {
  const WorkerHealth H = WorkerHealth::Healthy;
  const WorkerHealth S = WorkerHealth::Suspect;
  const WorkerHealth E = WorkerHealth::Ejected;
  const WorkerHealth P = WorkerHealth::Probation;
  const std::vector<Scenario> scenarios = {
      {"healthy stays healthy on success",
       {result(true, 0, H), result(true, 10, H), result(true, 20, H)}},
      {"one failure makes a suspect, not a corpse",
       {result(false, 0, S), due(true, 10, S)}},
      {"a suspect recovers on the next success",
       {result(false, 0, S), result(true, 10, H)}},
      {"failures below the threshold never eject",
       {result(false, 0, S), result(false, 10, S), result(true, 20, H),
        result(false, 30, S), result(false, 40, S), result(true, 50, H)}},
      {"threshold consecutive failures eject",
       {result(false, 0, S), result(false, 10, S), result(false, 20, E)}},
      {"ejected workers are not probed inside the probation window",
       {result(false, 0, S), result(false, 10, S), result(false, 20, E),
        due(false, 500, E), due(false, 1019, E)}},
      {"the probation window elapsing grants a single trial",
       {result(false, 0, S), result(false, 10, S), result(false, 20, E),
        due(true, 1020, P)}},
      {"a passed trial readmits",
       {result(false, 0, S), result(false, 10, S), result(false, 20, E),
        due(true, 1020, P), result(true, 1030, H)}},
      {"a failed trial re-ejects and restarts the timer",
       {result(false, 0, S), result(false, 10, S), result(false, 20, E),
        due(true, 1020, P), result(false, 1030, E),
        due(false, 1040, E),          // old window origin would say due
        due(true, 2031, P)}},         // the restarted one eventually does
      {"a success observed while ejected readmits (straggling dispatch)",
       {result(false, 0, S), result(false, 10, S), result(false, 20, E),
        result(true, 100, H)}},
      {"readmission resets the failure count",
       {result(false, 0, S), result(false, 10, S), result(true, 20, H),
        result(false, 30, S), result(false, 40, S), result(false, 50, E)}},
  };

  for (const Scenario& sc : scenarios) {
    WorkerStateMachine m(test_policy());
    for (std::size_t i = 0; i < sc.events.size(); ++i) {
      const Event& e = sc.events[i];
      if (e.kind == Event::Kind::Result) {
        m.on_result(e.value, e.now_ms);
      } else {
        EXPECT_EQ(m.probe_due(e.now_ms), e.value)
            << sc.name << ", event " << i;
      }
      EXPECT_EQ(m.health(), e.expect) << sc.name << ", event " << i;
    }
  }
}

TEST(WorkerStateMachine, UsableMeansHealthyOrSuspect) {
  WorkerStateMachine m(test_policy());
  EXPECT_TRUE(m.usable());
  m.on_result(false, 0);
  EXPECT_TRUE(m.usable());  // Suspect still takes chunks
  m.on_result(false, 10);
  m.on_result(false, 20);
  EXPECT_FALSE(m.usable());  // Ejected
  m.probe_due(2000);
  EXPECT_EQ(m.health(), WorkerHealth::Probation);
  EXPECT_FALSE(m.usable());  // Probation waits for its trial
  m.on_result(true, 2010);
  EXPECT_TRUE(m.usable());
}

TEST(WorkerStateMachine, EjectionTransitionFiresOnce) {
  WorkerStateMachine m(test_policy());
  m.on_result(false, 0);
  m.on_result(false, 10);
  EXPECT_TRUE(m.on_result(false, 20).ejected);
  // Further failures while already ejected are not "new" ejections.
  EXPECT_FALSE(m.on_result(false, 30).ejected);
}

// --- the consistent-hash ring ----------------------------------------------

std::vector<HostPort> fleet(int n) {
  std::vector<HostPort> out;
  for (int i = 0; i < n; ++i) out.push_back({"127.0.0.1", 7000 + i});
  return out;
}

TEST(WorkerPoolRing, RoutingIsDeterministic) {
  WorkerPool pool(fleet(3), test_policy());
  for (int i = 0; i < 32; ++i) {
    const std::uint64_t h = util::fnv1a64("point-" + std::to_string(i));
    const int w = pool.route(h);
    ASSERT_GE(w, 0);
    ASSERT_LT(w, 3);
    EXPECT_EQ(pool.route(h), w);  // same hash, same worker, every time
  }
}

TEST(WorkerPoolRing, EveryWorkerOwnsSomeArc) {
  WorkerPool pool(fleet(3), test_policy());
  std::map<int, int> hits;
  for (int i = 0; i < 4096; ++i)
    ++hits[pool.route(util::fnv1a64("key-" + std::to_string(i)))];
  EXPECT_EQ(hits.size(), 3u) << "64 vnodes each should spread 4096 keys";
}

TEST(WorkerPoolRing, ExclusionPicksADifferentWorker) {
  WorkerPool pool(fleet(3), test_policy());
  const std::uint64_t h = util::fnv1a64("some chunk");
  const int first = pool.route(h);
  const int second = pool.route(h, {first});
  ASSERT_GE(second, 0);
  EXPECT_NE(second, first);
  const int third = pool.route(h, {first, second});
  ASSERT_GE(third, 0);
  EXPECT_NE(third, first);
  EXPECT_NE(third, second);
  EXPECT_EQ(pool.route(h, {first, second, third}), -1);
}

TEST(WorkerPoolRing, EjectionRedistributesOnlyTheDeadWorkersArcs) {
  WorkerPool pool(fleet(3), test_policy());
  std::map<std::uint64_t, int> before;
  for (int i = 0; i < 128; ++i) {
    const std::uint64_t h = util::fnv1a64("stable-" + std::to_string(i));
    before[h] = pool.route(h);
  }
  // Eject worker 0 through dispatch reports — the same signal a failed
  // chunk POST feeds.
  pool.report(0, false);
  pool.report(0, false);
  pool.report(0, false);
  EXPECT_EQ(pool.health(0), WorkerHealth::Ejected);
  EXPECT_EQ(pool.usable_count(), 2u);
  for (const auto& [h, w] : before) {
    const int now = pool.route(h);
    ASSERT_GE(now, 0);
    if (w != 0)
      EXPECT_EQ(now, w) << "a survivor's shard must not move";
    else
      EXPECT_NE(now, 0) << "the dead worker's arcs must move";
  }
}

TEST(WorkerPoolRing, AllEjectedRoutesNowhere) {
  WorkerPool pool(fleet(2), test_policy());
  for (int w = 0; w < 2; ++w)
    for (int i = 0; i < 3; ++i) pool.report(static_cast<std::size_t>(w), false);
  EXPECT_EQ(pool.usable_count(), 0u);
  EXPECT_EQ(pool.route(util::fnv1a64("anything")), -1);
  // A straggling in-flight success readmits its worker and routing resumes.
  pool.report(1, true);
  EXPECT_EQ(pool.route(util::fnv1a64("anything")), 1);
}

}  // namespace
}  // namespace sqz::serve
