#include "serve/simcache.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "util/faultinject.h"
#include "util/logging.h"

namespace sqz::serve {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void write_file(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// The single published cache entry in `dir` (fails the test when the tier
// holds anything but one).
fs::path only_entry(const fs::path& dir) {
  fs::path found;
  int count = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".sqz") {
      found = e.path();
      ++count;
    }
  }
  EXPECT_EQ(count, 1) << "expected exactly one .sqz entry in " << dir;
  return found;
}

int count_with_extension(const fs::path& dir, const std::string& ext) {
  int count = 0;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.path().extension() == ext) ++count;
  return count;
}

// Unique per-test scratch directory under the build tree.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("sqz_simcache_" + name);
  fs::remove_all(dir);
  return dir;
}

TEST(SimCache, Fnv1aMatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(SimCache::fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(SimCache::fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(SimCache::fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(SimCache, MissThenHit) {
  SimCache cache(4);
  EXPECT_FALSE(cache.get("k1").has_value());
  cache.put("k1", "v1");
  const auto v = cache.get("k1");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "v1");

  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.disk_hits, 0u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(SimCache, LruEvictsOldestEntry) {
  SimCache cache(2);
  cache.put("a", "1");
  cache.put("b", "2");
  ASSERT_TRUE(cache.get("a").has_value());  // "a" now most recent
  cache.put("c", "3");                      // evicts "b"

  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_TRUE(cache.get("c").has_value());

  const auto s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(SimCache, ReinsertRefreshesInsteadOfDuplicating) {
  SimCache cache(2);
  cache.put("a", "1");
  cache.put("a", "1");
  EXPECT_EQ(cache.stats().entries, 1u);
  cache.put("b", "2");
  cache.put("c", "3");  // capacity 2: one eviction, not two
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(SimCache, CapacityClampsToAtLeastOne) {
  SimCache cache(0);
  cache.put("a", "1");
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(SimCache, DiskTierSurvivesNewInstance) {
  const fs::path dir = scratch_dir("persist");
  {
    SimCache cache(4, dir.string());
    cache.put("design-point", "report bytes");
  }
  SimCache fresh(4, dir.string());
  const auto v = fresh.get("design-point");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "report bytes");

  const auto s = fresh.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.disk_hits, 1u);
  // Promoted to memory: the second lookup does not touch disk again.
  ASSERT_TRUE(fresh.get("design-point").has_value());
  EXPECT_EQ(fresh.stats().disk_hits, 1u);
  fs::remove_all(dir);
}

TEST(SimCache, DiskTierOutlivesMemoryEviction) {
  const fs::path dir = scratch_dir("evict");
  SimCache cache(1, dir.string());
  cache.put("a", "1");
  cache.put("b", "2");  // evicts "a" from memory; disk still has it
  const auto v = cache.get("a");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "1");
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  fs::remove_all(dir);
}

TEST(SimCache, ValuesWithBinaryContentRoundTrip) {
  const fs::path dir = scratch_dir("binary");
  const std::string value("a\0b\r\nc", 6);
  {
    SimCache cache(4, dir.string());
    cache.put("k", value);
  }
  SimCache fresh(4, dir.string());
  const auto v = fresh.get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, value);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Fault tolerance: corruption, torn writes, disk errors, startup hygiene.
// ---------------------------------------------------------------------------

class SimCacheFaults : public ::testing::Test {
 protected:
  void SetUp() override { util::fault::reset(); }
  void TearDown() override { util::fault::reset(); }
};

TEST_F(SimCacheFaults, CorruptedEntryIsQuarantinedNeverServed) {
  const fs::path dir = scratch_dir("corrupt");
  {
    SimCache cache(4, dir.string());
    cache.put("design-point", "precious report bytes");
  }
  // Flip the last payload byte; the stored checksum no longer matches.
  const fs::path entry = only_entry(dir);
  std::string raw = read_file(entry);
  ASSERT_FALSE(raw.empty());
  raw.back() ^= 0x01;
  write_file(entry, raw);

  SimCache fresh(4, dir.string());
  EXPECT_FALSE(fresh.get("design-point").has_value())
      << "a corrupt entry must read as a miss, never as data";
  const auto s = fresh.stats();
  EXPECT_EQ(s.disk_quarantined, 1u);
  EXPECT_EQ(count_with_extension(dir, ".sqz"), 0);
  EXPECT_EQ(count_with_extension(dir, ".bad"), 1);

  // The slot is reusable: a fresh put publishes and round-trips again.
  fresh.put("design-point", "precious report bytes");
  SimCache after(4, dir.string());
  const auto v = after.get("design-point");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "precious report bytes");
  fs::remove_all(dir);
}

TEST_F(SimCacheFaults, TruncatedEntrySkippedOnWarmRestart) {
  const fs::path dir = scratch_dir("truncated");
  {
    SimCache cache(4, dir.string());
    cache.put("kept", "value that stays intact");
    cache.put("mangled", "value that gets cut off");
  }
  // Truncate one entry mid-payload, plant a zero-length entry and a stray
  // tmp file: the crash-landing scenarios a warm restart must shrug off.
  bool truncated_one = false;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() != ".sqz") continue;
    if (read_file(e.path()).find("cut off") == std::string::npos) continue;
    const std::string raw = read_file(e.path());
    write_file(e.path(), raw.substr(0, raw.size() / 2));
    truncated_one = true;
  }
  ASSERT_TRUE(truncated_one);
  write_file(dir / "00deadbeef000000.sqz", "");
  write_file(dir / "0badc0ffee000000.sqz.tmp", "leftover partial publish");

  SimCache fresh(4, dir.string());  // must construct, not crash
  // Startup swept the zero-length entry and the tmp leftover.
  EXPECT_FALSE(fs::exists(dir / "0badc0ffee000000.sqz.tmp"));
  EXPECT_EQ(fresh.stats().disk_quarantined, 1u);
  // The truncated entry dies lazily at first read; the intact one serves.
  EXPECT_FALSE(fresh.get("mangled").has_value());
  EXPECT_EQ(fresh.stats().disk_quarantined, 2u);
  const auto v = fresh.get("kept");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "value that stays intact");
  fs::remove_all(dir);
}

TEST_F(SimCacheFaults, PreChecksumFormatIsQuarantinedAsBadHeader) {
  const fs::path dir = scratch_dir("oldformat");
  {
    SimCache cache(4, dir.string());
    cache.put("design-point", "value");
  }
  // Rewrite the entry in the pre-checksum format: no magic, no checksum.
  write_file(only_entry(dir), "12 5\ndesign-pointvalue");
  SimCache cache(4, dir.string());
  EXPECT_FALSE(cache.get("design-point").has_value());
  EXPECT_EQ(cache.stats().disk_quarantined, 1u);
  fs::remove_all(dir);
}

TEST_F(SimCacheFaults, TornWriteIsCaughtByTheReadPath) {
  const fs::path dir = scratch_dir("torn");
  {
    SimCache cache(4, dir.string());
    // Publish only the first 12 bytes of the record (power loss mid-write).
    util::fault::arm("simcache.write", util::fault::make_short(12));
    cache.put("torn-key", "bytes that never fully land");
    EXPECT_EQ(util::fault::hits("simcache.write"), 1u);
  }
  SimCache fresh(4, dir.string());
  EXPECT_FALSE(fresh.get("torn-key").has_value());
  EXPECT_EQ(fresh.stats().disk_quarantined, 1u);
  fs::remove_all(dir);
}

TEST_F(SimCacheFaults, ReadErrorCountsButDoesNotQuarantine) {
  const fs::path dir = scratch_dir("readerr");
  {
    SimCache cache(4, dir.string());
    cache.put("k", "v");
  }
  SimCache fresh(4, dir.string());
  util::fault::arm("simcache.read", util::fault::make_errno(EIO));
  EXPECT_FALSE(fresh.get("k").has_value());
  auto s = fresh.stats();
  EXPECT_EQ(s.disk_errors, 1u);
  EXPECT_EQ(s.disk_quarantined, 0u) << "transient I/O error is not corruption";
  // The entry itself is fine: the next read (fault exhausted) serves it.
  const auto v = fresh.get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "v");
  EXPECT_FALSE(fresh.stats().disk_demoted);
  fs::remove_all(dir);
}

TEST_F(SimCacheFaults, PersistentWriteFailureDemotesToMemoryOnly) {
  const fs::path dir = scratch_dir("demote");
  SimCache cache(8, dir.string());
  util::fault::arm("simcache.write", util::fault::make_errno(ENOSPC),
                   SimCache::kDiskFailureLimit);
  for (int i = 0; i < SimCache::kDiskFailureLimit; ++i)
    cache.put("k" + std::to_string(i), "v" + std::to_string(i));
  auto s = cache.stats();
  EXPECT_EQ(s.disk_errors,
            static_cast<std::uint64_t>(SimCache::kDiskFailureLimit));
  EXPECT_TRUE(s.disk_demoted);

  // Demoted: later puts skip the disk entirely (the fault is exhausted, so
  // any file that appears would prove the tier was still live).
  cache.put("after-demotion", "still cached in memory");
  EXPECT_EQ(count_with_extension(dir, ".sqz"), 0);
  const auto v = cache.get("after-demotion");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "still cached in memory");
  fs::remove_all(dir);
}

TEST_F(SimCacheFaults, OneTransientWriteErrorDoesNotDemote) {
  const fs::path dir = scratch_dir("transient");
  SimCache cache(8, dir.string());
  util::fault::arm("simcache.write", util::fault::make_errno(ENOSPC));
  cache.put("a", "1");  // fails on disk, absorbed
  cache.put("b", "2");  // succeeds, resets the failure streak
  auto s = cache.stats();
  EXPECT_EQ(s.disk_errors, 1u);
  EXPECT_FALSE(s.disk_demoted);
  EXPECT_EQ(count_with_extension(dir, ".sqz"), 1);
  fs::remove_all(dir);
}

TEST(SimCache, ConcurrentPutGetIsSafe) {
  SimCache cache(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 200; ++i) {
        const std::string key = "k" + std::to_string((t * 31 + i) % 50);
        cache.put(key, "v" + key);
        const auto v = cache.get(key);
        if (v) EXPECT_EQ(*v, "v" + key);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 50u);
  EXPECT_GT(s.hits, 0u);
}

}  // namespace
}  // namespace sqz::serve
