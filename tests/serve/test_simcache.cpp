#include "serve/simcache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

namespace sqz::serve {
namespace {

namespace fs = std::filesystem;

// Unique per-test scratch directory under the build tree.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("sqz_simcache_" + name);
  fs::remove_all(dir);
  return dir;
}

TEST(SimCache, Fnv1aMatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(SimCache::fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(SimCache::fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(SimCache::fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(SimCache, MissThenHit) {
  SimCache cache(4);
  EXPECT_FALSE(cache.get("k1").has_value());
  cache.put("k1", "v1");
  const auto v = cache.get("k1");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "v1");

  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.disk_hits, 0u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(SimCache, LruEvictsOldestEntry) {
  SimCache cache(2);
  cache.put("a", "1");
  cache.put("b", "2");
  ASSERT_TRUE(cache.get("a").has_value());  // "a" now most recent
  cache.put("c", "3");                      // evicts "b"

  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_TRUE(cache.get("c").has_value());

  const auto s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(SimCache, ReinsertRefreshesInsteadOfDuplicating) {
  SimCache cache(2);
  cache.put("a", "1");
  cache.put("a", "1");
  EXPECT_EQ(cache.stats().entries, 1u);
  cache.put("b", "2");
  cache.put("c", "3");  // capacity 2: one eviction, not two
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(SimCache, CapacityClampsToAtLeastOne) {
  SimCache cache(0);
  cache.put("a", "1");
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(SimCache, DiskTierSurvivesNewInstance) {
  const fs::path dir = scratch_dir("persist");
  {
    SimCache cache(4, dir.string());
    cache.put("design-point", "report bytes");
  }
  SimCache fresh(4, dir.string());
  const auto v = fresh.get("design-point");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "report bytes");

  const auto s = fresh.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.disk_hits, 1u);
  // Promoted to memory: the second lookup does not touch disk again.
  ASSERT_TRUE(fresh.get("design-point").has_value());
  EXPECT_EQ(fresh.stats().disk_hits, 1u);
  fs::remove_all(dir);
}

TEST(SimCache, DiskTierOutlivesMemoryEviction) {
  const fs::path dir = scratch_dir("evict");
  SimCache cache(1, dir.string());
  cache.put("a", "1");
  cache.put("b", "2");  // evicts "a" from memory; disk still has it
  const auto v = cache.get("a");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "1");
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  fs::remove_all(dir);
}

TEST(SimCache, ValuesWithBinaryContentRoundTrip) {
  const fs::path dir = scratch_dir("binary");
  const std::string value("a\0b\r\nc", 6);
  {
    SimCache cache(4, dir.string());
    cache.put("k", value);
  }
  SimCache fresh(4, dir.string());
  const auto v = fresh.get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, value);
  fs::remove_all(dir);
}

TEST(SimCache, ConcurrentPutGetIsSafe) {
  SimCache cache(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 200; ++i) {
        const std::string key = "k" + std::to_string((t * 31 + i) % 50);
        cache.put(key, "v" + key);
        const auto v = cache.get(key);
        if (v) EXPECT_EQ(*v, "v" + key);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 50u);
  EXPECT_GT(s.hits, 0u);
}

}  // namespace
}  // namespace sqz::serve
