// Coordinator-mode chaos drills (serve/coordinator.h): a coordinator
// sharding /v1/sweep across real sqzserved worker processes must produce
// responses byte-identical to the uninterrupted single-node run — through
// worker SIGKILL mid-chunk, deliberate stragglers (work stealing), a
// coordinator SIGKILL + journal resume, and total dispatch failure (which
// must surface structured "dispatch" PointErrors, never hang or abort).
//
// Workers are fork+exec'd from the real sqzserved binary
// (SQZ_SQZSERVED_BINARY) so a SIGKILL takes down a whole process with its
// sockets, exactly like a crashed fleet node. The coordinator under test is
// in-process (so its Metrics are inspectable) except in the resume drill,
// where it too must survive a SIGKILL and therefore runs as a child.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#include <netinet/in.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/api.h"
#include "serve/server.h"
#include "util/faultinject.h"
#include "util/json_parse.h"

namespace sqz::serve {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr const char* kSweepBody =
    R"({"model":"tinydarknet",)"
    R"("sweep":{"knob":"rf_entries","values":[4,8,16,32,64,128]}})";

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// --- child processes --------------------------------------------------------

struct Proc {
  pid_t pid = -1;
  int port = 0;
  fs::path out;  ///< The child's captured stdout.
};

// fork+exec one sqzserved on an ephemeral port, learning the port from its
// "listening on 127.0.0.1:PORT" startup line. `fault_spec` arms SQZ_FAULT
// in the child only.
Proc spawn_served(const std::vector<std::string>& extra_args,
                  const std::string& fault_spec = "") {
  static int counter = 0;
  Proc p;
  p.out = fs::temp_directory_path() /
          ("sqz_coord_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++) + ".out");
  std::vector<std::string> args = {SQZ_SQZSERVED_BINARY, "--port", "0",
                                   "--jobs", "2"};
  args.insert(args.end(), extra_args.begin(), extra_args.end());

  const pid_t pid = ::fork();
  if (pid == 0) {
    if (!::freopen(p.out.c_str(), "w", stdout)) ::_exit(126);
    if (fault_spec.empty())
      ::unsetenv("SQZ_FAULT");
    else
      ::setenv("SQZ_FAULT", fault_spec.c_str(), 1);
    std::vector<char*> argv;
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(SQZ_SQZSERVED_BINARY, argv.data());
    ::_exit(127);
  }
  p.pid = pid;

  const auto deadline = Clock::now() + std::chrono::seconds(15);
  const std::string needle = "listening on 127.0.0.1:";
  while (Clock::now() < deadline) {
    const std::string text = read_file(p.out);
    const std::size_t at = text.find(needle);
    if (at != std::string::npos) {
      std::size_t d = at + needle.size();
      int port = 0;
      while (d < text.size() && std::isdigit(static_cast<unsigned char>(text[d])))
        port = port * 10 + (text[d++] - '0');
      if (port > 0 && text.find('\n', at) != std::string::npos) {
        p.port = port;
        return p;
      }
    }
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      p.pid = -1;  // died during startup
      return p;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return p;  // port 0: caller will fail the test
}

void kill_hard(Proc& p) {
  if (p.pid <= 0) return;
  ::kill(p.pid, SIGKILL);
  ::waitpid(p.pid, nullptr, 0);
  p.pid = -1;
}

void stop_gracefully(Proc& p) {
  if (p.pid <= 0) return;
  ::kill(p.pid, SIGTERM);
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (Clock::now() < deadline) {
    if (::waitpid(p.pid, nullptr, WNOHANG) == p.pid) {
      p.pid = -1;
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  kill_hard(p);
}

// A loopback TCP port that nothing listens on: bind an ephemeral port,
// learn its number, close it again.
int dead_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ::close(fd);
  return ntohs(addr.sin_port);
}

// --- HTTP helpers -----------------------------------------------------------

HttpResponse get(int port, const std::string& target) {
  HttpRequest req;
  req.method = "GET";
  req.target = target;
  return http_fetch("127.0.0.1", port, std::move(req), 10000);
}

HttpResponse post_sweep(int port, const std::string& body,
                        int timeout_ms = 180000) {
  HttpRequest req;
  req.method = "POST";
  req.target = "/v1/sweep";
  req.headers.emplace_back("Content-Type", "application/json");
  req.body = body;
  return http_fetch("127.0.0.1", port, std::move(req), timeout_ms);
}

// Scrape one value from a Prometheus text body; -1 when absent.
double metric(const std::string& text, const std::string& name) {
  const std::string needle = "\n" + name + " ";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + at + needle.size(), nullptr);
}

// The uninterrupted single-node answer: the exact executor a stock server
// runs, in this process, so provenance matches the workers'.
std::string local_golden(const std::string& body) {
  return run_sweep(parse_sweep_request(body));
}

// --- fixture ----------------------------------------------------------------

class CoordinatorDrill : public ::testing::Test {
 protected:
  void TearDown() override {
    for (Proc& p : workers_) stop_gracefully(p);
    for (Proc& p : workers_) fs::remove(p.out);
    util::fault::reset();
  }

  Proc& spawn_worker(const std::string& fault_spec = "",
                     const std::vector<std::string>& extra = {}) {
    workers_.push_back(spawn_served(extra, fault_spec));
    Proc& w = workers_.back();
    EXPECT_GT(w.port, 0) << "worker failed to start: " << read_file(w.out);
    return w;
  }

  std::vector<Proc> workers_;
};

ServerOptions coord_options(const std::vector<Proc>& workers) {
  ServerOptions opt;
  opt.port = 0;
  for (const Proc& w : workers)
    opt.coordinator.workers.push_back("127.0.0.1:" + std::to_string(w.port));
  opt.coordinator.probe.interval_ms = 100;
  opt.coordinator.probe.probation_ms = 500;
  opt.coordinator.chunk_points = 2;
  return opt;
}

// --- drills -----------------------------------------------------------------

TEST_F(CoordinatorDrill, DistributedSweepIsByteIdenticalToLocalRun) {
  spawn_worker();
  spawn_worker();
  spawn_worker();
  Server coord(coord_options(workers_));
  coord.start();

  const HttpResponse r = post_sweep(coord.port(), kSweepBody);
  ASSERT_EQ(r.status, 200) << r.body;
  EXPECT_EQ(r.body, local_golden(kSweepBody));

  const Metrics::Snapshot m = coord.metrics().snapshot();
  EXPECT_GE(m.coord_points_dispatched, 6u);
  EXPECT_EQ(m.coord_workers_up, 3u);

  // The readiness document reports the fleet.
  const util::JsonValue health =
      util::parse_json(get(coord.port(), "/healthz").body);
  EXPECT_TRUE(health.at("coordinator").at("enabled").as_bool());
  EXPECT_EQ(health.at("coordinator").at("workers").as_int(), 3);

  // A repeat is a cache hit with the same bytes.
  const HttpResponse again = post_sweep(coord.port(), kSweepBody);
  ASSERT_EQ(again.status, 200);
  EXPECT_EQ(again.body, r.body);
  ASSERT_NE(again.header("X-Sqz-Cache"), nullptr);
  EXPECT_EQ(*again.header("X-Sqz-Cache"), "hit");
}

TEST_F(CoordinatorDrill, ScreenedSweepIsRejectedWith400) {
  spawn_worker();
  Server coord(coord_options(workers_));
  coord.start();
  const HttpResponse r = post_sweep(
      coord.port(),
      R"({"model":"tinydarknet",)"
      R"("sweep":{"knob":"rf_entries","values":[4,8],"screen":true}})");
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("screen"), std::string::npos) << r.body;
}

TEST_F(CoordinatorDrill, WorkerSigkillMidChunkRecoversByteIdentically) {
  spawn_worker();
  spawn_worker();
  // The victim stalls every design point for 5 s, guaranteeing any chunk it
  // receives is still in flight when the SIGKILL lands.
  Proc& victim = spawn_worker("dse.point=stall:5000*64");

  ServerOptions opt = coord_options(workers_);
  opt.coordinator.chunk_points = 1;
  opt.coordinator.straggler_ms = 300;  // steal off the victim promptly
  opt.coordinator.dispatch_attempts = 1;
  Server coord(opt);
  coord.start();

  HttpResponse r;
  std::thread poster([&] { r = post_sweep(coord.port(), kSweepBody); });

  // Wait until the victim is actually holding a chunk (its in-flight gauge
  // counts our /metrics probe too, hence >= 2), then kill it. If the ring
  // happened to give the victim nothing, the kill is a no-op drill and only
  // byte-identity is asserted.
  bool victim_had_chunk = false;
  const auto deadline = Clock::now() + std::chrono::seconds(3);
  while (Clock::now() < deadline) {
    try {
      if (metric(get(victim.port, "/metrics").body,
                 "sqzserved_requests_in_flight") >= 2.0) {
        victim_had_chunk = true;
        break;
      }
    } catch (const FetchError&) {
      break;  // victim already unreachable
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  kill_hard(victim);
  poster.join();

  ASSERT_EQ(r.status, 200) << r.body;
  EXPECT_EQ(r.body, local_golden(kSweepBody));
  if (victim_had_chunk) {
    const Metrics::Snapshot m = coord.metrics().snapshot();
    EXPECT_GE(m.coord_points_requeued + m.coord_steals, 1u)
        << "the victim's chunk must have been re-placed";
  }
}

TEST_F(CoordinatorDrill, StragglerChunkIsStolenAndAnswerIsByteIdentical) {
  spawn_worker();
  spawn_worker();
  ServerOptions opt = coord_options(workers_);
  opt.coordinator.chunk_points = 1;
  opt.coordinator.straggler_ms = 200;
  Server coord(opt);
  coord.start();

  // Stall the first primary dispatch for 1.5 s *inside the coordinator*:
  // the chunk sits InFlight long past straggler_ms, so the monitor must
  // re-dispatch it to the other worker, whose result wins.
  util::fault::arm("coord.steal", util::fault::make_stall(1500), 1);

  const HttpResponse r = post_sweep(coord.port(), kSweepBody);
  ASSERT_EQ(r.status, 200) << r.body;
  EXPECT_EQ(r.body, local_golden(kSweepBody));
  EXPECT_GE(coord.metrics().snapshot().coord_steals, 1u);
}

TEST_F(CoordinatorDrill, CoordinatorSigkillThenResumeIsByteIdentical) {
  // Slow every point a little so the kill window (after the first journal
  // record, before the last) is wide and deterministic.
  spawn_worker("dse.point=stall:400*64");
  spawn_worker("dse.point=stall:400*64");

  const fs::path dir = fs::temp_directory_path() /
                       ("sqz_coord_journal_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  const std::string worker_list = "127.0.0.1:" +
                                  std::to_string(workers_[0].port) + ",127.0.0.1:" +
                                  std::to_string(workers_[1].port);
  const std::vector<std::string> coord_args = {
      "--workers",       worker_list, "--sweep-journal", dir.string(),
      "--chunk-points",  "1",         "--straggler-ms",  "10000"};
  Proc coord = spawn_served(coord_args);
  ASSERT_GT(coord.port, 0) << read_file(coord.out);

  std::thread poster([&] {
    try {
      post_sweep(coord.port, kSweepBody);
    } catch (const FetchError&) {
      // Expected: the coordinator dies mid-response.
    }
  });

  // SIGKILL the coordinator once at least one completed point has been
  // journaled — the crash-safety contract says everything journaled
  // survives, everything else is simply re-dispatched.
  const fs::path journal = dir / "sweep.sqzj";
  const auto deadline = Clock::now() + std::chrono::seconds(30);
  bool journaled = false;
  while (Clock::now() < deadline) {
    std::error_code ec;
    if (fs::exists(journal, ec) && fs::file_size(journal, ec) > 0) {
      journaled = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(journaled) << "no journal record before the deadline";
  kill_hard(coord);
  poster.join();
  fs::remove(coord.out);

  // Same journal dir, fresh process: the resumed sweep must re-dispatch
  // only the unfinished points and render the identical document.
  Proc resumed = spawn_served(coord_args);
  ASSERT_GT(resumed.port, 0) << read_file(resumed.out);
  const HttpResponse r = post_sweep(resumed.port, kSweepBody);
  ASSERT_EQ(r.status, 200) << r.body;
  EXPECT_EQ(r.body, local_golden(kSweepBody));
  if (journaled)
    EXPECT_GE(metric(get(resumed.port, "/metrics").body,
                     "sqzserved_sweep_resumed_total"),
              1.0);
  stop_gracefully(resumed);
  fs::remove(resumed.out);
  fs::remove_all(dir);
}

TEST_F(CoordinatorDrill, DispatchExhaustionSurfacesStructuredPointErrors) {
  // A fleet of one, and it is a corpse: every dispatch fails fast, the
  // requeue budget burns out, and each point must surface as a structured
  // "dispatch" PointError in a 200 response — never a hang or a 5xx.
  ServerOptions opt;
  opt.port = 0;
  opt.coordinator.workers.push_back("127.0.0.1:" +
                                    std::to_string(dead_port()));
  opt.coordinator.probe.interval_ms = 100;
  opt.coordinator.chunk_points = 2;
  opt.coordinator.dispatch_attempts = 1;
  opt.coordinator.max_requeues = 1;
  Server coord(opt);
  coord.start();

  const std::string body =
      R"({"model":"tinydarknet",)"
      R"("sweep":{"knob":"rf_entries","values":[4,8,16]}})";
  const HttpResponse r = post_sweep(coord.port(), body);
  ASSERT_EQ(r.status, 200) << r.body;

  const util::JsonValue doc = util::parse_json(r.body);
  EXPECT_TRUE(doc.at("points").items.empty());
  const util::JsonValue& errors = doc.at("errors");
  ASSERT_EQ(errors.items.size(), 3u);
  for (const util::JsonValue& e : errors.items) {
    EXPECT_EQ(e.at("phase").as_string(), "dispatch");
    const std::string& key = e.at("key").as_string();
    EXPECT_EQ(key.size(), 16u);  // the sweep engine's own short-key form
    EXPECT_EQ(key.find_first_not_of("0123456789abcdef"), std::string::npos);
    EXPECT_FALSE(e.at("what").as_string().empty());
  }

  // Partial responses are never cached: a retry re-executes.
  const HttpResponse again = post_sweep(coord.port(), body);
  ASSERT_EQ(again.status, 200);
  ASSERT_NE(again.header("X-Sqz-Cache"), nullptr);
  EXPECT_EQ(*again.header("X-Sqz-Cache"), "miss");
}

TEST_F(CoordinatorDrill, IdenticalInFlightChunksAreSingleFlighted) {
  // Both workers stall each point 1.5 s, so the first sweep's chunks are
  // still in flight when the second identical sweep arrives and attaches.
  spawn_worker("dse.point=stall:1500*64");
  spawn_worker("dse.point=stall:1500*64");
  ServerOptions opt = coord_options(workers_);
  opt.coordinator.chunk_points = 4;
  opt.coordinator.straggler_ms = 30000;  // no stealing noise in this drill
  Server coord(opt);
  coord.start();

  HttpResponse first;
  std::thread a([&] { first = post_sweep(coord.port(), kSweepBody); });
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (coord.metrics().snapshot().coord_chunks_inflight == 0 &&
         Clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // Recorded, not ASSERTed: a fatal bail-out here would destroy `a` while
  // joinable and terminate() the whole test binary.
  const bool saw_inflight =
      coord.metrics().snapshot().coord_chunks_inflight > 0;

  const HttpResponse second = post_sweep(coord.port(), kSweepBody);
  a.join();
  EXPECT_TRUE(saw_inflight);

  ASSERT_EQ(first.status, 200) << first.body;
  ASSERT_EQ(second.status, 200) << second.body;
  EXPECT_EQ(first.body, second.body);
  EXPECT_EQ(first.body, local_golden(kSweepBody));
  EXPECT_GE(coord.metrics().snapshot().coord_singleflight_hits, 1u);
}

// --- dynamic membership & HA drills -----------------------------------------

// Poll `pred` until it holds or `secs` elapse; returns the final verdict.
template <typename Pred>
bool eventually(Pred pred, int secs = 10) {
  const auto deadline = Clock::now() + std::chrono::seconds(secs);
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

// Healthy members in a coordinator's /healthz membership block; -1 when the
// server is unreachable or not (yet) in a coordinator role.
int healthy_workers(int port) {
  try {
    const util::JsonValue h = util::parse_json(get(port, "/healthz").body);
    return static_cast<int>(
        h.at("membership").at("workers").at("healthy").as_int());
  } catch (...) {
    return -1;
  }
}

TEST_F(CoordinatorDrill, WorkerJoinMidSweepIsByteIdentical) {
  // The static worker stalls every point, keeping the sweep in flight long
  // enough for a second worker to boot with --join and register into the
  // live fleet: the epoch bumps, only the joiner's arcs move, and the
  // answer must still match the uninterrupted single-node run.
  spawn_worker("dse.point=stall:300*64");
  ServerOptions opt = coord_options(workers_);
  opt.coordinator.accept_registrations = true;
  opt.coordinator.chunk_points = 1;
  opt.coordinator.straggler_ms = 30000;  // joins, not steals, move the work
  Server coord(opt);
  coord.start();

  HttpResponse r;
  std::thread poster([&] { r = post_sweep(coord.port(), kSweepBody); });
  EXPECT_TRUE(eventually([&] {
    return coord.metrics().snapshot().coord_chunks_inflight > 0;
  }));

  spawn_worker("", {"--join", "127.0.0.1:" + std::to_string(coord.port()),
                    "--lease-ms", "1000"});
  EXPECT_TRUE(eventually([&] {
    return coord.metrics().snapshot().coord_registers >= 1;
  })) << "the joiner never registered";
  poster.join();

  ASSERT_EQ(r.status, 200) << r.body;
  EXPECT_EQ(r.body, local_golden(kSweepBody));
  EXPECT_GE(coord.metrics().snapshot().coord_epoch, 2u);

  // The readiness document reports the dynamic fleet.
  const util::JsonValue h =
      util::parse_json(get(coord.port(), "/healthz").body);
  const util::JsonValue& membership = h.at("membership");
  EXPECT_EQ(membership.at("role").as_string(), "coordinator");
  EXPECT_GE(membership.at("epoch").as_int(), 2);
  EXPECT_EQ(membership.at("workers").at("healthy").as_int(), 2);
  EXPECT_EQ(membership.at("leases").items.size(), 2u);
}

TEST_F(CoordinatorDrill, GracefulDrainMidSweepRequeuesNothing) {
  // Both workers stall every point, so the sweep is guaranteed to be
  // observably in flight when the SIGTERM lands — a fast survivor must not
  // be able to finish the whole sweep between two polls.
  spawn_worker("dse.point=stall:300*64");  // the survivor
  ServerOptions opt = coord_options(workers_);
  opt.coordinator.accept_registrations = true;
  opt.coordinator.chunk_points = 1;
  opt.coordinator.straggler_ms = 30000;   // a steal would mask a requeue
  opt.coordinator.dispatch_attempts = 1;  // any post-drain dispatch requeues
  Server coord(opt);
  coord.start();

  // The victim joins dynamically and stalls each point, so the SIGTERM
  // lands while it holds an in-flight chunk.
  Proc& victim = spawn_worker(
      "dse.point=stall:300*64",
      {"--join", "127.0.0.1:" + std::to_string(coord.port()), "--lease-ms",
       "2000"});
  ASSERT_TRUE(eventually([&] { return healthy_workers(coord.port()) == 2; }));

  HttpResponse r;
  std::thread poster([&] { r = post_sweep(coord.port(), kSweepBody); });
  // No fatal asserts while the poster is unjoined: a bailed-out test body
  // would terminate() in the thread's destructor and orphan the children.
  const bool in_flight = eventually([&] {
    return coord.metrics().snapshot().coord_chunks_inflight > 0;
  });

  // Planned maintenance: SIGTERM -> finish in-flight chunks, deregister,
  // exit. Zero requeues is the whole point of the drain protocol.
  stop_gracefully(victim);
  poster.join();
  EXPECT_TRUE(in_flight) << "sweep finished before the drain could land";

  ASSERT_EQ(r.status, 200) << r.body;
  EXPECT_EQ(r.body, local_golden(kSweepBody));
  const Metrics::Snapshot m = coord.metrics().snapshot();
  EXPECT_EQ(m.coord_points_requeued, 0u)
      << "a graceful drain must not requeue";
  EXPECT_EQ(m.coord_steals, 0u);

  // The drain deregistered the victim: one departed member, a new epoch.
  const util::JsonValue h =
      util::parse_json(get(coord.port(), "/healthz").body);
  EXPECT_EQ(h.at("membership").at("workers").at("departed").as_int(), 1);
  EXPECT_GE(h.at("membership").at("epoch").as_int(), 3);
}

TEST_F(CoordinatorDrill, ForcedLeaseExpiryEvictsAndHeartbeatRejoins) {
  spawn_worker();  // static: keeps the sweep serviceable through the eviction
  ServerOptions opt = coord_options(workers_);
  opt.coordinator.accept_registrations = true;
  Server coord(opt);
  coord.start();

  spawn_worker("", {"--join", "127.0.0.1:" + std::to_string(coord.port()),
                    "--lease-ms", "2000"});
  ASSERT_TRUE(eventually([&] { return healthy_workers(coord.port()) == 2; }));

  // The "coord.lease" fault force-expires the joiner's fresh lease on the
  // prober's next tick — the expiry drill runs at test speed instead of
  // waiting out a real TTL.
  util::fault::arm("coord.lease", util::fault::make_errno(ETIMEDOUT), 1);
  ASSERT_TRUE(eventually([&] {
    return coord.metrics().snapshot().coord_lease_expirations >= 1;
  }));
  util::fault::reset();

  // The evicted worker's next heartbeat re-registers it (exactly what a
  // healed partition looks like): two healthy members on a fresh epoch.
  EXPECT_TRUE(eventually([&] { return healthy_workers(coord.port()) == 2; }));

  const HttpResponse r = post_sweep(coord.port(), kSweepBody);
  ASSERT_EQ(r.status, 200) << r.body;
  EXPECT_EQ(r.body, local_golden(kSweepBody));
  // Boot(1) -> join(2) -> expire(3) -> rejoin(4); churn may add more.
  EXPECT_GE(coord.metrics().snapshot().coord_epoch, 4u);
}

TEST_F(CoordinatorDrill, StandbyTakesOverAfterPrimarySigkill) {
  const fs::path dir = fs::temp_directory_path() /
                       ("sqz_ha_journal_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  // The primary runs as a child so the SIGKILL takes a whole process with
  // its sockets; the standby runs in-process so its role and Metrics are
  // inspectable.
  Proc primary = spawn_served({"--coordinator", "--sweep-journal",
                               dir.string(), "--chunk-points", "1",
                               "--straggler-ms", "10000"});
  ASSERT_GT(primary.port, 0) << read_file(primary.out);

  ServerOptions sopt;
  sopt.port = 0;
  sopt.standby_of = "127.0.0.1:" + std::to_string(primary.port);
  sopt.sweep_journal_dir = dir.string();
  sopt.standby_takeover_ms = 600;
  sopt.coordinator.probe.interval_ms = 100;
  sopt.coordinator.chunk_points = 1;
  sopt.coordinator.straggler_ms = 10000;
  Server standby(sopt);
  standby.start();
  ASSERT_TRUE(standby.standby());

  // Passive standby: refuses work with 503 (not 404 — it will serve later).
  EXPECT_EQ(post_sweep(standby.port(), kSweepBody, 10000).status, 503);
  {
    const util::JsonValue h =
        util::parse_json(get(standby.port(), "/healthz").body);
    EXPECT_EQ(h.at("membership").at("role").as_string(), "standby");
  }

  // Two workers join both coordinators; the primary (listed first) wins
  // their heartbeats while it lives. Points stall a little so the kill
  // lands mid-sweep, after a journaled prefix.
  const std::string join_list = "127.0.0.1:" + std::to_string(primary.port) +
                                ",127.0.0.1:" +
                                std::to_string(standby.port());
  spawn_worker("dse.point=stall:400*64",
               {"--join", join_list, "--lease-ms", "5000"});
  spawn_worker("dse.point=stall:400*64",
               {"--join", join_list, "--lease-ms", "5000"});
  ASSERT_TRUE(eventually([&] { return healthy_workers(primary.port) == 2; }));

  std::thread poster([&] {
    try {
      post_sweep(primary.port, kSweepBody);
    } catch (const FetchError&) {
      // Expected: the primary dies mid-response.
    }
  });

  // Wait for at least one *completed point* (sqzw1) in the shared journal —
  // membership records (sqzm1) land at registration, long before any point.
  // The kill and the join come before any fatal assert so the poster thread
  // can never be destroyed joinable.
  const fs::path journal = dir / "sweep.sqzj";
  const bool journaled = eventually(
      [&] { return read_file(journal).find("sqzw1") != std::string::npos; },
      30);
  kill_hard(primary);
  poster.join();
  fs::remove(primary.out);
  ASSERT_TRUE(journaled) << "no journaled point before the deadline";

  // The standby notices the silence and promotes itself — exactly once.
  ASSERT_TRUE(eventually([&] { return !standby.standby(); }, 15))
      << "standby never took over";
  EXPECT_EQ(standby.metrics().snapshot().coord_takeovers, 1u);

  // Replayed membership (plus the workers' rotating heartbeats) hands the
  // new coordinator the fleet.
  ASSERT_TRUE(
      eventually([&] { return healthy_workers(standby.port()) == 2; }, 15));

  // The resumed sweep is byte-identical, with the journaled prefix served
  // without re-simulation.
  const HttpResponse r = post_sweep(standby.port(), kSweepBody);
  ASSERT_EQ(r.status, 200) << r.body;
  EXPECT_EQ(r.body, local_golden(kSweepBody));
  EXPECT_GE(metric(get(standby.port(), "/metrics").body,
                   "sqzserved_sweep_resumed_total"),
            1.0);
  const util::JsonValue h =
      util::parse_json(get(standby.port(), "/healthz").body);
  EXPECT_EQ(h.at("membership").at("role").as_string(), "coordinator");
  fs::remove_all(dir);
}

TEST_F(CoordinatorDrill, PartitionedStandbyRefusesTakeoverWhilePrimaryLives) {
  // The split-brain fence: a standby that cannot reach the primary must NOT
  // promote while the primary is alive and holding the journal's writer
  // lock — two concurrent writers would interleave appends and corrupt the
  // shared journal both sides recover from.
  const fs::path dir = fs::temp_directory_path() /
                       ("sqz_ha_partition_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  // A live in-process primary holding the journal's writer lock throughout.
  ServerOptions popt;
  popt.port = 0;
  popt.sweep_journal_dir = dir.string();
  Server primary(popt);
  primary.start();

  ServerOptions sopt;
  sopt.port = 0;
  sopt.standby_of = "127.0.0.1:" + std::to_string(primary.port());
  sopt.sweep_journal_dir = dir.string();
  sopt.standby_takeover_ms = 300;
  sopt.coordinator.probe.interval_ms = 100;
  Server standby(sopt);
  standby.start();
  ASSERT_TRUE(standby.standby());

  // "Partition": the coord.takeover fault fails every probe the standby
  // sends, far past the takeover window. Each promotion attempt finds the
  // journal locked by the live primary and is refused.
  util::fault::arm("coord.takeover", util::fault::make_errno(ETIMEDOUT), 200);
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  EXPECT_TRUE(standby.standby()) << "standby promoted into split-brain";
  EXPECT_EQ(standby.metrics().snapshot().coord_takeovers, 0u);
  util::fault::reset();

  // The partition heals: the standby goes back to passive watching, and
  // the primary — sole writer all along — still journals cleanly.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_TRUE(standby.standby());
  const HttpResponse r = post_sweep(primary.port(), kSweepBody);
  ASSERT_EQ(r.status, 200) << r.body;
  EXPECT_EQ(r.body, local_golden(kSweepBody));
  fs::remove_all(dir);
}

TEST_F(CoordinatorDrill, JoinerRenewsAtTheGrantedLeaseNotTheRequestedOne) {
  ServerOptions copt;
  copt.port = 0;
  copt.coordinator.accept_registrations = true;
  copt.coordinator.probe.interval_ms = 100;
  Server coord(copt);
  coord.start();

  // The worker asks for a 50 ms TTL — below the coordinator's floor
  // (WorkerPool::kMinLeaseMs), so the register response carries a clamped
  // grant. In-process so its /healthz membership block is inspectable.
  ServerOptions wopt;
  wopt.port = 0;
  wopt.joiner.endpoints.push_back(
      parse_host_port("127.0.0.1:" + std::to_string(coord.port()), "--join"));
  wopt.joiner.lease_ms = 50;
  Server worker(wopt);
  worker.start();
  ASSERT_TRUE(eventually([&] { return healthy_workers(coord.port()) == 1; }));

  // The joiner adopted the granted TTL from the response body — a cadence
  // computed from the requested TTL would be wrong whenever the grant
  // differs (and would lapse the lease whenever the grant is shorter).
  const util::JsonValue h =
      util::parse_json(get(worker.port(), "/healthz").body);
  EXPECT_EQ(h.at("membership").at("role").as_string(), "worker");
  EXPECT_TRUE(h.at("membership").at("joined").as_bool());
  EXPECT_EQ(h.at("membership").at("lease_ms").as_int(), WorkerPool::kMinLeaseMs);

  // And renewing at granted/3 actually holds the short lease: several TTL
  // windows pass with no expiry.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  EXPECT_EQ(coord.metrics().snapshot().coord_lease_expirations, 0u);
  EXPECT_EQ(healthy_workers(coord.port()), 1);
}

TEST_F(CoordinatorDrill, RefusedRegistrationIsRetriedUntilAdmitted) {
  // A pure-registration fleet: the coordinator starts empty and the armed
  // "coord.register" fault refuses the first two attempts, so only the
  // joiner's jittered retry loop can carry it into the fleet.
  ServerOptions opt;
  opt.port = 0;
  opt.coordinator.accept_registrations = true;
  opt.coordinator.probe.interval_ms = 100;
  opt.coordinator.chunk_points = 2;
  Server coord(opt);
  coord.start();
  util::fault::arm("coord.register", util::fault::make_errno(ECONNREFUSED), 2);

  spawn_worker("", {"--join", "127.0.0.1:" + std::to_string(coord.port()),
                    "--lease-ms", "1000"});
  ASSERT_TRUE(eventually([&] { return healthy_workers(coord.port()) == 1; }));
  EXPECT_EQ(util::fault::hits("coord.register"), 2u);
  util::fault::reset();

  const std::string body =
      R"({"model":"tinydarknet",)"
      R"("sweep":{"knob":"rf_entries","values":[4,8]}})";
  const HttpResponse r = post_sweep(coord.port(), body);
  ASSERT_EQ(r.status, 200) << r.body;
  EXPECT_EQ(r.body, local_golden(body));
}

TEST_F(CoordinatorDrill, WorkerPointErrorsPassThroughByteIdentically) {
  // sparsity 1.5 fails core/validate on the worker (phase "validate"); the
  // coordinator must pass the structured error through and still match the
  // local partial dump byte for byte.
  spawn_worker();
  Server coord(coord_options(workers_));
  coord.start();

  const std::string body =
      R"({"model":"tinydarknet",)"
      R"("sweep":{"knob":"sparsity","values":[0.0,0.5,1.5]}})";
  const HttpResponse r = post_sweep(coord.port(), body);
  ASSERT_EQ(r.status, 200) << r.body;
  EXPECT_EQ(r.body, local_golden(body));

  const util::JsonValue doc = util::parse_json(r.body);
  EXPECT_EQ(doc.at("points").items.size(), 2u);
  ASSERT_EQ(doc.at("errors").items.size(), 1u);
  EXPECT_EQ(doc.at("errors").at(std::size_t{0}).at("phase").as_string(),
            "validate");
}

}  // namespace
}  // namespace sqz::serve
