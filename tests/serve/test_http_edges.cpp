// Adversarial wire input for the serve/http parser: oversized headers,
// Content-Length lies, pipelining, and CRLF-splitting probes. Table-driven
// so each hostile shape documents the verdict it must produce — the server
// maps Error to 400 and TooLarge to 413, so these verdicts are the contract
// that keeps garbage off the simulation layer.
#include "serve/http.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sqz::serve {
namespace {

struct RequestCase {
  const char* name;
  std::string wire;
  ParseStatus want;
  const char* error_substr;  // must appear in the parse error (Error/TooLarge)
};

// Limits small enough to exercise the caps with hand-written wire text.
ParseLimits tight_limits() {
  ParseLimits limits;
  limits.max_header_bytes = 256;
  limits.max_body_bytes = 64;
  return limits;
}

TEST(HttpRequestEdges, TableOfHostileWires) {
  const std::string big_header =
      "X-Padding: " + std::string(300, 'a') + "\r\n";
  const std::vector<RequestCase> cases = {
      {"well-formed POST baseline",
       "POST /v1/simulate HTTP/1.1\r\nContent-Length: 2\r\n\r\nok",
       ParseStatus::Ok, nullptr},
      {"incomplete request line",
       "POST /v1/sim", ParseStatus::NeedMore, nullptr},
      {"headers not yet terminated",
       "GET / HTTP/1.1\r\nHost: x\r\n", ParseStatus::NeedMore, nullptr},
      {"body still in flight",
       "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",
       ParseStatus::NeedMore, nullptr},
      {"request line longer than the header cap",
       "GET /" + std::string(300, 'a'), ParseStatus::TooLarge,
       "request line too long"},
      {"oversized header block",
       "GET / HTTP/1.1\r\n" + big_header + "\r\n", ParseStatus::TooLarge,
       "header block too large"},
      {"oversized header block dripped without terminator",
       "GET / HTTP/1.1\r\nX-Drip: " + std::string(300, 'b'),
       ParseStatus::TooLarge, "header block too large"},
      {"Content-Length over the body cap",
       "POST / HTTP/1.1\r\nContent-Length: 65\r\n\r\n", ParseStatus::TooLarge,
       "exceeds the 64-byte limit"},
      {"Content-Length overflowing unsigned long long",
       "POST / HTTP/1.1\r\nContent-Length: 99999999999999999999999999\r\n\r\n",
       ParseStatus::TooLarge, "exceeds the 64-byte limit"},
      {"negative Content-Length",
       "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", ParseStatus::Error,
       "bad Content-Length"},
      {"non-numeric Content-Length",
       "POST / HTTP/1.1\r\nContent-Length: pig\r\n\r\n", ParseStatus::Error,
       "bad Content-Length"},
      {"empty Content-Length",
       "POST / HTTP/1.1\r\nContent-Length:\r\n\r\n", ParseStatus::Error,
       "bad Content-Length"},
      {"signed Content-Length",
       "POST / HTTP/1.1\r\nContent-Length: +2\r\n\r\nok", ParseStatus::Error,
       "bad Content-Length"},
      {"Content-Length with trailing digit garbage",
       "POST / HTTP/1.1\r\nContent-Length: 2 2\r\n\r\nok", ParseStatus::Error,
       "bad Content-Length"},
      {"chunked transfer is out of scope, loudly",
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
       ParseStatus::Error, "Transfer-Encoding not supported"},
      {"header line without a colon",
       "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", ParseStatus::Error,
       "malformed header line"},
      {"header name with embedded space (splitting probe)",
       "GET / HTTP/1.1\r\nX Injected: v\r\n\r\n", ParseStatus::Error,
       "malformed header name"},
      {"header name with control byte",
       "GET / HTTP/1.1\r\nX-\x01" "Bad: v\r\n\r\n", ParseStatus::Error,
       "malformed header name"},
      {"empty header name",
       "GET / HTTP/1.1\r\n: naked value\r\n\r\n", ParseStatus::Error,
       "malformed header line"},
      {"bare CR inside the request line",
       "GET /x\ry HTTP/1.1\r\n\r\n", ParseStatus::Error,
       "stray CR in request line"},
      {"CRLF smuggled into the target via extra spaces",
       "GET /x\rHost: evil HTTP/1.1\r\n\r\n", ParseStatus::Error,
       "malformed request line"},
      {"three-token rule rejects spaced garbage",
       "GET / HTTP/1.1 extra\r\n\r\n", ParseStatus::Error,
       "malformed request line"},
      {"unsupported protocol version",
       "GET / HTTP/2.0\r\n\r\n", ParseStatus::Error, "unsupported protocol"},
      {"not HTTP at all",
       "SSH-2.0-OpenSSH_9.6\r\n\r\n", ParseStatus::Error, nullptr},
  };

  for (const RequestCase& c : cases) {
    SCOPED_TRACE(c.name);
    HttpRequest req;
    std::size_t consumed = 0;
    std::string error;
    const ParseStatus got =
        parse_http_request(c.wire, req, consumed, &error, tight_limits());
    EXPECT_EQ(static_cast<int>(got), static_cast<int>(c.want)) << error;
    if (c.error_substr) {
      EXPECT_NE(error.find(c.error_substr), std::string::npos) << error;
    }
  }
}

TEST(HttpRequestEdges, MissingContentLengthMeansEmptyBody) {
  HttpRequest req;
  std::size_t consumed = 0;
  std::string error;
  const std::string wire = "POST /v1/simulate HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(static_cast<int>(
                parse_http_request(wire, req, consumed, &error)),
            static_cast<int>(ParseStatus::Ok))
      << error;
  EXPECT_TRUE(req.body.empty());
  EXPECT_EQ(consumed, wire.size());
}

TEST(HttpRequestEdges, PipelinedRequestsParseOneAtATime) {
  const std::string first =
      "POST /v1/simulate HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  const std::string second = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  std::string buffer = first + second;

  HttpRequest req;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(static_cast<int>(
                parse_http_request(buffer, req, consumed, &error)),
            static_cast<int>(ParseStatus::Ok))
      << error;
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.body, "hello");
  ASSERT_EQ(consumed, first.size())
      << "must not eat into the pipelined follow-up";

  buffer.erase(0, consumed);
  ASSERT_EQ(static_cast<int>(
                parse_http_request(buffer, req, consumed, &error)),
            static_cast<int>(ParseStatus::Ok))
      << error;
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/metrics");
  EXPECT_EQ(consumed, second.size());
}

TEST(HttpRequestEdges, BodyBytesAreOpaque) {
  // A body that *looks* like a pipelined request must stay body bytes:
  // framing is Content-Length alone, never content sniffing.
  const std::string inner = "GET /admin HTTP/1.1\r\n\r\n";
  const std::string wire = "POST /v1/simulate HTTP/1.1\r\nContent-Length: " +
                           std::to_string(inner.size()) + "\r\n\r\n" + inner;
  HttpRequest req;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(static_cast<int>(
                parse_http_request(wire, req, consumed, &error)),
            static_cast<int>(ParseStatus::Ok))
      << error;
  EXPECT_EQ(req.target, "/v1/simulate");
  EXPECT_EQ(req.body, inner);
  EXPECT_EQ(consumed, wire.size());
}

TEST(HttpResponseEdges, HostileStatusLines) {
  struct Case {
    const char* name;
    std::string wire;
    ParseStatus want;
  };
  const std::vector<Case> cases = {
      {"valid minimal response",
       "HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n", ParseStatus::Ok},
      {"not a status line", "garbage\r\n\r\n", ParseStatus::Error},
      {"status code with letters", "HTTP/1.1 2x0 OK\r\n\r\n",
       ParseStatus::Error},
      {"status line cut short", "HTTP/1.1 2", ParseStatus::NeedMore},
      {"response body over the client cap",
       "HTTP/1.1 200 OK\r\nContent-Length: 65\r\n\r\n", ParseStatus::TooLarge},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    HttpResponse resp;
    std::size_t consumed = 0;
    std::string error;
    EXPECT_EQ(static_cast<int>(parse_http_response(c.wire, resp, consumed,
                                                   &error, tight_limits())),
              static_cast<int>(c.want))
        << error;
  }
}

}  // namespace
}  // namespace sqz::serve
