// Plan-cached serving end to end (serve/plancache.h): a /v1/simulate served
// by replaying a cached compiled plan must be byte-identical to the fresh
// compile-and-search response — across daemon restarts, with a shared disk
// plan tier and a cold result cache — and a corrupt plan artifact must be
// quarantined and recompiled transparently, never served and never a 500.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "serve/http.h"
#include "serve/server.h"

namespace sqz::serve {
namespace {

namespace fs = std::filesystem;

constexpr char kRequest[] =
    "{\"model\": \"tinydarknet\", \"config\": {\"rf_entries\": 16}}";

HttpResponse post_simulate(int port, const std::string& body = kRequest) {
  HttpRequest req;
  req.method = "POST";
  req.target = "/v1/simulate";
  req.headers.emplace_back("Content-Type", "application/json");
  req.body = body;
  return http_fetch("127.0.0.1", port, std::move(req));
}

HttpResponse get_metrics(int port) {
  HttpRequest req;
  req.method = "GET";
  req.target = "/metrics";
  return http_fetch("127.0.0.1", port, std::move(req));
}

double metric_value(const std::string& metrics, const std::string& name) {
  std::istringstream in(metrics);
  std::string line;
  while (std::getline(in, line))
    if (line.rfind(name + " ", 0) == 0)
      return std::stod(line.substr(name.size() + 1));
  return -1.0;
}

// Each test gets a private plan directory; servers are restarted against it
// to prove the artifact (not the memory tier) carries the schedule.
class PlanServe : public ::testing::Test {
 protected:
  void SetUp() override {
    plan_dir_ = fs::path(::testing::TempDir()) /
                ("plan_serve_" + std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(plan_dir_);
  }

  void TearDown() override { fs::remove_all(plan_dir_); }

  // A fresh server over the shared plan dir. The result cache is always
  // memory-only and dies with the server, so every first request of a new
  // server *executes* — the plan tier is the only state that survives.
  std::unique_ptr<Server> fresh_server() {
    ServerOptions opt;
    opt.port = 0;  // ephemeral
    opt.cache_entries = 64;
    opt.plan_cache_entries = 64;
    opt.plan_cache_dir = plan_dir_.string();
    auto server = std::make_unique<Server>(opt);
    server->start();
    return server;
  }

  fs::path plan_dir_;
};

TEST_F(PlanServe, WarmPlanServesByteIdenticalAcrossRestart) {
  std::string cold_body;
  {
    auto server = fresh_server();
    const HttpResponse cold = post_simulate(server->port());
    ASSERT_EQ(cold.status, 200);
    ASSERT_NE(cold.header("X-Sqz-Plan"), nullptr);
    EXPECT_EQ(*cold.header("X-Sqz-Plan"), "miss");  // compiled fresh
    cold_body = cold.body;

    const auto stats = server->plan_cache()->stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.insertions, 1u);
  }
  ASSERT_FALSE(cold_body.empty());

  // One *.plan artifact must have been published.
  std::size_t plans = 0;
  for (const auto& entry : fs::directory_iterator(plan_dir_))
    plans += entry.path().extension() == ".plan";
  EXPECT_EQ(plans, 1u);

  {
    auto server = fresh_server();  // result cache cold, plan tier warm
    const HttpResponse warm = post_simulate(server->port());
    ASSERT_EQ(warm.status, 200);
    ASSERT_NE(warm.header("X-Sqz-Cache"), nullptr);
    EXPECT_EQ(*warm.header("X-Sqz-Cache"), "miss");  // really executed
    ASSERT_NE(warm.header("X-Sqz-Plan"), nullptr);
    EXPECT_EQ(*warm.header("X-Sqz-Plan"), "hit");

    // The contract: a plan-served response is the fresh response, byte for
    // byte.
    EXPECT_EQ(warm.body, cold_body);

    const std::string metrics = get_metrics(server->port()).body;
    EXPECT_EQ(metric_value(metrics, "sqzserved_plan_hits_total"), 1.0);
    EXPECT_EQ(metric_value(metrics, "sqzserved_plan_disk_hits_total"), 1.0);
    EXPECT_EQ(metric_value(metrics, "sqzserved_plan_corrupt_total"), 0.0);
  }
}

TEST_F(PlanServe, ResultCacheHitNeverConsultsThePlanCache) {
  auto server = fresh_server();
  ASSERT_EQ(post_simulate(server->port()).status, 200);
  const HttpResponse second = post_simulate(server->port());
  ASSERT_NE(second.header("X-Sqz-Cache"), nullptr);
  EXPECT_EQ(*second.header("X-Sqz-Cache"), "hit");
  EXPECT_EQ(second.header("X-Sqz-Plan"), nullptr);  // not even reported
  const auto stats = server->plan_cache()->stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);  // only the cold request looked
}

TEST_F(PlanServe, CorruptPlanIsQuarantinedAndRecompiledIdentically) {
  std::string cold_body;
  {
    auto server = fresh_server();
    const HttpResponse cold = post_simulate(server->port());
    ASSERT_EQ(cold.status, 200);
    cold_body = cold.body;
  }

  // Flip one payload byte in the published artifact.
  fs::path artifact;
  for (const auto& entry : fs::directory_iterator(plan_dir_))
    if (entry.path().extension() == ".plan") artifact = entry.path();
  ASSERT_FALSE(artifact.empty());
  {
    std::fstream f(artifact,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    ASSERT_GT(size, 40);
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x20);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }

  {
    auto server = fresh_server();
    const HttpResponse resp = post_simulate(server->port());
    ASSERT_EQ(resp.status, 200);  // corruption must never surface
    ASSERT_NE(resp.header("X-Sqz-Plan"), nullptr);
    EXPECT_EQ(*resp.header("X-Sqz-Plan"), "miss");  // fell back to compile
    EXPECT_EQ(resp.body, cold_body);                // ...identically

    const std::string metrics = get_metrics(server->port()).body;
    EXPECT_EQ(metric_value(metrics, "sqzserved_plan_corrupt_total"), 1.0);

    // The defective artifact is out of the read path, preserved as *.bad
    // for the operator, and a fresh good artifact has been republished.
    EXPECT_FALSE(fs::exists(artifact) &&
                 fs::file_size(artifact) == 0);  // never left half-dead
    bool bad_seen = false, plan_seen = false;
    for (const auto& entry : fs::directory_iterator(plan_dir_)) {
      bad_seen |= entry.path().extension() == ".bad";
      plan_seen |= entry.path().extension() == ".plan";
    }
    EXPECT_TRUE(bad_seen);
    EXPECT_TRUE(plan_seen);

    // And the republished plan serves the third generation byte-identically.
    auto third = fresh_server();
    const HttpResponse warm = post_simulate(third->port());
    ASSERT_NE(warm.header("X-Sqz-Plan"), nullptr);
    EXPECT_EQ(*warm.header("X-Sqz-Plan"), "hit");
    EXPECT_EQ(warm.body, cold_body);
  }
}

TEST_F(PlanServe, DistinctRequestsGetDistinctPlans) {
  auto server = fresh_server();
  ASSERT_EQ(post_simulate(server->port()).status, 200);
  ASSERT_EQ(post_simulate(server->port(),
                          "{\"model\": \"tinydarknet\", "
                          "\"config\": {\"rf_entries\": 8}}")
                .status,
            200);
  std::size_t plans = 0;
  for (const auto& entry : fs::directory_iterator(plan_dir_))
    plans += entry.path().extension() == ".plan";
  EXPECT_EQ(plans, 2u);
  EXPECT_EQ(server->plan_cache()->stats().insertions, 2u);
}

TEST_F(PlanServe, PlanCacheDisabledStillServes) {
  ServerOptions opt;
  opt.port = 0;
  opt.cache_entries = 4;
  opt.plan_cache_entries = 0;  // disabled
  Server server(opt);
  server.start();
  EXPECT_EQ(server.plan_cache(), nullptr);
  const HttpResponse resp = post_simulate(server.port());
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.header("X-Sqz-Plan"), nullptr);
}

}  // namespace
}  // namespace sqz::serve
