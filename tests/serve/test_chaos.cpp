// Chaos drills for the serving stack: every registered fault point
// (serve.accept / serve.recv / serve.send / simcache.read / simcache.write /
// plan.read / plan.write)
// is fired against a live loopback server, and the retrying client must
// come back with bytes identical to the fault-free run. Also covers the
// operator-facing guarantees: load shedding with 503 + Retry-After, idle
// keep-alive reaping, 408/413 deadlines and caps, and a stop() that drains
// cleanly while a fault is mid-flight (the daemon's SIGTERM path).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "serve/http.h"
#include "serve/server.h"
#include "util/faultinject.h"

namespace sqz::serve {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr const char* kBody = R"({"model":"tinydarknet"})";

HttpRequest simulate_request(const std::string& body = kBody) {
  HttpRequest req;
  req.method = "POST";
  req.target = "/v1/simulate";
  req.headers.emplace_back("Content-Type", "application/json");
  req.body = body;
  return req;
}

HttpResponse post(int port, const std::string& body = kBody) {
  return http_fetch("127.0.0.1", port, simulate_request(body));
}

HttpResponse get(int port, const std::string& target) {
  HttpRequest req;
  req.method = "GET";
  req.target = target;
  return http_fetch("127.0.0.1", port, std::move(req));
}

// Retry policy tuned for tests: deterministic jitter stream, short sleeps.
RetryPolicy fast_retry(int max_attempts) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.base_ms = 20;
  policy.cap_ms = 300;
  return policy;
}

HttpResponse post_retry(int port, int max_attempts,
                        int* attempts_out = nullptr,
                        const std::string& body = kBody) {
  return http_fetch_retry("127.0.0.1", port, simulate_request(body),
                          /*timeout_ms=*/60000, fast_retry(max_attempts),
                          attempts_out);
}

// A hand-driven socket for the scenarios http_fetch cannot express:
// half-sent requests, keep-alive squatting, watching for a server close.
struct RawClient {
  int fd = -1;

  explicit RawClient(int port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
    }
  }

  ~RawClient() { close(); }

  void close() {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }

  bool send_bytes(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  // Read until the server closes the connection or the deadline passes.
  std::string drain(int timeout_ms) {
    std::string got;
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    char chunk[4096];
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
      if (left <= 0) return got;
      pollfd p{fd, POLLIN, 0};
      if (::poll(&p, 1, static_cast<int>(left)) <= 0) return got;
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return got;  // closed (or reset): we have what we have
      got.append(chunk, static_cast<std::size_t>(n));
    }
  }

  // Read until `needle` shows up in the stream (e.g. the end of a response
  // body we know), or give up at the deadline.
  std::string read_until(const std::string& needle, int timeout_ms) {
    std::string got;
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    char chunk[4096];
    while (got.find(needle) == std::string::npos) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
      if (left <= 0) break;
      pollfd p{fd, POLLIN, 0};
      if (::poll(&p, 1, static_cast<int>(left)) <= 0) break;
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      got.append(chunk, static_cast<std::size_t>(n));
    }
    return got;
  }

  // True when the server closes this connection within the deadline.
  bool closed_by_peer(int timeout_ms) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    char chunk[4096];
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
      if (left <= 0) return false;
      pollfd p{fd, POLLIN, 0};
      if (::poll(&p, 1, static_cast<int>(left)) <= 0) continue;
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n == 0) return true;
      if (n < 0) return false;
      // Unexpected bytes (should not happen on an idle reap); keep reading.
    }
  }
};

class Chaos : public ::testing::Test {
 protected:
  void SetUp() override { util::fault::reset(); }
  void TearDown() override { util::fault::reset(); }
};

// --- transport fault points: recover to byte-identical responses ----------

TEST_F(Chaos, RecvFaultIsRetriedToByteIdenticalResult) {
  ServerOptions opt;
  opt.port = 0;
  Server server(opt);
  server.start();
  const HttpResponse expected = post(server.port());
  ASSERT_EQ(expected.status, 200) << expected.body;

  util::fault::arm("serve.recv", util::fault::make_errno(ECONNRESET));
  int attempts = 0;
  const HttpResponse r = post_retry(server.port(), 4, &attempts);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, expected.body) << "recovery must be byte-identical";
  EXPECT_EQ(attempts, 2) << "exactly one shot armed, so exactly one retry";
  EXPECT_EQ(util::fault::hits("serve.recv"), 1u);
}

TEST_F(Chaos, PartialResponseWriteIsRetriedToByteIdenticalResult) {
  ServerOptions opt;
  opt.port = 0;
  Server server(opt);
  server.start();
  const HttpResponse expected = post(server.port());
  ASSERT_EQ(expected.status, 200) << expected.body;

  // The server manages 10 bytes of the response, then the wire dies.
  util::fault::arm("serve.send", util::fault::make_short(10));
  int attempts = 0;
  const HttpResponse r = post_retry(server.port(), 4, &attempts);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, expected.body);
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(util::fault::hits("serve.send"), 1u);
}

TEST_F(Chaos, AcceptEmfileBacksOffAndThenServes) {
  ServerOptions opt;
  opt.port = 0;
  Server server(opt);
  server.start();
  const HttpResponse expected = post(server.port());
  ASSERT_EQ(expected.status, 200) << expected.body;

  // Two accept attempts fail with EMFILE; the connection waits in the
  // backlog through the backoff and is served without the client retrying.
  util::fault::arm("serve.accept", util::fault::make_errno(EMFILE),
                   /*times=*/2);
  int attempts = 0;
  const HttpResponse r = post_retry(server.port(), 4, &attempts);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, expected.body);
  EXPECT_EQ(attempts, 1) << "backlog absorbs an accept stall; no retry";
  EXPECT_EQ(util::fault::hits("serve.accept"), 2u);
  EXPECT_GE(server.metrics().snapshot().accept_backoff_total, 2u);
}

TEST_F(Chaos, RecvStallDelaysButStillServes) {
  ServerOptions opt;
  opt.port = 0;
  Server server(opt);
  server.start();
  const HttpResponse expected = post(server.port());
  ASSERT_EQ(expected.status, 200) << expected.body;

  util::fault::arm("serve.recv", util::fault::make_stall(300));
  const auto t0 = Clock::now();
  int attempts = 0;
  const HttpResponse r = post_retry(server.port(), 4, &attempts);
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - t0);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, expected.body);
  EXPECT_EQ(attempts, 1) << "a stall within the deadline is not an error";
  EXPECT_GE(elapsed.count(), 250);
}

// --- load shedding ---------------------------------------------------------

TEST_F(Chaos, SaturatedServerShedsWith503AndRecovers) {
  ServerOptions opt;
  opt.port = 0;
  opt.max_connections = 1;
  Server server(opt);
  server.start();
  const HttpResponse expected = post(server.port());
  ASSERT_EQ(expected.status, 200) << expected.body;
  // Let the baseline connection's slot drain before squatting on it.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Occupy the single slot with a keep-alive connection; the completed
  // exchange proves the server dispatched it (the slot is really held).
  RawClient squatter(server.port());
  ASSERT_GE(squatter.fd, 0);
  ASSERT_TRUE(squatter.send_bytes(
      "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: keep-alive\r\n\r\n"));
  ASSERT_NE(squatter.read_until("}\n", 2000).find("200"), std::string::npos);

  // A plain (non-retrying) client is shed, promptly and with guidance.
  const HttpResponse shed = post(server.port());
  EXPECT_EQ(shed.status, 503);
  ASSERT_NE(shed.header("Retry-After"), nullptr);
  EXPECT_EQ(*shed.header("Retry-After"), "1");
  EXPECT_NE(shed.body.find("max-connections"), std::string::npos);
  EXPECT_GE(server.metrics().snapshot().shed_total, 1u);

  // A retrying client rides out the saturation: free the slot mid-backoff
  // and the retry lands, byte-identical to the fault-free run.
  std::thread releaser([&squatter] {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    squatter.close();
  });
  int attempts = 0;
  const HttpResponse r = post_retry(server.port(), 8, &attempts);
  releaser.join();
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, expected.body);
  EXPECT_GE(attempts, 2) << "first attempt should have been shed";

  // The counters are on /metrics for operators. The slot the retry used is
  // released when the server notices the close, a poll tick after our side
  // of the connection goes away — so give the probe a bounded grace loop.
  HttpResponse metrics = get(server.port(), "/metrics");
  const auto metrics_by = Clock::now() + std::chrono::seconds(5);
  while (metrics.status == 503 && Clock::now() < metrics_by) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    metrics = get(server.port(), "/metrics");
  }
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("sqzserved_shed_total"), std::string::npos);
}

// --- deadlines -------------------------------------------------------------

TEST_F(Chaos, IdleKeepAliveConnectionIsReaped) {
  ServerOptions opt;
  opt.port = 0;
  opt.idle_timeout_ms = 200;
  opt.max_connections = 1;
  Server server(opt);
  server.start();

  RawClient idler(server.port());
  ASSERT_GE(idler.fd, 0);
  ASSERT_TRUE(idler.send_bytes(
      "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: keep-alive\r\n\r\n"));
  ASSERT_NE(idler.read_until("}\n", 2000).find("200"), std::string::npos);

  // Say nothing further: the server must close us at the idle deadline.
  EXPECT_TRUE(idler.closed_by_peer(2000));
  EXPECT_GE(server.metrics().snapshot().idle_closed_total, 1u);

  // The reap released the only slot: a fresh request is served, not shed.
  // (Bounded grace loop: the close is visible to us a moment before the
  // slot bookkeeping on the server side.)
  HttpResponse r = post(server.port());
  const auto slot_by = Clock::now() + std::chrono::seconds(5);
  while (r.status == 503 && Clock::now() < slot_by) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    r = post(server.port());
  }
  EXPECT_EQ(r.status, 200) << r.body;
}

TEST_F(Chaos, UnfinishedRequestGets408AtTheDeadline) {
  ServerOptions opt;
  opt.port = 0;
  opt.request_timeout_ms = 200;
  Server server(opt);
  server.start();

  RawClient slowpoke(server.port());
  ASSERT_GE(slowpoke.fd, 0);
  // Promise 50 body bytes, deliver 4, go quiet.
  ASSERT_TRUE(slowpoke.send_bytes(
      "POST /v1/simulate HTTP/1.1\r\nContent-Length: 50\r\n\r\nfour"));
  const std::string answer = slowpoke.drain(2000);
  EXPECT_NE(answer.find("408"), std::string::npos) << answer;
  EXPECT_GE(server.metrics().snapshot().timeouts_total, 1u);
}

TEST_F(Chaos, OversizeBodyGets413AndIsNeverRetried) {
  ServerOptions opt;
  opt.port = 0;
  opt.max_body_bytes = 1024;
  Server server(opt);
  server.start();

  const std::string huge = "{\"model\":\"" + std::string(2000, 'x') + "\"}";
  int attempts = 0;
  const HttpResponse r = post_retry(server.port(), 4, &attempts, huge);
  EXPECT_EQ(r.status, 413);
  EXPECT_NE(r.body.find("exceeds"), std::string::npos) << r.body;
  EXPECT_EQ(attempts, 1) << "a 4xx will not improve; never retried";
  EXPECT_GE(server.metrics().snapshot().oversize_total, 1u);

  const HttpResponse metrics = get(server.port(), "/metrics");
  EXPECT_NE(metrics.body.find("sqzserved_oversize_total"), std::string::npos);
}

// --- cache fault points ----------------------------------------------------

TEST_F(Chaos, CorruptCacheEntryIsQuarantinedAndResimulated) {
  const fs::path dir = fs::temp_directory_path() / "sqz_chaos_corrupt";
  fs::remove_all(dir);
  std::string expected;
  {
    ServerOptions opt;
    opt.port = 0;
    opt.cache_dir = dir.string();
    Server server(opt);
    server.start();
    const HttpResponse r = post(server.port());
    ASSERT_EQ(r.status, 200) << r.body;
    expected = r.body;
  }
  // Flip one payload bit in the published entry.
  fs::path entry;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.path().extension() == ".sqz") entry = e.path();
  ASSERT_FALSE(entry.empty());
  std::string raw;
  {
    std::ifstream in(entry, std::ios::binary);
    raw.assign((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(raw.empty());
  raw.back() ^= 0x01;
  {
    std::ofstream out(entry, std::ios::binary | std::ios::trunc);
    out.write(raw.data(), static_cast<std::streamsize>(raw.size()));
  }

  ServerOptions opt;
  opt.port = 0;
  opt.cache_dir = dir.string();
  Server server(opt);
  server.start();
  const HttpResponse r = post(server.port());
  EXPECT_EQ(r.status, 200);
  ASSERT_NE(r.header("X-Sqz-Cache"), nullptr);
  EXPECT_EQ(*r.header("X-Sqz-Cache"), "miss")
      << "a corrupt entry must re-simulate, never serve";
  EXPECT_EQ(r.body, expected) << "the re-simulation is byte-identical";
  EXPECT_EQ(server.cache().stats().disk_quarantined, 1u);
  EXPECT_TRUE(fs::exists(entry.string() + ".bad"));

  const HttpResponse metrics = get(server.port(), "/metrics");
  EXPECT_NE(metrics.body.find("sqzserved_cache_quarantined_total 1"),
            std::string::npos);
  fs::remove_all(dir);
}

TEST_F(Chaos, DiskWriteFailureNeverFailsTheRequest) {
  const fs::path dir = fs::temp_directory_path() / "sqz_chaos_enospc";
  fs::remove_all(dir);
  ServerOptions opt;
  opt.port = 0;
  opt.cache_dir = dir.string();
  Server server(opt);
  server.start();

  util::fault::arm("simcache.write", util::fault::make_errno(ENOSPC));
  const HttpResponse first = post(server.port());
  EXPECT_EQ(first.status, 200) << "a full disk must not fail the simulation";
  EXPECT_EQ(util::fault::hits("simcache.write"), 1u);
  EXPECT_EQ(server.cache().stats().disk_errors, 1u);
  EXPECT_FALSE(server.cache().stats().disk_demoted);

  // The result still landed in the memory tier.
  const HttpResponse second = post(server.port());
  EXPECT_EQ(second.status, 200);
  ASSERT_NE(second.header("X-Sqz-Cache"), nullptr);
  EXPECT_EQ(*second.header("X-Sqz-Cache"), "hit");
  EXPECT_EQ(second.body, first.body);

  const HttpResponse metrics = get(server.port(), "/metrics");
  EXPECT_NE(metrics.body.find("sqzserved_cache_disk_errors_total 1"),
            std::string::npos);
  fs::remove_all(dir);
}

TEST_F(Chaos, TornDiskReadIsCaughtAndResimulated) {
  const fs::path dir = fs::temp_directory_path() / "sqz_chaos_tornread";
  fs::remove_all(dir);
  std::string expected;
  {
    ServerOptions opt;
    opt.port = 0;
    opt.cache_dir = dir.string();
    Server server(opt);
    server.start();
    const HttpResponse r = post(server.port());
    ASSERT_EQ(r.status, 200) << r.body;
    expected = r.body;
  }
  ServerOptions opt;
  opt.port = 0;
  opt.cache_dir = dir.string();
  Server server(opt);
  server.start();
  // The disk read returns only 20 bytes; the checksum must reject it.
  util::fault::arm("simcache.read", util::fault::make_short(20));
  const HttpResponse r = post(server.port());
  EXPECT_EQ(r.status, 200);
  ASSERT_NE(r.header("X-Sqz-Cache"), nullptr);
  EXPECT_EQ(*r.header("X-Sqz-Cache"), "miss");
  EXPECT_EQ(r.body, expected);
  EXPECT_EQ(util::fault::hits("simcache.read"), 1u);
  EXPECT_EQ(server.cache().stats().disk_quarantined, 1u);
  fs::remove_all(dir);
}

// --- plan-cache fault points: a plan may never fail a request --------------

TEST_F(Chaos, PlanReadDeviceErrorFallsBackToCompileByteIdentically) {
  const fs::path dir = fs::temp_directory_path() / "sqz_chaos_plan_eio";
  fs::remove_all(dir);
  std::string expected;
  {
    ServerOptions opt;
    opt.port = 0;
    opt.plan_cache_dir = dir.string();
    Server server(opt);
    server.start();
    const HttpResponse r = post(server.port());
    ASSERT_EQ(r.status, 200) << r.body;
    expected = r.body;
  }
  ServerOptions opt;
  opt.port = 0;
  opt.plan_cache_dir = dir.string();
  Server server(opt);
  server.start();
  // The plan artifact's device fails outright; the request must fall back
  // to a fresh compile and answer with the exact fault-free bytes.
  util::fault::arm("plan.read", util::fault::make_errno(EIO));
  const HttpResponse r = post(server.port());
  EXPECT_EQ(r.status, 200);
  ASSERT_NE(r.header("X-Sqz-Plan"), nullptr);
  EXPECT_EQ(*r.header("X-Sqz-Plan"), "miss");
  EXPECT_EQ(r.body, expected);
  EXPECT_EQ(util::fault::hits("plan.read"), 1u);
  ASSERT_NE(server.plan_cache(), nullptr);
  EXPECT_EQ(server.plan_cache()->stats().disk_errors, 1u);
  // An I/O error is not corruption: the artifact is left in place, not
  // quarantined — the device may come back.
  EXPECT_EQ(server.plan_cache()->stats().corrupt, 0u);
  for (const auto& e : fs::directory_iterator(dir))
    EXPECT_NE(e.path().extension(), ".bad");
  fs::remove_all(dir);
}

TEST_F(Chaos, TornPlanReadIsQuarantinedAndRecompiledIdentically) {
  const fs::path dir = fs::temp_directory_path() / "sqz_chaos_plan_torn";
  fs::remove_all(dir);
  std::string expected;
  {
    ServerOptions opt;
    opt.port = 0;
    opt.plan_cache_dir = dir.string();
    Server server(opt);
    server.start();
    const HttpResponse r = post(server.port());
    ASSERT_EQ(r.status, 200) << r.body;
    expected = r.body;
  }
  ServerOptions opt;
  opt.port = 0;
  opt.plan_cache_dir = dir.string();
  Server server(opt);
  server.start();
  // The plan read returns only 20 bytes; the checksum wall rejects it, the
  // torn artifact is quarantined, and the request compiles fresh.
  util::fault::arm("plan.read", util::fault::make_short(20));
  const HttpResponse r = post(server.port());
  EXPECT_EQ(r.status, 200);
  ASSERT_NE(r.header("X-Sqz-Plan"), nullptr);
  EXPECT_EQ(*r.header("X-Sqz-Plan"), "miss");
  EXPECT_EQ(r.body, expected);
  EXPECT_EQ(util::fault::hits("plan.read"), 1u);
  ASSERT_NE(server.plan_cache(), nullptr);
  EXPECT_EQ(server.plan_cache()->stats().corrupt, 1u);
  bool bad_seen = false;
  for (const auto& e : fs::directory_iterator(dir))
    bad_seen |= e.path().extension() == ".bad";
  EXPECT_TRUE(bad_seen);
  const HttpResponse metrics = get(server.port(), "/metrics");
  EXPECT_NE(metrics.body.find("sqzserved_plan_corrupt_total 1"),
            std::string::npos);
  fs::remove_all(dir);
}

TEST_F(Chaos, PlanWriteEnospcNeverFailsTheRequest) {
  const fs::path dir = fs::temp_directory_path() / "sqz_chaos_plan_enospc";
  fs::remove_all(dir);
  ServerOptions opt;
  opt.port = 0;
  opt.plan_cache_dir = dir.string();
  Server server(opt);
  server.start();

  util::fault::arm("plan.write", util::fault::make_errno(ENOSPC));
  const HttpResponse r = post(server.port());
  EXPECT_EQ(r.status, 200) << "a full disk must not fail the simulation";
  EXPECT_EQ(util::fault::hits("plan.write"), 1u);
  ASSERT_NE(server.plan_cache(), nullptr);
  EXPECT_EQ(server.plan_cache()->stats().disk_errors, 1u);
  // Nothing was published to the disk tier...
  for (const auto& e : fs::directory_iterator(dir))
    EXPECT_NE(e.path().extension(), ".plan");
  // ...but the memory tier kept the plan.
  EXPECT_EQ(server.plan_cache()->stats().insertions, 1u);
  fs::remove_all(dir);
}

// --- shutdown under fire ---------------------------------------------------

TEST_F(Chaos, StopMidFaultDrainsTheInFlightRequestCleanly) {
  ServerOptions opt;
  opt.port = 0;
  Server server(opt);
  server.start();
  const HttpResponse expected = post(server.port());
  ASSERT_EQ(expected.status, 200) << expected.body;

  // The in-flight request is stalled 400 ms at the recv fault point when
  // stop() lands — the daemon's SIGTERM path. Drain must wait for it.
  util::fault::arm("serve.recv", util::fault::make_stall(400));
  HttpResponse late;
  late.status = 0;
  std::thread client([&server, &late] {
    try {
      late = post(server.port());
    } catch (const std::exception&) {
      late.status = -1;  // connection rejected: drain failed its promise
    }
  });
  // The fault registry counts the hit before the stall sleeps, so once the
  // counter moves the request is provably mid-fault.
  const auto armed_by = Clock::now() + std::chrono::seconds(5);
  while (util::fault::hits("serve.recv") == 0 && Clock::now() < armed_by)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(util::fault::hits("serve.recv"), 1u);
  server.stop();
  EXPECT_FALSE(server.running());
  client.join();
  EXPECT_EQ(late.status, 200);
  EXPECT_EQ(late.body, expected.body)
      << "a drained shutdown still answers with the exact bytes";
  server.stop();  // idempotent after chaos, too
}

}  // namespace
}  // namespace sqz::serve
