#include "runtime/tensor.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sqz::runtime {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t(nn::TensorShape{2, 3, 4});
  EXPECT_EQ(t.size(), 24);
  for (int c = 0; c < 2; ++c)
    for (int y = 0; y < 3; ++y)
      for (int x = 0; x < 4; ++x) EXPECT_EQ(t.at(c, y, x), 0);
}

TEST(Tensor, SetGetRoundTrip) {
  Tensor t(nn::TensorShape{2, 3, 4});
  t.set(1, 2, 3, -77);
  EXPECT_EQ(t.at(1, 2, 3), -77);
  EXPECT_EQ(t.at(1, 2, 2), 0);
}

TEST(Tensor, ChannelMajorLayout) {
  Tensor t(nn::TensorShape{2, 2, 2});
  t.set(0, 0, 0, 1);
  t.set(0, 0, 1, 2);
  t.set(0, 1, 0, 3);
  t.set(1, 0, 0, 5);
  EXPECT_EQ(t.data()[0], 1);
  EXPECT_EQ(t.data()[1], 2);
  EXPECT_EQ(t.data()[2], 3);
  EXPECT_EQ(t.data()[4], 5);
}

TEST(Tensor, PaddedReadsReturnZeroOutside) {
  Tensor t(nn::TensorShape{1, 2, 2});
  t.set(0, 0, 0, 9);
  EXPECT_EQ(t.at_padded(0, -1, 0), 0);
  EXPECT_EQ(t.at_padded(0, 0, -1), 0);
  EXPECT_EQ(t.at_padded(0, 2, 0), 0);
  EXPECT_EQ(t.at_padded(0, 0, 2), 0);
  EXPECT_EQ(t.at_padded(0, 0, 0), 9);
}

TEST(Tensor, RejectsBadShape) {
  EXPECT_THROW(Tensor(nn::TensorShape{0, 1, 1}), std::invalid_argument);
}

TEST(Tensor, EqualityIsElementwise) {
  Tensor a(nn::TensorShape{1, 2, 2}), b(nn::TensorShape{1, 2, 2});
  EXPECT_EQ(a, b);
  b.set(0, 1, 1, 1);
  EXPECT_NE(a, b);
}

TEST(WeightTensor, LayoutAndBias) {
  WeightTensor w(2, 3, 2, 2);
  EXPECT_EQ(w.size(), 2 * 3 * 2 * 2);
  w.set(1, 2, 1, 0, 42);
  EXPECT_EQ(w.at(1, 2, 1, 0), 42);
  EXPECT_EQ(w.at(1, 2, 0, 1), 0);
  w.set_bias(1, -1000);
  EXPECT_EQ(w.bias(1), -1000);
  EXPECT_EQ(w.bias(0), 0);
}

TEST(WeightTensor, NonzeroCounts) {
  WeightTensor w(2, 1, 2, 2);
  EXPECT_EQ(w.nonzero_count(), 0);
  w.set(0, 0, 0, 0, 5);
  w.set(0, 0, 1, 1, -5);
  w.set(1, 0, 0, 1, 7);
  EXPECT_EQ(w.nonzero_count(), 3);
  EXPECT_EQ(w.nonzero_count(0, 0), 2);
  EXPECT_EQ(w.nonzero_count(1, 0), 1);
}

TEST(WeightTensor, RejectsBadDims) {
  EXPECT_THROW(WeightTensor(0, 1, 1, 1), std::invalid_argument);
  EXPECT_THROW(WeightTensor(1, 1, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace sqz::runtime
