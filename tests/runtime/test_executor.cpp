#include "runtime/executor.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "nn/model.h"
#include "runtime/ops.h"

namespace sqz::runtime {
namespace {

nn::Model fire_like_model() {
  nn::Model m("fire", nn::TensorShape{4, 12, 12});
  const int c1 = m.add_conv("conv1", 8, 3, 2, 0);
  const int sq = m.add_conv("squeeze", 4, 1, 1, 0, c1);
  const int e1 = m.add_conv("e1", 8, 1, 1, 0, sq);
  const int e3 = m.add_conv("e3", 8, 3, 1, 1, sq);
  const int cat = m.add_concat("cat", {e1, e3});
  const int pool = m.add_maxpool("pool", 2, 2, cat);
  const int res = m.add_add("res", pool, pool);
  m.add_global_avgpool("gap", res);
  m.add_fc("fc", 10, false);
  m.finalize();
  return m;
}

TEST(Executor, RunsWholeGraph) {
  const nn::Model m = fire_like_model();
  Executor ex(m, ExecutorConfig{});
  ex.run();
  EXPECT_EQ(ex.final_output().shape(), (nn::TensorShape{10, 1, 1}));
  for (int i = 0; i < m.layer_count(); ++i)
    EXPECT_EQ(ex.output(i).shape(), m.layer(i).out_shape) << i;
}

TEST(Executor, Deterministic) {
  const nn::Model m = fire_like_model();
  Executor a(m, ExecutorConfig{});
  Executor b(m, ExecutorConfig{});
  a.run();
  b.run();
  EXPECT_EQ(a.final_output(), b.final_output());
}

TEST(Executor, InputSeedChangesOutputs) {
  const nn::Model m = fire_like_model();
  ExecutorConfig c1, c2;
  c2.input_seed = c1.input_seed + 1;
  Executor a(m, c1), b(m, c2);
  a.run();
  b.run();
  EXPECT_NE(a.final_output(), b.final_output());
}

TEST(Executor, MatchesManualOps) {
  // A 2-layer model executed manually must match the executor exactly.
  nn::Model m("two", nn::TensorShape{3, 8, 8});
  m.add_conv("c1", 6, 3, 1, 1);
  m.add_maxpool("p", 2, 2);
  m.finalize();
  Executor ex(m, ExecutorConfig{});
  ex.run();

  const Tensor in = generate_input(m, ExecutorConfig{}.input_seed);
  Requant rq = ExecutorConfig{}.requant;
  rq.relu = m.layer(1).conv.relu;
  const Tensor conv = conv2d(in, ex.weights(1), m.layer(1).conv, rq);
  const Tensor pool = maxpool(conv, m.layer(2).pool);
  EXPECT_EQ(ex.output(1), conv);
  EXPECT_EQ(ex.output(2), pool);
}

TEST(Executor, OutputBeforeRunThrows) {
  const nn::Model m = fire_like_model();
  Executor ex(m, ExecutorConfig{});
  EXPECT_THROW(ex.output(1), std::logic_error);
}

TEST(Executor, RejectsWrongInputShape) {
  const nn::Model m = fire_like_model();
  Executor ex(m, ExecutorConfig{});
  EXPECT_THROW(ex.run(Tensor(nn::TensorShape{3, 12, 12})), std::invalid_argument);
}

TEST(Executor, RejectsUnfinalizedModel) {
  nn::Model m("u", nn::TensorShape{3, 8, 8});
  m.add_conv("c", 4, 3, 1, 1);
  EXPECT_THROW(Executor(m, ExecutorConfig{}), std::invalid_argument);
}

TEST(Executor, GemmPathIsBitExactWithDirectPath) {
  const nn::Model m = fire_like_model();
  ExecutorConfig direct_cfg, gemm_cfg;
  direct_cfg.gemm_threshold_macs = std::numeric_limits<std::int64_t>::max();
  gemm_cfg.gemm_threshold_macs = 0;  // every conv through im2col+GEMM
  Executor direct(m, direct_cfg), gemm(m, gemm_cfg);
  direct.run();
  gemm.run();
  for (int i = 0; i < m.layer_count(); ++i)
    EXPECT_EQ(direct.output(i), gemm.output(i)) << m.layer(i).name;
}

TEST(Executor, WeightCacheIsStable) {
  const nn::Model m = fire_like_model();
  Executor ex(m, ExecutorConfig{});
  const WeightTensor& w1 = ex.weights(1);
  const WeightTensor& w2 = ex.weights(1);
  EXPECT_EQ(&w1, &w2);  // same cached object
}

TEST(Executor, ResidualAddDoublesValues) {
  nn::Model m("res", nn::TensorShape{2, 4, 4});
  const int c = m.add_conv("c", 2, 1, 1, 0);
  m.add_add("a", c, c);
  m.finalize();
  Executor ex(m, ExecutorConfig{});
  ex.run();
  const Tensor& conv = ex.output(1);
  const Tensor& sum = ex.output(2);
  for (std::int64_t i = 0; i < conv.size(); ++i)
    EXPECT_EQ(sum.data()[i], sat_add16(conv.data()[i], conv.data()[i]));
}

}  // namespace
}  // namespace sqz::runtime
