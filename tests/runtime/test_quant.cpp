#include "runtime/quant.h"

#include <gtest/gtest.h>

namespace sqz::runtime {
namespace {

TEST(Requant, ShiftRoundsToNearest) {
  Requant rq{.shift = 4, .relu = false};
  EXPECT_EQ(rq.apply(16), 1);
  EXPECT_EQ(rq.apply(7), 0);   // 7/16 rounds down
  EXPECT_EQ(rq.apply(8), 1);   // ties round up
  EXPECT_EQ(rq.apply(24), 2);  // 1.5 -> 2
}

TEST(Requant, NegativeValues) {
  Requant rq{.shift = 4, .relu = false};
  EXPECT_EQ(rq.apply(-16), -1);
  EXPECT_EQ(rq.apply(-32), -2);
}

TEST(Requant, ReluClampsNegative) {
  Requant rq{.shift = 4, .relu = true};
  EXPECT_EQ(rq.apply(-160), 0);
  EXPECT_EQ(rq.apply(160), 10);
}

TEST(Requant, SaturatesToInt16) {
  Requant rq{.shift = 0, .relu = false};
  EXPECT_EQ(rq.apply(1 << 20), 32767);
  EXPECT_EQ(rq.apply(-(1 << 20)), -32768);
}

TEST(Requant, Shift0PassesThrough) {
  Requant rq{.shift = 0, .relu = false};
  // shift==0 uses rounding term 1<<-1; the struct documents shift >= 1 in
  // normal use, but shift=0 must still saturate correctly for in-range input.
  EXPECT_EQ(rq.apply(123), 123);
}

TEST(SatAdd16, Saturates) {
  EXPECT_EQ(sat_add16(32000, 1000), 32767);
  EXPECT_EQ(sat_add16(-32000, -1000), -32768);
  EXPECT_EQ(sat_add16(100, -30), 70);
}

}  // namespace
}  // namespace sqz::runtime
