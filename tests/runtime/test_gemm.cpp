#include "runtime/gemm.h"

#include <gtest/gtest.h>

#include <tuple>

#include "nn/model.h"
#include "runtime/ops.h"
#include "runtime/weights.h"

namespace sqz::runtime {
namespace {

TEST(Gemm, KnownSmallProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const std::int16_t a[] = {1, 2, 3, 4};
  const std::int16_t b[] = {5, 6, 7, 8};
  std::int64_t c[4];
  gemm_i16(a, b, c, 2, 2, 2);
  EXPECT_EQ(c[0], 19);
  EXPECT_EQ(c[1], 22);
  EXPECT_EQ(c[2], 43);
  EXPECT_EQ(c[3], 50);
}

TEST(Gemm, RectangularShapes) {
  // 1x3 times 3x2.
  const std::int16_t a[] = {1, -1, 2};
  const std::int16_t b[] = {1, 0, 0, 1, 1, 1};
  std::int64_t c[2];
  gemm_i16(a, b, c, 1, 3, 2);
  EXPECT_EQ(c[0], 1 - 0 + 2);
  EXPECT_EQ(c[1], 0 - 1 + 2);
}

TEST(Gemm, OverwritesOutput) {
  const std::int16_t a[] = {0};
  const std::int16_t b[] = {0};
  std::int64_t c[1] = {12345};
  gemm_i16(a, b, c, 1, 1, 1);
  EXPECT_EQ(c[0], 0);
}

TEST(Im2col, IdentityKernelIsFlatten) {
  Tensor in(nn::TensorShape{2, 2, 2});
  for (int i = 0; i < 8; ++i) in.data()[i] = static_cast<std::int16_t>(i + 1);
  nn::ConvParams p;
  p.out_channels = 1;
  p.kh = p.kw = 1;
  const auto cols = im2col(in, p, 0);
  ASSERT_EQ(cols.size(), 8u);  // K = 2, N = 4
  for (int i = 0; i < 8; ++i) EXPECT_EQ(cols[static_cast<std::size_t>(i)], i + 1);
}

TEST(Im2col, PaddingYieldsZeros) {
  Tensor in(nn::TensorShape{1, 2, 2});
  in.set(0, 0, 0, 7);
  nn::ConvParams p;
  p.out_channels = 1;
  p.kh = p.kw = 3;
  p.pad_h = p.pad_w = 1;
  const auto cols = im2col(in, p, 0);
  ASSERT_EQ(cols.size(), 9u * 4u);
  // Tap (0,0) for output (0,0) reads input (-1,-1) -> 0.
  EXPECT_EQ(cols[0], 0);
  // Tap (1,1) (the centre) for output (0,0) reads input (0,0) -> 7.
  EXPECT_EQ(cols[4u * 4u + 0u], 7);
}

// The core property: conv2d_gemm must agree bit-exactly with the direct
// loop-nest reference on a grid of layer shapes.
class GemmVsDirect
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(GemmVsDirect, BitExact) {
  const auto [cin, cout, kernel, stride, groups] = GetParam();
  if (cin % groups != 0 || cout % groups != 0) GTEST_SKIP();
  nn::Model m("g", nn::TensorShape{cin, 15, 15});
  nn::ConvParams p;
  p.out_channels = cout;
  p.kh = p.kw = kernel;
  p.stride = stride;
  p.pad_h = p.pad_w = kernel / 2;
  p.groups = groups;
  m.add_conv("c", p);
  m.finalize();

  WeightGenConfig wc;
  wc.sparsity = 0.4;
  const WeightTensor w = generate_weights(m, 1, wc);
  const Tensor in = generate_input(m, 77);
  const Requant rq{.shift = 7, .relu = true};
  EXPECT_EQ(conv2d_gemm(in, w, p, rq), conv2d(in, w, p, rq));
}

INSTANTIATE_TEST_SUITE_P(ShapeGrid, GemmVsDirect,
                         ::testing::Combine(::testing::Values(1, 4, 12),
                                            ::testing::Values(3, 8),
                                            ::testing::Values(1, 3, 5),
                                            ::testing::Values(1, 2),
                                            ::testing::Values(1, 2, 4)));

TEST(GemmVsDirect, DepthwiseAgrees) {
  nn::Model m("dw", nn::TensorShape{6, 12, 12});
  m.add_depthwise("d", 3, 1, 1);
  m.finalize();
  const WeightTensor w = generate_weights(m, 1, WeightGenConfig{});
  const Tensor in = generate_input(m, 5);
  const Requant rq;
  EXPECT_EQ(conv2d_gemm(in, w, m.layer(1).conv, rq),
            conv2d(in, w, m.layer(1).conv, rq));
}

TEST(GemmVsDirect, NegativeOutputsWithoutRelu) {
  nn::Model m("n", nn::TensorShape{4, 9, 9});
  nn::ConvParams p;
  p.out_channels = 4;
  p.kh = p.kw = 3;
  p.pad_h = p.pad_w = 1;
  p.relu = false;
  m.add_conv("c", p);
  m.finalize();
  const WeightTensor w = generate_weights(m, 1, WeightGenConfig{});
  const Tensor in = generate_input(m, 6);
  const Requant rq{.shift = 7, .relu = false};
  const Tensor a = conv2d_gemm(in, w, p, rq);
  EXPECT_EQ(a, conv2d(in, w, p, rq));
  bool negative = false;
  for (std::int64_t i = 0; i < a.size(); ++i)
    if (a.data()[i] < 0) negative = true;
  EXPECT_TRUE(negative);
}

TEST(GemmConv, RejectsMismatchedWeights) {
  Tensor in(nn::TensorShape{2, 4, 4});
  WeightTensor w(1, 1, 1, 1);
  nn::ConvParams p;
  p.out_channels = 1;
  p.kh = p.kw = 1;
  EXPECT_THROW(conv2d_gemm(in, w, p, Requant{}), std::invalid_argument);
}

}  // namespace
}  // namespace sqz::runtime
