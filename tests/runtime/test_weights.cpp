#include "runtime/weights.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "nn/model.h"

namespace sqz::runtime {
namespace {

nn::Model conv_model() {
  nn::Model m("w", nn::TensorShape{8, 12, 12});
  m.add_conv("c", 16, 3, 1, 1);
  m.add_maxpool("p", 2, 2);
  m.add_fc("f", 10);
  m.finalize();
  return m;
}

TEST(Weights, DeterministicAcrossCalls) {
  const nn::Model m = conv_model();
  WeightGenConfig cfg;
  const WeightTensor a = generate_weights(m, 1, cfg);
  const WeightTensor b = generate_weights(m, 1, cfg);
  EXPECT_EQ(a.nonzero_count(), b.nonzero_count());
  for (int oc = 0; oc < a.oc(); ++oc)
    for (int ic = 0; ic < a.ic_per_group(); ++ic)
      for (int ky = 0; ky < a.kh(); ++ky)
        for (int kx = 0; kx < a.kw(); ++kx)
          ASSERT_EQ(a.at(oc, ic, ky, kx), b.at(oc, ic, ky, kx));
}

TEST(Weights, SparsityNearConfigured) {
  const nn::Model m = conv_model();
  WeightGenConfig cfg;
  cfg.sparsity = 0.40;
  const WeightTensor w = generate_weights(m, 1, cfg);
  const double zero_frac =
      1.0 - static_cast<double>(w.nonzero_count()) / static_cast<double>(w.size());
  EXPECT_NEAR(zero_frac, 0.40, 0.05);
}

TEST(Weights, DenseWhenSparsityZero) {
  const nn::Model m = conv_model();
  WeightGenConfig cfg;
  cfg.sparsity = 0.0;
  const WeightTensor w = generate_weights(m, 1, cfg);
  EXPECT_EQ(w.nonzero_count(), w.size());
}

TEST(Weights, MagnitudeBounded) {
  const nn::Model m = conv_model();
  WeightGenConfig cfg;
  cfg.magnitude = 7;
  const WeightTensor w = generate_weights(m, 1, cfg);
  for (int oc = 0; oc < w.oc(); ++oc)
    for (int ic = 0; ic < w.ic_per_group(); ++ic)
      for (int ky = 0; ky < w.kh(); ++ky)
        for (int kx = 0; kx < w.kw(); ++kx) {
          ASSERT_LE(w.at(oc, ic, ky, kx), 7);
          ASSERT_GE(w.at(oc, ic, ky, kx), -7);
        }
}

TEST(Weights, DifferentLayersGetDifferentStreams) {
  const nn::Model m = conv_model();
  WeightGenConfig cfg;
  const WeightTensor conv = generate_weights(m, 1, cfg);
  const WeightTensor fc = generate_weights(m, 3, cfg);
  EXPECT_EQ(fc.oc(), 10);
  EXPECT_EQ(fc.ic_per_group(), 16 * 6 * 6);
  // Streams differ: astronomically unlikely the first plane matches.
  bool differ = false;
  for (int k = 0; k < 9 && !differ; ++k)
    differ = conv.at(0, 0, k / 3, k % 3) != fc.at(0, k, 0, 0);
  EXPECT_TRUE(differ);
}

TEST(Weights, BiasesToggle) {
  const nn::Model m = conv_model();
  WeightGenConfig cfg;
  cfg.biases = false;
  const WeightTensor w = generate_weights(m, 1, cfg);
  for (int oc = 0; oc < w.oc(); ++oc) EXPECT_EQ(w.bias(oc), 0);
}

TEST(Weights, RejectsParameterlessLayers) {
  const nn::Model m = conv_model();
  EXPECT_THROW(generate_weights(m, 2, WeightGenConfig{}), std::invalid_argument);
}

TEST(Weights, DepthwiseShape) {
  nn::Model m("dw", nn::TensorShape{6, 8, 8});
  m.add_depthwise("d", 3, 1, 1);
  m.finalize();
  const WeightTensor w = generate_weights(m, 1, WeightGenConfig{});
  EXPECT_EQ(w.oc(), 6);
  EXPECT_EQ(w.ic_per_group(), 1);
}

TEST(GenerateInput, DeterministicAndBounded) {
  const nn::Model m = conv_model();
  const Tensor a = generate_input(m, 7);
  const Tensor b = generate_input(m, 7);
  const Tensor c = generate_input(m, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (std::int64_t i = 0; i < a.size(); ++i) {
    EXPECT_LE(a.data()[i], 127);
    EXPECT_GE(a.data()[i], -128);
  }
}

}  // namespace
}  // namespace sqz::runtime
