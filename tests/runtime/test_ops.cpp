#include "runtime/ops.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sqz::runtime {
namespace {

const Requant kNoQuant{.shift = 0, .relu = false};

Tensor filled(nn::TensorShape shape, std::int16_t base = 1) {
  Tensor t(shape);
  std::int16_t v = base;
  for (std::int64_t i = 0; i < t.size(); ++i) t.data()[i] = v++;
  return t;
}

TEST(Conv2d, IdentityKernelCopiesInput) {
  const Tensor in = filled({1, 3, 3});
  WeightTensor w(1, 1, 1, 1);
  w.set(0, 0, 0, 0, 1);
  nn::ConvParams p;
  p.out_channels = 1;
  p.kh = p.kw = 1;
  const Tensor out = conv2d(in, w, p, kNoQuant);
  EXPECT_EQ(out, in);
}

TEST(Conv2d, KnownBoxFilter) {
  // 2x2 all-ones kernel over a 3x3 ramp 1..9, stride 1, no pad -> 2x2 sums.
  const Tensor in = filled({1, 3, 3});
  WeightTensor w(1, 1, 2, 2);
  for (int ky = 0; ky < 2; ++ky)
    for (int kx = 0; kx < 2; ++kx) w.set(0, 0, ky, kx, 1);
  nn::ConvParams p;
  p.out_channels = 1;
  p.kh = p.kw = 2;
  const Tensor out = conv2d(in, w, p, kNoQuant);
  EXPECT_EQ(out.at(0, 0, 0), 1 + 2 + 4 + 5);
  EXPECT_EQ(out.at(0, 0, 1), 2 + 3 + 5 + 6);
  EXPECT_EQ(out.at(0, 1, 0), 4 + 5 + 7 + 8);
  EXPECT_EQ(out.at(0, 1, 1), 5 + 6 + 8 + 9);
}

TEST(Conv2d, PaddingContributesZero) {
  const Tensor in = filled({1, 2, 2});  // [[1,2],[3,4]]
  WeightTensor w(1, 1, 3, 3);
  for (int ky = 0; ky < 3; ++ky)
    for (int kx = 0; kx < 3; ++kx) w.set(0, 0, ky, kx, 1);
  nn::ConvParams p;
  p.out_channels = 1;
  p.kh = p.kw = 3;
  p.pad_h = p.pad_w = 1;
  const Tensor out = conv2d(in, w, p, kNoQuant);
  EXPECT_EQ(out.shape(), (nn::TensorShape{1, 2, 2}));
  EXPECT_EQ(out.at(0, 0, 0), 1 + 2 + 3 + 4);  // whole image in window
}

TEST(Conv2d, StrideSkipsPositions) {
  const Tensor in = filled({1, 4, 4});
  WeightTensor w(1, 1, 1, 1);
  w.set(0, 0, 0, 0, 1);
  nn::ConvParams p;
  p.out_channels = 1;
  p.kh = p.kw = 1;
  p.stride = 2;
  const Tensor out = conv2d(in, w, p, kNoQuant);
  EXPECT_EQ(out.shape(), (nn::TensorShape{1, 2, 2}));
  EXPECT_EQ(out.at(0, 0, 0), in.at(0, 0, 0));
  EXPECT_EQ(out.at(0, 1, 1), in.at(0, 2, 2));
}

TEST(Conv2d, SumsAcrossChannels) {
  Tensor in({2, 1, 1});
  in.set(0, 0, 0, 10);
  in.set(1, 0, 0, 3);
  WeightTensor w(1, 2, 1, 1);
  w.set(0, 0, 0, 0, 2);
  w.set(0, 1, 0, 0, -1);
  nn::ConvParams p;
  p.out_channels = 1;
  p.kh = p.kw = 1;
  const Tensor out = conv2d(in, w, p, kNoQuant);
  EXPECT_EQ(out.at(0, 0, 0), 20 - 3);
}

TEST(Conv2d, GroupsIsolateChannels) {
  Tensor in({2, 1, 1});
  in.set(0, 0, 0, 10);
  in.set(1, 0, 0, 3);
  WeightTensor w(2, 1, 1, 1);
  w.set(0, 0, 0, 0, 1);
  w.set(1, 0, 0, 0, 1);
  nn::ConvParams p;
  p.out_channels = 2;
  p.kh = p.kw = 1;
  p.groups = 2;
  const Tensor out = conv2d(in, w, p, kNoQuant);
  EXPECT_EQ(out.at(0, 0, 0), 10);  // group 0 sees only channel 0
  EXPECT_EQ(out.at(1, 0, 0), 3);
}

TEST(Conv2d, BiasAdded) {
  Tensor in({1, 1, 1});
  in.set(0, 0, 0, 5);
  WeightTensor w(1, 1, 1, 1);
  w.set(0, 0, 0, 0, 2);
  w.set_bias(0, 100);
  nn::ConvParams p;
  p.out_channels = 1;
  p.kh = p.kw = 1;
  EXPECT_EQ(conv2d(in, w, p, kNoQuant).at(0, 0, 0), 110);
}

TEST(Conv2d, RequantAndRelu) {
  Tensor in({1, 1, 1});
  in.set(0, 0, 0, -8);
  WeightTensor w(1, 1, 1, 1);
  w.set(0, 0, 0, 0, 2);
  nn::ConvParams p;
  p.out_channels = 1;
  p.kh = p.kw = 1;
  EXPECT_EQ(conv2d(in, w, p, Requant{.shift = 2, .relu = false}).at(0, 0, 0), -4);
  EXPECT_EQ(conv2d(in, w, p, Requant{.shift = 2, .relu = true}).at(0, 0, 0), 0);
}

TEST(Conv2d, RejectsMismatchedWeights) {
  const Tensor in = filled({2, 3, 3});
  WeightTensor w(1, 1, 1, 1);
  nn::ConvParams p;
  p.out_channels = 1;
  p.kh = p.kw = 1;
  EXPECT_THROW(conv2d(in, w, p, kNoQuant), std::invalid_argument);  // ic 2 != 1
}

TEST(FullyConnected, MatrixVector) {
  const Tensor in = filled({1, 1, 3});  // [1 2 3]
  WeightTensor w(2, 3, 1, 1);
  // Row 0: [1 1 1], row 1: [0 0 2]
  for (int i = 0; i < 3; ++i) w.set(0, i, 0, 0, 1);
  w.set(1, 2, 0, 0, 2);
  nn::FcParams p{2, false};
  const Tensor out = fully_connected(in, w, p, kNoQuant);
  EXPECT_EQ(out.at(0, 0, 0), 6);
  EXPECT_EQ(out.at(1, 0, 0), 6);
}

TEST(FullyConnected, FlattensChw) {
  // The weight index must follow channel-major flattening.
  Tensor in({2, 1, 2});
  in.set(0, 0, 0, 1);
  in.set(0, 0, 1, 2);
  in.set(1, 0, 0, 3);
  in.set(1, 0, 1, 4);
  WeightTensor w(1, 4, 1, 1);
  w.set(0, 3, 0, 0, 1);  // picks flat index 3 == (c1, x1)
  nn::FcParams p{1, false};
  EXPECT_EQ(fully_connected(in, w, p, kNoQuant).at(0, 0, 0), 4);
}

TEST(MaxPool, PicksWindowMax) {
  const Tensor in = filled({1, 4, 4});
  const Tensor out = maxpool(in, nn::PoolParams{2, 2, 2, 0});
  EXPECT_EQ(out.shape(), (nn::TensorShape{1, 2, 2}));
  EXPECT_EQ(out.at(0, 0, 0), 6);
  EXPECT_EQ(out.at(0, 1, 1), 16);
}

TEST(MaxPool, OverlappingWindows) {
  const Tensor in = filled({1, 5, 5});
  const Tensor out = maxpool(in, nn::PoolParams{3, 3, 2, 0});
  EXPECT_EQ(out.shape(), (nn::TensorShape{1, 2, 2}));
  EXPECT_EQ(out.at(0, 0, 0), 13);
}

TEST(MaxPool, NegativeValuesHandled) {
  Tensor in({1, 2, 2});
  in.set(0, 0, 0, -5);
  in.set(0, 0, 1, -3);
  in.set(0, 1, 0, -9);
  in.set(0, 1, 1, -7);
  const Tensor out = maxpool(in, nn::PoolParams{2, 2, 2, 0});
  EXPECT_EQ(out.at(0, 0, 0), -3);
}

TEST(AvgPool, TruncatingAverage) {
  const Tensor in = filled({1, 2, 2});  // 1 2 3 4 -> mean 2.5 trunc 2
  const Tensor out = avgpool(in, nn::PoolParams{2, 2, 2, 0});
  EXPECT_EQ(out.at(0, 0, 0), 2);
}

TEST(GlobalAvgPool, PerChannelMean) {
  Tensor in({2, 2, 2});
  for (int y = 0; y < 2; ++y)
    for (int x = 0; x < 2; ++x) {
      in.set(0, y, x, 8);
      in.set(1, y, x, static_cast<std::int16_t>(y * 2 + x));  // 0..3
    }
  const Tensor out = global_avgpool(in);
  EXPECT_EQ(out.at(0, 0, 0), 8);
  EXPECT_EQ(out.at(1, 0, 0), 1);  // (0+1+2+3)/4
}

TEST(Relu, ClampsNegatives) {
  Tensor in({1, 1, 3});
  in.set(0, 0, 0, -2);
  in.set(0, 0, 1, 0);
  in.set(0, 0, 2, 2);
  const Tensor out = relu(in);
  EXPECT_EQ(out.at(0, 0, 0), 0);
  EXPECT_EQ(out.at(0, 0, 1), 0);
  EXPECT_EQ(out.at(0, 0, 2), 2);
}

TEST(Concat, StacksChannels) {
  const Tensor a = filled({1, 2, 2}, 1);
  const Tensor b = filled({2, 2, 2}, 10);
  const Tensor out = concat_channels({&a, &b});
  EXPECT_EQ(out.shape(), (nn::TensorShape{3, 2, 2}));
  EXPECT_EQ(out.at(0, 0, 0), a.at(0, 0, 0));
  EXPECT_EQ(out.at(1, 1, 1), b.at(0, 1, 1));
  EXPECT_EQ(out.at(2, 0, 0), b.at(1, 0, 0));
}

TEST(Concat, RejectsMismatch) {
  const Tensor a = filled({1, 2, 2});
  const Tensor b = filled({1, 3, 3});
  EXPECT_THROW(concat_channels({&a, &b}), std::invalid_argument);
  EXPECT_THROW(concat_channels({}), std::invalid_argument);
}

TEST(AddTensors, ElementwiseSaturating) {
  Tensor a({1, 1, 2}), b({1, 1, 2});
  a.set(0, 0, 0, 32000);
  b.set(0, 0, 0, 32000);
  a.set(0, 0, 1, 5);
  b.set(0, 0, 1, -3);
  const Tensor out = add_tensors(a, b);
  EXPECT_EQ(out.at(0, 0, 0), 32767);
  EXPECT_EQ(out.at(0, 0, 1), 2);
  EXPECT_THROW(add_tensors(a, filled({1, 2, 2})), std::invalid_argument);
}

}  // namespace
}  // namespace sqz::runtime
