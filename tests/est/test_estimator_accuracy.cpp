// The estimator's accuracy contract (docs/ESTIMATOR.md), enforced:
//
//  * Flat model (the mode screening uses): the closed-form estimate is
//    EXACTLY the simulator's result — cycles and every access counter — for
//    every layer of every zoo network under both dataflows, across a grid of
//    micro-architectural configurations.
//  * Tile-timeline mode: the closed-form pipeline bound is within
//    kTimelineBoundPct of the event-driven makespan per network.
#include "est/estimator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "sim/layer_sim.h"

namespace sqz::est {
namespace {

// The documented tile-timeline bound (docs/ESTIMATOR.md "Accuracy
// contract"). Flat-mode agreement is exact, so screening inherits this bound
// only when the exact phase re-runs with the timeline enabled.
constexpr double kTimelineBoundPct = 5.0;

std::vector<sim::AcceleratorConfig> config_grid() {
  std::vector<sim::AcceleratorConfig> grid;
  grid.push_back(sim::AcceleratorConfig::squeezelerator());
  grid.push_back(sim::AcceleratorConfig::squeezelerator_rf8());
  grid.push_back(sim::AcceleratorConfig::reference_ws());
  grid.push_back(sim::AcceleratorConfig::reference_os());
  {
    sim::AcceleratorConfig c = sim::AcceleratorConfig::squeezelerator();
    c.array_n = 16;
    c.preload_width = 16;
    c.drain_width = 16;
    grid.push_back(c);
  }
  {
    sim::AcceleratorConfig c = sim::AcceleratorConfig::squeezelerator();
    c.array_n = 8;
    c.rf_entries = 8;
    c.os_zero_skip = false;
    grid.push_back(c);
  }
  {
    sim::AcceleratorConfig c = sim::AcceleratorConfig::squeezelerator();
    c.ws_psums_in_gb = true;
    c.weight_sparsity = 0.25;
    grid.push_back(c);
  }
  {
    sim::AcceleratorConfig c = sim::AcceleratorConfig::squeezelerator();
    c.batch = 4;
    grid.push_back(c);
  }
  return grid;
}

void expect_layer_equal(const sim::LayerResult& est, const sim::LayerResult& ref,
                        const std::string& where) {
  EXPECT_EQ(est.compute_cycles, ref.compute_cycles) << where;
  EXPECT_EQ(est.total_cycles, ref.total_cycles) << where;
  EXPECT_EQ(est.dram_cycles, ref.dram_cycles) << where;
  EXPECT_EQ(est.useful_macs, ref.useful_macs) << where;
  EXPECT_EQ(est.dataflow, ref.dataflow) << where;
  EXPECT_EQ(est.counts, ref.counts) << where;
}

double rel_err_pct(std::int64_t est, std::int64_t ref) {
  if (ref == 0) return est == 0 ? 0.0 : 1e9;
  return 100.0 * std::abs(static_cast<double>(est - ref)) /
         static_cast<double>(ref);
}

TEST(EstimatorAccuracy, FlatLayerExactAcrossZooAndConfigGrid) {
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    for (const sim::AcceleratorConfig& cfg : config_grid()) {
      for (int i = 1; i < m.layer_count(); ++i) {
        for (const sim::Dataflow df : {sim::Dataflow::WeightStationary,
                                       sim::Dataflow::OutputStationary}) {
          const std::string where =
              m.name() + " layer " + m.layer(i).name + " n=" +
              std::to_string(cfg.array_n) +
              (df == sim::Dataflow::WeightStationary ? " WS" : " OS");
          const sim::LayerResult ref = sim::simulate_layer(m, i, cfg, df);
          const sim::LayerResult est = estimate_layer(m, i, cfg, df);
          expect_layer_equal(est, ref, where);
        }
      }
    }
  }
}

TEST(EstimatorAccuracy, FlatNetworkExactAcrossZoo) {
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    for (const sim::AcceleratorConfig& cfg : config_grid()) {
      const sim::NetworkResult ref = sched::simulate_network(m, cfg);
      const sim::NetworkResult est = estimate_network(m, cfg);
      ASSERT_EQ(est.layers.size(), ref.layers.size()) << m.name();
      EXPECT_EQ(est.total_cycles(), ref.total_cycles()) << m.name();
      EXPECT_EQ(est.total_counts(), ref.total_counts()) << m.name();
    }
  }
}

TEST(EstimatorAccuracy, FlatNetworkExactWithFusionAndEnergyObjective) {
  sched::SimulationOptions opt;
  opt.fuse_pool_drain = true;
  opt.objective = sched::Objective::Energy;
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    const sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();
    const sim::NetworkResult ref = sched::simulate_network(m, cfg, opt);
    const sim::NetworkResult est = estimate_network(m, cfg, opt);
    EXPECT_EQ(est.total_cycles(), ref.total_cycles()) << m.name();
    EXPECT_EQ(est.total_counts(), ref.total_counts()) << m.name();
  }
}

TEST(EstimatorAccuracy, TimelineNetworkWithinDocumentedBound) {
  for (const bool search : {false, true}) {
    sched::SimulationOptions opt;
    opt.tile_timeline = true;
    opt.tile_search = search;
    for (const nn::Model& m : nn::zoo::all_table1_models()) {
      for (const sim::AcceleratorConfig& cfg :
           {sim::AcceleratorConfig::squeezelerator(),
            sim::AcceleratorConfig::reference_ws(),
            sim::AcceleratorConfig::reference_os()}) {
        const sim::NetworkResult ref = sched::simulate_network(m, cfg, opt);
        const sim::NetworkResult est = estimate_network(m, cfg, opt);
        const double err = rel_err_pct(est.total_cycles(), ref.total_cycles());
        EXPECT_LE(err, kTimelineBoundPct)
            << m.name() << " search=" << search
            << " est=" << est.total_cycles() << " ref=" << ref.total_cycles();
        if (!search) {
          // The fixed 8-band heuristic picks identical bands, so the halo
          // re-read traffic — and every other counter — agrees exactly.
          EXPECT_EQ(est.total_counts(), ref.total_counts()) << m.name();
        } else {
          // The closed-form band search may pick a different knee than the
          // event-driven one; only the halo traffic (a sliver of dram_words)
          // can differ, and it stays within the documented bound.
          EXPECT_LE(rel_err_pct(est.total_counts().dram_words,
                                ref.total_counts().dram_words),
                    kTimelineBoundPct)
              << m.name();
        }
      }
    }
  }
}

TEST(EstimatorAccuracy, SingleBufferTimelineIsExact) {
  // A single staging buffer fully serializes load/compute/store, so the
  // closed form is not a bound but the exact sum.
  sched::SimulationOptions opt;
  opt.tile_timeline = true;
  opt.double_buffered = false;
  const sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    const sim::NetworkResult ref = sched::simulate_network(m, cfg, opt);
    const sim::NetworkResult est = estimate_network(m, cfg, opt);
    EXPECT_EQ(est.total_cycles(), ref.total_cycles()) << m.name();
  }
}

}  // namespace
}  // namespace sqz::est
