// Seeded property tests over random model x config pairs:
//  * the estimator stays within the documented bound of the simulator
//    (exact in flat mode, <= kTimelineBoundPct with the tile timeline);
//  * the estimate is monotone in PE count — scaling the array up (with its
//    feed/drain ports scaled alongside) never estimates a slower network.
#include "est/estimator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "util/rng.h"

namespace sqz::est {
namespace {

constexpr double kTimelineBoundPct = 5.0;  // docs/ESTIMATOR.md
constexpr std::uint64_t kSeed = 0x5eed0e57;

nn::Model random_model(util::Rng& rng, int tag) {
  const int cin = static_cast<int>(rng.next_in(1, 64));
  const int hw = static_cast<int>(rng.next_in(7, 64));
  nn::Model m("rand-" + std::to_string(tag), nn::TensorShape{cin, hw, hw});
  const int layers = static_cast<int>(rng.next_in(1, 5));
  for (int i = 0; i < layers; ++i) {
    const int kind = static_cast<int>(rng.next_below(4));
    const nn::TensorShape cur = m.layer(m.layer_count() - 1).out_shape;
    if (kind == 0 && cur.h >= 3) {
      m.add_maxpool("mp" + std::to_string(i), 2, 2);
    } else if (kind == 1 && cur.h >= 3) {
      const int k = rng.next_bernoulli(0.5) ? 3 : 1;
      m.add_conv("c" + std::to_string(i),
                 static_cast<int>(rng.next_in(1, 96)), k,
                 rng.next_bernoulli(0.3) ? 2 : 1, k / 2);
    } else if (kind == 2 && cur.h >= 3) {
      m.add_depthwise("dw" + std::to_string(i), 3, 1, 1);
    } else {
      m.add_relu("r" + std::to_string(i));
    }
  }
  m.finalize();
  return m;
}

sim::AcceleratorConfig random_config(util::Rng& rng) {
  sim::AcceleratorConfig c = sim::AcceleratorConfig::squeezelerator();
  c.array_n = 1 << rng.next_in(2, 5);  // 4..32
  c.rf_entries = 1 << rng.next_in(1, 4);
  c.preload_width = 1 << rng.next_in(2, 5);
  c.drain_width = 1 << rng.next_in(2, 5);
  c.gb_kib = static_cast<int>(rng.next_in(32, 256));
  c.weight_sparsity = 0.1 * static_cast<double>(rng.next_in(0, 6));
  c.os_zero_skip = rng.next_bernoulli(0.8);
  c.ws_psums_in_gb = rng.next_bernoulli(0.2);
  c.batch = rng.next_bernoulli(0.2) ? 2 : 1;
  return c;
}

TEST(EstimatorProperty, FlatExactOnRandomPairs) {
  util::Rng rng(kSeed);
  for (int trial = 0; trial < 60; ++trial) {
    const nn::Model m = random_model(rng, trial);
    const sim::AcceleratorConfig cfg = random_config(rng);
    const sim::NetworkResult ref = sched::simulate_network(m, cfg);
    const sim::NetworkResult est = estimate_network(m, cfg);
    EXPECT_EQ(est.total_cycles(), ref.total_cycles()) << m.name();
    EXPECT_EQ(est.total_counts(), ref.total_counts()) << m.name();
  }
}

TEST(EstimatorProperty, TimelineWithinBoundOnRandomPairs) {
  util::Rng rng(kSeed ^ 0x71e11e);
  sched::SimulationOptions opt;
  opt.tile_timeline = true;
  for (int trial = 0; trial < 40; ++trial) {
    const nn::Model m = random_model(rng, trial);
    const sim::AcceleratorConfig cfg = random_config(rng);
    opt.tile_search = rng.next_bernoulli(0.5);
    const sim::NetworkResult ref = sched::simulate_network(m, cfg, opt);
    const sim::NetworkResult est = estimate_network(m, cfg, opt);
    const double ref_cycles = static_cast<double>(ref.total_cycles());
    const double err =
        100.0 * std::abs(static_cast<double>(est.total_cycles()) - ref_cycles) /
        ref_cycles;
    EXPECT_LE(err, kTimelineBoundPct)
        << m.name() << " est=" << est.total_cycles()
        << " ref=" << ref.total_cycles();
  }
}

TEST(EstimatorProperty, MonotoneInPeCount) {
  // Doubling the array edge (with the feed/drain ports scaled with it, as
  // any real scale-up would) must never estimate a slower network.
  util::Rng rng(kSeed ^ 0xab5);
  for (int trial = 0; trial < 40; ++trial) {
    const nn::Model m = random_model(rng, trial);
    sim::AcceleratorConfig small = random_config(rng);
    small.array_n = 1 << rng.next_in(2, 4);  // 4..16, leaves room to double
    sim::AcceleratorConfig big = small;
    big.array_n = small.array_n * 2;
    big.preload_width = small.preload_width * 2;
    big.drain_width = small.drain_width * 2;
    big.psum_accum_words = small.psum_accum_words * 2;
    const std::int64_t cycles_small = estimate_network(m, small).total_cycles();
    const std::int64_t cycles_big = estimate_network(m, big).total_cycles();
    EXPECT_LE(cycles_big, cycles_small)
        << m.name() << " n=" << small.array_n << " -> " << big.array_n;
  }
}

}  // namespace
}  // namespace sqz::est
