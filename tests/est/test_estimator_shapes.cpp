// Edge shapes where loop-nest closed forms typically diverge from the real
// walk: 1x1 convs (loads overlap compute in OS), depthwise-style thin
// channels (WS tap packing, OS groups), pool/concat layers (SIMD unit), and
// batch > 1. The estimator must stay exact on all of them.
#include "est/estimator.h"

#include <gtest/gtest.h>

#include "nn/model.h"
#include "sim/layer_sim.h"

namespace sqz::est {
namespace {

const sim::AcceleratorConfig kCfg = sim::AcceleratorConfig::squeezelerator();

void expect_all_layers_exact(const nn::Model& m,
                             const sim::AcceleratorConfig& cfg) {
  for (int i = 1; i < m.layer_count(); ++i) {
    for (const sim::Dataflow df : {sim::Dataflow::WeightStationary,
                                   sim::Dataflow::OutputStationary}) {
      const sim::LayerResult ref = sim::simulate_layer(m, i, cfg, df);
      const sim::LayerResult est = estimate_layer(m, i, cfg, df);
      const std::string where = m.name() + "/" + m.layer(i).name;
      EXPECT_EQ(est.compute_cycles, ref.compute_cycles) << where;
      EXPECT_EQ(est.total_cycles, ref.total_cycles) << where;
      EXPECT_EQ(est.counts, ref.counts) << where;
    }
  }
}

TEST(EstimatorShapes, OneByOneConv) {
  nn::Model m("1x1", nn::TensorShape{64, 28, 28});
  m.add_conv("squeeze", 16, 1, 1, 0);
  m.add_conv("expand", 128, 1, 1, 0);
  m.finalize();
  expect_all_layers_exact(m, kCfg);
}

TEST(EstimatorShapes, DepthwiseThinChannels) {
  nn::Model m("dw", nn::TensorShape{32, 56, 56});
  m.add_depthwise("dw3", 3, 1, 1);
  m.add_conv("pw", 64, 1, 1, 0);
  m.add_depthwise("dw_s2", 3, 2, 1);
  m.finalize();
  expect_all_layers_exact(m, kCfg);
}

TEST(EstimatorShapes, FirstLayerThreeChannelsTapPacked) {
  // cin=3 triggers the WS tap-packing path (cin_pg <= n/2, kw > 1).
  nn::Model m("first", nn::TensorShape{3, 227, 227});
  m.add_conv("conv1", 96, 7, 2, 0);
  m.finalize();
  expect_all_layers_exact(m, kCfg);
}

TEST(EstimatorShapes, PoolConcatAddRelu) {
  nn::Model m("simd", nn::TensorShape{16, 32, 32});
  const int a = m.add_conv("a", 16, 3, 1, 1);
  const int b = m.add_conv("b", 16, 3, 1, 1, /*from=*/a);
  m.add_concat("cat", {a, b});
  m.add_maxpool("mp", 3, 2);
  m.add_avgpool("ap", 2, 2);
  m.add_global_avgpool("gap");
  m.finalize();
  expect_all_layers_exact(m, kCfg);
}

TEST(EstimatorShapes, ResidualAdd) {
  nn::Model m("res", nn::TensorShape{32, 14, 14});
  const int c1 = m.add_conv("c1", 32, 3, 1, 1);
  const int c2 = m.add_conv("c2", 32, 3, 1, 1);
  m.add_add("sum", c1, c2);
  m.add_relu("relu");
  m.finalize();
  expect_all_layers_exact(m, kCfg);
}

TEST(EstimatorShapes, FullyConnectedAlwaysWs) {
  nn::Model m("fc", nn::TensorShape{256, 6, 6});
  m.add_fc("fc1", 4096);
  m.add_fc("fc2", 1000);
  m.finalize();
  expect_all_layers_exact(m, kCfg);
  // Requesting OS on an FC layer falls back to WS in both paths.
  const sim::LayerResult est =
      estimate_layer(m, 1, kCfg, sim::Dataflow::OutputStationary);
  EXPECT_EQ(est.dataflow, sim::Dataflow::WeightStationary);
}

TEST(EstimatorShapes, BatchGreaterThanOne) {
  for (const int batch : {2, 4, 7}) {
    sim::AcceleratorConfig cfg = kCfg;
    cfg.batch = batch;
    nn::Model m("batched", nn::TensorShape{16, 28, 28});
    m.add_conv("c", 32, 3, 1, 1);
    m.add_maxpool("mp", 2, 2);
    m.add_fc("fc", 100);
    m.finalize();
    expect_all_layers_exact(m, cfg);
  }
}

TEST(EstimatorShapes, StridedAndPaddedConvRemainders) {
  // Output extents that leave remainder tiles/blocks on every axis.
  nn::Model m("odd", nn::TensorShape{33, 37, 37});
  m.add_conv("c5", 65, 5, 2, 2);
  m.add_conv("c3", 17, 3, 3, 1);
  m.finalize();
  expect_all_layers_exact(m, kCfg);
}

TEST(EstimatorShapes, GroupedConv) {
  nn::Model m("grouped", nn::TensorShape{96, 27, 27});
  nn::ConvParams p;
  p.out_channels = 256;
  p.kh = p.kw = 5;
  p.stride = 1;
  p.pad_h = p.pad_w = 2;
  p.groups = 2;
  m.add_conv("g2", p);
  m.finalize();
  expect_all_layers_exact(m, kCfg);
}

TEST(EstimatorShapes, ExactOnTinyArrays) {
  sim::AcceleratorConfig cfg = kCfg;
  cfg.array_n = 4;
  cfg.rf_entries = 2;
  cfg.preload_width = 4;
  cfg.drain_width = 4;
  nn::Model m("tiny-array", nn::TensorShape{5, 9, 9});
  m.add_conv("c", 7, 3, 1, 1);
  m.finalize();
  expect_all_layers_exact(m, cfg);
}

}  // namespace
}  // namespace sqz::est
