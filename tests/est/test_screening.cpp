// Two-phase screened sweeps (core/dse.h SweepOptions::screen): phase 1
// scores every point analytically, phase 2 re-simulates only the retained
// Pareto band cycle-exactly. These tests pin the semantics the estimator's
// accuracy contract buys (docs/ESTIMATOR.md "When screening is safe"):
// phase tagging, band retention, journal phase separation, resume
// byte-identity, and the unscreened path staying byte-identical.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/dse.h"
#include "core/sweepjournal.h"
#include "nn/zoo/zoo.h"

namespace sqz::core {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& tag) {
  const std::string dir =
      (fs::temp_directory_path() / ("sqz_screen_" + tag)).string();
  fs::remove_all(dir);
  return dir;
}

std::vector<std::pair<std::string, sim::AcceleratorConfig>> rf_space() {
  return sweep_rf_entries(sim::AcceleratorConfig::squeezelerator(),
                          {1, 2, 4, 8, 16, 32});
}

std::string dump(const SweepOutcome& outcome) {
  std::ostringstream os;
  write_sweep_outcome_json("rf_entries on sqnxt23", outcome, os);
  return os.str();
}

TEST(Screening, PhaseTagsAndBandRetention) {
  const nn::Model m = nn::zoo::squeezenext();
  SweepOptions opt;
  opt.screen = true;
  opt.screen_keep = 0.34;  // ceil(0.34 * 6) = 3 of 6 points
  const SweepOutcome out = evaluate_designs_checked(m, rf_space(), opt);

  EXPECT_TRUE(out.screened);
  EXPECT_TRUE(out.errors.empty());
  EXPECT_EQ(out.points.size(), 6u);
  EXPECT_EQ(out.screen_points, 6u);
  EXPECT_GE(out.screen_kept, 3u);
  EXPECT_LT(out.screen_kept, 6u);

  std::size_t exact = 0;
  for (const DesignPoint& p : out.points) {
    if (p.phase == DesignPoint::Phase::Exact) {
      ++exact;
      // Flat fidelity: the estimate IS the simulator result, bit-exact.
      EXPECT_EQ(p.est_cycles, p.cycles) << p.label;
      EXPECT_EQ(p.est_energy, p.energy) << p.label;
    } else {
      EXPECT_EQ(p.est_cycles, p.cycles) << p.label;
    }
  }
  EXPECT_EQ(exact, out.screen_kept);
  EXPECT_EQ(out.screen_error_max_pct, 0.0);  // flat mode is exact
}

TEST(Screening, BandContainsTheEstimatedParetoFront) {
  const nn::Model m = nn::zoo::squeezenext();
  SweepOptions opt;
  opt.screen = true;
  const SweepOutcome out = evaluate_designs_checked(m, rf_space(), opt);
  // Every point on the final (cycles, energy) front must have been
  // re-simulated: screening may only discard dominated points.
  for (const DesignPoint& p : pareto_front(out.points))
    EXPECT_EQ(p.phase, DesignPoint::Phase::Exact) << p.label;
}

TEST(Screening, KeepFractionOneResimulatesEverything) {
  const nn::Model m = nn::zoo::squeezenext();
  SweepOptions opt;
  opt.screen = true;
  opt.screen_keep = 1.0;
  const SweepOutcome out = evaluate_designs_checked(m, rf_space(), opt);
  EXPECT_EQ(out.screen_kept, 6u);
  for (const DesignPoint& p : out.points)
    EXPECT_EQ(p.phase, DesignPoint::Phase::Exact) << p.label;

  // With every point re-simulated, metrics match the unscreened sweep.
  const SweepOutcome plain = evaluate_designs_checked(m, rf_space(), {});
  ASSERT_EQ(out.points.size(), plain.points.size());
  for (std::size_t i = 0; i < out.points.size(); ++i) {
    EXPECT_EQ(out.points[i].cycles, plain.points[i].cycles);
    EXPECT_EQ(out.points[i].energy, plain.points[i].energy);
  }
}

TEST(Screening, UnscreenedDumpHasNoScreeningMembers) {
  const nn::Model m = nn::zoo::squeezenext();
  const std::string doc = dump(evaluate_designs_checked(m, rf_space(), {}));
  EXPECT_EQ(doc.find("screening"), std::string::npos);
  EXPECT_EQ(doc.find("phase"), std::string::npos);
  EXPECT_EQ(doc.find("est_cycles"), std::string::npos);
}

TEST(Screening, ScreenedDumpCarriesSummaryAndPhases) {
  const nn::Model m = nn::zoo::squeezenext();
  SweepOptions opt;
  opt.screen = true;
  const std::string doc = dump(evaluate_designs_checked(m, rf_space(), opt));
  EXPECT_NE(doc.find("\"screening\":"), std::string::npos);
  EXPECT_NE(doc.find("\"screen_points\": 6"), std::string::npos);
  EXPECT_NE(doc.find("\"phase\": \"screen\""), std::string::npos);
  EXPECT_NE(doc.find("\"phase\": \"exact\""), std::string::npos);
  EXPECT_NE(doc.find("\"est_cycles\":"), std::string::npos);
}

TEST(Screening, JournalKeysAreTaggedByPhase) {
  const nn::Model m = nn::zoo::squeezenext();
  const std::string dir = fresh_dir("tags");
  SweepJournal journal(dir);
  SweepOptions opt;
  opt.screen = true;
  opt.journal = &journal;
  const SweepOutcome out = evaluate_designs_checked(m, rf_space(), opt);

  // One "phase":"screen" record per point plus one legacy-keyed record per
  // re-simulated point; the two phases never collide on a key.
  std::size_t screen_keys = 0, exact_keys = 0;
  for (const auto& [key, value] : journal.entries()) {
    if (key.find("\"phase\":\"screen\"") != std::string::npos) ++screen_keys;
    else ++exact_keys;
  }
  EXPECT_EQ(screen_keys, out.screen_points);
  EXPECT_EQ(exact_keys, out.screen_kept);
}

TEST(Screening, ResumeIsByteIdentical) {
  const nn::Model m = nn::zoo::squeezenext();
  const std::string dir = fresh_dir("resume");
  SweepOptions opt;
  opt.screen = true;

  std::string first;
  {
    SweepJournal journal(dir);
    opt.journal = &journal;
    first = dump(evaluate_designs_checked(m, rf_space(), opt));
  }
  SweepJournal journal(dir);
  opt.journal = &journal;
  const SweepOutcome resumed = evaluate_designs_checked(m, rf_space(), opt);
  // Every record restores: all screen-phase points plus the whole band.
  EXPECT_EQ(resumed.resumed, resumed.screen_points + resumed.screen_kept);
  EXPECT_EQ(dump(resumed), first);
}

TEST(Screening, UnscreenedJournalSeedsTheExactPhase) {
  // A journal written by a plain sweep holds legacy-keyed cycle-exact
  // records; a screened resume on top of it re-estimates phase 1 but serves
  // the band from the journal.
  const nn::Model m = nn::zoo::squeezenext();
  const std::string dir = fresh_dir("seed");
  std::string plain_dump;
  {
    SweepJournal journal(dir);
    SweepOptions opt;
    opt.journal = &journal;
    plain_dump = dump(evaluate_designs_checked(m, rf_space(), opt));
  }
  SweepJournal journal(dir);
  SweepOptions opt;
  opt.screen = true;
  opt.journal = &journal;
  const SweepOutcome out = evaluate_designs_checked(m, rf_space(), opt);
  EXPECT_EQ(out.resumed, out.screen_kept);  // band served without simulating
  EXPECT_TRUE(out.errors.empty());
}

TEST(Screening, TimelineFidelityStaysWithinDocumentedBound) {
  // Screening under the tile timeline: the re-simulated band's estimator
  // error feeds screen_error_max_pct and must respect docs/ESTIMATOR.md's
  // "Accuracy contract" bound of 5%.
  const nn::Model m = nn::zoo::squeezenext();
  SweepOptions opt;
  opt.screen = true;
  opt.tile_timeline = true;
  opt.tile_search = true;
  const SweepOutcome out = evaluate_designs_checked(m, rf_space(), opt);
  EXPECT_EQ(out.screen_points, 6u);
  EXPECT_LE(out.screen_error_max_pct, 5.0);
}

}  // namespace
}  // namespace sqz::core
