#include "nn/accuracy.h"

#include <gtest/gtest.h>

#include "nn/zoo/zoo.h"

namespace sqz::nn {
namespace {

TEST(Accuracy, TableNonEmptyAndSane) {
  const auto& table = accuracy_table();
  EXPECT_GE(table.size(), 10u);
  for (const AccuracyRecord& r : table) {
    EXPECT_FALSE(r.model_name.empty());
    EXPECT_GT(r.top1, 20.0);
    EXPECT_LT(r.top1, 100.0);
    EXPECT_FALSE(r.source.empty());
  }
}

TEST(Accuracy, LookupHitAndMiss) {
  const auto hit = published_accuracy("AlexNet");
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->top1, 57.2, 0.01);
  EXPECT_FALSE(published_accuracy("NotANetwork").has_value());
}

TEST(Accuracy, PaperHeadlineNumbers) {
  // Paper conclusion: "we achieve 59.2% top-1 vs 57.1% of SqueezeNet".
  EXPECT_NEAR(published_accuracy("1.0-SqNxt-23 v5")->top1, 59.2, 0.01);
  EXPECT_NEAR(published_accuracy("SqueezeNet v1.0")->top1, 57.1, 0.01);
}

TEST(Accuracy, OptimizedVariantsNotWorse) {
  // "the optimized versions have slightly better accuracy as compared to the
  // initial variant".
  const double v1 = published_accuracy("1.0-SqNxt-23 v1")->top1;
  const double v5 = published_accuracy("1.0-SqNxt-23 v5")->top1;
  EXPECT_GE(v5, v1);
}

TEST(Accuracy, EveryFigure4ModelHasARecord) {
  for (const Model& m : zoo::figure4_models())
    EXPECT_TRUE(published_accuracy(m.name()).has_value()) << m.name();
}

}  // namespace
}  // namespace sqz::nn
