// Randomized property tests over generated model graphs: every random model
// must (a) round-trip through the text serializer, (b) compute identically
// on the reference runtime and both functional dataflow emulators, and
// (c) satisfy the simulator's conservation invariants.
#include <gtest/gtest.h>

#include "nn/serialize.h"
#include "runtime/executor.h"
#include "sched/network_sim.h"
#include "sim/functional/engines.h"
#include "util/rng.h"
#include "util/strings.h"

namespace sqz {
namespace {

/// Generate a random but valid layer graph (chains with occasional fire-style
/// branches and residual adds), small enough for the functional emulators.
nn::Model random_model(std::uint64_t seed) {
  util::Rng rng(seed);
  const int cin = static_cast<int>(rng.next_in(1, 6));
  const int hw = static_cast<int>(rng.next_in(9, 24));
  nn::Model m(util::format("fuzz-%llu", static_cast<unsigned long long>(seed)),
              nn::TensorShape{cin, hw, hw});

  int last = 0;
  const int layers = static_cast<int>(rng.next_in(3, 7));
  for (int i = 0; i < layers; ++i) {
    const nn::TensorShape cur = m.layer(last).out_shape;
    switch (rng.next_below(6)) {
      case 0:
      case 1: {  // conv
        const int k = rng.next_bernoulli(0.5) ? 1 : 3;
        const int stride = (cur.h > 8 && rng.next_bernoulli(0.3)) ? 2 : 1;
        const int out = static_cast<int>(rng.next_in(2, 20));
        last = m.add_conv(util::format("conv%d", i), out, k, stride,
                          k == 3 ? 1 : 0, last);
        break;
      }
      case 2: {  // depthwise
        if (cur.h < 4) break;
        last = m.add_depthwise(util::format("dw%d", i), 3, 1, 1, last);
        break;
      }
      case 3: {  // pool
        if (cur.h < 4) break;
        last = m.add_maxpool(util::format("pool%d", i), 2, 2, last);
        break;
      }
      case 4: {  // fire-style branch + concat
        const int a = m.add_conv(util::format("br%da", i),
                                 static_cast<int>(rng.next_in(2, 8)), 1, 1, 0,
                                 last);
        const int b = m.add_conv(util::format("br%db", i),
                                 static_cast<int>(rng.next_in(2, 8)), 3, 1, 1,
                                 last);
        last = m.add_concat(util::format("cat%d", i), {a, b});
        break;
      }
      case 5: {  // residual add around a conv
        const int body = m.add_conv(util::format("res%d", i), cur.c, 3, 1, 1,
                                    last);
        last = m.add_add(util::format("add%d", i), body, last);
        break;
      }
    }
  }
  m.add_global_avgpool("gap", last);
  m.add_fc("fc", static_cast<int>(rng.next_in(2, 12)));
  m.finalize();
  return m;
}

class FuzzModels : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzModels, SerializationRoundTrips) {
  const nn::Model m = random_model(GetParam());
  const nn::Model parsed = nn::parse_model(nn::serialize_model(m));
  ASSERT_EQ(parsed.layer_count(), m.layer_count());
  for (int i = 0; i < m.layer_count(); ++i) {
    EXPECT_EQ(parsed.layer(i).kind, m.layer(i).kind) << i;
    EXPECT_EQ(parsed.layer(i).out_shape, m.layer(i).out_shape) << i;
    EXPECT_EQ(parsed.layer(i).macs(), m.layer(i).macs()) << i;
  }
  // Fixed point: serializing the parse reproduces the text exactly.
  EXPECT_EQ(nn::serialize_model(parsed), nn::serialize_model(m));
}

TEST_P(FuzzModels, DataflowEnginesMatchReferenceEverywhere) {
  const nn::Model m = random_model(GetParam());
  runtime::ExecutorConfig ec;
  runtime::Executor ex(m, ec);
  ex.run();
  const sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();
  for (int i = 1; i < m.layer_count(); ++i) {
    const nn::Layer& l = m.layer(i);
    if (!l.is_conv()) continue;
    const runtime::Tensor& in = ex.output(l.inputs.at(0));
    runtime::Requant rq = ec.requant;
    rq.relu = l.conv.relu;
    const auto ws =
        sim::functional::run_weight_stationary(l, in, ex.weights(i), rq, cfg);
    const auto os =
        sim::functional::run_output_stationary(l, in, ex.weights(i), rq, cfg);
    EXPECT_EQ(ws.output, ex.output(i)) << m.name() << " " << l.name;
    EXPECT_EQ(os.output, ex.output(i)) << m.name() << " " << l.name;
  }
}

TEST_P(FuzzModels, SimulatorInvariantsHold) {
  const nn::Model m = random_model(GetParam());
  const sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();
  const auto r = sched::simulate_network(m, cfg);
  EXPECT_EQ(r.total_useful_macs(), m.total_macs());
  EXPECT_GT(r.total_cycles(), 0);
  EXPECT_LE(r.utilization(), 1.0);
  for (const auto& l : r.layers) {
    EXPECT_GE(l.total_cycles, l.compute_cycles) << l.layer_name;
    EXPECT_GE(l.counts.gb_reads, 0);
  }
  // Hybrid never loses to the forced references.
  sim::AcceleratorConfig ws = cfg, os = cfg;
  ws.support = sim::DataflowSupport::WsOnly;
  os.support = sim::DataflowSupport::OsOnly;
  EXPECT_LE(r.total_cycles(), sched::simulate_network(m, ws).total_cycles());
  EXPECT_LE(r.total_cycles(), sched::simulate_network(m, os).total_cycles());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzModels,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace sqz
