#include "nn/shape.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sqz::nn {
namespace {

TEST(TensorShape, ElemsAndBytes) {
  TensorShape s{3, 4, 5};
  EXPECT_EQ(s.elems(), 60);
  EXPECT_EQ(s.bytes(2), 120);
  EXPECT_EQ(s.bytes(1), 60);
}

TEST(TensorShape, Equality) {
  EXPECT_EQ((TensorShape{1, 2, 3}), (TensorShape{1, 2, 3}));
  EXPECT_NE((TensorShape{1, 2, 3}), (TensorShape{3, 2, 1}));
}

TEST(TensorShape, ToString) {
  EXPECT_EQ((TensorShape{96, 55, 55}).to_string(), "96x55x55");
}

TEST(ConvOutExtent, ClassicCases) {
  EXPECT_EQ(conv_out_extent(227, 11, 4, 0), 55);   // AlexNet conv1
  EXPECT_EQ(conv_out_extent(227, 7, 2, 0), 111);   // SqueezeNet conv1
  EXPECT_EQ(conv_out_extent(13, 3, 1, 1), 13);     // same-padded 3x3
  EXPECT_EQ(conv_out_extent(55, 3, 2, 0), 27);     // overlapping pool
  EXPECT_EQ(conv_out_extent(224, 3, 2, 1), 112);   // MobileNet conv1
}

TEST(ConvOutExtent, SingleOutput) {
  EXPECT_EQ(conv_out_extent(7, 7, 1, 0), 1);
}

TEST(ConvOutExtent, RejectsBadArguments) {
  EXPECT_THROW(conv_out_extent(0, 3, 1, 0), std::invalid_argument);
  EXPECT_THROW(conv_out_extent(5, 0, 1, 0), std::invalid_argument);
  EXPECT_THROW(conv_out_extent(5, 3, 0, 0), std::invalid_argument);
  EXPECT_THROW(conv_out_extent(5, 3, 1, -1), std::invalid_argument);
  EXPECT_THROW(conv_out_extent(3, 7, 1, 1), std::invalid_argument);  // too small
}

// Property: output extent is monotone non-decreasing in input size.
TEST(ConvOutExtent, MonotoneInInput) {
  for (int k : {1, 3, 5, 7}) {
    for (int s : {1, 2, 4}) {
      int prev = 0;
      for (int in = k; in < 64; ++in) {
        const int out = conv_out_extent(in, k, s, 0);
        EXPECT_GE(out, prev);
        prev = out;
      }
    }
  }
}

// Property: every output position reads only in-bounds pixels after padding.
TEST(ConvOutExtent, LastWindowFitsPaddedInput) {
  for (int in : {7, 13, 28, 56}) {
    for (int k : {1, 2, 3, 5}) {
      for (int s : {1, 2, 3}) {
        for (int p : {0, 1, 2}) {
          if (in + 2 * p < k) continue;
          const int out = conv_out_extent(in, k, s, p);
          const int last_start = (out - 1) * s - p;
          EXPECT_LE(last_start + k, in + p) << in << " " << k << " " << s << " " << p;
        }
      }
    }
  }
}

}  // namespace
}  // namespace sqz::nn
