#include "nn/analysis.h"

#include <gtest/gtest.h>

namespace sqz::nn {
namespace {

Model mixed_model() {
  Model m("mixed", TensorShape{3, 32, 32});
  m.add_conv("first", 16, 3, 1, 1);     // FirstConv
  m.add_conv("pw", 32, 1, 1, 0);        // Pointwise
  m.add_depthwise("dw", 3, 1, 1);       // Depthwise
  m.add_conv("spatial", 32, 3, 1, 1);   // Spatial
  m.add_maxpool("pool", 2, 2);          // Other
  m.add_global_avgpool("g");
  m.add_fc("fc", 10);                   // FullyConnected
  m.finalize();
  return m;
}

TEST(Analysis, CategorizeEachKind) {
  const Model m = mixed_model();
  EXPECT_EQ(categorize(m, 1), LayerCategory::FirstConv);
  EXPECT_EQ(categorize(m, 2), LayerCategory::Pointwise);
  EXPECT_EQ(categorize(m, 3), LayerCategory::Depthwise);
  EXPECT_EQ(categorize(m, 4), LayerCategory::Spatial);
  EXPECT_EQ(categorize(m, 5), LayerCategory::Other);
  EXPECT_EQ(categorize(m, 7), LayerCategory::FullyConnected);
}

TEST(Analysis, SeparatedFiltersAreSpatial) {
  // SqueezeNext's 1x3 / 3x1 separated convolutions count as FxF (F > 1).
  Model m("sep", TensorShape{8, 16, 16});
  m.add_conv("first", 8, 1, 1, 0);
  ConvParams c13;
  c13.out_channels = 8;
  c13.kh = 1;
  c13.kw = 3;
  c13.pad_w = 1;
  m.add_conv("c13", c13);
  m.finalize();
  EXPECT_EQ(categorize(m, 2), LayerCategory::Spatial);
}

TEST(Analysis, BreakdownSumsToTotal) {
  const Model m = mixed_model();
  const OpBreakdown b = analyze_ops(m);
  std::int64_t sum = 0;
  for (int c = 0; c < kLayerCategoryCount; ++c) sum += b.macs[c];
  EXPECT_EQ(sum, b.total);
  EXPECT_EQ(b.total, m.total_macs());
}

TEST(Analysis, FractionsSumToOne) {
  const Model m = mixed_model();
  const OpBreakdown b = analyze_ops(m);
  double frac = 0.0;
  for (int c = 0; c < kLayerCategoryCount; ++c)
    frac += b.fraction(static_cast<LayerCategory>(c));
  EXPECT_NEAR(frac, 1.0, 1e-12);
}

TEST(Analysis, EmptyBreakdownFractionsZero) {
  Model m("pools", TensorShape{3, 8, 8});
  m.add_maxpool("p", 2, 2);
  m.finalize();
  const OpBreakdown b = analyze_ops(m);
  EXPECT_EQ(b.total, 0);
  EXPECT_EQ(b.fraction(LayerCategory::Pointwise), 0.0);
}

TEST(Analysis, CategoryNames) {
  EXPECT_STREQ(layer_category_name(LayerCategory::FirstConv), "Conv1");
  EXPECT_STREQ(layer_category_name(LayerCategory::Pointwise), "1x1");
  EXPECT_STREQ(layer_category_name(LayerCategory::Spatial), "FxF");
  EXPECT_STREQ(layer_category_name(LayerCategory::Depthwise), "DW");
}

TEST(Analysis, WeightBytes) {
  const Model m = mixed_model();
  EXPECT_EQ(model_weight_bytes(m, 2), m.total_params() * 2);
}

TEST(Analysis, ArithmeticIntensity) {
  const Model m = mixed_model();
  // Pointwise conv: macs / ((in + out + params) * bytes)
  const Layer& pw = m.layer(2);
  const double ai = arithmetic_intensity(pw, 2);
  const double expected =
      static_cast<double>(pw.macs()) /
      static_cast<double>((pw.in_shape.elems() + pw.out_shape.elems() +
                           pw.params()) * 2);
  EXPECT_DOUBLE_EQ(ai, expected);
  EXPECT_EQ(arithmetic_intensity(m.layer(5), 2), 0.0);  // pool: no MACs
}

TEST(Analysis, DepthwiseHasLowArithmeticIntensity) {
  // The paper avoids depthwise convolutions in SqueezeNext because of their
  // poor arithmetic intensity; the metric should reflect that.
  Model m("ai", TensorShape{64, 28, 28});
  m.add_depthwise("dw", 3, 1, 1);
  m.add_conv("pw_first", 64, 1, 1, 0, 0);
  m.add_conv("std", 64, 3, 1, 1, 0);
  m.finalize();
  EXPECT_LT(arithmetic_intensity(m.layer(1), 2),
            arithmetic_intensity(m.layer(3), 2));
}

}  // namespace
}  // namespace sqz::nn
