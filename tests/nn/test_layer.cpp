#include "nn/layer.h"

#include <gtest/gtest.h>

#include "nn/model.h"

namespace sqz::nn {
namespace {

Model one_conv(int cin, int hw, ConvParams p) {
  Model m("t", TensorShape{cin, hw, hw});
  m.add_conv("c", p);
  m.finalize();
  return m;
}

TEST(Layer, ConvMacsAndParams) {
  ConvParams p;
  p.out_channels = 8;
  p.kh = p.kw = 3;
  p.stride = 1;
  p.pad_h = p.pad_w = 1;
  const Model m = one_conv(4, 10, p);
  const Layer& l = m.layer(1);
  // out 8x10x10, taps 3*3*4 = 36
  EXPECT_EQ(l.taps_per_output(), 36);
  EXPECT_EQ(l.macs(), 800 * 36);
  EXPECT_EQ(l.params(), 8 * 36 + 8);
}

TEST(Layer, GroupedConvDividesChannels) {
  ConvParams p;
  p.out_channels = 8;
  p.kh = p.kw = 3;
  p.pad_h = p.pad_w = 1;
  p.groups = 2;
  const Model m = one_conv(4, 10, p);
  const Layer& l = m.layer(1);
  EXPECT_EQ(l.taps_per_output(), 3 * 3 * 2);
  EXPECT_EQ(l.params(), 8 * 18 + 8);
}

TEST(Layer, DepthwisePredicates) {
  Model m("t", TensorShape{6, 8, 8});
  m.add_depthwise("dw", 3, 1, 1);
  m.finalize();
  const Layer& l = m.layer(1);
  EXPECT_TRUE(l.is_depthwise());
  EXPECT_FALSE(l.is_pointwise());
  EXPECT_EQ(l.conv.groups, 6);
  EXPECT_EQ(l.out_shape.c, 6);
  EXPECT_EQ(l.macs(), 6 * 8 * 8 * 9);
}

TEST(Layer, PointwisePredicates) {
  ConvParams p;
  p.out_channels = 12;
  p.kh = p.kw = 1;
  const Model m = one_conv(4, 5, p);
  EXPECT_TRUE(m.layer(1).is_pointwise());
  EXPECT_FALSE(m.layer(1).is_depthwise());
}

TEST(Layer, FcMacsAndParams) {
  Model m("t", TensorShape{4, 3, 3});
  m.add_fc("f", 10);
  m.finalize();
  const Layer& l = m.layer(1);
  EXPECT_EQ(l.macs(), 36 * 10);
  EXPECT_EQ(l.params(), 36 * 10 + 10);
  EXPECT_TRUE(l.is_macs_layer());
  EXPECT_EQ(l.out_shape, (TensorShape{10, 1, 1}));
}

TEST(Layer, NonMacLayersHaveZeroMacs) {
  Model m("t", TensorShape{4, 8, 8});
  m.add_maxpool("p", 2, 2);
  m.add_relu("r");
  m.finalize();
  EXPECT_EQ(m.layer(1).macs(), 0);
  EXPECT_EQ(m.layer(1).params(), 0);
  EXPECT_EQ(m.layer(2).macs(), 0);
  EXPECT_FALSE(m.layer(1).is_macs_layer());
}

TEST(Layer, KindNames) {
  EXPECT_STREQ(layer_kind_name(LayerKind::Conv), "conv");
  EXPECT_STREQ(layer_kind_name(LayerKind::FullyConnected), "fc");
  EXPECT_STREQ(layer_kind_name(LayerKind::Concat), "concat");
}

}  // namespace
}  // namespace sqz::nn
