#include "nn/zoo/zoo.h"

#include <gtest/gtest.h>

#include "nn/analysis.h"

namespace sqz::nn::zoo {
namespace {

void expect_classifier(const Model& m) {
  EXPECT_TRUE(m.finalized());
  const Layer& last = m.layer(m.layer_count() - 1);
  // Final tensor is a 1000-way class vector (possibly via global pooling).
  EXPECT_EQ(last.out_shape.c, 1000) << m.name();
  EXPECT_EQ(last.out_shape.h, 1);
  EXPECT_EQ(last.out_shape.w, 1);
}

TEST(Zoo, AlexNetStructure) {
  const Model m = alexnet();
  expect_classifier(m);
  // Published AlexNet: ~61M params, ~0.7G MACs.
  EXPECT_NEAR(static_cast<double>(m.total_params()), 61e6, 2e6);
  EXPECT_NEAR(static_cast<double>(m.total_macs()), 724e6, 30e6);
  EXPECT_EQ(m.layer(1).out_shape, (TensorShape{96, 55, 55}));
}

TEST(Zoo, SqueezeNetV10Structure) {
  const Model m = squeezenet_v10();
  expect_classifier(m);
  // Published: 1.25M params ("50x fewer than AlexNet"), ~0.85G MACs.
  EXPECT_NEAR(static_cast<double>(m.total_params()), 1.25e6, 0.1e6);
  EXPECT_NEAR(static_cast<double>(m.total_macs()), 830e6, 60e6);
  EXPECT_EQ(m.layer(1).out_shape, (TensorShape{96, 111, 111}));
}

TEST(Zoo, SqueezeNetBypassMatchesBaseBudget) {
  // Simple bypass adds only elementwise sums: same weights, same MACs.
  const Model base = squeezenet_v10();
  const Model bypass = squeezenet_v10_bypass();
  EXPECT_EQ(bypass.total_params(), base.total_params());
  EXPECT_EQ(bypass.total_macs(), base.total_macs());
  int adds = 0;
  for (const Layer& l : bypass.layers())
    if (l.kind == LayerKind::Add) ++adds;
  EXPECT_EQ(adds, 4);  // fire3/5/7/9
  EXPECT_EQ(bypass.layer(bypass.layer_count() - 1).out_shape.c, 1000);
}

TEST(Zoo, SqueezeNetV11IsCheaper) {
  const Model v10 = squeezenet_v10();
  const Model v11 = squeezenet_v11();
  // v1.1's claim: ~2.4x fewer operations at the same accuracy.
  const double ratio = static_cast<double>(v10.total_macs()) /
                       static_cast<double>(v11.total_macs());
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 2.9);
  // Nearly identical parameter budget.
  EXPECT_NEAR(static_cast<double>(v11.total_params()),
              static_cast<double>(v10.total_params()), 0.15e6);
}

TEST(Zoo, MobileNetStructure) {
  const Model m = mobilenet();
  expect_classifier(m);
  // Published 1.0 MobileNet-224: 4.2M params, 569M MACs.
  EXPECT_NEAR(static_cast<double>(m.total_params()), 4.2e6, 0.3e6);
  EXPECT_NEAR(static_cast<double>(m.total_macs()), 569e6, 30e6);
  // 13 depthwise + 13 pointwise block convs + conv1.
  int dw = 0, pw = 0;
  for (int i = 0; i < m.layer_count(); ++i) {
    if (m.layer(i).is_depthwise()) ++dw;
    if (m.layer(i).is_pointwise()) ++pw;
  }
  EXPECT_EQ(dw, 13);
  EXPECT_EQ(pw, 13);
}

TEST(Zoo, MobileNetWidthMultiplierScalesDown) {
  const auto full = mobilenet(1.0);
  const auto half = mobilenet(0.5);
  EXPECT_LT(half.total_macs(), full.total_macs() / 3);  // ~quadratic in width
  EXPECT_LT(half.total_params(), full.total_params() / 3);
  EXPECT_EQ(half.name(), "0.5 MobileNet-224");
}

TEST(Zoo, MobileNetRejectsNonPositiveWidth) {
  EXPECT_THROW(mobilenet(0.0), std::invalid_argument);
  EXPECT_THROW(mobilenet(-1.0), std::invalid_argument);
}

TEST(Zoo, TinyDarknetStructure) {
  const Model m = tiny_darknet();
  expect_classifier(m);
  // Published: ~1.0M params, ~0.5G MACs ("tiny" 1x1/3x3 stacks).
  EXPECT_NEAR(static_cast<double>(m.total_params()), 1.0e6, 0.2e6);
  EXPECT_NEAR(static_cast<double>(m.total_macs()), 495e6, 50e6);
}

TEST(Zoo, SqueezeNextStructure) {
  const Model m = squeezenext();
  expect_classifier(m);
  // Published 1.0-SqNxt-23: ~0.7M params; far fewer MACs than SqueezeNet.
  EXPECT_NEAR(static_cast<double>(m.total_params()), 0.75e6, 0.25e6);
  EXPECT_LT(m.total_macs(), squeezenet_v10().total_macs() / 2);
}

TEST(Zoo, SqueezeNextVariantsShiftWork) {
  const Model v1 = squeezenext(SqNxtVariant::V1);
  const Model v2 = squeezenext(SqNxtVariant::V2);
  const Model v5 = squeezenext(SqNxtVariant::V5);
  // v2 shrinks conv1 from 7x7 to 5x5.
  EXPECT_EQ(v1.layer(v1.first_conv_index()).conv.kh, 7);
  EXPECT_EQ(v2.layer(v2.first_conv_index()).conv.kh, 5);
  EXPECT_LT(v2.layer(1).macs(), v1.layer(1).macs());
  // Variants keep roughly the same MAC budget (paper: "very small change in
  // the overall MACs").
  const double drift = std::abs(static_cast<double>(v5.total_macs()) -
                                static_cast<double>(v2.total_macs())) /
                       static_cast<double>(v2.total_macs());
  EXPECT_LT(drift, 0.35);
  // All five variants have 21 blocks (same depth).
  EXPECT_EQ(v1.name(), "1.0-SqNxt-23 v1");
  EXPECT_EQ(v5.name(), "1.0-SqNxt-23 v5");
}

TEST(Zoo, SqueezeNextDepthFamily) {
  const Model d23 = squeezenext(SqNxtVariant::V5, 1.0, 23);
  const Model d34 = squeezenext(SqNxtVariant::V5, 1.0, 34);
  const Model d44 = squeezenext(SqNxtVariant::V5, 1.0, 44);
  EXPECT_LT(d23.total_params(), d34.total_params());
  EXPECT_LT(d34.total_params(), d44.total_params());
  EXPECT_THROW(squeezenext(SqNxtVariant::V5, 1.0, 99), std::invalid_argument);
}

TEST(Zoo, SqueezeNextWidthFamily) {
  const Model w1 = squeezenext(SqNxtVariant::V5, 1.0, 23);
  const Model w2 = squeezenext(SqNxtVariant::V5, 2.0, 23);
  EXPECT_GT(w2.total_macs(), 2 * w1.total_macs());
}

TEST(Zoo, Table1ModelsInPaperOrder) {
  const auto models = all_table1_models();
  ASSERT_EQ(models.size(), 6u);
  EXPECT_EQ(models[0].name(), "AlexNet");
  EXPECT_EQ(models[1].name(), "1.0 MobileNet-224");
  EXPECT_EQ(models[2].name(), "Tiny Darknet");
  EXPECT_EQ(models[3].name(), "SqueezeNet v1.0");
  EXPECT_EQ(models[4].name(), "SqueezeNet v1.1");
  EXPECT_EQ(models[5].name(), "SqueezeNext");
}

TEST(Zoo, Figure4SpectrumIsDiverse) {
  const auto models = figure4_models();
  EXPECT_GE(models.size(), 10u);
}

}  // namespace
}  // namespace sqz::nn::zoo
