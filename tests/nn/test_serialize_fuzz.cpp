// Property and fuzz tests for the model text format (nn/serialize.h).
//
// Property: for randomly generated builder models, parse(serialize(m))
// reproduces m exactly — same text, same shapes, same MAC/param counts.
// The generator is seeded, so every run exercises the same 64 models.
//
// Fuzz: a hostile corpus (truncated headers, absurd dimensions, garbage
// attributes, bad graph references) must always *throw* std::exception —
// never crash, hang, or return a half-built model.
#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/model.h"
#include "nn/zoo/zoo.h"

namespace sqz::nn {
namespace {

// Build a random but always-valid model. Shapes are tracked so kernels
// never exceed their (padded) inputs — those are rejected at build time by
// shape inference, and the property under test is the round-trip, not the
// builder's validation.
Model random_model(std::mt19937& rng, int index) {
  const auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };

  Model m("Fuzz" + std::to_string(index),
          TensorShape{pick(1, 8), pick(8, 32), pick(8, 32)});
  int last = 0;  // layer index whose output feeds the next layer
  int n = 0;     // monotonically numbered layer names

  const auto shape_of = [&](int idx) { return m.layer(idx).out_shape; };
  const auto name = [&](const char* kind) {
    return std::string(kind) + std::to_string(n++);
  };

  const int steps = pick(3, 10);
  for (int s = 0; s < steps; ++s) {
    const TensorShape cur = shape_of(last);
    switch (pick(0, 6)) {
      case 0: {  // conv, odd square kernel, "same" padding
        const int k = 1 + 2 * pick(0, 2);
        const int stride = pick(1, 2);
        last = m.add_conv(name("conv"), pick(1, 32), k, stride, k / 2, last);
        break;
      }
      case 1: {  // rectangular kernel via full ConvParams
        ConvParams p;
        p.out_channels = pick(1, 16);
        p.kh = pick(1, 3);
        p.kw = pick(1, 3);
        p.stride = 1;
        p.pad_h = p.kh / 2;
        p.pad_w = p.kw / 2;
        p.relu = pick(0, 1) != 0;
        last = m.add_conv(name("rect"), p, last);
        break;
      }
      case 2:
        last = m.add_depthwise(name("dw"), 3, 1, 1, last);
        break;
      case 3:
        if (cur.h >= 4 && cur.w >= 4)
          last = pick(0, 1) ? m.add_maxpool(name("mp"), 2, 2, last)
                            : m.add_avgpool(name("ap"), 2, 2, last);
        break;
      case 4:
        last = m.add_relu(name("relu"), last);
        break;
      case 5: {  // fire-style two-branch concat
        const int b1 = m.add_conv(name("b"), pick(1, 8), 1, 1, 0, last);
        const int b2 = m.add_conv(name("b"), pick(1, 8), 3, 1, 1, last);
        last = m.add_concat(name("cat"), {b1, b2});
        break;
      }
      case 6: {  // residual add around a shape-preserving conv
        const int c = m.add_conv(name("res"), cur.c, 3, 1, 1, last);
        last = m.add_add(name("sum"), c, last);
        break;
      }
    }
  }
  if (pick(0, 1)) {
    m.add_global_avgpool(name("gap"), last);
    m.add_fc(name("fc"), pick(2, 100), pick(0, 1) != 0);
  }
  m.finalize();
  return m;
}

TEST(SerializeProperty, RandomModelsRoundTripExactly) {
  std::mt19937 rng(20260805);  // fixed seed: the corpus is part of the test
  for (int i = 0; i < 64; ++i) {
    const Model m = random_model(rng, i);
    const std::string text = serialize_model(m);
    const Model back = parse_model(text);

    // Text fixed point: serializing the parsed model reproduces the bytes.
    EXPECT_EQ(serialize_model(back), text) << "model " << i;

    // Structural equality, not just textual: shapes and counted work match.
    ASSERT_EQ(back.layer_count(), m.layer_count()) << "model " << i;
    for (int l = 0; l < m.layer_count(); ++l) {
      EXPECT_EQ(back.layer(l).name, m.layer(l).name);
      EXPECT_EQ(back.layer(l).kind, m.layer(l).kind);
      EXPECT_EQ(back.layer(l).out_shape, m.layer(l).out_shape);
      EXPECT_EQ(back.layer(l).inputs, m.layer(l).inputs);
    }
    EXPECT_EQ(back.total_macs(), m.total_macs()) << "model " << i;
    EXPECT_EQ(back.total_params(), m.total_params()) << "model " << i;
  }
}

TEST(SerializeProperty, ZooModelsRoundTripExactly) {
  for (const Model& m :
       {zoo::squeezenet_v10(), zoo::squeezenet_v11(), zoo::squeezenext(),
        zoo::tiny_darknet(), zoo::mobilenet(), zoo::alexnet()}) {
    const std::string text = serialize_model(m);
    EXPECT_EQ(serialize_model(parse_model(text)), text) << m.name();
  }
}

TEST(SerializeFuzz, HostileInputsThrowInsteadOfCrashing) {
  const std::vector<std::string> corpus = {
      // Truncated / malformed headers.
      "",
      "model",
      "model Tiny",
      "model Tiny input",
      "model Tiny input 3x32",
      "model Tiny input 3x32x32x7",
      "model Tiny input axbxc",
      "model  input 3x32x32",
      "model Tiny input 3x32x32",
      "conv name=c out=8 kernel=3x3",  // layer line before any header
      // Absurd or non-positive dimensions.
      "model T input 0x32x32",
      "model T input -3x32x32",
      "model T input 99999999999999999999x2x2",
      "model T input 3x32x32\nconv name=c out=0 kernel=3x3",
      "model T input 3x32x32\nconv name=c out=99999999999999999999 kernel=3",
      "model T input 3x32x32\nconv name=c out=8 kernel=64x64",
      "model T input 3x32x32\nconv name=c out=8 kernel=3x3 stride=0",
      "model T input 3x32x32\nfc name=f out=-4",
      // Garbage attributes and kinds.
      "model T input 3x32x32\nfrobnicate name=x",
      "model T input 3x32x32\nconv name",
      "model T input 3x32x32\nconv name=c out=banana kernel=3x3",
      "model T input 3x32x32\nconv name=c out=8 kernel=3xbanana",
      "model T input 3x32x32\nmaxpool name=p kernel=",
      // Bad graph references.
      "model T input 3x32x32\nconv name=c out=8 kernel=1x1 from=7",
      "model T input 3x32x32\nconv name=c out=8 kernel=1x1 from=-2",
      "model T input 3x32x32\nconcat name=cat from=0",
      "model T input 3x32x32\nconcat name=cat from=0,9",
      "model T input 3x32x32\nadd name=a from=1,1",
      "model T input 3x32x32\nadd name=a from=0",
      "model T input 3x32x32\nadd name=a from=,",
      // Structurally empty: a header alone never finalizes.
      "model T input 3x32x32",
      "model T input 3x32x32\n# only a comment\n\n",
  };
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    try {
      (void)parse_model(corpus[i]);
      FAIL() << "corpus[" << i << "] parsed: " << corpus[i];
    } catch (const std::exception&) {
      // Throw-not-crash is the property; the type and message are free to
      // vary across corpus entries.
    }
  }
}

TEST(SerializeFuzz, DocumentedErrorsAreActionable) {
  // The common mistakes must carry line numbers and name the problem.
  try {
    parse_model("model T input 3x32x32\nconv name=c out=eight kernel=3x3");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
  try {
    parse_model("model T input 3x32x32\nwibble name=x");
    FAIL();
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown layer kind"), std::string::npos) << what;
    EXPECT_NE(what.find("wibble"), std::string::npos) << what;
  }
}

TEST(SerializeFuzz, CommentsAndBlankLinesAreIgnored) {
  const Model m = parse_model(
      "# leading comment\n\nmodel T input 3x8x8\n\n"
      "# conv below\nconv name=c out=4 kernel=3x3 pad=1x1\n\n");
  EXPECT_EQ(m.layer_count(), 2);
  EXPECT_EQ(m.layer(1).name, "c");
}

}  // namespace
}  // namespace sqz::nn
