#include "nn/serialize.h"

#include <gtest/gtest.h>

#include "nn/analysis.h"
#include "nn/zoo/zoo.h"

namespace sqz::nn {
namespace {

void expect_same_structure(const Model& a, const Model& b) {
  ASSERT_EQ(a.layer_count(), b.layer_count());
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.input_shape(), b.input_shape());
  for (int i = 0; i < a.layer_count(); ++i) {
    const Layer& la = a.layer(i);
    const Layer& lb = b.layer(i);
    EXPECT_EQ(la.kind, lb.kind) << i;
    EXPECT_EQ(la.name, lb.name) << i;
    EXPECT_EQ(la.inputs, lb.inputs) << i;
    EXPECT_EQ(la.out_shape, lb.out_shape) << i;
    EXPECT_EQ(la.macs(), lb.macs()) << i;
    EXPECT_EQ(la.params(), lb.params()) << i;
  }
}

TEST(Serialize, RoundTripsEveryZooModel) {
  for (const Model& m : zoo::all_table1_models()) {
    const Model parsed = parse_model(serialize_model(m));
    expect_same_structure(m, parsed);
  }
}

TEST(Serialize, RoundTripsBranchyGraph) {
  Model m("branchy", TensorShape{4, 16, 16});
  const int a = m.add_conv("a", 8, 3, 2, 0);
  const int b = m.add_conv("b", 4, 1, 1, 0, a);
  const int c = m.add_conv("c", 4, 3, 1, 1, a);
  const int cat = m.add_concat("cat", {b, c});
  const int d = m.add_conv("d", 8, 1, 1, 0, cat);
  m.add_add("res", d, a);
  m.add_global_avgpool("gap");
  m.add_fc("fc", 5, false);
  m.finalize();
  expect_same_structure(m, parse_model(serialize_model(m)));
}

TEST(Serialize, ParsesHandWrittenDescription) {
  const Model m = parse_model(
      "model HandNet input 3x32x32\n"
      "# a comment\n"
      "conv name=c1 out=16 kernel=3x3 stride=2 pad=1x1\n"
      "maxpool name=p1 kernel=2 stride=2\n"
      "conv name=c2 out=32 kernel=1x1\n"
      "gavgpool name=gap\n"
      "fc name=out out=10 relu=0\n");
  EXPECT_EQ(m.name(), "HandNet");
  EXPECT_EQ(m.layer_count(), 6);
  EXPECT_EQ(m.layer(1).out_shape, (TensorShape{16, 16, 16}));
  EXPECT_EQ(m.layer(5).out_shape, (TensorShape{10, 1, 1}));
  EXPECT_FALSE(m.layer(5).fc.relu);
}

TEST(Serialize, DepthwiseKeyword) {
  const Model m = parse_model(
      "model Dw input 8x16x16\n"
      "depthwise name=dw kernel=3 stride=1 pad=1\n");
  EXPECT_TRUE(m.layer(1).is_depthwise());
  EXPECT_EQ(m.layer(1).conv.groups, 8);
}

TEST(Serialize, DefaultsMatchBuilder) {
  const Model m = parse_model(
      "model D input 4x8x8\n"
      "conv name=c out=8 kernel=3x3 pad=1x1\n");  // stride/groups/relu default
  EXPECT_EQ(m.layer(1).conv.stride, 1);
  EXPECT_EQ(m.layer(1).conv.groups, 1);
  EXPECT_TRUE(m.layer(1).conv.relu);
}

TEST(Serialize, ErrorsCarryLineNumbers) {
  try {
    parse_model("model X input 3x8x8\nbogus name=z\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Serialize, RejectsMalformedHeader) {
  EXPECT_THROW(parse_model("conv name=c out=8 kernel=1x1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_model("model X input 3x8\n"), std::invalid_argument);
  EXPECT_THROW(parse_model(""), std::invalid_argument);
}

TEST(Serialize, RejectsBadAttributes) {
  EXPECT_THROW(parse_model("model X input 3x8x8\nconv name=c out=abc kernel=1x1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_model("model X input 3x8x8\nconv noequals\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_model("model X input 3x8x8\nconcat name=c from=1\n"),
               std::invalid_argument);
}

TEST(Serialize, AnalysisSurvivesRoundTrip) {
  const Model m = zoo::squeezenet_v11();
  const Model parsed = parse_model(serialize_model(m));
  const OpBreakdown a = analyze_ops(m);
  const OpBreakdown b = analyze_ops(parsed);
  EXPECT_EQ(a.total, b.total);
  for (int c = 0; c < kLayerCategoryCount; ++c) EXPECT_EQ(a.macs[c], b.macs[c]);
}

}  // namespace
}  // namespace sqz::nn
