#include "nn/model.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sqz::nn {
namespace {

TEST(Model, RejectsBadInputShape) {
  EXPECT_THROW(Model("m", TensorShape{0, 5, 5}), std::invalid_argument);
  EXPECT_THROW(Model("m", TensorShape{3, -1, 5}), std::invalid_argument);
}

TEST(Model, InputLayerIsImplicit) {
  Model m("m", TensorShape{3, 8, 8});
  EXPECT_EQ(m.layer_count(), 1);
  EXPECT_EQ(m.layer(0).kind, LayerKind::Input);
  EXPECT_EQ(m.layer(0).out_shape, (TensorShape{3, 8, 8}));
}

TEST(Model, ChainShapeInference) {
  Model m("m", TensorShape{3, 32, 32});
  m.add_conv("c1", 16, 3, 1, 1);
  m.add_maxpool("p1", 2, 2);
  m.add_conv("c2", 32, 3, 1, 1);
  m.add_global_avgpool("g");
  m.add_fc("f", 10);
  m.finalize();
  EXPECT_EQ(m.layer(1).out_shape, (TensorShape{16, 32, 32}));
  EXPECT_EQ(m.layer(2).out_shape, (TensorShape{16, 16, 16}));
  EXPECT_EQ(m.layer(3).out_shape, (TensorShape{32, 16, 16}));
  EXPECT_EQ(m.layer(4).out_shape, (TensorShape{32, 1, 1}));
  EXPECT_EQ(m.layer(5).out_shape, (TensorShape{10, 1, 1}));
}

TEST(Model, ExplicitFromIndices) {
  Model m("m", TensorShape{4, 8, 8});
  const int a = m.add_conv("a", 8, 1, 1, 0, 0);
  const int b = m.add_conv("b", 8, 3, 1, 1, a);
  const int c = m.add_conv("c", 8, 1, 1, 0, a);  // branch from a, not b
  EXPECT_EQ(m.layer(c).inputs.at(0), a);
  const int cat = m.add_concat("cat", {b, c});
  m.finalize();
  EXPECT_EQ(m.layer(cat).out_shape, (TensorShape{16, 8, 8}));
}

TEST(Model, ConcatRequiresMatchingSpatial) {
  Model m("m", TensorShape{4, 8, 8});
  const int a = m.add_conv("a", 8, 1, 1, 0);
  const int b = m.add_maxpool("p", 2, 2, a);
  EXPECT_THROW(m.add_concat("cat", {a, b}), std::invalid_argument);
}

TEST(Model, ConcatNeedsTwoInputs) {
  Model m("m", TensorShape{4, 8, 8});
  const int a = m.add_conv("a", 8, 1, 1, 0);
  EXPECT_THROW(m.add_concat("cat", {a}), std::invalid_argument);
}

TEST(Model, AddRequiresSameShape) {
  Model m("m", TensorShape{4, 8, 8});
  const int a = m.add_conv("a", 8, 1, 1, 0);
  const int b = m.add_conv("b", 16, 1, 1, 0, 0);
  EXPECT_THROW(m.add_add("add", a, b), std::invalid_argument);
}

TEST(Model, ResidualAdd) {
  Model m("m", TensorShape{8, 8, 8});
  const int a = m.add_conv("a", 8, 3, 1, 1);
  const int s = m.add_add("res", a, 0);
  m.finalize();
  EXPECT_EQ(m.layer(s).out_shape, (TensorShape{8, 8, 8}));
}

TEST(Model, RejectsOutOfRangeInput) {
  Model m("m", TensorShape{4, 8, 8});
  EXPECT_THROW(m.add_conv("a", 8, 1, 1, 0, 99), std::invalid_argument);
  EXPECT_THROW(m.add_conv("a", 8, 1, 1, 0, -2), std::invalid_argument);
}

TEST(Model, RejectsBadGroups) {
  Model m("m", TensorShape{5, 8, 8});
  ConvParams p;
  p.out_channels = 8;
  p.kh = p.kw = 1;
  p.groups = 2;  // 5 % 2 != 0
  EXPECT_THROW(m.add_conv("c", p), std::invalid_argument);
}

TEST(Model, RejectsKernelLargerThanInput) {
  Model m("m", TensorShape{3, 4, 4});
  EXPECT_THROW(m.add_conv("c", 8, 7, 1, 0), std::invalid_argument);
}

TEST(Model, FinalizeFreezesModel) {
  Model m("m", TensorShape{3, 8, 8});
  m.add_conv("c", 8, 3, 1, 1);
  m.finalize();
  EXPECT_TRUE(m.finalized());
  EXPECT_THROW(m.add_conv("d", 8, 3, 1, 1), std::logic_error);
  EXPECT_NO_THROW(m.finalize());  // idempotent
}

TEST(Model, FinalizeRejectsEmptyModel) {
  Model m("m", TensorShape{3, 8, 8});
  EXPECT_THROW(m.finalize(), std::invalid_argument);
}

TEST(Model, TotalsSumLayers) {
  Model m("m", TensorShape{3, 16, 16});
  m.add_conv("c1", 8, 3, 1, 1);
  m.add_conv("c2", 16, 1, 1, 0);
  m.finalize();
  EXPECT_EQ(m.total_macs(), m.layer(1).macs() + m.layer(2).macs());
  EXPECT_EQ(m.total_params(), m.layer(1).params() + m.layer(2).params());
}

TEST(Model, FirstConvIndex) {
  Model m("m", TensorShape{3, 16, 16});
  m.add_maxpool("p", 2, 2);
  m.add_conv("c", 8, 3, 1, 1);
  m.finalize();
  EXPECT_EQ(m.first_conv_index(), 2);
}

TEST(Model, FirstConvIndexNoConv) {
  Model m("m", TensorShape{3, 16, 16});
  m.add_fc("f", 4);
  m.finalize();
  EXPECT_EQ(m.first_conv_index(), -1);
}

TEST(Model, PeakActivationBytes) {
  Model m("m", TensorShape{1, 4, 4});
  m.add_conv("c", 2, 1, 1, 0);  // in 16, out 32 elems
  m.finalize();
  EXPECT_EQ(m.peak_activation_bytes(2), (16 + 32) * 2);
}

TEST(Model, SummaryMentionsLayers) {
  Model m("m", TensorShape{3, 8, 8});
  m.add_conv("my_conv", 8, 3, 1, 1);
  m.finalize();
  EXPECT_NE(m.summary().find("my_conv"), std::string::npos);
}

TEST(Model, DepthwiseAfterConcatTracksChannels) {
  Model m("m", TensorShape{4, 8, 8});
  const int a = m.add_conv("a", 8, 1, 1, 0);
  const int b = m.add_conv("b", 8, 1, 1, 0, 0);
  const int cat = m.add_concat("cat", {a, b});
  const int dw = m.add_depthwise("dw", 3, 1, 1, cat);
  m.finalize();
  EXPECT_EQ(m.layer(dw).conv.groups, 16);
  EXPECT_EQ(m.layer(dw).out_shape.c, 16);
}

}  // namespace
}  // namespace sqz::nn
