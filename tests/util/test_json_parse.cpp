// Adversarial-input hardening for util/json_parse: the server feeds this
// parser untrusted request bodies, so hostile shapes must fail fast with a
// clear error instead of exhausting the stack or lying about values.
#include "util/json_parse.h"

#include <gtest/gtest.h>

#include <string>

namespace sqz::util {
namespace {

std::string nested_arrays(std::size_t depth) {
  std::string s(depth, '[');
  s.append(depth, ']');
  return s;
}

std::string error_of(const std::string& text, const JsonLimits& limits = {}) {
  try {
    parse_json(text, limits);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

TEST(JsonParseLimits, DeepButLegalNestingParses) {
  const JsonValue v = parse_json(nested_arrays(128));
  EXPECT_TRUE(v.is_array());
  // Mixed object/array nesting shares the same budget.
  EXPECT_NO_THROW(parse_json(R"({"a":[{"b":[{"c":[]}]}]})"));
}

TEST(JsonParseLimits, NestingBeyondTheCapIsRejectedNotCrashed) {
  // Well past any sane request, far below stack exhaustion.
  const std::string err = error_of(nested_arrays(100000));
  EXPECT_NE(err.find("nesting deeper than 128"), std::string::npos) << err;

  JsonLimits tight;
  tight.max_depth = 3;
  EXPECT_NO_THROW(parse_json(nested_arrays(3), tight));
  EXPECT_NE(error_of(nested_arrays(4), tight).find("nesting deeper than 3"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"a":{"b":{"c":{"d":1}}}})", tight)
                .find("nesting deeper than 3"),
            std::string::npos);
}

TEST(JsonParseLimits, InputSizeGuardRejectsBeforeParsing) {
  JsonLimits tiny;
  tiny.max_bytes = 16;
  EXPECT_NO_THROW(parse_json(R"({"a":1})", tiny));
  const std::string err =
      error_of(R"({"key":"0123456789abcdef"})", tiny);
  EXPECT_NE(err.find("exceeds the 16-byte limit"), std::string::npos) << err;
}

TEST(JsonParseLimits, TruncatedInputsFailCleanly) {
  const char* truncated[] = {
      "{",       "[",        "{\"a\"",   "{\"a\":",  "[1,",
      "\"abc",   "12.",      "1e",       "tru",      "{\"a\":1",
  };
  for (const char* text : truncated) {
    EXPECT_FALSE(error_of(text).empty()) << "'" << text << "' parsed";
  }
}

TEST(JsonParseLimits, HugeScalarsAreRejectedNotInfinity) {
  EXPECT_NE(error_of("1e999").find("out of range"), std::string::npos);
  EXPECT_NE(error_of("-1e999").find("out of range"), std::string::npos);
  // A million-digit integer literal overflows double too.
  std::string monster(1000000, '9');
  JsonLimits roomy;
  roomy.max_bytes = 2 * monster.size();
  EXPECT_NE(error_of(monster, roomy).find("out of range"), std::string::npos);

  // The edges of representable stay accepted.
  EXPECT_DOUBLE_EQ(parse_json("1e308").as_double(), 1e308);
  // Underflow to zero is representable-enough (RFC 8259 leaves it open).
  EXPECT_DOUBLE_EQ(parse_json("1e-999").as_double(), 0.0);
}

TEST(JsonParseLimits, ErrorsStillNameTheByteOffset) {
  const std::string err = error_of("[1, }");
  EXPECT_NE(err.find("at byte"), std::string::npos) << err;
}

}  // namespace
}  // namespace sqz::util
