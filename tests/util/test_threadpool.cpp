#include "util/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace sqz::util {
namespace {

TEST(ThreadPool, ZeroTasksReturnsImmediately) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for_index(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleTaskRuns) {
  ThreadPool pool(4);
  int value = 0;
  pool.parallel_for_index(1, [&](std::size_t i) { value = static_cast<int>(i) + 41; });
  EXPECT_EQ(value, 41);
}

TEST(ThreadPool, FewerTasksThanJobsCoversEveryIndexOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for_index(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ManyMoreTasksThanJobsCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for_index(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, SlotWritesByIndexAreOrdered) {
  // The determinism contract the sweep layer relies on: writing results
  // into position-indexed slots yields the serial output at any job count.
  ThreadPool pool(8);
  std::vector<int> out(512, -1);
  pool.parallel_for_index(out.size(), [&](std::size_t i) {
    out[i] = static_cast<int>(i) * 3;
  });
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST(ThreadPool, WorkerExceptionRethrownOnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for_index(100,
                              [&](std::size_t i) {
                                if (i == 57) throw std::runtime_error("boom 57");
                              }),
      std::runtime_error);
}

TEST(ThreadPool, ExceptionMessagePreserved) {
  ThreadPool pool(2);
  try {
    pool.parallel_for_index(8, [&](std::size_t) {
      throw std::runtime_error("sweep failed");
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "sweep failed");
  }
}

TEST(ThreadPool, PoolStaysUsableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for_index(
                   16, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<int> sum{0};
  pool.parallel_for_index(16, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 120);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(16);
  pool.parallel_for_index(4, [&](std::size_t outer) {
    pool.parallel_for_index(4, [&](std::size_t inner) {
      hits[outer * 4 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, JobsOneExecutesInlineOnTheCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(32);
  pool.parallel_for_index(ids.size(), [&](std::size_t i) {
    ids[i] = std::this_thread::get_id();
  });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, JobsClampedToAtLeastOne) {
  ThreadPool pool(-3);
  EXPECT_EQ(pool.jobs(), 1);
  int runs = 0;
  pool.parallel_for_index(5, [&](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 5);
}

TEST(ThreadPool, DefaultJobsHonoursSqzJobsEnv) {
  ASSERT_EQ(setenv("SQZ_JOBS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::default_jobs(), 3);
  // Garbage is rejected loudly, not silently ignored: a typo'd SQZ_JOBS
  // would otherwise change parallelism without the user noticing.
  ASSERT_EQ(setenv("SQZ_JOBS", "not-a-number", 1), 0);
  EXPECT_THROW(ThreadPool::default_jobs(), std::invalid_argument);
  ASSERT_EQ(setenv("SQZ_JOBS", "0", 1), 0);
  EXPECT_THROW(ThreadPool::default_jobs(), std::invalid_argument);
  ASSERT_EQ(setenv("SQZ_JOBS", "-2", 1), 0);
  EXPECT_THROW(ThreadPool::default_jobs(), std::invalid_argument);
  ASSERT_EQ(unsetenv("SQZ_JOBS"), 0);
  EXPECT_GE(ThreadPool::default_jobs(), 1);
}

TEST(ThreadPool, ParseJobsAcceptsPositiveDecimals) {
  EXPECT_EQ(ThreadPool::parse_jobs("1", "--jobs"), 1);
  EXPECT_EQ(ThreadPool::parse_jobs("64", "--jobs"), 64);
  EXPECT_EQ(ThreadPool::parse_jobs("+8", "--jobs"), 8);
}

TEST(ThreadPool, ParseJobsRejectsGarbageNamingTheSource) {
  const char* bad[] = {"", "0", "-1", "banana", "4x", "1.5", "+", " 2",
                       "99999999999"};
  for (const char* text : bad) {
    try {
      ThreadPool::parse_jobs(text, "SQZ_JOBS");
      FAIL() << "expected rejection of '" << text << "'";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("SQZ_JOBS"), std::string::npos) << what;
      EXPECT_NE(what.find("positive integer"), std::string::npos) << what;
    }
  }
}

TEST(ThreadPool, SubmitRunsEveryTask) {
  std::atomic<int> sum{0};
  {
    ThreadPool pool(4);
    for (int i = 1; i <= 100; ++i)
      pool.submit([&sum, i] { sum.fetch_add(i); });
  }  // destructor drains the queue
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, SubmitOnOneJobPoolRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.submit([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, SubmittedTaskCanRunNestedParallelFor) {
  // The serving path: a connection handler submitted onto the pool runs
  // simulations that themselves call parallel_for_index. The nested call
  // must execute inline on the worker rather than deadlock on the queue.
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  std::atomic<bool> done{false};
  pool.submit([&] {
    pool.parallel_for_index(64, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i));
    });
    done.store(true);
  });
  while (!done.load()) std::this_thread::yield();
  EXPECT_EQ(sum.load(), 2016);
}

TEST(ThreadPoolCapture, CapturesExceptionsWithoutAbortingTheBatch) {
  // The sweep-engine contract: one poisoned index must not cost the other
  // n-1 evaluations (core/dse.h evaluate_designs_checked).
  ThreadPool pool(4);
  constexpr std::size_t kN = 200;
  std::vector<std::atomic<int>> hits(kN);
  std::vector<std::exception_ptr> errors;
  const std::size_t failed = pool.parallel_for_index_capture(
      kN,
      [&](std::size_t i) {
        hits[i].fetch_add(1);
        if (i % 7 == 3) throw std::runtime_error("poisoned");
      },
      errors);
  EXPECT_EQ(failed, 29u);  // |{i < 200 : i % 7 == 3}|
  ASSERT_EQ(errors.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;  // every index ran exactly once
    EXPECT_EQ(static_cast<bool>(errors[i]), i % 7 == 3) << i;
  }
}

TEST(ThreadPoolCapture, CapturedExceptionKeepsItsMessage) {
  ThreadPool pool(2);
  std::vector<std::exception_ptr> errors;
  const std::size_t failed = pool.parallel_for_index_capture(
      8,
      [&](std::size_t i) {
        if (i == 5) throw std::runtime_error("bad point 5");
      },
      errors);
  EXPECT_EQ(failed, 1u);
  ASSERT_TRUE(errors[5]);
  try {
    std::rethrow_exception(errors[5]);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "bad point 5");
  }
}

TEST(ThreadPoolCapture, CleanBatchReturnsZeroAndNullEntries) {
  ThreadPool pool(4);
  std::vector<std::exception_ptr> errors{std::make_exception_ptr(
      std::runtime_error("stale"))};  // must be overwritten
  const std::size_t failed = pool.parallel_for_index_capture(
      16, [](std::size_t) {}, errors);
  EXPECT_EQ(failed, 0u);
  ASSERT_EQ(errors.size(), 16u);
  for (const auto& e : errors) EXPECT_FALSE(e);
}

TEST(ThreadPoolCapture, InlinePathCapturesToo) {
  // jobs=1 runs every index inline on the caller; isolation must hold there
  // just the same.
  ThreadPool pool(1);
  std::vector<std::exception_ptr> errors;
  const std::size_t failed = pool.parallel_for_index_capture(
      5,
      [](std::size_t i) {
        if (i == 0 || i == 4) throw std::invalid_argument("edge");
      },
      errors);
  EXPECT_EQ(failed, 2u);
  EXPECT_TRUE(errors[0]);
  EXPECT_FALSE(errors[2]);
  EXPECT_TRUE(errors[4]);
}

TEST(ThreadPoolCapture, AllIndicesFailingStillCompletes) {
  ThreadPool pool(4);
  std::vector<std::exception_ptr> errors;
  const std::size_t failed = pool.parallel_for_index_capture(
      64, [](std::size_t) { throw std::runtime_error("all down"); }, errors);
  EXPECT_EQ(failed, 64u);
  for (const auto& e : errors) EXPECT_TRUE(e);
}

TEST(ThreadPoolCapture, PoolStaysUsableAfterCapturedFailures) {
  ThreadPool pool(4);
  std::vector<std::exception_ptr> errors;
  pool.parallel_for_index_capture(
      16, [](std::size_t) { throw std::runtime_error("x"); }, errors);
  std::atomic<int> sum{0};
  pool.parallel_for_index(16, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 120);
}

TEST(ThreadPool, GlobalPoolResizesOnSetGlobalJobs) {
  ThreadPool::set_global_jobs(2);
  EXPECT_EQ(ThreadPool::global_jobs(), 2);
  EXPECT_EQ(ThreadPool::global().jobs(), 2);
  ThreadPool::set_global_jobs(5);
  EXPECT_EQ(ThreadPool::global().jobs(), 5);
  ThreadPool::set_global_jobs(0);  // back to the default policy
  EXPECT_EQ(ThreadPool::global_jobs(), ThreadPool::default_jobs());
}

}  // namespace
}  // namespace sqz::util
