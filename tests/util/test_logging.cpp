#include "util/logging.h"

#include <gtest/gtest.h>

namespace sqz::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::Warn;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Off);
  EXPECT_EQ(log_level(), LogLevel::Off);
}

TEST_F(LoggingTest, Names) {
  EXPECT_STREQ(log_level_name(LogLevel::Info), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::Error), "ERROR");
}

TEST_F(LoggingTest, DisabledStatementDoesNotEvaluateEnabled) {
  set_log_level(LogLevel::Off);
  detail::LogStatement stmt(LogLevel::Error);
  EXPECT_FALSE(stmt.enabled());
}

TEST_F(LoggingTest, EnabledAtOrAboveLevel) {
  set_log_level(LogLevel::Warn);
  EXPECT_FALSE(detail::LogStatement(LogLevel::Info).enabled());
  EXPECT_TRUE(detail::LogStatement(LogLevel::Warn).enabled());
  EXPECT_TRUE(detail::LogStatement(LogLevel::Error).enabled());
}

}  // namespace
}  // namespace sqz::util
