#include "util/checked.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>

namespace sqz::util {
namespace {

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();

TEST(Checked, AddPassesThroughInRange) {
  EXPECT_EQ(checked_add(2, 3, "test"), 5);
  EXPECT_EQ(checked_add(-7, 7, "test"), 0);
  EXPECT_EQ(checked_add(kMax - 1, 1, "test"), kMax);
  EXPECT_EQ(checked_add(kMin + 1, -1, "test"), kMin);
}

TEST(Checked, MulPassesThroughInRange) {
  EXPECT_EQ(checked_mul(6, 7, "test"), 42);
  EXPECT_EQ(checked_mul(kMax, 1, "test"), kMax);
  EXPECT_EQ(checked_mul(kMax / 2, 2, "test"), kMax - 1);
  EXPECT_EQ(checked_mul(0, kMax, "test"), 0);
}

TEST(Checked, AddOverflowThrowsInsteadOfWrapping) {
  EXPECT_THROW(checked_add(kMax, 1, "cycles"), std::overflow_error);
  EXPECT_THROW(checked_add(kMin, -1, "cycles"), std::overflow_error);
  EXPECT_THROW(checked_add(kMax / 2 + 1, kMax / 2 + 1, "cycles"),
               std::overflow_error);
}

TEST(Checked, MulOverflowThrowsInsteadOfWrapping) {
  EXPECT_THROW(checked_mul(kMax, 2, "macs"), std::overflow_error);
  EXPECT_THROW(checked_mul(kMax / 2 + 1, 2, "macs"), std::overflow_error);
  EXPECT_THROW(checked_mul(kMin, -1, "macs"), std::overflow_error);
}

TEST(Checked, OverflowMessageNamesTheQuantity) {
  // The message is the actionable part: a sweep over absurd dimensions must
  // say *which* accumulator wrapped, not just "overflow".
  try {
    checked_mul(kMax, 3, "model_weight_bytes");
    FAIL() << "expected std::overflow_error";
  } catch (const std::overflow_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("model_weight_bytes"), std::string::npos) << what;
    EXPECT_NE(what.find("overflow"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace sqz::util
