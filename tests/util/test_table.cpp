#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sqz::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("Title");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, ColumnsAlign) {
  Table t;
  t.set_header({"a", "b"});
  t.add_row({"xxxx", "1"});
  t.add_row({"y", "22"});
  std::istringstream in(t.to_string());
  std::string line;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);  // every rendered line same width
  }
}

TEST(Table, SeparatorInsertsRule) {
  Table t;
  t.add_row({"a"});
  t.add_separator();
  t.add_row({"b"});
  const std::string s = t.to_string();
  // separator + top + bottom rules = at least 3 dashed lines
  std::size_t rules = 0, pos = 0;
  while ((pos = s.find("+-", pos)) != std::string::npos) {
    ++rules;
    pos += 2;
  }
  EXPECT_GE(rules, 3u);
}

TEST(Table, RaggedRowsPadded) {
  Table t;
  t.set_header({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NE(t.to_string().find("only-one"), std::string::npos);
}

TEST(Table, PrintWritesToStream) {
  Table t;
  t.add_row({"z"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.to_string());
}

}  // namespace
}  // namespace sqz::util
