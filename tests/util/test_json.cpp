#include "util/json.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <sstream>

#include "util/json_parse.h"

namespace sqz::util {
namespace {


std::string compact(const std::function<void(JsonWriter&)>& build) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  build(w);
  EXPECT_TRUE(w.done());
  return os.str();
}

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("conv1 [WS]"), "conv1 [WS]");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(json_escape("\b\f"), "\\b\\f");
}

TEST(JsonEscape, Utf8BytesPassThrough) {
  EXPECT_EQ(json_escape("32\xc3\x97"
                        "32"),
            "32\xc3\x97"
            "32");  // "32×32"
}

TEST(JsonNumber, IntegersAndSimpleFractions) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(5.0), "5");
  EXPECT_EQ(json_number(0.4), "0.4");
  EXPECT_EQ(json_number(-2.5), "-2.5");
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonNumber, RoundTripsExactly) {
  // The formatter promises the shortest decimal string that parses back to
  // the identical double — check awkward values bit-exactly.
  for (double v : {1.0 / 3.0, 0.1, 1e300, -1e-300, 3.14159265358979,
                   123456789.123456789, 2.2250738585072014e-308}) {
    const std::string s = json_number(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(JsonWriter, EmptyContainers) {
  EXPECT_EQ(compact([](JsonWriter& w) {
              w.begin_object();
              w.end_object();
            }),
            "{}");
  EXPECT_EQ(compact([](JsonWriter& w) {
              w.begin_array();
              w.end_array();
            }),
            "[]");
}

TEST(JsonWriter, ObjectMembersAndArrays) {
  const std::string s = compact([](JsonWriter& w) {
    w.begin_object();
    w.member("name", "fire2/squeeze1x1");
    w.member("cycles", std::int64_t{934825});
    w.member("ratio", 0.5);
    w.member("on", true);
    w.key("df");
    w.null_value();
    w.key("tags");
    w.begin_array();
    w.value("a");
    w.value(std::int64_t{2});
    w.end_array();
    w.end_object();
  });
  EXPECT_EQ(s,
            "{\"name\":\"fire2/squeeze1x1\",\"cycles\":934825,\"ratio\":"
            "0.5,\"on\":true,\"df\":null,\"tags\":[\"a\",2]}");
}

TEST(JsonWriter, PrettyPrintIsStable) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.begin_object();
  w.member("a", std::int64_t{1});
  w.key("b");
  w.begin_array();
  w.value(std::int64_t{2});
  w.end_array();
  w.end_object();
  EXPECT_EQ(os.str(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(JsonWriter, RoundTripsThroughStrictParser) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.member("weird key \"x\"\n", "va\\lue\t");
  w.member("min", std::numeric_limits<std::int64_t>::min());
  w.member("max", std::numeric_limits<std::int64_t>::max());
  w.member("frac", 1.0 / 3.0);
  w.key("nested");
  w.begin_array();
  w.begin_object();
  w.member("deep", false);
  w.end_object();
  w.null_value();
  w.end_array();
  w.end_object();

  const JsonValue v = parse_json(os.str());
  EXPECT_EQ(v.at("weird key \"x\"\n").as_string(), "va\\lue\t");
  EXPECT_EQ(v.at("min").as_int(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(v.at("max").raw_number, "9223372036854775807");
  EXPECT_EQ(v.at("frac").as_double(), 1.0 / 3.0);
  EXPECT_EQ(v.at("nested").at(std::size_t{0}).at("deep").as_bool(), false);
  EXPECT_EQ(v.at("nested").at(std::size_t{1}).type, JsonValue::Type::Null);
}

TEST(JsonWriter, MisuseThrowsInsteadOfEmittingGarbage) {
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.value(std::int64_t{1}), std::logic_error);  // key missing
  }
  {
    JsonWriter w(os);
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key outside object
  }
  {
    JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);  // mismatched close
  }
  {
    JsonWriter w(os);
    w.begin_object();
    w.key("k");
    EXPECT_THROW(w.end_object(), std::logic_error);  // dangling key
    EXPECT_THROW(w.key("j"), std::logic_error);      // key after key
  }
  {
    JsonWriter w(os);
    w.value("done");
    EXPECT_TRUE(w.done());
    EXPECT_THROW(w.value("again"), std::logic_error);  // two top-level values
  }
}

TEST(MiniJsonParser, RejectsMalformedDocuments) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":1,}", "{\"a\" 1}", "01",
                          "1.", "1e", "\"\\x\"", "tru", "{\"a\":1}{", "[1] 2",
                          "{\"a\":1,\"a\":2}", "\"\x01\""}) {
    EXPECT_THROW(parse_json(bad), std::runtime_error) << bad;
  }
}

}  // namespace
}  // namespace sqz::util
