#include "util/strings.h"

#include <gtest/gtest.h>

namespace sqz::util {
namespace {

TEST(Format, Printf) {
  EXPECT_EQ(format("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(format("%s", ""), "");
}

TEST(WithCommas, Grouping) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

TEST(Si, Suffixes) {
  EXPECT_EQ(si(950.0), "950.00");
  EXPECT_EQ(si(1234.0), "1.23K");
  EXPECT_EQ(si(1234567.0), "1.23M");
  EXPECT_EQ(si(2.5e9, 1), "2.5G");
  EXPECT_EQ(si(3e12, 0), "3T");
}

TEST(Percent, Formatting) {
  EXPECT_EQ(percent(0.234), "23.4%");
  EXPECT_EQ(percent(1.0, 0), "100%");
  EXPECT_EQ(percent(0.0), "0.0%");
}

TEST(Times, Formatting) {
  EXPECT_EQ(times(2.59), "2.59x");
  EXPECT_EQ(times(1.0, 1), "1.0x");
}

TEST(Split, Basics) {
  EXPECT_EQ(split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(split("a,b,c", ',')[1], "b");
  EXPECT_TRUE(split("", ',').empty());
  const auto trailing = split("a,", ',');
  ASSERT_EQ(trailing.size(), 2u);
  EXPECT_EQ(trailing[1], "");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcdef", 4), "abcd");  // truncates
  EXPECT_EQ(pad_right("abcdef", 4), "abcd");
}

}  // namespace
}  // namespace sqz::util
