#include "util/ini.h"

#include "util/strings.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sqz::util {
namespace {

TEST(Ini, ParsesSectionsAndKeys) {
  const IniFile ini = IniFile::parse(
      "top = 1\n"
      "[accelerator]\n"
      "array_n = 32\n"
      "name = squeezelerator\n"
      "[other]\n"
      "array_n = 8\n");
  EXPECT_EQ(ini.get("", "top"), "1");
  EXPECT_EQ(ini.get("accelerator", "array_n"), "32");
  EXPECT_EQ(ini.get("other", "array_n"), "8");
  EXPECT_EQ(ini.get("accelerator", "name"), "squeezelerator");
  EXPECT_FALSE(ini.get("accelerator", "missing").has_value());
  EXPECT_FALSE(ini.get("missing", "array_n").has_value());
}

TEST(Ini, CommentsAndWhitespace) {
  const IniFile ini = IniFile::parse(
      "# full line comment\n"
      "  key1   =   spaced value  \n"
      "key2 = 7 ; trailing comment\n"
      "\n"
      "; another comment style\n");
  EXPECT_EQ(ini.get("", "key1"), "spaced value");
  EXPECT_EQ(ini.get_int("", "key2"), 7);
}

TEST(Ini, TypedGetters) {
  const IniFile ini = IniFile::parse(
      "i = -42\nd = 2.5\nb1 = true\nb2 = off\nb3 = 1\n");
  EXPECT_EQ(ini.get_int("", "i"), -42);
  EXPECT_DOUBLE_EQ(*ini.get_double("", "d"), 2.5);
  EXPECT_EQ(ini.get_bool("", "b1"), true);
  EXPECT_EQ(ini.get_bool("", "b2"), false);
  EXPECT_EQ(ini.get_bool("", "b3"), true);
  EXPECT_FALSE(ini.get_int("", "missing").has_value());
}

TEST(Ini, TypedGettersRejectMalformed) {
  const IniFile ini = IniFile::parse("i = 12abc\nb = maybe\nd = 1.2.3\n");
  EXPECT_THROW(ini.get_int("", "i"), std::invalid_argument);
  EXPECT_THROW(ini.get_bool("", "b"), std::invalid_argument);
  EXPECT_THROW(ini.get_double("", "d"), std::invalid_argument);
}

TEST(Ini, ParseErrorsCarryLineNumbers) {
  try {
    IniFile::parse("good = 1\nbad line without equals\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(IniFile::parse("[unterminated\n"), std::invalid_argument);
  EXPECT_THROW(IniFile::parse("= value\n"), std::invalid_argument);
}

TEST(Ini, LastValueWins) {
  const IniFile ini = IniFile::parse("k = 1\nk = 2\n");
  EXPECT_EQ(ini.get_int("", "k"), 2);
}

TEST(Ini, HasSection) {
  const IniFile ini = IniFile::parse("[a]\nx = 1\n");
  EXPECT_TRUE(ini.has_section("a"));
  EXPECT_FALSE(ini.has_section("b"));
}

TEST(Ini, RoundTrip) {
  IniFile ini;
  ini.set("sec", "key", "value");
  ini.set("", "top", "1");
  const IniFile again = IniFile::parse(ini.to_string());
  EXPECT_EQ(again.get("sec", "key"), "value");
  EXPECT_EQ(again.get("", "top"), "1");
}

TEST(TrimCopy, Basics) {
  EXPECT_EQ(trim_copy("  x  "), "x");
  EXPECT_EQ(trim_copy("\t\r\n"), "");
  EXPECT_EQ(trim_copy("a b"), "a b");
}

}  // namespace
}  // namespace sqz::util
