#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace sqz::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowZeroBound) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextInCoversRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, NextUnitInHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliFrequencyNearP) {
  Rng rng(5);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i)
    if (rng.next_bernoulli(0.4)) ++hits;
  const double freq = static_cast<double>(hits) / trials;
  EXPECT_NEAR(freq, 0.4, 0.02);
}

TEST(Rng, BernoulliDegenerateProbabilities) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(123);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(99), p2(99);
  Rng a = p1.split(7);
  Rng b = p2.split(7);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Hash64, StableAndSensitive) {
  EXPECT_EQ(hash64("abc", 3), hash64("abc", 3));
  EXPECT_NE(hash64("abc", 3), hash64("abd", 3));
  EXPECT_NE(hash64("abc", 3), hash64("abc", 2));
}

}  // namespace
}  // namespace sqz::util
