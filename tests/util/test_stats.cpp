#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sqz::util {
namespace {

TEST(Accumulator, Empty) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator a;
  a.add(5.0);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 5.0);
  EXPECT_EQ(a.max(), 5.0);
  EXPECT_EQ(a.mean(), 5.0);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_EQ(a.sum(), 5.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator a;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(v);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.variance(), 4.0);  // classic textbook dataset
  EXPECT_DOUBLE_EQ(a.stddev(), 2.0);
  EXPECT_EQ(a.min(), 2.0);
  EXPECT_EQ(a.max(), 9.0);
}

TEST(Accumulator, NegativeValues) {
  Accumulator a;
  a.add(-3.0);
  a.add(3.0);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.min(), -3.0);
}

TEST(Geomean, Basics) {
  EXPECT_EQ(geomean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(Percentile, Basics) {
  EXPECT_EQ(percentile({}, 50), 0.0);
  EXPECT_EQ(percentile({7.0}, 99), 7.0);
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(Percentile, ClampsOutOfRangeP) {
  std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, -10), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 200), 3.0);
}

TEST(Percentile, UnsortedInput) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
}

}  // namespace
}  // namespace sqz::util
