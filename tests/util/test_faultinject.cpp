#include "util/faultinject.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>

namespace sqz::util::fault {
namespace {

// Every test leaves the registry clean so suites sharing the process (the
// chaos suite in particular) start from a disarmed world.
class FaultInject : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
};

TEST_F(FaultInject, DisarmedWorldIsFreeOfFaults) {
  EXPECT_FALSE(enabled());
  EXPECT_EQ(at("anything").kind, Kind::None);
  EXPECT_EQ(hits("anything"), 0u);
}

TEST_F(FaultInject, ArmedSiteFiresExactlyItsShotCount) {
  arm("io.write", make_errno(ENOSPC), 2);
  EXPECT_TRUE(enabled());
  EXPECT_EQ(remaining("io.write"), 2);

  const Action first = at("io.write");
  EXPECT_EQ(first.kind, Kind::Errno);
  EXPECT_EQ(first.err, ENOSPC);
  EXPECT_TRUE(static_cast<bool>(first));

  EXPECT_EQ(at("io.write").kind, Kind::Errno);
  EXPECT_EQ(at("io.write").kind, Kind::None);  // shots exhausted
  EXPECT_EQ(hits("io.write"), 2u);
  EXPECT_FALSE(enabled());  // nothing left armed anywhere
}

TEST_F(FaultInject, SitesAreIndependent) {
  arm("a", make_short(3), 1);
  arm("b", make_errno(EIO), 1);
  EXPECT_EQ(at("c").kind, Kind::None);
  const Action a = at("a");  // the one armed shot; consumed exactly here
  EXPECT_EQ(a.kind, Kind::ShortIo);
  EXPECT_EQ(a.bytes, 3u);
  EXPECT_TRUE(enabled());  // "b" still armed
  EXPECT_EQ(at("b").err, EIO);
  EXPECT_FALSE(enabled());
}

TEST_F(FaultInject, DisarmCancelsRemainingShots) {
  arm("x", make_errno(EMFILE), 100);
  disarm("x");
  EXPECT_FALSE(enabled());
  EXPECT_EQ(at("x").kind, Kind::None);
}

TEST_F(FaultInject, StallSleepsInsideConsume) {
  arm("slow", make_stall(30), 1);
  const auto t0 = std::chrono::steady_clock::now();
  const Action a = at("slow");
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_EQ(a.kind, Kind::Stall);
  EXPECT_GE(elapsed.count(), 25);
}

TEST_F(FaultInject, SpecArmsMultipleSites) {
  std::string error;
  ASSERT_TRUE(arm_from_spec(
      "serve.recv=errno:ECONNRESET;simcache.write=short:5*3;x=stall:0", &error))
      << error;
  EXPECT_EQ(at("serve.recv").err, ECONNRESET);
  EXPECT_EQ(remaining("simcache.write"), 3);
  EXPECT_EQ(at("simcache.write").bytes, 5u);
  EXPECT_EQ(at("x").kind, Kind::Stall);
}

TEST_F(FaultInject, SpecAcceptsNumericErrno) {
  ASSERT_TRUE(arm_from_spec("s=errno:28"));
  EXPECT_EQ(at("s").err, 28);
}

TEST_F(FaultInject, MalformedSpecArmsNothingAndExplains) {
  const char* bad[] = {
      "noequals",        "=errno:EIO",     "s=errno:EWHAT",
      "s=short:pigs",    "s=stall:-4",     "s=explode",
      "s=errno:EIO*0",   "s=errno:EIO*x",
  };
  for (const char* spec : bad) {
    std::string error;
    EXPECT_FALSE(arm_from_spec(spec, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
    EXPECT_FALSE(enabled()) << spec;
  }
  // One bad clause poisons the whole spec: the good clause must not arm.
  EXPECT_FALSE(arm_from_spec("good=errno:EIO;bad=explode"));
  EXPECT_EQ(at("good").kind, Kind::None);
}

}  // namespace
}  // namespace sqz::util::fault
