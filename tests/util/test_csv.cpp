#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sqz::util {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesFieldsWithSpecials) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b,c"});
  w.write_row({"1", "2"});
  EXPECT_EQ(os.str(), "a,\"b,c\"\n1,2\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(CsvWriter, NumericRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_numeric_row("x", {1.5, 2.25}, 2);
  EXPECT_EQ(os.str(), "x,1.50,2.25\n");
}

}  // namespace
}  // namespace sqz::util
