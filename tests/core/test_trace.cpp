// Chrome trace export: the file must be valid trace-event JSON whose
// per-track complete events are monotonic and well-nested, and whose span
// agrees with the simulated cycle totals.
#include "core/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "util/json_parse.h"

namespace sqz::core {
namespace {

using util::JsonValue;
using util::parse_json;

struct Span {
  std::int64_t start = 0;
  std::int64_t end = 0;
  std::string name;
};

JsonValue trace_for(const nn::Model& model, const sched::SimulationOptions& opt) {
  const sim::NetworkResult result = sched::simulate_network(
      model, sim::AcceleratorConfig::squeezelerator(), opt);
  std::ostringstream os;
  write_chrome_trace(model, result, os);
  return parse_json(os.str());
}

/// Collect "X" events per track and check stack-nesting: sorted by start
/// (longer first on ties), every event either nests inside the open one or
/// begins at/after its end. Overlap without containment fails.
void check_tracks(const JsonValue& trace, std::map<int, std::vector<Span>>* out) {
  for (const JsonValue& e : trace.at("traceEvents").items) {
    if (e.at("ph").as_string() != "X") continue;
    ASSERT_TRUE(e.has("ts"));
    ASSERT_TRUE(e.has("dur"));
    ASSERT_TRUE(e.has("pid"));
    const std::int64_t ts = e.at("ts").as_int();
    const std::int64_t dur = e.at("dur").as_int();
    EXPECT_GE(ts, 0);
    EXPECT_GT(dur, 0);  // zero-duration events are suppressed
    (*out)[static_cast<int>(e.at("tid").as_int())].push_back(
        Span{ts, ts + dur, e.at("name").as_string()});
  }
  for (auto& [tid, spans] : *out) {
    std::stable_sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
      if (a.start != b.start) return a.start < b.start;
      return a.end > b.end;
    });
    std::vector<std::int64_t> stack;
    for (const Span& s : spans) {
      while (!stack.empty() && s.start >= stack.back()) stack.pop_back();
      if (!stack.empty()) {
        EXPECT_LE(s.end, stack.back())
            << "track " << tid << ": '" << s.name << "' [" << s.start << ","
            << s.end << ") overlaps its enclosing event";
      }
      stack.push_back(s.end);
    }
  }
}

TEST(ChromeTrace, FlatModelTraceIsWellFormed) {
  const nn::Model model = nn::zoo::squeezenet_v11();
  const JsonValue trace = trace_for(model, {});

  EXPECT_TRUE(trace.at("traceEvents").is_array());
  std::map<int, std::vector<Span>> tracks;
  check_tracks(trace, &tracks);

  // PE-array, SIMD, and DMA tracks all carry events for this network.
  EXPECT_FALSE(tracks[kTraceTidPeArray].empty());
  EXPECT_FALSE(tracks[kTraceTidSimd].empty());
  EXPECT_FALSE(tracks[kTraceTidDma].empty());
}

TEST(ChromeTrace, SpanMatchesNetworkTotal) {
  const nn::Model model = nn::zoo::squeezenext();
  const sim::NetworkResult result =
      sched::simulate_network(model, sim::AcceleratorConfig::squeezelerator());
  std::ostringstream os;
  write_chrome_trace(model, result, os);
  const JsonValue trace = parse_json(os.str());

  std::int64_t max_end = 0;
  for (const JsonValue& e : trace.at("traceEvents").items) {
    if (e.at("ph").as_string() != "X") continue;
    max_end = std::max(max_end, e.at("ts").as_int() + e.at("dur").as_int());
  }
  EXPECT_EQ(max_end, result.total_cycles());
  EXPECT_EQ(trace.at("otherData").at("total_cycles").as_int(),
            result.total_cycles());
}

TEST(ChromeTrace, MetadataNamesAllTracks) {
  const JsonValue trace = trace_for(nn::zoo::tiny_darknet(), {});
  std::map<int, std::string> names;
  for (const JsonValue& e : trace.at("traceEvents").items) {
    if (e.at("ph").as_string() == "M" && e.at("name").as_string() == "thread_name")
      names[static_cast<int>(e.at("tid").as_int())] =
          e.at("args").at("name").as_string();
  }
  EXPECT_EQ(names[kTraceTidPeArray], "PE array");
  EXPECT_EQ(names[kTraceTidSimd], "SIMD unit");
  EXPECT_EQ(names[kTraceTidDma], "DMA");
}

TEST(ChromeTrace, TimelineModeEmitsNestedTileEvents) {
  sched::SimulationOptions opt;
  opt.tile_timeline = true;
  const JsonValue trace = trace_for(nn::zoo::squeezenet_v11(), opt);

  std::map<int, std::vector<Span>> tracks;
  check_tracks(trace, &tracks);  // nesting holds with tile detail too

  int tile_events = 0, dma_loads = 0;
  for (const JsonValue& e : trace.at("traceEvents").items) {
    if (e.at("ph").as_string() != "X" || e.at("cat").as_string() != "tile")
      continue;
    ++tile_events;
    if (e.at("tid").as_int() == kTraceTidDma && e.at("name").as_string() == "load")
      ++dma_loads;
    ASSERT_TRUE(e.at("args").has("tile"));
  }
  EXPECT_GT(tile_events, 0);
  EXPECT_GT(dma_loads, 0);  // double-buffered prefetches are visible
}

TEST(ChromeTrace, LayerSpansCarryTheDataflowDecision) {
  const JsonValue trace = trace_for(nn::zoo::squeezenet_v10(), {});
  bool saw_ws = false, saw_os = false;
  for (const JsonValue& e : trace.at("traceEvents").items) {
    if (e.at("ph").as_string() != "X" || e.at("cat").as_string() != "layer")
      continue;
    if (e.at("tid").as_int() != kTraceTidPeArray) continue;
    const std::string& df = e.at("args").at("dataflow").as_string();
    saw_ws |= df == "WS";
    saw_os |= df == "OS";
    EXPECT_NE(e.at("name").as_string().find("[" + df + "]"), std::string::npos);
  }
  EXPECT_TRUE(saw_ws);
  EXPECT_TRUE(saw_os);
}

}  // namespace
}  // namespace sqz::core
