#include "core/report.h"

#include <gtest/gtest.h>

#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"

namespace sqz::core {
namespace {

TEST(Report, PerLayerTableHasEveryMacLayer) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  const auto result =
      sched::simulate_network(m, sim::AcceleratorConfig::squeezelerator());
  const util::Table t = per_layer_table(m, result, "test");
  const std::string s = t.to_string();
  EXPECT_NE(s.find("conv1"), std::string::npos);
  EXPECT_NE(s.find("fire9/expand3x3"), std::string::npos);
  EXPECT_NE(s.find("TOTAL"), std::string::npos);
}

TEST(Report, ComparisonTableTotalsPresent) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  const ComparisonResult cmp = compare_dataflows(m);
  const util::Table t = per_layer_comparison_table(m, cmp, "fig1");
  const std::string s = t.to_string();
  EXPECT_NE(s.find("WS kcyc"), std::string::npos);
  EXPECT_NE(s.find("TOTAL"), std::string::npos);
}

TEST(Report, Table2RowMatchesComparison) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  const ComparisonResult cmp = compare_dataflows(m);
  const Table2Row row = table2_row(m, cmp);
  EXPECT_EQ(row.network, m.name());
  EXPECT_DOUBLE_EQ(row.speedup_vs_os, cmp.speedup_vs_os());
  EXPECT_DOUBLE_EQ(row.energy_red_vs_ws, cmp.energy_reduction_vs_ws());
}

TEST(Report, EnergyTableSharesSumToOne) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  const auto result =
      sched::simulate_network(m, sim::AcceleratorConfig::squeezelerator());
  const util::Table t = energy_table(result, {}, "energy");
  EXPECT_NE(t.to_string().find("DRAM"), std::string::npos);
  EXPECT_NE(t.to_string().find("100.0%"), std::string::npos);
}

TEST(Power, AveragePowerDefinition) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  const auto result =
      sched::simulate_network(m, sim::AcceleratorConfig::squeezelerator());
  const double e = energy::network_energy(result).total();
  const double expected_mw =
      e / static_cast<double>(result.total_cycles());  // 1 pJ/MAC, 1 GHz
  EXPECT_NEAR(energy::average_power_mw(result), expected_mw, 1e-9);
  // Doubling the clock doubles power (same energy in half the time).
  EXPECT_NEAR(energy::average_power_mw(result, {}, 1.0, 2.0), 2 * expected_mw,
              1e-9);
  // A 2 pJ MAC doubles it too.
  EXPECT_NEAR(energy::average_power_mw(result, {}, 2.0), 2 * expected_mw, 1e-9);
}

TEST(Power, EmbeddedEnvelopeOrderOfMagnitude) {
  // At 1 pJ/MAC and 1 GHz the zoo draws a fraction of a watt to a few watts
  // — the right envelope for the paper's battery-powered form factors.
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    const auto r =
        sched::simulate_network(m, sim::AcceleratorConfig::squeezelerator());
    const double mw = energy::average_power_mw(r);
    EXPECT_GT(mw, 100.0) << m.name();
    EXPECT_LT(mw, 10000.0) << m.name();
  }
}

}  // namespace
}  // namespace sqz::core
