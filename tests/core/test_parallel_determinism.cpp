// The parallel evaluation contract: any job count produces byte-for-byte
// the output of the serial path. Sweeps write results into slots indexed by
// input position, so ordering, Pareto membership, and JSON dump bytes must
// never depend on thread scheduling.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/codesign.h"
#include "core/dse.h"
#include "core/multicore.h"
#include "nn/zoo/zoo.h"
#include "util/threadpool.h"

namespace sqz::core {
namespace {

// Restores the default job policy even when an assertion fails mid-test.
struct JobsGuard {
  ~JobsGuard() { util::ThreadPool::set_global_jobs(0); }
};

struct SweepRun {
  std::vector<DesignPoint> points;
  std::string dump;
};

SweepRun run_array_sweep(int jobs) {
  util::ThreadPool::set_global_jobs(jobs);
  const nn::Model m = nn::zoo::squeezenext();
  const auto configs =
      sweep_array_n(sim::AcceleratorConfig::squeezelerator(), {8, 16, 24, 32});
  SweepRun r;
  r.points = evaluate_designs(m, configs);
  std::ostringstream os;
  write_design_points_json("array_n on sqnxt23", r.points, os);
  r.dump = os.str();
  return r;
}

TEST(ParallelDeterminism, ArraySweepJsonBytesIdenticalAtJobs1And8) {
  JobsGuard guard;
  const SweepRun serial = run_array_sweep(1);
  const SweepRun parallel = run_array_sweep(8);

  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(serial.points[i].label, parallel.points[i].label) << i;
    EXPECT_EQ(serial.points[i].cycles, parallel.points[i].cycles) << i;
    // Bit-exact, not approximately equal: identical per-point computation
    // order means identical floating-point rounding.
    EXPECT_EQ(serial.points[i].energy, parallel.points[i].energy) << i;
    EXPECT_EQ(serial.points[i].utilization, parallel.points[i].utilization) << i;
  }
  EXPECT_EQ(serial.dump, parallel.dump);  // byte-identical JSON documents
}

TEST(ParallelDeterminism, RepeatedParallelRunsAreStable) {
  JobsGuard guard;
  const SweepRun first = run_array_sweep(8);
  const SweepRun second = run_array_sweep(8);
  EXPECT_EQ(first.dump, second.dump);
}

TEST(ParallelDeterminism, TuningPicksTheSameWinnerAtAnyJobCount) {
  JobsGuard guard;
  const nn::Model m = nn::zoo::squeezenet_v11();
  TuningSpace space;
  space.rf_entries = {4, 8, 16, 32};
  space.array_n = {16, 32};

  util::ThreadPool::set_global_jobs(1);
  const TuningResult serial = tune_accelerator(m, space);
  util::ThreadPool::set_global_jobs(8);
  const TuningResult parallel = tune_accelerator(m, space);

  EXPECT_EQ(serial.best.rf_entries, parallel.best.rf_entries);
  EXPECT_EQ(serial.best.array_n, parallel.best.array_n);
  ASSERT_EQ(serial.candidates.size(), parallel.candidates.size());
  for (std::size_t i = 0; i < serial.candidates.size(); ++i) {
    EXPECT_EQ(serial.candidates[i].cycles, parallel.candidates[i].cycles) << i;
    EXPECT_EQ(serial.candidates[i].energy, parallel.candidates[i].energy) << i;
  }
}

TEST(ParallelDeterminism, MulticoreMakespanAndEnergyIdenticalAtAnyJobCount) {
  JobsGuard guard;
  const nn::Model m = nn::zoo::squeezenet_v11();
  sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();
  cfg.batch = 8;

  util::ThreadPool::set_global_jobs(1);
  const MulticoreResult serial = simulate_multicore(m, cfg, 4);
  util::ThreadPool::set_global_jobs(8);
  const MulticoreResult parallel = simulate_multicore(m, cfg, 4);

  EXPECT_EQ(serial.makespan_cycles(), parallel.makespan_cycles());
  EXPECT_EQ(serial.total_energy().total(), parallel.total_energy().total());
  ASSERT_EQ(serial.core_results.size(), 4u);
  ASSERT_EQ(parallel.core_results.size(), 4u);
  for (std::size_t c = 0; c < 4; ++c)
    EXPECT_EQ(serial.core_results[c].total_cycles(),
              parallel.core_results[c].total_cycles());
}

}  // namespace
}  // namespace sqz::core
