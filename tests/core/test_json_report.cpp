// The JSON run report must agree exactly with the simulation result the
// ASCII tables are rendered from — same cycles, counts, and energies.
#include "core/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "util/json_parse.h"

namespace sqz::core {
namespace {

using util::JsonValue;
using util::parse_json;

JsonValue report_for(const nn::Model& model, const sched::SimulationOptions& opt,
                     const sim::NetworkResult& result) {
  (void)model;
  std::ostringstream os;
  write_json_report(model, result, opt.units, os);
  return parse_json(os.str());
}

TEST(JsonReport, SchemaVersionAndProvenance) {
  const nn::Model model = nn::zoo::squeezenet_v11();
  const sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();
  const sim::NetworkResult result = sched::simulate_network(model, cfg);
  const JsonValue r = report_for(model, {}, result);

  EXPECT_EQ(r.at("schema_version").as_int(), kReportSchemaVersion);
  EXPECT_EQ(r.at("generator").as_string(), "sqzsim");
  EXPECT_EQ(r.at("model").at("name").as_string(), "SqueezeNet v1.1");
  EXPECT_EQ(r.at("config").at("array_n").as_int(), cfg.array_n);
  EXPECT_EQ(r.at("config").at("rf_entries").as_int(), cfg.rf_entries);
  EXPECT_EQ(r.at("config").at("support").as_string(), "hybrid");
  EXPECT_EQ(r.at("config").at("weight_sparsity").as_double(), cfg.weight_sparsity);
  EXPECT_EQ(r.at("unit_energies").at("dram").as_double(), 200.0);
}

TEST(JsonReport, TotalsMatchTheTablePathExactly) {
  const nn::Model model = nn::zoo::squeezenext();
  const sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();
  const sim::NetworkResult result = sched::simulate_network(model, cfg);
  const energy::UnitEnergies units;
  const JsonValue r = report_for(model, {}, result);

  EXPECT_EQ(r.at("totals").at("cycles").as_int(), result.total_cycles());
  EXPECT_EQ(r.at("totals").at("useful_macs").as_int(), result.total_useful_macs());
  EXPECT_EQ(r.at("totals").at("latency_ms").as_double(), result.latency_ms());
  EXPECT_EQ(r.at("totals").at("utilization").as_double(), result.utilization());
  EXPECT_EQ(r.at("totals").at("counts").at("dram_words").as_int(),
            result.total_counts().dram_words);
  EXPECT_EQ(r.at("totals").at("energy").at("total").as_double(),
            energy::network_energy(result, units).total());
}

TEST(JsonReport, PerLayerRecordsMatchAndSumToTotals) {
  const nn::Model model = nn::zoo::squeezenet_v10();
  const sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();
  const sim::NetworkResult result = sched::simulate_network(model, cfg);
  const energy::UnitEnergies units;
  const JsonValue r = report_for(model, {}, result);

  const JsonValue& layers = r.at("layers");
  ASSERT_EQ(layers.items.size(), result.layers.size());

  std::int64_t cycle_sum = 0;
  double energy_sum = 0.0;
  for (std::size_t i = 0; i < result.layers.size(); ++i) {
    const sim::LayerResult& l = result.layers[i];
    const JsonValue& j = layers.at(i);
    EXPECT_EQ(j.at("name").as_string(), l.layer_name);
    EXPECT_EQ(j.at("index").as_int(), l.layer_idx);
    EXPECT_EQ(j.at("total_cycles").as_int(), l.total_cycles);
    EXPECT_EQ(j.at("compute_cycles").as_int(), l.compute_cycles);
    EXPECT_EQ(j.at("counts").at("mac_ops").as_int(), l.counts.mac_ops);
    EXPECT_EQ(j.at("counts").at("gb_reads").as_int(), l.counts.gb_reads);
    EXPECT_EQ(j.at("energy").at("total").as_double(),
              energy::energy_of(l.counts, units).total());
    EXPECT_EQ(j.at("engine").as_string(), l.on_pe_array ? "pe-array" : "simd");
    if (l.on_pe_array) {
      EXPECT_EQ(j.at("dataflow").as_string(), sim::dataflow_abbrev(l.dataflow));
    } else {
      EXPECT_EQ(j.at("dataflow").type, JsonValue::Type::Null);
    }
    cycle_sum += j.at("total_cycles").as_int();
    energy_sum += j.at("energy").at("total").as_double();
  }
  EXPECT_EQ(cycle_sum, r.at("totals").at("cycles").as_int());
  EXPECT_NEAR(energy_sum, r.at("totals").at("energy").at("total").as_double(),
              energy_sum * 1e-12);
}

TEST(JsonReport, TimelineModeReportsRetimedCycles) {
  const nn::Model model = nn::zoo::squeezenet_v11();
  const sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();
  sched::SimulationOptions opt;
  opt.tile_timeline = true;
  const sim::NetworkResult result = sched::simulate_network(model, cfg, opt);
  const JsonValue r = report_for(model, opt, result);
  EXPECT_EQ(r.at("totals").at("cycles").as_int(), result.total_cycles());
}

TEST(JsonReport, DataflowDecisionsAreInspectable) {
  // The report exists so "why did this layer choose WS over OS" is readable
  // without the debugger: every PE-array layer carries its decision.
  const nn::Model model = nn::zoo::squeezenet_v10();
  const sim::NetworkResult result =
      sched::simulate_network(model, sim::AcceleratorConfig::squeezelerator());
  const JsonValue r = report_for(model, {}, result);
  int ws = 0, os = 0;
  for (const JsonValue& j : r.at("layers").items) {
    if (j.at("engine").as_string() != "pe-array") continue;
    const std::string& df = j.at("dataflow").as_string();
    (df == "WS" ? ws : os) += 1;
  }
  // SqueezeNet on the hybrid accelerator uses both dataflows (Figure 1).
  EXPECT_GT(ws, 0);
  EXPECT_GT(os, 0);
}

}  // namespace
}  // namespace sqz::core
