#include "core/squeezelerator.h"

#include <gtest/gtest.h>

#include "nn/zoo/zoo.h"

namespace sqz::core {
namespace {

TEST(Compare, HybridWinsOrTies) {
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    const ComparisonResult c = compare_dataflows(m);
    EXPECT_GE(c.speedup_vs_ws(), 1.0) << m.name();
    EXPECT_GE(c.speedup_vs_os(), 1.0) << m.name();
  }
}

TEST(Compare, ReferencesShareMicroarchitecture) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  const ComparisonResult c = compare_dataflows(m);
  EXPECT_EQ(c.ws_only.config.support, sim::DataflowSupport::WsOnly);
  EXPECT_EQ(c.os_only.config.support, sim::DataflowSupport::OsOnly);
  EXPECT_EQ(c.hybrid.config.support, sim::DataflowSupport::Hybrid);
  EXPECT_EQ(c.ws_only.config.array_n, c.hybrid.config.array_n);
  EXPECT_EQ(c.os_only.config.gb_kib, c.hybrid.config.gb_kib);
  // Reference WS lacks the psum accumulator tune-up.
  EXPECT_TRUE(c.ws_only.config.ws_psums_in_gb);
  EXPECT_FALSE(c.hybrid.config.ws_psums_in_gb);
}

TEST(Compare, EnergyReductionDefinition) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  const ComparisonResult c = compare_dataflows(m);
  const double e_h = energy::network_energy(c.hybrid, c.units).total();
  const double e_ws = energy::network_energy(c.ws_only, c.units).total();
  EXPECT_NEAR(c.energy_reduction_vs_ws(), 1.0 - e_h / e_ws, 1e-12);
}

TEST(Compare, RespectsBaseConfig) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  sim::AcceleratorConfig small = sim::AcceleratorConfig::squeezelerator();
  small.array_n = 8;
  small.preload_width = 8;
  small.drain_width = 8;
  const ComparisonResult c = compare_dataflows(m, small);
  EXPECT_EQ(c.hybrid.config.array_n, 8);
  EXPECT_EQ(c.ws_only.config.array_n, 8);
  // Smaller array -> more cycles than the default 32x32.
  const ComparisonResult big = compare_dataflows(m);
  EXPECT_GT(c.hybrid.total_cycles(), big.hybrid.total_cycles());
}

TEST(Compare, MobileNetIsTheExtremeWsCase) {
  // Paper Table 2: MobileNet shows the largest WS speedup by far.
  double mobilenet_speedup = 0.0, max_other = 0.0;
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    const double s = compare_dataflows(m).speedup_vs_ws();
    if (m.name().find("MobileNet") != std::string::npos)
      mobilenet_speedup = s;
    else
      max_other = std::max(max_other, s);
  }
  EXPECT_GT(mobilenet_speedup, max_other);
}

}  // namespace
}  // namespace sqz::core
