#include "core/sweepjournal.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "util/faultinject.h"
#include "util/hash.h"

namespace sqz::core {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& tag) {
  const std::string dir =
      (fs::temp_directory_path() / ("sqz_journal_" + tag)).string();
  fs::remove_all(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(SweepJournal, RoundTripsAppendedRecords) {
  const std::string dir = fresh_dir("roundtrip");
  {
    SweepJournal j(dir);
    EXPECT_TRUE(j.entries().empty());
    j.append("point-a", "{\"cycles\":1}");
    j.append("point-b", "{\"cycles\":2}");
  }
  SweepJournal j(dir);
  EXPECT_FALSE(j.recovery().torn);
  EXPECT_EQ(j.recovery().records, 2u);
  ASSERT_EQ(j.entries().size(), 2u);
  EXPECT_EQ(j.entries().at("point-a"), "{\"cycles\":1}");
  EXPECT_EQ(j.entries().at("point-b"), "{\"cycles\":2}");
}

TEST(SweepJournal, LaterDuplicateKeyWins) {
  const std::string dir = fresh_dir("dup");
  {
    SweepJournal j(dir);
    j.append("point", "old");
    j.append("point", "new");
  }
  SweepJournal j(dir);
  ASSERT_EQ(j.entries().size(), 1u);
  EXPECT_EQ(j.entries().at("point"), "new");
}

TEST(SweepJournal, BinaryKeysAndValuesSurvive) {
  const std::string dir = fresh_dir("binary");
  const std::string key("k\0\n ey", 6);
  const std::string value("v\xff\x00\nalue", 8);
  {
    SweepJournal j(dir);
    j.append(key, value);
  }
  SweepJournal j(dir);
  ASSERT_EQ(j.entries().count(key), 1u);
  EXPECT_EQ(j.entries().at(key), value);
}

TEST(SweepJournal, TornTailIsDroppedAndTruncated) {
  const std::string dir = fresh_dir("torn");
  {
    SweepJournal j(dir);
    j.append("a", "1");
    j.append("b", "2");
  }
  // Crash mid-append: tear the last record's bytes.
  const std::string path = SweepJournal::journal_path(dir);
  const std::string full = read_file(path);
  fs::resize_file(path, full.size() - 3);

  {
    SweepJournal j(dir);
    EXPECT_TRUE(j.recovery().torn);
    EXPECT_EQ(j.recovery().records, 1u);
    EXPECT_GT(j.recovery().dropped_bytes, 0u);
    EXPECT_EQ(j.entries().count("a"), 1u);
    EXPECT_EQ(j.entries().count("b"), 0u);

    // The torn bytes were truncated away, so the next append starts on a
    // clean frame and a third open sees both records.
    j.append("c", "3");
  }
  SweepJournal j2(dir);
  EXPECT_FALSE(j2.recovery().torn);
  EXPECT_EQ(j2.recovery().records, 2u);
  EXPECT_EQ(j2.entries().count("c"), 1u);
}

TEST(SweepJournal, CorruptChecksumEndsTheTrustedPrefix) {
  const std::string dir = fresh_dir("bitrot");
  {
    SweepJournal j(dir);
    j.append("first", "1");
    j.append("second", "2");
    j.append("third", "3");
  }
  const std::string path = SweepJournal::journal_path(dir);
  std::string raw = read_file(path);
  // Flip one payload byte of the middle record.
  const std::size_t at = raw.find("second");
  ASSERT_NE(at, std::string::npos);
  raw[at] ^= 0x01;
  std::ofstream(path, std::ios::binary | std::ios::trunc) << raw;

  // Nothing after a bad frame is believed: only the first record survives.
  SweepJournal j(dir);
  EXPECT_TRUE(j.recovery().torn);
  EXPECT_EQ(j.recovery().records, 1u);
  EXPECT_EQ(j.entries().count("first"), 1u);
  EXPECT_EQ(j.entries().count("third"), 0u);
}

TEST(SweepJournal, GarbageFileRecoversToEmpty) {
  const std::string dir = fresh_dir("garbage");
  fs::create_directories(dir);
  std::ofstream(SweepJournal::journal_path(dir), std::ios::binary)
      << "this is not a journal\nsqzw1 lies 0 0\n";
  {
    SweepJournal j(dir);
    EXPECT_TRUE(j.recovery().torn);
    EXPECT_EQ(j.recovery().records, 0u);
    EXPECT_TRUE(j.entries().empty());
    j.append("fresh", "start");
  }
  SweepJournal j2(dir);
  EXPECT_EQ(j2.recovery().records, 1u);
}

TEST(SweepJournal, HostileLengthHeaderIsRejectedNotOverflowed) {
  const std::string dir = fresh_dir("hostile");
  fs::create_directories(dir);
  // Lengths near SIZE_MAX must not wrap the bounds check into acceptance.
  std::ofstream(SweepJournal::journal_path(dir), std::ios::binary)
      << "sqzw1 18446744073709551615 7 0123456789abcdef\npayload";
  SweepJournal j(dir);
  EXPECT_EQ(j.recovery().records, 0u);
  EXPECT_TRUE(j.entries().empty());
}

TEST(SweepJournal, InjectedShortWritePublishesRecoverableTornRecord) {
  const std::string dir = fresh_dir("shortio");
  {
    SweepJournal j(dir);
    j.append("good", "1");
    util::fault::arm("sweepjournal.append", util::fault::make_short(10), 1);
    j.append("torn", "2");  // only 10 bytes of the record reach the file
    util::fault::reset();
  }
  SweepJournal j(dir);
  EXPECT_TRUE(j.recovery().torn);
  EXPECT_EQ(j.recovery().records, 1u);
  EXPECT_EQ(j.entries().count("good"), 1u);
  EXPECT_EQ(j.entries().count("torn"), 0u);
}

TEST(SweepJournal, InjectedAppendFailureThrowsLoudly) {
  const std::string dir = fresh_dir("enospc");
  SweepJournal j(dir);
  util::fault::arm("sweepjournal.append", util::fault::make_errno(ENOSPC), 1);
  EXPECT_THROW(j.append("k", "v"), SweepJournalError);
  util::fault::reset();
  // The journal object remains usable once the disk "recovers".
  j.append("k", "v");
  EXPECT_EQ(j.entries().count("k"), 1u);
}

TEST(SweepJournal, UnwritableDirectoryThrows) {
  EXPECT_THROW(SweepJournal("/proc/definitely/not/writable"),
               SweepJournalError);
}

TEST(SweepJournal, SecondConcurrentWriterIsRefused) {
  // The single-writer fence: as long as one writer holds the directory, a
  // second open throws SweepJournalLocked — this is what stops a
  // partitioned standby from promoting onto a live primary's journal.
  const std::string dir = fresh_dir("lock");
  {
    SweepJournal first(dir);
    first.append("k", "v");
    EXPECT_THROW({ SweepJournal second(dir); }, SweepJournalLocked);
    // The refused open must not have disturbed the holder.
    first.append("k2", "v2");
  }
  // Destruction releases the lock (as does a SIGKILLed holder process):
  // the next writer opens cleanly and sees everything.
  SweepJournal next(dir);
  EXPECT_EQ(next.recovery().records, 2u);
}

TEST(SweepJournal, LockIsReleasedWhenConstructionFailsAfterAcquiring) {
  // A construction failure *after* the lock is taken (here: the recovery
  // read works but the torn-tail truncate fails on a directory made
  // read-only) must release the lock, or the directory would be stranded
  // until process exit.
  const std::string dir = fresh_dir("lockfail");
  {
    SweepJournal j(dir);
    j.append("a", "1");
  }
  // Tear the tail so the next open needs resize_file, then deny writes on
  // the file so the truncate fails.
  const std::string path = SweepJournal::journal_path(dir);
  std::ofstream(path, std::ios::binary | std::ios::app) << "sqzw1 torn";
  fs::permissions(path, fs::perms::owner_read, fs::perm_options::replace);
  const bool denied = []() {
    // Root ignores permission bits; skip the failure leg if so.
    return ::geteuid() != 0;
  }();
  if (denied) {
    EXPECT_THROW({ SweepJournal failing(dir); }, SweepJournalError);
    fs::permissions(path, fs::perms::owner_all, fs::perm_options::replace);
    // The lock must be free again: a fresh open succeeds.
    SweepJournal j(dir);
    EXPECT_EQ(j.recovery().records, 1u);
  } else {
    fs::permissions(path, fs::perms::owner_all, fs::perm_options::replace);
  }
}

/// A correctly framed record with an arbitrary magic — what a newer (or
/// foreign) build would append. The checksum is genuine, so only the magic
/// distinguishes it from a record this build understands.
std::string framed_record(const char* magic, const std::string& key,
                          const std::string& value) {
  char header[128];
  std::snprintf(header, sizeof(header), "%s %zu %zu %016llx\n", magic,
                key.size(), value.size(),
                static_cast<unsigned long long>(util::fnv1a64(key + value)));
  return header + key + value;
}

TEST(SweepJournal, MembershipEventsRoundTripInAppendOrder) {
  const std::string dir = fresh_dir("membership");
  {
    SweepJournal j(dir);
    j.append_membership("10.0.0.1:7070", "{\"event\":\"register\"}");
    j.append("point-a", "{\"cycles\":1}");
    j.append_membership("10.0.0.2:7070", "{\"event\":\"register\"}");
    j.append_membership("10.0.0.1:7070", "{\"event\":\"expire\"}");
  }
  SweepJournal j(dir);
  EXPECT_FALSE(j.recovery().torn);
  EXPECT_EQ(j.recovery().records, 4u);
  EXPECT_EQ(j.recovery().skipped, 0u);
  // Points and membership land in separate views; membership keeps append
  // order (replay order is the lease table's semantics).
  EXPECT_EQ(j.entries().size(), 1u);
  ASSERT_EQ(j.membership().size(), 3u);
  EXPECT_EQ(j.membership()[0].first, "10.0.0.1:7070");
  EXPECT_EQ(j.membership()[0].second, "{\"event\":\"register\"}");
  EXPECT_EQ(j.membership()[1].first, "10.0.0.2:7070");
  EXPECT_EQ(j.membership()[2].second, "{\"event\":\"expire\"}");
}

TEST(SweepJournal, UnknownRecordTypeIsSkippedNotFatal) {
  const std::string dir = fresh_dir("futuremagic");
  {
    SweepJournal j(dir);
    j.append("before", "1");
  }
  // A future build appends a record type this build has never heard of,
  // then a known record lands after it.
  const std::string path = SweepJournal::journal_path(dir);
  std::ofstream(path, std::ios::binary | std::ios::app)
      << framed_record("sqzx7", "future-key", "{\"novel\":true}")
      << framed_record("sqzw1", "after", "2");

  {
    SweepJournal j(dir);
    EXPECT_FALSE(j.recovery().torn);
    EXPECT_EQ(j.recovery().records, 2u);
    EXPECT_EQ(j.recovery().skipped, 1u);
    EXPECT_EQ(j.entries().count("before"), 1u);
    EXPECT_EQ(j.entries().count("after"), 1u);
    EXPECT_EQ(j.entries().count("future-key"), 0u);

    // Appends continue on a clean frame after the foreign record.
    j.append("resumed", "3");
  }
  SweepJournal j2(dir);
  EXPECT_EQ(j2.recovery().records, 3u);
  EXPECT_EQ(j2.recovery().skipped, 1u);
}

TEST(SweepJournal, UnknownRecordWithBadChecksumStillEndsThePrefix) {
  const std::string dir = fresh_dir("futurerot");
  {
    SweepJournal j(dir);
    j.append("first", "1");
  }
  // Forward compatibility must not become a corruption loophole: an
  // unknown-type record is only skippable behind a *valid* checksum.
  std::string forged = framed_record("sqzx7", "future", "payload");
  forged[forged.size() - 1] ^= 0x01;  // rot inside the payload
  const std::string path = SweepJournal::journal_path(dir);
  std::ofstream(path, std::ios::binary | std::ios::app)
      << forged << framed_record("sqzw1", "after", "2");

  SweepJournal j(dir);
  EXPECT_TRUE(j.recovery().torn);
  EXPECT_EQ(j.recovery().records, 1u);
  EXPECT_EQ(j.recovery().skipped, 0u);
  EXPECT_EQ(j.entries().count("after"), 0u);
}

TEST(SweepJournal, GoldenPreMembershipJournalReplaysUnchanged) {
  // tests/data/pre_membership.sqzj is a journal written before typed
  // records existed (sqzw1 only, checksums baked in). Rolling upgrades
  // depend on this build replaying it byte-for-byte-compatibly.
  const std::string golden =
      std::string(SQZ_TEST_DATA_DIR) + "/pre_membership.sqzj";
  const std::string raw = read_file(golden);
  ASSERT_FALSE(raw.empty()) << "missing golden: tests/data/pre_membership.sqzj";

  const std::string dir = fresh_dir("golden");
  fs::create_directories(dir);
  std::ofstream(SweepJournal::journal_path(dir), std::ios::binary) << raw;

  {
    SweepJournal j(dir);
    EXPECT_FALSE(j.recovery().torn);
    EXPECT_EQ(j.recovery().records, 3u);
    EXPECT_EQ(j.recovery().skipped, 0u);
    EXPECT_TRUE(j.membership().empty());
    ASSERT_EQ(j.entries().size(), 2u);
    // The golden journal re-records rf=16;pe=4; later duplicate wins.
    EXPECT_EQ(j.entries().at("rf=16;pe=4"),
              "{\"cycles\":1020,\"energy_pj\":3.5}");
    EXPECT_EQ(j.entries().at("rf=32;pe=8"),
              "{\"cycles\":512,\"energy_pj\":5.25}");

    // A post-membership build appends sqzm1 records to the same file: the
    // mixed journal replays both views intact.
    j.append_membership("10.0.0.9:7070", "{\"event\":\"register\"}");
  }
  SweepJournal j2(dir);
  EXPECT_EQ(j2.recovery().records, 4u);
  EXPECT_EQ(j2.entries().size(), 2u);
  ASSERT_EQ(j2.membership().size(), 1u);
  EXPECT_EQ(j2.membership()[0].first, "10.0.0.9:7070");
}

}  // namespace
}  // namespace sqz::core
