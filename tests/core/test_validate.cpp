#include "core/validate.h"

#include <gtest/gtest.h>

#include <string>

#include "nn/model.h"
#include "nn/zoo/zoo.h"
#include "sim/config.h"

namespace sqz::core {
namespace {

bool mentions(const ValidationReport& report, const std::string& needle) {
  for (const ValidationIssue& i : report.issues)
    if (i.what.find(needle) != std::string::npos) return true;
  return false;
}

TEST(ValidateConfig, PaperPresetsAreFeasible) {
  EXPECT_TRUE(validate_config(sim::AcceleratorConfig::squeezelerator()).ok());
  EXPECT_TRUE(
      validate_config(sim::AcceleratorConfig::squeezelerator_rf8()).ok());
  EXPECT_TRUE(validate_config(sim::AcceleratorConfig{}).ok());
}

TEST(ValidateConfig, FlagsEachBrokenPrimitive) {
  sim::AcceleratorConfig c;
  c.array_n = 2000;
  EXPECT_TRUE(mentions(validate_config(c), "array_n=2000"));

  c = {};
  c.rf_entries = 0;
  EXPECT_TRUE(mentions(validate_config(c), "rf_entries=0"));

  c = {};
  c.gb_kib = 0;
  EXPECT_TRUE(mentions(validate_config(c), "gb_kib=0"));

  c = {};
  c.drain_width = 0;
  EXPECT_TRUE(mentions(validate_config(c), "bus widths"));

  c = {};
  c.dram_latency_cycles = -1;
  EXPECT_TRUE(mentions(validate_config(c), "dram_latency_cycles"));

  c = {};
  c.dram_bytes_per_cycle = 0.0;
  EXPECT_TRUE(mentions(validate_config(c), "dram_bytes_per_cycle"));

  c = {};
  c.batch = 0;
  EXPECT_TRUE(mentions(validate_config(c), "batch=0"));

  c = {};
  c.data_bytes = 3;
  EXPECT_TRUE(mentions(validate_config(c), "data_bytes=3"));

  c = {};
  c.weight_sparsity = 1.0;
  EXPECT_TRUE(mentions(validate_config(c), "weight_sparsity"));
}

TEST(ValidateConfig, PsumAccumulatorMustHoldOneColumn) {
  sim::AcceleratorConfig c;
  c.array_n = 32;
  c.psum_accum_words = 31;
  const ValidationReport report = validate_config(c);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "psum_accum_words"));
  // The diagnostic says what to change, not just what is wrong.
  EXPECT_TRUE(mentions(report, "raise psum_accum_words or shrink array_n"));
}

TEST(ValidateConfig, WeightReserveMustFitInsideTheGlobalBuffer) {
  sim::AcceleratorConfig c;
  c.gb_kib = 1;  // 512 words at data_bytes=2
  c.weight_reserve_words = 512;
  EXPECT_TRUE(mentions(validate_config(c), "weight_reserve_words"));
}

TEST(ValidateConfig, WsReserveMustDoubleBufferOneWeightBlock) {
  sim::AcceleratorConfig c;
  c.array_n = 32;
  c.weight_reserve_words = 2047;  // 2*32*32 = 2048 needed
  const ValidationReport report = validate_config(c);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "double-buffer"));

  // An OS-only design never streams WS weight blocks, so the same reserve
  // is fine there.
  c.support = sim::DataflowSupport::OsOnly;
  EXPECT_TRUE(validate_config(c).ok());
}

TEST(ValidateConfig, CollectsEveryIssueNotJustTheFirst) {
  sim::AcceleratorConfig c;
  c.array_n = 0;
  c.rf_entries = 0;
  c.batch = 0;
  c.weight_sparsity = -0.5;
  const ValidationReport report = validate_config(c);
  EXPECT_GE(report.issues.size(), 4u);
  for (const ValidationIssue& i : report.issues) EXPECT_EQ(i.where, "config");
}

TEST(ValidateDesign, PaperModelsOnPaperConfigsPass) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  EXPECT_TRUE(
      validate_design(m, sim::AcceleratorConfig::squeezelerator()).ok());
}

TEST(ValidateDesign, ConvTileMustFitTheActivationRegion) {
  nn::Model m("big", nn::TensorShape{64, 64, 64});
  m.add_conv("c1", 64, 3, 1, 1);
  m.finalize();

  sim::AcceleratorConfig c;
  c.gb_kib = 1;  // 512 words
  c.weight_reserve_words = 0;
  c.support = sim::DataflowSupport::OsOnly;  // reserve 0 is legal OS-only
  ASSERT_TRUE(validate_config(c).ok());

  const ValidationReport report = validate_design(m, c);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues[0].where, "layer c1");
  EXPECT_TRUE(mentions(report, "minimal tile"));
  EXPECT_TRUE(mentions(report, "raise gb_kib"));
}

TEST(ValidateDesign, FcTileCountsBothVectors) {
  nn::Model m("fc", nn::TensorShape{4096, 1, 1});
  m.add_fc("classifier", 4096);
  m.finalize();

  sim::AcceleratorConfig c;
  c.gb_kib = 8;  // 4096 words < 4096 + 4096
  c.weight_reserve_words = 0;
  c.support = sim::DataflowSupport::OsOnly;

  const ValidationReport report = validate_design(m, c);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues[0].where, "layer classifier");
  EXPECT_TRUE(mentions(report, "minimal tile"));
}

TEST(ValidateDesign, ConfigAndLayerIssuesAreCollectedTogether) {
  nn::Model m("big", nn::TensorShape{64, 64, 64});
  m.add_conv("c1", 64, 3, 1, 1);
  m.finalize();

  sim::AcceleratorConfig c;
  c.gb_kib = 1;
  c.weight_reserve_words = 0;
  c.support = sim::DataflowSupport::OsOnly;
  c.batch = 0;  // config issue on top of the tile issue

  const ValidationReport report = validate_design(m, c);
  EXPECT_GE(report.issues.size(), 2u);
  EXPECT_EQ(report.issues[0].where, "config");
  EXPECT_EQ(report.issues.back().where, "layer c1");
}

TEST(ValidateDesign, SummaryJoinsIssuesForThePointError) {
  sim::AcceleratorConfig c;
  c.batch = 0;
  c.rf_entries = 0;
  const std::string s = validate_design(
      nn::zoo::squeezenet_v11(), c).summary();
  EXPECT_NE(s.find("config: "), std::string::npos);
  EXPECT_NE(s.find("; "), std::string::npos);
  EXPECT_NE(s.find("batch=0"), std::string::npos);
  EXPECT_NE(s.find("rf_entries=0"), std::string::npos);
}

TEST(ValidateDesign, ValidationErrorIsARuntimeError) {
  // The sweep engine throws this type so classify_point_error can stamp the
  // phase; it must stay catchable as std::runtime_error for generic callers.
  try {
    throw ValidationError("config: batch=0 must be >= 1");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "config: batch=0 must be >= 1");
  }
}

}  // namespace
}  // namespace sqz::core
