#include "core/cli.h"

#include <gtest/gtest.h>

#include "core/report.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "energy/model.h"
#include "nn/serialize.h"
#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "util/json_parse.h"

namespace sqz::core {
namespace {

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun run(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(Cli, HelpPrintsUsage) {
  const CliRun r = run({"--help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage: sqzsim"), std::string::npos);
}

TEST(Cli, DefaultRunReportsTotals) {
  const CliRun r = run({});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("SqueezeNet v1.0"), std::string::npos);
  EXPECT_NE(r.out.find("total:"), std::string::npos);
  EXPECT_NE(r.out.find("utilization"), std::string::npos);
}

TEST(Cli, ZooSelectionAndKnobs) {
  const CliRun r = run({"--model", "sqnxt", "--array", "16", "--rf", "8"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("1.0-SqNxt-23 v5"), std::string::npos);
  EXPECT_NE(r.out.find("16x16"), std::string::npos);
  EXPECT_NE(r.out.find("RF 8"), std::string::npos);
}

TEST(Cli, CompareShowsReferences) {
  const CliRun r = run({"--model", "squeezenet11", "--compare"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("faster than WS-only"), std::string::npos);
}

TEST(Cli, PerLayerTable) {
  const CliRun r = run({"--model", "tinydarknet", "--per-layer"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("Per-layer schedule"), std::string::npos);
  EXPECT_NE(r.out.find("conv1"), std::string::npos);
}

TEST(Cli, CsvOutput) {
  const CliRun r = run({"--model", "squeezenet11", "--csv"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("layer,kind,dataflow"), std::string::npos);
  EXPECT_NE(r.out.find("conv1,conv,"), std::string::npos);
}

TEST(Cli, TimelineMode) {
  const CliRun flat = run({"--model", "squeezenet11"});
  const CliRun timeline = run({"--model", "squeezenet11", "--timeline"});
  EXPECT_EQ(timeline.code, 0);
  EXPECT_NE(flat.out, timeline.out);  // retimed totals differ
}

TEST(Cli, ModelFileLoads) {
  const std::string path = ::testing::TempDir() + "/cli_model.txt";
  {
    std::ofstream f(path);
    f << nn::serialize_model(nn::zoo::squeezenet_v11());
  }
  const CliRun r = run({"--model-file", path});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("SqueezeNet v1.1"), std::string::npos);
}

TEST(Cli, ConfigFileLoads) {
  const std::string path = ::testing::TempDir() + "/cli_accel.ini";
  {
    std::ofstream f(path);
    f << "[accelerator]\nrf_entries = 4\nsupport = os\n";
  }
  const CliRun r = run({"--config", path});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("RF 4"), std::string::npos);
  EXPECT_NE(r.out.find("OS-only"), std::string::npos);
}

TEST(Cli, ErrorsReturnNonZeroWithUsage) {
  for (const auto& args : std::vector<std::vector<std::string>>{
           {"--model", "nonexistent"},
           {"--bogus-flag"},
           {"--support", "both"},
           {"--objective", "speed"},
           {"--model-file", "/nonexistent/path.txt"},
           {"--array"},  // missing value
       }) {
    const CliRun r = run(args);
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("sqzsim:"), std::string::npos);
    EXPECT_NE(r.err.find("usage:"), std::string::npos);
  }
}

TEST(Cli, BatchAndFuseFlags) {
  const CliRun plain = run({"--model", "squeezenet10"});
  const CliRun fused = run({"--model", "squeezenet10", "--fuse"});
  EXPECT_EQ(fused.code, 0);
  EXPECT_NE(plain.out, fused.out);  // pool-drain fusion changes the totals
  const CliRun batched = run({"--model", "alexnet", "--batch", "8"});
  EXPECT_EQ(batched.code, 0);
  EXPECT_NE(batched.out, run({"--model", "alexnet"}).out);
}

TEST(Cli, ProgramListing) {
  const CliRun r = run({"--model", "squeezenet11", "--program"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("program SqueezeNet v1.1"), std::string::npos);
  EXPECT_NE(r.out.find("pe-array"), std::string::npos);
  EXPECT_NE(r.out.find("expected total"), std::string::npos);
}

TEST(Cli, TileSearchMode) {
  const CliRun timeline = run({"--model", "squeezenet11", "--timeline"});
  const CliRun searched = run({"--model", "squeezenet11", "--tile-search"});
  EXPECT_EQ(searched.code, 0);
  EXPECT_NE(searched.out, timeline.out);  // searched tiles change totals
}

TEST(Cli, EnergyObjectiveAccepted) {
  const CliRun r = run({"--model", "squeezenet11", "--objective", "energy"});
  EXPECT_EQ(r.code, 0);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(Cli, JsonReportMatchesSimulation) {
  const std::string path = ::testing::TempDir() + "/cli_report.json";
  const CliRun r = run({"--model", "sqnxt23", "--json", path});
  ASSERT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("total:"), std::string::npos);  // table still prints

  const util::JsonValue report = util::parse_json(slurp(path));
  const sim::NetworkResult expect = sched::simulate_network(
      nn::zoo::squeezenext(), sim::AcceleratorConfig::squeezelerator());
  EXPECT_EQ(report.at("schema_version").as_int(), kReportSchemaVersion);
  EXPECT_EQ(report.at("model").at("name").as_string(), "1.0-SqNxt-23 v5");
  EXPECT_EQ(report.at("totals").at("cycles").as_int(), expect.total_cycles());
  EXPECT_EQ(report.at("totals").at("energy").at("total").as_double(),
            energy::network_energy(expect).total());
  EXPECT_EQ(report.at("layers").items.size(), expect.layers.size());
}

TEST(Cli, JsonReportHonoursKnobs) {
  const std::string path = ::testing::TempDir() + "/cli_report_knobs.json";
  const CliRun r = run({"--model", "squeezenet11", "--array", "16", "--support",
                        "os", "--json", path});
  ASSERT_EQ(r.code, 0);
  const util::JsonValue report = util::parse_json(slurp(path));
  EXPECT_EQ(report.at("config").at("array_n").as_int(), 16);
  EXPECT_EQ(report.at("config").at("support").as_string(), "os");
  for (const util::JsonValue& l : report.at("layers").items)
    if (l.at("engine").as_string() == "pe-array" &&
        l.at("kind").as_string() == "conv")
      EXPECT_EQ(l.at("dataflow").as_string(), "OS");
}

TEST(Cli, TraceFileIsValidAndSpansTheRun) {
  const std::string path = ::testing::TempDir() + "/cli_trace.json";
  const CliRun r = run({"--model", "sqnxt23", "--trace", path});
  ASSERT_EQ(r.code, 0);

  const util::JsonValue trace = util::parse_json(slurp(path));
  const sim::NetworkResult expect = sched::simulate_network(
      nn::zoo::squeezenext(), sim::AcceleratorConfig::squeezelerator());
  EXPECT_EQ(trace.at("otherData").at("total_cycles").as_int(),
            expect.total_cycles());
  std::int64_t max_end = 0;
  for (const util::JsonValue& e : trace.at("traceEvents").items)
    if (e.at("ph").as_string() == "X")
      max_end = std::max(max_end, e.at("ts").as_int() + e.at("dur").as_int());
  EXPECT_EQ(max_end, expect.total_cycles());
}

TEST(Cli, JsonAndTraceWithTimelineMode) {
  const std::string rpath = ::testing::TempDir() + "/cli_tl_report.json";
  const std::string tpath = ::testing::TempDir() + "/cli_tl_trace.json";
  const CliRun r = run({"--model", "squeezenet11", "--timeline", "--json", rpath,
                        "--trace", tpath});
  ASSERT_EQ(r.code, 0);
  const util::JsonValue report = util::parse_json(slurp(rpath));
  const util::JsonValue trace = util::parse_json(slurp(tpath));
  // Report and trace agree with each other on the retimed totals.
  EXPECT_EQ(report.at("totals").at("cycles").as_int(),
            trace.at("otherData").at("total_cycles").as_int());
  bool has_tile_events = false;
  for (const util::JsonValue& e : trace.at("traceEvents").items)
    has_tile_events |=
        e.at("ph").as_string() == "X" && e.at("cat").as_string() == "tile";
  EXPECT_TRUE(has_tile_events);
}

TEST(Cli, JobsFlagDoesNotChangeOutput) {
  const CliRun serial = run({"--model", "squeezenet11", "--per-layer", "--jobs", "1"});
  const CliRun parallel = run({"--model", "squeezenet11", "--per-layer", "--jobs", "8"});
  EXPECT_EQ(serial.code, 0);
  EXPECT_EQ(parallel.code, 0);
  EXPECT_EQ(serial.out, parallel.out);
}

TEST(Cli, JobsFlagRejectsNonPositive) {
  const CliRun r = run({"--jobs", "0"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--jobs"), std::string::npos);
}

TEST(Cli, JobsFlagRejectsGarbageWithClearMessage) {
  const struct {
    const char* value;
    const char* why;
  } cases[] = {
      {"banana", "not a number"},
      {"4x", "not a number"},
      {"-3", "negative"},
      {"0", "zero"},
      {"", "empty"},
      {"+", "no digits"},
      {"99999999999", "out of range"},
  };
  for (const auto& c : cases) {
    const CliRun r = run({"--jobs", c.value});
    EXPECT_EQ(r.code, 1) << c.value;
    EXPECT_NE(r.err.find("--jobs must be a positive integer"),
              std::string::npos)
        << r.err;
    EXPECT_NE(r.err.find(c.why), std::string::npos) << r.err;
  }
}

TEST(Cli, JsonReportRecordsJobsProvenance) {
  const std::string path = ::testing::TempDir() + "/cli_report_jobs.json";
  const CliRun r = run({"--model", "squeezenet11", "--jobs", "3", "--json", path});
  ASSERT_EQ(r.code, 0);
  const util::JsonValue report = util::parse_json(slurp(path));
  EXPECT_EQ(report.at("provenance").at("jobs").as_int(), 3);
  EXPECT_GE(report.at("provenance").at("hardware_concurrency").as_int(), 0);
}

TEST(Cli, DumpRfSweepEmitsSweepJson) {
  const CliRun r = run({"--model", "sqnxt23", "--dump-rf-sweep"});
  ASSERT_EQ(r.code, 0);
  const util::JsonValue doc = util::parse_json(r.out);
  EXPECT_EQ(doc.at("sweep").as_string(), "rf_entries on sqnxt23");
  ASSERT_EQ(doc.at("points").items.size(), 2u);
  EXPECT_EQ(doc.at("points").at(std::size_t{0}).at("config").at("rf_entries").as_int(), 8);
  EXPECT_EQ(doc.at("points").at(std::size_t{1}).at("config").at("rf_entries").as_int(), 16);
}

TEST(Cli, UnwritableJsonPathFails) {
  const CliRun r = run({"--json", "/nonexistent-dir/report.json"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot open --json output"), std::string::npos);
}

}  // namespace
}  // namespace sqz::core
