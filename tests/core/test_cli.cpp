#include "core/cli.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "nn/serialize.h"
#include "nn/zoo/zoo.h"

namespace sqz::core {
namespace {

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun run(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(Cli, HelpPrintsUsage) {
  const CliRun r = run({"--help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage: sqzsim"), std::string::npos);
}

TEST(Cli, DefaultRunReportsTotals) {
  const CliRun r = run({});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("SqueezeNet v1.0"), std::string::npos);
  EXPECT_NE(r.out.find("total:"), std::string::npos);
  EXPECT_NE(r.out.find("utilization"), std::string::npos);
}

TEST(Cli, ZooSelectionAndKnobs) {
  const CliRun r = run({"--model", "sqnxt", "--array", "16", "--rf", "8"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("1.0-SqNxt-23 v5"), std::string::npos);
  EXPECT_NE(r.out.find("16x16"), std::string::npos);
  EXPECT_NE(r.out.find("RF 8"), std::string::npos);
}

TEST(Cli, CompareShowsReferences) {
  const CliRun r = run({"--model", "squeezenet11", "--compare"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("faster than WS-only"), std::string::npos);
}

TEST(Cli, PerLayerTable) {
  const CliRun r = run({"--model", "tinydarknet", "--per-layer"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("Per-layer schedule"), std::string::npos);
  EXPECT_NE(r.out.find("conv1"), std::string::npos);
}

TEST(Cli, CsvOutput) {
  const CliRun r = run({"--model", "squeezenet11", "--csv"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("layer,kind,dataflow"), std::string::npos);
  EXPECT_NE(r.out.find("conv1,conv,"), std::string::npos);
}

TEST(Cli, TimelineMode) {
  const CliRun flat = run({"--model", "squeezenet11"});
  const CliRun timeline = run({"--model", "squeezenet11", "--timeline"});
  EXPECT_EQ(timeline.code, 0);
  EXPECT_NE(flat.out, timeline.out);  // retimed totals differ
}

TEST(Cli, ModelFileLoads) {
  const std::string path = ::testing::TempDir() + "/cli_model.txt";
  {
    std::ofstream f(path);
    f << nn::serialize_model(nn::zoo::squeezenet_v11());
  }
  const CliRun r = run({"--model-file", path});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("SqueezeNet v1.1"), std::string::npos);
}

TEST(Cli, ConfigFileLoads) {
  const std::string path = ::testing::TempDir() + "/cli_accel.ini";
  {
    std::ofstream f(path);
    f << "[accelerator]\nrf_entries = 4\nsupport = os\n";
  }
  const CliRun r = run({"--config", path});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("RF 4"), std::string::npos);
  EXPECT_NE(r.out.find("OS-only"), std::string::npos);
}

TEST(Cli, ErrorsReturnNonZeroWithUsage) {
  for (const auto& args : std::vector<std::vector<std::string>>{
           {"--model", "nonexistent"},
           {"--bogus-flag"},
           {"--support", "both"},
           {"--objective", "speed"},
           {"--model-file", "/nonexistent/path.txt"},
           {"--array"},  // missing value
       }) {
    const CliRun r = run(args);
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("sqzsim:"), std::string::npos);
    EXPECT_NE(r.err.find("usage:"), std::string::npos);
  }
}

TEST(Cli, BatchAndFuseFlags) {
  const CliRun plain = run({"--model", "squeezenet10"});
  const CliRun fused = run({"--model", "squeezenet10", "--fuse"});
  EXPECT_EQ(fused.code, 0);
  EXPECT_NE(plain.out, fused.out);  // pool-drain fusion changes the totals
  const CliRun batched = run({"--model", "alexnet", "--batch", "8"});
  EXPECT_EQ(batched.code, 0);
  EXPECT_NE(batched.out, run({"--model", "alexnet"}).out);
}

TEST(Cli, ProgramListing) {
  const CliRun r = run({"--model", "squeezenet11", "--program"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("program SqueezeNet v1.1"), std::string::npos);
  EXPECT_NE(r.out.find("pe-array"), std::string::npos);
  EXPECT_NE(r.out.find("expected total"), std::string::npos);
}

TEST(Cli, TileSearchMode) {
  const CliRun timeline = run({"--model", "squeezenet11", "--timeline"});
  const CliRun searched = run({"--model", "squeezenet11", "--tile-search"});
  EXPECT_EQ(searched.code, 0);
  EXPECT_NE(searched.out, timeline.out);  // searched tiles change totals
}

TEST(Cli, EnergyObjectiveAccepted) {
  const CliRun r = run({"--model", "squeezenet11", "--objective", "energy"});
  EXPECT_EQ(r.code, 0);
}

}  // namespace
}  // namespace sqz::core
