#include "core/multicore.h"

#include <gtest/gtest.h>

#include "nn/zoo/zoo.h"

namespace sqz::core {
namespace {

sim::AcceleratorConfig cfg_batch(int b) {
  sim::AcceleratorConfig c = sim::AcceleratorConfig::squeezelerator();
  c.batch = b;
  return c;
}

TEST(Multicore, OneCoreMatchesPlainSimulation) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  const auto plain = sched::simulate_network(m, cfg_batch(4));
  const auto mc = simulate_multicore(m, cfg_batch(4), 1);
  EXPECT_EQ(mc.makespan_cycles(), plain.total_cycles());
  EXPECT_EQ(mc.per_core_batch, 4);
}

TEST(Multicore, SplitsBatchAcrossCores) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  const auto mc = simulate_multicore(m, cfg_batch(8), 4);
  EXPECT_EQ(mc.per_core_batch, 2);
  EXPECT_EQ(mc.total_batch, 8);
  // Ragged split rounds up.
  EXPECT_EQ(simulate_multicore(m, cfg_batch(9), 4).per_core_batch, 3);
}

TEST(Multicore, PrivateChannelsScaleNearLinearly) {
  // With a DRAM channel per core, batch-parallel cores are independent:
  // four cores on a batch of 8 deliver ~4x the single-core throughput.
  const nn::Model m = nn::zoo::squeezenext();
  const auto one = simulate_multicore(m, cfg_batch(8), 1, /*shared_dram=*/false);
  const auto four = simulate_multicore(m, cfg_batch(8), 4, /*shared_dram=*/false);
  EXPECT_GT(four.throughput_ips(), 3.0 * one.throughput_ips());
}

TEST(Multicore, SharedDramLimitsScaling) {
  // The SOC case: one 16 GB/s memory controller feeds every core, so the
  // aggregate bandwidth — not the core count — caps throughput.
  for (const nn::Model& m : {nn::zoo::alexnet(), nn::zoo::squeezenext()}) {
    const auto one = simulate_multicore(m, cfg_batch(8), 1, true);
    const auto four = simulate_multicore(m, cfg_batch(8), 4, true);
    const double scaling = four.throughput_ips() / one.throughput_ips();
    EXPECT_LT(scaling, 2.5) << m.name();
    // Splitting the batch can even *lose* throughput: AlexNet's FC weights
    // are re-fetched per core while each core sees a quarter of the
    // bandwidth, undoing the single-core batch amortization.
    EXPECT_GE(scaling, 0.3) << m.name();
  }
}

TEST(Multicore, SharedNeverBeatsPrivateChannels) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  for (int cores : {2, 4}) {
    const auto shared = simulate_multicore(m, cfg_batch(8), cores, true);
    const auto priv = simulate_multicore(m, cfg_batch(8), cores, false);
    EXPECT_GE(priv.throughput_ips(), shared.throughput_ips()) << cores;
  }
}

TEST(Multicore, EnergyGrowsWithWeightRefetch) {
  // Batch-parallel cores each fetch their own weights: total energy for the
  // same batch is higher than single-core.
  const nn::Model m = nn::zoo::squeezenet_v11();
  const auto one = simulate_multicore(m, cfg_batch(8), 1);
  const auto four = simulate_multicore(m, cfg_batch(8), 4);
  EXPECT_GT(four.total_energy().total(), one.total_energy().total());
}

TEST(Multicore, RejectsBadCoreCount) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  EXPECT_THROW(simulate_multicore(m, cfg_batch(1), 0), std::invalid_argument);
}

}  // namespace
}  // namespace sqz::core
