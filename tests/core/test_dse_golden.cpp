// Golden-file regression for the DSE sweep JSON: a committed dump of a
// small RF sweep (tests/data/rf_sweep_golden.json) is structurally diffed
// against a freshly generated one. Any schema drift — renamed keys,
// reordered members, changed number formatting — or any drift in the
// simulated metrics fails loudly with the JSON path that diverged, instead
// of silently changing the dashboard/regression-diff format.
//
// Regenerate after an intentional simulator or schema change:
//   build/tools/sqzsim --model sqnxt23 --dump-rf-sweep \
//       > tests/data/rf_sweep_golden.json
#include "core/dse.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "nn/zoo/zoo.h"
#include "util/json_parse.h"

namespace sqz::core {
namespace {

using util::JsonValue;

std::string type_name(JsonValue::Type t) {
  switch (t) {
    case JsonValue::Type::Null: return "null";
    case JsonValue::Type::Bool: return "bool";
    case JsonValue::Type::Number: return "number";
    case JsonValue::Type::String: return "string";
    case JsonValue::Type::Array: return "array";
    case JsonValue::Type::Object: return "object";
  }
  return "?";
}

// Structural equality with exact number text (raw_number), reporting the
// JSON path of the first divergence.
void expect_same_json(const JsonValue& want, const JsonValue& got,
                      const std::string& path) {
  ASSERT_EQ(type_name(want.type), type_name(got.type)) << "at " << path;
  switch (want.type) {
    case JsonValue::Type::Null:
      break;
    case JsonValue::Type::Bool:
      EXPECT_EQ(want.boolean, got.boolean) << "at " << path;
      break;
    case JsonValue::Type::Number:
      // Token-exact: 1.0 vs 1 or a least-significant-digit drift both fail.
      EXPECT_EQ(want.raw_number, got.raw_number) << "at " << path;
      break;
    case JsonValue::Type::String:
      EXPECT_EQ(want.text, got.text) << "at " << path;
      break;
    case JsonValue::Type::Array: {
      ASSERT_EQ(want.items.size(), got.items.size()) << "at " << path;
      for (std::size_t i = 0; i < want.items.size(); ++i)
        expect_same_json(want.items[i], got.items[i],
                         path + "[" + std::to_string(i) + "]");
      break;
    }
    case JsonValue::Type::Object: {
      ASSERT_EQ(want.members.size(), got.members.size()) << "at " << path;
      for (std::size_t i = 0; i < want.members.size(); ++i) {
        // Key *order* is part of the schema: writers emit deterministically.
        ASSERT_EQ(want.members[i].first, got.members[i].first)
            << "at " << path << " (member " << i << ")";
        expect_same_json(want.members[i].second, got.members[i].second,
                         path + "." + want.members[i].first);
      }
      break;
    }
  }
}

std::string fresh_rf_sweep_dump() {
  const nn::Model m = nn::zoo::squeezenext();
  const auto points = evaluate_designs(
      m, sweep_rf_entries(sim::AcceleratorConfig::squeezelerator(), {8, 16}));
  std::ostringstream os;
  write_design_points_json("rf_entries on sqnxt23", points, os);
  return os.str();
}

TEST(DseGolden, RfSweepDumpMatchesCommittedGolden) {
  const std::string golden_path =
      std::string(SQZ_TEST_DATA_DIR) + "/rf_sweep_golden.json";
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file: " << golden_path;
  std::ostringstream text;
  text << in.rdbuf();

  const JsonValue want = util::parse_json(text.str());
  const JsonValue got = util::parse_json(fresh_rf_sweep_dump());
  expect_same_json(want, got, "$");
}

TEST(DseGolden, GoldenFileItselfIsWellFormed) {
  const std::string golden_path =
      std::string(SQZ_TEST_DATA_DIR) + "/rf_sweep_golden.json";
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file: " << golden_path;
  std::ostringstream text;
  text << in.rdbuf();
  const JsonValue doc = util::parse_json(text.str());
  EXPECT_EQ(doc.at("sweep").as_string(), "rf_entries on sqnxt23");
  ASSERT_EQ(doc.at("points").items.size(), 2u);
  EXPECT_EQ(doc.at("points").at(std::size_t{0}).at("label").as_string(), "RF=8");
  EXPECT_EQ(doc.at("points").at(std::size_t{1}).at("label").as_string(), "RF=16");
}

}  // namespace
}  // namespace sqz::core
