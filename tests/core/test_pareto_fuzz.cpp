// Property test for core::pareto_front on random point clouds, driven by
// util/rng so every failure is reproducible from the printed seed. These
// invariants are what the parallel sweep writer relies on: membership is a
// pure function of the point multiset (ties all kept, order preserved), so
// evaluation order can never change the front.
#include "core/dse.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.h"

namespace sqz::core {
namespace {

bool dominates(const DesignPoint& q, const DesignPoint& p) {
  const bool no_worse = q.cycles <= p.cycles && q.energy <= p.energy;
  const bool better = q.cycles < p.cycles || q.energy < p.energy;
  return no_worse && better;
}

bool dominated_by_any_of(const DesignPoint& p,
                         const std::vector<DesignPoint>& points) {
  for (const DesignPoint& q : points)
    if (dominates(q, p)) return true;
  return false;
}

// Random cloud with a small value range so duplicate (cycles, energy) pairs
// and single-axis ties occur constantly.
std::vector<DesignPoint> random_cloud(util::Rng& rng, std::size_t n) {
  std::vector<DesignPoint> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i].label = std::to_string(i);  // label == input index
    pts[i].cycles = rng.next_in(0, 15);
    pts[i].energy = static_cast<double>(rng.next_in(0, 15));
  }
  return pts;
}

TEST(ParetoFuzz, FrontInvariantsHoldOnRandomClouds) {
  util::Rng rng(0xC0DE5EEDULL);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n = static_cast<std::size_t>(rng.next_in(0, 80));
    const std::vector<DesignPoint> pts = random_cloud(rng, n);
    const std::vector<DesignPoint> front = pareto_front(pts);
    SCOPED_TRACE("iter " + std::to_string(iter) + " n=" + std::to_string(n));

    // Membership by input index (labels are unique indices).
    std::vector<bool> in_front(n, false);
    long long prev = -1;
    for (const DesignPoint& f : front) {
      const long long idx = std::stoll(f.label);
      ASSERT_GE(idx, 0);
      ASSERT_LT(idx, static_cast<long long>(n));
      // Input order preserved: front labels strictly increase.
      EXPECT_GT(idx, prev);
      prev = idx;
      in_front[static_cast<std::size_t>(idx)] = true;
      // A front member carries its point unchanged.
      EXPECT_EQ(f.cycles, pts[static_cast<std::size_t>(idx)].cycles);
      EXPECT_EQ(f.energy, pts[static_cast<std::size_t>(idx)].energy);
    }

    for (std::size_t i = 0; i < n; ++i) {
      if (in_front[i]) {
        // No front member is dominated by any point in the cloud.
        EXPECT_FALSE(dominated_by_any_of(pts[i], pts)) << "front member " << i;
      } else {
        // Every excluded point is dominated by some front member.
        EXPECT_TRUE(dominated_by_any_of(pts[i], front)) << "non-member " << i;
      }
    }
  }
}

TEST(ParetoFuzz, DuplicatesShareTheirFate) {
  // All copies of the same (cycles, energy) pair are either all on the
  // front or all off it — the invariant that makes front membership
  // independent of evaluation order.
  util::Rng rng(0xD0B1E5ULL);
  for (int iter = 0; iter < 100; ++iter) {
    const std::vector<DesignPoint> pts =
        random_cloud(rng, static_cast<std::size_t>(rng.next_in(2, 40)));
    const std::vector<DesignPoint> front = pareto_front(pts);
    std::vector<bool> in_front(pts.size(), false);
    for (const DesignPoint& f : front)
      in_front[static_cast<std::size_t>(std::stoll(f.label))] = true;
    for (std::size_t i = 0; i < pts.size(); ++i)
      for (std::size_t j = i + 1; j < pts.size(); ++j)
        if (pts[i].cycles == pts[j].cycles && pts[i].energy == pts[j].energy)
          EXPECT_EQ(in_front[i], in_front[j])
              << "duplicates " << i << "/" << j << " split at iter " << iter;
  }
}

}  // namespace
}  // namespace sqz::core
