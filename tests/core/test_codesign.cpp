#include "core/codesign.h"

#include <gtest/gtest.h>

#include "nn/zoo/zoo.h"

namespace sqz::core {
namespace {

TEST(Tuning, EvaluatesWholeSpace) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  TuningSpace space;
  space.rf_entries = {8, 16};
  space.array_n = {16, 32};
  const TuningResult r = tune_accelerator(m, space);
  EXPECT_EQ(r.candidates.size(), 4u);
  for (const TuningCandidate& c : r.candidates) {
    EXPECT_GT(c.cycles, 0);
    EXPECT_GT(c.energy, 0.0);
  }
}

TEST(Tuning, BestIsMinimal) {
  const nn::Model m = nn::zoo::squeezenext();
  const TuningResult r = tune_accelerator(m, TuningSpace::rf_only());
  std::int64_t best_cycles = std::numeric_limits<std::int64_t>::max();
  for (const TuningCandidate& c : r.candidates)
    best_cycles = std::min(best_cycles, c.cycles);
  for (const TuningCandidate& c : r.candidates)
    if (c.config.rf_entries == r.best.rf_entries &&
        c.config.array_n == r.best.array_n)
      EXPECT_EQ(c.cycles, best_cycles);
}

TEST(Tuning, PaperRfTuneUp) {
  // Paper §4.2: doubling the register file from 8 to 16 improved local data
  // reuse for SqueezeNext. RF 16 must not be worse than RF 8.
  const nn::Model m = nn::zoo::squeezenext();
  TuningSpace space;
  space.rf_entries = {8, 16};
  const TuningResult r = tune_accelerator(m, space);
  ASSERT_EQ(r.candidates.size(), 2u);
  const TuningCandidate& rf8 = r.candidates[0];
  const TuningCandidate& rf16 = r.candidates[1];
  EXPECT_LE(rf16.cycles, rf8.cycles);
  EXPECT_LE(rf16.energy, rf8.energy);
  EXPECT_EQ(r.best.rf_entries, 16);
}

TEST(Tuning, EnergyObjectiveSelectable) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  TuningSpace space;
  space.rf_entries = {4, 8, 16, 32};
  const TuningResult by_energy =
      tune_accelerator(m, space, sim::AcceleratorConfig::squeezelerator(),
                       sched::Objective::Energy);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& c : by_energy.candidates) best = std::min(best, c.energy);
  for (const auto& c : by_energy.candidates)
    if (c.config.rf_entries == by_energy.best.rf_entries)
      EXPECT_EQ(c.energy, best);
}

TEST(Advice, FlagsLowUtilizationEarlyLayers) {
  // Paper Figure 3: "the initial layers have very low utilization which
  // adversely affects inference time and energy" — the flagged layers must
  // concentrate in the early stages.
  const nn::Model m = nn::zoo::squeezenext(nn::zoo::SqNxtVariant::V1);
  const ModelAdvice advice = analyze_model(m);
  ASSERT_FALSE(advice.layers.empty());
  const auto low = advice.low_utilization(0.25);
  ASSERT_FALSE(low.empty());
  int early = 0, late = 0;
  for (const auto& d : low) {
    if (d.layer_name.find("stage1/") == 0) ++early;
    if (d.layer_name.find("stage3/") == 0 || d.layer_name.find("stage4/") == 0)
      ++late;
  }
  EXPECT_GT(early, 0);
  EXPECT_GT(early, late);
  // Every stage-1 bottleneck conv runs well below half utilization.
  for (const auto& d : advice.layers)
    if (d.layer_name.find("stage1/") == 0) EXPECT_LT(d.utilization, 0.5);
}

TEST(Advice, DiagnosesAlexNetFcAsDramBound) {
  const nn::Model m = nn::zoo::alexnet();
  const ModelAdvice advice = analyze_model(m);
  int dram_bound_fc = 0;
  for (const auto& d : advice.layers)
    if (m.layer(d.layer_idx).is_fc() && d.bottleneck == Bottleneck::DramBound)
      ++dram_bound_fc;
  EXPECT_EQ(dram_bound_fc, 3);  // fc6, fc7, fc8
}

TEST(Advice, UtilizationConsistent) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  const ModelAdvice advice = analyze_model(m);
  EXPECT_GT(advice.network_utilization, 0.0);
  for (const auto& d : advice.layers) {
    EXPECT_GE(d.utilization, 0.0);
    EXPECT_LE(d.utilization, 1.0);
  }
}

TEST(Advice, BottleneckNames) {
  EXPECT_STREQ(bottleneck_name(Bottleneck::None), "healthy");
  EXPECT_STREQ(bottleneck_name(Bottleneck::FewChannels), "few-channels");
  EXPECT_STREQ(bottleneck_name(Bottleneck::DramBound), "dram-bound");
}

TEST(Advice, CoversOnlyMacLayers) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  const ModelAdvice advice = analyze_model(m);
  int mac_layers = 0;
  for (int i = 0; i < m.layer_count(); ++i)
    if (m.layer(i).is_macs_layer()) ++mac_layers;
  EXPECT_EQ(static_cast<int>(advice.layers.size()), mac_layers);
}

}  // namespace
}  // namespace sqz::core
