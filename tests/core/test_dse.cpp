#include "core/dse.h"

#include <gtest/gtest.h>

#include <sstream>

#include "nn/zoo/zoo.h"
#include "util/json_parse.h"

namespace sqz::core {
namespace {

TEST(Dse, EvaluateProducesOnePointPerConfig) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  const auto configs =
      sweep_rf_entries(sim::AcceleratorConfig::squeezelerator(), {4, 8, 16});
  const auto points = evaluate_designs(m, configs);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].label, "RF=4");
  EXPECT_EQ(points[2].config.rf_entries, 16);
  for (const DesignPoint& p : points) {
    EXPECT_GT(p.cycles, 0);
    EXPECT_GT(p.energy, 0.0);
    EXPECT_GT(p.utilization, 0.0);
  }
}

TEST(Dse, ParetoFilterCorrect) {
  std::vector<DesignPoint> pts(4);
  pts[0].label = "a"; pts[0].cycles = 100; pts[0].energy = 100;
  pts[1].label = "b"; pts[1].cycles = 50;  pts[1].energy = 200;
  pts[2].label = "c"; pts[2].cycles = 200; pts[2].energy = 50;
  pts[3].label = "d"; pts[3].cycles = 150; pts[3].energy = 150;  // dominated by a
  const auto front = pareto_front(pts);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0].label, "a");
  EXPECT_EQ(front[1].label, "b");
  EXPECT_EQ(front[2].label, "c");
}

TEST(Dse, JsonDumpCarriesEveryPointWithParetoMembership) {
  std::vector<DesignPoint> pts(4);
  pts[0].label = "a"; pts[0].cycles = 100; pts[0].energy = 100;
  pts[1].label = "b"; pts[1].cycles = 50;  pts[1].energy = 200;
  pts[2].label = "c"; pts[2].cycles = 200; pts[2].energy = 50;
  pts[3].label = "d"; pts[3].cycles = 150; pts[3].energy = 150;  // dominated
  for (DesignPoint& p : pts) p.config = sim::AcceleratorConfig::squeezelerator();

  std::ostringstream os;
  write_design_points_json("test sweep", pts, os);
  const util::JsonValue doc = util::parse_json(os.str());

  EXPECT_EQ(doc.at("sweep").as_string(), "test sweep");
  const util::JsonValue& out = doc.at("points");
  ASSERT_EQ(out.items.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(out.at(i).at("label").as_string(), pts[i].label);
    EXPECT_EQ(out.at(i).at("cycles").as_int(), pts[i].cycles);
    EXPECT_EQ(out.at(i).at("config").at("array_n").as_int(), 32);
  }
  EXPECT_TRUE(out.at(std::size_t{0}).at("pareto").as_bool());
  EXPECT_TRUE(out.at(std::size_t{1}).at("pareto").as_bool());
  EXPECT_TRUE(out.at(std::size_t{2}).at("pareto").as_bool());
  EXPECT_FALSE(out.at(std::size_t{3}).at("pareto").as_bool());
}

TEST(Dse, JsonDumpOfARealSweepParses) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  const auto points = evaluate_designs(
      m, sweep_rf_entries(sim::AcceleratorConfig::squeezelerator(), {8, 16}));
  std::ostringstream os;
  write_design_points_json("rf_entries on squeezenet11", points, os);
  const util::JsonValue doc = util::parse_json(os.str());
  ASSERT_EQ(doc.at("points").items.size(), 2u);
  // At least one point of any non-empty sweep is on the front.
  bool any_pareto = false;
  for (const util::JsonValue& p : doc.at("points").items)
    any_pareto |= p.at("pareto").as_bool();
  EXPECT_TRUE(any_pareto);
  EXPECT_EQ(doc.at("points").at(std::size_t{0}).at("config").at("rf_entries").as_int(), 8);
}

TEST(Dse, ParetoHandlesDuplicates) {
  std::vector<DesignPoint> pts(2);
  pts[0].cycles = 100; pts[0].energy = 100;
  pts[1].cycles = 100; pts[1].energy = 100;
  EXPECT_EQ(pareto_front(pts).size(), 2u);  // equal points don't dominate
}

TEST(Dse, ParetoKeepsEveryDuplicateOfAFrontPoint) {
  // Pin the tie rule the parallel writer relies on: duplicate
  // (cycles, energy) points are all kept (domination requires strict
  // improvement on one axis), so front membership is a function of the
  // point multiset alone and can never depend on evaluation order.
  std::vector<DesignPoint> pts(5);
  pts[0].label = "dup0"; pts[0].cycles = 50;  pts[0].energy = 50;
  pts[1].label = "loser"; pts[1].cycles = 90; pts[1].energy = 90;  // dominated
  pts[2].label = "dup1"; pts[2].cycles = 50;  pts[2].energy = 50;
  pts[3].label = "dup2"; pts[3].cycles = 50;  pts[3].energy = 50;
  pts[4].label = "other"; pts[4].cycles = 40;  pts[4].energy = 60;  // on front
  const auto front = pareto_front(pts);
  ASSERT_EQ(front.size(), 4u);
  // All three duplicates survive, in input order, alongside the other member.
  EXPECT_EQ(front[0].label, "dup0");
  EXPECT_EQ(front[1].label, "dup1");
  EXPECT_EQ(front[2].label, "dup2");
  EXPECT_EQ(front[3].label, "other");
}

TEST(Dse, ParetoExcludesEveryDuplicateOfADominatedPoint) {
  std::vector<DesignPoint> pts(3);
  pts[0].label = "bad0"; pts[0].cycles = 100; pts[0].energy = 100;
  pts[1].label = "best"; pts[1].cycles = 10;  pts[1].energy = 10;
  pts[2].label = "bad1"; pts[2].cycles = 100; pts[2].energy = 100;
  const auto front = pareto_front(pts);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].label, "best");
}

TEST(Dse, ParetoOfRealSweepNonEmpty) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  const auto points = evaluate_designs(
      m, sweep_array_n(sim::AcceleratorConfig::squeezelerator(), {8, 16, 32}));
  const auto front = pareto_front(points);
  EXPECT_GE(front.size(), 1u);
  EXPECT_LE(front.size(), points.size());
}

TEST(Dse, SweepBuildersSetKnobs) {
  const auto base = sim::AcceleratorConfig::squeezelerator();
  EXPECT_EQ(sweep_array_n(base, {8})[0].second.array_n, 8);
  EXPECT_EQ(sweep_array_n(base, {8})[0].first, "8x8");
  EXPECT_DOUBLE_EQ(sweep_sparsity(base, {0.2})[0].second.weight_sparsity, 0.2);
  EXPECT_EQ(sweep_sparsity(base, {0.2})[0].first, "sparsity=20%");
  EXPECT_DOUBLE_EQ(sweep_dram_bandwidth(base, {8.0})[0].second.dram_bytes_per_cycle,
                   8.0);
}

TEST(Dse, BiggerArrayFasterOnBigNetwork) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  const auto points = evaluate_designs(
      m, sweep_array_n(sim::AcceleratorConfig::squeezelerator(), {8, 32}));
  EXPECT_GT(points[0].cycles, points[1].cycles);
}

}  // namespace
}  // namespace sqz::core
