#include "core/advisor.h"

#include <gtest/gtest.h>

#include "nn/zoo/zoo.h"

namespace sqz::core {
namespace {

TEST(Advisor, UnconstrainedPicksMostAccurate) {
  const AdvisorResult r =
      select_network(nn::zoo::figure4_models(), ApplicationConstraints{});
  ASSERT_TRUE(r.best.has_value());
  // 1.0 MobileNet-224 (70.6%) is the accuracy champion of the spectrum.
  EXPECT_EQ(r.candidates[*r.best].name, "1.0 MobileNet-224");
}

TEST(Advisor, TightLatencyBudgetWithinSqueezeNextFamily) {
  // The paper's sentence is about selecting "from this family": under a
  // 1 ms real-time budget the deeper/wider SqueezeNext members drop out and
  // v5 of depth 23 (0.93 ms, 59.2%) is the most accurate survivor.
  using nn::zoo::SqNxtVariant;
  std::vector<nn::Model> family;
  family.push_back(nn::zoo::squeezenext(SqNxtVariant::V1));
  family.push_back(nn::zoo::squeezenext(SqNxtVariant::V5));
  family.push_back(nn::zoo::squeezenext(SqNxtVariant::V5, 1.0, 34));
  family.push_back(nn::zoo::squeezenext(SqNxtVariant::V5, 1.0, 44));
  family.push_back(nn::zoo::squeezenext(SqNxtVariant::V5, 2.0, 23));
  ApplicationConstraints c;
  c.max_latency_ms = 1.0;
  const AdvisorResult r = select_network(family, c);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_EQ(r.candidates[*r.best].name, "1.0-SqNxt-23 v5");
  EXPECT_LE(r.candidates[*r.best].latency_ms, 1.0);
}

TEST(Advisor, AccuracyFloorFiltersWeakModels) {
  ApplicationConstraints c;
  c.min_top1 = 60.0;
  const AdvisorResult r = select_network(nn::zoo::figure4_models(), c);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_GE(r.candidates[*r.best].top1, 60.0);
  for (const CandidateEvaluation& e : r.candidates)
    if (e.feasible) EXPECT_GE(e.top1, 60.0) << e.name;
}

TEST(Advisor, InfeasibleBudgetYieldsNoPick) {
  ApplicationConstraints c;
  c.max_latency_ms = 1e-6;
  const AdvisorResult r = select_network(nn::zoo::figure4_models(), c);
  EXPECT_FALSE(r.best.has_value());
  for (const CandidateEvaluation& e : r.candidates) EXPECT_FALSE(e.feasible);
}

TEST(Advisor, EnergyBudgetRespected) {
  ApplicationConstraints c;
  c.max_energy = 2.5e9;
  const AdvisorResult r = select_network(nn::zoo::figure4_models(), c);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_LE(r.candidates[*r.best].energy, 2.5e9);
}

TEST(Advisor, UnknownAccuracyFailsAccuracyConstraint) {
  nn::Model custom("NotInAccuracyTable", nn::TensorShape{3, 32, 32});
  custom.add_conv("c", 8, 3, 1, 1);
  custom.add_global_avgpool("g");
  custom.add_fc("f", 10);
  custom.finalize();
  ApplicationConstraints with_floor;
  with_floor.min_top1 = 50.0;
  const AdvisorResult r = select_network({custom}, with_floor);
  EXPECT_FALSE(r.best.has_value());
  // Without an accuracy floor, the unknown-accuracy model is usable.
  const AdvisorResult r2 = select_network({custom}, ApplicationConstraints{});
  EXPECT_TRUE(r2.best.has_value());
  EXPECT_FALSE(r2.candidates[0].accuracy_known);
}

TEST(Advisor, EvaluatesEveryCandidateInOrder) {
  const auto models = nn::zoo::figure4_models();
  const AdvisorResult r = select_network(models, ApplicationConstraints{});
  ASSERT_EQ(r.candidates.size(), models.size());
  for (std::size_t i = 0; i < models.size(); ++i)
    EXPECT_EQ(r.candidates[i].name, models[i].name());
}

TEST(Advisor, ConstraintsComposewithConfig) {
  // On a smaller 16x16 accelerator everything is slower; the 1 ms budget
  // then admits fewer (or different) networks than on the 32x32 default.
  sim::AcceleratorConfig small = sim::AcceleratorConfig::squeezelerator();
  small.array_n = 16;
  small.preload_width = 16;
  small.drain_width = 16;
  ApplicationConstraints c;
  c.max_latency_ms = 1.0;
  const auto big = select_network(nn::zoo::figure4_models(), c);
  const auto tiny = select_network(nn::zoo::figure4_models(), c, small);
  int feasible_big = 0, feasible_tiny = 0;
  for (const auto& e : big.candidates) feasible_big += e.feasible;
  for (const auto& e : tiny.candidates) feasible_tiny += e.feasible;
  EXPECT_LE(feasible_tiny, feasible_big);
}

}  // namespace
}  // namespace sqz::core
