#include "core/roofline.h"

#include <gtest/gtest.h>

#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"

namespace sqz::core {
namespace {

RooflineReport report_for(const nn::Model& m) {
  const auto cfg = sim::AcceleratorConfig::squeezelerator();
  return roofline(m, sched::simulate_network(m, cfg));
}

TEST(Roofline, MachineBalancePoint) {
  const RooflineReport r = report_for(nn::zoo::squeezenet_v11());
  EXPECT_DOUBLE_EQ(r.peak_macs_per_cycle, 1024.0);
  EXPECT_DOUBLE_EQ(r.dram_bytes_per_cycle, 16.0);
  EXPECT_DOUBLE_EQ(r.balance_point, 64.0);  // MACs per DRAM byte
}

TEST(Roofline, AttainedNeverExceedsRoof) {
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    const RooflineReport r = report_for(m);
    for (const RooflinePoint& p : r.layers) {
      EXPECT_LE(p.attained_macs_per_cycle, p.roof_macs_per_cycle * 1.0001)
          << m.name() << " " << p.layer_name;
      EXPECT_LE(p.roof_fraction(), 1.0001);
    }
  }
}

TEST(Roofline, FcLayersAreMemoryBound) {
  // Batch-1 FC: one MAC per weight byte moved — far below AI* = 64.
  const nn::Model m = nn::zoo::alexnet();
  const RooflineReport r = report_for(m);
  for (const RooflinePoint& p : r.layers) {
    if (m.layer(p.layer_idx).is_fc()) {
      EXPECT_TRUE(p.memory_bound) << p.layer_name;
      EXPECT_LT(p.arithmetic_intensity, 1.0) << p.layer_name;
    }
  }
}

TEST(Roofline, DepthwiseBelowPointwiseIntensity) {
  // The paper's SqueezeNext argument: depthwise convolutions have poor
  // arithmetic intensity relative to the pointwise layers around them.
  const nn::Model m = nn::zoo::mobilenet();
  const RooflineReport r = report_for(m);
  double dw_sum = 0, pw_sum = 0;
  int dw_n = 0, pw_n = 0;
  for (const RooflinePoint& p : r.layers) {
    const nn::Layer& l = m.layer(p.layer_idx);
    if (l.is_depthwise()) {
      dw_sum += p.arithmetic_intensity;
      ++dw_n;
    } else if (l.is_pointwise()) {
      pw_sum += p.arithmetic_intensity;
      ++pw_n;
    }
  }
  ASSERT_GT(dw_n, 0);
  ASSERT_GT(pw_n, 0);
  EXPECT_LT(dw_sum / dw_n, pw_sum / pw_n);
}

TEST(Roofline, CoversEveryMacLayer) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  const RooflineReport r = report_for(m);
  int mac_layers = 0;
  for (int i = 0; i < m.layer_count(); ++i)
    if (m.layer(i).is_macs_layer()) ++mac_layers;
  EXPECT_EQ(static_cast<int>(r.layers.size()), mac_layers);
}

TEST(Roofline, MoreBandwidthUnbindsLayers) {
  // MobileNet is wholly memory-bound at the paper's 16 B/cycle (balance 64);
  // at 1 KiB/cycle (balance 1) its pointwise layers move compute-side.
  const nn::Model m = nn::zoo::mobilenet();
  sim::AcceleratorConfig fat = sim::AcceleratorConfig::squeezelerator();
  fat.dram_bytes_per_cycle = 1024.0;
  const auto narrow = report_for(m);
  const auto wide = roofline(m, sched::simulate_network(m, fat));
  EXPECT_LT(wide.memory_bound_count(), narrow.memory_bound_count());
}

}  // namespace
}  // namespace sqz::core
