#include "core/config_io.h"

#include <gtest/gtest.h>

namespace sqz::core {
namespace {

TEST(ConfigIo, RoundTrip) {
  sim::AcceleratorConfig c = sim::AcceleratorConfig::squeezelerator();
  c.array_n = 24;
  c.rf_entries = 8;
  c.weight_sparsity = 0.25;
  c.support = sim::DataflowSupport::OsOnly;
  c.ws_psums_in_gb = true;
  c.preload_width = 24;
  c.drain_width = 24;
  const sim::AcceleratorConfig back =
      config_from_ini(util::IniFile::parse(config_to_ini(c)));
  EXPECT_EQ(back.array_n, 24);
  EXPECT_EQ(back.rf_entries, 8);
  EXPECT_DOUBLE_EQ(back.weight_sparsity, 0.25);
  EXPECT_EQ(back.support, sim::DataflowSupport::OsOnly);
  EXPECT_TRUE(back.ws_psums_in_gb);
}

TEST(ConfigIo, PartialOverridesKeepBase) {
  const auto ini = util::IniFile::parse("[accelerator]\nrf_entries = 4\n");
  const sim::AcceleratorConfig c = config_from_ini(ini);
  EXPECT_EQ(c.rf_entries, 4);
  EXPECT_EQ(c.array_n, 32);   // untouched default
  EXPECT_EQ(c.gb_kib, 128);
}

TEST(ConfigIo, TopLevelKeysAccepted) {
  const auto ini = util::IniFile::parse("array_n = 16\npreload_width = 16\n");
  EXPECT_EQ(config_from_ini(ini).array_n, 16);
}

TEST(ConfigIo, SupportParsing) {
  EXPECT_EQ(config_from_ini(util::IniFile::parse("support = ws\n")).support,
            sim::DataflowSupport::WsOnly);
  EXPECT_EQ(config_from_ini(util::IniFile::parse("support = os\n")).support,
            sim::DataflowSupport::OsOnly);
  EXPECT_EQ(config_from_ini(util::IniFile::parse("support = hybrid\n")).support,
            sim::DataflowSupport::Hybrid);
  EXPECT_THROW(config_from_ini(util::IniFile::parse("support = both\n")),
               std::invalid_argument);
}

TEST(ConfigIo, ValidatesResult) {
  EXPECT_THROW(config_from_ini(util::IniFile::parse("array_n = 0\n")),
               std::invalid_argument);
  EXPECT_THROW(config_from_ini(util::IniFile::parse("weight_sparsity = 1.5\n")),
               std::invalid_argument);
}

}  // namespace
}  // namespace sqz::core
