#include "core/config_io.h"

#include <gtest/gtest.h>

namespace sqz::core {
namespace {

TEST(ConfigIo, RoundTrip) {
  sim::AcceleratorConfig c = sim::AcceleratorConfig::squeezelerator();
  c.array_n = 24;
  c.rf_entries = 8;
  c.weight_sparsity = 0.25;
  c.support = sim::DataflowSupport::OsOnly;
  c.ws_psums_in_gb = true;
  c.preload_width = 24;
  c.drain_width = 24;
  const sim::AcceleratorConfig back =
      config_from_ini(util::IniFile::parse(config_to_ini(c)));
  EXPECT_EQ(back.array_n, 24);
  EXPECT_EQ(back.rf_entries, 8);
  EXPECT_DOUBLE_EQ(back.weight_sparsity, 0.25);
  EXPECT_EQ(back.support, sim::DataflowSupport::OsOnly);
  EXPECT_TRUE(back.ws_psums_in_gb);
}

// Field-level round-trip over the full parameter set: the serving cache key
// canonicalizes configs through config_to_ini (serve/api.h), so any field
// that config_to_ini drops or config_from_ini misreads would silently merge
// distinct design points into one cache entry.
TEST(ConfigIo, RoundTripPreservesEveryField) {
  sim::AcceleratorConfig c = sim::AcceleratorConfig::squeezelerator();
  c.array_n = 16;
  c.rf_entries = 8;
  c.gb_kib = 256;
  c.preload_width = 16;
  c.drain_width = 8;
  c.weight_reserve_words = 4096;
  c.psum_accum_words = 8192;
  c.simd_lanes = 8;
  c.dram_latency_cycles = 120;
  c.dram_bytes_per_cycle = 8.5;
  c.batch = 4;
  c.data_bytes = 1;
  c.weight_sparsity = 0.125;
  c.os_zero_skip = false;
  c.ws_psums_in_gb = true;
  c.support = sim::DataflowSupport::WsOnly;
  c.validate();

  const sim::AcceleratorConfig back =
      config_from_ini(util::IniFile::parse(config_to_ini(c)));
  EXPECT_EQ(back.array_n, c.array_n);
  EXPECT_EQ(back.rf_entries, c.rf_entries);
  EXPECT_EQ(back.gb_kib, c.gb_kib);
  EXPECT_EQ(back.preload_width, c.preload_width);
  EXPECT_EQ(back.drain_width, c.drain_width);
  EXPECT_EQ(back.weight_reserve_words, c.weight_reserve_words);
  EXPECT_EQ(back.psum_accum_words, c.psum_accum_words);
  EXPECT_EQ(back.simd_lanes, c.simd_lanes);
  EXPECT_EQ(back.dram_latency_cycles, c.dram_latency_cycles);
  EXPECT_DOUBLE_EQ(back.dram_bytes_per_cycle, c.dram_bytes_per_cycle);
  EXPECT_EQ(back.batch, c.batch);
  EXPECT_EQ(back.data_bytes, c.data_bytes);
  EXPECT_DOUBLE_EQ(back.weight_sparsity, c.weight_sparsity);
  EXPECT_EQ(back.os_zero_skip, c.os_zero_skip);
  EXPECT_EQ(back.ws_psums_in_gb, c.ws_psums_in_gb);
  EXPECT_EQ(back.support, c.support);
}

TEST(ConfigIo, EveryPresetRoundTripsToItsOwnIni) {
  const sim::AcceleratorConfig presets[] = {
      sim::AcceleratorConfig::squeezelerator(),
      sim::AcceleratorConfig::squeezelerator_rf8(),
      sim::AcceleratorConfig::reference_ws(),
      sim::AcceleratorConfig::reference_os(),
  };
  for (const sim::AcceleratorConfig& c : presets) {
    const std::string ini = config_to_ini(c);
    const sim::AcceleratorConfig back =
        config_from_ini(util::IniFile::parse(ini));
    // Textual fixed point: re-rendering the parsed config reproduces the
    // INI exactly, which is what makes it usable as a canonical form.
    EXPECT_EQ(config_to_ini(back), ini);
  }
}

TEST(ConfigIo, RejectsUnknownKeys) {
  EXPECT_THROW(config_from_ini(util::IniFile::parse("warp_factor = 9\n")),
               std::invalid_argument);
  EXPECT_THROW(config_from_ini(util::IniFile::parse(
                   "[accelerator]\narray_n = 16\nwarp_factor = 9\n")),
               std::invalid_argument);
}

TEST(ConfigIo, BatchRoundTrips) {
  const auto ini = util::IniFile::parse("[accelerator]\nbatch = 8\n");
  const sim::AcceleratorConfig c = config_from_ini(ini);
  EXPECT_EQ(c.batch, 8);
  EXPECT_NE(config_to_ini(c).find("batch = 8"), std::string::npos);
}

TEST(ConfigIo, PartialOverridesKeepBase) {
  const auto ini = util::IniFile::parse("[accelerator]\nrf_entries = 4\n");
  const sim::AcceleratorConfig c = config_from_ini(ini);
  EXPECT_EQ(c.rf_entries, 4);
  EXPECT_EQ(c.array_n, 32);   // untouched default
  EXPECT_EQ(c.gb_kib, 128);
}

TEST(ConfigIo, TopLevelKeysAccepted) {
  const auto ini = util::IniFile::parse("array_n = 16\npreload_width = 16\n");
  EXPECT_EQ(config_from_ini(ini).array_n, 16);
}

TEST(ConfigIo, SupportParsing) {
  EXPECT_EQ(config_from_ini(util::IniFile::parse("support = ws\n")).support,
            sim::DataflowSupport::WsOnly);
  EXPECT_EQ(config_from_ini(util::IniFile::parse("support = os\n")).support,
            sim::DataflowSupport::OsOnly);
  EXPECT_EQ(config_from_ini(util::IniFile::parse("support = hybrid\n")).support,
            sim::DataflowSupport::Hybrid);
  EXPECT_THROW(config_from_ini(util::IniFile::parse("support = both\n")),
               std::invalid_argument);
}

TEST(ConfigIo, ValidatesResult) {
  EXPECT_THROW(config_from_ini(util::IniFile::parse("array_n = 0\n")),
               std::invalid_argument);
  EXPECT_THROW(config_from_ini(util::IniFile::parse("weight_sparsity = 1.5\n")),
               std::invalid_argument);
}

}  // namespace
}  // namespace sqz::core
