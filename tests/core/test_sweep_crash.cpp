// Crash-safety and fault-isolation tests for the sweep path: the ISSUE's
// acceptance criteria live here.
//
//  - A sweep with one poisoned point completes all the others and reports
//    exactly one structured PointError (in-process, via run_cli).
//  - A journaled sweep SIGKILLed mid-run and relaunched with --resume
//    produces a dump byte-identical to the uninterrupted run (fork+exec of
//    the real sqzsim binary, compiled in as SQZ_SQZSIM_BINARY).
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/cli.h"
#include "core/sweepjournal.h"
#include "util/faultinject.h"
#include "util/json_parse.h"

namespace sqz::core {
namespace {

namespace fs = std::filesystem;

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun run(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir =
      (fs::temp_directory_path() / ("sqz_sweep_" + tag)).string();
  fs::remove_all(dir);
  return dir;
}

TEST(SweepFaultIsolation, PoisonedPointDoesNotKillTheSweep) {
  // array_n=2000 fails pre-flight validation; array_n=16 is fine. The sweep
  // must finish the good point and report exactly one structured error.
  const CliRun r = run({"--model", "squeezenet11", "--sweep",
                        "array_n=16,2000"});
  EXPECT_EQ(r.code, 0) << r.err;

  const util::JsonValue doc = util::parse_json(r.out);
  ASSERT_EQ(doc.at("points").items.size(), 1u);
  EXPECT_EQ(doc.at("points").at(std::size_t{0}).at("label").as_string(),
            "16x16");

  ASSERT_TRUE(doc.has("errors"));
  ASSERT_EQ(doc.at("errors").items.size(), 1u);
  const util::JsonValue& e = doc.at("errors").at(std::size_t{0});
  EXPECT_EQ(e.at("label").as_string(), "2000x2000");
  EXPECT_EQ(e.at("phase").as_string(), "validate");
  EXPECT_EQ(e.at("key").as_string().size(), 16u);  // fnv1a64, 16 hex digits
  // The diagnostic is actionable: it names the violated constraint.
  EXPECT_NE(e.at("what").as_string().find("array_n=2000"), std::string::npos);
  // stderr summarizes the failure count for operators watching the run.
  EXPECT_NE(r.err.find("1 of 2 design points failed"), std::string::npos);
}

TEST(SweepFaultIsolation, CleanSweepOmitsTheErrorsKey) {
  // Byte-identity guard: a checked sweep with zero failures must serialize
  // exactly like the pre-fault-isolation dump (no "errors": [] noise).
  const CliRun r = run({"--model", "squeezenet11", "--dump-rf-sweep"});
  EXPECT_EQ(r.code, 0);
  EXPECT_FALSE(util::parse_json(r.out).has("errors"));
}

TEST(SweepFaultIsolation, AllPointsFailingExitsNonZero) {
  const CliRun r = run({"--model", "squeezenet11", "--sweep", "array_n=2000"});
  EXPECT_EQ(r.code, 1);
  const util::JsonValue doc = util::parse_json(r.out);
  EXPECT_TRUE(doc.at("points").items.empty());
  EXPECT_EQ(doc.at("errors").items.size(), 1u);
}

TEST(SweepFaultIsolation, InjectedSimulationFaultIsPhaseSimulate) {
  util::fault::arm("dse.point", util::fault::make_errno(EIO), 1);
  const CliRun r = run({"--model", "squeezenet11", "--sweep", "rf_entries=8",
                        "--jobs", "1"});
  util::fault::reset();
  EXPECT_EQ(r.code, 1);  // the only point failed
  const util::JsonValue e =
      util::parse_json(r.out).at("errors").at(std::size_t{0});
  EXPECT_EQ(e.at("phase").as_string(), "simulate");
  EXPECT_NE(e.at("what").as_string().find("injected"), std::string::npos);
}

TEST(SweepFaultIsolation, JournalAppendFailureIsPhaseJournal) {
  const std::string dir = fresh_dir("enospc");
  util::fault::arm("sweepjournal.append", util::fault::make_errno(ENOSPC), 1);
  const CliRun r = run({"--model", "squeezenet11", "--sweep", "rf_entries=8",
                        "--jobs", "1", "--journal", dir});
  util::fault::reset();
  const util::JsonValue e =
      util::parse_json(r.out).at("errors").at(std::size_t{0});
  EXPECT_EQ(e.at("phase").as_string(), "journal");
  fs::remove_all(dir);
}

TEST(SweepResume, ResumeSkipsJournaledPointsByteIdentically) {
  const std::string dir = fresh_dir("resume");

  const std::vector<std::string> sweep = {"--model", "squeezenet11",
                                          "--sweep", "array_n=8,16,32"};
  auto with = [&](std::vector<std::string> extra) {
    std::vector<std::string> args = sweep;
    args.insert(args.end(), extra.begin(), extra.end());
    return args;
  };

  const CliRun uninterrupted = run(sweep);
  ASSERT_EQ(uninterrupted.code, 0);

  const CliRun journaled = run(with({"--journal", dir}));
  ASSERT_EQ(journaled.code, 0);
  EXPECT_EQ(journaled.out, uninterrupted.out);
  ASSERT_TRUE(fs::exists(SweepJournal::journal_path(dir)));

  // Relaunch with --resume: every point restores from the journal (no
  // re-simulation) and the dump is byte-identical.
  const CliRun resumed = run(with({"--journal", dir, "--resume"}));
  EXPECT_EQ(resumed.code, 0);
  EXPECT_EQ(resumed.out, uninterrupted.out);
  EXPECT_NE(resumed.err.find("resumed 3 completed points"), std::string::npos);
  fs::remove_all(dir);
}

TEST(SweepResume, FreshRunDiscardsAPriorJournal) {
  const std::string dir = fresh_dir("fresh");
  const std::vector<std::string> a = {"--model", "squeezenet11", "--sweep",
                                      "rf_entries=8,16", "--journal", dir};
  ASSERT_EQ(run(a).code, 0);

  // Without --resume the stale journal must not feed the new sweep: a
  // resumed count would mean stale metrics silently replaced re-evaluation.
  const CliRun again = run(a);
  EXPECT_EQ(again.code, 0);
  EXPECT_EQ(again.err.find("resumed"), std::string::npos);

  // The journal was rewritten from scratch and resumes cleanly.
  const CliRun resumed = run({"--model", "squeezenet11", "--sweep",
                              "rf_entries=8,16", "--journal", dir,
                              "--resume"});
  EXPECT_NE(resumed.err.find("resumed 2 completed points"),
            std::string::npos);
  fs::remove_all(dir);
}

TEST(SweepResume, ResumeWithoutJournalIsRejected) {
  const CliRun r = run({"--model", "squeezenet11", "--sweep", "rf_entries=8",
                        "--resume"});
  EXPECT_NE(r.code, 0);
  EXPECT_NE(r.err.find("--resume requires --journal"), std::string::npos);
}

TEST(SweepProgress, HeartbeatReportsDoneAndErrors) {
  const CliRun r = run({"--model", "squeezenet11", "--sweep",
                        "array_n=16,2000", "--progress"});
  EXPECT_EQ(r.code, 0);
  // The final heartbeat always prints (done == total bypasses throttling).
  EXPECT_NE(r.err.find("sweep 2/2 done, 1 errors"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The acceptance chaos drill: SIGKILL the real binary mid-sweep, relaunch
// with --resume, and diff the dump against an uninterrupted run.

struct ChildRun {
  pid_t pid = -1;
  std::string out_path;
  std::string err_path;
};

// fork+exec sqzsim with stdout/stderr redirected to files. `fault_spec`
// becomes SQZ_FAULT in the child only.
ChildRun spawn_sqzsim(const std::vector<std::string>& args,
                      const std::string& tag, const std::string& fault_spec) {
  ChildRun child;
  child.out_path = (fs::temp_directory_path() / (tag + ".out")).string();
  child.err_path = (fs::temp_directory_path() / (tag + ".err")).string();

  child.pid = fork();
  if (child.pid == 0) {
    if (!std::freopen(child.out_path.c_str(), "w", stdout) ||
        !std::freopen(child.err_path.c_str(), "w", stderr))
      _exit(127);
    if (fault_spec.empty())
      unsetenv("SQZ_FAULT");
    else
      setenv("SQZ_FAULT", fault_spec.c_str(), 1);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(SQZ_SQZSIM_BINARY));
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    execv(SQZ_SQZSIM_BINARY, argv.data());
    _exit(127);
  }
  return child;
}

int wait_for(pid_t pid) {
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  return status;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(SweepCrash, SigkillMidSweepThenResumeIsByteIdentical) {
  const std::string dir = fresh_dir("chaos");
  const std::string journal = SweepJournal::journal_path(dir);
  const std::vector<std::string> sweep = {"--model", "squeezenet11",
                                          "--sweep", "array_n=8,16,24,32"};

  // Reference: the uninterrupted run (no journal involved at all).
  const ChildRun golden = spawn_sqzsim(sweep, "sqz_chaos_golden", "");
  ASSERT_EQ(wait_for(golden.pid), 0) << slurp(golden.err_path);
  const std::string golden_out = slurp(golden.out_path);
  ASSERT_FALSE(golden_out.empty());

  // Victim: one point at a time (--jobs 1), each stalled 500 ms by the
  // dse.point fault, so after the first journal record lands there is >1 s
  // of sweep left — a wide, deterministic window for the SIGKILL.
  std::vector<std::string> victim_args = sweep;
  for (const std::string& a :
       {std::string("--jobs"), std::string("1"), std::string("--journal"), dir})
    victim_args.push_back(a);
  const ChildRun victim =
      spawn_sqzsim(victim_args, "sqz_chaos_victim", "dse.point=stall:500*4");

  // Kill as soon as the journal holds at least one completed point.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool saw_record = false;
  while (std::chrono::steady_clock::now() < deadline) {
    struct stat st;
    if (::stat(journal.c_str(), &st) == 0 && st.st_size > 0) {
      saw_record = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(saw_record) << "journal never appeared: " << slurp(victim.err_path);
  ASSERT_EQ(kill(victim.pid, SIGKILL), 0);
  const int status = wait_for(victim.pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "victim outran the kill";
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // The journal survived the kill with at least the first point.
  {
    SweepJournal recovered(dir);
    EXPECT_GE(recovered.recovery().records, 1u);
    EXPECT_LT(recovered.recovery().records, 4u) << "nothing was in flight?";
  }

  // Relaunch with --resume: journaled points restore, the rest simulate,
  // and the dump matches the uninterrupted run byte for byte.
  std::vector<std::string> resume_args = sweep;
  for (const std::string& a : {std::string("--journal"), dir,
                               std::string("--resume")})
    resume_args.push_back(a);
  const ChildRun resumed = spawn_sqzsim(resume_args, "sqz_chaos_resume", "");
  ASSERT_EQ(wait_for(resumed.pid), 0) << slurp(resumed.err_path);
  EXPECT_EQ(slurp(resumed.out_path), golden_out);
  EXPECT_NE(slurp(resumed.err_path).find("resumed"), std::string::npos);

  for (const ChildRun* c : {&golden, &victim, &resumed}) {
    fs::remove(c->out_path);
    fs::remove(c->err_path);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sqz::core
