// Cross-dataflow equivalence: both functional engines must compute the same
// convolution (they differ only in schedule), and both must match the
// reference runtime on a whole multi-layer network executed layer by layer.
#include <gtest/gtest.h>

#include "nn/model.h"
#include "runtime/executor.h"
#include "sim/functional/engines.h"

namespace sqz::sim::functional {
namespace {

TEST(CrossDataflow, WsAndOsAgreeOnEveryConv) {
  nn::Model m("net", nn::TensorShape{3, 24, 24});
  m.add_conv("c1", 8, 3, 2, 0);
  m.add_conv("c2", 12, 1, 1, 0);
  m.add_depthwise("dw", 3, 1, 1);
  m.add_conv("c3", 16, 3, 1, 1);
  m.finalize();

  runtime::ExecutorConfig ec;
  runtime::Executor ex(m, ec);
  ex.run();

  const AcceleratorConfig cfg = AcceleratorConfig::squeezelerator();
  for (int i = 1; i < m.layer_count(); ++i) {
    const nn::Layer& l = m.layer(i);
    if (!l.is_conv()) continue;
    const runtime::Tensor& in = ex.output(l.inputs.at(0));
    runtime::Requant rq = ec.requant;
    rq.relu = l.conv.relu;
    const auto ws = run_weight_stationary(l, in, ex.weights(i), rq, cfg);
    const auto os = run_output_stationary(l, in, ex.weights(i), rq, cfg);
    EXPECT_EQ(ws.output, os.output) << l.name;
    EXPECT_EQ(ws.output, ex.output(i)) << l.name;
    // The two dataflows execute different MAC counts (OS skips zeros)...
    EXPECT_LE(os.counts.mac_ops, ws.counts.mac_ops);
    // ...but identical useful work reaches the output.
  }
}

TEST(CrossDataflow, DataflowChoiceIsInvisibleToAccuracy) {
  // Simulate the Squeezelerator's per-layer choice: alternate dataflows
  // down a network; the final activations must equal the pure-reference run.
  nn::Model m("alt", nn::TensorShape{4, 16, 16});
  m.add_conv("a", 8, 3, 1, 1);
  m.add_conv("b", 8, 1, 1, 0);
  m.add_conv("c", 8, 3, 1, 1);
  m.finalize();

  runtime::ExecutorConfig ec;
  runtime::Executor ex(m, ec);
  ex.run();

  const AcceleratorConfig cfg = AcceleratorConfig::squeezelerator();
  runtime::Tensor x = runtime::generate_input(m, ec.input_seed);
  for (int i = 1; i < m.layer_count(); ++i) {
    const nn::Layer& l = m.layer(i);
    runtime::Requant rq = ec.requant;
    rq.relu = l.conv.relu;
    x = (i % 2 == 1)
            ? run_weight_stationary(l, x, ex.weights(i), rq, cfg).output
            : run_output_stationary(l, x, ex.weights(i), rq, cfg).output;
  }
  EXPECT_EQ(x, ex.final_output());
}

}  // namespace
}  // namespace sqz::sim::functional
