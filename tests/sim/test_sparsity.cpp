#include "sim/sparsity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/model.h"
#include "runtime/weights.h"

namespace sqz::sim {
namespace {

nn::Model conv_model(int cin = 8, int cout = 16, int k = 3) {
  nn::Model m("s", nn::TensorShape{cin, 12, 12});
  m.add_conv("c", cout, k, 1, 1);
  m.finalize();
  return m;
}

TEST(Sparsity, ExpectedTotals) {
  const nn::Model m = conv_model();
  const SparsityInfo s = SparsityInfo::expected(m.layer(1), 0.40);
  EXPECT_EQ(s.total_weights(), 16 * 8 * 9);
  EXPECT_EQ(s.total_nonzero(),
            static_cast<std::int64_t>(std::llround(16 * 8 * 9 * 0.6)));
}

TEST(Sparsity, DenseHasNoZeros) {
  const nn::Model m = conv_model();
  const SparsityInfo s = SparsityInfo::dense(m.layer(1));
  EXPECT_EQ(s.total_nonzero(), s.total_weights());
  EXPECT_EQ(s.nnz_chunk(0, 16, 0), 16 * 9);
}

TEST(Sparsity, ExpectedChunkScalesWithCount) {
  const nn::Model m = conv_model();
  const SparsityInfo s = SparsityInfo::expected(m.layer(1), 0.40);
  // 9 taps * 0.6 = 5.4 per plane; chunk of 10 -> 54.
  EXPECT_EQ(s.nnz_chunk(0, 10, 3), 54);
  EXPECT_EQ(s.nnz_chunk(6, 1, 0), 5);  // llround(5.4)
}

TEST(Sparsity, MeasuredMatchesWeights) {
  const nn::Model m = conv_model();
  runtime::WeightGenConfig wc;
  wc.sparsity = 0.40;
  const runtime::WeightTensor w = runtime::generate_weights(m, 1, wc);
  const SparsityInfo s = SparsityInfo::measured(w);
  EXPECT_EQ(s.total_nonzero(), w.nonzero_count());
  EXPECT_EQ(s.total_weights(), w.size());
  // Chunk sums equal the sum of per-plane counts.
  std::int64_t manual = 0;
  for (int oc = 3; oc < 9; ++oc) manual += w.nonzero_count(oc, 2);
  EXPECT_EQ(s.nnz_chunk(3, 6, 2), manual);
}

TEST(Sparsity, MeasuredNearExpected) {
  const nn::Model m = conv_model(32, 64, 3);
  runtime::WeightGenConfig wc;
  wc.sparsity = 0.40;
  const runtime::WeightTensor w = runtime::generate_weights(m, 1, wc);
  const SparsityInfo measured = SparsityInfo::measured(w);
  const SparsityInfo expected = SparsityInfo::expected(m.layer(1), 0.40);
  const double ratio = static_cast<double>(measured.total_nonzero()) /
                       static_cast<double>(expected.total_nonzero());
  EXPECT_NEAR(ratio, 1.0, 0.05);
}

TEST(Sparsity, RejectsBadRate) {
  const nn::Model m = conv_model();
  EXPECT_THROW(SparsityInfo::expected(m.layer(1), 1.0), std::invalid_argument);
  EXPECT_THROW(SparsityInfo::expected(m.layer(1), -0.2), std::invalid_argument);
}

TEST(Sparsity, FcLayerSupported) {
  nn::Model m("fc", nn::TensorShape{4, 2, 2});
  m.add_fc("f", 10);
  m.finalize();
  const SparsityInfo s = SparsityInfo::expected(m.layer(1), 0.5);
  EXPECT_EQ(s.total_weights(), 160);
  EXPECT_EQ(s.total_nonzero(), 80);
}

}  // namespace
}  // namespace sqz::sim
