// Functional OS emulator: bit-exact vs the reference runtime and
// cycle/access-exact vs the analytical OS mapper under measured sparsity.
#include <gtest/gtest.h>

#include <tuple>

#include "nn/model.h"
#include "runtime/ops.h"
#include "runtime/weights.h"
#include "sim/functional/engines.h"
#include "sim/mappers.h"

namespace sqz::sim::functional {
namespace {

nn::Model conv_model(int cin, int hw, int cout, int k, int stride, int pad,
                     int groups = 1) {
  nn::Model m("t", nn::TensorShape{cin, hw, hw});
  nn::ConvParams p;
  p.out_channels = cout;
  p.kh = p.kw = k;
  p.stride = stride;
  p.pad_h = p.pad_w = pad;
  p.groups = groups;
  m.add_conv("c", p);
  m.finalize();
  return m;
}

void expect_os_exact(nn::Model m, AcceleratorConfig cfg, double sparsity = 0.40) {
  runtime::WeightGenConfig wc;
  wc.sparsity = sparsity;
  const runtime::WeightTensor w = runtime::generate_weights(m, 1, wc);
  const runtime::Tensor in = runtime::generate_input(m, 42);
  const nn::Layer& l = m.layer(1);
  runtime::Requant rq;
  rq.relu = l.conv.relu;
  const runtime::Tensor ref = runtime::conv2d(in, w, l.conv, rq);

  const FunctionalResult f = run_output_stationary(l, in, w, rq, cfg);
  EXPECT_EQ(f.output, ref) << "numerical mismatch vs reference runtime";

  const SparsityInfo sp = cfg.os_zero_skip ? SparsityInfo::measured(w)
                                           : SparsityInfo::dense(l);
  const MappingResult a = map_output_stationary(l, cfg, sp);
  EXPECT_EQ(f.compute_cycles, a.compute_cycles) << "cycle model drift";
  EXPECT_EQ(f.counts, a.counts) << "access-count model drift";
}

TEST(OsFunctional, Standard3x3) {
  expect_os_exact(conv_model(8, 20, 16, 3, 1, 1),
                  AcceleratorConfig::squeezelerator());
}

TEST(OsFunctional, FirstLayerStyle) {
  expect_os_exact(conv_model(3, 33, 20, 7, 2, 0),
                  AcceleratorConfig::squeezelerator());
}

TEST(OsFunctional, PointwiseOverlappedLoads) {
  expect_os_exact(conv_model(40, 9, 70, 1, 1, 0),
                  AcceleratorConfig::squeezelerator());
}

TEST(OsFunctional, Depthwise) {
  nn::Model m("dw", nn::TensorShape{6, 17, 17});
  m.add_depthwise("d", 3, 1, 1);
  m.finalize();
  expect_os_exact(std::move(m), AcceleratorConfig::squeezelerator());
}

TEST(OsFunctional, GroupedStrided) {
  expect_os_exact(conv_model(8, 16, 12, 5, 2, 2, 2),
                  AcceleratorConfig::squeezelerator());
}

TEST(OsFunctional, MultiTileOutput) {
  // Output larger than the PE array: several spatial tiles, edge tiles ragged.
  AcceleratorConfig cfg;
  cfg.array_n = 8;
  cfg.preload_width = 8;
  cfg.drain_width = 4;
  expect_os_exact(conv_model(4, 21, 6, 3, 1, 1), cfg);
}

TEST(OsFunctional, RfSmallerThanFilters) {
  AcceleratorConfig cfg;
  cfg.rf_entries = 4;  // 16 output channels -> 4 chunks
  expect_os_exact(conv_model(8, 12, 16, 3, 1, 1), cfg);
}

TEST(OsFunctional, ZeroSkipDisabled) {
  AcceleratorConfig cfg;
  cfg.os_zero_skip = false;
  expect_os_exact(conv_model(8, 12, 16, 3, 1, 1), cfg);
}

TEST(OsFunctional, ZeroSkipDoesNotChangeNumbers) {
  // Skipping zero weights must be numerically invisible.
  const nn::Model m = conv_model(8, 14, 8, 3, 1, 1);
  runtime::WeightGenConfig wc;
  wc.sparsity = 0.6;
  const runtime::WeightTensor w = runtime::generate_weights(m, 1, wc);
  const runtime::Tensor in = runtime::generate_input(m, 9);
  runtime::Requant rq;
  AcceleratorConfig skip, noskip;
  noskip.os_zero_skip = false;
  const auto a = run_output_stationary(m.layer(1), in, w, rq, skip);
  const auto b = run_output_stationary(m.layer(1), in, w, rq, noskip);
  EXPECT_EQ(a.output, b.output);
  EXPECT_LT(a.compute_cycles, b.compute_cycles);
}

TEST(OsFunctional, SeparatedFilters) {
  for (auto [kh, kw] : {std::pair{1, 3}, {3, 1}}) {
    nn::Model m("sep", nn::TensorShape{4, 18, 18});
    nn::ConvParams p;
    p.out_channels = 9;
    p.kh = kh;
    p.kw = kw;
    p.pad_h = kh / 2;
    p.pad_w = kw / 2;
    m.add_conv("c", p);
    m.finalize();
    expect_os_exact(std::move(m), AcceleratorConfig::squeezelerator());
  }
}

TEST(OsFunctional, DenseWeights) {
  expect_os_exact(conv_model(8, 12, 8, 3, 1, 1),
                  AcceleratorConfig::squeezelerator(), /*sparsity=*/0.0);
}

// Property sweep over shapes and strides.
class OsFunctionalSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(OsFunctionalSweep, ExactVsMapperAndReference) {
  const auto [cin, cout, k, stride] = GetParam();
  const int hw = 13;
  if (hw < k) GTEST_SKIP();
  expect_os_exact(conv_model(cin, hw, cout, k, stride, k / 2),
                  AcceleratorConfig::squeezelerator());
}

INSTANTIATE_TEST_SUITE_P(ShapeGrid, OsFunctionalSweep,
                         ::testing::Combine(::testing::Values(1, 3, 33),
                                            ::testing::Values(2, 34),
                                            ::testing::Values(1, 3),
                                            ::testing::Values(1, 2)));

}  // namespace
}  // namespace sqz::sim::functional
