#include "sim/tiling.h"

#include <gtest/gtest.h>

#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "sim/layer_sim.h"
#include "sim/timeline.h"

namespace sqz::sim {
namespace {

const AcceleratorConfig kCfg = AcceleratorConfig::squeezelerator();

nn::Model conv_net(int cin, int hw, int cout, int k) {
  nn::Model m("t", nn::TensorShape{cin, hw, hw});
  m.add_conv("c", cout, k, 1, k / 2);
  m.finalize();
  return m;
}

TilePlan plan(const nn::Model& m, TensorPlacement p, std::int64_t compute = 10000) {
  return plan_layer_tiles(m, 1, kCfg, p, compute);
}

TEST(Tiling, ConservesComputeAndDma) {
  const nn::Model m = conv_net(32, 64, 64, 3);
  const TensorPlacement spill;  // everything through DRAM
  const TilePlan tp = plan(m, spill, 123457);
  EXPECT_EQ(tp.total_compute(), 123457);
  const std::int64_t expected_dma = m.layer(1).params() +
                                    m.layer(1).in_shape.elems() +
                                    m.layer(1).out_shape.elems() +
                                    tp.halo_reread_words;
  EXPECT_EQ(tp.total_dma_words(), expected_dma);
}

TEST(Tiling, ResidentTensorsProduceNoActivationDma) {
  const nn::Model m = conv_net(16, 20, 16, 3);
  const TensorPlacement resident{.input_in_gb = true, .output_in_gb = true};
  const TilePlan tp = plan(m, resident);
  EXPECT_EQ(tp.total_dma_words(), m.layer(1).params());  // weights only
  EXPECT_EQ(tp.halo_reread_words, 0);
}

TEST(Tiling, StreamingSplitsIntoBands) {
  const nn::Model m = conv_net(16, 64, 16, 3);
  const TilePlan tp = plan(m, TensorPlacement{});
  EXPECT_GT(tp.tiles.size(), 1u);
  EXPECT_LE(tp.tiles.size(), 64u);  // at most one band per output row
}

TEST(Tiling, OversizedLayerSplitsByCapacity) {
  // SqueezeNet conv1: activations far exceed the 128 KiB buffer.
  const nn::Model m = nn::zoo::squeezenet_v10();
  const TilePlan tp = plan_layer_tiles(m, 1, kCfg, TensorPlacement{}, 1 << 20);
  // Streamed words / half the activation region gives the minimum band count.
  const std::int64_t streamed =
      m.layer(1).in_shape.elems() + m.layer(1).out_shape.elems();
  const std::int64_t budget =
      (kCfg.gb_capacity_words() - kCfg.weight_reserve_words) / 2;
  EXPECT_GE(static_cast<std::int64_t>(tp.tiles.size()),
            (streamed + budget - 1) / budget);
}

TEST(Tiling, HaloRereadsOnlyWhenInputStreams) {
  const nn::Model m = conv_net(16, 64, 16, 3);
  const TilePlan streaming = plan(m, TensorPlacement{});
  EXPECT_GT(streaming.halo_reread_words, 0);
  const TilePlan resident =
      plan(m, TensorPlacement{.input_in_gb = true, .output_in_gb = false});
  EXPECT_EQ(resident.halo_reread_words, 0);
}

TEST(Tiling, PointwiseHasNoHalo) {
  const nn::Model m = conv_net(16, 64, 16, 1);
  const TilePlan tp = plan(m, TensorPlacement{});
  EXPECT_EQ(tp.halo_reread_words, 0);
}

TEST(Tiling, FcSplitsAlongOutputs) {
  nn::Model m("fc", nn::TensorShape{256, 6, 6});
  m.add_fc("f", 4096);
  m.finalize();
  const TilePlan tp = plan_layer_tiles(m, 1, kCfg, TensorPlacement{}, 50000);
  EXPECT_GT(tp.tiles.size(), 1u);
  EXPECT_EQ(tp.halo_reread_words, 0);
  EXPECT_EQ(tp.total_compute(), 50000);
}

TEST(Tiling, RejectsInputLayer) {
  const nn::Model m = conv_net(4, 8, 4, 1);
  EXPECT_THROW(plan_layer_tiles(m, 0, kCfg, TensorPlacement{}, 1),
               std::invalid_argument);
}

TEST(Tiling, BandSharesDifferByAtMostOne) {
  const nn::Model m = conv_net(16, 64, 16, 3);
  const TilePlan tp = plan(m, TensorPlacement{}, 99991);  // prime: ragged shares
  std::int64_t lo = tp.tiles.front().compute_cycles, hi = lo;
  for (const TileJob& t : tp.tiles) {
    lo = std::min(lo, t.compute_cycles);
    hi = std::max(hi, t.compute_cycles);
  }
  EXPECT_LE(hi - lo, 1);
}

TEST(TileSearch, NeverWorseThanHeuristic) {
  // The searched plan's makespan must beat or match the fixed heuristic on
  // every layer of the zoo.
  const nn::Model m = nn::zoo::squeezenet_v10();
  for (int i = 1; i < m.layer_count(); ++i) {
    const TensorPlacement p{};
    const std::int64_t compute = 20000;
    const TileSearchResult best = search_layer_tiles(m, i, kCfg, p, compute);
    const TilePlan heur = plan_layer_tiles(m, i, kCfg, p, compute);
    const TimelineResult heur_tl =
        run_timeline(heur.tiles, kCfg, BufferingMode::Double);
    EXPECT_LE(best.makespan_cycles, heur_tl.total_cycles) << m.layer(i).name;
  }
}

TEST(TileSearch, BeatsSingleBandByHidingLatency) {
  // Even with weights-only DMA, a few bands let the one DRAM access latency
  // hide behind compute; the search must never lose to the single-band plan.
  nn::Model m("tiny", nn::TensorShape{8, 8, 8});
  m.add_conv("c", 8, 1, 1, 0);
  m.finalize();
  const TensorPlacement resident{.input_in_gb = true, .output_in_gb = true};
  const TileSearchResult best = search_layer_tiles(m, 1, kCfg, resident, 500);
  const TilePlan single =
      plan_layer_tiles_with_bands(m, 1, kCfg, resident, 500, 1);
  const TimelineResult single_tl =
      run_timeline(single.tiles, kCfg, BufferingMode::Double);
  EXPECT_LE(best.makespan_cycles, single_tl.total_cycles);
  EXPECT_LE(best.bands, 8);  // tiny layer: no reason to shred it
}

TEST(TileSearch, BandsBoundedByRowsAndCapacity) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  const TileSearchResult best =
      search_layer_tiles(m, 1, kCfg, TensorPlacement{}, 200000);
  EXPECT_GE(best.bands, 1);
  EXPECT_LE(best.bands, m.layer(1).out_shape.h);
  EXPECT_EQ(best.plan.total_compute(), 200000);
}

TEST(TileSearch, ExplicitBandCountRespectsCapacityFloor) {
  // Asking for one band on a layer whose working set exceeds the activation
  // region is overridden by the capacity minimum.
  const nn::Model m = nn::zoo::squeezenet_v10();
  const TilePlan one = plan_layer_tiles_with_bands(
      m, 1, kCfg, TensorPlacement{}, 100000, 1);
  EXPECT_GT(one.tiles.size(), 1u);
}

TEST(TileSearch, NetworkLevelSearchAtLeastAsFast) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  sched::SimulationOptions heur, search;
  heur.tile_timeline = search.tile_timeline = true;
  search.tile_search = true;
  const auto a = sched::simulate_network(m, kCfg, heur).total_cycles();
  const auto b = sched::simulate_network(m, kCfg, search).total_cycles();
  EXPECT_LE(b, a);
}

}  // namespace
}  // namespace sqz::sim
