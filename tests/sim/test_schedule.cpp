#include "sim/schedule.h"

#include <gtest/gtest.h>

#include "nn/model.h"

namespace sqz::sim {
namespace {

nn::Layer make_conv(int cin, int hw, int cout, int k, int stride, int pad,
                    int groups = 1) {
  nn::Model m("t", nn::TensorShape{cin, hw, hw});
  nn::ConvParams p;
  p.out_channels = cout;
  p.kh = p.kw = k;
  p.stride = stride;
  p.pad_h = p.pad_w = pad;
  p.groups = groups;
  m.add_conv("c", p);
  m.finalize();
  return m.layer(1);
}

const AcceleratorConfig kCfg = AcceleratorConfig::squeezelerator();

TEST(WsSchedule, WideLayerNoPacking) {
  const WsSchedule s = WsSchedule::plan(make_conv(64, 14, 128, 3, 1, 1), kCfg);
  EXPECT_EQ(s.tap_pack, 1);
  EXPECT_EQ(s.cin_blocks, 2);   // 64 / 32
  EXPECT_EQ(s.cout_blocks, 4);  // 128 / 32
  EXPECT_EQ(s.stream_penalty, 1);
  EXPECT_EQ(s.pixels, 14 * 14);
}

TEST(WsSchedule, FirstLayerPacksTaps) {
  const WsSchedule s = WsSchedule::plan(make_conv(3, 33, 96, 7, 2, 0), kCfg);
  EXPECT_EQ(s.tap_pack, 2);  // capped at kWsMaxTapPack
  EXPECT_EQ(s.cin_blocks, 1);
  EXPECT_EQ(s.stream_penalty, 2);  // stride 2
  EXPECT_EQ(s.tap_groups_per_row(), 4);  // ceil(7/2)
  EXPECT_EQ(s.taps_in_group(3), 1);      // last group is a single tap
  EXPECT_EQ(s.taps_in_group(0), 2);
}

TEST(WsSchedule, DepthwisePacks) {
  nn::Model m("dw", nn::TensorShape{32, 16, 16});
  m.add_depthwise("d", 3, 1, 1);
  m.finalize();
  const WsSchedule s = WsSchedule::plan(m.layer(1), kCfg);
  EXPECT_EQ(s.groups, 32);
  EXPECT_EQ(s.cin_pg, 1);
  EXPECT_EQ(s.tap_pack, 2);
  EXPECT_EQ(s.tap_groups_per_row(), 2);  // ceil(3/2)
}

TEST(WsSchedule, KwOneCannotPack) {
  // 3x1 separated conv: only one tap per row; nothing to pack.
  nn::Model m("t", nn::TensorShape{8, 16, 16});
  nn::ConvParams p;
  p.out_channels = 16;
  p.kh = 3;
  p.kw = 1;
  p.pad_h = 1;
  m.add_conv("c", p);
  m.finalize();
  const WsSchedule s = WsSchedule::plan(m.layer(1), kCfg);
  EXPECT_EQ(s.tap_pack, 1);
}

TEST(WsSchedule, StridePenaltyCapped) {
  const WsSchedule s = WsSchedule::plan(make_conv(3, 227, 96, 11, 4, 0), kCfg);
  EXPECT_EQ(s.stream_penalty, 2);  // min(stride, 2)
}

TEST(WsSchedule, FcGeometry) {
  nn::Model m("fc", nn::TensorShape{16, 4, 4});
  m.add_fc("f", 100);
  m.finalize();
  const WsSchedule s = WsSchedule::plan(m.layer(1), kCfg);
  EXPECT_TRUE(s.is_fc);
  EXPECT_EQ(s.cin_pg, 256);
  EXPECT_EQ(s.cout_pg, 100);
  EXPECT_EQ(s.pixels, 1);
  EXPECT_EQ(s.cin_blocks, 8);
  EXPECT_EQ(s.cout_blocks, 4);
}

TEST(WsSchedule, PixelChunkTracksAccumulator) {
  AcceleratorConfig c = kCfg;
  c.psum_accum_words = 64;
  const WsSchedule s = WsSchedule::plan(make_conv(64, 14, 128, 3, 1, 1), c);
  EXPECT_EQ(s.pixel_chunk, 2);  // 64 / 32
}

TEST(WsSchedule, RejectsNonMacLayer) {
  nn::Model m("p", nn::TensorShape{4, 8, 8});
  m.add_maxpool("pool", 2, 2);
  m.finalize();
  EXPECT_THROW(WsSchedule::plan(m.layer(1), kCfg), std::invalid_argument);
}

TEST(OsSchedule, TilesCoverOutput) {
  const OsSchedule s = OsSchedule::plan(make_conv(3, 227, 96, 7, 2, 0), kCfg);
  EXPECT_EQ(s.oh, 111);
  EXPECT_EQ(s.tiles_y, 4);
  EXPECT_EQ(s.tiles_x, 4);
  EXPECT_FALSE(s.loads_overlap_compute);
}

TEST(OsSchedule, PointwiseOverlapsLoads) {
  const OsSchedule s = OsSchedule::plan(make_conv(64, 14, 128, 1, 1, 0), kCfg);
  EXPECT_TRUE(s.loads_overlap_compute);
  EXPECT_EQ(s.tiles_y, 1);
}

TEST(OsSchedule, BlockPixelsIncludeHalo) {
  const OsSchedule s = OsSchedule::plan(make_conv(8, 64, 8, 3, 1, 1), kCfg);
  // Full 32x32 tile, 3x3 stride 1: block is 34x34.
  EXPECT_EQ(s.block_pixels(32, 32), 34 * 34);
  // Edge tile of 10x10 outputs: block 12x12.
  EXPECT_EQ(s.block_pixels(10, 10), 12 * 12);
}

TEST(OsSchedule, LoadCyclesBandwidthAndRowFloor) {
  const OsSchedule s = OsSchedule::plan(make_conv(8, 64, 8, 3, 1, 1), kCfg);
  // 34*34 = 1156 pixels / 32 per cycle = 37 cycles (> 34-row floor).
  EXPECT_EQ(s.load_cycles(32, 32, kCfg), 37);
  // Small tile: bandwidth says ceil(144/32)=5, but 12 rows must inject.
  EXPECT_EQ(s.load_cycles(10, 10, kCfg), 12);
}

TEST(OsSchedule, RejectsFc) {
  nn::Model m("fc", nn::TensorShape{16, 4, 4});
  m.add_fc("f", 100);
  m.finalize();
  EXPECT_THROW(OsSchedule::plan(m.layer(1), kCfg), std::invalid_argument);
}

}  // namespace
}  // namespace sqz::sim
