#include "sim/timeline.h"

#include <gtest/gtest.h>

#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"

namespace sqz::sim {
namespace {

AcceleratorConfig cfg_with(int latency) {
  AcceleratorConfig c = AcceleratorConfig::squeezelerator();
  c.dram_latency_cycles = latency;
  return c;
}

// 16 B/cycle at 2 B/word -> 8 words per DMA cycle.
TileJob job(std::int64_t in_words, std::int64_t compute, std::int64_t out_words) {
  return TileJob{in_words, compute, out_words};
}

TEST(Timeline, EmptyJobList) {
  const TimelineResult r = run_timeline({}, cfg_with(100), BufferingMode::Double);
  EXPECT_EQ(r.total_cycles, 0);
  EXPECT_TRUE(r.events.empty());
}

TEST(Timeline, SingleTileExactSchedule) {
  // load: 100 + 80/8 = 110; compute 200 starting at 110; store 40/8 = 5.
  const TimelineResult r =
      run_timeline({job(80, 200, 40)}, cfg_with(100), BufferingMode::Double);
  EXPECT_EQ(r.total_cycles, 110 + 200 + 5);
  EXPECT_EQ(r.compute_busy_cycles, 200);
  EXPECT_EQ(r.dma_busy_cycles, 110 + 5);
}

TEST(Timeline, DoubleBufferOverlapsPrefetchWithCompute) {
  // Two identical tiles, compute-bound: tile 1's load (110) hides entirely
  // under tile 0's compute (200).
  const auto tiles = std::vector<TileJob>{job(80, 200, 0), job(80, 200, 0)};
  const TimelineResult r = run_timeline(tiles, cfg_with(100), BufferingMode::Double);
  EXPECT_EQ(r.total_cycles, 110 + 200 + 200);
}

TEST(Timeline, SingleBufferSerializes) {
  // With one staging buffer, tile 1's load waits for tile 0's compute.
  const auto tiles = std::vector<TileJob>{job(80, 200, 0), job(80, 200, 0)};
  const TimelineResult r = run_timeline(tiles, cfg_with(100), BufferingMode::Single);
  EXPECT_EQ(r.total_cycles, 110 + 200 + 110 + 200);
}

TEST(Timeline, DmaBoundPipelineApproachesTransferTime) {
  // Compute tiny, loads dominate: makespan ~ sum of load times.
  std::vector<TileJob> tiles(10, job(800, 5, 0));  // each load: 10 + 100
  const TimelineResult r = run_timeline(tiles, cfg_with(10), BufferingMode::Double);
  EXPECT_EQ(r.total_cycles, 10 * 110 + 5);  // last compute pokes out
}

TEST(Timeline, StoresShareTheDmaEngine) {
  // Stores of tile i delay the prefetch of tile i+1 on the shared engine.
  const auto tiles =
      std::vector<TileJob>{job(80, 10, 800), job(80, 10, 0)};
  const TimelineResult r = run_timeline(tiles, cfg_with(0), BufferingMode::Double);
  // load0: [0,10); compute0: [10,20); load1 issued at 10: [10,20);
  // store0 at max(20,20)=[20,120); compute1 at 20..30. Total = 120.
  EXPECT_EQ(r.total_cycles, 120);
}

TEST(Timeline, DoubleNeverSlowerThanSingle) {
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    sched::SimulationOptions dbl, sgl;
    dbl.tile_timeline = sgl.tile_timeline = true;
    sgl.double_buffered = false;
    const auto cfg = AcceleratorConfig::squeezelerator();
    EXPECT_LE(sched::simulate_network(m, cfg, dbl).total_cycles(),
              sched::simulate_network(m, cfg, sgl).total_cycles())
        << m.name();
  }
}

TEST(Timeline, BoundsVsAnalyticModel) {
  // For every layer: timeline total is at least the flat lower bound
  // max(compute, transfer) and at most the fully serial sum (+ per-band
  // latencies).
  const nn::Model m = nn::zoo::squeezenet_v10();
  const auto cfg = AcceleratorConfig::squeezelerator();
  sched::SimulationOptions opt;
  opt.tile_timeline = true;
  const auto flat = sched::simulate_network(m, cfg);
  const auto timeline = sched::simulate_network(m, cfg, opt);
  ASSERT_EQ(flat.layers.size(), timeline.layers.size());
  for (std::size_t i = 0; i < flat.layers.size(); ++i) {
    const auto& f = flat.layers[i];
    const auto& t = timeline.layers[i];
    EXPECT_GE(t.total_cycles, std::max(f.compute_cycles, f.dram_cycles))
        << f.layer_name;
    // Serial upper bound with generous per-band latency slack.
    EXPECT_LE(t.total_cycles,
              f.compute_cycles + t.dram_cycles + 64 * cfg.dram_latency_cycles)
        << f.layer_name;
  }
}

TEST(Timeline, OccupancyBounded) {
  std::vector<TileJob> tiles(4, job(80, 100, 80));
  const TimelineResult r = run_timeline(tiles, cfg_with(50), BufferingMode::Double);
  EXPECT_GT(r.compute_occupancy(), 0.0);
  EXPECT_LE(r.compute_occupancy(), 1.0);
}

TEST(Timeline, TraceListsEventsInTimeOrder) {
  std::vector<TileJob> tiles(3, job(80, 100, 40));
  const TimelineResult r = run_timeline(tiles, cfg_with(10), BufferingMode::Double);
  const std::string trace = r.trace();
  EXPECT_NE(trace.find("load"), std::string::npos);
  EXPECT_NE(trace.find("compute"), std::string::npos);
  EXPECT_NE(trace.find("store"), std::string::npos);
  // Events cover all three tiles.
  EXPECT_NE(trace.find("tile 0"), std::string::npos);
  EXPECT_NE(trace.find("tile 2"), std::string::npos);
}

TEST(Timeline, RetimeAddsHaloTraffic) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  const auto cfg = AcceleratorConfig::squeezelerator();
  sched::SimulationOptions opt;
  opt.tile_timeline = true;
  const auto flat = sched::simulate_network(m, cfg);
  const auto timeline = sched::simulate_network(m, cfg, opt);
  EXPECT_GE(timeline.total_counts().dram_words, flat.total_counts().dram_words);
}

}  // namespace
}  // namespace sqz::sim
