#include "sim/config.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sqz::sim {
namespace {

TEST(Config, DefaultsMatchPaper) {
  const AcceleratorConfig c = AcceleratorConfig::squeezelerator();
  EXPECT_EQ(c.array_n, 32);           // 32x32 PE experiments
  EXPECT_EQ(c.rf_entries, 16);        // post-tune-up register file
  EXPECT_EQ(c.gb_kib, 128);           // 128KB global buffer
  EXPECT_EQ(c.dram_latency_cycles, 100);
  EXPECT_DOUBLE_EQ(c.dram_bytes_per_cycle, 16.0);  // 16 GB/s at 1 GHz
  EXPECT_EQ(c.data_bytes, 2);         // 16-bit integer data path
  EXPECT_DOUBLE_EQ(c.weight_sparsity, 0.40);
  EXPECT_EQ(c.support, DataflowSupport::Hybrid);
  EXPECT_NO_THROW(c.validate());
}

TEST(Config, Presets) {
  EXPECT_EQ(AcceleratorConfig::squeezelerator_rf8().rf_entries, 8);
  EXPECT_EQ(AcceleratorConfig::reference_ws().support, DataflowSupport::WsOnly);
  EXPECT_TRUE(AcceleratorConfig::reference_ws().ws_psums_in_gb);
  EXPECT_EQ(AcceleratorConfig::reference_os().support, DataflowSupport::OsOnly);
  EXPECT_FALSE(AcceleratorConfig::squeezelerator().ws_psums_in_gb);
}

TEST(Config, DerivedQuantities) {
  AcceleratorConfig c;
  EXPECT_EQ(c.pe_count(), 1024);
  EXPECT_EQ(c.gb_capacity_words(), 128 * 1024 / 2);
}

TEST(Config, ValidateRejectsBadValues) {
  const auto broken = [](auto mutate) {
    AcceleratorConfig c;
    mutate(c);
    return c;
  };
  EXPECT_THROW(broken([](auto& c) { c.array_n = 0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](auto& c) { c.rf_entries = 0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](auto& c) { c.gb_kib = 0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](auto& c) { c.preload_width = 0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](auto& c) { c.drain_width = -1; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](auto& c) { c.dram_latency_cycles = -1; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](auto& c) { c.dram_bytes_per_cycle = 0.0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](auto& c) { c.data_bytes = 3; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](auto& c) { c.weight_sparsity = 1.0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](auto& c) { c.weight_sparsity = -0.1; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](auto& c) { c.weight_reserve_words = 1 << 20; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](auto& c) { c.psum_accum_words = 1; }).validate(),
               std::invalid_argument);
}

TEST(Config, DataflowNames) {
  EXPECT_STREQ(dataflow_abbrev(Dataflow::WeightStationary), "WS");
  EXPECT_STREQ(dataflow_abbrev(Dataflow::OutputStationary), "OS");
  EXPECT_STREQ(dataflow_name(Dataflow::WeightStationary), "weight-stationary");
}

TEST(Config, ToStringMentionsKeyParams) {
  const std::string s = AcceleratorConfig::squeezelerator().to_string();
  EXPECT_NE(s.find("32x32"), std::string::npos);
  EXPECT_NE(s.find("128"), std::string::npos);
  EXPECT_NE(s.find("hybrid"), std::string::npos);
}

}  // namespace
}  // namespace sqz::sim
