// Randomized-configuration exactness fuzz: the functional emulators must
// match the analytical mappers cycle- and count-exactly not only at the
// paper's configuration but across the whole configuration space — random
// array sizes, port widths, register files, accumulator depths, sparsity
// and psum placements.
#include <gtest/gtest.h>

#include "nn/model.h"
#include "runtime/ops.h"
#include "runtime/weights.h"
#include "sim/functional/engines.h"
#include "sim/mappers.h"
#include "util/rng.h"
#include "util/strings.h"

namespace sqz::sim::functional {
namespace {

AcceleratorConfig random_config(util::Rng& rng) {
  AcceleratorConfig cfg;
  cfg.array_n = static_cast<int>(rng.next_in(2, 24));
  cfg.rf_entries = static_cast<int>(rng.next_in(1, 24));
  cfg.preload_width = static_cast<int>(rng.next_in(1, 48));
  cfg.drain_width = static_cast<int>(rng.next_in(1, 48));
  cfg.psum_accum_words =
      static_cast<int>(rng.next_in(cfg.array_n, 4096));
  cfg.os_zero_skip = rng.next_bernoulli(0.8);
  cfg.ws_psums_in_gb = rng.next_bernoulli(0.3);
  cfg.weight_sparsity = rng.next_unit() * 0.7;
  cfg.validate();
  return cfg;
}

nn::Model random_conv(util::Rng& rng) {
  const int cin = static_cast<int>(rng.next_in(1, 20));
  const int hw = static_cast<int>(rng.next_in(5, 18));
  const int k = static_cast<int>(rng.next_in(1, std::min(hw, 5)));
  const int stride = static_cast<int>(rng.next_in(1, 2));
  // Groups: 1, cin (depthwise), or a divisor.
  int groups = 1;
  const auto dice = rng.next_below(4);
  if (dice == 1) groups = cin;
  else if (dice == 2 && cin % 2 == 0) groups = 2;
  const int cout = static_cast<int>(rng.next_in(1, 12)) * groups;

  nn::Model m(util::format("cfgfuzz"), nn::TensorShape{cin, hw, hw});
  nn::ConvParams p;
  p.out_channels = cout;
  p.kh = p.kw = k;
  p.stride = stride;
  p.pad_h = p.pad_w = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(k)));
  p.groups = groups;
  p.relu = rng.next_bernoulli(0.7);
  m.add_conv("c", p);
  m.finalize();
  return m;
}

class ConfigFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConfigFuzz, BothDataflowsExactUnderRandomConfigs) {
  util::Rng rng(GetParam() * 7919 + 13);
  const AcceleratorConfig cfg = random_config(rng);
  const nn::Model m = random_conv(rng);
  const nn::Layer& l = m.layer(1);

  runtime::WeightGenConfig wc;
  wc.sparsity = cfg.weight_sparsity;
  const runtime::WeightTensor w = runtime::generate_weights(m, 1, wc);
  const runtime::Tensor in = runtime::generate_input(m, GetParam());
  runtime::Requant rq;
  rq.relu = l.conv.relu;
  const runtime::Tensor ref = runtime::conv2d(in, w, l.conv, rq);

  // Weight-stationary.
  {
    const FunctionalResult f = run_weight_stationary(l, in, w, rq, cfg);
    const MappingResult a = map_weight_stationary(l, cfg);
    ASSERT_EQ(f.output, ref) << cfg.to_string();
    ASSERT_EQ(f.compute_cycles, a.compute_cycles) << cfg.to_string();
    ASSERT_EQ(f.counts, a.counts) << cfg.to_string();
  }
  // Output-stationary.
  {
    const FunctionalResult f = run_output_stationary(l, in, w, rq, cfg);
    const SparsityInfo sp = cfg.os_zero_skip ? SparsityInfo::measured(w)
                                             : SparsityInfo::dense(l);
    const MappingResult a = map_output_stationary(l, cfg, sp);
    ASSERT_EQ(f.output, ref) << cfg.to_string();
    ASSERT_EQ(f.compute_cycles, a.compute_cycles) << cfg.to_string();
    ASSERT_EQ(f.counts, a.counts) << cfg.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzz,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace sqz::sim::functional
