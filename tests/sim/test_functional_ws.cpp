// The strongest correctness evidence in the repository: the functional WS
// emulator executes the literal schedule and must (a) compute bit-exactly
// what the reference runtime computes, and (b) report exactly the cycles and
// accesses the analytical mapper predicts.
#include <gtest/gtest.h>

#include <tuple>

#include "nn/model.h"
#include "runtime/ops.h"
#include "runtime/weights.h"
#include "sim/functional/engines.h"
#include "sim/mappers.h"

namespace sqz::sim::functional {
namespace {

struct Case {
  nn::Model model;
  runtime::Tensor input;
  runtime::WeightTensor weights;
  runtime::Requant requant;
  runtime::Tensor reference;
};

Case make_case(nn::Model m, double sparsity = 0.40) {
  runtime::WeightGenConfig wc;
  wc.sparsity = sparsity;
  runtime::WeightTensor w = runtime::generate_weights(m, 1, wc);
  runtime::Tensor in = runtime::generate_input(m, 42);
  const nn::Layer& l = m.layer(1);
  runtime::Requant rq;
  rq.relu = l.is_conv() ? l.conv.relu : l.fc.relu;
  runtime::Tensor ref = l.is_conv()
                            ? runtime::conv2d(in, w, l.conv, rq)
                            : runtime::fully_connected(in, w, l.fc, rq);
  return Case{std::move(m), std::move(in), std::move(w), rq, std::move(ref)};
}

nn::Model conv_model(int cin, int hw, int cout, int k, int stride, int pad,
                     int groups = 1) {
  nn::Model m("t", nn::TensorShape{cin, hw, hw});
  nn::ConvParams p;
  p.out_channels = cout;
  p.kh = p.kw = k;
  p.stride = stride;
  p.pad_h = p.pad_w = pad;
  p.groups = groups;
  m.add_conv("c", p);
  m.finalize();
  return m;
}

void expect_ws_exact(Case c, const AcceleratorConfig& cfg) {
  const nn::Layer& l = c.model.layer(1);
  const FunctionalResult f =
      run_weight_stationary(l, c.input, c.weights, c.requant, cfg);
  EXPECT_EQ(f.output, c.reference) << "numerical mismatch vs reference runtime";
  const MappingResult a = map_weight_stationary(l, cfg);
  EXPECT_EQ(f.compute_cycles, a.compute_cycles) << "cycle model drift";
  EXPECT_EQ(f.counts, a.counts) << "access-count model drift";
}

TEST(WsFunctional, Standard3x3) {
  expect_ws_exact(make_case(conv_model(8, 20, 16, 3, 1, 1)),
                  AcceleratorConfig::squeezelerator());
}

TEST(WsFunctional, FirstLayerStylePacked) {
  expect_ws_exact(make_case(conv_model(3, 33, 20, 7, 2, 0)),
                  AcceleratorConfig::squeezelerator());
}

TEST(WsFunctional, Depthwise) {
  nn::Model m("dw", nn::TensorShape{6, 17, 17});
  m.add_depthwise("d", 3, 1, 1);
  m.finalize();
  expect_ws_exact(make_case(std::move(m)), AcceleratorConfig::squeezelerator());
}

TEST(WsFunctional, GroupedStrided) {
  expect_ws_exact(make_case(conv_model(8, 16, 12, 5, 2, 2, 2)),
                  AcceleratorConfig::squeezelerator());
}

TEST(WsFunctional, SeparatedFilters) {
  for (auto [kh, kw] : {std::pair{1, 3}, {3, 1}}) {
    nn::Model m("sep", nn::TensorShape{4, 18, 18});
    nn::ConvParams p;
    p.out_channels = 9;
    p.kh = kh;
    p.kw = kw;
    p.pad_h = kh / 2;
    p.pad_w = kw / 2;
    m.add_conv("c", p);
    m.finalize();
    expect_ws_exact(make_case(std::move(m)), AcceleratorConfig::squeezelerator());
  }
}

TEST(WsFunctional, FullyConnected) {
  nn::Model m("fc", nn::TensorShape{5, 6, 6});
  m.add_fc("f", 37);
  m.finalize();
  expect_ws_exact(make_case(std::move(m)), AcceleratorConfig::squeezelerator());
}

TEST(WsFunctional, ChannelsNotMultipleOfArray) {
  // 40 input channels on a 32-wide array: partial second row block.
  expect_ws_exact(make_case(conv_model(40, 9, 70, 1, 1, 0)),
                  AcceleratorConfig::squeezelerator());
}

TEST(WsFunctional, SmallArrayConfig) {
  AcceleratorConfig cfg;
  cfg.array_n = 8;
  cfg.preload_width = 8;
  cfg.drain_width = 4;
  cfg.psum_accum_words = 64;  // forces many pixel chunks
  expect_ws_exact(make_case(conv_model(12, 14, 10, 3, 1, 1)), cfg);
}

TEST(WsFunctional, NaivePsumInGbVariant) {
  AcceleratorConfig cfg = AcceleratorConfig::reference_ws();
  expect_ws_exact(make_case(conv_model(8, 20, 16, 3, 1, 1)), cfg);
}

TEST(WsFunctional, DenseWeights) {
  expect_ws_exact(make_case(conv_model(8, 12, 8, 3, 1, 1), /*sparsity=*/0.0),
                  AcceleratorConfig::squeezelerator());
}

TEST(WsFunctional, NoReluPreservesNegatives) {
  nn::Model m("t", nn::TensorShape{4, 10, 10});
  nn::ConvParams p;
  p.out_channels = 8;
  p.kh = p.kw = 3;
  p.pad_h = p.pad_w = 1;
  p.relu = false;
  m.add_conv("c", p);
  m.finalize();
  Case c = make_case(std::move(m));
  bool has_negative = false;
  for (std::int64_t i = 0; i < c.reference.size(); ++i)
    if (c.reference.data()[i] < 0) has_negative = true;
  EXPECT_TRUE(has_negative) << "test vector should exercise negative outputs";
  expect_ws_exact(std::move(c), AcceleratorConfig::squeezelerator());
}

// Property sweep: exactness over a random-ish grid of shapes and configs.
class WsFunctionalSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(WsFunctionalSweep, ExactVsMapperAndReference) {
  const auto [cin, cout, k, stride] = GetParam();
  const int hw = 13;
  if (hw < k) GTEST_SKIP();
  expect_ws_exact(make_case(conv_model(cin, hw, cout, k, stride, k / 2)),
                  AcceleratorConfig::squeezelerator());
}

INSTANTIATE_TEST_SUITE_P(ShapeGrid, WsFunctionalSweep,
                         ::testing::Combine(::testing::Values(1, 3, 33),
                                            ::testing::Values(2, 34),
                                            ::testing::Values(1, 3),
                                            ::testing::Values(1, 2)));

}  // namespace
}  // namespace sqz::sim::functional
