#include "sim/mappers.h"

#include <gtest/gtest.h>

#include <tuple>

#include "nn/model.h"
#include "runtime/weights.h"

namespace sqz::sim {
namespace {

nn::Model conv_model(int cin, int hw, int cout, int k, int stride, int pad,
                     int groups = 1) {
  nn::Model m("t", nn::TensorShape{cin, hw, hw});
  nn::ConvParams p;
  p.out_channels = cout;
  p.kh = p.kw = k;
  p.stride = stride;
  p.pad_h = p.pad_w = pad;
  p.groups = groups;
  m.add_conv("c", p);
  m.finalize();
  return m;
}

const AcceleratorConfig kCfg = AcceleratorConfig::squeezelerator();

SparsityInfo expected_sparsity(const nn::Layer& l, double s = 0.40) {
  return SparsityInfo::expected(l, s);
}

TEST(OsMapper, ZeroSkipReducesExecutedMacs) {
  const nn::Model m = conv_model(32, 20, 32, 3, 1, 1);
  const auto dense = map_output_stationary(m.layer(1), kCfg,
                                           SparsityInfo::dense(m.layer(1)));
  const auto sparse =
      map_output_stationary(m.layer(1), kCfg, expected_sparsity(m.layer(1)));
  EXPECT_EQ(dense.counts.mac_ops, m.layer(1).macs());
  EXPECT_LT(sparse.counts.mac_ops, dense.counts.mac_ops);
  EXPECT_NEAR(static_cast<double>(sparse.counts.mac_ops),
              0.6 * static_cast<double>(dense.counts.mac_ops),
              0.05 * static_cast<double>(dense.counts.mac_ops));
  EXPECT_LT(sparse.compute_cycles, dense.compute_cycles);
}

TEST(OsMapper, OutputsDrainOnce) {
  const nn::Model m = conv_model(16, 20, 24, 3, 1, 1);
  const auto r =
      map_output_stationary(m.layer(1), kCfg, expected_sparsity(m.layer(1)));
  EXPECT_EQ(r.counts.gb_writes, m.layer(1).out_shape.elems());
}

TEST(OsMapper, NarrowDrainCostsMoreCycles) {
  const nn::Model m = conv_model(64, 32, 64, 1, 1, 0);
  AcceleratorConfig wide = kCfg, narrow = kCfg;
  wide.drain_width = 32;
  narrow.drain_width = 4;
  const auto w =
      map_output_stationary(m.layer(1), wide, expected_sparsity(m.layer(1)));
  const auto n =
      map_output_stationary(m.layer(1), narrow, expected_sparsity(m.layer(1)));
  EXPECT_GT(n.compute_cycles, w.compute_cycles);
  EXPECT_EQ(n.counts.mac_ops, w.counts.mac_ops);
}

TEST(OsMapper, LargerRfReducesInputReads) {
  // The register-file tune-up: more filters share each input block.
  const nn::Model m = conv_model(64, 20, 64, 3, 1, 1);
  AcceleratorConfig rf8 = kCfg, rf16 = kCfg;
  rf8.rf_entries = 8;
  rf16.rf_entries = 16;
  const auto a =
      map_output_stationary(m.layer(1), rf8, expected_sparsity(m.layer(1)));
  const auto b =
      map_output_stationary(m.layer(1), rf16, expected_sparsity(m.layer(1)));
  EXPECT_GT(a.counts.gb_reads, b.counts.gb_reads);
}

TEST(OsMapper, SmallFeatureMapStrandsPes) {
  // 13x13 map on a 32x32 array: only 169/1024 PEs active.
  const nn::Model small = conv_model(256, 13, 256, 3, 1, 1);
  const auto r =
      map_output_stationary(small.layer(1), kCfg, expected_sparsity(small.layer(1)));
  const double util = static_cast<double>(small.layer(1).macs()) /
                      (static_cast<double>(r.compute_cycles) * kCfg.pe_count());
  EXPECT_LT(util, 0.25);
}

TEST(OsMapper, DepthwiseIsEfficientPerChannel) {
  nn::Model m("dw", nn::TensorShape{32, 64, 64});
  m.add_depthwise("d", 3, 1, 1);
  m.finalize();
  const auto os =
      map_output_stationary(m.layer(1), kCfg, expected_sparsity(m.layer(1)));
  const auto ws = map_weight_stationary(m.layer(1), kCfg);
  // Paper: DW is 19x-96x faster on OS than WS.
  const double ratio = static_cast<double>(ws.compute_cycles) /
                       static_cast<double>(os.compute_cycles);
  EXPECT_GT(ratio, 10.0);
}

TEST(OsMapper, RejectsFc) {
  nn::Model m("fc", nn::TensorShape{16, 4, 4});
  m.add_fc("f", 10);
  m.finalize();
  EXPECT_THROW(map_output_stationary(m.layer(1), kCfg,
                                     SparsityInfo::dense(m.layer(1))),
               std::invalid_argument);
}

TEST(OsMapper, MeasuredSparsityConsistentWithCounts) {
  const nn::Model m = conv_model(16, 20, 16, 3, 1, 1);
  runtime::WeightGenConfig wc;
  wc.sparsity = 0.40;
  const runtime::WeightTensor w = runtime::generate_weights(m, 1, wc);
  const auto r =
      map_output_stationary(m.layer(1), kCfg, SparsityInfo::measured(w));
  // Executed MACs = nnz * output pixels (every tile pass covers all planes).
  EXPECT_EQ(r.counts.mac_ops, w.nonzero_count() * m.layer(1).out_shape.h *
                                  m.layer(1).out_shape.w);
}

// Property sweep: dense OS executes exactly the useful MACs; sparse OS
// executes fewer; outputs always drain exactly once.
class OsShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(OsShapeSweep, Invariants) {
  const auto [cin, cout, k, stride, hw] = GetParam();
  if (hw < k) GTEST_SKIP();
  const nn::Model m = conv_model(cin, hw, cout, k, stride, k / 2);
  const auto dense = map_output_stationary(m.layer(1), kCfg,
                                           SparsityInfo::dense(m.layer(1)));
  EXPECT_EQ(dense.counts.mac_ops, m.layer(1).macs());
  EXPECT_EQ(dense.counts.gb_writes, m.layer(1).out_shape.elems());
  const auto sparse =
      map_output_stationary(m.layer(1), kCfg, expected_sparsity(m.layer(1)));
  EXPECT_LE(sparse.counts.mac_ops, dense.counts.mac_ops);
  EXPECT_LE(sparse.compute_cycles, dense.compute_cycles);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, OsShapeSweep,
    ::testing::Combine(::testing::Values(1, 3, 16, 48),   // cin
                       ::testing::Values(8, 33, 64),      // cout
                       ::testing::Values(1, 3, 5),        // kernel
                       ::testing::Values(1, 2),           // stride
                       ::testing::Values(7, 14, 40)));    // input hw

}  // namespace
}  // namespace sqz::sim
