#include "sim/dram.h"

#include <gtest/gtest.h>

namespace sqz::sim {
namespace {

AcceleratorConfig cfg() { return AcceleratorConfig::squeezelerator(); }

TEST(Dram, TransferCyclesScaleWithWords) {
  const DramModel d(cfg());
  // 16 B/cycle, 2 B/word -> 8 words per cycle.
  EXPECT_EQ(d.transfer_cycles(8), 1);
  EXPECT_EQ(d.transfer_cycles(9), 2);
  EXPECT_EQ(d.transfer_cycles(80), 10);
  EXPECT_EQ(d.transfer_cycles(0), 0);
  EXPECT_EQ(d.transfer_cycles(-5), 0);
}

TEST(Dram, ExposedFullyHiddenBehindCompute) {
  const DramModel d(cfg());
  // 800 words = 100 transfer cycles < 1000 compute -> only latency exposed.
  EXPECT_EQ(d.exposed_cycles(800, 1000), 100);
}

TEST(Dram, ExposedExcessWhenDmaBound) {
  const DramModel d(cfg());
  // 16000 words = 2000 cycles vs 500 compute -> 1500 excess + latency.
  EXPECT_EQ(d.exposed_cycles(16000, 500), 1500 + 100);
}

TEST(Dram, NoTrafficNoLatency) {
  const DramModel d(cfg());
  EXPECT_EQ(d.exposed_cycles(0, 12345), 0);
}

TEST(Dram, BandwidthKnob) {
  AcceleratorConfig c = cfg();
  c.dram_bytes_per_cycle = 32.0;
  const DramModel d(c);
  EXPECT_EQ(d.transfer_cycles(32), 2);  // 16 words/cycle now
}

TEST(Dram, LatencyKnob) {
  AcceleratorConfig c = cfg();
  c.dram_latency_cycles = 7;
  const DramModel d(c);
  EXPECT_EQ(d.exposed_cycles(8, 100), 7);
}

}  // namespace
}  // namespace sqz::sim
