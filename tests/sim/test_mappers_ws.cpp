#include "sim/mappers.h"

#include <gtest/gtest.h>

#include <tuple>

#include "nn/model.h"
#include "sim/schedule.h"

namespace sqz::sim {
namespace {

nn::Model conv_model(int cin, int hw, int cout, int k, int stride, int pad,
                     int groups = 1) {
  nn::Model m("t", nn::TensorShape{cin, hw, hw});
  nn::ConvParams p;
  p.out_channels = cout;
  p.kh = p.kw = k;
  p.stride = stride;
  p.pad_h = p.pad_w = pad;
  p.groups = groups;
  m.add_conv("c", p);
  m.finalize();
  return m;
}

const AcceleratorConfig kCfg = AcceleratorConfig::squeezelerator();

TEST(WsMapper, ExecutesExactlyUsefulMacs) {
  // WS cannot skip zeros: executed MACs == algorithmic MACs.
  const nn::Model m = conv_model(16, 20, 32, 3, 1, 1);
  const MappingResult r = map_weight_stationary(m.layer(1), kCfg);
  EXPECT_EQ(r.counts.mac_ops, m.layer(1).macs());
}

TEST(WsMapper, CyclesLowerBoundedByStreaming) {
  const nn::Model m = conv_model(32, 32, 32, 3, 1, 1);
  const MappingResult r = map_weight_stationary(m.layer(1), kCfg);
  // At least one cycle per (pixel, tap, cin-block) pass.
  EXPECT_GE(r.compute_cycles, static_cast<std::int64_t>(32 * 32) * 9);
}

TEST(WsMapper, UtilizationNeverExceedsOne) {
  for (const auto& [cin, cout, k] :
       {std::tuple{3, 96, 7}, {64, 64, 3}, {512, 1000, 1}, {32, 64, 1}}) {
    const nn::Model m = conv_model(cin, 33, cout, k, 1, 0);
    const MappingResult r = map_weight_stationary(m.layer(1), kCfg);
    const double util = static_cast<double>(r.counts.mac_ops) /
                        (static_cast<double>(r.compute_cycles) * kCfg.pe_count());
    EXPECT_LE(util, 1.0) << cin << "->" << cout << " k" << k;
  }
}

TEST(WsMapper, FewInputChannelsHurtUtilization) {
  // Conv1-style layer (3 input channels) under-uses the rows badly.
  const nn::Model narrow = conv_model(3, 64, 64, 3, 1, 1);
  const nn::Model wide = conv_model(32, 64, 64, 3, 1, 1);
  const auto util = [&](const nn::Model& m) {
    const MappingResult r = map_weight_stationary(m.layer(1), kCfg);
    return static_cast<double>(r.counts.mac_ops) /
           (static_cast<double>(r.compute_cycles) * kCfg.pe_count());
  };
  EXPECT_LT(util(narrow), util(wide) / 2);
}

TEST(WsMapper, StridedStreamsCostDouble) {
  // Same output geometry; stride 2 halves the stream rate.
  const nn::Model s1 = conv_model(32, 31, 32, 1, 1, 0);   // out 31x31
  const nn::Model s2 = conv_model(32, 61, 32, 1, 2, 0);   // out 31x31
  const auto c1 = map_weight_stationary(s1.layer(1), kCfg).compute_cycles;
  const auto c2 = map_weight_stationary(s2.layer(1), kCfg).compute_cycles;
  EXPECT_GT(c2, c1);
  EXPECT_LE(c2, 2 * c1 + 64);
}

TEST(WsMapper, TapPackingReducesPasses) {
  // A 3-channel 7x7 layer packs 2 taps per pass; cycles drop vs unpacked.
  AcceleratorConfig no_pack = kCfg;
  const nn::Model m = conv_model(3, 63, 32, 7, 1, 0);
  const auto packed = map_weight_stationary(m.layer(1), kCfg);
  // Emulate "unpacked" by a config where packing is impossible (channels
  // just above N/2).
  const nn::Model wide = conv_model(17, 63, 32, 7, 1, 0);
  const WsSchedule ws = WsSchedule::plan(wide.layer(1), no_pack);
  EXPECT_EQ(ws.tap_pack, 1);
  // The packed schedule streams ~ceil(49/2)=25 pass-groups instead of 49.
  const WsSchedule ps = WsSchedule::plan(m.layer(1), kCfg);
  EXPECT_EQ(ps.tap_groups_per_row() * ps.kh, 28);
  EXPECT_LT(packed.compute_cycles,
            static_cast<std::int64_t>(49) * 57 * 57 + 49 * 64);
}

TEST(WsMapper, DepthwiseIsCatastrophicallySlow) {
  // Paper: naive WS cannot accelerate depthwise layers (1 active column).
  nn::Model m("dw", nn::TensorShape{32, 33, 33});
  m.add_depthwise("d", 3, 1, 1);
  m.finalize();
  const MappingResult r = map_weight_stationary(m.layer(1), kCfg);
  const double util = static_cast<double>(r.counts.mac_ops) /
                      (static_cast<double>(r.compute_cycles) * kCfg.pe_count());
  EXPECT_LT(util, 0.01);
}

TEST(WsMapper, GroupedConvMacConservation) {
  const nn::Model m = conv_model(8, 16, 12, 3, 1, 1, 2);
  const MappingResult r = map_weight_stationary(m.layer(1), kCfg);
  EXPECT_EQ(r.counts.mac_ops, m.layer(1).macs());
}

TEST(WsMapper, FcLayerMapped) {
  nn::Model m("fc", nn::TensorShape{64, 6, 6});
  m.add_fc("f", 1000);
  m.finalize();
  const MappingResult r = map_weight_stationary(m.layer(1), kCfg);
  EXPECT_EQ(r.counts.mac_ops, m.layer(1).macs());
  EXPECT_GT(r.compute_cycles, 0);
}

TEST(WsMapper, PsumPlacementFlag) {
  const nn::Model m = conv_model(16, 20, 32, 3, 1, 1);
  AcceleratorConfig naive = kCfg;
  naive.ws_psums_in_gb = true;
  const MappingResult acc = map_weight_stationary(m.layer(1), kCfg);
  const MappingResult gb = map_weight_stationary(m.layer(1), naive);
  // Same cycles, same MACs; psum traffic moves from accumulator to GB.
  EXPECT_EQ(acc.compute_cycles, gb.compute_cycles);
  EXPECT_EQ(acc.counts.mac_ops, gb.counts.mac_ops);
  EXPECT_GT(acc.counts.acc_writes, 0);
  EXPECT_EQ(gb.counts.acc_writes, 0);
  EXPECT_EQ(gb.counts.gb_writes - acc.counts.gb_writes, acc.counts.acc_writes);
  EXPECT_EQ(gb.counts.gb_reads - acc.counts.gb_reads, acc.counts.acc_reads);
}

TEST(WsMapper, WeightsReadOncePerPixelChunk) {
  const nn::Model m = conv_model(32, 40, 32, 3, 1, 1);
  AcceleratorConfig big = kCfg;
  big.psum_accum_words = 1 << 20;  // one chunk
  AcceleratorConfig small = kCfg;
  small.psum_accum_words = 1024;   // many chunks -> weights re-read
  const auto one = map_weight_stationary(m.layer(1), big);
  const auto many = map_weight_stationary(m.layer(1), small);
  EXPECT_GT(many.counts.gb_reads, one.counts.gb_reads);
  EXPECT_EQ(one.counts.mac_ops, many.counts.mac_ops);
}

// Property sweep: MAC conservation over a grid of layer shapes.
class WsMacConservation
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(WsMacConservation, ExecutedEqualsUseful) {
  const auto [cin, cout, k, stride, hw] = GetParam();
  if (hw < k) GTEST_SKIP();
  const nn::Model m = conv_model(cin, hw, cout, k, stride, k / 2);
  const MappingResult r = map_weight_stationary(m.layer(1), kCfg);
  EXPECT_EQ(r.counts.mac_ops, m.layer(1).macs());
  EXPECT_GT(r.compute_cycles, 0);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, WsMacConservation,
    ::testing::Combine(::testing::Values(1, 3, 16, 48),   // cin
                       ::testing::Values(8, 33, 64),      // cout
                       ::testing::Values(1, 3, 5),        // kernel
                       ::testing::Values(1, 2),           // stride
                       ::testing::Values(7, 14, 40)));    // input hw

}  // namespace
}  // namespace sqz::sim
