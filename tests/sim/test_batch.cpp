#include <gtest/gtest.h>

#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "runtime/weights.h"
#include "sim/functional/engines.h"
#include "sim/layer_sim.h"

namespace sqz::sim {
namespace {

AcceleratorConfig with_batch(int b) {
  AcceleratorConfig c = AcceleratorConfig::squeezelerator();
  c.batch = b;
  return c;
}

TEST(Batch, ValidateRejectsNonPositive) {
  AcceleratorConfig c = AcceleratorConfig::squeezelerator();
  c.batch = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Batch, UsefulMacsScaleLinearly) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  const auto b1 = sched::simulate_network(m, with_batch(1));
  const auto b4 = sched::simulate_network(m, with_batch(4));
  EXPECT_EQ(b4.total_useful_macs(), 4 * b1.total_useful_macs());
}

TEST(Batch, WeightsCrossDramOncePerBatch) {
  nn::Model m("fc", nn::TensorShape{64, 4, 4});
  m.add_fc("f", 512);
  m.finalize();
  const auto b1 = simulate_layer(m, 1, with_batch(1), Dataflow::WeightStationary);
  const auto b8 = simulate_layer(m, 1, with_batch(8), Dataflow::WeightStationary);
  const std::int64_t weights = m.layer(1).params();
  const std::int64_t act1 = b1.counts.dram_words - weights;
  const std::int64_t act8 = b8.counts.dram_words - weights;
  EXPECT_EQ(act8, 8 * act1);  // activations scale; weights do not
}

TEST(Batch, WeightBoundNetworkGainsPerImage) {
  // Amortized weight traffic helps AlexNet's per-image latency outright.
  const nn::Model m = nn::zoo::alexnet();
  const auto b1 = sched::simulate_network(m, with_batch(1));
  const auto b8 = sched::simulate_network(m, with_batch(8));
  EXPECT_LT(b8.total_cycles(), 8 * b1.total_cycles());
}

TEST(Batch, BatchingCostsBufferResidency) {
  // The flip side the paper's embedded operating point avoids: batched
  // activations are batch x larger, so tensors that were GB-resident at
  // batch 1 spill to DRAM. On activation-bound SqueezeNet v1.1 the spill
  // roughly cancels the weight amortization (within a few percent either
  // way) instead of producing AlexNet-like gains.
  const nn::Model m = nn::zoo::squeezenet_v11();
  const auto b1 = sched::simulate_network(m, with_batch(1));
  const auto b8 = sched::simulate_network(m, with_batch(8));
  const double per_image_ratio =
      static_cast<double>(b8.total_cycles()) / (8.0 * b1.total_cycles());
  EXPECT_GT(per_image_ratio, 0.90);
  EXPECT_LT(per_image_ratio, 1.10);
  // And the spill is visible as extra per-image activation DRAM traffic.
  const auto act_traffic = [&](const sim::NetworkResult& r, int batch) {
    return (r.total_counts().dram_words -
            m.total_params()) /  // weights counted once per batch
           static_cast<double>(batch);
  };
  EXPECT_GT(act_traffic(b8, 8), act_traffic(b1, 1));
}

TEST(Batch, AlexNetGainsMostFromBatching) {
  // The paper's batch-1 remark: AlexNet's FC layers are pure weight
  // streaming, so batching helps it far more than SqueezeNext.
  const auto gain = [&](const nn::Model& m) {
    const auto b1 = sched::simulate_network(m, with_batch(1));
    const auto b16 = sched::simulate_network(m, with_batch(16));
    return static_cast<double>(b1.total_cycles()) /
           (static_cast<double>(b16.total_cycles()) / 16.0);
  };
  EXPECT_GT(gain(nn::zoo::alexnet()), gain(nn::zoo::squeezenext()));
  EXPECT_GT(gain(nn::zoo::alexnet()), 1.5);
}

TEST(Batch, WsStreamsBatchPixels) {
  nn::Model m("c", nn::TensorShape{32, 16, 16});
  m.add_conv("c", 32, 3, 1, 1);
  m.finalize();
  const auto b1 = simulate_layer(m, 1, with_batch(1), Dataflow::WeightStationary);
  const auto b4 = simulate_layer(m, 1, with_batch(4), Dataflow::WeightStationary);
  // 4x the MACs, but less than 4x the cycles (preload amortized).
  EXPECT_EQ(b4.counts.mac_ops, 4 * b1.counts.mac_ops);
  EXPECT_LT(b4.compute_cycles, 4 * b1.compute_cycles);
}

TEST(Batch, OsRepeatsPerImage) {
  nn::Model m("c", nn::TensorShape{32, 16, 16});
  m.add_conv("c", 32, 3, 1, 1);
  m.finalize();
  const auto b1 = simulate_layer(m, 1, with_batch(1), Dataflow::OutputStationary);
  const auto b4 = simulate_layer(m, 1, with_batch(4), Dataflow::OutputStationary);
  EXPECT_EQ(b4.compute_cycles, 4 * b1.compute_cycles);
  EXPECT_EQ(b4.counts.mac_ops, 4 * b1.counts.mac_ops);
}

TEST(Batch, FunctionalEmulatorsRejectBatches) {
  nn::Model m("c", nn::TensorShape{4, 8, 8});
  m.add_conv("c", 4, 3, 1, 1);
  m.finalize();
  runtime::WeightGenConfig wc;
  const auto w = runtime::generate_weights(m, 1, wc);
  const auto in = runtime::generate_input(m, 1);
  const runtime::Requant rq;
  EXPECT_THROW(functional::run_weight_stationary(m.layer(1), in, w, rq,
                                                 with_batch(2)),
               std::invalid_argument);
  EXPECT_THROW(functional::run_output_stationary(m.layer(1), in, w, rq,
                                                 with_batch(2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace sqz::sim
