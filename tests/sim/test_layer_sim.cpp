#include "sim/layer_sim.h"

#include <gtest/gtest.h>

#include "nn/model.h"
#include "sim/dram.h"

namespace sqz::sim {
namespace {

const AcceleratorConfig kCfg = AcceleratorConfig::squeezelerator();

nn::Model simple_net() {
  nn::Model m("net", nn::TensorShape{8, 16, 16});
  m.add_conv("conv", 16, 3, 1, 1);     // 1
  m.add_maxpool("pool", 2, 2);         // 2
  m.add_relu("relu");                  // 3
  m.add_global_avgpool("gap");         // 4
  m.add_fc("fc", 10);                  // 5
  m.finalize();
  return m;
}

TEST(LayerSim, ConvOnPeArray) {
  const nn::Model m = simple_net();
  const LayerResult r =
      simulate_layer(m, 1, kCfg, Dataflow::WeightStationary);
  EXPECT_TRUE(r.on_pe_array);
  EXPECT_EQ(r.dataflow, Dataflow::WeightStationary);
  EXPECT_EQ(r.useful_macs, m.layer(1).macs());
  EXPECT_GT(r.compute_cycles, 0);
}

TEST(LayerSim, TotalCyclesComposition) {
  // total = max(compute, dma transfer) + dram latency when traffic exists.
  const nn::Model m = simple_net();
  const LayerResult r =
      simulate_layer(m, 1, kCfg, Dataflow::WeightStationary);
  const DramModel dram(kCfg);
  EXPECT_EQ(r.dram_cycles, dram.transfer_cycles(r.counts.dram_words));
  EXPECT_EQ(r.total_cycles,
            std::max(r.compute_cycles, r.dram_cycles) + kCfg.dram_latency_cycles);
}

TEST(LayerSim, PlacementControlsDramTraffic) {
  const nn::Model m = simple_net();
  const std::int64_t in_words = m.layer(1).in_shape.elems();
  const std::int64_t out_words = m.layer(1).out_shape.elems();
  const std::int64_t weights = m.layer(1).params();

  TensorPlacement spill;  // everything through DRAM
  const LayerResult both = simulate_layer(m, 1, kCfg, Dataflow::WeightStationary,
                                          spill);
  EXPECT_EQ(both.counts.dram_words, weights + in_words + out_words);

  TensorPlacement resident{.input_in_gb = true, .output_in_gb = true};
  const LayerResult none = simulate_layer(m, 1, kCfg, Dataflow::WeightStationary,
                                          resident);
  EXPECT_EQ(none.counts.dram_words, weights);  // weights always stream

  TensorPlacement in_only{.input_in_gb = true, .output_in_gb = false};
  const LayerResult out_spill = simulate_layer(
      m, 1, kCfg, Dataflow::WeightStationary, in_only);
  EXPECT_EQ(out_spill.counts.dram_words, weights + out_words);
}

TEST(LayerSim, FcAlwaysWeightStationary) {
  const nn::Model m = simple_net();
  const LayerResult r =
      simulate_layer(m, 5, kCfg, Dataflow::OutputStationary);
  EXPECT_EQ(r.dataflow, Dataflow::WeightStationary);
}

TEST(LayerSim, FcIsDramBound) {
  // Batch-1 FC: weight streaming dominates (the paper's AlexNet story).
  nn::Model m("fc", nn::TensorShape{256, 6, 6});
  m.add_fc("f", 4096);
  m.finalize();
  const LayerResult r =
      simulate_layer(m, 1, kCfg, Dataflow::WeightStationary);
  EXPECT_GT(r.dram_cycles, r.compute_cycles);
}

TEST(LayerSim, SimdLayersOffArray) {
  const nn::Model m = simple_net();
  for (int idx : {2, 3, 4}) {
    const LayerResult r =
        simulate_layer(m, idx, kCfg, Dataflow::WeightStationary);
    EXPECT_FALSE(r.on_pe_array) << idx;
    EXPECT_EQ(r.useful_macs, 0);
    EXPECT_GT(r.compute_cycles, 0);
    EXPECT_EQ(r.counts.mac_ops, 0);
  }
}

TEST(LayerSim, PoolCyclesScaleWithWindow) {
  nn::Model m("p", nn::TensorShape{8, 32, 32});
  m.add_maxpool("p2", 2, 2);      // 8*16*16*4 ops
  m.add_maxpool("p3", 3, 1, 1);   // larger window on 16x16
  m.finalize();
  const LayerResult p2 = simulate_layer(m, 1, kCfg, Dataflow::WeightStationary);
  const std::int64_t ops2 = 8LL * 16 * 16 * 4;
  EXPECT_EQ(p2.compute_cycles, (ops2 + kCfg.simd_lanes - 1) / kCfg.simd_lanes);
}

TEST(LayerSim, ConcatIsFreeOnChip) {
  nn::Model m("c", nn::TensorShape{4, 8, 8});
  const int a = m.add_conv("a", 4, 1, 1, 0);
  const int b = m.add_conv("b", 4, 1, 1, 0, 0);
  m.add_concat("cat", {a, b});
  m.finalize();
  TensorPlacement resident{.input_in_gb = true, .output_in_gb = true};
  const LayerResult r =
      simulate_layer(m, 3, kCfg, Dataflow::WeightStationary, resident);
  EXPECT_EQ(r.compute_cycles, 0);
  EXPECT_EQ(r.counts.dram_words, 0);
  EXPECT_EQ(r.counts.gb_reads, 0);
}

TEST(LayerSim, DmaTrafficRaisesGbAccesses) {
  const nn::Model m = simple_net();
  TensorPlacement resident{.input_in_gb = true, .output_in_gb = true};
  TensorPlacement spill;
  const auto res = simulate_layer(m, 1, kCfg, Dataflow::WeightStationary, resident);
  const auto sp = simulate_layer(m, 1, kCfg, Dataflow::WeightStationary, spill);
  // Spilled tensors transit the GB on their way to/from DRAM.
  EXPECT_GT(sp.counts.gb_writes, res.counts.gb_writes);
  EXPECT_GT(sp.counts.gb_reads, res.counts.gb_reads);
}

TEST(LayerSim, RejectsInputLayer) {
  const nn::Model m = simple_net();
  EXPECT_THROW(simulate_layer(m, 0, kCfg, Dataflow::WeightStationary),
               std::invalid_argument);
}

TEST(LayerSim, EffectiveDataflowRules) {
  const nn::Model m = simple_net();
  AcceleratorConfig ws_only = kCfg, os_only = kCfg;
  ws_only.support = DataflowSupport::WsOnly;
  os_only.support = DataflowSupport::OsOnly;
  // Conv obeys the forced support.
  EXPECT_EQ(effective_dataflow(m.layer(1), ws_only, Dataflow::OutputStationary),
            Dataflow::WeightStationary);
  EXPECT_EQ(effective_dataflow(m.layer(1), os_only, Dataflow::WeightStationary),
            Dataflow::OutputStationary);
  EXPECT_EQ(effective_dataflow(m.layer(1), kCfg, Dataflow::OutputStationary),
            Dataflow::OutputStationary);
  // FC is always WS even on the OS-only reference.
  EXPECT_EQ(effective_dataflow(m.layer(5), os_only, Dataflow::OutputStationary),
            Dataflow::WeightStationary);
}

TEST(LayerSim, UtilizationBounded) {
  const nn::Model m = simple_net();
  const LayerResult r = simulate_layer(m, 1, kCfg, Dataflow::OutputStationary);
  EXPECT_GT(r.utilization(kCfg.pe_count()), 0.0);
  EXPECT_LE(r.utilization(kCfg.pe_count()), 1.0);
}

}  // namespace
}  // namespace sqz::sim
