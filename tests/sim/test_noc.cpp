#include "sim/noc.h"

#include <gtest/gtest.h>

#include "nn/model.h"
#include "nn/zoo/zoo.h"

namespace sqz::sim {
namespace {

const AcceleratorConfig kCfg = AcceleratorConfig::squeezelerator();

nn::Model conv_net(int cin, int hw, int cout, int k, int stride = 1) {
  nn::Model m("w", nn::TensorShape{cin, hw, hw});
  m.add_conv("c", cout, k, stride, k / 2);
  m.finalize();
  return m;
}

WireTraffic wires(const nn::Model& m, Dataflow df,
                  const AcceleratorConfig& cfg = kCfg) {
  return analyze_wire_traffic(m.layer(1), cfg, df,
                              SparsityInfo::expected(m.layer(1), 0.40));
}

TEST(Noc, WsShiftHopsEqualMacs) {
  // Every WS MAC forwards its product one chain link.
  const nn::Model m = conv_net(16, 20, 32, 3);
  const WireTraffic w = wires(m, Dataflow::WeightStationary);
  EXPECT_EQ(w.shift_hops, m.layer(1).macs());
}

TEST(Noc, WsDrainsOneHopPerPsumPass) {
  // Column sums exit at the chain bottom: one hop per streamed psum.
  const nn::Model m = conv_net(32, 16, 32, 1);
  const WireTraffic w = wires(m, Dataflow::WeightStationary);
  // One tap, one cin block: one pass -> one psum per (pixel, column).
  EXPECT_EQ(w.drain_hops, m.layer(1).out_shape.elems());
}

TEST(Noc, OsDrainDistanceGrowsWithTileHeight) {
  // A full 32-row tile drains outputs across ~16 hops on average; an 8-row
  // tile (same outputs, smaller array) across ~4.
  const nn::Model m = conv_net(8, 32, 8, 1);
  AcceleratorConfig small = kCfg;
  small.array_n = 8;
  small.preload_width = 8;
  small.drain_width = 8;
  const WireTraffic big = wires(m, Dataflow::OutputStationary, kCfg);
  const WireTraffic tiny = wires(m, Dataflow::OutputStationary, small);
  const auto per_output = [&](const WireTraffic& w) {
    return static_cast<double>(w.drain_hops) /
           static_cast<double>(m.layer(1).out_shape.elems());
  };
  EXPECT_GT(per_output(big), 2.0 * per_output(tiny));
}

TEST(Noc, OsShiftHopsTrackExecutedMacs) {
  const nn::Model m = conv_net(16, 32, 16, 3);
  const WireTraffic w = wires(m, Dataflow::OutputStationary);
  // One mesh hop per executed (zero-skipped) MAC.
  const double expected = 0.6 * static_cast<double>(m.layer(1).macs());
  EXPECT_NEAR(static_cast<double>(w.shift_hops), expected, 0.05 * expected);
}

TEST(Noc, BroadcastCostIndependentOfConsumers) {
  // A WS row broadcast energizes its span whether 2 or 32 columns listen;
  // per-MAC wire cost therefore *rises* when columns idle.
  const nn::Model wide = conv_net(32, 16, 32, 1);
  const nn::Model narrow = conv_net(32, 16, 4, 1);
  const double wide_hpm = wires(wide, Dataflow::WeightStationary)
                              .hops_per_mac(wide.layer(1).macs());
  const double narrow_hpm = wires(narrow, Dataflow::WeightStationary)
                                .hops_per_mac(narrow.layer(1).macs());
  EXPECT_LE(wide_hpm, narrow_hpm * 1.01);
}

TEST(Noc, FcAlwaysRoutesWs) {
  nn::Model m("fc", nn::TensorShape{16, 4, 4});
  m.add_fc("f", 64);
  m.finalize();
  const WireTraffic ws = analyze_wire_traffic(
      m.layer(1), kCfg, Dataflow::WeightStationary,
      SparsityInfo::expected(m.layer(1), 0.4));
  const WireTraffic os = analyze_wire_traffic(
      m.layer(1), kCfg, Dataflow::OutputStationary,
      SparsityInfo::expected(m.layer(1), 0.4));
  EXPECT_EQ(ws.total_hops(), os.total_hops());  // both the WS route
}

TEST(Noc, HopsPerMacIsFinite) {
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    for (int i = 1; i < m.layer_count(); ++i) {
      if (!m.layer(i).is_conv()) continue;
      for (Dataflow df :
           {Dataflow::WeightStationary, Dataflow::OutputStationary}) {
        const WireTraffic w = analyze_wire_traffic(
            m.layer(i), kCfg, df, SparsityInfo::expected(m.layer(i), 0.40));
        const double hpm = w.hops_per_mac(m.layer(i).macs());
        EXPECT_GT(hpm, 0.0) << m.name() << " " << m.layer(i).name;
        EXPECT_LT(hpm, 64.0) << m.name() << " " << m.layer(i).name;
      }
    }
  }
}

}  // namespace
}  // namespace sqz::sim
