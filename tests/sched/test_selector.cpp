#include "sched/selector.h"

#include <gtest/gtest.h>

#include "nn/zoo/zoo.h"
#include "sched/residency.h"

namespace sqz::sched {
namespace {

const sim::AcceleratorConfig kHybrid = sim::AcceleratorConfig::squeezelerator();

std::vector<LayerChoice> choose(const nn::Model& m,
                                const sim::AcceleratorConfig& cfg,
                                Objective obj = Objective::Cycles) {
  return select_dataflows(m, cfg, plan_residency(m, cfg), obj);
}

TEST(Selector, PicksFasterDataflowPerLayer) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  const ResidencyPlan plan = plan_residency(m, kHybrid);
  for (const LayerChoice& c : choose(m, kHybrid)) {
    const nn::Layer& l = m.layer(c.layer_idx);
    if (!l.is_conv()) continue;
    const auto placement = plan.placement_for(m, c.layer_idx);
    const auto ws = sim::simulate_layer(m, c.layer_idx, kHybrid,
                                        sim::Dataflow::WeightStationary, placement);
    const auto os = sim::simulate_layer(m, c.layer_idx, kHybrid,
                                        sim::Dataflow::OutputStationary, placement);
    EXPECT_EQ(c.chosen.total_cycles, std::min(ws.total_cycles, os.total_cycles))
        << l.name;
  }
}

TEST(Selector, DepthwiseGoesOutputStationary) {
  const nn::Model m = nn::zoo::mobilenet();
  for (const LayerChoice& c : choose(m, kHybrid)) {
    if (m.layer(c.layer_idx).is_depthwise())
      EXPECT_EQ(c.dataflow, sim::Dataflow::OutputStationary)
          << m.layer(c.layer_idx).name;
  }
}

TEST(Selector, FirstConvGoesOutputStationary) {
  // Paper Figure 1: "the performance of the first layer is noticeably
  // improved" because the hybrid picks OS for conv1.
  const nn::Model m = nn::zoo::squeezenet_v10();
  const auto choices = choose(m, kHybrid);
  EXPECT_EQ(choices.front().dataflow, sim::Dataflow::OutputStationary);
}

TEST(Selector, ForcedConfigsHaveNoChoice) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  sim::AcceleratorConfig ws = kHybrid, os = kHybrid;
  ws.support = sim::DataflowSupport::WsOnly;
  os.support = sim::DataflowSupport::OsOnly;
  for (const LayerChoice& c : choose(m, ws))
    if (m.layer(c.layer_idx).is_conv())
      EXPECT_EQ(c.dataflow, sim::Dataflow::WeightStationary);
  for (const LayerChoice& c : choose(m, os))
    if (m.layer(c.layer_idx).is_conv())
      EXPECT_EQ(c.dataflow, sim::Dataflow::OutputStationary);
}

TEST(Selector, FcAlwaysWeightStationary) {
  const nn::Model m = nn::zoo::alexnet();
  sim::AcceleratorConfig os = kHybrid;
  os.support = sim::DataflowSupport::OsOnly;
  for (const LayerChoice& c : choose(m, os))
    if (m.layer(c.layer_idx).is_fc())
      EXPECT_EQ(c.dataflow, sim::Dataflow::WeightStationary);
}

TEST(Selector, CoversEveryNonInputLayer) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  const auto choices = choose(m, kHybrid);
  ASSERT_EQ(static_cast<int>(choices.size()), m.layer_count() - 1);
  for (std::size_t i = 0; i < choices.size(); ++i)
    EXPECT_EQ(choices[i].layer_idx, static_cast<int>(i) + 1);
}

TEST(Selector, EnergyObjectiveMinimizesEnergy) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  const auto by_cycles = choose(m, kHybrid, Objective::Cycles);
  const auto by_energy = choose(m, kHybrid, Objective::Energy);
  double e_cycles = 0, e_energy = 0;
  for (const auto& c : by_cycles)
    e_cycles += energy::energy_of(c.chosen.counts).total();
  for (const auto& c : by_energy)
    e_energy += energy::energy_of(c.chosen.counts).total();
  EXPECT_LE(e_energy, e_cycles);
}

}  // namespace
}  // namespace sqz::sched
