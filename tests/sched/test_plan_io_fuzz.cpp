// Hostile-input wall for compiled-plan artifacts (sched/plan_io.h), in the
// style of nn/test_serialize_fuzz.cpp: every mutation of a valid artifact —
// truncation at every byte boundary, a flip of any single byte, hostile
// count and length fields, garbage and empty files — must make
// deserialize_plan throw a structured PlanError. Never a crash, never a
// hang, never a half-decoded Program.
//
// The layout constants here mirror docs/PLANS.md; if they drift the
// targeted-offset tests fail loudly rather than silently testing nothing.
#include "sched/plan_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "nn/zoo/zoo.h"
#include "util/hash.h"

namespace sqz::sched {
namespace {

// Header layout (docs/PLANS.md): magic[8] | u32 version | u64 payload_len |
// u64 checksum | payload.
constexpr std::size_t kMagicBytes = 8;
constexpr std::size_t kVersionOffset = 8;
constexpr std::size_t kPayloadLenOffset = 12;
constexpr std::size_t kChecksumOffset = 20;
constexpr std::size_t kHeaderBytes = 28;

std::string valid_plan_bytes() {
  static const std::string bytes = serialize_plan(
      compile_plan(nn::zoo::tiny_darknet(),
                   sim::AcceleratorConfig::squeezelerator(), {}));
  return bytes;
}

// Every rejection must be a PlanError; anything else (std::bad_alloc from a
// hostile count, std::out_of_range from a missed bound, a segfault) fails.
void expect_rejected(const std::string& bytes, const std::string& what) {
  try {
    (void)deserialize_plan(bytes);
    FAIL() << what << ": deserialized instead of throwing";
  } catch (const PlanError&) {
    // Structured failure is the property; the code may vary by mutation.
  } catch (const std::exception& e) {
    FAIL() << what << ": threw " << e.what() << " instead of a PlanError";
  }
}

void patch_u32(std::string& bytes, std::size_t offset, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    bytes[offset + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
}

// Re-stamp the stored checksum after a deliberate payload edit, so the test
// reaches the grammar checks *behind* the checksum wall.
void restamp_checksum(std::string& bytes) {
  const std::uint64_t sum =
      util::fnv1a64(std::string_view(bytes).substr(kHeaderBytes));
  for (int i = 0; i < 8; ++i)
    bytes[kChecksumOffset + static_cast<std::size_t>(i)] =
        static_cast<char>((sum >> (8 * i)) & 0xff);
}

TEST(PlanFuzz, LayoutConstantsMatchTheFormat) {
  const std::string bytes = valid_plan_bytes();
  ASSERT_GT(bytes.size(), kHeaderBytes);
  ASSERT_EQ(bytes.substr(0, kMagicBytes), "SQZPLAN1");
  // Round-trip sanity: an unmutated copy must decode.
  EXPECT_NO_THROW((void)deserialize_plan(bytes));
  // The checksum re-stamp helper must reproduce the stored checksum.
  std::string restamped = bytes;
  restamp_checksum(restamped);
  EXPECT_EQ(restamped, bytes);
}

TEST(PlanFuzz, EveryTruncationFailsClosed) {
  const std::string bytes = valid_plan_bytes();
  for (std::size_t len = 0; len < bytes.size(); ++len)
    expect_rejected(bytes.substr(0, len),
                    "truncation to " + std::to_string(len) + " bytes");
}

TEST(PlanFuzz, EverySingleByteFlipFailsClosed) {
  const std::string bytes = valid_plan_bytes();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    // Header fields are each validated; payload bytes are covered by the
    // checksum. There is no byte whose flip goes unnoticed.
    expect_rejected(mutated, "bit flip at offset " + std::to_string(i));
  }
}

TEST(PlanFuzz, TrailingGarbageFailsClosed) {
  expect_rejected(valid_plan_bytes() + "x", "one trailing byte");
  expect_rejected(valid_plan_bytes() + std::string(4096, '\0'),
                  "a page of trailing zeros");
}

TEST(PlanFuzz, EmptyAndGarbageFilesFailClosed) {
  expect_rejected("", "empty file");
  expect_rejected(std::string(1, '\0'), "single NUL");
  expect_rejected("SQZPLAN", "partial magic");
  expect_rejected("not a plan file at all, just text", "text file");
  expect_rejected(std::string(kHeaderBytes, '\0'), "all-zero header");
  std::mt19937 rng(20260811);
  for (int i = 0; i < 64; ++i) {
    std::string junk(std::uniform_int_distribution<std::size_t>(1, 512)(rng),
                     '\0');
    for (char& c : junk)
      c = static_cast<char>(std::uniform_int_distribution<int>(0, 255)(rng));
    expect_rejected(junk, "random garbage " + std::to_string(i));
  }
}

TEST(PlanFuzz, WrongVersionIsRefusedByName) {
  std::string bytes = valid_plan_bytes();
  patch_u32(bytes, kVersionOffset, kPlanFormatVersion + 1);
  try {
    (void)deserialize_plan(bytes);
    FAIL();
  } catch (const PlanError& e) {
    EXPECT_EQ(e.code(), PlanErrorCode::BadVersion);
    EXPECT_NE(std::string(e.what()).find("docs/PLANS.md"), std::string::npos)
        << "a version error must point at the format history: " << e.what();
  }
}

TEST(PlanFuzz, LyingPayloadLengthIsTruncation) {
  std::string bytes = valid_plan_bytes();
  patch_u32(bytes, kPayloadLenOffset, 0xffffffffu);  // promises ~4 GiB
  try {
    (void)deserialize_plan(bytes);
    FAIL();
  } catch (const PlanError& e) {
    EXPECT_EQ(e.code(), PlanErrorCode::Truncated);
  }
}

TEST(PlanFuzz, CorruptPayloadIsAChecksumMismatch) {
  std::string bytes = valid_plan_bytes();
  bytes[bytes.size() / 2] ^= 0x40;  // deep inside the payload
  try {
    (void)deserialize_plan(bytes);
    FAIL();
  } catch (const PlanError& e) {
    EXPECT_EQ(e.code(), PlanErrorCode::ChecksumMismatch);
  }
}

// Hostile counts with a *valid* checksum: an attacker who controls the file
// controls the checksum too, so the grammar behind it must hold the line —
// bounded allocation, structured rejection.
TEST(PlanFuzz, HostileCommandCountBehindAValidChecksumIsMalformed) {
  const std::string valid = valid_plan_bytes();
  // Locate command_count from the format, not by scanning: payload is
  // u64 model_hash, (u32 len + name), config (11*4 + 2*8 + 3), options (5).
  const std::string model_name = nn::zoo::tiny_darknet().name();
  const std::size_t count_offset =
      kHeaderBytes + 8 + 4 + model_name.size() + (11 * 4 + 2 * 8 + 3) + 5;
  ASSERT_LT(count_offset + 4, valid.size()) << "layout drifted";

  for (const std::uint32_t hostile :
       {std::uint32_t{0xffffffffu}, std::uint32_t{2000000000u},
        std::uint32_t{100001u}}) {
    std::string bytes = valid;
    patch_u32(bytes, count_offset, hostile);
    restamp_checksum(bytes);
    try {
      (void)deserialize_plan(bytes);
      FAIL() << "count " << hostile;
    } catch (const PlanError& e) {
      EXPECT_EQ(e.code(), PlanErrorCode::Malformed) << "count " << hostile;
    }
  }
  // A small-but-wrong count is also caught: the payload no longer ends at
  // the last command.
  std::string bytes = valid;
  patch_u32(bytes, count_offset, 1);
  restamp_checksum(bytes);
  expect_rejected(bytes, "undercount with valid checksum");
}

TEST(PlanFuzz, HostileStringLengthBehindAValidChecksumIsMalformed) {
  std::string bytes = valid_plan_bytes();
  // The model-name length field sits right after the model hash.
  patch_u32(bytes, kHeaderBytes + 8, 0xfffffff0u);
  restamp_checksum(bytes);
  try {
    (void)deserialize_plan(bytes);
    FAIL();
  } catch (const PlanError& e) {
    EXPECT_EQ(e.code(), PlanErrorCode::Malformed);
  }
}

TEST(PlanFuzz, SeededRandomMutationsNeverCrash) {
  const std::string valid = valid_plan_bytes();
  std::mt19937 rng(20260812);
  for (int i = 0; i < 256; ++i) {
    std::string bytes = valid;
    const int edits = std::uniform_int_distribution<int>(1, 8)(rng);
    for (int e = 0; e < edits; ++e) {
      const std::size_t at =
          std::uniform_int_distribution<std::size_t>(0, bytes.size() - 1)(rng);
      bytes[at] =
          static_cast<char>(std::uniform_int_distribution<int>(0, 255)(rng));
    }
    if (std::uniform_int_distribution<int>(0, 3)(rng) == 0)
      restamp_checksum(bytes);  // let some mutants through to the grammar
    if (bytes == valid) continue;
    try {
      (void)deserialize_plan(bytes);
      // A mutant that still decodes must have only touched bytes the format
      // round-trips faithfully — re-serialization must reproduce it, and
      // the result must be a *validated* program. (Possible only for
      // checksum-restamped mutants whose edits landed on representable
      // values.)
      const PlanArtifact artifact = deserialize_plan(bytes);
      EXPECT_NO_THROW(artifact.program.validate()) << "mutant " << i;
    } catch (const PlanError&) {
      // Structured rejection: the expected outcome.
    } catch (const std::exception& e) {
      FAIL() << "mutant " << i << " threw " << e.what()
             << " instead of a PlanError";
    }
  }
}

}  // namespace
}  // namespace sqz::sched
