#include "sched/fusion.h"

#include <gtest/gtest.h>

#include "energy/model.h"
#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"

namespace sqz::sched {
namespace {

TEST(Fusion, FindsConvPoolPairs) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  const auto fusions = find_pool_fusions(m);
  // conv1->pool1 fuses; pool4/pool8 follow concats, not convs.
  ASSERT_EQ(fusions.size(), 1u);
  EXPECT_EQ(m.layer(fusions[0].conv_idx).name, "conv1");
  EXPECT_EQ(m.layer(fusions[0].pool_idx).name, "pool1");
}

TEST(Fusion, RequiresSoleConsumer) {
  nn::Model m("shared", nn::TensorShape{4, 16, 16});
  const int c = m.add_conv("c", 8, 3, 1, 1);
  m.add_maxpool("p", 2, 2, c);
  m.add_conv("branch", 8, 1, 1, 0, c);  // second consumer of c
  m.finalize();
  EXPECT_TRUE(find_pool_fusions(m).empty());
}

TEST(Fusion, PoolAfterConcatDoesNotFuse) {
  nn::Model m("cat", nn::TensorShape{4, 16, 16});
  const int a = m.add_conv("a", 4, 1, 1, 0);
  const int b = m.add_conv("b", 4, 1, 1, 0, 0);
  const int cat = m.add_concat("cat", {a, b});
  m.add_maxpool("p", 2, 2, cat);
  m.finalize();
  EXPECT_TRUE(find_pool_fusions(m).empty());
}

TEST(Fusion, AvgPoolFusesToo) {
  nn::Model m("avg", nn::TensorShape{4, 16, 16});
  m.add_conv("c", 8, 3, 1, 1);
  m.add_avgpool("p", 2, 2);
  m.finalize();
  EXPECT_EQ(find_pool_fusions(m).size(), 1u);
}

TEST(Fusion, ReducesCyclesAndTraffic) {
  // SqueezeNet conv1 spills its 2.3 MB output; fusing pool1 into the drain
  // cuts the spilled tensor ~4x.
  const nn::Model m = nn::zoo::squeezenet_v10();
  const auto cfg = sim::AcceleratorConfig::squeezelerator();
  SimulationOptions plain, fused;
  fused.fuse_pool_drain = true;
  const auto base = simulate_network(m, cfg, plain);
  const auto opt = simulate_network(m, cfg, fused);
  EXPECT_LT(opt.total_cycles(), base.total_cycles());
  EXPECT_LT(opt.total_counts().dram_words, base.total_counts().dram_words);
  EXPECT_LT(opt.total_counts().gb_writes, base.total_counts().gb_writes);
  EXPECT_LT(energy::network_energy(opt).total(),
            energy::network_energy(base).total());
}

TEST(Fusion, FusedPoolLayerCostsNothing) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  SimulationOptions fused;
  fused.fuse_pool_drain = true;
  const auto r = simulate_network(
      m, sim::AcceleratorConfig::squeezelerator(), fused);
  bool saw_fused = false;
  for (const auto& l : r.layers) {
    if (l.layer_name.find("(fused)") != std::string::npos) {
      saw_fused = true;
      EXPECT_EQ(l.total_cycles, 0);
      EXPECT_EQ(l.counts.dram_words, 0);
    }
    if (l.layer_name == "conv1+pool") {
      // The conv's stored output is the pooled tensor.
      EXPECT_LT(l.counts.dram_words,
                m.layer(1).params() + m.layer(1).in_shape.elems() +
                    m.layer(1).out_shape.elems());
    }
  }
  EXPECT_TRUE(saw_fused);
}

TEST(Fusion, NeverHelpsNetworksWithoutPairs) {
  // SqueezeNext pools only after conv1... check: if no fusions, results match.
  nn::Model m("nopool", nn::TensorShape{8, 16, 16});
  m.add_conv("a", 8, 3, 1, 1);
  m.add_conv("b", 8, 3, 1, 1);
  m.finalize();
  const auto cfg = sim::AcceleratorConfig::squeezelerator();
  SimulationOptions plain, fused;
  fused.fuse_pool_drain = true;
  EXPECT_EQ(simulate_network(m, cfg, plain).total_cycles(),
            simulate_network(m, cfg, fused).total_cycles());
}

TEST(Fusion, ComposesWithTimeline) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  SimulationOptions opt;
  opt.fuse_pool_drain = true;
  opt.tile_timeline = true;
  const auto r =
      simulate_network(m, sim::AcceleratorConfig::squeezelerator(), opt);
  EXPECT_GT(r.total_cycles(), 0);
  EXPECT_EQ(r.total_useful_macs(), m.total_macs());
}

}  // namespace
}  // namespace sqz::sched
