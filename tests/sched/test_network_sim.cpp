#include "sched/network_sim.h"

#include <gtest/gtest.h>

#include "nn/zoo/zoo.h"

namespace sqz::sched {
namespace {

const sim::AcceleratorConfig kCfg = sim::AcceleratorConfig::squeezelerator();

TEST(NetworkSim, TotalsAreLayerSums) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  const sim::NetworkResult r = simulate_network(m, kCfg);
  std::int64_t cycles = 0, macs = 0;
  sim::AccessCounts counts;
  for (const auto& l : r.layers) {
    cycles += l.total_cycles;
    macs += l.useful_macs;
    counts += l.counts;
  }
  EXPECT_EQ(r.total_cycles(), cycles);
  EXPECT_EQ(r.total_useful_macs(), macs);
  EXPECT_EQ(r.total_counts(), counts);
}

TEST(NetworkSim, UsefulMacsMatchModel) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  const sim::NetworkResult r = simulate_network(m, kCfg);
  EXPECT_EQ(r.total_useful_macs(), m.total_macs());
}

TEST(NetworkSim, OneResultPerNonInputLayer) {
  const nn::Model m = nn::zoo::tiny_darknet();
  const sim::NetworkResult r = simulate_network(m, kCfg);
  EXPECT_EQ(static_cast<int>(r.layers.size()), m.layer_count() - 1);
}

TEST(NetworkSim, Deterministic) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  const auto a = simulate_network(m, kCfg);
  const auto b = simulate_network(m, kCfg);
  EXPECT_EQ(a.total_cycles(), b.total_cycles());
  EXPECT_EQ(a.total_counts(), b.total_counts());
}

TEST(NetworkSim, UtilizationIsSane) {
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    const sim::NetworkResult r = simulate_network(m, kCfg);
    EXPECT_GT(r.utilization(), 0.0) << m.name();
    EXPECT_LT(r.utilization(), 1.0) << m.name();
  }
}

TEST(NetworkSim, LatencyMsAtClock) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  const sim::NetworkResult r = simulate_network(m, kCfg);
  EXPECT_NEAR(r.latency_ms(1.0),
              static_cast<double>(r.total_cycles()) / 1e6, 1e-9);
  EXPECT_NEAR(r.latency_ms(2.0), r.latency_ms(1.0) / 2.0, 1e-9);
}

TEST(NetworkSim, RejectsUnfinalizedModel) {
  nn::Model m("u", nn::TensorShape{3, 8, 8});
  m.add_conv("c", 4, 3, 1, 1);
  EXPECT_THROW(simulate_network(m, kCfg), std::invalid_argument);
}

TEST(NetworkSim, RejectsInvalidConfig) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  sim::AcceleratorConfig bad = kCfg;
  bad.array_n = 0;
  EXPECT_THROW(simulate_network(m, bad), std::invalid_argument);
}

TEST(NetworkSim, HybridNeverSlowerThanForced) {
  // The per-layer selector can only improve on either single dataflow.
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    sim::AcceleratorConfig ws = kCfg, os = kCfg;
    ws.support = sim::DataflowSupport::WsOnly;
    os.support = sim::DataflowSupport::OsOnly;
    const auto hybrid = simulate_network(m, kCfg).total_cycles();
    const auto ws_cycles = simulate_network(m, ws).total_cycles();
    const auto os_cycles = simulate_network(m, os).total_cycles();
    EXPECT_LE(hybrid, ws_cycles) << m.name();
    EXPECT_LE(hybrid, os_cycles) << m.name();
  }
}

TEST(NetworkSim, MoreDramBandwidthNeverSlower) {
  const nn::Model m = nn::zoo::alexnet();
  sim::AcceleratorConfig slow = kCfg, fast = kCfg;
  slow.dram_bytes_per_cycle = 8.0;
  fast.dram_bytes_per_cycle = 64.0;
  EXPECT_GE(simulate_network(m, slow).total_cycles(),
            simulate_network(m, fast).total_cycles());
}

TEST(NetworkSim, SparsitySpeedsUpOsNetworks) {
  const nn::Model m = nn::zoo::tiny_darknet();
  sim::AcceleratorConfig dense = kCfg, sparse = kCfg;
  dense.weight_sparsity = 0.0;
  sparse.weight_sparsity = 0.6;
  EXPECT_GT(simulate_network(m, dense).total_cycles(),
            simulate_network(m, sparse).total_cycles());
}

}  // namespace
}  // namespace sqz::sched
