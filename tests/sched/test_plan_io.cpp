// Compiled-plan artifact round trips (sched/plan_io.h).
//
// Property: for seeded random (zoo model x config x options) triples,
// serialize -> deserialize -> re-serialize is byte-identical and the
// deserialized artifact is field-equal to the original. Contract:
// simulate_with_plan over a compiled plan renders the same JSON report,
// byte for byte, as the searching simulate_network path — the invariant
// plan-cached serving rests on. A golden artifact under tests/data/ pins
// the on-disk format itself (regenerate per EXPERIMENTS.md when — and only
// when — kPlanFormatVersion is bumped, with a docs/PLANS.md history note).
#include "sched/plan_io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.h"
#include "nn/zoo/zoo.h"
#include "sched/compile.h"

namespace sqz::sched {
namespace {

sim::AcceleratorConfig random_config(std::mt19937& rng) {
  const auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();
  cfg.array_n = 8 << pick(0, 2);  // 8 / 16 / 32
  cfg.preload_width = cfg.array_n;
  cfg.drain_width = cfg.array_n;
  cfg.rf_entries = 8 << pick(0, 2);
  cfg.gb_kib = 64 << pick(0, 2);
  cfg.weight_reserve_words = pick(0, 1) ? 8192 : 4096;
  cfg.simd_lanes = 8 << pick(0, 1);
  cfg.dram_latency_cycles = pick(0, 1) ? 100 : 250;
  cfg.dram_bytes_per_cycle = pick(0, 1) ? 16.0 : 8.5;
  cfg.batch = pick(1, 2);
  cfg.weight_sparsity = pick(0, 1) ? 0.40 : 0.0;
  cfg.os_zero_skip = pick(0, 1) != 0;
  cfg.ws_psums_in_gb = pick(0, 1) != 0;
  cfg.support = static_cast<sim::DataflowSupport>(pick(0, 2));
  cfg.validate();
  return cfg;
}

SimulationOptions random_options(std::mt19937& rng) {
  const auto flip = [&] {
    return std::uniform_int_distribution<int>(0, 1)(rng) != 0;
  };
  SimulationOptions opt;
  opt.objective = flip() ? Objective::Cycles : Objective::Energy;
  opt.tile_timeline = flip();
  opt.double_buffered = flip();
  opt.tile_search = opt.tile_timeline && flip();
  opt.fuse_pool_drain = flip();
  return opt;
}

TEST(PlanRoundTrip, SeededTriplesAreByteExactAndFieldEqual) {
  std::mt19937 rng(20260809);  // fixed seed: the corpus is part of the test
  const std::vector<nn::Model> models = {nn::zoo::tiny_darknet(),
                                         nn::zoo::squeezenet_v11()};
  for (int i = 0; i < 24; ++i) {
    const nn::Model& model = models[static_cast<std::size_t>(i) % models.size()];
    const sim::AcceleratorConfig cfg = random_config(rng);
    const SimulationOptions opt = random_options(rng);

    const PlanArtifact plan = compile_plan(model, cfg, opt);
    const std::string bytes = serialize_plan(plan);
    const PlanArtifact back = deserialize_plan(bytes);

    // Byte fixed point: re-serializing the parsed artifact reproduces the
    // file exactly (the golden-diff and plan-cache contracts need this).
    EXPECT_EQ(serialize_plan(back), bytes) << "triple " << i;

    // Field equality, not just bytes: the decoded program is the program.
    EXPECT_EQ(back, plan) << "triple " << i;
    EXPECT_EQ(back.model_hash, model_identity_hash(model));
    EXPECT_TRUE(plan_options_equal(back.options, opt));
  }
}

TEST(PlanRoundTrip, ReplayedPlanRendersByteIdenticalReports) {
  // Hybrid configs are the interesting case: the fresh path simulates every
  // conv twice and searches; the plan path replays the recorded choice.
  std::mt19937 rng(20260810);
  const nn::Model model = nn::zoo::squeezenet_v11();
  for (int i = 0; i < 4; ++i) {
    sim::AcceleratorConfig cfg = random_config(rng);
    cfg.support = sim::DataflowSupport::Hybrid;
    const SimulationOptions opt = random_options(rng);

    const sim::NetworkResult fresh = simulate_network(model, cfg, opt);
    const PlanArtifact plan = plan_from_result(model, cfg, opt, fresh);
    const sim::NetworkResult replayed =
        simulate_with_plan(model, cfg, opt, plan.program);

    EXPECT_EQ(core::json_report_string(model, replayed, opt.units),
              core::json_report_string(model, fresh, opt.units))
        << "config " << i;
  }
}

TEST(PlanRoundTrip, SaveAndLoadThroughDisk) {
  const std::string path =
      ::testing::TempDir() + "/plan_roundtrip_" +
      std::to_string(::getpid()) + ".plan";
  const PlanArtifact plan =
      compile_plan(nn::zoo::tiny_darknet(),
                   sim::AcceleratorConfig::squeezelerator(), {});
  save_plan(path, plan);
  EXPECT_EQ(load_plan(path), plan);
  std::remove(path.c_str());
}

TEST(PlanRoundTrip, LoadOfMissingFileIsAnIoError) {
  try {
    (void)load_plan("/nonexistent/dir/nothing.plan");
    FAIL() << "loaded a plan from nowhere";
  } catch (const PlanError& e) {
    EXPECT_EQ(e.code(), PlanErrorCode::Io);
  }
}

// The golden artifact pins the byte-level format: if this test fails, the
// container layout changed — bump kPlanFormatVersion, record the change in
// docs/PLANS.md, and regenerate the golden per EXPERIMENTS.md.
TEST(PlanGolden, TinyDarknetArtifactIsByteStable) {
  std::ifstream in(SQZ_TEST_DATA_DIR "/tinydarknet.plan", std::ios::binary);
  ASSERT_TRUE(in) << "missing golden: tests/data/tinydarknet.plan";
  std::ostringstream golden;
  golden << in.rdbuf();

  const std::string bytes = serialize_plan(
      compile_plan(nn::zoo::tiny_darknet(),
                   sim::AcceleratorConfig::squeezelerator(), {}));
  EXPECT_EQ(bytes, golden.str())
      << "plan serialization drifted from the committed golden "
         "(docs/PLANS.md explains the format-change protocol)";
}

// ---- check_plan_serves: every identity mismatch is refused by name ------

class PlanServes : public ::testing::Test {
 protected:
  const nn::Model model_ = nn::zoo::tiny_darknet();
  const sim::AcceleratorConfig cfg_ = sim::AcceleratorConfig::squeezelerator();
  const SimulationOptions opt_{};
  const PlanArtifact plan_ = compile_plan(model_, cfg_, opt_);
};

TEST_F(PlanServes, MatchingIdentityPasses) {
  EXPECT_NO_THROW(check_plan_serves(plan_, model_, cfg_, opt_));
}

TEST_F(PlanServes, DifferentModelIsRefused) {
  try {
    check_plan_serves(plan_, nn::zoo::squeezenet_v11(), cfg_, opt_);
    FAIL();
  } catch (const PlanError& e) {
    EXPECT_EQ(e.code(), PlanErrorCode::ModelMismatch);
  }
}

TEST_F(PlanServes, DifferentConfigIsRefused) {
  sim::AcceleratorConfig other = cfg_;
  other.rf_entries = 8;
  try {
    check_plan_serves(plan_, model_, other, opt_);
    FAIL();
  } catch (const PlanError& e) {
    EXPECT_EQ(e.code(), PlanErrorCode::ConfigMismatch);
  }
}

TEST_F(PlanServes, DifferentOptionsAreRefused) {
  SimulationOptions other = opt_;
  other.fuse_pool_drain = true;
  try {
    check_plan_serves(plan_, model_, cfg_, other);
    FAIL();
  } catch (const PlanError& e) {
    EXPECT_EQ(e.code(), PlanErrorCode::OptionsMismatch);
  }
}

// ---- Program::validate: one rejection per structural invariant ----------

class ProgramValidate : public ::testing::Test {
 protected:
  const nn::Model model_ = nn::zoo::tiny_darknet();
  const Program good_ =
      compile(model_, sim::AcceleratorConfig::squeezelerator(), {});
};

TEST_F(ProgramValidate, CompiledProgramsPass) {
  EXPECT_NO_THROW(good_.validate());
  EXPECT_NO_THROW(good_.validate(model_.layer_count()));
}

TEST_F(ProgramValidate, EmptyModelNameIsRejected) {
  Program p = good_;
  p.model_name.clear();
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST_F(ProgramValidate, CommandCountMustMatchTheModel) {
  Program p = good_;
  p.commands.pop_back();
  EXPECT_NO_THROW(p.validate());  // still self-consistent...
  EXPECT_THROW(p.validate(model_.layer_count()),  // ...but not for this model
               std::invalid_argument);
}

TEST_F(ProgramValidate, OutOfSequenceCommandsAreRejected) {
  Program p = good_;
  std::swap(p.commands[0], p.commands[1]);
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST_F(ProgramValidate, EmptyLayerNameIsRejected) {
  Program p = good_;
  p.commands[2].layer_name.clear();
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST_F(ProgramValidate, NonPositiveTileCountIsRejected) {
  Program p = good_;
  p.commands[1].tile_count = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST_F(ProgramValidate, NegativeWordAndCycleTotalsAreRejected) {
  for (const auto mutate : std::vector<void (*)(LayerCommand&)>{
           [](LayerCommand& c) { c.weight_words = -1; },
           [](LayerCommand& c) { c.dma_in_words = -1; },
           [](LayerCommand& c) { c.dma_out_words = -1; },
           [](LayerCommand& c) { c.expected_cycles = -1; }}) {
    Program p = good_;
    mutate(p.commands[0]);
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
}

TEST_F(ProgramValidate, BadConfigInsideTheProgramIsRejected) {
  Program p = good_;
  p.config.array_n = -4;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace sqz::sched
