#include "sched/residency.h"

#include <gtest/gtest.h>

#include "nn/zoo/zoo.h"

namespace sqz::sched {
namespace {

const sim::AcceleratorConfig kCfg = sim::AcceleratorConfig::squeezelerator();

TEST(Residency, SmallActivationsStayOnChip) {
  nn::Model m("small", nn::TensorShape{8, 16, 16});
  m.add_conv("a", 16, 3, 1, 1);
  m.add_conv("b", 16, 3, 1, 1);
  m.add_conv("c", 16, 3, 1, 1);
  m.finalize();
  const ResidencyPlan plan = plan_residency(m, kCfg);
  // Mid-layers fit comfortably in 128 KiB.
  EXPECT_TRUE(plan.kept.at(1));
  EXPECT_TRUE(plan.kept.at(2));
}

TEST(Residency, ModelInputAlwaysFromDram) {
  nn::Model m("x", nn::TensorShape{1, 2, 2});
  m.add_conv("a", 1, 1, 1, 0);
  m.finalize();
  const ResidencyPlan plan = plan_residency(m, kCfg);
  EXPECT_FALSE(plan.kept.at(0));
  const sim::TensorPlacement p = plan.placement_for(m, 1);
  EXPECT_FALSE(p.input_in_gb);
}

TEST(Residency, FinalOutputWrittenBack) {
  nn::Model m("x", nn::TensorShape{4, 8, 8});
  m.add_conv("a", 4, 1, 1, 0);
  m.add_conv("b", 4, 1, 1, 0);
  m.finalize();
  const ResidencyPlan plan = plan_residency(m, kCfg);
  EXPECT_FALSE(plan.kept.back());
}

TEST(Residency, HugeEarlyMapsSpill) {
  // SqueezeNet conv1 output: 96*111*111*2B = 2.3 MB >> 128 KiB.
  const nn::Model m = nn::zoo::squeezenet_v10();
  const ResidencyPlan plan = plan_residency(m, kCfg);
  EXPECT_FALSE(plan.kept.at(1)) << "conv1 output must stream through DRAM";
  // Late fire modules (13x13 maps) stay on-chip.
  bool some_late_kept = false;
  for (int i = m.layer_count() - 10; i < m.layer_count() - 1; ++i)
    if (plan.kept.at(static_cast<std::size_t>(i))) some_late_kept = true;
  EXPECT_TRUE(some_late_kept);
}

TEST(Residency, BiggerBufferKeepsMore) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  sim::AcceleratorConfig big = kCfg;
  big.gb_kib = 8 * 1024;  // 8 MiB
  const ResidencyPlan small_plan = plan_residency(m, kCfg);
  const ResidencyPlan big_plan = plan_residency(m, big);
  int small_kept = 0, big_kept = 0;
  for (std::size_t i = 0; i < small_plan.kept.size(); ++i) {
    small_kept += small_plan.kept[i] ? 1 : 0;
    big_kept += big_plan.kept[i] ? 1 : 0;
  }
  EXPECT_GT(big_kept, small_kept);
}

TEST(Residency, PlacementRequiresAllProducersKept) {
  nn::Model m("cat", nn::TensorShape{4, 8, 8});
  const int a = m.add_conv("a", 4, 1, 1, 0);
  const int b = m.add_conv("b", 4, 1, 1, 0, 0);
  const int cat = m.add_concat("cat", {a, b});
  m.add_conv("c", 4, 1, 1, 0, cat);
  m.finalize();
  ResidencyPlan plan = plan_residency(m, kCfg);
  plan.kept[static_cast<std::size_t>(b)] = false;  // force one producer out
  const sim::TensorPlacement p = plan.placement_for(m, cat);
  EXPECT_FALSE(p.input_in_gb);
}

}  // namespace
}  // namespace sqz::sched
