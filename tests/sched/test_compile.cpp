#include "sched/compile.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "nn/zoo/zoo.h"

namespace sqz::sched {
namespace {

const sim::AcceleratorConfig kCfg = sim::AcceleratorConfig::squeezelerator();

TEST(Compile, OneCommandPerLayer) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  const Program p = compile(m, kCfg);
  EXPECT_EQ(static_cast<int>(p.commands.size()), m.layer_count() - 1);
  for (std::size_t i = 0; i < p.commands.size(); ++i)
    EXPECT_EQ(p.commands[i].layer_idx, static_cast<int>(i) + 1);
}

TEST(Compile, ExpectedCyclesMatchSimulator) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  const Program p = compile(m, kCfg);
  const auto r = simulate_network(m, kCfg);
  EXPECT_EQ(p.expected_total_cycles(), r.total_cycles());
}

TEST(Compile, UnitsAssignedByLayerKind) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  const Program p = compile(m, kCfg);
  for (const LayerCommand& c : p.commands) {
    const nn::Layer& l = m.layer(c.layer_idx);
    if (l.is_macs_layer())
      EXPECT_EQ(c.unit, LayerCommand::Unit::PeArray) << c.layer_name;
    else if (l.kind == nn::LayerKind::Concat)
      EXPECT_EQ(c.unit, LayerCommand::Unit::View) << c.layer_name;
    else
      EXPECT_EQ(c.unit, LayerCommand::Unit::Simd) << c.layer_name;
  }
}

TEST(Compile, DataflowsMatchSelector) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  const Program p = compile(m, kCfg);
  const auto r = simulate_network(m, kCfg);
  for (std::size_t i = 0; i < p.commands.size(); ++i)
    if (p.commands[i].unit == LayerCommand::Unit::PeArray)
      EXPECT_EQ(p.commands[i].dataflow, r.layers[i].dataflow)
          << p.commands[i].layer_name;
}

TEST(Compile, DmaDescriptorsMatchSimulatedTraffic) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  const Program p = compile(m, kCfg);
  const auto r = simulate_network(m, kCfg);
  // Program DMA = simulated dram words (the flat model has no halo term).
  EXPECT_GE(p.total_dma_words(), r.total_counts().dram_words);
}

TEST(Compile, FusedPoolsMarked) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  SimulationOptions opt;
  opt.fuse_pool_drain = true;
  const Program p = compile(m, kCfg, opt);
  const auto is_fused = [&](const char* name) {
    for (const LayerCommand& c : p.commands)
      if (c.layer_name.find(name) != std::string::npos)
        return c.unit == LayerCommand::Unit::FusedIntoProducer;
    return false;
  };
  EXPECT_TRUE(is_fused("pool1"));
}

TEST(Compile, WeightWordsMatchModel) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  const Program p = compile(m, kCfg);
  std::int64_t weights = 0;
  for (const LayerCommand& c : p.commands) weights += c.weight_words;
  EXPECT_EQ(weights, m.total_params());
}

TEST(Compile, ListingIsCompleteAndReadable) {
  const nn::Model m = nn::zoo::squeezenet_v11();
  const std::string listing = compile(m, kCfg).listing();
  EXPECT_NE(listing.find("conv1"), std::string::npos);
  EXPECT_NE(listing.find("fire9/expand3x3"), std::string::npos);
  EXPECT_NE(listing.find("expected total"), std::string::npos);
  // Every PE-array command names its dataflow.
  EXPECT_NE(listing.find(" WS"), std::string::npos);
  EXPECT_NE(listing.find(" OS"), std::string::npos);
}

TEST(Compile, TileCountsPositive) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  for (const LayerCommand& c : compile(m, kCfg).commands)
    if (c.unit != LayerCommand::Unit::FusedIntoProducer)
      EXPECT_GE(c.tile_count, 1) << c.layer_name;
}

}  // namespace
}  // namespace sqz::sched
