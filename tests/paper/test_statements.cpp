// Scattered quantitative statements from the paper's prose (§4.1.3), each
// pinned by a test:
//   * "AlexNet ... takes up 80% of energy and 73% of its run time in the
//     three fully-connected layers, which cannot take advantage of hardware
//     acceleration by either dataflow architecture."
//   * "[in MobileNet on a WS architecture] these [depthwise] layers occupy
//     much larger execution time than the pointwise convolutional layers,
//     even though they account for only 3% of the total number of
//     computations."
//   * "MobileNet shows small savings on the energy consumption ... because
//     DRAM access consumes a larger proportion of total energy consumption
//     in this network than in other DNNs."
#include <gtest/gtest.h>

#include "energy/model.h"
#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"

namespace sqz::core {
namespace {

const sim::AcceleratorConfig kCfg = sim::AcceleratorConfig::squeezelerator();

TEST(PaperStatements, AlexNetLivesInItsFcLayers) {
  const nn::Model m = nn::zoo::alexnet();
  const auto r = sched::simulate_network(m, kCfg);
  std::int64_t fc_cycles = 0, total_cycles = 0;
  double fc_energy = 0.0, total_energy = 0.0;
  for (const auto& l : r.layers) {
    const double e = energy::energy_of(l.counts).total();
    total_cycles += l.total_cycles;
    total_energy += e;
    if (m.layer(l.layer_idx).is_fc()) {
      fc_cycles += l.total_cycles;
      fc_energy += e;
    }
  }
  const double time_share = static_cast<double>(fc_cycles) / total_cycles;
  const double energy_share = fc_energy / total_energy;
  // Paper: 73% of run time, 80% of energy. Generous bands around both.
  EXPECT_GT(time_share, 0.60);
  EXPECT_LT(time_share, 0.95);
  EXPECT_GT(energy_share, 0.60);
  EXPECT_LT(energy_share, 0.90);
}

TEST(PaperStatements, DepthwiseDominatesMobileNetOnWs) {
  // On the WS-only reference, MobileNet's depthwise layers (3% of MACs)
  // take more time than the pointwise layers (95% of MACs).
  const nn::Model m = nn::zoo::mobilenet();
  sim::AcceleratorConfig ws = kCfg;
  ws.support = sim::DataflowSupport::WsOnly;
  const auto r = sched::simulate_network(m, ws);
  std::int64_t dw_cycles = 0, pw_cycles = 0, dw_macs = 0, total_macs = 0;
  for (const auto& l : r.layers) {
    const nn::Layer& layer = m.layer(l.layer_idx);
    total_macs += l.useful_macs;
    if (layer.is_depthwise()) {
      dw_cycles += l.total_cycles;
      dw_macs += l.useful_macs;
    } else if (layer.is_pointwise()) {
      pw_cycles += l.total_cycles;
    }
  }
  EXPECT_GT(dw_cycles, 3 * pw_cycles);  // "much larger execution time"
  EXPECT_NEAR(static_cast<double>(dw_macs) / static_cast<double>(total_macs),
              0.03, 0.01);  // "only 3% of the total number of computations"
}

TEST(PaperStatements, MobileNetIsTheMostDramEnergyHeavy) {
  // "DRAM access consumes a larger proportion of total energy consumption
  // in this network than in other DNNs" — among the small mobile networks
  // (AlexNet's 60M-parameter FC bulk is excluded from the comparison, as in
  // the paper's discussion of lightweight DNNs).
  double mobilenet_share = 0.0;
  double max_other = 0.0;
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    if (m.name() == "AlexNet") continue;
    const auto r = sched::simulate_network(m, kCfg);
    const auto e = energy::network_energy(r);
    const double share = e.dram / e.total();
    if (m.name().find("MobileNet") != std::string::npos)
      mobilenet_share = share;
    else
      max_other = std::max(max_other, share);
  }
  EXPECT_GT(mobilenet_share, 0.40);
  // MobileNet's DRAM share tops the lightweight group (within rounding).
  EXPECT_GE(mobilenet_share, max_other - 0.03);
}

TEST(PaperStatements, SimdComputeLayersAreASmallFraction) {
  // §3.1: non-conv layers "have a very small computational complexity" and
  // run on the 1-D SIMD unit — pools/ReLU/adds must stay a minor share of
  // total time. (Concat is excluded: it is pure data movement in our model —
  // spilled fire-module halves are physically gathered — not SIMD compute.)
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    const auto r = sched::simulate_network(m, kCfg);
    std::int64_t simd_cycles = 0;
    for (const auto& l : r.layers) {
      if (l.on_pe_array) continue;
      if (m.layer(l.layer_idx).kind == nn::LayerKind::Concat) continue;
      simd_cycles += l.total_cycles;
    }
    // SqueezeNext's 21 residual adds push its SIMD share to ~34% — the one
    // zoo network where the "very small" claim gets qualified; everything
    // else sits well under 20%.
    EXPECT_LT(static_cast<double>(simd_cycles) /
                  static_cast<double>(r.total_cycles()),
              0.40)
        << m.name();
  }
}

}  // namespace
}  // namespace sqz::core
