// Figure 3: per-layer inference time and PE utilization for the five
// 1.0-SqNxt-23 variants. The paper's observations: initial layers have very
// low utilization; moving layers from early to late stages and shrinking the
// first filter reduces inference time and energy with ~constant MACs.
#include <gtest/gtest.h>

#include "core/codesign.h"
#include "energy/model.h"
#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"

namespace sqz::core {
namespace {

using nn::zoo::SqNxtVariant;

sim::NetworkResult run(SqNxtVariant v) {
  return sched::simulate_network(nn::zoo::squeezenext(v),
                                 sim::AcceleratorConfig::squeezelerator());
}

TEST(Figure3, EarlyLayersHaveLowUtilization) {
  const nn::Model m = nn::zoo::squeezenext(SqNxtVariant::V1);
  const auto r = run(SqNxtVariant::V1);
  const int pes = r.config.pe_count();
  // Average utilization of stage-1 conv layers vs stage-3 conv layers.
  double early = 0, late = 0;
  int early_n = 0, late_n = 0;
  for (const auto& l : r.layers) {
    const nn::Layer& layer = m.layer(l.layer_idx);
    if (!layer.is_conv()) continue;
    if (layer.name.find("stage1/") == 0) {
      early += l.utilization(pes);
      ++early_n;
    } else if (layer.name.find("stage3/") == 0) {
      late += l.utilization(pes);
      ++late_n;
    }
  }
  ASSERT_GT(early_n, 0);
  ASSERT_GT(late_n, 0);
  EXPECT_LT(early / early_n, late / late_n);
}

TEST(Figure3, OptimizedVariantsAreFaster) {
  const auto v1 = run(SqNxtVariant::V1).total_cycles();
  const auto v2 = run(SqNxtVariant::V2).total_cycles();
  const auto v5 = run(SqNxtVariant::V5).total_cycles();
  EXPECT_LT(v2, v1);  // 5x5 conv1 helps
  EXPECT_LT(v5, v2);  // block reallocation helps further
}

TEST(Figure3, OptimizedVariantsUseLessEnergy) {
  const auto e = [](SqNxtVariant v) {
    return energy::network_energy(run(v)).total();
  };
  EXPECT_LT(e(SqNxtVariant::V5), e(SqNxtVariant::V1));
}

TEST(Figure3, MacBudgetRoughlyConstant) {
  // "this simple change results in a very small change in the overall MACs".
  const auto v2 = nn::zoo::squeezenext(SqNxtVariant::V2).total_macs();
  const auto v5 = nn::zoo::squeezenext(SqNxtVariant::V5).total_macs();
  const double drift =
      std::abs(static_cast<double>(v5 - v2)) / static_cast<double>(v2);
  EXPECT_LT(drift, 0.35);
}

TEST(Figure3, UtilizationImprovesAcrossVariants) {
  EXPECT_GT(run(SqNxtVariant::V5).utilization(),
            run(SqNxtVariant::V1).utilization());
}

}  // namespace
}  // namespace sqz::core
