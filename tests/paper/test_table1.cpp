// Table 1: relative percentage of MAC operations per layer category.
// Our static analysis must land close to the paper's reported breakdowns.
#include <gtest/gtest.h>

#include "nn/analysis.h"
#include "nn/zoo/zoo.h"

namespace sqz::nn {
namespace {

struct PaperRow {
  const char* network;
  double conv1, pw, fxf, dw;  // percent
  double tolerance;           // percentage points
};

// Paper values; tolerance covers counting-convention differences and our
// documented SqueezeNext reconstruction (DESIGN.md §3).
const PaperRow kPaperTable1[] = {
    {"AlexNet", 20, 0, 69, 0, 9},
    {"1.0 MobileNet-224", 1, 95, 0, 3, 3},
    {"Tiny Darknet", 5, 13, 82, 0, 3},
    {"SqueezeNet v1.0", 21, 25, 54, 0, 3},
    {"SqueezeNet v1.1", 6, 40, 54, 0, 3},
    {"SqueezeNext", 16, 44, 40, 0, 12},
};

TEST(Table1, LayerCategoryBreakdownsMatchPaper) {
  const auto models = zoo::all_table1_models();
  ASSERT_EQ(models.size(), std::size(kPaperTable1));
  for (std::size_t i = 0; i < models.size(); ++i) {
    const PaperRow& row = kPaperTable1[i];
    ASSERT_EQ(models[i].name(), row.network);
    const OpBreakdown b = analyze_ops(models[i]);
    EXPECT_NEAR(100 * b.fraction(LayerCategory::FirstConv), row.conv1,
                row.tolerance)
        << row.network << " Conv1";
    EXPECT_NEAR(100 * b.fraction(LayerCategory::Pointwise), row.pw, row.tolerance)
        << row.network << " 1x1";
    EXPECT_NEAR(100 * b.fraction(LayerCategory::Spatial), row.fxf, row.tolerance)
        << row.network << " FxF";
    EXPECT_NEAR(100 * b.fraction(LayerCategory::Depthwise), row.dw, row.tolerance)
        << row.network << " DW";
  }
}

TEST(Table1, WsSuitedFractionSpansWideRange) {
  // Paper: "the proportion of the layer operations which are well-suited to
  // the WS dataflow ranges from 0% to 95%".
  double min_pw = 1.0, max_pw = 0.0;
  for (const Model& m : zoo::all_table1_models()) {
    const double pw = analyze_ops(m).fraction(LayerCategory::Pointwise);
    min_pw = std::min(min_pw, pw);
    max_pw = std::max(max_pw, pw);
  }
  EXPECT_LT(min_pw, 0.05);
  EXPECT_GT(max_pw, 0.90);
}

TEST(Table1, OnlyMobileNetHasDepthwise) {
  for (const Model& m : zoo::all_table1_models()) {
    const double dw = analyze_ops(m).fraction(LayerCategory::Depthwise);
    if (m.name().find("MobileNet") != std::string::npos)
      EXPECT_GT(dw, 0.0);
    else
      EXPECT_EQ(dw, 0.0) << m.name();
  }
}

}  // namespace
}  // namespace sqz::nn
