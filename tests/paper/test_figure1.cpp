// Figure 1: per-layer inference time and utilization of SqueezeNet v1.0 on
// the reference WS/OS architectures and the Squeezelerator, with the paper's
// totals: +26% over OS and +106% over WS.
#include <gtest/gtest.h>

#include "core/squeezelerator.h"
#include "nn/zoo/zoo.h"

namespace sqz::core {
namespace {

class Figure1 : public ::testing::Test {
 protected:
  static const ComparisonResult& cmp() {
    static const ComparisonResult c = compare_dataflows(nn::zoo::squeezenet_v10());
    return c;
  }
};

TEST_F(Figure1, TotalsInPaperBand) {
  // Paper: 26% over OS, 106% over WS. Bands cover estimator differences.
  EXPECT_GT(cmp().speedup_vs_os(), 1.05);
  EXPECT_LT(cmp().speedup_vs_os(), 1.55);
  EXPECT_GT(cmp().speedup_vs_ws(), 1.40);
  EXPECT_LT(cmp().speedup_vs_ws(), 2.60);
}

TEST_F(Figure1, OverallTrendSimilarToWs) {
  // "The overall trend is similar to that of the WS architecture, but the
  // performance of the first layer is noticeably improved."
  const auto& hybrid = cmp().hybrid.layers;
  const auto& ws = cmp().ws_only.layers;
  // conv1 (layer index 1 -> vector index 0) is dramatically faster.
  EXPECT_LT(hybrid[0].total_cycles, ws[0].total_cycles / 3);
}

TEST_F(Figure1, LargeMapSpatialConvsChooseOs) {
  // "For most of the 3x3 convolutions, the accelerator chooses OS dataflow."
  // In our estimator the large-feature-map (early/mid) 3x3 expands choose OS;
  // the 13x13 late layers flip to WS because of the array/feature-map
  // mismatch the paper itself calls out (delta recorded in EXPERIMENTS.md).
  const nn::Model m = nn::zoo::squeezenet_v10();
  int os_3x3 = 0, total_3x3 = 0;
  for (const auto& l : cmp().hybrid.layers) {
    const nn::Layer& layer = m.layer(l.layer_idx);
    if (!layer.is_conv() || layer.conv.kh != 3) continue;
    ++total_3x3;
    if (l.dataflow == sim::Dataflow::OutputStationary) ++os_3x3;
  }
  EXPECT_GE(os_3x3 * 2, total_3x3);  // at least half
  // The early fire modules (largest maps) must be among the OS picks.
  for (const auto& l : cmp().hybrid.layers) {
    const std::string& n = l.layer_name;
    if (n == "fire2/expand3x3" || n == "fire3/expand3x3")
      EXPECT_EQ(l.dataflow, sim::Dataflow::OutputStationary) << n;
  }
}

TEST_F(Figure1, LateLayersHaveLowOsUtilization) {
  // "In the latter layers, the mismatch between the size of the PE array and
  // the size of the feature map is the main cause of the performance
  // degradation" — late 13x13 layers on the OS reference run below 25%.
  const nn::Model m = nn::zoo::squeezenet_v10();
  const int pes = cmp().os_only.config.pe_count();
  for (const auto& l : cmp().os_only.layers) {
    const nn::Layer& layer = m.layer(l.layer_idx);
    if (!layer.is_conv()) continue;
    if (layer.out_shape.h > 16) continue;  // late layers only
    EXPECT_LT(l.utilization(pes), 0.25) << layer.name;
  }
}

TEST_F(Figure1, HybridMatchesBestPerLayer) {
  // The Squeezelerator's per-layer time is never worse than both references.
  for (std::size_t i = 0; i < cmp().hybrid.layers.size(); ++i) {
    const auto h = cmp().hybrid.layers[i].total_cycles;
    const auto w = cmp().ws_only.layers[i].total_cycles;
    const auto o = cmp().os_only.layers[i].total_cycles;
    EXPECT_LE(h, std::max(w, o));
  }
}

}  // namespace
}  // namespace sqz::core
