// Section 4.1.1 per-layer-category dataflow preferences, on a 32x32 array:
//   * 1x1 convolutions:   WS 1.4x - 7.0x faster than OS
//   * first conv layers:  OS 1.6x - 6.3x faster than WS
//   * depthwise layers:   OS 19x - 96x faster than WS
// We assert the same winners and overlapping factor ranges (exact endpoints
// depend on the estimator's micro-parameters; see EXPERIMENTS.md).
#include <gtest/gtest.h>

#include <algorithm>

#include "nn/analysis.h"
#include "nn/zoo/zoo.h"
#include "sim/layer_sim.h"

namespace sqz::sim {
namespace {

struct Range {
  double lo = 1e18, hi = 0.0;
  void add(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
};

class DataflowRanges : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const AcceleratorConfig cfg = AcceleratorConfig::squeezelerator();
    for (const nn::Model& m : nn::zoo::all_table1_models()) {
      for (int i = 1; i < m.layer_count(); ++i) {
        if (!m.layer(i).is_conv()) continue;
        const auto ws = simulate_layer(m, i, cfg, Dataflow::WeightStationary);
        const auto os = simulate_layer(m, i, cfg, Dataflow::OutputStationary);
        const double ws_over_os = static_cast<double>(ws.total_cycles) /
                                  static_cast<double>(os.total_cycles);
        switch (nn::categorize(m, i)) {
          case nn::LayerCategory::Pointwise:
            pointwise().add(1.0 / ws_over_os);  // "WS x-times faster"
            break;
          case nn::LayerCategory::FirstConv:
            first_conv().add(ws_over_os);  // "OS x-times faster"
            break;
          case nn::LayerCategory::Depthwise:
            depthwise().add(ws_over_os);
            break;
          default:
            break;
        }
      }
    }
  }
  static Range& pointwise() { static Range r; return r; }
  static Range& first_conv() { static Range r; return r; }
  static Range& depthwise() { static Range r; return r; }
};

TEST_F(DataflowRanges, PointwiseFavorsWs) {
  // Winner check: on average WS wins 1x1 layers; the range overlaps the
  // paper's 1.4-7.0x.
  EXPECT_GE(pointwise().hi, 1.4);
  EXPECT_LE(pointwise().hi, 10.0);
  EXPECT_GE(pointwise().lo, 0.8);  // never a big OS win
}

TEST_F(DataflowRanges, FirstConvFavorsOs) {
  EXPECT_GE(first_conv().lo, 1.3);   // OS always wins conv1
  EXPECT_GE(first_conv().hi, 3.0);   // and by a large factor at the top
  EXPECT_LE(first_conv().hi, 12.0);
}

TEST_F(DataflowRanges, DepthwiseFavorsOsMassively) {
  EXPECT_GE(depthwise().lo, 10.0);
  EXPECT_LE(depthwise().hi, 120.0);
  // Overlaps the paper's 19-96x band.
  EXPECT_GE(depthwise().hi, 19.0);
}

TEST(Section411, NormalConvolutionsAreContested) {
  // Paper: "In the case of the normal 3x3 convolutions, various factors
  // affect [the winner] ... each layer configuration must be simulated."
  // Both dataflows must win somewhere among the zoo's FxF layers.
  const AcceleratorConfig cfg = AcceleratorConfig::squeezelerator();
  int ws_wins = 0, os_wins = 0;
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    for (int i = 1; i < m.layer_count(); ++i) {
      if (!m.layer(i).is_conv()) continue;
      if (nn::categorize(m, i) != nn::LayerCategory::Spatial) continue;
      const auto ws = simulate_layer(m, i, cfg, Dataflow::WeightStationary);
      const auto os = simulate_layer(m, i, cfg, Dataflow::OutputStationary);
      (ws.total_cycles <= os.total_cycles ? ws_wins : os_wins) += 1;
    }
  }
  EXPECT_GT(ws_wins, 0);
  EXPECT_GT(os_wins, 0);
}

}  // namespace
}  // namespace sqz::sim
