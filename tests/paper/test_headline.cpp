// The paper's headline co-design results (§4.2 / conclusions):
//   * SqueezeNext is 2.59x faster and 2.25x more energy efficient than
//     SqueezeNet v1.0 on the (RF-16) Squeezelerator;
//   * 8.26x faster / 7.5x more energy efficient than AlexNet;
//   * the register-file doubling (8 -> 16) is the accelerator-side tune-up.
#include <gtest/gtest.h>

#include "core/codesign.h"
#include "energy/model.h"
#include "nn/accuracy.h"
#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"

namespace sqz::core {
namespace {

sim::NetworkResult run(const nn::Model& m,
                       sim::AcceleratorConfig cfg =
                           sim::AcceleratorConfig::squeezelerator()) {
  return sched::simulate_network(m, cfg);
}

class Headline : public ::testing::Test {
 protected:
  static const sim::NetworkResult& sqnxt() {
    static const auto r = run(nn::zoo::squeezenext(nn::zoo::SqNxtVariant::V5));
    return r;
  }
  static const sim::NetworkResult& sqznet() {
    static const auto r = run(nn::zoo::squeezenet_v10());
    return r;
  }
  static const sim::NetworkResult& alexnet() {
    static const auto r = run(nn::zoo::alexnet());
    return r;
  }
};

TEST_F(Headline, SqueezeNextVsSqueezeNetSpeed) {
  const double speedup = static_cast<double>(sqznet().total_cycles()) /
                         static_cast<double>(sqnxt().total_cycles());
  // Paper: 2.59x.
  EXPECT_GT(speedup, 2.0);
  EXPECT_LT(speedup, 3.3);
}

TEST_F(Headline, SqueezeNextVsSqueezeNetEnergy) {
  const double ratio = energy::network_energy(sqznet()).total() /
                       energy::network_energy(sqnxt()).total();
  // Paper: 2.25x.
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 3.6);
}

TEST_F(Headline, SqueezeNextVsAlexNetSpeed) {
  const double speedup = static_cast<double>(alexnet().total_cycles()) /
                         static_cast<double>(sqnxt().total_cycles());
  // Paper: 8.26x.
  EXPECT_GT(speedup, 6.0);
  EXPECT_LT(speedup, 11.5);
}

TEST_F(Headline, SqueezeNextVsAlexNetEnergy) {
  const double ratio = energy::network_energy(alexnet()).total() /
                       energy::network_energy(sqnxt()).total();
  // Paper: 7.5x.
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 10.0);
}

TEST_F(Headline, RfTuneUpHelpsSqueezeNext) {
  // "we returned to the co-design of the Squeezelerator and fine-tuned the
  // hardware utilization by doubling the register file size from 8 to 16."
  const auto rf8 = run(nn::zoo::squeezenext(nn::zoo::SqNxtVariant::V5),
                       sim::AcceleratorConfig::squeezelerator_rf8());
  EXPECT_LE(sqnxt().total_cycles(), rf8.total_cycles());
  EXPECT_LE(energy::network_energy(sqnxt()).total(),
            energy::network_energy(rf8).total());
  // And the automated tuner reproduces the choice.
  TuningSpace space;
  space.rf_entries = {8, 16};
  const TuningResult tuned =
      tune_accelerator(nn::zoo::squeezenext(nn::zoo::SqNxtVariant::V5), space);
  EXPECT_EQ(tuned.best.rf_entries, 16);
}

TEST_F(Headline, AccuracyImprovesSimultaneously) {
  // "...without any degradation in accuracy" — 59.2 vs 57.1 top-1.
  EXPECT_GT(nn::published_accuracy("1.0-SqNxt-23 v5")->top1,
            nn::published_accuracy("SqueezeNet v1.0")->top1);
}

}  // namespace
}  // namespace sqz::core
