// Table 2: speedups and energy reductions of the Squeezelerator over the
// single-dataflow references for the six networks. We assert the paper's
// qualitative structure and factor bands (exact values in EXPERIMENTS.md).
#include <gtest/gtest.h>

#include <map>

#include "core/squeezelerator.h"
#include "nn/zoo/zoo.h"

namespace sqz::core {
namespace {

class Table2 : public ::testing::Test {
 protected:
  static const std::map<std::string, ComparisonResult>& rows() {
    static const auto r = [] {
      std::map<std::string, ComparisonResult> out;
      for (const nn::Model& m : nn::zoo::all_table1_models())
        out.emplace(m.name(), compare_dataflows(m));
      return out;
    }();
    return r;
  }
};

TEST_F(Table2, AlexNetBarelyBenefits) {
  // Paper: 1.00x / 1.19x — FC-dominated AlexNet is co-design-immune.
  const auto& c = rows().at("AlexNet");
  EXPECT_LT(c.speedup_vs_os(), 1.25);
  EXPECT_LT(c.speedup_vs_ws(), 1.35);
}

TEST_F(Table2, MobileNetExtremes) {
  // Paper: 1.91x vs OS and 6.35x vs WS ("the benefits of supporting two
  // dataflow architectural styles are obvious in the case of MobileNet").
  const auto& c = rows().at("1.0 MobileNet-224");
  EXPECT_GT(c.speedup_vs_os(), 1.5);
  EXPECT_LT(c.speedup_vs_os(), 2.6);
  EXPECT_GT(c.speedup_vs_ws(), 5.0);
  EXPECT_LT(c.speedup_vs_ws(), 11.0);
}

TEST_F(Table2, SqueezeNetFamilyBands) {
  const auto& v10 = rows().at("SqueezeNet v1.0");
  EXPECT_GT(v10.speedup_vs_os(), 1.05);  // paper 1.26
  EXPECT_LT(v10.speedup_vs_os(), 1.55);
  EXPECT_GT(v10.speedup_vs_ws(), 1.40);  // paper 2.06
  EXPECT_LT(v10.speedup_vs_ws(), 2.60);
  const auto& v11 = rows().at("SqueezeNet v1.1");
  EXPECT_GT(v11.speedup_vs_os(), 1.15);  // paper 1.34
  EXPECT_LT(v11.speedup_vs_os(), 1.75);
  // v1.1 benefits less over WS than v1.0 (paper: 1.18 vs 2.06) — its conv1
  // is tiny and its 1x1 share is larger.
  EXPECT_LT(v11.speedup_vs_ws(), v10.speedup_vs_ws());
}

TEST_F(Table2, SqueezeNextBands) {
  const auto& c = rows().at("SqueezeNext");
  EXPECT_GT(c.speedup_vs_os(), 1.1);  // paper 1.26
  EXPECT_LT(c.speedup_vs_os(), 1.8);
  EXPECT_GT(c.speedup_vs_ws(), 1.4);  // paper 2.44
  EXPECT_LT(c.speedup_vs_ws(), 3.0);
}

TEST_F(Table2, TinyDarknetModerate) {
  const auto& c = rows().at("Tiny Darknet");
  EXPECT_GT(c.speedup_vs_os(), 1.0);  // paper 1.14
  EXPECT_LT(c.speedup_vs_os(), 1.6);
  EXPECT_GT(c.speedup_vs_ws(), 1.0);  // paper 1.32
  EXPECT_LT(c.speedup_vs_ws(), 1.7);
}

TEST_F(Table2, EnergyDeltasAreSmallAndMostlyFavourable) {
  // Paper: energy reductions are modest (-2%..24%); DRAM and MAC energy
  // dominate and are shared. We assert the same smallness, and that the
  // hybrid never costs much more than either reference.
  for (const auto& [name, c] : rows()) {
    EXPECT_GT(c.energy_reduction_vs_os(), -0.10) << name;
    EXPECT_LT(c.energy_reduction_vs_os(), 0.30) << name;
    EXPECT_GT(c.energy_reduction_vs_ws(), -0.02) << name;
    EXPECT_LT(c.energy_reduction_vs_ws(), 0.30) << name;
  }
}

TEST_F(Table2, OsGainCorrelatesWithPointwiseShare) {
  // Paper: "The improvement over the OS architecture has a high correlation
  // with the proportion of the 1x1 convolutions in the network."
  // MobileNet (95% 1x1) must gain more vs OS than AlexNet (0% 1x1).
  EXPECT_GT(rows().at("1.0 MobileNet-224").speedup_vs_os(),
            rows().at("AlexNet").speedup_vs_os());
  // And SqueezeNet v1.1 (40% 1x1) more than v1.0 (25% 1x1).
  EXPECT_GT(rows().at("SqueezeNet v1.1").speedup_vs_os(),
            rows().at("SqueezeNet v1.0").speedup_vs_os());
}

}  // namespace
}  // namespace sqz::core
