// Figure 4: the accuracy-vs-energy and accuracy-vs-speed spectrum.
// "SqueezeNext shows superior performance (higher and to the left)."
#include <gtest/gtest.h>

#include "core/squeezelerator.h"
#include "energy/model.h"
#include "nn/accuracy.h"
#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"

namespace sqz::core {
namespace {

struct Point {
  std::string name;
  double top1;
  double cycles;
  double energy;
};

const std::vector<Point>& spectrum() {
  static const std::vector<Point> pts = [] {
    std::vector<Point> out;
    for (const nn::Model& m : nn::zoo::figure4_models()) {
      const auto r = sched::simulate_network(
          m, sim::AcceleratorConfig::squeezelerator());
      Point p;
      p.name = m.name();
      p.top1 = nn::published_accuracy(m.name())->top1;
      p.cycles = static_cast<double>(r.total_cycles());
      p.energy = energy::network_energy(r).total();
      out.push_back(std::move(p));
    }
    return out;
  }();
  return pts;
}

const Point& find(const std::string& name) {
  for (const Point& p : spectrum())
    if (p.name == name) return p;
  throw std::runtime_error("missing point " + name);
}

TEST(Figure4, SqueezeNextDominatesSqueezeNet) {
  // Better accuracy AND faster AND less energy: strictly dominant.
  const Point& sqnxt = find("1.0-SqNxt-23 v5");
  const Point& sqz = find("SqueezeNet v1.0");
  EXPECT_GT(sqnxt.top1, sqz.top1);
  EXPECT_LT(sqnxt.cycles, sqz.cycles);
  EXPECT_LT(sqnxt.energy, sqz.energy);
}

TEST(Figure4, SqueezeNextFamilyTradesAccuracyForCost) {
  // Deeper/wider SqueezeNext members climb in accuracy and cost — the
  // "spectrum" a user selects from.
  const Point& d23 = find("1.0-SqNxt-23 v5");
  const Point& d44 = find("1.0-SqNxt-44 v5");
  const Point& w2 = find("2.0-SqNxt-23 v5");
  EXPECT_GT(d44.top1, d23.top1);
  EXPECT_GT(d44.cycles, d23.cycles);
  EXPECT_GT(w2.top1, d23.top1);
  EXPECT_GT(w2.energy, d23.energy);
}

TEST(Figure4, MobileNetFamilyIsMonotone) {
  const Point& q = find("0.25 MobileNet-224");
  const Point& h = find("0.5 MobileNet-224");
  const Point& f = find("1.0 MobileNet-224");
  EXPECT_LT(q.top1, h.top1);
  EXPECT_LT(h.top1, f.top1);
  EXPECT_LT(q.cycles, h.cycles);
  EXPECT_LT(h.cycles, f.cycles);
}

TEST(Figure4, SqueezeNextOnParetoFrontAmongFullWidthNetworks) {
  // Among the full-width networks the paper's Table 1/2 evaluates, nothing
  // dominates 1.0-SqNxt-23 v5 in (accuracy, energy). (On our simulator the
  // reduced-width MobileNets land left of SqueezeNext on the energy axis —
  // recorded as a delta in EXPERIMENTS.md.)
  const Point& sqnxt = find("1.0-SqNxt-23 v5");
  for (const char* name : {"SqueezeNet v1.0", "SqueezeNet v1.1", "Tiny Darknet",
                           "1.0 MobileNet-224"}) {
    const Point& p = find(name);
    const bool dominates = p.top1 >= sqnxt.top1 && p.energy <= sqnxt.energy &&
                           (p.top1 > sqnxt.top1 || p.energy < sqnxt.energy);
    EXPECT_FALSE(dominates) << p.name << " dominates SqueezeNext";
  }
}

TEST(Figure4, EveryPointWellFormed) {
  for (const Point& p : spectrum()) {
    EXPECT_GT(p.top1, 40.0) << p.name;
    EXPECT_GT(p.cycles, 0.0) << p.name;
    EXPECT_GT(p.energy, 0.0) << p.name;
  }
}

}  // namespace
}  // namespace sqz::core
