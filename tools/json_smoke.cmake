# ctest smoke run of the sqzsim binary's observability outputs (no Python):
#   sqzsim --model sqnxt23 --json report.json --trace trace.json
# then assert, with CMake's built-in string(JSON) parser, that the report
# parses, carries the schema version, and that its cycle total exactly
# matches the "total: N cycles" line of the ASCII table output.
#
# Invoked by the sqzsim_json_smoke test registered in tools/CMakeLists.txt:
#   cmake -DSQZSIM=<path-to-binary> -DWORK_DIR=<scratch> -P json_smoke.cmake

if(NOT DEFINED SQZSIM OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "json_smoke.cmake needs -DSQZSIM=... and -DWORK_DIR=...")
endif()

set(report "${WORK_DIR}/smoke_report.json")
set(trace "${WORK_DIR}/smoke_trace.json")

execute_process(
  COMMAND "${SQZSIM}" --model sqnxt23 --json "${report}" --trace "${trace}"
  OUTPUT_VARIABLE table_out
  RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "sqzsim exited with ${code}")
endif()

# --- the ASCII table path: "total: 934,825 cycles (...)" -------------------
if(NOT table_out MATCHES "total: ([0-9,]+) cycles")
  message(FATAL_ERROR "no 'total: N cycles' line in sqzsim output:\n${table_out}")
endif()
string(REPLACE "," "" table_cycles "${CMAKE_MATCH_1}")

# --- the JSON report path --------------------------------------------------
file(READ "${report}" report_text)
string(JSON schema_version ERROR_VARIABLE json_err GET "${report_text}" schema_version)
if(json_err)
  message(FATAL_ERROR "report does not parse: ${json_err}")
endif()
if(NOT schema_version EQUAL 1)
  message(FATAL_ERROR "unexpected schema_version '${schema_version}'")
endif()
string(JSON model_name GET "${report_text}" model name)
if(NOT model_name STREQUAL "1.0-SqNxt-23 v5")
  message(FATAL_ERROR "unexpected model name '${model_name}'")
endif()
string(JSON json_cycles GET "${report_text}" totals cycles)
if(NOT json_cycles STREQUAL table_cycles)
  message(FATAL_ERROR
      "JSON totals.cycles (${json_cycles}) != table total (${table_cycles})")
endif()

# Per-layer totals must sum to the network total (report invariant).
string(JSON layer_count LENGTH "${report_text}" layers)
math(EXPR last "${layer_count} - 1")
set(sum 0)
foreach(i RANGE 0 ${last})
  string(JSON c GET "${report_text}" layers ${i} total_cycles)
  math(EXPR sum "${sum} + ${c}")
endforeach()
if(NOT sum EQUAL json_cycles)
  message(FATAL_ERROR "per-layer cycles sum to ${sum}, totals say ${json_cycles}")
endif()

# --- the trace -------------------------------------------------------------
file(READ "${trace}" trace_text)
string(JSON trace_total ERROR_VARIABLE json_err GET "${trace_text}" otherData total_cycles)
if(json_err)
  message(FATAL_ERROR "trace does not parse: ${json_err}")
endif()
if(NOT trace_total STREQUAL table_cycles)
  message(FATAL_ERROR
      "trace total_cycles (${trace_total}) != table total (${table_cycles})")
endif()
string(JSON first_event GET "${trace_text}" traceEvents 0 ph)
if(NOT first_event STREQUAL "M")
  message(FATAL_ERROR "trace does not start with metadata events")
endif()

message(STATUS "sqzsim json smoke ok: ${table_cycles} cycles, ${layer_count} layers")
