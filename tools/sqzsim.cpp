// sqzsim — command-line front end of the Squeezelerator simulator.
// All logic lives in core/cli.h so it is unit tested; this is just main().
#include <iostream>
#include <string>
#include <vector>

#include "core/cli.h"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return sqz::core::run_cli(args, std::cout, std::cerr);
}
