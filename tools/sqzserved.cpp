// sqzserved — the Squeezelerator simulation service daemon.
//
// Serves POST /v1/simulate and /v1/sweep (request schema in serve/api.h),
// GET /healthz and /metrics, with a content-addressed result cache so
// repeated design points never re-simulate. SIGINT/SIGTERM shut down
// gracefully: the listener closes first and in-flight requests drain.
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "util/threadpool.h"

namespace {

// Async-signal-safe shutdown latch; the main thread polls it.
volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

const char* kUsage =
    "usage: sqzserved [options]\n"
    "  --host ADDR        bind address, numeric IPv4 (default 127.0.0.1)\n"
    "  --port N           listen port; 0 picks an ephemeral port and prints\n"
    "                     it (default 8080)\n"
    "  --jobs N           worker threads serving requests (default SQZ_JOBS\n"
    "                     or hardware concurrency); simulation results are\n"
    "                     bit-identical at any job count\n"
    "  --cache-entries N  in-memory result-cache capacity (default 1024)\n"
    "  --cache-dir PATH   also persist results on disk; survives restarts\n"
    "                     and may be pre-warmed (see EXPERIMENTS.md).\n"
    "                     Entries are checksummed; corrupt files are\n"
    "                     quarantined as *.bad and re-simulated\n"
    "  --plan-cache-entries N  in-memory compiled-plan cache capacity;\n"
    "                     result-cache misses replay a cached plan instead\n"
    "                     of re-running the dual-dataflow compile search\n"
    "                     (default 256; 0 disables the plan cache)\n"
    "  --plan-cache-dir PATH  also persist compiled plans on disk (*.plan,\n"
    "                     the sqzsim --save-plan format); survives restarts.\n"
    "                     Defective plans are quarantined as *.bad and the\n"
    "                     request recompiles transparently\n"
    "  --sweep-journal DIR  crash-safe sweep journal: append each completed\n"
    "                     /v1/sweep design point to DIR/sweep.sqzj and serve\n"
    "                     already-journaled points without re-simulating.\n"
    "                     A killed daemon resumes its sweeps on restart\n"
    "  --request-timeout-ms N  deadline to read one request / drain one\n"
    "                     response; expiry answers 408 (default 30000)\n"
    "  --idle-timeout-ms N  close keep-alive connections idle this long\n"
    "                     (default 30000)\n"
    "  --max-body-bytes N request bodies over this get 413 (default 64 MiB)\n"
    "  --max-connections N  concurrent-connection cap; excess connections\n"
    "                     are shed with 503 + Retry-After instead of\n"
    "                     queueing (default 256; 0 disables shedding)\n"
    "  --workers H:P,...  coordinator mode: shard /v1/sweep across this\n"
    "                     comma-separated fleet of stock sqzserved workers\n"
    "                     (consistent-hash routing, health-checked requeue,\n"
    "                     straggler stealing); /v1/simulate stays local\n"
    "  --coordinator      coordinator mode with an empty boot fleet: accept\n"
    "                     POST /v1/workers/register and build the fleet from\n"
    "                     --join workers (implied by --workers)\n"
    "  --join H:P,...     worker mode: self-register with these coordinators\n"
    "                     (tried round-robin) and heartbeat-renew the lease;\n"
    "                     SIGTERM deregisters before exit (graceful drain)\n"
    "  --lease-ms N       worker: lease TTL requested on --join (default\n"
    "                     5000). standby: silence window before takeover.\n"
    "                     coordinator: default TTL for registrations that\n"
    "                     omit one\n"
    "  --standby-of H:P   standby coordinator: boot passive, watch the\n"
    "                     primary's /healthz, and take over its sweeps and\n"
    "                     fleet from the shared --sweep-journal (required)\n"
    "                     when the primary goes silent for --lease-ms.\n"
    "                     Takeover is refused while a live (partitioned)\n"
    "                     primary still holds the journal's writer lock\n"
    "  --probe-interval-ms N  worker /healthz probe period (default 500)\n"
    "  --worker-fail-threshold N  consecutive failures that eject a worker\n"
    "                     from the ring (default 3)\n"
    "  --probation-ms N   delay before an ejected worker gets a trial probe\n"
    "                     (default 2000)\n"
    "  --chunk-points N   design points per dispatched chunk (default 4)\n"
    "  --straggler-ms N   in-flight age that triggers work stealing\n"
    "                     (default 2000)\n"
    "  --help             this text\n"
    "\n"
    "SQZ_FAULT=site=kind[:arg][*times][;...] injects deterministic faults\n"
    "at the registered fault points (util/faultinject.h) for chaos drills.\n";

struct Options {
  sqz::serve::ServerOptions server;
  int jobs = 0;
  bool help = false;
};

// Milliseconds, not thread counts: ThreadPool::parse_jobs caps at 1<<20
// (~17 minutes), but --lease-ms doubles as the standby takeover window,
// where multi-hour silences are a legitimate operator choice. Accepts any
// positive integer up to 10 years.
std::int64_t parse_ms(const std::string& v, const char* flag) {
  constexpr long long kMaxMs = 315360000000LL;  // 10 years
  if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos)
    throw std::invalid_argument(std::string(flag) +
                                " expects a positive integer of "
                                "milliseconds, got '" + v + "'");
  errno = 0;
  const long long n = std::strtoll(v.c_str(), nullptr, 10);
  if (errno == ERANGE || n <= 0 || n > kMaxMs)
    throw std::invalid_argument(std::string(flag) + " must be in [1, " +
                                std::to_string(kMaxMs) + "] ms, got '" + v +
                                "'");
  return n;
}

std::vector<std::string> split_commas(const std::string& v, const char* flag) {
  std::vector<std::string> out;
  std::size_t at = 0;
  while (at <= v.size()) {
    const std::size_t comma = v.find(',', at);
    const std::string spec =
        v.substr(at, comma == std::string::npos ? comma : comma - at);
    if (spec.empty())
      throw std::invalid_argument(std::string(flag) + " has an empty endpoint");
    out.push_back(spec);
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return out;
}

Options parse_args(const std::vector<std::string>& args) {
  Options opt;
  std::int64_t lease_ms = 0;  // 0 = not given; applied per role after the loop
  const auto value_of = [&](std::size_t& i) -> const std::string& {
    if (i + 1 >= args.size())
      throw std::invalid_argument("missing value for " + args[i]);
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") opt.help = true;
    else if (a == "--host") opt.server.host = value_of(i);
    else if (a == "--port") {
      const std::string v = value_of(i);
      opt.server.port = v == "0" ? 0 : sqz::util::ThreadPool::parse_jobs(v, "--port");
      if (opt.server.port > 65535)
        throw std::invalid_argument("--port must be in [0, 65535]");
    }
    else if (a == "--jobs")
      opt.jobs = sqz::util::ThreadPool::parse_jobs(value_of(i), "--jobs");
    else if (a == "--cache-entries")
      opt.server.cache_entries = static_cast<std::size_t>(
          sqz::util::ThreadPool::parse_jobs(value_of(i), "--cache-entries"));
    else if (a == "--cache-dir") opt.server.cache_dir = value_of(i);
    else if (a == "--plan-cache-entries") {
      const std::string v = value_of(i);
      opt.server.plan_cache_entries = static_cast<std::size_t>(
          v == "0" ? 0
                   : sqz::util::ThreadPool::parse_jobs(v,
                                                       "--plan-cache-entries"));
    }
    else if (a == "--plan-cache-dir") opt.server.plan_cache_dir = value_of(i);
    else if (a == "--sweep-journal") opt.server.sweep_journal_dir = value_of(i);
    else if (a == "--request-timeout-ms")
      opt.server.request_timeout_ms =
          sqz::util::ThreadPool::parse_jobs(value_of(i), "--request-timeout-ms");
    else if (a == "--idle-timeout-ms")
      opt.server.idle_timeout_ms =
          sqz::util::ThreadPool::parse_jobs(value_of(i), "--idle-timeout-ms");
    else if (a == "--max-body-bytes") {
      const std::string v = value_of(i);
      if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos)
        throw std::invalid_argument(
            "--max-body-bytes expects a byte count, got '" + v + "'");
      opt.server.max_body_bytes =
          static_cast<std::size_t>(std::stoull(v));
    }
    else if (a == "--max-connections") {
      const std::string v = value_of(i);
      opt.server.max_connections =
          v == "0" ? 0
                   : sqz::util::ThreadPool::parse_jobs(v, "--max-connections");
    }
    else if (a == "--workers")
      opt.server.coordinator.workers = split_commas(value_of(i), "--workers");
    else if (a == "--coordinator")
      opt.server.coordinator.accept_registrations = true;
    else if (a == "--join")
      for (const std::string& spec : split_commas(value_of(i), "--join"))
        opt.server.joiner.endpoints.push_back(
            sqz::serve::parse_host_port(spec, "--join"));
    else if (a == "--lease-ms")
      lease_ms = parse_ms(value_of(i), "--lease-ms");
    else if (a == "--standby-of")
      opt.server.standby_of = value_of(i);
    else if (a == "--probe-interval-ms")
      opt.server.coordinator.probe.interval_ms =
          sqz::util::ThreadPool::parse_jobs(value_of(i), "--probe-interval-ms");
    else if (a == "--worker-fail-threshold")
      opt.server.coordinator.probe.fail_threshold =
          sqz::util::ThreadPool::parse_jobs(value_of(i),
                                            "--worker-fail-threshold");
    else if (a == "--probation-ms")
      opt.server.coordinator.probe.probation_ms =
          sqz::util::ThreadPool::parse_jobs(value_of(i), "--probation-ms");
    else if (a == "--chunk-points")
      opt.server.coordinator.chunk_points =
          sqz::util::ThreadPool::parse_jobs(value_of(i), "--chunk-points");
    else if (a == "--straggler-ms")
      opt.server.coordinator.straggler_ms =
          sqz::util::ThreadPool::parse_jobs(value_of(i), "--straggler-ms");
    else throw std::invalid_argument("unknown argument: " + a);
  }
  // --lease-ms is one knob, three roles: the TTL a --join worker asks for,
  // the default TTL a coordinator grants, and the primary-silence window a
  // standby waits out before takeover.
  if (lease_ms > 0) {
    opt.server.joiner.lease_ms = lease_ms;
    opt.server.coordinator.default_lease_ms = lease_ms;
    opt.server.standby_takeover_ms = lease_ms;
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    const Options opt = parse_args(args);
    if (opt.help) {
      std::cout << kUsage;
      return 0;
    }
    sqz::util::ThreadPool::set_global_jobs(opt.jobs);

    sqz::serve::Server server(opt.server);
    server.start();
    std::printf("sqzserved listening on %s:%d (jobs %d, cache %zu entries%s%s)\n",
                opt.server.host.c_str(), server.port(),
                sqz::util::ThreadPool::global_jobs(), opt.server.cache_entries,
                opt.server.cache_dir.empty() ? "" : ", disk tier ",
                opt.server.cache_dir.c_str());
    if (!opt.server.coordinator.workers.empty() ||
        opt.server.coordinator.accept_registrations)
      std::printf("sqzserved coordinating %zu workers%s (chunk %d points, "
                  "straggler %d ms)\n",
                  opt.server.coordinator.workers.size(),
                  opt.server.coordinator.accept_registrations
                      ? ", registrations open"
                      : "",
                  opt.server.coordinator.chunk_points,
                  opt.server.coordinator.straggler_ms);
    if (!opt.server.joiner.endpoints.empty())
      std::printf("sqzserved joining %zu coordinator(s) (lease %lld ms)\n",
                  opt.server.joiner.endpoints.size(),
                  static_cast<long long>(opt.server.joiner.lease_ms));
    if (!opt.server.standby_of.empty())
      std::printf("sqzserved standing by for %s (takeover after %lld ms "
                  "silence)\n",
                  opt.server.standby_of.c_str(),
                  static_cast<long long>(opt.server.standby_takeover_ms));
    std::fflush(stdout);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    while (!g_stop) std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::printf("sqzserved: draining in-flight requests...\n");
    server.stop();
    const auto m = server.metrics().snapshot();
    const auto c = server.cache().stats();
    std::printf(
        "sqzserved: served %llu requests (cache %llu hits / %llu misses); bye\n",
        static_cast<unsigned long long>(m.requests_total),
        static_cast<unsigned long long>(c.hits),
        static_cast<unsigned long long>(c.misses));
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "sqzserved: " << e.what() << "\n" << kUsage;
    return 1;
  }
}
