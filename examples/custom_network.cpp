// Build your own network with the Model builder API, verify it numerically
// on the int16 reference runtime, and evaluate it on the Squeezelerator.
//
// The example constructs a small embedded-vision classifier in the spirit of
// the paper's design rules: a modest 5x5 first filter, fire-style squeeze/
// expand blocks, no depthwise convolutions (poor arithmetic intensity), and
// most layers in the high-utilization later stages.
//
//   $ ./examples/custom_network
#include <cstdio>
#include <iostream>

#include "core/report.h"
#include "core/squeezelerator.h"
#include "nn/analysis.h"
#include "nn/zoo/zoo.h"
#include "runtime/executor.h"
#include "util/strings.h"

namespace {

sqz::nn::Model build_tiny_vision_net() {
  using namespace sqz::nn;
  Model m("TinyVisionNet", TensorShape{3, 96, 96});

  // Stem: small first filter (paper: "filter size reduction for the first
  // layer ... has significant impact on inference time").
  int x = m.add_conv("stem", 24, 5, 2, 0);
  x = m.add_maxpool("pool1", 3, 2, x);

  // Fire-style squeeze/expand blocks.
  const auto fire = [&](const std::string& name, int from, int s, int e) {
    const int sq = m.add_conv(name + "/squeeze", s, 1, 1, 0, from);
    const int e1 = m.add_conv(name + "/e1x1", e, 1, 1, 0, sq);
    const int e3 = m.add_conv(name + "/e3x3", e, 3, 1, 1, sq);
    return m.add_concat(name + "/cat", {e1, e3});
  };
  x = fire("block1", x, 8, 32);
  x = fire("block2", x, 8, 32);
  x = m.add_maxpool("pool2", 3, 2, x);
  // More capacity in the later, high-utilization stages.
  x = fire("block3", x, 16, 64);
  x = fire("block4", x, 16, 64);
  x = fire("block5", x, 24, 96);
  x = m.add_conv("head", 100, 1, 1, 0, x);
  x = m.add_global_avgpool("gap", x);
  m.finalize();
  return m;
}

}  // namespace

int main() {
  using namespace sqz;
  const nn::Model model = build_tiny_vision_net();
  std::printf("%s", model.summary().c_str());

  // Static workload analysis: how do the layer categories split?
  const nn::OpBreakdown ops = nn::analyze_ops(model);
  std::printf("\nLayer-category MAC split: Conv1 %s, 1x1 %s, FxF %s\n",
              util::percent(ops.fraction(nn::LayerCategory::FirstConv)).c_str(),
              util::percent(ops.fraction(nn::LayerCategory::Pointwise)).c_str(),
              util::percent(ops.fraction(nn::LayerCategory::Spatial)).c_str());

  // Functional sanity: run the real int16 inference once.
  runtime::Executor executor(model, runtime::ExecutorConfig{});
  executor.run();
  std::printf("Reference runtime executed: output tensor %s (class scores)\n\n",
              executor.final_output().shape().to_string().c_str());

  // Evaluate against all three accelerator variants.
  const core::ComparisonResult cmp = core::compare_dataflows(model);
  std::printf("On the Squeezelerator: %.3f ms, %s vs WS-only, %s vs OS-only\n\n",
              cmp.hybrid.latency_ms(), util::times(cmp.speedup_vs_ws()).c_str(),
              util::times(cmp.speedup_vs_os()).c_str());
  core::per_layer_table(model, cmp.hybrid, "Per-layer schedule")
      .print(std::cout);

  // How does it compare to SqueezeNet v1.1 per MAC?
  const nn::Model ref = nn::zoo::squeezenet_v11();
  const core::ComparisonResult ref_cmp = core::compare_dataflows(ref);
  std::printf("\nContext: %s runs %.2f ms for %s MACs; %s runs %.2f ms for %s.\n",
              model.name().c_str(), cmp.hybrid.latency_ms(),
              util::si(static_cast<double>(model.total_macs())).c_str(),
              ref.name().c_str(), ref_cmp.hybrid.latency_ms(),
              util::si(static_cast<double>(ref.total_macs())).c_str());
  return 0;
}
