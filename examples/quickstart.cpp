// Quickstart: simulate SqueezeNet v1.0 on the Squeezelerator and print the
// headline numbers — inference latency, utilization, energy breakdown, and
// the speedup over the single-dataflow reference accelerators.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <iostream>

#include "core/report.h"
#include "core/squeezelerator.h"
#include "nn/zoo/zoo.h"
#include "util/strings.h"

int main() {
  using namespace sqz;

  // 1. Pick a network from the zoo (or build your own — see
  //    examples/custom_network.cpp).
  const nn::Model model = nn::zoo::squeezenet_v10();
  std::printf("Simulating %s: %s MACs, %s parameters\n\n", model.name().c_str(),
              util::si(static_cast<double>(model.total_macs())).c_str(),
              util::si(static_cast<double>(model.total_params())).c_str());

  // 2. Configure the accelerator. The default is the paper's Squeezelerator:
  //    32x32 PEs, 16-entry register files, 128 KiB global buffer, hybrid
  //    WS/OS dataflow, DRAM at 100 cycles / 16 GB/s.
  const sim::AcceleratorConfig config = sim::AcceleratorConfig::squeezelerator();
  std::printf("Accelerator: %s\n\n", config.to_string().c_str());

  // 3. Simulate on the hybrid design and on both references in one call.
  const core::ComparisonResult cmp = core::compare_dataflows(model);

  std::printf("Inference latency (batch 1, 1 GHz clock):\n");
  std::printf("  Squeezelerator : %6.2f ms  (utilization %s)\n",
              cmp.hybrid.latency_ms(),
              util::percent(cmp.hybrid.utilization()).c_str());
  std::printf("  WS reference   : %6.2f ms  (%s slower)\n",
              cmp.ws_only.latency_ms(),
              util::times(cmp.speedup_vs_ws()).c_str());
  std::printf("  OS reference   : %6.2f ms  (%s slower)\n\n",
              cmp.os_only.latency_ms(),
              util::times(cmp.speedup_vs_os()).c_str());

  // 4. Where does the energy go?
  core::energy_table(cmp.hybrid, {}, "Energy breakdown (Eyeriss-style units)")
      .print(std::cout);

  // 5. Per-layer view — which dataflow did each layer choose?
  std::printf("\n");
  core::per_layer_table(model, cmp.hybrid, "Per-layer schedule")
      .print(std::cout);
  return 0;
}
