// Detection-style workload (paper §2): "Object detection and semantic
// segmentation are more sensitive to image resolutions ... their input size
// can range from hundreds to thousands of pixels, and the intermediate
// feature map usually cannot be over sub-sampled ... As a result, DNN for
// object detection and semantic segmentation have much larger memory
// footprint."
//
// This example builds a SqueezeDet-flavoured fully-convolutional backbone
// (SqueezeNet trunk + detection head, no FC layers) at a 512x512 input and
// contrasts its memory behaviour with the 227x227 classifier: how many
// layers stay resident in the 128 KiB global buffer, where the DRAM traffic
// goes, and what that does to the DMA/compute balance.
//
//   $ ./examples/detection_backbone
#include <cstdio>
#include <iostream>

#include "energy/model.h"
#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "sched/residency.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

sqz::nn::Model build_detection_backbone(int resolution) {
  using namespace sqz::nn;
  Model m(sqz::util::format("SqueezeDet-like-%d", resolution),
          TensorShape{3, resolution, resolution});

  const auto fire = [&](const std::string& name, int from, int s, int e) {
    const int sq = m.add_conv(name + "/squeeze", s, 1, 1, 0, from);
    const int e1 = m.add_conv(name + "/e1x1", e, 1, 1, 0, sq);
    const int e3 = m.add_conv(name + "/e3x3", e, 3, 1, 1, sq);
    return m.add_concat(name + "/cat", {e1, e3});
  };

  int x = m.add_conv("conv1", 64, 3, 2, 1);
  x = m.add_maxpool("pool1", 3, 2, x, 1);
  x = fire("fire2", x, 16, 64);
  x = fire("fire3", x, 16, 64);
  x = m.add_maxpool("pool3", 3, 2, x, 1);
  x = fire("fire4", x, 32, 128);
  x = fire("fire5", x, 32, 128);
  x = m.add_maxpool("pool5", 3, 2, x, 1);
  x = fire("fire6", x, 48, 192);
  x = fire("fire7", x, 48, 192);
  x = fire("fire8", x, 64, 256);
  x = fire("fire9", x, 64, 256);
  // Detection keeps spatial detail: two more fire stages *without* pooling,
  // then a convolutional detection head (anchors x (class + box) outputs).
  x = fire("fire10", x, 96, 384);
  x = fire("fire11", x, 96, 384);
  m.add_conv("det_head", 72, 3, 1, 1, x);  // 9 anchors x (4 box + 4 cls)
  m.finalize();
  return m;
}

}  // namespace

int main() {
  using namespace sqz;
  const sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();

  const nn::Model classifier = nn::zoo::squeezenet_v10();
  const nn::Model detector = build_detection_backbone(512);

  util::Table t("Classification vs detection on the Squeezelerator");
  t.set_header({"Workload", "input", "MMACs", "peak act (KiB)",
                "resident layers", "ms", "DRAM (Mwords)", "energy share DRAM"});
  for (const nn::Model* m : {&classifier, &detector}) {
    const auto r = sched::simulate_network(*m, cfg);
    const auto plan = sched::plan_residency(*m, cfg);
    int kept = 0, total = 0;
    for (int i = 1; i < m->layer_count(); ++i) {
      ++total;
      if (plan.kept[static_cast<std::size_t>(i)]) ++kept;
    }
    const auto e = energy::network_energy(r);
    t.add_row({m->name(), m->input_shape().to_string(),
               util::format("%.0f", m->total_macs() / 1e6),
               util::format("%.0f", m->peak_activation_bytes(2) / 1024.0),
               util::format("%d / %d", kept, total),
               util::format("%.2f", r.latency_ms()),
               util::format("%.1f",
                            static_cast<double>(r.total_counts().dram_words) / 1e6),
               util::percent(e.dram / e.total())});
  }
  t.print(std::cout);

  // Where the detector's time goes: the high-resolution trunk is DMA-heavy.
  const auto r = sched::simulate_network(detector, cfg);
  std::int64_t dma_bound = 0, compute_bound = 0;
  for (const auto& l : r.layers)
    (l.dram_cycles > l.compute_cycles ? dma_bound : compute_bound) +=
        l.total_cycles;
  std::printf(
      "\nDetector time split: %.0f%% of cycles in DMA-bound layers vs %.0f%%\n"
      "compute-bound — the large-feature-map memory pressure the paper's\n"
      "Section 2 warns about. The classifier keeps most mid-network tensors\n"
      "on-chip; the 512x512 detector streams nearly everything.\n",
      100.0 * dma_bound / (dma_bound + compute_bound),
      100.0 * compute_bound / (dma_bound + compute_bound));
  return 0;
}
