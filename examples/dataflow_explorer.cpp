// Interactive-ish dataflow explorer: pick a network and an array size on the
// command line, and see WS vs OS vs hybrid per layer — the tool you'd use to
// answer the paper's §4.1.1 question ("each layer configuration must be
// simulated to determine which architecture is best").
//
//   $ ./examples/dataflow_explorer                 # SqueezeNet v1.0 on 32x32
//   $ ./examples/dataflow_explorer mobilenet 16    # MobileNet on a 16x16 array
//   Networks: alexnet mobilenet tinydarknet squeezenet10 squeezenet11 sqnxt
#include <cstdio>
#include <iostream>
#include <string>

#include "nn/zoo/zoo.h"
#include "sim/layer_sim.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

sqz::nn::Model pick_model(const std::string& name) {
  using namespace sqz::nn::zoo;
  if (name == "alexnet") return alexnet();
  if (name == "mobilenet") return mobilenet();
  if (name == "tinydarknet") return tiny_darknet();
  if (name == "squeezenet10") return squeezenet_v10();
  if (name == "squeezenet11") return squeezenet_v11();
  if (name == "sqnxt") return squeezenext();
  throw std::invalid_argument(
      "unknown network '" + name +
      "' (try: alexnet mobilenet tinydarknet squeezenet10 squeezenet11 sqnxt)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqz;
  try {
    const std::string which = argc > 1 ? argv[1] : "squeezenet10";
    const int n = argc > 2 ? std::stoi(argv[2]) : 32;

    const nn::Model model = pick_model(which);
    sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();
    cfg.array_n = n;
    cfg.preload_width = n;
    cfg.drain_width = n;
    cfg.validate();

    std::printf("%s on a %dx%d Squeezelerator\n\n", model.name().c_str(), n, n);

    util::Table t("Per-layer dataflow exploration (kcycles; * = chosen)");
    t.set_header({"layer", "shape", "WS", "OS", "choice", "OS/WS ratio"});
    std::int64_t total_ws = 0, total_os = 0, total_best = 0;
    for (int i = 1; i < model.layer_count(); ++i) {
      const nn::Layer& l = model.layer(i);
      if (!l.is_conv()) continue;
      const auto ws =
          sim::simulate_layer(model, i, cfg, sim::Dataflow::WeightStationary);
      const auto os =
          sim::simulate_layer(model, i, cfg, sim::Dataflow::OutputStationary);
      const bool ws_wins = ws.total_cycles <= os.total_cycles;
      total_ws += ws.total_cycles;
      total_os += os.total_cycles;
      total_best += std::min(ws.total_cycles, os.total_cycles);
      t.add_row({l.name, l.out_shape.to_string(),
                 util::format("%.1f%s", ws.total_cycles / 1e3, ws_wins ? "*" : ""),
                 util::format("%.1f%s", os.total_cycles / 1e3, ws_wins ? "" : "*"),
                 ws_wins ? "WS" : "OS",
                 util::format("%.2f", static_cast<double>(os.total_cycles) /
                                          static_cast<double>(ws.total_cycles))});
    }
    t.add_separator();
    t.add_row({"TOTAL (conv only)", "",
               util::format("%.1f", static_cast<double>(total_ws) / 1e3),
               util::format("%.1f", static_cast<double>(total_os) / 1e3),
               util::format("best %.1f", static_cast<double>(total_best) / 1e3),
               ""});
    t.print(std::cout);

    std::printf(
        "\nPer-layer choice beats all-WS by %s and all-OS by %s on the conv "
        "layers.\n",
        util::times(static_cast<double>(total_ws) / total_best).c_str(),
        util::times(static_cast<double>(total_os) / total_best).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
