// The paper's full co-design loop, end to end:
//
//   1. Start from the accelerator tailored to SqueezeNet (§4.1).
//   2. Diagnose a new model family's hardware behaviour on it (§4.2,
//      Figure 3): which layers under-use the array, and why.
//   3. Redesign the model following the diagnosis (first-filter reduction,
//      early->late block reallocation) — here by stepping through the
//      SqNxt-23 v1..v5 variants.
//   4. Re-tune the accelerator for the final model (register file 8 -> 16).
//
//   $ ./examples/codesign_flow
#include <cstdio>
#include <iostream>

#include "core/advisor.h"
#include "core/codesign.h"
#include "energy/model.h"
#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sqz;
  using nn::zoo::SqNxtVariant;

  // --- Step 1: the SqueezeNet-tailored accelerator (pre-tune-up: RF 8). ---
  sim::AcceleratorConfig accel = sim::AcceleratorConfig::squeezelerator_rf8();
  std::printf("Step 1 — accelerator tailored to SqueezeNet:\n  %s\n\n",
              accel.to_string().c_str());

  // --- Step 2: diagnose the baseline SqueezeNext variant on it. -----------
  const nn::Model baseline = nn::zoo::squeezenext(SqNxtVariant::V1);
  const core::ModelAdvice advice = core::analyze_model(baseline, accel);
  std::printf("Step 2 — diagnosis of %s (network utilization %s):\n",
              baseline.name().c_str(),
              util::percent(advice.network_utilization).c_str());
  util::Table diag("  Low-utilization layers (< 25%)");
  diag.set_header({"layer", "dataflow", "util", "bottleneck"});
  for (const core::LayerDiagnosis& d : advice.low_utilization(0.25)) {
    if (diag.row_count() >= 10) break;  // show the first ten
    diag.add_row({d.layer_name, sim::dataflow_abbrev(d.dataflow),
                  util::percent(d.utilization),
                  core::bottleneck_name(d.bottleneck)});
  }
  diag.print(std::cout);
  std::printf("  ... the flagged layers concentrate in conv1/stage1 — the\n"
              "  paper's 'initial layers have very low utilization'.\n\n");

  // --- Step 3: redesign the model (the v1 -> v5 progression). -------------
  std::printf("Step 3 — model redesign:\n");
  util::Table redesign("  SqNxt-23 variants on the RF-8 accelerator");
  redesign.set_header({"variant", "MMACs", "kcycles", "energy (M)"});
  for (auto v : {SqNxtVariant::V1, SqNxtVariant::V2, SqNxtVariant::V3,
                 SqNxtVariant::V4, SqNxtVariant::V5}) {
    const nn::Model m = nn::zoo::squeezenext(v);
    const auto r = sched::simulate_network(m, accel);
    redesign.add_row(
        {m.name(), util::format("%.0f", m.total_macs() / 1e6),
         util::format("%.0f", r.total_cycles() / 1e3),
         util::format("%.0f", energy::network_energy(r).total() / 1e6)});
  }
  redesign.print(std::cout);
  std::printf("\n");

  // --- Step 4: re-tune the accelerator for the final model. ---------------
  const nn::Model final_model = nn::zoo::squeezenext(SqNxtVariant::V5);
  core::TuningSpace space;
  space.rf_entries = {8, 16};  // the paper's two candidate designs
  const core::TuningResult tuned = core::tune_accelerator(final_model, space, accel);
  std::printf("Step 4 — accelerator re-tuning for %s:\n",
              final_model.name().c_str());
  for (const core::TuningCandidate& c : tuned.candidates)
    std::printf("  RF %-3d -> %8.0f kcycles, %8.0f M energy%s\n",
                c.config.rf_entries, static_cast<double>(c.cycles) / 1e3,
                c.energy / 1e6,
                c.config.rf_entries == tuned.best.rf_entries ? "   <== chosen"
                                                             : "");
  std::printf(
      "\nThe tuner lands on RF %d — the paper's 'doubling the register file\n"
      "size from 8 to 16' tune-up, recovered automatically.\n\n",
      tuned.best.rf_entries);

  // --- Step 5: pick the right family member for the application. ----------
  // Paper (Figure 4): the family "allows the user to select the right DNN
  // based on the target application's constraints."
  core::ApplicationConstraints budget;
  budget.max_latency_ms = 1.2;   // a 30 fps pipeline with headroom
  budget.min_top1 = 59.0;
  std::vector<nn::Model> family;
  for (auto v : {SqNxtVariant::V1, SqNxtVariant::V5})
    family.push_back(nn::zoo::squeezenext(v));
  family.push_back(nn::zoo::squeezenext(SqNxtVariant::V5, 1.0, 34));
  family.push_back(nn::zoo::squeezenext(SqNxtVariant::V5, 1.0, 44));
  family.push_back(nn::zoo::squeezenext(SqNxtVariant::V5, 2.0, 23));
  const core::AdvisorResult pick = core::select_network(family, budget, tuned.best);
  std::printf("Step 5 — application selection (<= %.1f ms, >= %.1f%% top-1):\n",
              budget.max_latency_ms, budget.min_top1);
  for (const core::CandidateEvaluation& e : pick.candidates)
    if (e.feasible)
      std::printf("  feasible: %-20s %.1f%% top-1, %.2f ms\n", e.name.c_str(),
                  e.top1, e.latency_ms);
  if (pick.best)
    std::printf("  selected: %s\n", pick.candidates[*pick.best].name.c_str());
  return 0;
}
