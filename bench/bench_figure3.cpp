// Reproduces Figure 3: per-layer inference time and PE utilization for five
// variants (v1..v5) of the 1.0-SqNxt-23 architecture, showing the low
// utilization of the initial layers and the effect of the two optimization
// classes (5x5 first filter; early->late block reallocation).
#include <cstdio>
#include <iostream>

#include "energy/model.h"
#include "nn/accuracy.h"
#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sqz;
  using nn::zoo::SqNxtVariant;
  const sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();

  util::Table summary("Figure 3 — 1.0-SqNxt-23 variants on the Squeezelerator");
  summary.set_header({"Variant", "conv1", "blocks/stage", "MMACs", "kcycles",
                      "util", "energy (M)", "top-1"});

  const struct {
    SqNxtVariant v;
    const char* conv1;
    const char* blocks;
    const char* name;
  } variants[] = {
      {SqNxtVariant::V1, "7x7", "[6,6,8,1]", "1.0-SqNxt-23 v1"},
      {SqNxtVariant::V2, "5x5", "[6,6,8,1]", "1.0-SqNxt-23 v2"},
      {SqNxtVariant::V3, "5x5", "[4,8,8,1]", "1.0-SqNxt-23 v3"},
      {SqNxtVariant::V4, "5x5", "[2,10,8,1]", "1.0-SqNxt-23 v4"},
      {SqNxtVariant::V5, "5x5", "[2,4,14,1]", "1.0-SqNxt-23 v5"},
  };

  sim::NetworkResult v1_result, v5_result;
  nn::Model v1_model("x", nn::TensorShape{1, 1, 1}), v5_model = v1_model;
  for (const auto& var : variants) {
    const nn::Model m = nn::zoo::squeezenext(var.v);
    const sim::NetworkResult r = sched::simulate_network(m, cfg);
    summary.add_row(
        {var.name, var.conv1, var.blocks,
         util::format("%.0f", static_cast<double>(m.total_macs()) / 1e6),
         util::format("%.0f", static_cast<double>(r.total_cycles()) / 1e3),
         util::percent(r.utilization()),
         util::format("%.0f", energy::network_energy(r).total() / 1e6),
         util::format("%.1f%%", nn::published_accuracy(m.name())->top1)});
    if (var.v == SqNxtVariant::V1) {
      v1_result = r;
      v1_model = m;
    }
    if (var.v == SqNxtVariant::V5) {
      v5_result = r;
      v5_model = m;
    }
  }
  summary.print(std::cout);

  // Per-stage utilization profile: the paper's "initial layers have very low
  // utilization" observation, for the baseline and the optimized variant.
  const auto stage_profile = [&](const nn::Model& m, const sim::NetworkResult& r,
                                 const char* title) {
    util::Table t(title);
    t.set_header({"stage", "conv layers", "kcycles", "avg util"});
    const char* stages[] = {"conv1", "stage1/", "stage2/", "stage3/", "stage4/"};
    for (const char* st : stages) {
      double util_sum = 0;
      std::int64_t cycles = 0;
      int n = 0;
      for (const auto& l : r.layers) {
        const nn::Layer& layer = m.layer(l.layer_idx);
        if (!layer.is_conv()) continue;
        const bool match = std::string(st) == "conv1"
                               ? layer.name == "conv1"
                               : layer.name.rfind(st, 0) == 0;
        if (!match) continue;
        util_sum += l.utilization(r.config.pe_count());
        cycles += l.total_cycles;
        ++n;
      }
      if (n == 0) continue;
      t.add_row({st, util::format("%d", n),
                 util::format("%.0f", static_cast<double>(cycles) / 1e3),
                 util::percent(util_sum / n)});
    }
    std::printf("\n");
    t.print(std::cout);
  };
  stage_profile(v1_model, v1_result, "Per-stage profile — v1 (baseline)");
  stage_profile(v5_model, v5_result, "Per-stage profile — v5 (optimized)");

  const double speedup = static_cast<double>(v1_result.total_cycles()) /
                         static_cast<double>(v5_result.total_cycles());
  std::printf(
      "\nv5 vs v1: %.2fx faster, %.2fx less energy, with ~constant MACs and\n"
      "slightly better published accuracy — the paper's Figure 3 narrative.\n",
      speedup, energy::network_energy(v1_result).total() /
                   energy::network_energy(v5_result).total());
  return 0;
}
