// Ablation: global-buffer capacity. The paper fixes 128 KB; this sweep shows
// what that choice buys — how much activation traffic the residency planner
// keeps on-chip as the buffer grows, and where the returns flatten.
#include <cstdio>
#include <iostream>

#include "energy/model.h"
#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "sched/residency.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sqz;

  for (const nn::Model& m :
       {nn::zoo::squeezenet_v10(), nn::zoo::squeezenext()}) {
    util::Table t(util::format("Global-buffer sweep — %s", m.name().c_str()));
    t.set_header({"GB KiB", "resident layers", "DRAM (Mwords)", "kcycles",
                  "energy (M)"});
    for (int kib : {32, 64, 128, 256, 512, 1024}) {
      sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();
      cfg.gb_kib = kib;
      const auto r = sched::simulate_network(m, cfg);
      const auto plan = sched::plan_residency(m, cfg);
      int kept = 0;
      for (std::size_t i = 1; i + 1 < plan.kept.size(); ++i)
        if (plan.kept[i]) ++kept;
      t.add_row({util::format("%d%s", kib, kib == 128 ? " (paper)" : ""),
                 util::format("%d / %d", kept, m.layer_count() - 2),
                 util::format("%.1f",
                              static_cast<double>(r.total_counts().dram_words) / 1e6),
                 util::format("%.0f", r.total_cycles() / 1e3),
                 util::format("%.0f", energy::network_energy(r).total() / 1e6)});
    }
    t.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
