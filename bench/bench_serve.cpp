// google-benchmark micro-benchmarks of the serving layer: request
// canonicalization cost (what a cache hit pays), the content-addressed
// cache itself, the HTTP message grammar, and the compiled-plan path —
// a fresh compile (simulate + dataflow search) against a plan replay
// (pinned dataflows, no search), which is what a plan-cache hit buys
// the daemon on a result-cache miss. These bound the daemon's
// per-request overhead against the milliseconds a simulation costs.
#include <benchmark/benchmark.h>

#include <string>

#include "nn/zoo/zoo.h"
#include "sched/plan_io.h"
#include "serve/api.h"
#include "serve/http.h"
#include "serve/simcache.h"

namespace {

using namespace sqz;

const std::string kSimulateBody =
    R"({"model":"squeezenet11","config":{"rf_entries":8},)"
    R"("options":{"objective":"cycles"}})";

void BM_ParseAndCanonicalizeRequest(benchmark::State& state) {
  for (auto _ : state) {
    const serve::SimulateRequest req =
        serve::parse_simulate_request(kSimulateBody);
    benchmark::DoNotOptimize(serve::canonical_key(req).size());
  }
}
BENCHMARK(BM_ParseAndCanonicalizeRequest);

void BM_Fnv1aHash(benchmark::State& state) {
  const std::string key(static_cast<std::size_t>(state.range(0)), 'k');
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve::SimCache::fnv1a(key));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Fnv1aHash)->Arg(64)->Arg(4096)->Arg(65536);

void BM_SimCacheHit(benchmark::State& state) {
  serve::SimCache cache(1024);
  const std::string key(256, 'k');
  cache.put(key, std::string(16384, 'v'));  // a typical report's size class
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(key)->size());
  }
}
BENCHMARK(BM_SimCacheHit);

void BM_SimCachePutEvicting(benchmark::State& state) {
  serve::SimCache cache(64);  // every put beyond 64 evicts
  const std::string value(16384, 'v');
  std::size_t n = 0;
  for (auto _ : state) {
    cache.put("key-" + std::to_string(n++), value);
  }
}
BENCHMARK(BM_SimCachePutEvicting);

void BM_HttpParseRequest(benchmark::State& state) {
  serve::HttpRequest req;
  req.method = "POST";
  req.target = "/v1/simulate";
  req.headers.emplace_back("Content-Type", "application/json");
  req.body = kSimulateBody;
  const std::string wire = req.serialize();
  for (auto _ : state) {
    serve::HttpRequest out;
    std::size_t consumed = 0;
    benchmark::DoNotOptimize(
        serve::parse_http_request(wire, out, consumed, nullptr));
  }
}
BENCHMARK(BM_HttpParseRequest);

// --- compiled-plan path: what a plan-cache hit skips -----------------------
// The cold path on a hybrid config simulates every conv under both
// dataflows and searches; the replay path pins the recorded choices and
// simulates each layer exactly once. The ratio of these two is the
// speedup a warm plan cache delivers on a result-cache miss.

void BM_PlanColdCompileSqueezeNet(benchmark::State& state) {
  const nn::Model model = nn::zoo::squeezenet_v11();
  const sim::AcceleratorConfig config = sim::AcceleratorConfig::squeezelerator();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::compile_plan(model, config, {}).program.commands.size());
  }
}
BENCHMARK(BM_PlanColdCompileSqueezeNet)->Unit(benchmark::kMillisecond);

void BM_PlanReplaySqueezeNet(benchmark::State& state) {
  const nn::Model model = nn::zoo::squeezenet_v11();
  const sim::AcceleratorConfig config = sim::AcceleratorConfig::squeezelerator();
  const sched::PlanArtifact plan = sched::compile_plan(model, config, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::simulate_with_plan(model, config, {}, plan.program)
            .total_cycles());
  }
}
BENCHMARK(BM_PlanReplaySqueezeNet)->Unit(benchmark::kMillisecond);

void BM_PlanDeserializeSqueezeNet(benchmark::State& state) {
  const std::string bytes = sched::serialize_plan(sched::compile_plan(
      nn::zoo::squeezenet_v11(), sim::AcceleratorConfig::squeezelerator(), {}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::deserialize_plan(bytes).program.commands.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_PlanDeserializeSqueezeNet);

}  // namespace

BENCHMARK_MAIN();
