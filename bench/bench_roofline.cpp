// Roofline view of the six networks on the Squeezelerator: the quantitative
// form of the paper's arithmetic-intensity argument (SqueezeNext avoids
// depthwise convolutions because of their "poor Arithmetic Intensity").
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/roofline.h"
#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sqz;
  const sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();

  util::Table t("Roofline summary (balance point AI* = 64 MACs/DRAM-byte)");
  t.set_header({"Network", "memory-bound layers", "median AI",
                "worst layer", "worst AI", "network MACs/cycle"});
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    const auto result = sched::simulate_network(m, cfg);
    const core::RooflineReport r = core::roofline(m, result);

    std::vector<double> ais;
    const core::RooflinePoint* worst = nullptr;
    for (const core::RooflinePoint& p : r.layers) {
      ais.push_back(p.arithmetic_intensity);
      if (worst == nullptr || p.arithmetic_intensity < worst->arithmetic_intensity)
        worst = &p;
    }
    std::sort(ais.begin(), ais.end());
    const double median = ais[ais.size() / 2];
    const double net_mpc = static_cast<double>(result.total_useful_macs()) /
                           static_cast<double>(result.total_cycles());
    t.add_row({m.name(),
               util::format("%d / %zu", r.memory_bound_count(), r.layers.size()),
               util::format("%.1f", median), worst ? worst->layer_name : "-",
               util::format("%.2f", worst ? worst->arithmetic_intensity : 0.0),
               util::format("%.0f", net_mpc)});
  }
  t.print(std::cout);

  // Per-layer detail for MobileNet: the depthwise-vs-pointwise AI gap.
  const nn::Model m = nn::zoo::mobilenet();
  const core::RooflineReport r =
      core::roofline(m, sched::simulate_network(m, cfg));
  util::Table d("MobileNet per-layer roofline (first 12 MAC layers)");
  d.set_header({"layer", "AI (MACs/byte)", "attained MACs/cyc", "roof",
                "% of roof", "bound"});
  for (const core::RooflinePoint& p : r.layers) {
    if (d.row_count() >= 12) break;
    d.add_row({p.layer_name, util::format("%.1f", p.arithmetic_intensity),
               util::format("%.0f", p.attained_macs_per_cycle),
               util::format("%.0f", p.roof_macs_per_cycle),
               util::percent(p.roof_fraction()),
               p.memory_bound ? "memory" : "compute"});
  }
  std::printf("\n");
  d.print(std::cout);
  return 0;
}
