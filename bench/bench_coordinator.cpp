// google-benchmark micro-benchmarks of the distributed sweep fabric
// (serve/coordinator.h): consistent-hash ring routing and health reporting
// (paid per chunk under the dispatch lock), and the end-to-end loopback
// coordination overhead — a coordinator plus one in-process worker whose
// result cache is warm, so steady-state iterations measure sharding,
// dispatch HTTP, dump parsing, and re-rendering rather than simulation.
// These bound what coordinator mode costs on top of a single-node sweep.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "serve/api.h"
#include "serve/httpclient.h"
#include "serve/server.h"
#include "serve/workerpool.h"
#include "util/hash.h"

namespace {

using namespace sqz;

std::vector<serve::HostPort> fleet(int n) {
  std::vector<serve::HostPort> out;
  for (int i = 0; i < n; ++i) out.push_back({"127.0.0.1", 7000 + i});
  return out;
}

void BM_RingRoute(benchmark::State& state) {
  serve::WorkerPool pool(fleet(static_cast<int>(state.range(0))),
                         serve::ProbePolicy{});
  // Pre-hash so iterations measure the ring walk, not FNV-1a.
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 1024; ++i)
    keys.push_back(util::fnv1a64("point-" + std::to_string(i)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.route(keys[i++ & 1023]));
  }
}
BENCHMARK(BM_RingRoute)->Arg(3)->Arg(8)->Arg(32);

void BM_RingRouteExcluding(benchmark::State& state) {
  serve::WorkerPool pool(fleet(8), serve::ProbePolicy{});
  const std::vector<int> exclude = {0, 1};  // a requeue retreading the ring
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 1024; ++i)
    keys.push_back(util::fnv1a64("point-" + std::to_string(i)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.route(keys[i++ & 1023], exclude));
  }
}
BENCHMARK(BM_RingRouteExcluding);

void BM_WorkerPoolReport(benchmark::State& state) {
  serve::WorkerPool pool(fleet(8), serve::ProbePolicy{});
  std::size_t w = 0;
  for (auto _ : state) {
    pool.report(w, true);  // the per-chunk health signal
    w = (w + 1) % 8;
  }
}
BENCHMARK(BM_WorkerPoolReport);

// --- end-to-end coordination overhead ---------------------------------------
// One stock worker and one coordinator, both in-process over loopback. The
// coordinator's own response cache holds a single entry and the two bodies
// alternate, so every iteration re-shards and re-dispatches; the worker's
// cache answers each chunk without simulating after the first lap.

const char* kBodyA =
    R"({"model":"tinydarknet",)"
    R"("sweep":{"knob":"rf_entries","values":[4,8,16,32]}})";
const char* kBodyB =
    R"({"model":"tinydarknet",)"
    R"("sweep":{"knob":"rf_entries","values":[4,8,16,64]}})";

serve::HttpResponse post_sweep(int port, const std::string& body) {
  serve::HttpRequest req;
  req.method = "POST";
  req.target = "/v1/sweep";
  req.headers.emplace_back("Content-Type", "application/json");
  req.body = body;
  return serve::http_fetch("127.0.0.1", port, std::move(req), 60000);
}

void BM_DistributedSweepWarmWorker(benchmark::State& state) {
  serve::ServerOptions worker_opt;
  worker_opt.port = 0;
  serve::Server worker(worker_opt);
  worker.start();

  serve::ServerOptions coord_opt;
  coord_opt.port = 0;
  coord_opt.cache_entries = 1;  // the alternating bodies always miss
  coord_opt.coordinator.workers.push_back("127.0.0.1:" +
                                          std::to_string(worker.port()));
  serve::Server coord(coord_opt);
  coord.start();

  post_sweep(coord.port(), kBodyA);  // warm the worker's chunk cache
  post_sweep(coord.port(), kBodyB);
  bool a = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        post_sweep(coord.port(), a ? kBodyA : kBodyB).body.size());
    a = !a;
  }
  coord.stop();
  worker.stop();
}
BENCHMARK(BM_DistributedSweepWarmWorker)->Unit(benchmark::kMillisecond);

void BM_LocalSweepBaseline(benchmark::State& state) {
  // The single-node cost of the same sweeps, simulation included — the
  // denominator for judging the fabric's overhead.
  bool a = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        serve::run_sweep(serve::parse_sweep_request(a ? kBodyA : kBodyB))
            .size());
    a = !a;
  }
}
BENCHMARK(BM_LocalSweepBaseline)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
