// Two-phase screening speedup (docs/ESTIMATOR.md, ARCHITECTURE.md
// "Two-phase sweeps"): scoring a register-file x dataflow design space of
// 1.0 MobileNet-224 with the closed-form analytical estimator (src/est)
// versus simulating every point cycle-exactly at the fidelity screening
// replaces (tile timeline + per-layer tile search). The mapper's cost
// scales with layer extents while the closed form's does not, so the gap
// is widest on large-featuremap networks (MobileNet, AlexNet) and
// narrowest on many-tiny-layer ones (SqueezeNext).
//
// Reports points/sec for both paths and the throughput ratio — the
// screening contract is that the analytical pass is at least 50x faster —
// then times a full screened sweep (phase 1 everywhere + phase 2 on the
// retained Pareto band) against the all-exact sweep, the wall-clock
// before/after quoted in EXPERIMENTS.md. Exits non-zero if the ratio falls
// under 50x or the screened sweep misses the exact sweep's Pareto front.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/dse.h"
#include "est/estimator.h"
#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sqz;
  using Clock = std::chrono::steady_clock;
  const auto seconds = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration_cast<std::chrono::microseconds>(b - a).count() /
           1e6;
  };

  const nn::Model model = nn::zoo::mobilenet();

  // The RF x dataflow space: every register-file depth the PE supports
  // crossed with the three dataflow-support variants of the paper's
  // comparison (hybrid Squeezelerator, WS-only and OS-only references).
  std::vector<std::pair<std::string, sim::AcceleratorConfig>> configs;
  for (const int rf : {1, 2, 4, 8, 12, 16, 24, 32}) {
    for (const auto& [tag, support] :
         {std::pair<const char*, sim::DataflowSupport>{
              "hybrid", sim::DataflowSupport::Hybrid},
          {"ws", sim::DataflowSupport::WsOnly},
          {"os", sim::DataflowSupport::OsOnly}}) {
      sim::AcceleratorConfig c = sim::AcceleratorConfig::squeezelerator();
      c.rf_entries = rf;
      c.support = support;
      configs.emplace_back(util::format("RF=%d/%s", rf, tag), c);
    }
  }
  const std::size_t n = configs.size();

  sched::SimulationOptions fidelity;
  fidelity.tile_timeline = true;
  fidelity.tile_search = true;

  // Warm-up (weight synthesis and other first-touch costs).
  (void)est::estimate_network(model, configs.front().second, fidelity);
  (void)sched::simulate_network(model, configs.front().second, fidelity);

  const auto t0 = Clock::now();
  for (const auto& [label, cfg] : configs)
    (void)sched::simulate_network(model, cfg, fidelity);
  const auto t1 = Clock::now();
  for (const auto& [label, cfg] : configs)
    (void)est::estimate_network(model, cfg, fidelity);
  const auto t2 = Clock::now();

  const double exact_s = seconds(t0, t1);
  const double est_s = seconds(t1, t2);
  const double exact_pps = static_cast<double>(n) / exact_s;
  const double est_pps = static_cast<double>(n) / est_s;
  const double ratio = est_pps / exact_pps;

  std::printf("%zu-point RF x dataflow space on %s (single-threaded)\n\n",
              n, model.name().c_str());
  util::Table t("analytical screening vs cycle-exact simulation");
  t.set_header({"path", "wall s", "points/sec", "vs exact"});
  t.add_row({"cycle-exact (timeline+search)", util::format("%.2f", exact_s),
             util::format("%.1f", exact_pps), "1.0x"});
  t.add_row({"analytical estimator", util::format("%.4f", est_s),
             util::format("%.1f", est_pps), util::format("%.0fx", ratio)});
  t.print(std::cout);

  // The end-to-end two-phase sweep: phase 1 everywhere, phase 2 only on the
  // retained band — versus paying cycle-exact fidelity for every point.
  core::SweepOptions exact_opt;
  exact_opt.tile_timeline = true;
  exact_opt.tile_search = true;
  exact_opt.preflight = false;
  core::SweepOptions screened_opt = exact_opt;
  screened_opt.screen = true;

  const auto t3 = Clock::now();
  const core::SweepOutcome full =
      core::evaluate_designs_checked(model, configs, exact_opt);
  const auto t4 = Clock::now();
  const core::SweepOutcome screened =
      core::evaluate_designs_checked(model, configs, screened_opt);
  const auto t5 = Clock::now();

  // The screened sweep is only safe if the band it re-simulates contains
  // the true Pareto front: every exact-front label must come out of the
  // screened run with phase "exact" (see docs/ESTIMATOR.md "When screening
  // is safe").
  std::size_t front_missed = 0;
  for (const core::DesignPoint& p : core::pareto_front(full.points)) {
    bool resimulated = false;
    for (const core::DesignPoint& q : screened.points)
      if (q.label == p.label &&
          q.phase == core::DesignPoint::Phase::Exact) resimulated = true;
    if (!resimulated) ++front_missed;
  }

  std::printf("\nfull exact sweep:  %.2fs (%zu points)\n", seconds(t3, t4),
              full.points.size());
  std::printf("screened sweep:    %.2fs (%zu screened, %zu re-simulated, "
              "max err %.2f%%)\n",
              seconds(t4, t5), screened.screen_points, screened.screen_kept,
              screened.screen_error_max_pct);
  std::printf("sweep speedup:     %.1fx\n", seconds(t3, t4) / seconds(t4, t5));
  std::printf("exact-front points missed by the band: %zu\n", front_missed);
  std::printf("\nscreening throughput ratio %.0fx (target >= 50x): %s\n", ratio,
              ratio >= 50.0 ? "PASS" : "FAIL");
  return (ratio >= 50.0 && front_missed == 0) ? 0 : 1;
}
