// Reproduces Table 2: "Speed and Energy Improvements of Squeezelerator over
// OS or WS architectures" for the six evaluated networks.
#include <cstdio>
#include <iostream>

#include <vector>

#include "core/report.h"
#include "core/squeezelerator.h"
#include "nn/zoo/zoo.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/threadpool.h"

int main() {
  using namespace sqz;

  struct PaperRow {
    double s_os, s_ws;      // speedups
    int e_os, e_ws;         // energy reductions, percent
  };
  const PaperRow paper[] = {
      {1.00, 1.19, -2, 6}, {1.91, 6.35, 8, 6},  {1.14, 1.32, 0, 24},
      {1.26, 2.06, 6, 23}, {1.34, 1.18, 8, 10}, {1.26, 2.44, 0, 20},
  };

  util::Table t("Table 2 — Squeezelerator speedup & energy reduction vs "
                "single-dataflow references (measured | paper)");
  t.set_header({"Network", "vs OS", "vs WS", "E vs OS", "E vs WS",
                "paper S(OS/WS)", "paper E(OS/WS)"});

  const auto models = nn::zoo::all_table1_models();
  // Three full-network simulations per model; evaluate the models in
  // parallel into position-indexed slots, then render rows in zoo order.
  std::vector<core::Table2Row> rows(models.size());
  util::ThreadPool::global().parallel_for_index(
      models.size(), [&](std::size_t i) {
        rows[i] = core::table2_row(models[i], core::compare_dataflows(models[i]));
      });
  for (std::size_t i = 0; i < models.size(); ++i) {
    const core::Table2Row& row = rows[i];
    t.add_row({row.network, util::times(row.speedup_vs_os),
               util::times(row.speedup_vs_ws),
               util::format("%+.0f%%", 100 * row.energy_red_vs_os),
               util::format("%+.0f%%", 100 * row.energy_red_vs_ws),
               util::format("%.2fx / %.2fx", paper[i].s_os, paper[i].s_ws),
               util::format("%+d%% / %+d%%", paper[i].e_os, paper[i].e_ws)});
  }
  t.print(std::cout);
  std::printf(
      "\nShape checks (paper s4.1.3): MobileNet gains most from dual dataflow;\n"
      "AlexNet (FC-dominated) gains least; OS-side gains correlate with the\n"
      "network's 1x1 share. Exact deltas are tabulated in EXPERIMENTS.md.\n");
  return 0;
}
