// Ablation: double buffering. The paper: "In order to hide the data
// transfer time between the DRAM and the global buffer, we used double
// buffering [13]." This bench re-times every network through the tile-level
// event timeline with two staging buffers vs one, and shows a sample DMA/
// compute trace.
#include <cstdio>
#include <iostream>

#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "sim/tiling.h"
#include "sim/timeline.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sqz;
  const sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();

  util::Table t("Double-buffering ablation (tile-level event timeline)");
  t.set_header({"Network", "flat model kcyc", "double-buffered kcyc",
                "single-buffered kcyc", "double-buffer gain"});
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    const auto flat = sched::simulate_network(m, cfg);
    sched::SimulationOptions dbl, sgl;
    dbl.tile_timeline = sgl.tile_timeline = true;
    sgl.double_buffered = false;
    const auto d = sched::simulate_network(m, cfg, dbl);
    const auto s = sched::simulate_network(m, cfg, sgl);
    t.add_row({m.name(), util::format("%.0f", flat.total_cycles() / 1e3),
               util::format("%.0f", d.total_cycles() / 1e3),
               util::format("%.0f", s.total_cycles() / 1e3),
               util::times(static_cast<double>(s.total_cycles()) /
                           static_cast<double>(d.total_cycles()))});
  }
  t.print(std::cout);

  // A sample trace: SqueezeNet conv1 (DRAM-heavy, many bands).
  const nn::Model m = nn::zoo::squeezenet_v10();
  const auto analytic =
      sim::simulate_layer(m, 1, cfg, sim::Dataflow::OutputStationary);
  const sim::TilePlan plan = sim::plan_layer_tiles(
      m, 1, cfg, sim::TensorPlacement{}, analytic.compute_cycles);
  const sim::TimelineResult tl =
      sim::run_timeline(plan.tiles, cfg, sim::BufferingMode::Double);
  std::printf(
      "\nSample trace — SqueezeNet conv1 (%zu bands, compute occupancy %s):\n%s",
      plan.tiles.size(), util::percent(tl.compute_occupancy()).c_str(),
      tl.trace().c_str());
  return 0;
}
