// Reproduces the paper's headline co-design results (§4.2 / Conclusions):
//   "SqueezeNext being 2.59x faster and 2.25x more energy efficient than
//    SqueezeNet 1.0 (and 8.26x and 7.5x when compared to AlexNet), without
//    any degradation in accuracy" — including the RF 8->16 tune-up.
#include <cstdio>
#include <iostream>

#include "core/codesign.h"
#include "energy/model.h"
#include "nn/accuracy.h"
#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sqz;
  const sim::AcceleratorConfig tuned = sim::AcceleratorConfig::squeezelerator();

  const nn::Model sqnxt = nn::zoo::squeezenext(nn::zoo::SqNxtVariant::V5);
  const nn::Model sqznet = nn::zoo::squeezenet_v10();
  const nn::Model alex = nn::zoo::alexnet();

  const auto r_sqnxt = sched::simulate_network(sqnxt, tuned);
  const auto r_sqznet = sched::simulate_network(sqznet, tuned);
  const auto r_alex = sched::simulate_network(alex, tuned);

  const auto speed = [](const sim::NetworkResult& base,
                        const sim::NetworkResult& ours) {
    return static_cast<double>(base.total_cycles()) /
           static_cast<double>(ours.total_cycles());
  };
  const auto energy_ratio = [](const sim::NetworkResult& base,
                               const sim::NetworkResult& ours) {
    return energy::network_energy(base).total() /
           energy::network_energy(ours).total();
  };

  util::Table t("Headline — SqueezeNext (1.0-SqNxt-23 v5) on the tuned "
                "Squeezelerator (RF 16)");
  t.set_header({"Comparison", "speedup", "paper", "energy", "paper", "top-1"});
  t.add_row({"vs SqueezeNet v1.0", util::times(speed(r_sqznet, r_sqnxt)),
             "2.59x", util::times(energy_ratio(r_sqznet, r_sqnxt)), "2.25x",
             util::format("%.1f%% vs %.1f%%",
                          nn::published_accuracy(sqnxt.name())->top1,
                          nn::published_accuracy(sqznet.name())->top1)});
  t.add_row({"vs AlexNet", util::times(speed(r_alex, r_sqnxt)), "8.26x",
             util::times(energy_ratio(r_alex, r_sqnxt)), "7.5x", "-"});
  t.print(std::cout);

  // The accelerator-side tune-up: doubling the register file from 8 to 16 —
  // the paper's two candidate designs. (The full RF sweep, including the
  // diminishing returns beyond 16, is bench_ablation_rf.)
  core::TuningSpace space;
  space.rf_entries = {8, 16};
  const core::TuningResult tune = core::tune_accelerator(sqnxt, space);
  util::Table rf("Register-file tune-up on SqueezeNext (paper: 8 -> 16)");
  rf.set_header({"RF entries", "kcycles", "energy (M)", "chosen"});
  for (const core::TuningCandidate& c : tune.candidates)
    rf.add_row({util::format("%d", c.config.rf_entries),
                util::format("%.0f", static_cast<double>(c.cycles) / 1e3),
                util::format("%.0f", c.energy / 1e6),
                c.config.rf_entries == tune.best.rf_entries ? "<== best" : ""});
  std::printf("\n");
  rf.print(std::cout);
  return 0;
}
