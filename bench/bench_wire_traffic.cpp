// Wire-traffic view of the dataflow choice: how many interconnect segments
// each dataflow energizes per layer category — the physical-design
// counterpart of the cycle comparison in bench_dataflow_sweep.
#include <cstdio>
#include <iostream>

#include "nn/analysis.h"
#include "nn/zoo/zoo.h"
#include "sim/noc.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sqz;
  const sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();

  util::Table t("Interconnect hops per useful MAC (WS vs OS), representative "
                "layers");
  t.set_header({"Network", "layer", "category", "WS hops/MAC", "OS hops/MAC",
                "OS drain share"});
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    int shown = 0;
    for (int i = 1; i < m.layer_count() && shown < 3; ++i) {
      const nn::Layer& l = m.layer(i);
      if (!l.is_conv()) continue;
      const auto cat = nn::categorize(m, i);
      if (cat != nn::LayerCategory::FirstConv &&
          cat != nn::LayerCategory::Depthwise &&
          !(cat == nn::LayerCategory::Pointwise && shown < 2) &&
          !(cat == nn::LayerCategory::Spatial && shown < 2))
        continue;
      ++shown;
      const auto sparsity = sim::SparsityInfo::expected(l, cfg.weight_sparsity);
      const auto ws = sim::analyze_wire_traffic(
          l, cfg, sim::Dataflow::WeightStationary, sparsity);
      const auto os = sim::analyze_wire_traffic(
          l, cfg, sim::Dataflow::OutputStationary, sparsity);
      t.add_row(
          {m.name(), l.name, nn::layer_category_name(cat),
           util::format("%.2f", ws.hops_per_mac(l.macs())),
           util::format("%.2f", os.hops_per_mac(l.macs())),
           util::percent(os.total_hops() > 0
                             ? static_cast<double>(os.drain_hops) /
                                   static_cast<double>(os.total_hops())
                             : 0.0)});
    }
  }
  t.print(std::cout);
  std::printf(
      "\nOS pays Manhattan drain distance (outputs cross half the tile on\n"
      "average) but skips zero-weight shifts; WS pays a full-span broadcast\n"
      "per streamed input row. The flat inter-PE term in the energy model is\n"
      "the 1-hop-per-MAC core both share.\n");
  return 0;
}
