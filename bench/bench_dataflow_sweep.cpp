// Reproduces the Section 4.1.1 dataflow-preference measurements on the
// 32x32-PE Squeezelerator:
//   1x1 convolutions:  "1.4x to 7.0x faster on a WS dataflow"
//   first conv layers: "1.6x to 6.3x faster on the OS dataflow"
//   depthwise layers:  "19x to 96x faster on the OS dataflow"
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "nn/analysis.h"
#include "nn/zoo/zoo.h"
#include "sim/layer_sim.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/threadpool.h"

namespace {

struct Range {
  double lo = 1e18, hi = 0.0;
  void add(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  void merge(const Range& o) {
    lo = std::min(lo, o.lo);
    hi = std::max(hi, o.hi);
  }
};

// One model's contribution to the sweep: its detail-table rows plus the
// min/max envelope per layer category.
struct ModelSweep {
  std::vector<std::vector<std::string>> rows;
  Range pw, conv1, dw;
};

}  // namespace

int main() {
  using namespace sqz;
  const sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();

  util::Table detail("Per-layer WS vs OS cycles over the Table-1 model zoo");
  detail.set_header(
      {"Network", "Layer", "Category", "WS kcyc", "OS kcyc", "winner", "by"});

  // Every (model, layer, dataflow) simulation is independent: sweep the zoo
  // in parallel, one task per model, each writing its own slot; rows and
  // ranges are merged in zoo order afterwards so the output is identical to
  // the serial sweep.
  const auto models = nn::zoo::all_table1_models();
  std::vector<ModelSweep> sweeps(models.size());
  util::ThreadPool::global().parallel_for_index(
      models.size(), [&](std::size_t mi) {
        const nn::Model& m = models[mi];
        ModelSweep& s = sweeps[mi];
        for (int i = 1; i < m.layer_count(); ++i) {
          if (!m.layer(i).is_conv()) continue;
          const auto cat = nn::categorize(m, i);
          const auto ws =
              sim::simulate_layer(m, i, cfg, sim::Dataflow::WeightStationary);
          const auto os =
              sim::simulate_layer(m, i, cfg, sim::Dataflow::OutputStationary);
          const double ws_over_os = static_cast<double>(ws.total_cycles) /
                                    static_cast<double>(os.total_cycles);
          switch (cat) {
            case nn::LayerCategory::Pointwise: s.pw.add(1.0 / ws_over_os); break;
            case nn::LayerCategory::FirstConv: s.conv1.add(ws_over_os); break;
            case nn::LayerCategory::Depthwise: s.dw.add(ws_over_os); break;
            default: break;
          }
          // Keep the detail table readable: category representatives only.
          if (cat == nn::LayerCategory::FirstConv ||
              cat == nn::LayerCategory::Depthwise ||
              (cat == nn::LayerCategory::Pointwise && i % 7 == 0)) {
            const bool ws_wins = ws.total_cycles <= os.total_cycles;
            s.rows.push_back(
                {m.name(), m.layer(i).name, nn::layer_category_name(cat),
                 util::format("%.1f", ws.total_cycles / 1e3),
                 util::format("%.1f", os.total_cycles / 1e3),
                 ws_wins ? "WS" : "OS",
                 util::times(ws_wins ? 1.0 / ws_over_os : ws_over_os)});
          }
        }
      });

  Range pw, conv1, dw;
  for (const ModelSweep& s : sweeps) {
    for (const auto& row : s.rows) detail.add_row(row);
    pw.merge(s.pw);
    conv1.merge(s.conv1);
    dw.merge(s.dw);
  }
  detail.print(std::cout);

  util::Table summary("Section 4.1.1 — dataflow preference ranges");
  summary.set_header({"Category", "measured", "paper"});
  summary.add_row({"1x1: WS faster by",
                   util::format("%.1fx - %.1fx", pw.lo, pw.hi), "1.4x - 7.0x"});
  summary.add_row({"Conv1: OS faster by",
                   util::format("%.1fx - %.1fx", conv1.lo, conv1.hi),
                   "1.6x - 6.3x"});
  summary.add_row({"DW: OS faster by",
                   util::format("%.0fx - %.0fx", dw.lo, dw.hi), "19x - 96x"});
  std::printf("\n");
  summary.print(std::cout);
  return 0;
}
