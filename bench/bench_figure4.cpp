// Reproduces Figure 4: the spectrum of accuracy vs energy and accuracy vs
// inference speed for the SqueezeNext, SqueezeNet, Tiny Darknet and
// MobileNet families on the Squeezelerator. (Accuracy axis uses published
// top-1 values — see DESIGN.md §3.)
#include <cstdio>
#include <iostream>

#include "energy/model.h"
#include "nn/accuracy.h"
#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sqz;
  const bool emit_csv = argc > 1 && std::string(argv[1]) == "--csv";
  const sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();

  util::Table t(
      "Figure 4 — accuracy vs inference time and energy (Squeezelerator, "
      "batch 1, 1 GHz)");
  t.set_header({"Network", "top-1", "time (ms)", "energy (M MAC-units)",
                "avg power (mW)", "MMACs", "params (M)"});

  util::CsvWriter csv(std::cout);
  if (emit_csv)
    csv.write_row({"network", "top1", "ms", "energy", "mmacs", "mparams"});

  for (const nn::Model& m : nn::zoo::figure4_models()) {
    const sim::NetworkResult r = sched::simulate_network(m, cfg);
    const double top1 = nn::published_accuracy(m.name())->top1;
    const double ms = r.latency_ms();
    const double energy = energy::network_energy(r).total() / 1e6;
    const double power = energy::average_power_mw(r);
    if (emit_csv) {
      csv.write_row({m.name(), util::format("%.1f", top1),
                     util::format("%.3f", ms), util::format("%.1f", energy),
                     util::format("%.1f", power),
                     util::format("%.1f", m.total_macs() / 1e6),
                     util::format("%.2f", m.total_params() / 1e6)});
    } else {
      t.add_row({m.name(), util::format("%.1f%%", top1),
                 util::format("%.2f", ms), util::format("%.0f", energy),
                 util::format("%.0f", power),
                 util::format("%.0f", m.total_macs() / 1e6),
                 util::format("%.2f", m.total_params() / 1e6)});
    }
  }
  if (!emit_csv) {
    t.print(std::cout);
    std::printf(
        "\nHigher accuracy with lower time/energy is better (up and to the "
        "left\nin the paper's plots). Pass --csv to dump the series for "
        "replotting.\n");
  }
  return 0;
}
