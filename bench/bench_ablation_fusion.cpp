// Ablation: drain-side pooling fusion (sched/fusion.h). A conv followed by
// a pool that consumes only it can pool in the drain path, so the
// full-resolution intermediate never reaches the global buffer — the kind of
// memory-hierarchy tune-up the paper's co-design loop exists to find.
#include <cstdio>
#include <iostream>

#include "energy/model.h"
#include "nn/zoo/zoo.h"
#include "sched/fusion.h"
#include "sched/network_sim.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sqz;
  const sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();

  util::Table t("Pool-drain fusion ablation");
  t.set_header({"Network", "fusable pairs", "kcycles", "fused kcycles",
                "speedup", "DRAM saved", "energy saved"});
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    const auto fusions = sched::find_pool_fusions(m);
    sched::SimulationOptions plain, fused;
    fused.fuse_pool_drain = true;
    const auto base = sched::simulate_network(m, cfg, plain);
    const auto opt = sched::simulate_network(m, cfg, fused);
    const double dram_saved =
        1.0 - static_cast<double>(opt.total_counts().dram_words) /
                  static_cast<double>(base.total_counts().dram_words);
    const double energy_saved =
        1.0 - energy::network_energy(opt).total() /
                  energy::network_energy(base).total();
    t.add_row({m.name(), util::format("%zu", fusions.size()),
               util::format("%.0f", base.total_cycles() / 1e3),
               util::format("%.0f", opt.total_cycles() / 1e3),
               util::times(static_cast<double>(base.total_cycles()) /
                           static_cast<double>(opt.total_cycles())),
               util::percent(dram_saved), util::percent(energy_saved)});
  }
  t.print(std::cout);
  std::printf(
      "\nThe win concentrates in networks whose conv1 output spills to DRAM\n"
      "(SqueezeNet v1.0: the 96x111x111 tensor shrinks 4x before leaving the\n"
      "chip). Fire-module pools follow concats and cannot fuse.\n");
  return 0;
}
