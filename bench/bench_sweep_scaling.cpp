// Parallel sweep-evaluation scaling: a 32-point register-file sweep of
// SqueezeNext (1.0-SqNxt-23) through core::evaluate_designs at jobs
// 1/2/4/8, reporting wall-clock speedup over the serial path and verifying
// on the fly that every job count produces byte-identical JSON dumps.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dse.h"
#include "nn/zoo/zoo.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/threadpool.h"

int main() {
  using namespace sqz;
  using Clock = std::chrono::steady_clock;

  const nn::Model model = nn::zoo::squeezenext();
  std::vector<int> rf_values;
  for (int v = 1; v <= 32; ++v) rf_values.push_back(v);
  const auto configs = core::sweep_rf_entries(
      sim::AcceleratorConfig::squeezelerator(), rf_values);

  std::printf("32-point RF sweep of %s; hardware concurrency %u\n\n",
              model.name().c_str(), std::thread::hardware_concurrency());

  util::Table t("evaluate_designs scaling (median-free single shot, warm)");
  t.set_header({"jobs", "wall ms", "speedup", "dump identical"});

  // Warm-up pass so first-touch costs (weight synthesis etc.) don't bias
  // the jobs=1 baseline.
  util::ThreadPool::set_global_jobs(1);
  (void)core::evaluate_designs(model, configs);

  double serial_ms = 0.0;
  std::string serial_dump;
  for (const int jobs : {1, 2, 4, 8}) {
    util::ThreadPool::set_global_jobs(jobs);
    const auto t0 = Clock::now();
    const auto points = core::evaluate_designs(model, configs);
    const auto t1 = Clock::now();
    const double ms =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() /
        1e3;

    std::ostringstream dump;
    core::write_design_points_json("rf_entries on sqnxt23", points, dump);
    if (jobs == 1) {
      serial_ms = ms;
      serial_dump = dump.str();
    }
    t.add_row({std::to_string(jobs), util::format("%.1f", ms),
               util::format("%.2fx", serial_ms / ms),
               dump.str() == serial_dump ? "yes" : "NO"});
  }
  util::ThreadPool::set_global_jobs(0);
  t.print(std::cout);
  std::printf(
      "\nSpeedup is bounded by min(jobs, cores); on a single-core host every\n"
      "row stays near 1.00x. The \"dump identical\" column re-checks the\n"
      "determinism contract: sweep JSON bytes must not depend on jobs.\n");
  return 0;
}
