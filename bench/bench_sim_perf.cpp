// google-benchmark micro-benchmarks of the simulator itself: how fast the
// analytical estimator sweeps networks and configurations (the co-design
// loop's inner iteration cost), and the functional emulators' MAC rate.
#include <benchmark/benchmark.h>

#include "core/squeezelerator.h"
#include "nn/zoo/zoo.h"
#include "runtime/ops.h"
#include "runtime/weights.h"
#include "sched/network_sim.h"
#include "sim/functional/engines.h"
#include "sim/mappers.h"

namespace {

using namespace sqz;

void BM_SimulateSqueezeNet(benchmark::State& state) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  const auto cfg = sim::AcceleratorConfig::squeezelerator();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::simulate_network(m, cfg).total_cycles());
  }
}
BENCHMARK(BM_SimulateSqueezeNet);

void BM_SimulateMobileNet(benchmark::State& state) {
  const nn::Model m = nn::zoo::mobilenet();
  const auto cfg = sim::AcceleratorConfig::squeezelerator();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::simulate_network(m, cfg).total_cycles());
  }
}
BENCHMARK(BM_SimulateMobileNet);

void BM_CompareThreeArchitectures(benchmark::State& state) {
  const nn::Model m = nn::zoo::squeezenext();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compare_dataflows(m).speedup_vs_ws());
  }
}
BENCHMARK(BM_CompareThreeArchitectures);

void BM_MapOneLayerWs(benchmark::State& state) {
  const nn::Model m = nn::zoo::squeezenet_v10();
  const auto cfg = sim::AcceleratorConfig::squeezelerator();
  const nn::Layer& l = m.layer(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::map_weight_stationary(l, cfg).compute_cycles);
  }
}
BENCHMARK(BM_MapOneLayerWs)->Arg(1)->Arg(4);

void BM_FunctionalOsEmulation(benchmark::State& state) {
  nn::Model m("f", nn::TensorShape{16, 24, 24});
  m.add_conv("c", 16, 3, 1, 1);
  m.finalize();
  const auto cfg = sim::AcceleratorConfig::squeezelerator();
  const runtime::WeightTensor w =
      runtime::generate_weights(m, 1, runtime::WeightGenConfig{});
  const runtime::Tensor in = runtime::generate_input(m, 1);
  const runtime::Requant rq;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::functional::run_output_stationary(m.layer(1), in, w, rq, cfg)
            .compute_cycles);
  }
  state.SetItemsProcessed(state.iterations() * m.layer(1).macs());
}
BENCHMARK(BM_FunctionalOsEmulation);

void BM_ReferenceConv(benchmark::State& state) {
  nn::Model m("r", nn::TensorShape{16, 24, 24});
  m.add_conv("c", 16, 3, 1, 1);
  m.finalize();
  const runtime::WeightTensor w =
      runtime::generate_weights(m, 1, runtime::WeightGenConfig{});
  const runtime::Tensor in = runtime::generate_input(m, 1);
  const runtime::Requant rq;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime::conv2d(in, w, m.layer(1).conv, rq));
  }
  state.SetItemsProcessed(state.iterations() * m.layer(1).macs());
}
BENCHMARK(BM_ReferenceConv);

}  // namespace

BENCHMARK_MAIN();
