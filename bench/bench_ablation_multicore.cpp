// Ablation: multi-core configuration (paper §3.2 taxonomy). Batch-parallel
// cores share the DRAM interface; throughput scales with cores until the
// shared bandwidth (or the per-core weight refetch) bites.
#include <cstdio>
#include <iostream>

#include "core/multicore.h"
#include "nn/zoo/zoo.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sqz;
  const int batch = 8;

  for (const nn::Model& m :
       {nn::zoo::squeezenext(), nn::zoo::alexnet()}) {
    util::Table t(util::format("Multi-core scaling — %s (batch %d)",
                               m.name().c_str(), batch));
    t.set_header({"cores", "per-core batch", "shared-DRAM img/s", "scaling",
                  "private-DRAM img/s", "scaling", "chip energy (M)"});
    double base_shared = 0.0, base_priv = 0.0;
    for (int cores : {1, 2, 4, 8}) {
      sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();
      cfg.batch = batch;
      const auto shared = core::simulate_multicore(m, cfg, cores, true);
      const auto priv = core::simulate_multicore(m, cfg, cores, false);
      if (cores == 1) {
        base_shared = shared.throughput_ips();
        base_priv = priv.throughput_ips();
      }
      t.add_row({util::format("%d", cores),
                 util::format("%d", shared.per_core_batch),
                 util::format("%.0f", shared.throughput_ips()),
                 util::times(shared.throughput_ips() / base_shared),
                 util::format("%.0f", priv.throughput_ips()),
                 util::times(priv.throughput_ips() / base_priv),
                 util::format("%.0f", shared.total_energy().total() / 1e6)});
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "With one shared 16 GB/s controller (the paper's SOC setting) the\n"
      "aggregate bandwidth caps scaling almost immediately; with a channel\n"
      "per core, batch-parallel scaling is near-linear. Multi-core only pays\n"
      "if the memory system grows with it.\n");
  return 0;
}
