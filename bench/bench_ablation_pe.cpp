// Ablation: PE-array size. The paper positions the Squeezelerator as an
// N x N design for N = 8..32 (SOC IP block); this sweep shows the
// throughput/utilization trade across that range, plus the Pareto front.
#include <cstdio>
#include <iostream>

#include "core/dse.h"
#include "nn/zoo/zoo.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sqz;
  auto base = sim::AcceleratorConfig::squeezelerator();
  const std::vector<int> sizes = {8, 12, 16, 24, 32};

  for (const nn::Model& m :
       {nn::zoo::squeezenet_v10(), nn::zoo::squeezenext()}) {
    // Scale the array-coupled port widths with N, as the RTL would.
    std::vector<std::pair<std::string, sim::AcceleratorConfig>> configs;
    for (int n : sizes) {
      sim::AcceleratorConfig c = base;
      c.array_n = n;
      c.preload_width = n;
      c.drain_width = n;
      configs.emplace_back(util::format("%dx%d", n, n), c);
    }
    const auto points = core::evaluate_designs(m, configs);
    const auto front = core::pareto_front(points);

    util::Table t(util::format("PE-array ablation — %s", m.name().c_str()));
    t.set_header({"Array", "PEs", "kcycles", "energy (M)", "util", "Pareto"});
    for (const core::DesignPoint& p : points) {
      bool on_front = false;
      for (const core::DesignPoint& f : front)
        if (f.label == p.label) on_front = true;
      t.add_row({p.label, util::format("%d", p.config.pe_count()),
                 util::format("%.0f", static_cast<double>(p.cycles) / 1e3),
                 util::format("%.0f", p.energy / 1e6),
                 util::percent(p.utilization), on_front ? "*" : ""});
    }
    t.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
