// Ablation: weight sparsity. The paper conservatively models 40% zero
// weights and exploits them only in OS mode ("the stream buffer broadcasts
// only non-zero weights"). This sweep shows how the dataflow balance and the
// hybrid's advantage move with sparsity.
#include <cstdio>
#include <iostream>

#include "core/squeezelerator.h"
#include "nn/zoo/zoo.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sqz;
  const nn::Model m = nn::zoo::squeezenet_v10();

  util::Table t("Sparsity ablation — SqueezeNet v1.0 (paper operating point: "
                "40%)");
  t.set_header({"Sparsity", "WS kcyc", "OS kcyc", "SQZ kcyc", "SQZ vs OS",
                "SQZ vs WS"});
  for (double s : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();
    cfg.weight_sparsity = s;
    const core::ComparisonResult cmp = core::compare_dataflows(m, cfg);
    t.add_row({util::percent(s, 0),
               util::format("%.0f", cmp.ws_only.total_cycles() / 1e3),
               util::format("%.0f", cmp.os_only.total_cycles() / 1e3),
               util::format("%.0f", cmp.hybrid.total_cycles() / 1e3),
               util::times(cmp.speedup_vs_os()), util::times(cmp.speedup_vs_ws())});
  }
  t.print(std::cout);

  // Zero-skip off: the OS dataflow loses its sparsity advantage entirely.
  sim::AcceleratorConfig noskip = sim::AcceleratorConfig::squeezelerator();
  noskip.os_zero_skip = false;
  const core::ComparisonResult cmp = core::compare_dataflows(m, noskip);
  std::printf(
      "\nWith zero-skip disabled (dense broadcasts): SQZ vs OS = %s, "
      "vs WS = %s\n",
      util::times(cmp.speedup_vs_os()).c_str(),
      util::times(cmp.speedup_vs_ws()).c_str());
  return 0;
}
