// Reproduces Figure 1: per-layer inference time and utilization of
// SqueezeNet v1.0 on the reference WS / OS architectures and on the
// Squeezelerator, plus the paper's totals (+26% over OS, +106% over WS).
#include <cstdio>
#include <iostream>

#include "core/report.h"
#include "core/squeezelerator.h"
#include "nn/zoo/zoo.h"
#include "util/strings.h"

int main() {
  using namespace sqz;
  const nn::Model model = nn::zoo::squeezenet_v10();
  const core::ComparisonResult cmp = core::compare_dataflows(model);

  core::per_layer_comparison_table(
      model, cmp,
      "Figure 1 — SqueezeNet v1.0 per-layer time on WS ref / OS ref / "
      "Squeezelerator (SQZ)")
      .print(std::cout);

  const double vs_os = (cmp.speedup_vs_os() - 1.0) * 100.0;
  const double vs_ws = (cmp.speedup_vs_ws() - 1.0) * 100.0;
  std::printf(
      "\nTotal improvement of the Squeezelerator:\n"
      "  vs OS reference: %+.0f%%   (paper: +26%%)\n"
      "  vs WS reference: %+.0f%%   (paper: +106%%)\n\n",
      vs_os, vs_ws);

  core::per_layer_table(model, cmp.hybrid,
                        "Squeezelerator per-layer detail (chosen dataflow, "
                        "utilization, DRAM traffic)")
      .print(std::cout);
  return 0;
}
