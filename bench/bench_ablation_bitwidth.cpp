// Ablation: data-path bit width (paper §3.2 taxonomy: PE "data format ...
// bit width"). The Squeezelerator uses a 16-bit integer path; this sweep
// shows what 8-bit or 32-bit words would do to the memory system (the MAC
// array geometry is held fixed, so this isolates the bandwidth/storage
// effect of the word size).
#include <cstdio>
#include <iostream>

#include "energy/model.h"
#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sqz;

  util::Table t("Bit-width ablation (fixed 32x32 array, fixed 16 GB/s)");
  t.set_header({"Network", "int8 kcyc", "int16 kcyc (paper)", "int32 kcyc",
                "int8 resident", "int16 resident"});
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    std::vector<std::string> row{m.name()};
    std::vector<int> resident;
    for (int bytes : {1, 2, 4}) {
      sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();
      cfg.data_bytes = bytes;
      const auto r = sched::simulate_network(m, cfg);
      row.push_back(util::format("%.0f", r.total_cycles() / 1e3));
      if (bytes < 4) {
        const auto plan = sched::plan_residency(m, cfg);
        int kept = 0;
        for (std::size_t i = 1; i + 1 < plan.kept.size(); ++i)
          if (plan.kept[i]) ++kept;
        resident.push_back(kept);
      }
    }
    row.push_back(util::format("%d", resident[0]));
    row.push_back(util::format("%d", resident[1]));
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::printf(
      "\nHalving the word size halves every DRAM transfer and doubles the\n"
      "global buffer's effective capacity (more resident layers) — the\n"
      "quantization leverage the paper's taxonomy points at.\n");
  return 0;
}
