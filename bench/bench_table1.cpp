// Reproduces Table 1: "Relative percentage of MAC operations/total
// operations for each layer type in each of the DNN Networks".
#include <cstdio>
#include <iostream>

#include "nn/analysis.h"
#include "nn/zoo/zoo.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sqz;
  using nn::LayerCategory;

  struct PaperRow {
    double conv1, pw, fxf, dw;
  };
  // Paper values for the "paper" columns, in zoo row order.
  const PaperRow paper[] = {
      {20, 0, 69, 0}, {1, 95, 0, 3},  {5, 13, 82, 0},
      {21, 25, 54, 0}, {6, 40, 54, 0}, {16, 44, 40, 0},
  };

  util::Table t(
      "Table 1 — MAC share per layer category (measured vs paper, in %)");
  t.set_header({"Network", "Conv1", "1x1", "FxF", "DW", "FC",
                "paper C1/1x1/FxF/DW"});

  const auto models = nn::zoo::all_table1_models();
  for (std::size_t i = 0; i < models.size(); ++i) {
    const nn::OpBreakdown b = nn::analyze_ops(models[i]);
    const auto pct = [&](LayerCategory c) {
      return util::format("%.0f%%", 100.0 * b.fraction(c));
    };
    t.add_row({models[i].name(), pct(LayerCategory::FirstConv),
               pct(LayerCategory::Pointwise), pct(LayerCategory::Spatial),
               pct(LayerCategory::Depthwise), pct(LayerCategory::FullyConnected),
               util::format("%.0f/%.0f/%.0f/%.0f", paper[i].conv1, paper[i].pw,
                            paper[i].fxf, paper[i].dw)});
  }
  t.print(std::cout);

  std::printf(
      "\nNote: rows need not sum to 100%% — the remainder is FC (the paper's\n"
      "AlexNet row has the same property). SqueezeNext layer allocation is a\n"
      "documented reconstruction (DESIGN.md s3).\n");
  return 0;
}
