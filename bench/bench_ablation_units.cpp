// Sensitivity ablation: unit energies. The paper says it "modified the unit
// energy slightly to match this hardware configuration" without publishing
// the values. This bench sweeps the two dominant units (DRAM, global buffer)
// around our Eyeriss-ratio defaults and shows the Table-2 energy conclusions
// — small deltas, consistent winners — are robust across the plausible range.
#include <cstdio>
#include <iostream>

#include "core/squeezelerator.h"
#include "nn/zoo/zoo.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sqz;

  const struct {
    const char* label;
    energy::UnitEnergies units;
  } variants[] = {
      {"defaults (DRAM 200, GB 6)", {}},
      {"DRAM 100", {.dram = 100.0}},
      {"DRAM 400", {.dram = 400.0}},
      {"GB 3", {.gb = 3.0}},
      {"GB 12", {.gb = 12.0}},
      {"RF 2, inter-PE 2", {.rf = 2.0, .inter_pe = 2.0}},
  };

  for (const nn::Model& m :
       {nn::zoo::squeezenet_v10(), nn::zoo::mobilenet(), nn::zoo::squeezenext()}) {
    util::Table t(util::format("Unit-energy sensitivity — %s (energy "
                               "reduction of the hybrid vs references)",
                               m.name().c_str()));
    t.set_header({"units", "E vs OS", "E vs WS", "hybrid energy (M)"});
    for (const auto& v : variants) {
      core::ComparisonResult cmp = core::compare_dataflows(
          m, sim::AcceleratorConfig::squeezelerator(), sched::Objective::Cycles,
          v.units);
      t.add_row({v.label, util::format("%+.0f%%", 100 * cmp.energy_reduction_vs_os()),
                 util::format("%+.0f%%", 100 * cmp.energy_reduction_vs_ws()),
                 util::format("%.0f",
                              energy::network_energy(cmp.hybrid, v.units).total() /
                                  1e6)});
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Across the sweep the energy deltas stay within a few percent of the\n"
      "references and never flip which architecture a network prefers — the\n"
      "paper's qualitative energy story does not hinge on the exact units.\n");
  return 0;
}
