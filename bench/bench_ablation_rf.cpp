// Ablation: per-PE register-file size (the paper's §4.2 tune-up lever).
// In OS mode the RF bounds how many filters share one input-block preload,
// so it directly trades PE-array area for global-buffer traffic.
#include <cstdio>
#include <iostream>

#include "core/dse.h"
#include "nn/zoo/zoo.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sqz;
  const auto base = sim::AcceleratorConfig::squeezelerator();
  const std::vector<int> rf_sizes = {2, 4, 8, 16, 32, 64};

  for (const char* which : {"SqueezeNext", "SqueezeNet v1.0", "MobileNet"}) {
    const nn::Model m =
        std::string(which) == "SqueezeNext" ? nn::zoo::squeezenext()
        : std::string(which) == "MobileNet" ? nn::zoo::mobilenet()
                                            : nn::zoo::squeezenet_v10();
    const auto points =
        core::evaluate_designs(m, core::sweep_rf_entries(base, rf_sizes));
    util::Table t(util::format("RF-size ablation — %s", m.name().c_str()));
    t.set_header({"RF", "kcycles", "energy (M)", "util", "GB reads (M)"});
    for (const core::DesignPoint& p : points) {
      // Re-simulate to expose GB traffic.
      const auto r = sched::simulate_network(m, p.config);
      t.add_row({p.label,
                 util::format("%.0f", static_cast<double>(p.cycles) / 1e3),
                 util::format("%.0f", p.energy / 1e6), util::percent(p.utilization),
                 util::format("%.1f",
                              static_cast<double>(r.total_counts().gb_reads) / 1e6)});
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Paper context: the Squeezelerator shipped with RF 8 and was re-tuned\n"
      "to RF 16 after the SqueezeNext co-design pass.\n");
  return 0;
}
