// Ablation: DRAM interface. The paper models DRAM with 100-cycle latency and
// 16 GB/s effective bandwidth, hidden by double buffering. This sweep shows
// which networks are memory-bound (AlexNet's FC layers; MobileNet's
// low-arithmetic-intensity layers) and how latency exposure scales.
#include <cstdio>
#include <iostream>

#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sqz;

  util::Table bw("DRAM bandwidth sweep (latency fixed at 100 cycles)");
  bw.set_header({"Network", "4 B/cyc", "8 B/cyc", "16 B/cyc (paper)",
                 "32 B/cyc", "compute-bound floor"});
  for (const nn::Model& m : nn::zoo::all_table1_models()) {
    std::vector<std::string> row{m.name()};
    for (double bpc : {4.0, 8.0, 16.0, 32.0}) {
      sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();
      cfg.dram_bytes_per_cycle = bpc;
      row.push_back(util::format(
          "%.0f", sched::simulate_network(m, cfg).total_cycles() / 1e3));
    }
    sim::AcceleratorConfig inf = sim::AcceleratorConfig::squeezelerator();
    inf.dram_bytes_per_cycle = 1e9;  // effectively infinite bandwidth
    inf.dram_latency_cycles = 0;
    row.push_back(util::format(
        "%.0f", sched::simulate_network(m, inf).total_cycles() / 1e3));
    bw.add_row(std::move(row));
  }
  bw.print(std::cout);

  util::Table lat("\nDRAM latency sweep (bandwidth fixed at 16 B/cycle), kcycles");
  lat.set_header({"Network", "0", "100 (paper)", "400", "1600"});
  for (const nn::Model& m :
       {nn::zoo::alexnet(), nn::zoo::squeezenet_v10(), nn::zoo::squeezenext()}) {
    std::vector<std::string> row{m.name()};
    for (int l : {0, 100, 400, 1600}) {
      sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();
      cfg.dram_latency_cycles = l;
      row.push_back(util::format(
          "%.0f", sched::simulate_network(m, cfg).total_cycles() / 1e3));
    }
    lat.add_row(std::move(row));
  }
  lat.print(std::cout);
  return 0;
}
