// Ablation: batch size. The paper evaluates batch 1 because it "reflects
// typical usage in embedded vision applications", noting it "gives less
// opportunity for data reuse". This sweep quantifies that remark: larger
// batches amortize weight streaming, and the FC-dominated AlexNet — the
// network the co-design cannot help at batch 1 — benefits most.
#include <cstdio>
#include <iostream>

#include "energy/model.h"
#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sqz;

  for (const nn::Model& m :
       {nn::zoo::alexnet(), nn::zoo::squeezenet_v10(), nn::zoo::squeezenext()}) {
    util::Table t(util::format("Batch ablation — %s (per-image metrics)",
                               m.name().c_str()));
    t.set_header({"batch", "kcycles/img", "energy/img (M)", "util",
                  "DRAM words/img (M)"});
    double base_cycles = 0;
    for (int batch : {1, 2, 4, 8, 16}) {
      sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();
      cfg.batch = batch;
      const auto r = sched::simulate_network(m, cfg);
      const double per_img_cycles =
          static_cast<double>(r.total_cycles()) / batch;
      if (batch == 1) base_cycles = per_img_cycles;
      t.add_row(
          {util::format("%d", batch), util::format("%.0f", per_img_cycles / 1e3),
           util::format("%.0f",
                        energy::network_energy(r).total() / batch / 1e6),
           util::percent(r.utilization()),
           util::format("%.2f",
                        static_cast<double>(r.total_counts().dram_words) /
                            batch / 1e6)});
    }
    t.print(std::cout);
    sim::AcceleratorConfig b16 = sim::AcceleratorConfig::squeezelerator();
    b16.batch = 16;
    const auto r16 = sched::simulate_network(m, b16);
    std::printf("  batch-16 per-image speedup over batch-1: %s\n\n",
                util::times(base_cycles /
                            (static_cast<double>(r16.total_cycles()) / 16))
                    .c_str());
  }
  std::printf(
      "AlexNet's FC weight streaming amortizes across the batch — the reuse\n"
      "the paper's batch-1 embedded operating point deliberately gives up.\n");
  return 0;
}
