
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_advisor.cpp" "tests/CMakeFiles/test_core.dir/core/test_advisor.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_advisor.cpp.o.d"
  "/root/repo/tests/core/test_cli.cpp" "tests/CMakeFiles/test_core.dir/core/test_cli.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_cli.cpp.o.d"
  "/root/repo/tests/core/test_codesign.cpp" "tests/CMakeFiles/test_core.dir/core/test_codesign.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_codesign.cpp.o.d"
  "/root/repo/tests/core/test_compare.cpp" "tests/CMakeFiles/test_core.dir/core/test_compare.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_compare.cpp.o.d"
  "/root/repo/tests/core/test_config_io.cpp" "tests/CMakeFiles/test_core.dir/core/test_config_io.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_config_io.cpp.o.d"
  "/root/repo/tests/core/test_dse.cpp" "tests/CMakeFiles/test_core.dir/core/test_dse.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_dse.cpp.o.d"
  "/root/repo/tests/core/test_multicore.cpp" "tests/CMakeFiles/test_core.dir/core/test_multicore.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_multicore.cpp.o.d"
  "/root/repo/tests/core/test_report.cpp" "tests/CMakeFiles/test_core.dir/core/test_report.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_report.cpp.o.d"
  "/root/repo/tests/core/test_roofline.cpp" "tests/CMakeFiles/test_core.dir/core/test_roofline.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_roofline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sqz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/sqz_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sqz_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sqz_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/sqz_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sqz_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sqz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
