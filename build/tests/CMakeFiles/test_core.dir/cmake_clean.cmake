file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_advisor.cpp.o"
  "CMakeFiles/test_core.dir/core/test_advisor.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_cli.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cli.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_codesign.cpp.o"
  "CMakeFiles/test_core.dir/core/test_codesign.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_compare.cpp.o"
  "CMakeFiles/test_core.dir/core/test_compare.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_config_io.cpp.o"
  "CMakeFiles/test_core.dir/core/test_config_io.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_dse.cpp.o"
  "CMakeFiles/test_core.dir/core/test_dse.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_multicore.cpp.o"
  "CMakeFiles/test_core.dir/core/test_multicore.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_report.cpp.o"
  "CMakeFiles/test_core.dir/core/test_report.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_roofline.cpp.o"
  "CMakeFiles/test_core.dir/core/test_roofline.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
