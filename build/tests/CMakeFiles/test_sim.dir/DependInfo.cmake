
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_batch.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_batch.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_batch.cpp.o.d"
  "/root/repo/tests/sim/test_config.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_config.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_config.cpp.o.d"
  "/root/repo/tests/sim/test_dram.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_dram.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_dram.cpp.o.d"
  "/root/repo/tests/sim/test_functional_config_fuzz.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_functional_config_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_functional_config_fuzz.cpp.o.d"
  "/root/repo/tests/sim/test_functional_cross.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_functional_cross.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_functional_cross.cpp.o.d"
  "/root/repo/tests/sim/test_functional_os.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_functional_os.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_functional_os.cpp.o.d"
  "/root/repo/tests/sim/test_functional_ws.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_functional_ws.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_functional_ws.cpp.o.d"
  "/root/repo/tests/sim/test_layer_sim.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_layer_sim.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_layer_sim.cpp.o.d"
  "/root/repo/tests/sim/test_mappers_os.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_mappers_os.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_mappers_os.cpp.o.d"
  "/root/repo/tests/sim/test_mappers_ws.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_mappers_ws.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_mappers_ws.cpp.o.d"
  "/root/repo/tests/sim/test_noc.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_noc.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_noc.cpp.o.d"
  "/root/repo/tests/sim/test_schedule.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_schedule.cpp.o.d"
  "/root/repo/tests/sim/test_sparsity.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_sparsity.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_sparsity.cpp.o.d"
  "/root/repo/tests/sim/test_tiling.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_tiling.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_tiling.cpp.o.d"
  "/root/repo/tests/sim/test_timeline.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_timeline.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sqz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/sqz_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sqz_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sqz_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/sqz_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sqz_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sqz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
