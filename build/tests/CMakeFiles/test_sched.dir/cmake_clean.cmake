file(REMOVE_RECURSE
  "CMakeFiles/test_sched.dir/sched/test_compile.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_compile.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_fusion.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_fusion.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_network_sim.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_network_sim.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_residency.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_residency.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_selector.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_selector.cpp.o.d"
  "test_sched"
  "test_sched.pdb"
  "test_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
