file(REMOVE_RECURSE
  "CMakeFiles/test_runtime.dir/runtime/test_executor.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_executor.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_gemm.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_gemm.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_ops.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_ops.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_quant.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_quant.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_tensor.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_tensor.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_weights.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_weights.cpp.o.d"
  "test_runtime"
  "test_runtime.pdb"
  "test_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
