file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/test_accuracy.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_accuracy.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_analysis.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_analysis.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_fuzz_models.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_fuzz_models.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_layer.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_layer.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_model.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_model.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_serialize.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_serialize.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_shape.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_shape.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_zoo.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_zoo.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
