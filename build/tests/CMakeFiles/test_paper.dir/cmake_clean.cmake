file(REMOVE_RECURSE
  "CMakeFiles/test_paper.dir/paper/test_figure1.cpp.o"
  "CMakeFiles/test_paper.dir/paper/test_figure1.cpp.o.d"
  "CMakeFiles/test_paper.dir/paper/test_figure3.cpp.o"
  "CMakeFiles/test_paper.dir/paper/test_figure3.cpp.o.d"
  "CMakeFiles/test_paper.dir/paper/test_figure4.cpp.o"
  "CMakeFiles/test_paper.dir/paper/test_figure4.cpp.o.d"
  "CMakeFiles/test_paper.dir/paper/test_headline.cpp.o"
  "CMakeFiles/test_paper.dir/paper/test_headline.cpp.o.d"
  "CMakeFiles/test_paper.dir/paper/test_section411.cpp.o"
  "CMakeFiles/test_paper.dir/paper/test_section411.cpp.o.d"
  "CMakeFiles/test_paper.dir/paper/test_statements.cpp.o"
  "CMakeFiles/test_paper.dir/paper/test_statements.cpp.o.d"
  "CMakeFiles/test_paper.dir/paper/test_table1.cpp.o"
  "CMakeFiles/test_paper.dir/paper/test_table1.cpp.o.d"
  "CMakeFiles/test_paper.dir/paper/test_table2.cpp.o"
  "CMakeFiles/test_paper.dir/paper/test_table2.cpp.o.d"
  "test_paper"
  "test_paper.pdb"
  "test_paper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
