
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_csv.cpp" "tests/CMakeFiles/test_util.dir/util/test_csv.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_csv.cpp.o.d"
  "/root/repo/tests/util/test_ini.cpp" "tests/CMakeFiles/test_util.dir/util/test_ini.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_ini.cpp.o.d"
  "/root/repo/tests/util/test_logging.cpp" "tests/CMakeFiles/test_util.dir/util/test_logging.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_logging.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/test_util.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_stats.cpp.o.d"
  "/root/repo/tests/util/test_strings.cpp" "tests/CMakeFiles/test_util.dir/util/test_strings.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_strings.cpp.o.d"
  "/root/repo/tests/util/test_table.cpp" "tests/CMakeFiles/test_util.dir/util/test_table.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sqz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/sqz_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sqz_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sqz_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/sqz_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sqz_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sqz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
