file(REMOVE_RECURSE
  "CMakeFiles/sqzsim.dir/sqzsim.cpp.o"
  "CMakeFiles/sqzsim.dir/sqzsim.cpp.o.d"
  "sqzsim"
  "sqzsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqzsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
