# Empty compiler generated dependencies file for sqzsim.
# This may be replaced when dependencies are built.
