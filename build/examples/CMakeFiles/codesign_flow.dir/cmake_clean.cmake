file(REMOVE_RECURSE
  "CMakeFiles/codesign_flow.dir/codesign_flow.cpp.o"
  "CMakeFiles/codesign_flow.dir/codesign_flow.cpp.o.d"
  "codesign_flow"
  "codesign_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesign_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
