# Empty compiler generated dependencies file for codesign_flow.
# This may be replaced when dependencies are built.
