file(REMOVE_RECURSE
  "CMakeFiles/sqz_sched.dir/compile.cpp.o"
  "CMakeFiles/sqz_sched.dir/compile.cpp.o.d"
  "CMakeFiles/sqz_sched.dir/fusion.cpp.o"
  "CMakeFiles/sqz_sched.dir/fusion.cpp.o.d"
  "CMakeFiles/sqz_sched.dir/network_sim.cpp.o"
  "CMakeFiles/sqz_sched.dir/network_sim.cpp.o.d"
  "CMakeFiles/sqz_sched.dir/residency.cpp.o"
  "CMakeFiles/sqz_sched.dir/residency.cpp.o.d"
  "CMakeFiles/sqz_sched.dir/selector.cpp.o"
  "CMakeFiles/sqz_sched.dir/selector.cpp.o.d"
  "libsqz_sched.a"
  "libsqz_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqz_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
