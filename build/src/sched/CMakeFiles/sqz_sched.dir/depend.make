# Empty dependencies file for sqz_sched.
# This may be replaced when dependencies are built.
