file(REMOVE_RECURSE
  "libsqz_sched.a"
)
