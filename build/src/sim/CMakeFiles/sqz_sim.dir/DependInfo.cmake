
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/config.cpp" "src/sim/CMakeFiles/sqz_sim.dir/config.cpp.o" "gcc" "src/sim/CMakeFiles/sqz_sim.dir/config.cpp.o.d"
  "/root/repo/src/sim/counters.cpp" "src/sim/CMakeFiles/sqz_sim.dir/counters.cpp.o" "gcc" "src/sim/CMakeFiles/sqz_sim.dir/counters.cpp.o.d"
  "/root/repo/src/sim/dram.cpp" "src/sim/CMakeFiles/sqz_sim.dir/dram.cpp.o" "gcc" "src/sim/CMakeFiles/sqz_sim.dir/dram.cpp.o.d"
  "/root/repo/src/sim/functional/os_engine.cpp" "src/sim/CMakeFiles/sqz_sim.dir/functional/os_engine.cpp.o" "gcc" "src/sim/CMakeFiles/sqz_sim.dir/functional/os_engine.cpp.o.d"
  "/root/repo/src/sim/functional/ws_engine.cpp" "src/sim/CMakeFiles/sqz_sim.dir/functional/ws_engine.cpp.o" "gcc" "src/sim/CMakeFiles/sqz_sim.dir/functional/ws_engine.cpp.o.d"
  "/root/repo/src/sim/layer_sim.cpp" "src/sim/CMakeFiles/sqz_sim.dir/layer_sim.cpp.o" "gcc" "src/sim/CMakeFiles/sqz_sim.dir/layer_sim.cpp.o.d"
  "/root/repo/src/sim/mappers.cpp" "src/sim/CMakeFiles/sqz_sim.dir/mappers.cpp.o" "gcc" "src/sim/CMakeFiles/sqz_sim.dir/mappers.cpp.o.d"
  "/root/repo/src/sim/noc.cpp" "src/sim/CMakeFiles/sqz_sim.dir/noc.cpp.o" "gcc" "src/sim/CMakeFiles/sqz_sim.dir/noc.cpp.o.d"
  "/root/repo/src/sim/schedule.cpp" "src/sim/CMakeFiles/sqz_sim.dir/schedule.cpp.o" "gcc" "src/sim/CMakeFiles/sqz_sim.dir/schedule.cpp.o.d"
  "/root/repo/src/sim/sparsity.cpp" "src/sim/CMakeFiles/sqz_sim.dir/sparsity.cpp.o" "gcc" "src/sim/CMakeFiles/sqz_sim.dir/sparsity.cpp.o.d"
  "/root/repo/src/sim/tiling.cpp" "src/sim/CMakeFiles/sqz_sim.dir/tiling.cpp.o" "gcc" "src/sim/CMakeFiles/sqz_sim.dir/tiling.cpp.o.d"
  "/root/repo/src/sim/timeline.cpp" "src/sim/CMakeFiles/sqz_sim.dir/timeline.cpp.o" "gcc" "src/sim/CMakeFiles/sqz_sim.dir/timeline.cpp.o.d"
  "/root/repo/src/sim/timeline_sim.cpp" "src/sim/CMakeFiles/sqz_sim.dir/timeline_sim.cpp.o" "gcc" "src/sim/CMakeFiles/sqz_sim.dir/timeline_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/sqz_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sqz_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/sqz_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sqz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
