file(REMOVE_RECURSE
  "libsqz_sim.a"
)
