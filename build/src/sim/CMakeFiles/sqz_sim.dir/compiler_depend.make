# Empty compiler generated dependencies file for sqz_sim.
# This may be replaced when dependencies are built.
