file(REMOVE_RECURSE
  "CMakeFiles/sqz_sim.dir/config.cpp.o"
  "CMakeFiles/sqz_sim.dir/config.cpp.o.d"
  "CMakeFiles/sqz_sim.dir/counters.cpp.o"
  "CMakeFiles/sqz_sim.dir/counters.cpp.o.d"
  "CMakeFiles/sqz_sim.dir/dram.cpp.o"
  "CMakeFiles/sqz_sim.dir/dram.cpp.o.d"
  "CMakeFiles/sqz_sim.dir/functional/os_engine.cpp.o"
  "CMakeFiles/sqz_sim.dir/functional/os_engine.cpp.o.d"
  "CMakeFiles/sqz_sim.dir/functional/ws_engine.cpp.o"
  "CMakeFiles/sqz_sim.dir/functional/ws_engine.cpp.o.d"
  "CMakeFiles/sqz_sim.dir/layer_sim.cpp.o"
  "CMakeFiles/sqz_sim.dir/layer_sim.cpp.o.d"
  "CMakeFiles/sqz_sim.dir/mappers.cpp.o"
  "CMakeFiles/sqz_sim.dir/mappers.cpp.o.d"
  "CMakeFiles/sqz_sim.dir/noc.cpp.o"
  "CMakeFiles/sqz_sim.dir/noc.cpp.o.d"
  "CMakeFiles/sqz_sim.dir/schedule.cpp.o"
  "CMakeFiles/sqz_sim.dir/schedule.cpp.o.d"
  "CMakeFiles/sqz_sim.dir/sparsity.cpp.o"
  "CMakeFiles/sqz_sim.dir/sparsity.cpp.o.d"
  "CMakeFiles/sqz_sim.dir/tiling.cpp.o"
  "CMakeFiles/sqz_sim.dir/tiling.cpp.o.d"
  "CMakeFiles/sqz_sim.dir/timeline.cpp.o"
  "CMakeFiles/sqz_sim.dir/timeline.cpp.o.d"
  "CMakeFiles/sqz_sim.dir/timeline_sim.cpp.o"
  "CMakeFiles/sqz_sim.dir/timeline_sim.cpp.o.d"
  "libsqz_sim.a"
  "libsqz_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqz_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
