
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cpp" "src/core/CMakeFiles/sqz_core.dir/advisor.cpp.o" "gcc" "src/core/CMakeFiles/sqz_core.dir/advisor.cpp.o.d"
  "/root/repo/src/core/cli.cpp" "src/core/CMakeFiles/sqz_core.dir/cli.cpp.o" "gcc" "src/core/CMakeFiles/sqz_core.dir/cli.cpp.o.d"
  "/root/repo/src/core/codesign.cpp" "src/core/CMakeFiles/sqz_core.dir/codesign.cpp.o" "gcc" "src/core/CMakeFiles/sqz_core.dir/codesign.cpp.o.d"
  "/root/repo/src/core/config_io.cpp" "src/core/CMakeFiles/sqz_core.dir/config_io.cpp.o" "gcc" "src/core/CMakeFiles/sqz_core.dir/config_io.cpp.o.d"
  "/root/repo/src/core/dse.cpp" "src/core/CMakeFiles/sqz_core.dir/dse.cpp.o" "gcc" "src/core/CMakeFiles/sqz_core.dir/dse.cpp.o.d"
  "/root/repo/src/core/multicore.cpp" "src/core/CMakeFiles/sqz_core.dir/multicore.cpp.o" "gcc" "src/core/CMakeFiles/sqz_core.dir/multicore.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/sqz_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/sqz_core.dir/report.cpp.o.d"
  "/root/repo/src/core/roofline.cpp" "src/core/CMakeFiles/sqz_core.dir/roofline.cpp.o" "gcc" "src/core/CMakeFiles/sqz_core.dir/roofline.cpp.o.d"
  "/root/repo/src/core/squeezelerator.cpp" "src/core/CMakeFiles/sqz_core.dir/squeezelerator.cpp.o" "gcc" "src/core/CMakeFiles/sqz_core.dir/squeezelerator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sqz_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/sqz_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/sqz_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sqz_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sqz_util.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sqz_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
