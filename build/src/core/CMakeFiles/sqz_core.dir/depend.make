# Empty dependencies file for sqz_core.
# This may be replaced when dependencies are built.
