file(REMOVE_RECURSE
  "CMakeFiles/sqz_core.dir/advisor.cpp.o"
  "CMakeFiles/sqz_core.dir/advisor.cpp.o.d"
  "CMakeFiles/sqz_core.dir/cli.cpp.o"
  "CMakeFiles/sqz_core.dir/cli.cpp.o.d"
  "CMakeFiles/sqz_core.dir/codesign.cpp.o"
  "CMakeFiles/sqz_core.dir/codesign.cpp.o.d"
  "CMakeFiles/sqz_core.dir/config_io.cpp.o"
  "CMakeFiles/sqz_core.dir/config_io.cpp.o.d"
  "CMakeFiles/sqz_core.dir/dse.cpp.o"
  "CMakeFiles/sqz_core.dir/dse.cpp.o.d"
  "CMakeFiles/sqz_core.dir/multicore.cpp.o"
  "CMakeFiles/sqz_core.dir/multicore.cpp.o.d"
  "CMakeFiles/sqz_core.dir/report.cpp.o"
  "CMakeFiles/sqz_core.dir/report.cpp.o.d"
  "CMakeFiles/sqz_core.dir/roofline.cpp.o"
  "CMakeFiles/sqz_core.dir/roofline.cpp.o.d"
  "CMakeFiles/sqz_core.dir/squeezelerator.cpp.o"
  "CMakeFiles/sqz_core.dir/squeezelerator.cpp.o.d"
  "libsqz_core.a"
  "libsqz_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqz_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
