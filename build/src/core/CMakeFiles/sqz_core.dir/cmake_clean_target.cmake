file(REMOVE_RECURSE
  "libsqz_core.a"
)
