file(REMOVE_RECURSE
  "CMakeFiles/sqz_util.dir/csv.cpp.o"
  "CMakeFiles/sqz_util.dir/csv.cpp.o.d"
  "CMakeFiles/sqz_util.dir/ini.cpp.o"
  "CMakeFiles/sqz_util.dir/ini.cpp.o.d"
  "CMakeFiles/sqz_util.dir/logging.cpp.o"
  "CMakeFiles/sqz_util.dir/logging.cpp.o.d"
  "CMakeFiles/sqz_util.dir/rng.cpp.o"
  "CMakeFiles/sqz_util.dir/rng.cpp.o.d"
  "CMakeFiles/sqz_util.dir/stats.cpp.o"
  "CMakeFiles/sqz_util.dir/stats.cpp.o.d"
  "CMakeFiles/sqz_util.dir/strings.cpp.o"
  "CMakeFiles/sqz_util.dir/strings.cpp.o.d"
  "CMakeFiles/sqz_util.dir/table.cpp.o"
  "CMakeFiles/sqz_util.dir/table.cpp.o.d"
  "libsqz_util.a"
  "libsqz_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqz_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
