file(REMOVE_RECURSE
  "libsqz_util.a"
)
