# Empty dependencies file for sqz_util.
# This may be replaced when dependencies are built.
