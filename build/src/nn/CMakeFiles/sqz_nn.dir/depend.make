# Empty dependencies file for sqz_nn.
# This may be replaced when dependencies are built.
