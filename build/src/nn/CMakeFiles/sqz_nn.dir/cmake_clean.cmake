file(REMOVE_RECURSE
  "CMakeFiles/sqz_nn.dir/accuracy.cpp.o"
  "CMakeFiles/sqz_nn.dir/accuracy.cpp.o.d"
  "CMakeFiles/sqz_nn.dir/analysis.cpp.o"
  "CMakeFiles/sqz_nn.dir/analysis.cpp.o.d"
  "CMakeFiles/sqz_nn.dir/layer.cpp.o"
  "CMakeFiles/sqz_nn.dir/layer.cpp.o.d"
  "CMakeFiles/sqz_nn.dir/model.cpp.o"
  "CMakeFiles/sqz_nn.dir/model.cpp.o.d"
  "CMakeFiles/sqz_nn.dir/serialize.cpp.o"
  "CMakeFiles/sqz_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/sqz_nn.dir/shape.cpp.o"
  "CMakeFiles/sqz_nn.dir/shape.cpp.o.d"
  "CMakeFiles/sqz_nn.dir/zoo/alexnet.cpp.o"
  "CMakeFiles/sqz_nn.dir/zoo/alexnet.cpp.o.d"
  "CMakeFiles/sqz_nn.dir/zoo/mobilenet.cpp.o"
  "CMakeFiles/sqz_nn.dir/zoo/mobilenet.cpp.o.d"
  "CMakeFiles/sqz_nn.dir/zoo/squeezenet.cpp.o"
  "CMakeFiles/sqz_nn.dir/zoo/squeezenet.cpp.o.d"
  "CMakeFiles/sqz_nn.dir/zoo/squeezenext.cpp.o"
  "CMakeFiles/sqz_nn.dir/zoo/squeezenext.cpp.o.d"
  "CMakeFiles/sqz_nn.dir/zoo/tiny_darknet.cpp.o"
  "CMakeFiles/sqz_nn.dir/zoo/tiny_darknet.cpp.o.d"
  "CMakeFiles/sqz_nn.dir/zoo/zoo.cpp.o"
  "CMakeFiles/sqz_nn.dir/zoo/zoo.cpp.o.d"
  "libsqz_nn.a"
  "libsqz_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqz_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
