file(REMOVE_RECURSE
  "libsqz_nn.a"
)
