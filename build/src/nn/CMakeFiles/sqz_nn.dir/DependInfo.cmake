
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/accuracy.cpp" "src/nn/CMakeFiles/sqz_nn.dir/accuracy.cpp.o" "gcc" "src/nn/CMakeFiles/sqz_nn.dir/accuracy.cpp.o.d"
  "/root/repo/src/nn/analysis.cpp" "src/nn/CMakeFiles/sqz_nn.dir/analysis.cpp.o" "gcc" "src/nn/CMakeFiles/sqz_nn.dir/analysis.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/sqz_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/sqz_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/sqz_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/sqz_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/sqz_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/sqz_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/shape.cpp" "src/nn/CMakeFiles/sqz_nn.dir/shape.cpp.o" "gcc" "src/nn/CMakeFiles/sqz_nn.dir/shape.cpp.o.d"
  "/root/repo/src/nn/zoo/alexnet.cpp" "src/nn/CMakeFiles/sqz_nn.dir/zoo/alexnet.cpp.o" "gcc" "src/nn/CMakeFiles/sqz_nn.dir/zoo/alexnet.cpp.o.d"
  "/root/repo/src/nn/zoo/mobilenet.cpp" "src/nn/CMakeFiles/sqz_nn.dir/zoo/mobilenet.cpp.o" "gcc" "src/nn/CMakeFiles/sqz_nn.dir/zoo/mobilenet.cpp.o.d"
  "/root/repo/src/nn/zoo/squeezenet.cpp" "src/nn/CMakeFiles/sqz_nn.dir/zoo/squeezenet.cpp.o" "gcc" "src/nn/CMakeFiles/sqz_nn.dir/zoo/squeezenet.cpp.o.d"
  "/root/repo/src/nn/zoo/squeezenext.cpp" "src/nn/CMakeFiles/sqz_nn.dir/zoo/squeezenext.cpp.o" "gcc" "src/nn/CMakeFiles/sqz_nn.dir/zoo/squeezenext.cpp.o.d"
  "/root/repo/src/nn/zoo/tiny_darknet.cpp" "src/nn/CMakeFiles/sqz_nn.dir/zoo/tiny_darknet.cpp.o" "gcc" "src/nn/CMakeFiles/sqz_nn.dir/zoo/tiny_darknet.cpp.o.d"
  "/root/repo/src/nn/zoo/zoo.cpp" "src/nn/CMakeFiles/sqz_nn.dir/zoo/zoo.cpp.o" "gcc" "src/nn/CMakeFiles/sqz_nn.dir/zoo/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sqz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
