file(REMOVE_RECURSE
  "CMakeFiles/sqz_runtime.dir/executor.cpp.o"
  "CMakeFiles/sqz_runtime.dir/executor.cpp.o.d"
  "CMakeFiles/sqz_runtime.dir/gemm.cpp.o"
  "CMakeFiles/sqz_runtime.dir/gemm.cpp.o.d"
  "CMakeFiles/sqz_runtime.dir/ops.cpp.o"
  "CMakeFiles/sqz_runtime.dir/ops.cpp.o.d"
  "CMakeFiles/sqz_runtime.dir/quant.cpp.o"
  "CMakeFiles/sqz_runtime.dir/quant.cpp.o.d"
  "CMakeFiles/sqz_runtime.dir/tensor.cpp.o"
  "CMakeFiles/sqz_runtime.dir/tensor.cpp.o.d"
  "CMakeFiles/sqz_runtime.dir/weights.cpp.o"
  "CMakeFiles/sqz_runtime.dir/weights.cpp.o.d"
  "libsqz_runtime.a"
  "libsqz_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqz_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
