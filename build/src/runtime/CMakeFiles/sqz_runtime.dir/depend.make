# Empty dependencies file for sqz_runtime.
# This may be replaced when dependencies are built.
