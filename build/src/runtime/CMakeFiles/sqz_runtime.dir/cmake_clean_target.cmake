file(REMOVE_RECURSE
  "libsqz_runtime.a"
)
