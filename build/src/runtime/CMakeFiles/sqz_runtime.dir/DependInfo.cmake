
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/executor.cpp" "src/runtime/CMakeFiles/sqz_runtime.dir/executor.cpp.o" "gcc" "src/runtime/CMakeFiles/sqz_runtime.dir/executor.cpp.o.d"
  "/root/repo/src/runtime/gemm.cpp" "src/runtime/CMakeFiles/sqz_runtime.dir/gemm.cpp.o" "gcc" "src/runtime/CMakeFiles/sqz_runtime.dir/gemm.cpp.o.d"
  "/root/repo/src/runtime/ops.cpp" "src/runtime/CMakeFiles/sqz_runtime.dir/ops.cpp.o" "gcc" "src/runtime/CMakeFiles/sqz_runtime.dir/ops.cpp.o.d"
  "/root/repo/src/runtime/quant.cpp" "src/runtime/CMakeFiles/sqz_runtime.dir/quant.cpp.o" "gcc" "src/runtime/CMakeFiles/sqz_runtime.dir/quant.cpp.o.d"
  "/root/repo/src/runtime/tensor.cpp" "src/runtime/CMakeFiles/sqz_runtime.dir/tensor.cpp.o" "gcc" "src/runtime/CMakeFiles/sqz_runtime.dir/tensor.cpp.o.d"
  "/root/repo/src/runtime/weights.cpp" "src/runtime/CMakeFiles/sqz_runtime.dir/weights.cpp.o" "gcc" "src/runtime/CMakeFiles/sqz_runtime.dir/weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/sqz_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sqz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
