file(REMOVE_RECURSE
  "CMakeFiles/sqz_energy.dir/model.cpp.o"
  "CMakeFiles/sqz_energy.dir/model.cpp.o.d"
  "libsqz_energy.a"
  "libsqz_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqz_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
