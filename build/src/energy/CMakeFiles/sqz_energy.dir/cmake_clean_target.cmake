file(REMOVE_RECURSE
  "libsqz_energy.a"
)
