# Empty compiler generated dependencies file for sqz_energy.
# This may be replaced when dependencies are built.
