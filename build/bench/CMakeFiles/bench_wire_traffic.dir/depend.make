# Empty dependencies file for bench_wire_traffic.
# This may be replaced when dependencies are built.
