file(REMOVE_RECURSE
  "CMakeFiles/bench_wire_traffic.dir/bench_wire_traffic.cpp.o"
  "CMakeFiles/bench_wire_traffic.dir/bench_wire_traffic.cpp.o.d"
  "bench_wire_traffic"
  "bench_wire_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wire_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
