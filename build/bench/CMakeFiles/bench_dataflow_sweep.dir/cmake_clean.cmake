file(REMOVE_RECURSE
  "CMakeFiles/bench_dataflow_sweep.dir/bench_dataflow_sweep.cpp.o"
  "CMakeFiles/bench_dataflow_sweep.dir/bench_dataflow_sweep.cpp.o.d"
  "bench_dataflow_sweep"
  "bench_dataflow_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dataflow_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
