# Empty dependencies file for bench_dataflow_sweep.
# This may be replaced when dependencies are built.
