
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sim_perf.cpp" "bench/CMakeFiles/bench_sim_perf.dir/bench_sim_perf.cpp.o" "gcc" "bench/CMakeFiles/bench_sim_perf.dir/bench_sim_perf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sqz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/sqz_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sqz_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sqz_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/sqz_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sqz_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sqz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
