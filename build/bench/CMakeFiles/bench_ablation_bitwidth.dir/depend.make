# Empty dependencies file for bench_ablation_bitwidth.
# This may be replaced when dependencies are built.
