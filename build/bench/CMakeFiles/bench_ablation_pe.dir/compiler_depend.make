# Empty compiler generated dependencies file for bench_ablation_pe.
# This may be replaced when dependencies are built.
