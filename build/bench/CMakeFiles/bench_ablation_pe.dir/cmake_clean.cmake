file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pe.dir/bench_ablation_pe.cpp.o"
  "CMakeFiles/bench_ablation_pe.dir/bench_ablation_pe.cpp.o.d"
  "bench_ablation_pe"
  "bench_ablation_pe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
