# Empty compiler generated dependencies file for bench_ablation_multicore.
# This may be replaced when dependencies are built.
