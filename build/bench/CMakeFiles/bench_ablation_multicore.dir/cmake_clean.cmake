file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multicore.dir/bench_ablation_multicore.cpp.o"
  "CMakeFiles/bench_ablation_multicore.dir/bench_ablation_multicore.cpp.o.d"
  "bench_ablation_multicore"
  "bench_ablation_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
