file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rf.dir/bench_ablation_rf.cpp.o"
  "CMakeFiles/bench_ablation_rf.dir/bench_ablation_rf.cpp.o.d"
  "bench_ablation_rf"
  "bench_ablation_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
