file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gb.dir/bench_ablation_gb.cpp.o"
  "CMakeFiles/bench_ablation_gb.dir/bench_ablation_gb.cpp.o.d"
  "bench_ablation_gb"
  "bench_ablation_gb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
