# Empty dependencies file for bench_ablation_gb.
# This may be replaced when dependencies are built.
