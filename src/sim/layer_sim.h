// Single-layer simulation: compose a dataflow mapping with the DRAM model
// and the 1-D SIMD unit for non-MAC layers.
#pragma once

#include "nn/model.h"
#include "sim/config.h"
#include "sim/counters.h"
#include "sim/sparsity.h"

namespace sqz::sim {

/// Where a layer's operand tensors live (decided by the residency planner in
/// src/sched; single-layer callers can set these directly).
struct TensorPlacement {
  bool input_in_gb = false;   ///< Producer output retained in the global buffer.
  bool output_in_gb = false;  ///< Output retained for the consumer.
  /// When >= 0, the layer's *stored* output is this many words instead of
  /// its tensor size — used by drain-side pooling fusion (sched/fusion.h),
  /// where a conv drains directly through a max-pool and only the pooled
  /// tensor ever reaches the global buffer / DRAM.
  std::int64_t output_words_override = -1;
};

/// Simulate one layer of `model` under the given dataflow.
///
/// * Conv layers map with the requested dataflow.
/// * FullyConnected layers always map weight-stationary (see mappers.h).
/// * Pool / ReLU / Add layers run on the 1-D SIMD unit; Concat is free
///   (a global-buffer addressing view) apart from any DRAM traffic its
///   placement forces.
///
/// DRAM traffic = weights (always streamed at batch 1) + input if not in GB
/// + output if not kept in GB; transfers are double-buffered against
/// compute, so total cycles = max(compute, transfer) + access latency.
LayerResult simulate_layer(const nn::Model& model, int layer_idx,
                           const AcceleratorConfig& config, Dataflow dataflow,
                           const SparsityInfo& sparsity,
                           TensorPlacement placement = {});

/// Convenience overload constructing the expected-sparsity provider from the
/// config (dense when zero-skip is disabled).
LayerResult simulate_layer(const nn::Model& model, int layer_idx,
                           const AcceleratorConfig& config, Dataflow dataflow,
                           TensorPlacement placement = {});

/// The dataflow a layer actually executes with, honouring the FC-always-WS
/// rule and the config's DataflowSupport.
Dataflow effective_dataflow(const nn::Layer& layer, const AcceleratorConfig& config,
                            Dataflow requested);

/// Pre-DRAM result of a non-MAC layer on the 1-D SIMD unit: compute cycles
/// and global-buffer traffic for pool/ReLU/add/concat, before
/// finish_layer_result adds the memory-system terms. Closed form — shared
/// verbatim by the analytical estimator (src/est).
LayerResult simd_layer_pre_dram(const nn::Model& model, int layer_idx,
                                const AcceleratorConfig& config);

/// The memory-system tail of simulate_layer: apply the fused-drain stored-
/// output override, account DRAM traffic (weights + spilled activations) and
/// its global-buffer echoes, and compose total_cycles from the double-
/// buffered DRAM model. `r` must carry the pre-DRAM state (compute_cycles,
/// hierarchy counts, useful_macs, on_pe_array, dataflow). Exposed so the
/// analytical estimator (src/est) composes its closed-form mappings through
/// exactly this model — the two paths cannot drift apart.
LayerResult finish_layer_result(const nn::Model& model, int layer_idx,
                                const AcceleratorConfig& config, LayerResult r,
                                TensorPlacement placement);

// Implemented in timeline_sim.cpp: re-times an analytically simulated layer
// through the tile-level event timeline (sim/timeline.h). `double_buffered =
// false` models a single staging buffer (the paper's double-buffering claim
// ablated away). compute_cycles/counts are unchanged; total_cycles and
// dram_cycles reflect the event schedule.
LayerResult retime_layer(const nn::Model& model, const LayerResult& analytic,
                         const AcceleratorConfig& config,
                         TensorPlacement placement, bool double_buffered,
                         bool search_tiles = false);

}  // namespace sqz::sim
