// Shared schedule geometry for the two dataflows.
//
// Both the analytical mappers (mappers.cpp) and the functional emulators
// (functional/*.cpp) derive their loop structure from these plans, so the
// cycle model and the operand-exact execution cannot drift apart — tests
// assert their cycle and access counts are identical.
#pragma once

#include <algorithm>
#include <cstdint>

#include "nn/layer.h"
#include "sim/config.h"

namespace sqz::sim {

inline std::int64_t ceil_div_i64(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Maximum filter taps packed into the PE rows per WS pass. Packing is
/// limited to row-adjacent taps (same ky), which a single sequential stream
/// from the stream buffer can feed as shifted copies.
inline constexpr int kWsMaxTapPack = 2;

/// Fixed per-(tile, filter-chunk) sequencing overhead in OS mode.
inline constexpr int kOsTileOverheadCycles = 4;

/// Weight-stationary schedule (paper §4.1.2 "WS dataflow mode"), extended
/// with the two standard WS refinements:
///  * output-pixel chunking: pixels stream in chunks sized to the psum
///    accumulator SRAM, so partial sums never spill to the global buffer;
///  * tap packing: when a layer has few input channels (first layer,
///    depthwise), up to kWsMaxTapPack row-adjacent taps occupy the idle PE
///    rows, fed by the same input stream.
/// Strided layers stream at half rate (stride-s row walks hit s-strided
/// addresses; the stream buffer sustains one vector per cycle only for
/// unit-stride walks).
struct WsSchedule {
  bool is_fc = false;
  int groups = 1;
  int cin_pg = 0;
  int cout_pg = 0;
  int kh = 1, kw = 1;
  int stride = 1;
  int pad_h = 0, pad_w = 0;
  int oh = 1, ow = 1;

  int tap_pack = 1;        ///< Taps per pass (p); 1 when channels fill rows.
  int cin_blocks = 1;      ///< Row blocks over input channels (1 when packed).
  int cout_blocks = 1;
  int stream_penalty = 1;  ///< Cycles per streamed pixel (min(stride, 2)).
  std::int64_t pixels = 1;       ///< Output pixels (oh * ow).
  std::int64_t pixel_chunk = 1;  ///< Q: pixels per accumulator-resident chunk.

  /// Taps covered by pass group (ky, kxg): min(tap_pack, kw - kxg*tap_pack).
  int taps_in_group(int kxg) const noexcept {
    return std::min(tap_pack, kw - kxg * tap_pack);
  }
  int tap_groups_per_row() const noexcept {
    return static_cast<int>(ceil_div_i64(kw, tap_pack));
  }

  static WsSchedule plan(const nn::Layer& layer, const AcceleratorConfig& config);
};

/// Output-stationary schedule (paper §4.1.2 "OS dataflow mode").
struct OsSchedule {
  int groups = 1;
  int cin_pg = 0;
  int cout_pg = 0;
  int kh = 1, kw = 1;
  int stride = 1;
  int pad_h = 0, pad_w = 0;
  int oh = 1, ow = 1;

  int tiles_y = 1, tiles_x = 1;
  /// Pointwise layers need no mesh shifting during compute, so the next
  /// channel's input block injection overlaps the weight broadcasts;
  /// spatial filters keep the mesh busy and load serially.
  bool loads_overlap_compute = false;

  /// Input-block injection cycles for an (nh x nw) output tile: bandwidth-
  /// limited by the preload port, floor of one mesh row injection per block
  /// row.
  std::int64_t load_cycles(int nh, int nw, const AcceleratorConfig& config) const {
    const std::int64_t bh = static_cast<std::int64_t>(nh - 1) * stride + kh;
    const std::int64_t bw = static_cast<std::int64_t>(nw - 1) * stride + kw;
    return std::max(ceil_div_i64(bh * bw, config.preload_width), bh);
  }
  std::int64_t block_pixels(int nh, int nw) const {
    return (static_cast<std::int64_t>(nh - 1) * stride + kh) *
           (static_cast<std::int64_t>(nw - 1) * stride + kw);
  }

  static OsSchedule plan(const nn::Layer& layer, const AcceleratorConfig& config);
};

}  // namespace sqz::sim
