#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sim/functional/engines.h"
#include "sim/schedule.h"

namespace sqz::sim::functional {

FunctionalResult run_output_stationary(const nn::Layer& layer,
                                       const runtime::Tensor& input,
                                       const runtime::WeightTensor& weights,
                                       const runtime::Requant& requant,
                                       const AcceleratorConfig& config) {
  const OsSchedule s = OsSchedule::plan(layer, config);
  const int n = config.array_n;
  const int rf = config.rf_entries;

  if (config.batch != 1)
    throw std::invalid_argument(
        "functional emulators model single-image execution (batch == 1)");

  FunctionalResult r;
  r.output = runtime::Tensor(layer.out_shape);

  // Per-PE accumulators: rf_entries partial sums per PE.
  std::vector<std::int64_t> acc(static_cast<std::size_t>(rf) * n * n, 0);
  const auto acc_at = [&](int slot, int py, int px) -> std::int64_t& {
    return acc[(static_cast<std::size_t>(slot) * n + py) * n + px];
  };
  // The input block staged in the PE input registers for one channel.
  const int bh_max = (n - 1) * s.stride + s.kh;
  const int bw_max = (n - 1) * s.stride + s.kw;
  std::vector<std::int64_t> block(static_cast<std::size_t>(bh_max) * bw_max, 0);

  for (int ty = 0; ty < s.tiles_y; ++ty) {
    const int nh = std::min(n, s.oh - ty * n);
    for (int tx = 0; tx < s.tiles_x; ++tx) {
      const int nw = std::min(n, s.ow - tx * n);
      const std::int64_t bh = static_cast<std::int64_t>(nh - 1) * s.stride + s.kh;
      const std::int64_t bw = static_cast<std::int64_t>(nw - 1) * s.stride + s.kw;
      const std::int64_t block_pixels = s.block_pixels(nh, nw);
      const std::int64_t load = s.load_cycles(nh, nw, config);
      const std::int64_t tile_pes = static_cast<std::int64_t>(nh) * nw;

      for (int grp = 0; grp < s.groups; ++grp) {
        for (int oc0 = 0; oc0 < s.cout_pg; oc0 += rf) {
          const int chunk = std::min(rf, s.cout_pg - oc0);
          r.compute_cycles += kOsTileOverheadCycles;

          // Initialize this chunk's accumulators with the bias.
          for (int slot = 0; slot < chunk; ++slot)
            for (int py = 0; py < nh; ++py)
              for (int px = 0; px < nw; ++px)
                acc_at(slot, py, px) = weights.bias(grp * s.cout_pg + oc0 + slot);

          for (int icg = 0; icg < s.cin_pg; ++icg) {
            const int ic = grp * s.cin_pg + icg;
            // --- inject the input block through the mesh -----------------
            for (std::int64_t by = 0; by < bh; ++by) {
              const int iy = ty * n * s.stride - s.pad_h + static_cast<int>(by);
              for (std::int64_t bx = 0; bx < bw; ++bx) {
                const int ix = tx * n * s.stride - s.pad_w + static_cast<int>(bx);
                const bool in_bounds = iy >= 0 && iy < input.shape().h &&
                                       ix >= 0 && ix < input.shape().w;
                block[static_cast<std::size_t>(by) * bw_max + bx] =
                    in_bounds ? input.at(ic, iy, ix) : 0;
              }
            }
            r.counts.gb_reads += block_pixels;
            r.counts.rf_writes += block_pixels;

            // --- broadcast the chunk's non-zero weights one per cycle ----
            std::int64_t broadcasts = 0;
            for (int slot = 0; slot < chunk; ++slot) {
              const int oc = grp * s.cout_pg + oc0 + slot;
              for (int ky = 0; ky < s.kh; ++ky) {
                for (int kx = 0; kx < s.kw; ++kx) {
                  const std::int64_t w = weights.at(oc, icg, ky, kx);
                  if (config.os_zero_skip && w == 0) continue;  // skipped
                  ++broadcasts;
                  r.counts.gb_reads += 1;  // the broadcast weight word
                  for (int py = 0; py < nh; ++py)
                    for (int px = 0; px < nw; ++px)
                      acc_at(slot, py, px) +=
                          block[static_cast<std::size_t>(py * s.stride + ky) *
                                    bw_max +
                                (px * s.stride + kx)] *
                          w;
                  r.counts.mac_ops += tile_pes;
                  r.counts.rf_reads += 2 * tile_pes;  // input reg + psum read
                  r.counts.rf_writes += tile_pes;     // psum write
                  r.counts.inter_pe += tile_pes;
                }
              }
            }
            // Pointwise layers overlap the next injection with compute;
            // spatial filters load serially (mesh conflict).
            r.compute_cycles += s.loads_overlap_compute
                                    ? std::max(load, broadcasts)
                                    : load + broadcasts;
          }

          // --- drain the finished outputs --------------------------------
          const std::int64_t outputs = tile_pes * chunk;
          r.compute_cycles += ceil_div_i64(outputs, config.drain_width);
          r.counts.gb_writes += outputs;
          for (int slot = 0; slot < chunk; ++slot) {
            const int oc = grp * s.cout_pg + oc0 + slot;
            for (int py = 0; py < nh; ++py)
              for (int px = 0; px < nw; ++px)
                r.output.set(oc, ty * n + py, tx * n + px,
                             requant.apply(acc_at(slot, py, px)));
          }
        }
      }
    }
  }
  return r;
}

}  // namespace sqz::sim::functional
