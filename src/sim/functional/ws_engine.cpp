#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sim/functional/engines.h"
#include "sim/schedule.h"

namespace sqz::sim::functional {

FunctionalResult run_weight_stationary(const nn::Layer& layer,
                                       const runtime::Tensor& input,
                                       const runtime::WeightTensor& weights,
                                       const runtime::Requant& requant,
                                       const AcceleratorConfig& config) {
  const WsSchedule s = WsSchedule::plan(layer, config);
  const int n = config.array_n;
  const int out_c = layer.out_shape.c;
  const int oh = s.oh, ow = s.ow;

  // Reads one streamed input operand; FC indexes the flattened tensor.
  const auto read_input = [&](int ic, int iy, int ix) -> std::int64_t {
    if (s.is_fc) return input.data()[ic];
    if (iy < 0 || iy >= input.shape().h || ix < 0 || ix >= input.shape().w) return 0;
    return input.at(ic, iy, ix);
  };

  if (config.batch != 1)
    throw std::invalid_argument(
        "functional emulators model single-image execution (batch == 1)");

  FunctionalResult r;
  r.output = runtime::Tensor(layer.out_shape);

  // Psum accumulators (accumulator SRAM + commit), initialized with bias.
  std::vector<std::int64_t> psum(static_cast<std::size_t>(out_c) * oh * ow, 0);
  const auto psum_at = [&](int oc, std::int64_t pixel) -> std::int64_t& {
    return psum[static_cast<std::size_t>(oc) * oh * ow +
                static_cast<std::size_t>(pixel)];
  };
  for (int oc = 0; oc < out_c; ++oc)
    for (std::int64_t px = 0; px < s.pixels; ++px)
      psum_at(oc, px) = weights.bias(oc);

  for (int grp = 0; grp < s.groups; ++grp) {
    for (int ob = 0; ob < s.cout_blocks; ++ob) {
      const int cols_used = std::min(n, s.cout_pg - ob * n);
      for (std::int64_t px0 = 0; px0 < s.pixels; px0 += s.pixel_chunk) {
        const std::int64_t qc = std::min(s.pixel_chunk, s.pixels - px0);
        bool first_pass = true;
        for (int cb = 0; cb < s.cin_blocks; ++cb) {
          const int base_rows =
              s.tap_pack > 1 ? s.cin_pg : std::min(n, s.cin_pg - cb * n);
          for (int ky = 0; ky < s.kh; ++ky) {
            for (int kxg = 0; kxg < s.tap_groups_per_row(); ++kxg) {
              const int taps = s.taps_in_group(kxg);
              const std::int64_t rows =
                  static_cast<std::int64_t>(base_rows) * taps;
              const std::int64_t block_weights = rows * cols_used;

              // --- preload: rows = (tap t, channel row) pairs -------------
              // wreg[(t*base_rows + row) * n + c]
              std::vector<std::int64_t> wreg(
                  static_cast<std::size_t>(rows) * n, 0);
              for (int c = 0; c < cols_used; ++c) {
                const int oc_g = ob * n + c;
                for (int t = 0; t < taps; ++t) {
                  const int kx = kxg * s.tap_pack + t;
                  for (int row = 0; row < base_rows; ++row) {
                    const int icg = cb * n + row;
                    wreg[(static_cast<std::size_t>(t) * base_rows + row) * n + c] =
                        weights.at(grp * s.cout_pg + oc_g, icg, ky, kx);
                  }
                }
              }
              r.compute_cycles +=
                  ceil_div_i64(block_weights, config.preload_width);
              r.counts.rf_writes += block_weights;
              r.counts.gb_reads += block_weights;

              // --- stream the pixel chunk ---------------------------------
              for (std::int64_t px = px0; px < px0 + qc; ++px) {
                const int oy = static_cast<int>(px / ow);
                const int ox = static_cast<int>(px % ow);
                r.compute_cycles += s.stream_penalty;
                r.counts.gb_reads += base_rows;
                for (int c = 0; c < cols_used; ++c) {
                  std::int64_t col_sum = 0;  // adder chain down the column
                  for (int t = 0; t < taps; ++t) {
                    const int kx = kxg * s.tap_pack + t;
                    const int iy = oy * s.stride - s.pad_h + ky;
                    const int ix = ox * s.stride - s.pad_w + kx;
                    for (int row = 0; row < base_rows; ++row) {
                      const int ic = grp * s.cin_pg + cb * n + row;
                      col_sum +=
                          read_input(ic, iy, ix) *
                          wreg[(static_cast<std::size_t>(t) * base_rows + row) * n +
                               c];
                    }
                  }
                  const int oc = grp * s.cout_pg + ob * n + c;
                  psum_at(oc, px) += col_sum;
                }
                r.counts.mac_ops += block_weights;
                r.counts.rf_reads += block_weights;
                r.counts.inter_pe += block_weights;
                std::int64_t& psum_writes = config.ws_psums_in_gb
                                                ? r.counts.gb_writes
                                                : r.counts.acc_writes;
                std::int64_t& psum_reads = config.ws_psums_in_gb
                                               ? r.counts.gb_reads
                                               : r.counts.acc_reads;
                psum_writes += cols_used;
                if (!first_pass) psum_reads += cols_used;
              }
              r.compute_cycles += rows;  // adder-chain pipeline fill
              first_pass = false;
            }
          }
        }
        // Commit the finished chunk from the accumulator to the GB.
        r.counts.gb_writes += qc * cols_used;
      }
    }
  }

  // Requantize the committed partial sums.
  for (int oc = 0; oc < out_c; ++oc)
    for (std::int64_t px = 0; px < s.pixels; ++px) {
      const int oy = static_cast<int>(px / ow);
      const int ox = static_cast<int>(px % ow);
      r.output.set(oc, oy, ox, requant.apply(psum_at(oc, px)));
    }
  return r;
}

}  // namespace sqz::sim::functional
