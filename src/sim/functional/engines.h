// Functional dataflow emulators.
//
// These execute the *literal* WS / OS operation sequences of paper §4.1.2,
// operand by operand, producing:
//   * the layer's numerical output  — tested bit-exact against the reference
//     runtime (src/runtime/ops.h), proving the schedules compute the right
//     convolution;
//   * measured cycle and access counts — tested exactly equal to the
//     analytical mappers (src/sim/mappers.h), proving the cycle model counts
//     what the schedule actually does.
//
// They are deliberately slow (they really do every MAC); tests run them on
// small layers.
#pragma once

#include "nn/layer.h"
#include "runtime/quant.h"
#include "runtime/tensor.h"
#include "sim/config.h"
#include "sim/counters.h"

namespace sqz::sim::functional {

struct FunctionalResult {
  runtime::Tensor output;
  std::int64_t compute_cycles = 0;
  AccessCounts counts;  ///< dram_words stays 0 (no DRAM in the array model).
};

/// Execute a Conv or FullyConnected layer with the weight-stationary
/// schedule (matrix-vector blocks, adder-chain column reduction, GB psum
/// accumulation).
FunctionalResult run_weight_stationary(const nn::Layer& layer,
                                       const runtime::Tensor& input,
                                       const runtime::WeightTensor& weights,
                                       const runtime::Requant& requant,
                                       const AcceleratorConfig& config);

/// Execute a Conv layer with the output-stationary schedule (output tiles,
/// rf_entries filters per input preload, zero-weight broadcast skipping).
/// FullyConnected layers are rejected, as in the analytical mapper.
FunctionalResult run_output_stationary(const nn::Layer& layer,
                                       const runtime::Tensor& input,
                                       const runtime::WeightTensor& weights,
                                       const runtime::Requant& requant,
                                       const AcceleratorConfig& config);

}  // namespace sqz::sim::functional
