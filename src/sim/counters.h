// Access counters and per-layer / per-network simulation results.
//
// Counters follow the Eyeriss energy methodology (paper §4.1.3): every level
// of the memory hierarchy counts its accesses; the energy model multiplies
// each count by a unit energy normalized to one MAC.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.h"

namespace sqz::util {
class JsonWriter;
}

namespace sqz::sim {

/// Word-granularity access counts at each level of the hierarchy.
struct AccessCounts {
  std::int64_t mac_ops = 0;       ///< MACs actually executed (OS skips zeros).
  std::int64_t rf_reads = 0;      ///< Per-PE register file reads.
  std::int64_t rf_writes = 0;
  std::int64_t inter_pe = 0;      ///< Mesh/chain word transfers between PEs.
  std::int64_t acc_reads = 0;     ///< Psum accumulator SRAM (WS column sums).
  std::int64_t acc_writes = 0;
  std::int64_t gb_reads = 0;      ///< Global buffer word reads.
  std::int64_t gb_writes = 0;
  std::int64_t dram_words = 0;    ///< Words moved between DRAM and GB.

  /// Overflow-checked accumulation (util/checked.h): wrapping any counter
  /// throws std::overflow_error rather than silently corrupting totals on
  /// absurd configurations.
  AccessCounts& operator+=(const AccessCounts& o);
  friend AccessCounts operator+(AccessCounts a, const AccessCounts& b) {
    a += b;
    return a;
  }
  bool operator==(const AccessCounts&) const = default;
};

/// Append every counter as a member of the currently open JSON object
/// (the caller brackets with begin_object/end_object).
void counts_to_json(const AccessCounts& counts, util::JsonWriter& w);

/// One interval on one engine. Recorded by the tile timeline
/// (sim/timeline.h) and retained per layer in timeline-mode runs so
/// exporters (core/trace.h) can reconstruct the whole-network schedule.
struct TimelineEvent {
  enum class Engine { Dma, Compute } engine;
  int tile = 0;
  std::int64_t start = 0;
  std::int64_t end = 0;
  std::string what;  ///< "load", "compute", "store"
};

/// Result of simulating one layer on a fixed configuration and dataflow.
struct LayerResult {
  int layer_idx = 0;
  std::string layer_name;
  bool on_pe_array = false;          ///< false => 1-D SIMD unit (pool/relu/...).
  Dataflow dataflow = Dataflow::WeightStationary;  ///< Meaningful if on_pe_array.

  std::int64_t useful_macs = 0;      ///< Algorithmic MACs (before zero-skip).
  std::int64_t compute_cycles = 0;   ///< PE-array (or SIMD) busy cycles.
  std::int64_t dram_cycles = 0;      ///< DMA transfer cycles.
  std::int64_t total_cycles = 0;     ///< After double-buffer overlap + latency.

  AccessCounts counts;

  /// Tile-level engine intervals, layer-relative (cycle 0 = layer start).
  /// Populated by retime_layer when the run uses the tile timeline; empty
  /// under the flat analytic model.
  std::vector<TimelineEvent> timeline;

  /// PE-array utilization: useful MACs per PE per total cycle.
  double utilization(int pe_count) const noexcept {
    if (total_cycles <= 0 || pe_count <= 0) return 0.0;
    return static_cast<double>(useful_macs) /
           (static_cast<double>(total_cycles) * pe_count);
  }
};

/// Result of simulating a whole network.
struct NetworkResult {
  std::string model_name;
  AcceleratorConfig config;
  std::vector<LayerResult> layers;

  /// Totals are overflow-checked: they throw std::overflow_error instead of
  /// wrapping when per-layer results sum past INT64_MAX.
  std::int64_t total_cycles() const;
  std::int64_t total_useful_macs() const;
  AccessCounts total_counts() const;
  /// Whole-network utilization (useful MACs / (cycles * PEs)).
  double utilization() const;
  /// Milliseconds at the given clock (default: the paper's 1 GHz).
  double latency_ms(double clock_ghz = 1.0) const;
};

}  // namespace sqz::sim
