// Accelerator configuration: the micro-architectural parameters of the
// Squeezelerator (paper §4.1) and of the single-dataflow reference designs.
#pragma once

#include <cstdint>
#include <string>

namespace sqz::sim {

/// The two dataflows the PE array supports (paper §3.2). The Squeezelerator's
/// key feature is choosing between them per layer with no switch overhead.
enum class Dataflow {
  WeightStationary,  ///< TPU-like matrix-vector engine; weights pinned in PEs.
  OutputStationary,  ///< ShiDianNao-like output-tile engine; psums pinned.
};

const char* dataflow_name(Dataflow df) noexcept;
/// Short form for tables: "WS" / "OS".
const char* dataflow_abbrev(Dataflow df) noexcept;

/// Which dataflows a simulated accelerator instance may use. The paper's
/// reference architectures are single-dataflow (WsOnly / OsOnly); the
/// Squeezelerator is Hybrid.
enum class DataflowSupport { WsOnly, OsOnly, Hybrid };

struct AcceleratorConfig {
  // --- PE array ---------------------------------------------------------
  int array_n = 32;        ///< N x N PEs (paper: N = 8..32; experiments use 32).
  int rf_entries = 16;     ///< Per-PE psum registers. In OS mode this is the
                           ///< number of filters sharing one input preload
                           ///< (the paper's 8 -> 16 tune-up lever).

  // --- on-chip buffers ---------------------------------------------------
  int gb_kib = 128;            ///< Global buffer SRAM (paper: 128 KB).
  int preload_width = 32;      ///< Words/cycle from preload buffer into the array.
  int drain_width = 32;        ///< Words/cycle from the array into the GB.
                               ///< (OS result drain is serial with compute —
                               ///< "this final step takes additional time".)
  int weight_reserve_words = 8192;  ///< GB region reserved for streaming
                                    ///< weights (double buffered), not
                                    ///< available for activation residency.
  int psum_accum_words = 16384;     ///< Dedicated partial-sum accumulator SRAM
                                    ///< at the WS adder-chain outputs; bounds
                                    ///< the output-pixel chunk streamed per
                                    ///< weight-block pass.

  // --- vector unit for non-conv layers (paper §3.1: "1D SIMD") ----------
  int simd_lanes = 16;

  // --- DRAM (paper §4.1.3: latency 100 cycles, 16 GB/s effective) -------
  int dram_latency_cycles = 100;
  double dram_bytes_per_cycle = 16.0;  ///< 16 GB/s at the 1 GHz core clock.

  // --- workload ------------------------------------------------------------
  int batch = 1;  ///< Images per inference. The paper evaluates batch 1
                  ///< ("less opportunity for data reuse, but reflects typical
                  ///< usage in embedded vision"); larger batches amortize the
                  ///< weight streaming — WS blocks stream batch x pixels per
                  ///< preload, and weights cross DRAM once per batch.

  // --- data & sparsity ---------------------------------------------------
  int data_bytes = 2;            ///< 16-bit integer data path.
  double weight_sparsity = 0.40; ///< Paper: "conservatively model ... at 40%".
  bool os_zero_skip = true;      ///< OS broadcasts only non-zero weights.

  // --- dataflow support --------------------------------------------------
  DataflowSupport support = DataflowSupport::Hybrid;

  /// When true, WS partial sums read-modify-write through the global buffer
  /// instead of the dedicated psum accumulator SRAM. The Squeezelerator has
  /// the accumulator (one of its WS-mode tune-ups); the naive reference WS
  /// design does not. Cycle counts are unaffected (the GB port keeps up);
  /// energy is not.
  bool ws_psums_in_gb = false;

  int pe_count() const noexcept { return array_n * array_n; }
  std::int64_t gb_capacity_words() const noexcept {
    return static_cast<std::int64_t>(gb_kib) * 1024 / data_bytes;
  }

  /// Throws std::invalid_argument when parameters are inconsistent.
  void validate() const;

  std::string to_string() const;

  /// Field-wise equality — the identity check compiled-plan artifacts
  /// (sched/plan_io.h) use to refuse serving a plan built for a different
  /// accelerator instance.
  friend bool operator==(const AcceleratorConfig&,
                         const AcceleratorConfig&) = default;

  // --- presets -----------------------------------------------------------
  /// The paper's Squeezelerator (hybrid dataflow, 32x32, RF 16).
  static AcceleratorConfig squeezelerator();
  /// Initial Squeezelerator before the SqueezeNext co-design pass (RF 8).
  static AcceleratorConfig squeezelerator_rf8();
  /// Single-dataflow reference architectures of Figure 1 / Table 2.
  static AcceleratorConfig reference_ws();
  static AcceleratorConfig reference_os();
};

}  // namespace sqz::sim
