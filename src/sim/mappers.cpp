#include "sim/mappers.h"

#include <algorithm>
#include <stdexcept>

#include "sim/schedule.h"

namespace sqz::sim {

MappingResult map_weight_stationary(const nn::Layer& layer,
                                    const AcceleratorConfig& config) {
  const WsSchedule s = WsSchedule::plan(layer, config);
  const int n = config.array_n;

  MappingResult r;
  for (int grp = 0; grp < s.groups; ++grp) {
    for (int ob = 0; ob < s.cout_blocks; ++ob) {
      const int cols_used = std::min(n, s.cout_pg - ob * n);
      for (std::int64_t px0 = 0; px0 < s.pixels; px0 += s.pixel_chunk) {
        const std::int64_t qc = std::min(s.pixel_chunk, s.pixels - px0);
        bool first_pass = true;
        for (int cb = 0; cb < s.cin_blocks; ++cb) {
          const int base_rows =
              s.tap_pack > 1 ? s.cin_pg : std::min(n, s.cin_pg - cb * n);
          for (int ky = 0; ky < s.kh; ++ky) {
            for (int kxg = 0; kxg < s.tap_groups_per_row(); ++kxg) {
              const int taps = s.taps_in_group(kxg);
              const std::int64_t rows =
                  static_cast<std::int64_t>(base_rows) * taps;
              const std::int64_t block_weights = rows * cols_used;

              // Preload this pass's stationary weights, stream the pixel
              // chunk (penalized when strided), pay the chain fill.
              r.compute_cycles +=
                  ceil_div_i64(block_weights, config.preload_width);
              r.compute_cycles += qc * s.stream_penalty + rows;

              const std::int64_t macs = qc * block_weights;
              r.counts.mac_ops += macs;
              r.counts.rf_writes += block_weights;  // stationary weight regs
              r.counts.rf_reads += macs;            // weight reg read per MAC
              r.counts.inter_pe += macs;            // psum chain hop per MAC
              r.counts.gb_reads += block_weights;   // weights into preload buf
              // Streamed inputs: packed taps are shifted copies of the same
              // sequential stream, so distinct words ~ chunk x channels.
              r.counts.gb_reads += qc * base_rows;

              // Column sums accumulate in the psum accumulator SRAM (naive
              // reference WS: read-modify-write through the global buffer).
              std::int64_t& psum_writes = config.ws_psums_in_gb
                                              ? r.counts.gb_writes
                                              : r.counts.acc_writes;
              std::int64_t& psum_reads = config.ws_psums_in_gb
                                             ? r.counts.gb_reads
                                             : r.counts.acc_reads;
              psum_writes += qc * cols_used;
              if (!first_pass) psum_reads += qc * cols_used;
              first_pass = false;
            }
          }
        }
        // Commit the finished chunk from the accumulator to the GB.
        r.counts.gb_writes += qc * cols_used;
      }
    }
  }
  return r;
}

MappingResult map_output_stationary(const nn::Layer& layer,
                                    const AcceleratorConfig& config,
                                    const SparsityInfo& sparsity) {
  const OsSchedule s = OsSchedule::plan(layer, config);
  const int n = config.array_n;
  const int rf = config.rf_entries;

  MappingResult r;
  for (int ty = 0; ty < s.tiles_y; ++ty) {
    const int nh = std::min(n, s.oh - ty * n);
    for (int tx = 0; tx < s.tiles_x; ++tx) {
      const int nw = std::min(n, s.ow - tx * n);
      const std::int64_t block_pixels = s.block_pixels(nh, nw);
      const std::int64_t load = s.load_cycles(nh, nw, config);
      const std::int64_t tile_pes = static_cast<std::int64_t>(nh) * nw;

      for (int grp = 0; grp < s.groups; ++grp) {
        for (int oc0 = 0; oc0 < s.cout_pg; oc0 += rf) {
          const int chunk = std::min(rf, s.cout_pg - oc0);
          r.compute_cycles += kOsTileOverheadCycles;
          for (int icg = 0; icg < s.cin_pg; ++icg) {
            // The chunk's filters reuse this input block; only non-zero
            // weights broadcast (one per cycle). Pointwise layers overlap
            // the next block injection with compute; spatial filters keep
            // the mesh busy shifting and load serially.
            const std::int64_t broadcasts =
                sparsity.nnz_chunk(grp * s.cout_pg + oc0, chunk, icg);
            r.compute_cycles += s.loads_overlap_compute
                                    ? std::max(load, broadcasts)
                                    : load + broadcasts;

            const std::int64_t macs = broadcasts * tile_pes;
            r.counts.mac_ops += macs;
            r.counts.gb_reads += block_pixels;  // input block from GB
            r.counts.gb_reads += broadcasts;    // weight words broadcast
            r.counts.rf_writes += block_pixels; // input regs fill
            r.counts.rf_reads += 2 * macs;      // input reg + psum read
            r.counts.rf_writes += macs;         // psum write
            r.counts.inter_pe += macs;          // mesh shift feeding each MAC
          }
          // Drain the finished outputs; serial with compute by design.
          const std::int64_t outputs = tile_pes * chunk;
          r.compute_cycles += ceil_div_i64(outputs, config.drain_width);
          r.counts.gb_writes += outputs;
        }
      }
    }
  }
  return r;
}

}  // namespace sqz::sim
