#include "sim/noc.h"

#include <algorithm>

#include "sim/schedule.h"

namespace sqz::sim {

namespace {

WireTraffic ws_wires(const nn::Layer& layer, const AcceleratorConfig& config) {
  const WsSchedule s = WsSchedule::plan(layer, config);
  const int n = config.array_n;
  WireTraffic w;
  for (int grp = 0; grp < s.groups; ++grp) {
    for (int ob = 0; ob < s.cout_blocks; ++ob) {
      const int cols_used = std::min(n, s.cout_pg - ob * n);
      for (std::int64_t px0 = 0; px0 < s.pixels; px0 += s.pixel_chunk) {
        const std::int64_t qc = std::min(s.pixel_chunk, s.pixels - px0);
        for (int cb = 0; cb < s.cin_blocks; ++cb) {
          const int base_rows =
              s.tap_pack > 1 ? s.cin_pg : std::min(n, s.cin_pg - cb * n);
          for (int ky = 0; ky < s.kh; ++ky) {
            for (int kxg = 0; kxg < s.tap_groups_per_row(); ++kxg) {
              const std::int64_t rows =
                  static_cast<std::int64_t>(base_rows) * s.taps_in_group(kxg);
              // Each streamed cycle broadcasts `rows` input words along
              // their row wires (span = active columns)...
              w.broadcast_segment_hops += qc * rows * cols_used;
              // ...and every MAC's product hops one link down the chain.
              w.shift_hops += qc * rows * cols_used;
              // Column sums exit at the chain bottom: one hop per psum.
              w.drain_hops += qc * cols_used;
            }
          }
        }
      }
    }
  }
  return w;
}

WireTraffic os_wires(const nn::Layer& layer, const AcceleratorConfig& config,
                     const SparsityInfo& sparsity) {
  const OsSchedule s = OsSchedule::plan(layer, config);
  const int n = config.array_n;
  const int rf = config.rf_entries;
  WireTraffic w;
  for (int ty = 0; ty < s.tiles_y; ++ty) {
    const int nh = std::min(n, s.oh - ty * n);
    for (int tx = 0; tx < s.tiles_x; ++tx) {
      const int nw = std::min(n, s.ow - tx * n);
      const std::int64_t tile_pes = static_cast<std::int64_t>(nh) * nw;
      // Drain: each PE's outputs travel its row distance to the bottom row
      // plus one exit hop; summed over rows: nw * sum_r (nh - r) hops.
      std::int64_t tile_drain_hops = 0;
      for (int r = 0; r < nh; ++r)
        tile_drain_hops += static_cast<std::int64_t>(nw) * (nh - r);

      for (int grp = 0; grp < s.groups; ++grp) {
        for (int oc0 = 0; oc0 < s.cout_pg; oc0 += rf) {
          const int chunk = std::min(rf, s.cout_pg - oc0);
          std::int64_t broadcasts = 0;
          for (int icg = 0; icg < s.cin_pg; ++icg)
            broadcasts += sparsity.nnz_chunk(grp * s.cout_pg + oc0, chunk, icg);
          // Weight broadcast bus spans the whole array per broadcast cycle.
          w.broadcast_segment_hops += broadcasts * static_cast<std::int64_t>(n);
          // Every MAC's input arrived via a one-hop mesh shift.
          w.shift_hops += broadcasts * tile_pes;
          w.drain_hops += tile_drain_hops * chunk;
        }
      }
    }
  }
  return w;
}

}  // namespace

WireTraffic analyze_wire_traffic(const nn::Layer& layer,
                                 const AcceleratorConfig& config,
                                 Dataflow dataflow, const SparsityInfo& sparsity) {
  if (layer.is_fc() || dataflow == Dataflow::WeightStationary)
    return ws_wires(layer, config);
  return os_wires(layer, config, sparsity);
}

}  // namespace sqz::sim
