#include "sim/dram.h"

#include <algorithm>
#include <cmath>

namespace sqz::sim {

std::int64_t DramModel::transfer_cycles(std::int64_t words) const noexcept {
  if (words <= 0) return 0;
  const double bytes = static_cast<double>(words) * data_bytes_;
  return static_cast<std::int64_t>(std::ceil(bytes / bytes_per_cycle_));
}

std::int64_t DramModel::exposed_cycles(std::int64_t words,
                                       std::int64_t compute_cycles) const noexcept {
  if (words <= 0) return 0;
  const std::int64_t transfer = transfer_cycles(words);
  // Double buffering: transfers hide behind compute; only the excess plus the
  // initial access latency is exposed.
  return std::max<std::int64_t>(0, transfer - compute_cycles) + latency_;
}

}  // namespace sqz::sim
