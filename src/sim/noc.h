// Interconnect (NoC) wire-traffic analysis.
//
// The paper's taxonomy (§3.2) lists the PE array's "interconnection
// topology" among the features distinguishing NN accelerators, and §4.1
// describes the Squeezelerator's: a mesh between neighbours, a broadcast
// bus from the stream buffer, preload connections on the top row and drain
// connections on the bottom row. This module counts the wire segments each
// dataflow energizes — broadcast spans, neighbour shifts, and the Manhattan
// distance outputs travel to reach the drain row — the physical-design view
// behind the flat inter-PE access counts in the energy model.
#pragma once

#include <cstdint>

#include "nn/layer.h"
#include "sim/config.h"
#include "sim/sparsity.h"

namespace sqz::sim {

struct WireTraffic {
  /// Broadcast words x wire span (a row/bus broadcast energizes array_n
  /// segments regardless of how many PEs consume it).
  std::int64_t broadcast_segment_hops = 0;
  /// Neighbour-to-neighbour transfers (OS input shifting, WS psum chain).
  std::int64_t shift_hops = 0;
  /// Output words x Manhattan hops to the drain row (OS: tile row index;
  /// WS: chain bottom, 1 hop).
  std::int64_t drain_hops = 0;

  std::int64_t total_hops() const noexcept {
    return broadcast_segment_hops + shift_hops + drain_hops;
  }

  /// Mean hops per useful MAC — the wire cost per unit of work.
  double hops_per_mac(std::int64_t useful_macs) const noexcept {
    if (useful_macs <= 0) return 0.0;
    return static_cast<double>(total_hops()) / static_cast<double>(useful_macs);
  }
};

/// Wire traffic of one conv/fc layer under the given dataflow. Uses the same
/// schedule geometry as the cycle mappers. FC layers route WS (as in the
/// simulator); requesting OS for an FC throws std::invalid_argument.
WireTraffic analyze_wire_traffic(const nn::Layer& layer,
                                 const AcceleratorConfig& config,
                                 Dataflow dataflow, const SparsityInfo& sparsity);

}  // namespace sqz::sim
