#include "sim/layer_sim.h"
#include "sim/tiling.h"
#include "sim/timeline.h"

namespace sqz::sim {

LayerResult retime_layer(const nn::Model& model, const LayerResult& analytic,
                         const AcceleratorConfig& config,
                         TensorPlacement placement, bool double_buffered,
                         bool search_tiles) {
  // Either the fixed streaming heuristic or the paper's tile search ("the
  // size of the tile ... that gives the shortest execution time").
  const TilePlan plan =
      search_tiles
          ? search_layer_tiles(model, analytic.layer_idx, config, placement,
                               analytic.compute_cycles)
                .plan
          : plan_layer_tiles(model, analytic.layer_idx, config, placement,
                             analytic.compute_cycles);
  TimelineResult tl =
      run_timeline(plan.tiles, config,
                   double_buffered ? BufferingMode::Double : BufferingMode::Single);

  LayerResult r = analytic;
  r.total_cycles = tl.total_cycles;
  r.dram_cycles = tl.dma_busy_cycles;
  r.timeline = std::move(tl.events);
  // Halo re-reads discovered by the tiler are real DRAM traffic the flat
  // analytic model does not see.
  r.counts.dram_words += plan.halo_reread_words;
  r.counts.gb_writes += plan.halo_reread_words;
  return r;
}

}  // namespace sqz::sim
