// DRAM interface model (paper §4.1.3): "the DRAM access time is approximated
// by using two numbers: latency and effective bandwidth ... 100 cycles and
// 16 GB/s", with double buffering hiding transfer time behind compute.
#pragma once

#include <cstdint>

#include "sim/config.h"

namespace sqz::sim {

class DramModel {
 public:
  explicit DramModel(const AcceleratorConfig& config)
      : latency_(config.dram_latency_cycles),
        bytes_per_cycle_(config.dram_bytes_per_cycle),
        data_bytes_(config.data_bytes) {}

  /// Pure transfer time for `words` data words (no latency term).
  std::int64_t transfer_cycles(std::int64_t words) const noexcept;

  /// Cycles a layer spends waiting on DRAM when its DMA traffic is double-
  /// buffered against `compute_cycles` of PE-array work: the transfers
  /// overlap compute, so the exposed time is the excess transfer time plus
  /// one access latency to prime the pipeline.
  std::int64_t exposed_cycles(std::int64_t words,
                              std::int64_t compute_cycles) const noexcept;

  int latency() const noexcept { return latency_; }

 private:
  int latency_;
  double bytes_per_cycle_;
  int data_bytes_;
};

}  // namespace sqz::sim
