#include "sim/counters.h"

#include "util/checked.h"
#include "util/json.h"

namespace sqz::sim {

void counts_to_json(const AccessCounts& counts, util::JsonWriter& w) {
  w.member("mac_ops", counts.mac_ops);
  w.member("rf_reads", counts.rf_reads);
  w.member("rf_writes", counts.rf_writes);
  w.member("inter_pe", counts.inter_pe);
  w.member("acc_reads", counts.acc_reads);
  w.member("acc_writes", counts.acc_writes);
  w.member("gb_reads", counts.gb_reads);
  w.member("gb_writes", counts.gb_writes);
  w.member("dram_words", counts.dram_words);
}

AccessCounts& AccessCounts::operator+=(const AccessCounts& o) {
  using util::checked_add;
  mac_ops = checked_add(mac_ops, o.mac_ops, "AccessCounts: mac_ops");
  rf_reads = checked_add(rf_reads, o.rf_reads, "AccessCounts: rf_reads");
  rf_writes = checked_add(rf_writes, o.rf_writes, "AccessCounts: rf_writes");
  inter_pe = checked_add(inter_pe, o.inter_pe, "AccessCounts: inter_pe");
  acc_reads = checked_add(acc_reads, o.acc_reads, "AccessCounts: acc_reads");
  acc_writes = checked_add(acc_writes, o.acc_writes, "AccessCounts: acc_writes");
  gb_reads = checked_add(gb_reads, o.gb_reads, "AccessCounts: gb_reads");
  gb_writes = checked_add(gb_writes, o.gb_writes, "AccessCounts: gb_writes");
  dram_words = checked_add(dram_words, o.dram_words, "AccessCounts: dram_words");
  return *this;
}

std::int64_t NetworkResult::total_cycles() const {
  std::int64_t total = 0;
  for (const LayerResult& l : layers)
    total = util::checked_add(total, l.total_cycles,
                              "NetworkResult: total_cycles");
  return total;
}

std::int64_t NetworkResult::total_useful_macs() const {
  std::int64_t total = 0;
  for (const LayerResult& l : layers)
    total = util::checked_add(total, l.useful_macs,
                              "NetworkResult: total_useful_macs");
  return total;
}

AccessCounts NetworkResult::total_counts() const {
  AccessCounts total;
  for (const LayerResult& l : layers) total += l.counts;
  return total;
}

double NetworkResult::utilization() const {
  const std::int64_t cycles = total_cycles();
  if (cycles <= 0) return 0.0;
  return static_cast<double>(total_useful_macs()) /
         (static_cast<double>(cycles) * config.pe_count());
}

double NetworkResult::latency_ms(double clock_ghz) const {
  return static_cast<double>(total_cycles()) / (clock_ghz * 1e6);
}

}  // namespace sqz::sim
