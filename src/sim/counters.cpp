#include "sim/counters.h"

namespace sqz::sim {

AccessCounts& AccessCounts::operator+=(const AccessCounts& o) noexcept {
  mac_ops += o.mac_ops;
  rf_reads += o.rf_reads;
  rf_writes += o.rf_writes;
  inter_pe += o.inter_pe;
  acc_reads += o.acc_reads;
  acc_writes += o.acc_writes;
  gb_reads += o.gb_reads;
  gb_writes += o.gb_writes;
  dram_words += o.dram_words;
  return *this;
}

std::int64_t NetworkResult::total_cycles() const noexcept {
  std::int64_t total = 0;
  for (const LayerResult& l : layers) total += l.total_cycles;
  return total;
}

std::int64_t NetworkResult::total_useful_macs() const noexcept {
  std::int64_t total = 0;
  for (const LayerResult& l : layers) total += l.useful_macs;
  return total;
}

AccessCounts NetworkResult::total_counts() const noexcept {
  AccessCounts total;
  for (const LayerResult& l : layers) total += l.counts;
  return total;
}

double NetworkResult::utilization() const noexcept {
  const std::int64_t cycles = total_cycles();
  if (cycles <= 0) return 0.0;
  return static_cast<double>(total_useful_macs()) /
         (static_cast<double>(cycles) * config.pe_count());
}

double NetworkResult::latency_ms(double clock_ghz) const noexcept {
  return static_cast<double>(total_cycles()) / (clock_ghz * 1e6);
}

}  // namespace sqz::sim
