#include "sim/tiling.h"

#include <algorithm>
#include <stdexcept>

#include "sim/timeline.h"

namespace sqz::sim {

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

}  // namespace

int LayerDmaFacts::clamp_bands(int requested) const noexcept {
  const std::int64_t lo = std::max<std::int64_t>(1, capacity_min_bands);
  return static_cast<int>(
      std::min<std::int64_t>(rows, std::max<std::int64_t>(lo, requested)));
}

LayerDmaFacts analyze_layer_dma(const nn::Model& model, int layer_idx,
                                const AcceleratorConfig& config,
                                TensorPlacement placement) {
  const nn::Layer& l = model.layer(layer_idx);
  LayerDmaFacts d;

  const std::int64_t weight_words = l.params();
  std::int64_t in_words = 0;
  for (int in : l.inputs)
    in_words += model.layer(in).out_shape.elems() * config.batch;
  const std::int64_t out_words =
      (placement.output_words_override >= 0 ? placement.output_words_override
                                            : l.out_shape.elems()) *
      config.batch;

  d.input_streams = !placement.input_in_gb;
  d.dma_in_total = weight_words + (d.input_streams ? in_words : 0);
  d.dma_out_total = placement.output_in_gb ? 0 : out_words;
  d.streamed_act_words = (d.input_streams ? in_words : 0) + d.dma_out_total;

  const int oh = l.out_shape.h;
  d.rows = oh > 1 ? oh : std::max(1, l.out_shape.c);
  if (l.is_conv() && oh > 1) d.halo_rows = std::max(0, l.conv.kh - l.conv.stride);
  const std::int64_t in_rows = l.in_shape.h;
  d.in_row_words = in_rows > 0 ? in_words / in_rows : 0;

  // Capacity constraint: two bands in flight must fit the activation region.
  const std::int64_t activation_words =
      config.gb_capacity_words() - config.weight_reserve_words;
  const std::int64_t band_budget = std::max<std::int64_t>(1, activation_words / 2);
  if (d.streamed_act_words > band_budget)
    d.capacity_min_bands = ceil_div(d.streamed_act_words, band_budget);
  return d;
}

namespace {

TilePlan build_plan(const LayerDmaFacts& d, std::int64_t compute_cycles,
                    int bands) {
  TilePlan plan;
  if (bands <= 1) {
    plan.tiles.push_back(
        TileJob{d.dma_in_total, compute_cycles, d.dma_out_total});
    return plan;
  }
  // Halo re-reads only when a spatial row split streams its input.
  plan.halo_reread_words = d.halo_words(bands);
  const std::int64_t dma_in_with_halo = d.dma_in_total + plan.halo_reread_words;
  for (int b = 0; b < bands; ++b) {
    const auto share = [&](std::int64_t total) {
      return total / bands + (b < total % bands ? 1 : 0);
    };
    plan.tiles.push_back(TileJob{share(dma_in_with_halo), share(compute_cycles),
                                 share(d.dma_out_total)});
  }
  return plan;
}

}  // namespace

std::int64_t TilePlan::total_compute() const noexcept {
  std::int64_t total = 0;
  for (const TileJob& t : tiles) total += t.compute_cycles;
  return total;
}

std::int64_t TilePlan::total_dma_words() const noexcept {
  std::int64_t total = 0;
  for (const TileJob& t : tiles) total += t.dma_in_words + t.dma_out_words;
  return total;
}

TilePlan plan_layer_tiles_with_bands(const nn::Model& model, int layer_idx,
                                     const AcceleratorConfig& config,
                                     TensorPlacement placement,
                                     std::int64_t compute_cycles, int bands) {
  const nn::Layer& l = model.layer(layer_idx);
  if (l.kind == nn::LayerKind::Input)
    throw std::invalid_argument("plan_layer_tiles: input layer has no execution");
  const LayerDmaFacts d = analyze_layer_dma(model, layer_idx, config, placement);
  return build_plan(d, compute_cycles, d.clamp_bands(bands));
}

TilePlan plan_layer_tiles(const nn::Model& model, int layer_idx,
                          const AcceleratorConfig& config,
                          TensorPlacement placement,
                          std::int64_t compute_cycles) {
  // Streaming default: pipeline in up to kStreamBands chunks — operands
  // stream *while* the array computes, they do not all arrive up front.
  constexpr int kStreamBands = 8;
  return plan_layer_tiles_with_bands(model, layer_idx, config, placement,
                                     compute_cycles, kStreamBands);
}

TileSearchResult search_layer_tiles(const nn::Model& model, int layer_idx,
                                    const AcceleratorConfig& config,
                                    TensorPlacement placement,
                                    std::int64_t compute_cycles) {
  const nn::Layer& l = model.layer(layer_idx);
  if (l.kind == nn::LayerKind::Input)
    throw std::invalid_argument("search_layer_tiles: input layer has no execution");
  const LayerDmaFacts d = analyze_layer_dma(model, layer_idx, config, placement);

  TileSearchResult best;
  bool first = true;
  for (int candidate : {1, 2, 4, 8, 16, 32, 64}) {
    const int bands = d.clamp_bands(candidate);
    TilePlan plan = build_plan(d, compute_cycles, bands);
    const TimelineResult tl =
        run_timeline(plan.tiles, config, BufferingMode::Double);
    if (first || tl.total_cycles < best.makespan_cycles) {
      best.plan = std::move(plan);
      best.bands = bands;
      best.makespan_cycles = tl.total_cycles;
      first = false;
    }
  }
  return best;
}

}  // namespace sqz::sim
