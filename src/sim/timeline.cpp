#include "sim/timeline.h"

#include <algorithm>
#include <sstream>

#include "sim/dram.h"
#include "util/strings.h"

namespace sqz::sim {

std::string TimelineResult::trace() const {
  std::vector<TimelineEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TimelineEvent& a, const TimelineEvent& b) {
                     return a.start < b.start;
                   });
  std::ostringstream out;
  for (const TimelineEvent& e : sorted) {
    out << util::format("[%8lld .. %8lld] %-7s tile %-3d %s\n",
                        static_cast<long long>(e.start),
                        static_cast<long long>(e.end),
                        e.engine == TimelineEvent::Engine::Dma ? "dma" : "compute",
                        e.tile, e.what.c_str());
  }
  return out.str();
}

TimelineResult run_timeline(const std::vector<TileJob>& tiles,
                            const AcceleratorConfig& config, BufferingMode mode) {
  const DramModel dram(config);
  TimelineResult r;

  const std::size_t n = tiles.size();
  std::int64_t dma_free = 0;
  std::int64_t compute_free = 0;
  std::vector<std::int64_t> load_end(n, 0), compute_end(n, 0);
  std::int64_t last_end = 0;

  const auto emit = [&](TimelineEvent::Engine engine, int tile,
                        std::int64_t start, std::int64_t end, const char* what) {
    if (end > start)
      r.events.push_back(TimelineEvent{engine, tile, start, end, what});
    last_end = std::max(last_end, end);
  };

  const auto schedule_load = [&](std::size_t i, std::int64_t buffer_ready) {
    const TileJob& t = tiles[i];
    if (t.dma_in_words == 0) {
      load_end[i] = std::max(dma_free, buffer_ready);
      return;
    }
    const std::int64_t start = std::max(dma_free, buffer_ready);
    load_end[i] = start + config.dram_latency_cycles +
                  dram.transfer_cycles(t.dma_in_words);
    emit(TimelineEvent::Engine::Dma, static_cast<int>(i), start, load_end[i],
         "load");
    r.dma_busy_cycles += load_end[i] - start;
    dma_free = load_end[i];
  };

  if (n > 0) schedule_load(0, 0);  // initial prefetch

  for (std::size_t i = 0; i < n; ++i) {
    const TileJob& t = tiles[i];

    // Compute tile i once its operands are staged and the array is free.
    const std::int64_t cstart = std::max(compute_free, load_end[i]);
    compute_end[i] = cstart + t.compute_cycles;
    emit(TimelineEvent::Engine::Compute, static_cast<int>(i), cstart,
         compute_end[i], "compute");
    r.compute_busy_cycles += t.compute_cycles;
    compute_free = compute_end[i];

    // Prefetch tile i+1 while tile i computes. With two staging buffers,
    // tile i+1 reuses the buffer of tile i-1 and must wait for that compute;
    // with a single buffer it must wait for tile i's compute itself (no
    // overlap — the paper's double-buffering claim ablated away).
    if (i + 1 < n) {
      const std::int64_t buffer_ready =
          mode == BufferingMode::Double
              ? (i >= 1 ? compute_end[i - 1] : 0)
              : compute_end[i];
      schedule_load(i + 1, buffer_ready);
    }

    // Drain tile i's outputs from the GB once the compute finishes; the
    // store shares the DMA engine with subsequent prefetches.
    if (t.dma_out_words > 0) {
      const std::int64_t start = std::max(dma_free, compute_end[i]);
      const std::int64_t end = start + dram.transfer_cycles(t.dma_out_words);
      emit(TimelineEvent::Engine::Dma, static_cast<int>(i), start, end, "store");
      r.dma_busy_cycles += end - start;
      dma_free = end;
    }
  }

  r.total_cycles = last_end;
  return r;
}

}  // namespace sqz::sim
