// Event-driven tile timeline: the DMA engine and the PE array as two
// resources, with single- or double-buffered operand staging.
//
// The paper: "In order to hide the data transfer time between the DRAM and
// the global buffer, we used double buffering [13]." With double buffering
// the DMA prefetches tile i+1's operands while tile i computes, and drains
// tile i-1's outputs; with a single buffer every tile is load -> compute ->
// store, fully serialized. The timeline also records an event trace that
// tests and the buffering ablation inspect.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/counters.h"  // TimelineEvent
#include "sim/tiling.h"

namespace sqz::sim {

enum class BufferingMode { Single, Double };

struct TimelineResult {
  std::int64_t total_cycles = 0;
  std::int64_t dma_busy_cycles = 0;
  std::int64_t compute_busy_cycles = 0;
  std::vector<TimelineEvent> events;

  /// Fraction of total time the PE array was computing.
  double compute_occupancy() const noexcept {
    if (total_cycles <= 0) return 0.0;
    return static_cast<double>(compute_busy_cycles) /
           static_cast<double>(total_cycles);
  }

  /// Human-readable trace dump (one line per event, time-ordered).
  std::string trace() const;
};

/// Simulate the tile jobs through the two engines. Each tile's load incurs
/// the DRAM access latency once; loads/stores occupy the (single) DMA engine
/// at the configured bandwidth; computes occupy the PE array. In Double
/// mode the load of tile i+1 may start as soon as the DMA engine is free and
/// tile i's compute has begun (two staging buffers); in Single mode a
/// tile's load waits for the previous tile's store to finish.
TimelineResult run_timeline(const std::vector<TileJob>& tiles,
                            const AcceleratorConfig& config, BufferingMode mode);

}  // namespace sqz::sim
