#include "sim/sparsity.h"

#include <cmath>
#include <stdexcept>

namespace sqz::sim {

namespace {

std::int64_t layer_weight_words(const nn::Layer& layer) {
  if (layer.is_conv()) {
    return static_cast<std::int64_t>(layer.conv.out_channels) *
           (layer.in_shape.c / layer.conv.groups) * layer.conv.kh * layer.conv.kw;
  }
  if (layer.is_fc())
    return layer.in_shape.elems() * layer.fc.out_features;
  return 0;
}

int layer_taps(const nn::Layer& layer) {
  if (layer.is_conv()) return layer.conv.kh * layer.conv.kw;
  if (layer.is_fc()) return 1;
  return 0;
}

}  // namespace

SparsityInfo SparsityInfo::expected(const nn::Layer& layer, double sparsity) {
  if (sparsity < 0.0 || sparsity >= 1.0)
    throw std::invalid_argument("SparsityInfo: sparsity must be in [0,1)");
  SparsityInfo s;
  s.taps_ = layer_taps(layer);
  s.expected_plane_nnz_ = s.taps_ * (1.0 - sparsity);
  s.total_words_ = layer_weight_words(layer);
  s.total_nnz_ = static_cast<std::int64_t>(
      std::llround(static_cast<double>(s.total_words_) * (1.0 - sparsity)));
  return s;
}

SparsityInfo SparsityInfo::measured(const runtime::WeightTensor& weights) {
  SparsityInfo s;
  s.exact_ = &weights;
  s.taps_ = weights.kh() * weights.kw();
  s.total_words_ = weights.size();
  s.total_nnz_ = weights.nonzero_count();
  return s;
}

SparsityInfo SparsityInfo::dense(const nn::Layer& layer) {
  return expected(layer, 0.0);
}

std::int64_t SparsityInfo::nnz_chunk(int oc0, int count, int ic) const {
  if (exact_ != nullptr) {
    std::int64_t nnz = 0;
    for (int oc = oc0; oc < oc0 + count; ++oc) nnz += exact_->nonzero_count(oc, ic);
    return nnz;
  }
  (void)ic;  // expected mode is uniform over input channels
  return static_cast<std::int64_t>(std::llround(expected_plane_nnz_ * count));
}

}  // namespace sqz::sim
