#include "sim/schedule.h"

#include <stdexcept>

namespace sqz::sim {

WsSchedule WsSchedule::plan(const nn::Layer& layer, const AcceleratorConfig& config) {
  WsSchedule s;
  if (layer.is_conv()) {
    s.groups = layer.conv.groups;
    s.cin_pg = layer.in_shape.c / layer.conv.groups;
    s.cout_pg = layer.conv.out_channels / layer.conv.groups;
    s.kh = layer.conv.kh;
    s.kw = layer.conv.kw;
    s.stride = layer.conv.stride;
    s.pad_h = layer.conv.pad_h;
    s.pad_w = layer.conv.pad_w;
    s.oh = layer.out_shape.h;
    s.ow = layer.out_shape.w;
  } else if (layer.is_fc()) {
    s.is_fc = true;
    s.cin_pg = static_cast<int>(layer.in_shape.elems());
    s.cout_pg = layer.fc.out_features;
  } else {
    throw std::invalid_argument("WsSchedule: layer has no MACs: " + layer.name);
  }

  const int n = config.array_n;
  // Batched inference streams every image's pixels through each stationary
  // weight block — the weight-reuse win of batching.
  s.pixels = static_cast<std::int64_t>(s.oh) * s.ow * config.batch;
  s.stream_penalty = std::min(s.stride, 2);
  s.pixel_chunk = std::max<std::int64_t>(1, config.psum_accum_words / n);

  const bool pack = s.cin_pg <= n / 2 && s.kw > 1;
  s.tap_pack = pack ? std::min({s.kw, n / s.cin_pg, kWsMaxTapPack}) : 1;
  s.cin_blocks = s.tap_pack > 1
                     ? 1
                     : static_cast<int>(ceil_div_i64(s.cin_pg, n));
  s.cout_blocks = static_cast<int>(ceil_div_i64(s.cout_pg, n));
  return s;
}

OsSchedule OsSchedule::plan(const nn::Layer& layer, const AcceleratorConfig& config) {
  if (!layer.is_conv())
    throw std::invalid_argument(
        "OsSchedule: only convolution layers map OS: " + layer.name);
  OsSchedule s;
  s.groups = layer.conv.groups;
  s.cin_pg = layer.in_shape.c / layer.conv.groups;
  s.cout_pg = layer.conv.out_channels / layer.conv.groups;
  s.kh = layer.conv.kh;
  s.kw = layer.conv.kw;
  s.stride = layer.conv.stride;
  s.pad_h = layer.conv.pad_h;
  s.pad_w = layer.conv.pad_w;
  s.oh = layer.out_shape.h;
  s.ow = layer.out_shape.w;
  s.tiles_y = static_cast<int>(ceil_div_i64(s.oh, config.array_n));
  s.tiles_x = static_cast<int>(ceil_div_i64(s.ow, config.array_n));
  s.loads_overlap_compute = (s.kh == 1 && s.kw == 1);
  return s;
}

}  // namespace sqz::sim
