#include "sim/layer_sim.h"

#include <algorithm>
#include <stdexcept>

#include "sim/dram.h"
#include "sim/mappers.h"

namespace sqz::sim {

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

/// Elementwise-op count of a non-MAC layer on the 1-D SIMD unit.
std::int64_t simd_ops(const nn::Layer& l) {
  switch (l.kind) {
    case nn::LayerKind::MaxPool:
    case nn::LayerKind::AvgPool:
      return l.out_shape.elems() * l.pool.kh * l.pool.kw;
    case nn::LayerKind::GlobalAvgPool:
      return l.in_shape.elems();
    case nn::LayerKind::ReLU:
      return l.in_shape.elems();
    case nn::LayerKind::Add:
      return l.in_shape.elems() * 2;
    case nn::LayerKind::Concat:
      return 0;  // an addressing view inside the global buffer
    default:
      return 0;
  }
}

std::int64_t simd_input_reads(const nn::Layer& l) {
  switch (l.kind) {
    case nn::LayerKind::MaxPool:
    case nn::LayerKind::AvgPool:
      return l.out_shape.elems() * l.pool.kh * l.pool.kw;
    case nn::LayerKind::GlobalAvgPool:
    case nn::LayerKind::ReLU:
      return l.in_shape.elems();
    case nn::LayerKind::Add:
      return l.in_shape.elems() * 2;
    case nn::LayerKind::Concat:
      return 0;
    default:
      return 0;
  }
}

std::int64_t input_words_total(const nn::Model& model, const nn::Layer& l) {
  std::int64_t words = 0;
  for (int in : l.inputs) words += model.layer(in).out_shape.elems();
  return words;
}

}  // namespace

Dataflow effective_dataflow(const nn::Layer& layer, const AcceleratorConfig& config,
                            Dataflow requested) {
  if (layer.is_fc()) return Dataflow::WeightStationary;
  switch (config.support) {
    case DataflowSupport::WsOnly: return Dataflow::WeightStationary;
    case DataflowSupport::OsOnly: return Dataflow::OutputStationary;
    case DataflowSupport::Hybrid: return requested;
  }
  return requested;
}

LayerResult simd_layer_pre_dram(const nn::Model& model, int layer_idx,
                                const AcceleratorConfig& config) {
  const nn::Layer& l = model.layer(layer_idx);
  const int batch = config.batch;
  LayerResult r;
  r.layer_idx = layer_idx;
  r.layer_name = l.name;
  r.useful_macs = l.macs() * batch;
  r.on_pe_array = false;
  r.compute_cycles = ceil_div(simd_ops(l) * batch, config.simd_lanes);
  r.counts.gb_reads = simd_input_reads(l) * batch;
  r.counts.gb_writes =
      l.kind == nn::LayerKind::Concat ? 0 : l.out_shape.elems() * batch;
  return r;
}

LayerResult simulate_layer(const nn::Model& model, int layer_idx,
                           const AcceleratorConfig& config, Dataflow dataflow,
                           const SparsityInfo& sparsity, TensorPlacement placement) {
  const nn::Layer& l = model.layer(layer_idx);
  if (l.kind == nn::LayerKind::Input)
    throw std::invalid_argument("simulate_layer: cannot simulate the input layer");

  const int batch = config.batch;
  LayerResult r;
  if (l.is_macs_layer()) {
    r.layer_idx = layer_idx;
    r.layer_name = l.name;
    r.useful_macs = l.macs() * batch;
    r.on_pe_array = true;
    r.dataflow = effective_dataflow(l, config, dataflow);
    if (r.dataflow == Dataflow::WeightStationary) {
      // The WS schedule streams all batch images through each stationary
      // weight block (WsSchedule::plan folds batch into the pixel count).
      const MappingResult m = map_weight_stationary(l, config);
      r.compute_cycles = m.compute_cycles;
      r.counts = m.counts;
    } else {
      // The OS schedule repeats identically per image.
      const MappingResult m = map_output_stationary(l, config, sparsity);
      r.compute_cycles = m.compute_cycles * batch;
      r.counts = m.counts;
      r.counts.mac_ops *= batch;
      r.counts.rf_reads *= batch;
      r.counts.rf_writes *= batch;
      r.counts.inter_pe *= batch;
      r.counts.acc_reads *= batch;
      r.counts.acc_writes *= batch;
      r.counts.gb_reads *= batch;
      r.counts.gb_writes *= batch;
    }
  } else {
    r = simd_layer_pre_dram(model, layer_idx, config);
  }
  return finish_layer_result(model, layer_idx, config, std::move(r), placement);
}

LayerResult finish_layer_result(const nn::Model& model, int layer_idx,
                                const AcceleratorConfig& config, LayerResult r,
                                TensorPlacement placement) {
  const nn::Layer& l = model.layer(layer_idx);
  const int batch = config.batch;
  const std::int64_t weight_words = l.is_macs_layer() ? l.params() : 0;

  // The stored output may be smaller than the computed tensor (drain-side
  // pooling fusion: only the pooled result reaches the GB / DRAM).
  const std::int64_t stored_out_words =
      (placement.output_words_override >= 0 ? placement.output_words_override
                                            : l.out_shape.elems()) *
      batch;
  if (placement.output_words_override >= 0 && l.is_macs_layer()) {
    // The fused drain writes the reduced tensor instead of the full one.
    r.counts.gb_writes -= l.out_shape.elems() * batch;
    r.counts.gb_writes += stored_out_words;
  }

  // DRAM traffic. Weights cross DRAM once per batch (at batch 1 — the
  // paper's operating point — each weight is used exactly once per
  // inference); activations move per image when the residency plan spilled
  // them.
  std::int64_t dram_words = weight_words;
  if (!placement.input_in_gb) dram_words += input_words_total(model, l) * batch;
  if (!placement.output_in_gb) dram_words += stored_out_words;
  r.counts.dram_words = dram_words;
  // Everything DMA'd in lands in the GB; everything DMA'd out is read from it.
  r.counts.gb_writes +=
      weight_words +
      (placement.input_in_gb ? 0 : input_words_total(model, l) * batch);
  if (!placement.output_in_gb) r.counts.gb_reads += stored_out_words;

  const DramModel dram(config);
  r.dram_cycles = dram.transfer_cycles(dram_words);
  r.total_cycles = r.compute_cycles + dram.exposed_cycles(dram_words, r.compute_cycles);
  return r;
}

LayerResult simulate_layer(const nn::Model& model, int layer_idx,
                           const AcceleratorConfig& config, Dataflow dataflow,
                           TensorPlacement placement) {
  const nn::Layer& l = model.layer(layer_idx);
  const SparsityInfo sparsity =
      config.os_zero_skip && l.is_macs_layer()
          ? SparsityInfo::expected(l, config.weight_sparsity)
          : SparsityInfo::dense(l);
  return simulate_layer(model, layer_idx, config, dataflow, sparsity, placement);
}

}  // namespace sqz::sim
