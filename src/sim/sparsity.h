// Weight sparsity information consumed by the OS dataflow's zero-skip logic
// (paper §4.1.2: "the stream buffer broadcasts only non-zero weights").
//
// Two providers:
//  * Expected  — analytic expectation at the configured sparsity rate
//                (the paper's flat 40% model); fast, used by benches.
//  * Measured  — exact counts from a generated WeightTensor; used by the
//                functional-vs-analytical cross-validation tests.
#pragma once

#include <cstdint>

#include "nn/layer.h"
#include "runtime/tensor.h"

namespace sqz::sim {

class SparsityInfo {
 public:
  /// Expected-value provider at a flat zero-probability `sparsity`.
  static SparsityInfo expected(const nn::Layer& layer, double sparsity);
  /// Exact provider backed by real weights (not owned; must outlive this).
  static SparsityInfo measured(const runtime::WeightTensor& weights);
  /// Dense provider (no zeros): used when zero-skip is disabled.
  static SparsityInfo dense(const nn::Layer& layer);

  /// Non-zero taps of filter plane (oc within its group's global index,
  /// ic within group). For the expected provider this is fractional and
  /// accumulated exactly by nnz_chunk().
  /// Total non-zero weight words of the layer.
  std::int64_t total_nonzero() const noexcept { return total_nnz_; }
  std::int64_t total_weights() const noexcept { return total_words_; }

  /// Sum of non-zero taps over `count` consecutive output channels starting
  /// at global channel `oc0`, for in-group channel `ic`. This is the number
  /// of broadcast cycles the OS dataflow spends on that (chunk, ic) pass.
  std::int64_t nnz_chunk(int oc0, int count, int ic) const;

 private:
  SparsityInfo() = default;

  const runtime::WeightTensor* exact_ = nullptr;
  // Expected mode: nnz per (oc, ic) plane = taps * (1 - sparsity).
  double expected_plane_nnz_ = 0.0;
  int taps_ = 0;
  std::int64_t total_nnz_ = 0;
  std::int64_t total_words_ = 0;
};

}  // namespace sqz::sim
