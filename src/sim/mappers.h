// Analytical dataflow mappers: cycle counts and hierarchy access counts for
// executing one layer on the PE array under each dataflow.
//
// Both mappers mirror the operation sequences of paper §4.1.2 exactly; the
// functional emulators in src/sim/functional execute the same schedules
// operand-by-operand, and tests assert the two agree.
//
// Weight-stationary (WS) — TPU-like matrix-vector engine:
//   The N x N array holds an N x N block of the (input-channel x
//   output-channel) weight matrix for one filter tap. Input pixel vectors
//   stream in one column per cycle; each PE column reduces through an adder
//   chain. Partial sums accumulate in the global buffer across taps and
//   input-channel blocks. Idle rows/columns when channels < N are the WS
//   inefficiency for first/depthwise layers. No sparsity exploitation —
//   a zero weight still occupies its PE slot.
//
// Output-stationary (OS) — ShiDianNao-like output-tile engine:
//   The array holds an N x N spatial tile of outputs for `rf_entries`
//   output channels at once (inputs reused across filters; this is the
//   paper's register-file tune-up lever). Per input channel the input block
//   is injected through the mesh (serial with compute — the mesh is busy
//   shifting during MACs), then one weight broadcast per cycle, skipping
//   zero weights. Results drain to the global buffer after the tile
//   finishes, serial with compute ("this final step takes additional
//   processing time"). Small late-layer feature maps strand most of the
//   array — the OS inefficiency the paper calls out.
#pragma once

#include "nn/layer.h"
#include "sim/config.h"
#include "sim/counters.h"
#include "sim/sparsity.h"

namespace sqz::sim {

/// Cycle/access estimate for one layer on the PE array (no DRAM terms; the
/// layer simulator adds those).
struct MappingResult {
  std::int64_t compute_cycles = 0;
  AccessCounts counts;  ///< dram_words stays 0 here.
};

/// Map a Conv or FullyConnected layer with the WS dataflow. FC layers are
/// the degenerate 1-pixel case (the natural matrix-vector form).
MappingResult map_weight_stationary(const nn::Layer& layer,
                                    const AcceleratorConfig& config);

/// Map a Conv layer with the OS dataflow. FC layers are rejected
/// (std::invalid_argument): output-stationary mapping degenerates at one
/// output pixel, so the simulator always runs FC weight-stationary — on the
/// Squeezelerator *and* on both reference designs (the paper: FC layers
/// "cannot take advantage of hardware acceleration by either dataflow").
MappingResult map_output_stationary(const nn::Layer& layer,
                                    const AcceleratorConfig& config,
                                    const SparsityInfo& sparsity);

}  // namespace sqz::sim
