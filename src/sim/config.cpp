#include "sim/config.h"

#include <stdexcept>

#include "util/strings.h"

namespace sqz::sim {

const char* dataflow_name(Dataflow df) noexcept {
  switch (df) {
    case Dataflow::WeightStationary: return "weight-stationary";
    case Dataflow::OutputStationary: return "output-stationary";
  }
  return "?";
}

const char* dataflow_abbrev(Dataflow df) noexcept {
  switch (df) {
    case Dataflow::WeightStationary: return "WS";
    case Dataflow::OutputStationary: return "OS";
  }
  return "?";
}

void AcceleratorConfig::validate() const {
  if (array_n < 1 || array_n > 1024)
    throw std::invalid_argument("AcceleratorConfig: array_n out of range");
  if (rf_entries < 1)
    throw std::invalid_argument("AcceleratorConfig: rf_entries must be >= 1");
  if (gb_kib < 1) throw std::invalid_argument("AcceleratorConfig: gb_kib must be >= 1");
  if (preload_width < 1 || drain_width < 1 || simd_lanes < 1)
    throw std::invalid_argument("AcceleratorConfig: bus widths must be >= 1");
  if (dram_latency_cycles < 0)
    throw std::invalid_argument("AcceleratorConfig: negative DRAM latency");
  if (dram_bytes_per_cycle <= 0.0)
    throw std::invalid_argument("AcceleratorConfig: DRAM bandwidth must be positive");
  if (batch < 1)
    throw std::invalid_argument("AcceleratorConfig: batch must be >= 1");
  if (data_bytes != 1 && data_bytes != 2 && data_bytes != 4)
    throw std::invalid_argument("AcceleratorConfig: data_bytes must be 1, 2 or 4");
  if (weight_sparsity < 0.0 || weight_sparsity >= 1.0)
    throw std::invalid_argument("AcceleratorConfig: sparsity must be in [0,1)");
  if (psum_accum_words < array_n)
    throw std::invalid_argument(
        "AcceleratorConfig: psum accumulator must hold one column row");
  if (weight_reserve_words < 0 || weight_reserve_words >= gb_capacity_words())
    throw std::invalid_argument(
        "AcceleratorConfig: weight reserve must fit inside the global buffer");
}

std::string AcceleratorConfig::to_string() const {
  const char* support_str = support == DataflowSupport::Hybrid  ? "hybrid"
                            : support == DataflowSupport::WsOnly ? "WS-only"
                                                                 : "OS-only";
  return util::format(
      "%dx%d PEs, RF %d, GB %d KiB, %s dataflow, DRAM %.1f B/cyc lat %d, sparsity %.0f%%",
      array_n, array_n, rf_entries, gb_kib, support_str, dram_bytes_per_cycle,
      dram_latency_cycles, weight_sparsity * 100.0);
}

AcceleratorConfig AcceleratorConfig::squeezelerator() { return AcceleratorConfig{}; }

AcceleratorConfig AcceleratorConfig::squeezelerator_rf8() {
  AcceleratorConfig c;
  c.rf_entries = 8;
  return c;
}

AcceleratorConfig AcceleratorConfig::reference_ws() {
  AcceleratorConfig c;
  c.support = DataflowSupport::WsOnly;
  c.ws_psums_in_gb = true;  // reference design lacks the psum accumulator
  return c;
}

AcceleratorConfig AcceleratorConfig::reference_os() {
  AcceleratorConfig c;
  c.support = DataflowSupport::OsOnly;
  return c;
}

}  // namespace sqz::sim
