// Layer tiling: split one layer's execution into tile jobs whose working
// sets fit the global buffer's activation region.
//
// The paper: "If the memory footprint of the layer exceeds the capacity of
// the buffer, some of the six convolution loops are tiled. The size of the
// tile and the order of loops that give the shortest execution time are
// selected." We tile the output-row loop (the natural streaming order for
// both dataflows): each tile covers a band of output rows, reads the
// corresponding input rows (plus filter halo — counted as re-read traffic
// where bands overlap) and its share of the weights, computes, and writes
// its band of outputs. The resulting job list feeds the double-buffered
// timeline (sim/timeline.h).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/model.h"
#include "sim/config.h"
#include "sim/layer_sim.h"

namespace sqz::sim {

/// One tile of a layer's execution: DMA-in bytes, compute, DMA-out bytes.
struct TileJob {
  std::int64_t dma_in_words = 0;   ///< Inputs + weights arriving before/while computing.
  std::int64_t compute_cycles = 0;
  std::int64_t dma_out_words = 0;  ///< Outputs leaving after computing.
};

struct TilePlan {
  std::vector<TileJob> tiles;
  /// Input words read more than once because adjacent bands share a halo.
  std::int64_t halo_reread_words = 0;

  std::int64_t total_compute() const noexcept;
  std::int64_t total_dma_words() const noexcept;
};

/// Per-layer DMA/geometry facts the row-band planners derive from a
/// placement: total in/out DMA words, the row axis the bands split, the
/// filter halo re-read per extra band, and the capacity-forced minimum band
/// count. Public so the analytical estimator (src/est) can model the tile
/// timeline in closed form from exactly the geometry the planner uses.
struct LayerDmaFacts {
  std::int64_t dma_in_total = 0;   ///< Weights + streamed input words.
  std::int64_t dma_out_total = 0;  ///< Stored output words unless GB-resident.
  std::int64_t streamed_act_words = 0;
  std::int64_t rows = 1;           ///< Output rows (or channels for 1x1-spatial).
  std::int64_t halo_rows = 0;
  std::int64_t in_row_words = 0;
  bool input_streams = false;
  std::int64_t capacity_min_bands = 1;

  /// Input words re-read because adjacent bands share a filter halo.
  std::int64_t halo_words(int bands) const noexcept {
    if (bands <= 1 || !input_streams) return 0;
    return static_cast<std::int64_t>(bands - 1) * halo_rows * in_row_words;
  }
  /// The band count the planners actually use for a request of `requested`
  /// (raised to the capacity minimum, clamped to the row count).
  int clamp_bands(int requested) const noexcept;
};

LayerDmaFacts analyze_layer_dma(const nn::Model& model, int layer_idx,
                                const AcceleratorConfig& config,
                                TensorPlacement placement);

/// Split layer `layer_idx` into row-band tiles for the given placement.
/// `compute_cycles` is the layer's total PE-array (or SIMD) busy time from
/// the dataflow mapper; it is apportioned to tiles by output rows.
///
/// Tensors already resident in the GB contribute no DMA; weights always
/// stream (batch 1). A layer whose working set fits entirely produces a
/// single tile. The band count is a fixed streaming heuristic
/// (min(rows, 8), more if capacity forces it).
TilePlan plan_layer_tiles(const nn::Model& model, int layer_idx,
                          const AcceleratorConfig& config,
                          TensorPlacement placement,
                          std::int64_t compute_cycles);

/// As plan_layer_tiles, but with an explicit band count (clamped to the
/// layer's row count; raised to the capacity minimum).
TilePlan plan_layer_tiles_with_bands(const nn::Model& model, int layer_idx,
                                     const AcceleratorConfig& config,
                                     TensorPlacement placement,
                                     std::int64_t compute_cycles, int bands);

/// The paper: "The size of the tile and the order of loops that give the
/// shortest execution time are selected." Search band counts (1..64, plus
/// the capacity minimum) and return the plan whose double-buffered event
/// timeline has the smallest makespan. More bands overlap better but pay a
/// DRAM access latency and halo re-read per band — the search finds the
/// knee. Returns the chosen plan and its makespan.
struct TileSearchResult {
  TilePlan plan;
  int bands = 1;
  std::int64_t makespan_cycles = 0;
};
TileSearchResult search_layer_tiles(const nn::Model& model, int layer_idx,
                                    const AcceleratorConfig& config,
                                    TensorPlacement placement,
                                    std::int64_t compute_cycles);

}  // namespace sqz::sim
