// The sqzsim command-line driver, as a library function so it is unit
// testable; tools/sqzsim.cpp is a thin main() around run_cli().
//
//   sqzsim --model squeezenet10 [--array 32] [--rf 16] [--sparsity 0.4]
//          [--support hybrid|ws|os] [--objective cycles|energy]
//          [--config accel.ini] [--model-file net.txt]
//          [--per-layer] [--compare] [--timeline] [--csv]
//          [--json report.json] [--trace trace.json]
//          [--sweep KNOB=V1,V2,...] [--journal DIR] [--resume] [--progress]
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/model.h"

namespace sqz::core {

/// Run the CLI. Returns a process exit code (0 on success); all output goes
/// to `out` (reports) and `err` (usage / error messages).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

/// The usage text printed on --help or argument errors.
std::string cli_usage();

/// Look up a zoo network by its CLI name (alexnet, mobilenet, tinydarknet,
/// squeezenet10, squeezenet11, sqnxt/sqnxt23). Shared by the CLI and the
/// serving layer so both resolve names identically; throws
/// std::invalid_argument on an unknown name.
nn::Model zoo_model_by_name(const std::string& name);

}  // namespace sqz::core
