#include "core/trace.h"

#include <algorithm>
#include <functional>
#include <ostream>

#include "util/json.h"

namespace sqz::core {

namespace {

/// One complete ("X") event. Chrome timestamps are microseconds; we map one
/// cycle to one microsecond (see trace.h).
void emit_complete(util::JsonWriter& w, const char* cat, const std::string& name,
                   int tid, std::int64_t start, std::int64_t dur,
                   const std::function<void()>& args = nullptr) {
  w.begin_object();
  w.member("name", name);
  w.member("cat", cat);
  w.member("ph", "X");
  w.member("ts", start);
  w.member("dur", dur);
  w.member("pid", kTracePidSim);
  w.member("tid", tid);
  if (args) {
    w.key("args");
    w.begin_object();
    args();
    w.end_object();
  }
  w.end_object();
}

void emit_metadata(util::JsonWriter& w, const char* what, int tid,
                   const std::string& name) {
  w.begin_object();
  w.member("name", what);
  w.member("ph", "M");
  w.member("pid", kTracePidSim);
  w.member("tid", tid);
  w.key("args");
  w.begin_object();
  w.member("name", name);
  w.end_object();
  w.end_object();
}

}  // namespace

void write_chrome_trace(const nn::Model& model, const sim::NetworkResult& result,
                        std::ostream& out) {
  util::JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  w.member("displayTimeUnit", "ms");

  w.key("otherData");
  w.begin_object();
  w.member("generator", "sqzsim");
  w.member("model", result.model_name);
  w.member("config", result.config.to_string());
  w.member("time_unit", "1 trace us == 1 cycle (1 ns at 1 GHz)");
  w.member("total_cycles", result.total_cycles());
  w.end_object();

  w.key("traceEvents");
  w.begin_array();

  emit_metadata(w, "process_name", kTraceTidPeArray,
                "sqzsim: " + result.model_name);
  emit_metadata(w, "thread_name", kTraceTidPeArray, "PE array");
  emit_metadata(w, "thread_name", kTraceTidSimd, "SIMD unit");
  emit_metadata(w, "thread_name", kTraceTidDma, "DMA");

  std::int64_t t0 = 0;  // layers execute back-to-back
  for (const sim::LayerResult& l : result.layers) {
    if (l.total_cycles <= 0) continue;  // e.g. fused-away pools cost nothing
    const int engine_tid = l.on_pe_array ? kTraceTidPeArray : kTraceTidSimd;
    const std::string kind = nn::layer_kind_name(model.layer(l.layer_idx).kind);
    std::string label = l.layer_name;
    if (l.on_pe_array)
      label += std::string(" [") + sim::dataflow_abbrev(l.dataflow) + "]";

    emit_complete(w, "layer", label, engine_tid, t0, l.total_cycles, [&] {
      w.member("index", l.layer_idx);
      w.member("kind", kind);
      w.member("engine", l.on_pe_array ? "pe-array" : "simd");
      if (l.on_pe_array) w.member("dataflow", sim::dataflow_abbrev(l.dataflow));
      w.member("compute_cycles", l.compute_cycles);
      w.member("dram_cycles", l.dram_cycles);
      w.member("dram_words", l.counts.dram_words);
    });

    if (!l.timeline.empty()) {
      // Timeline-mode run: the retained tile events, shifted to the layer's
      // slot. DMA intervals go to the DMA track; computes nest in the span.
      for (const sim::TimelineEvent& e : l.timeline) {
        const bool dma = e.engine == sim::TimelineEvent::Engine::Dma;
        emit_complete(w, "tile", e.what, dma ? kTraceTidDma : engine_tid,
                      t0 + e.start, e.end - e.start, [&] {
                        w.member("tile", e.tile);
                        w.member("layer", l.layer_name);
                      });
      }
    } else {
      // Flat analytic model: total = max(compute, transfer) + latency. Show
      // the transfer start-aligned on the DMA track and the compute
      // end-aligned inside the layer span (ideal double buffering).
      const std::int64_t compute = std::min(l.compute_cycles, l.total_cycles);
      if (compute > 0)
        emit_complete(w, "phase", "compute", engine_tid,
                      t0 + l.total_cycles - compute, compute, [&] {
                        w.member("layer", l.layer_name);
                      });
      const std::int64_t dma = std::min(l.dram_cycles, l.total_cycles);
      if (dma > 0)
        emit_complete(w, "phase", "transfer", kTraceTidDma, t0, dma, [&] {
          w.member("layer", l.layer_name);
        });
    }
    t0 += l.total_cycles;
  }

  w.end_array();
  w.end_object();
  out << "\n";
}

}  // namespace sqz::core
