#include "core/validate.h"

#include <cstdint>

#include "util/strings.h"

namespace sqz::core {

namespace {

void issue(ValidationReport& report, std::string where, std::string what) {
  report.issues.push_back({std::move(where), std::move(what)});
}

void check_config(const sim::AcceleratorConfig& c, ValidationReport& report) {
  const auto config = [&](std::string what) {
    issue(report, "config", std::move(what));
  };
  if (c.array_n < 1 || c.array_n > 1024)
    config(util::format("array_n=%d out of range [1, 1024]", c.array_n));
  if (c.rf_entries < 1)
    config(util::format("rf_entries=%d must be >= 1", c.rf_entries));
  if (c.gb_kib < 1) config(util::format("gb_kib=%d must be >= 1", c.gb_kib));
  if (c.preload_width < 1 || c.drain_width < 1 || c.simd_lanes < 1)
    config(util::format(
        "bus widths must be >= 1 (preload=%d drain=%d simd=%d)",
        c.preload_width, c.drain_width, c.simd_lanes));
  if (c.dram_latency_cycles < 0)
    config(util::format("dram_latency_cycles=%d must be >= 0",
                        c.dram_latency_cycles));
  if (c.dram_bytes_per_cycle <= 0.0)
    config(util::format("dram_bytes_per_cycle=%.3f must be positive",
                        c.dram_bytes_per_cycle));
  if (c.batch < 1) config(util::format("batch=%d must be >= 1", c.batch));
  if (c.data_bytes != 1 && c.data_bytes != 2 && c.data_bytes != 4)
    config(util::format("data_bytes=%d must be 1, 2 or 4", c.data_bytes));
  if (c.weight_sparsity < 0.0 || c.weight_sparsity >= 1.0)
    config(util::format("weight_sparsity=%.3f must be in [0, 1)",
                        c.weight_sparsity));

  // Derived checks only make sense once the primitives are sane.
  if (c.array_n < 1 || c.gb_kib < 1 || c.data_bytes < 1) return;

  if (c.psum_accum_words < c.array_n)
    config(util::format(
        "psum_accum_words=%d cannot hold one WS column of %d partial sums; "
        "raise psum_accum_words or shrink array_n",
        c.psum_accum_words, c.array_n));
  if (c.weight_reserve_words < 0 ||
      c.weight_reserve_words >= c.gb_capacity_words())
    config(util::format(
        "weight_reserve_words=%d must fit inside the %d KiB global buffer "
        "(%lld words)",
        c.weight_reserve_words, c.gb_kib,
        static_cast<long long>(c.gb_capacity_words())));

  // RF / dataflow working set: WS streams weights through the reserve
  // region double-buffered, one N x N block at a time. A reserve smaller
  // than two blocks deadlocks the stream before the first drain.
  if (c.support != sim::DataflowSupport::OsOnly) {
    const std::int64_t block =
        2 * static_cast<std::int64_t>(c.array_n) * c.array_n;
    if (c.weight_reserve_words >= 0 && c.weight_reserve_words < block)
      config(util::format(
          "weight_reserve_words=%d cannot double-buffer one %dx%d WS weight "
          "block (%lld words); raise weight_reserve_words or shrink array_n",
          c.weight_reserve_words, c.array_n, c.array_n,
          static_cast<long long>(block)));
  }
}

void check_layers(const nn::Model& model, const sim::AcceleratorConfig& c,
                  ValidationReport& report) {
  // Activation region: what the tiler can actually use for input/output
  // bands once the streaming-weight reserve is carved out.
  const std::int64_t activation_words =
      c.gb_capacity_words() - std::max(c.weight_reserve_words, 0);

  for (int i = 0; i < model.layer_count(); ++i) {
    const nn::Layer& l = model.layer(i);
    const std::string where = "layer " + l.name;

    if (l.out_shape.c <= 0 || l.out_shape.h <= 0 || l.out_shape.w <= 0) {
      issue(report, where,
            util::format("non-positive output shape %dx%dx%d (stride or "
                         "kernel larger than the input?)",
                         l.out_shape.c, l.out_shape.h, l.out_shape.w));
      continue;  // derived checks below would divide by these dims
    }

    if (l.is_conv()) {
      const int padded_h = l.in_shape.h + 2 * l.conv.pad_h;
      const int padded_w = l.in_shape.w + 2 * l.conv.pad_w;
      if (l.conv.kh > padded_h || l.conv.kw > padded_w)
        issue(report, where,
              util::format("kernel %dx%d exceeds the padded input %dx%d; "
                           "shrink the kernel or add padding",
                           l.conv.kh, l.conv.kw, padded_h, padded_w));
      if (l.conv.stride < 1)
        issue(report, where,
              util::format("stride=%d must be >= 1", l.conv.stride));
    }
    if (l.kind == nn::LayerKind::MaxPool || l.kind == nn::LayerKind::AvgPool) {
      const int padded = l.in_shape.h + 2 * l.pool.pad;
      if (l.pool.kh > padded || l.pool.kw > l.in_shape.w + 2 * l.pool.pad)
        issue(report, where,
              util::format("pool window %dx%d exceeds the padded input",
                           l.pool.kh, l.pool.kw));
    }

    // Minimal tile: the tiler splits the output-row loop only, so at least
    // one output row — and the kh input rows feeding it — must fit the
    // activation region together.
    if (activation_words > 0 && l.is_macs_layer()) {
      std::int64_t min_words = 0;
      if (l.is_conv()) {
        const std::int64_t in_rows = std::min<std::int64_t>(
            std::max(l.conv.kh, 1), l.in_shape.h);
        min_words =
            in_rows * l.in_shape.w * l.in_shape.c +
            static_cast<std::int64_t>(l.out_shape.w) * l.out_shape.c;
      } else {  // FC: the full input vector plus the output vector
        min_words = l.in_shape.elems() + l.out_shape.elems();
      }
      if (min_words > activation_words)
        issue(report, where,
              util::format(
                  "minimal tile (%lld words) exceeds the global buffer's "
                  "activation region (%lld of %lld words after the weight "
                  "reserve); raise gb_kib or lower weight_reserve_words",
                  static_cast<long long>(min_words),
                  static_cast<long long>(activation_words),
                  static_cast<long long>(c.gb_capacity_words())));
    }
  }
}

}  // namespace

std::string ValidationReport::summary() const {
  std::string out;
  for (const ValidationIssue& i : issues) {
    if (!out.empty()) out += "; ";
    out += i.where + ": " + i.what;
  }
  return out;
}

ValidationReport validate_config(const sim::AcceleratorConfig& config) {
  ValidationReport report;
  check_config(config, report);
  return report;
}

ValidationReport validate_design(const nn::Model& model,
                                 const sim::AcceleratorConfig& config) {
  ValidationReport report = validate_config(config);
  check_layers(model, config, report);
  return report;
}

}  // namespace sqz::core
