#include "core/multicore.h"

#include <stdexcept>

namespace sqz::core {

double MulticoreResult::throughput_ips(double clock_ghz) const noexcept {
  const double seconds =
      static_cast<double>(makespan_cycles()) / (clock_ghz * 1e9);
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(total_batch) / seconds;
}

energy::EnergyBreakdown MulticoreResult::total_energy(
    const energy::UnitEnergies& units) const {
  energy::EnergyBreakdown per = energy::network_energy(per_core, units);
  // All cores execute the same per-core workload; idle-core slack from a
  // ragged batch split is already inside per_core (it ran ceil(B/C) images).
  energy::EnergyBreakdown total;
  for (int c = 0; c < cores; ++c) total += per;
  return total;
}

MulticoreResult simulate_multicore(const nn::Model& model,
                                   const sim::AcceleratorConfig& config,
                                   int cores, bool shared_dram,
                                   sched::Objective objective) {
  if (cores < 1)
    throw std::invalid_argument("simulate_multicore: cores must be >= 1");

  MulticoreResult r;
  r.cores = cores;
  r.total_batch = config.batch;
  r.per_core_batch = (config.batch + cores - 1) / cores;

  sim::AcceleratorConfig per_core = config;
  per_core.batch = r.per_core_batch;
  if (shared_dram)
    per_core.dram_bytes_per_cycle = config.dram_bytes_per_cycle / cores;
  per_core.validate();

  r.per_core = sched::simulate_network(model, per_core, objective);
  return r;
}

}  // namespace sqz::core
