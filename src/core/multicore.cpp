#include "core/multicore.h"

#include <stdexcept>

#include "util/threadpool.h"

namespace sqz::core {

double MulticoreResult::throughput_ips(double clock_ghz) const noexcept {
  const double seconds =
      static_cast<double>(makespan_cycles()) / (clock_ghz * 1e9);
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(total_batch) / seconds;
}

energy::EnergyBreakdown MulticoreResult::total_energy(
    const energy::UnitEnergies& units) const {
  // All cores execute the same per-core workload; idle-core slack from a
  // ragged batch split is already inside each core's run (ceil(B/C) images).
  // Summed in core index order so the total is reproducible bit for bit.
  energy::EnergyBreakdown total;
  for (const sim::NetworkResult& r : core_results)
    total += energy::network_energy(r, units);
  return total;
}

MulticoreResult simulate_multicore(const nn::Model& model,
                                   const sim::AcceleratorConfig& config,
                                   int cores, bool shared_dram,
                                   sched::Objective objective) {
  if (cores < 1)
    throw std::invalid_argument("simulate_multicore: cores must be >= 1");

  MulticoreResult r;
  r.cores = cores;
  r.total_batch = config.batch;
  r.per_core_batch = (config.batch + cores - 1) / cores;

  sim::AcceleratorConfig per_core = config;
  per_core.batch = r.per_core_batch;
  if (shared_dram)
    per_core.dram_bytes_per_cycle = config.dram_bytes_per_cycle / cores;
  per_core.validate();

  // One simulation task per core, fanned out across the evaluation pool.
  // Cores are identical today (uniform batch split), so every slot holds the
  // same result regardless of job count; the per-core structure is what a
  // future heterogeneous split will fill in.
  r.core_results.resize(static_cast<std::size_t>(cores));
  util::ThreadPool::global().parallel_for_index(
      r.core_results.size(), [&](std::size_t c) {
        r.core_results[c] = sched::simulate_network(model, per_core, objective);
      });
  r.per_core = r.core_results.front();
  return r;
}

}  // namespace sqz::core
