#include "core/advisor.h"

#include "nn/accuracy.h"
#include "sched/network_sim.h"

namespace sqz::core {

AdvisorResult select_network(const std::vector<nn::Model>& candidates,
                             const ApplicationConstraints& constraints,
                             const sim::AcceleratorConfig& config,
                             const energy::UnitEnergies& units) {
  AdvisorResult result;
  result.candidates.reserve(candidates.size());

  for (const nn::Model& m : candidates) {
    const sim::NetworkResult r =
        sched::simulate_network(m, config, sched::Objective::Cycles, units);
    CandidateEvaluation e;
    e.name = m.name();
    if (const auto acc = nn::published_accuracy(m.name())) {
      e.top1 = acc->top1;
      e.accuracy_known = true;
    }
    e.latency_ms = r.latency_ms();
    e.energy = energy::network_energy(r, units).total();
    e.feasible = e.latency_ms <= constraints.max_latency_ms &&
                 e.energy <= constraints.max_energy &&
                 (constraints.min_top1 <= 0.0 ||
                  (e.accuracy_known && e.top1 >= constraints.min_top1));
    result.candidates.push_back(std::move(e));
  }

  for (std::size_t i = 0; i < result.candidates.size(); ++i) {
    const CandidateEvaluation& e = result.candidates[i];
    if (!e.feasible) continue;
    if (!result.best.has_value()) {
      result.best = i;
      continue;
    }
    const CandidateEvaluation& cur = result.candidates[*result.best];
    // Most accurate feasible network; ties break toward lower energy.
    if (e.top1 > cur.top1 || (e.top1 == cur.top1 && e.energy < cur.energy))
      result.best = i;
  }
  return result;
}

}  // namespace sqz::core
