// Network selection under application constraints.
//
// The paper's Figure 4 closes with: "the SqueezeNext family provides such
// favorable solutions which allows the user to select the right DNN from
// this family based on the target application's constraints." This module
// is that selection step: evaluate a candidate family on a configuration,
// filter by the application's latency/energy/accuracy budget, and pick the
// most accurate feasible member (ties broken toward lower energy).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "energy/model.h"
#include "nn/model.h"
#include "sim/config.h"

namespace sqz::core {

/// An embedded application's budget (paper §2: "an embedded vision
/// application must guarantee a level of accuracy, operate within real-time
/// constraints, and optimize for power, energy, and memory footprint").
struct ApplicationConstraints {
  double max_latency_ms = 1e30;   ///< Real-time budget at 1 GHz.
  double max_energy = 1e30;       ///< Per-inference energy, MAC units.
  double min_top1 = 0.0;          ///< Required accuracy, percent.
};

struct CandidateEvaluation {
  std::string name;
  double top1 = 0.0;         ///< Published accuracy (0 when unknown).
  bool accuracy_known = false;
  double latency_ms = 0.0;
  double energy = 0.0;
  bool feasible = false;     ///< Meets every constraint (unknown accuracy
                             ///< fails a min_top1 > 0 constraint).
};

struct AdvisorResult {
  std::vector<CandidateEvaluation> candidates;  ///< Input order.
  /// Index into `candidates` of the selected network; nullopt when no
  /// candidate satisfies the constraints.
  std::optional<std::size_t> best;
};

/// Evaluate `candidates` on `config` and select per the constraints.
AdvisorResult select_network(const std::vector<nn::Model>& candidates,
                             const ApplicationConstraints& constraints,
                             const sim::AcceleratorConfig& config =
                                 sim::AcceleratorConfig::squeezelerator(),
                             const energy::UnitEnergies& units = {});

}  // namespace sqz::core
