// Write-ahead journal for design-space sweeps: crash safety for the batch
// path (ARCHITECTURE.md "Crash safety & resumable sweeps").
//
// A sweep evaluates hundreds of independent design points over hours; a
// SIGKILL (OOM killer, preempted batch node, ctrl-C) must not lose the
// points already computed. The journal is a single append-only file
// (`<dir>/sweep.sqzj`) of framed, typed records:
//
//   "<magic> <key-bytes> <value-bytes> <fnv1a-of-payload, 16 hex>\n<key><value>"
//
// Record types share the framing and differ only in the 5-byte magic
// ("sqz" + two type characters):
//
//   sqzw1  completed design point. Key = the canonical design-point string
//          (core/dse.h design_point_key — the same canonicalization
//          discipline as the serving cache, serve/simcache.h); value = the
//          point's metrics as compact JSON whose numbers round-trip
//          bit-exactly (util/json.h), so a resumed sweep reproduces the
//          uninterrupted dump byte for byte.
//   sqzm1  fleet-membership event (serve/workerpool.h dynamic membership).
//          Key = the worker's "host:port"; value = a JSON event record
//          (register/deregister/expire/takeover with epoch and lease).
//          Replaying these in order rebuilds the coordinator's lease table,
//          which is how a standby coordinator recovers the fleet on
//          takeover (ARCHITECTURE.md "Dynamic membership & coordinator HA").
//
// Forward compatibility: a record whose magic is "sqz??" but of a type this
// build does not know is *skipped with a warning* — provided its checksum
// verifies — instead of ending recovery. A newer coordinator can therefore
// append new record types without stranding the journal for older readers,
// and a pre-membership journal (sqzw1 only) replays unchanged under this
// build. Only a record that fails its checksum (bit rot, torn write) ends
// the trusted prefix.
//
// Atomicity comes from the framing, not from rename tricks: appends are
// flushed record-at-a-time, and a crash can only tear the *tail* record.
// Opening the journal replays the valid prefix, then truncates any torn
// tail so subsequent appends start on a clean frame — the classic WAL
// recovery. A record whose checksum fails mid-file (bit rot) also ends the
// trusted prefix: nothing after a bad frame is believed. The
// "sweepjournal.append" fault point (util/faultinject.h) lets chaos tests
// tear a record deterministically.
//
// Single-writer fence: a journal directory has exactly one writer at a
// time, enforced with an exclusive flock(2) on `<dir>/sweep.lock` held for
// the journal's lifetime. Opening a directory whose lock another *live*
// process (or object) holds throws SweepJournalLocked — this is what keeps
// a partitioned standby coordinator from promoting onto a journal the
// primary is still appending to (split-brain), since interleaved buffered
// appends from two writers would corrupt the shared file both sides depend
// on for recovery. The lock dies with its holder: a SIGKILLed primary
// releases it automatically, so takeover after a real crash needs no
// cleanup step.
#pragma once

#include <cstddef>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sqz::core {

/// Journal failure (unwritable dir, torn-tail truncation failure, failed
/// append). Typed so the sweep engine can classify it as a PointError with
/// phase "journal" instead of mistaking it for a simulation failure.
class SweepJournalError : public std::runtime_error {
 public:
  explicit SweepJournalError(const std::string& what)
      : std::runtime_error(what) {}
};

/// The journal directory's writer lock is held by another live writer.
/// Distinct from SweepJournalError so a standby coordinator can treat it
/// as proof the primary is alive (refuse promotion) rather than as a
/// broken journal.
class SweepJournalLocked : public SweepJournalError {
 public:
  explicit SweepJournalLocked(const std::string& what)
      : SweepJournalError(what) {}
};

class SweepJournal {
 public:
  struct Recovery {
    std::size_t records = 0;        ///< Valid records replayed (all types).
    std::size_t skipped = 0;        ///< Unknown-type records skipped (valid
                                    ///< checksum, future/foreign magic).
    std::size_t dropped_bytes = 0;  ///< Torn/untrusted tail truncated away.
    bool torn = false;              ///< True when a tail was dropped.
  };

  /// One replayed membership event, in append order (key = "host:port",
  /// value = the event JSON appended by the coordinator).
  using MembershipEvent = std::pair<std::string, std::string>;

  /// Open (creating `dir` if needed) and recover: acquire the directory's
  /// exclusive writer lock, replay valid records into
  /// entries()/membership(), truncate any torn tail, and position for
  /// appends. Throws SweepJournalLocked when another live writer holds the
  /// lock, SweepJournalError when the directory or file cannot be opened.
  explicit SweepJournal(const std::string& dir);

  ~SweepJournal();  ///< Releases the writer lock.

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// Completed points recovered at open (key -> metrics JSON). Later
  /// duplicate records win, matching append order.
  const std::unordered_map<std::string, std::string>& entries() const {
    return entries_;
  }

  /// Membership events recovered at open, in append order. The coordinator
  /// replays these to rebuild the lease table on standby takeover.
  const std::vector<MembershipEvent>& membership() const {
    return membership_;
  }

  const Recovery& recovery() const { return recovery_; }

  /// Append one completed point and flush. Thread-safe (the sweep engine
  /// journals from worker threads as points finish). Throws
  /// SweepJournalError when the write fails — a sweep that was promised
  /// crash safety must not silently lose it.
  void append(const std::string& key, const std::string& value);

  /// Append one membership event (sqzm1 record) and flush. Thread-safe —
  /// the coordinator journals from registration handlers and the lease
  /// prober concurrently with point appends. Throws SweepJournalError on a
  /// failed write, like append().
  void append_membership(const std::string& key, const std::string& value);

  /// The journal file inside `dir`.
  static std::string journal_path(const std::string& dir);

  /// The writer-lock file inside `dir` (exclusive flock, held while open).
  static std::string lock_path(const std::string& dir);

 private:
  /// Constructor tail, run under the writer lock: replay, truncate any
  /// torn tail, open for append. Split out so a throw can release the lock
  /// (a half-constructed object never runs its destructor).
  void open_and_recover();
  void append_record(const char* magic, const std::string& key,
                     const std::string& value);

  std::string path_;
  int lock_fd_ = -1;  ///< Exclusive flock on lock_path(); held until ~.
  std::mutex mu_;
  std::ofstream out_;  ///< Append-positioned after recovery; guarded by mu_.
  std::unordered_map<std::string, std::string> entries_;
  std::vector<MembershipEvent> membership_;
  Recovery recovery_;
};

}  // namespace sqz::core
