// Multi-core configuration (paper §3.2 lists "multi-core configuration"
// among the features that distinguish NN accelerators).
//
// Model: `cores` identical Squeezelerator instances, batch-parallel — each
// core runs the whole network on its share of the batch. The cores share
// the DRAM interface (per-core bandwidth = total / cores) and each core
// fetches its own copy of the weights (the real cost of batch-parallel
// scaling: weight traffic multiplies by the core count).
#pragma once

#include <vector>

#include "energy/model.h"
#include "nn/model.h"
#include "sched/network_sim.h"
#include "sim/config.h"
#include "sim/counters.h"

namespace sqz::core {

struct MulticoreResult {
  int cores = 1;
  int total_batch = 1;
  int per_core_batch = 1;
  sim::NetworkResult per_core;  ///< Core 0's run (all cores identical).

  /// Every core's simulation, core index order. Cores are evaluated through
  /// util::ThreadPool (one task per core) into position-indexed slots, so
  /// the vector is bit-identical at any job count.
  std::vector<sim::NetworkResult> core_results;

  /// Wall-clock cycles for the whole batch: the slowest core.
  std::int64_t makespan_cycles() const noexcept {
    std::int64_t worst = 0;
    for (const sim::NetworkResult& r : core_results)
      worst = worst < r.total_cycles() ? r.total_cycles() : worst;
    return core_results.empty() ? per_core.total_cycles() : worst;
  }
  /// Images per second at the given clock.
  double throughput_ips(double clock_ghz = 1.0) const noexcept;
  /// Whole-chip energy for the batch (every core pays its own traffic).
  energy::EnergyBreakdown total_energy(const energy::UnitEnergies& units = {}) const;
};

/// Simulate `config.batch` images split across `cores` accelerator cores.
/// `shared_dram` = true divides the DRAM interface among the cores (one
/// memory controller, the SOC-typical case); false gives every core its own
/// full-bandwidth channel (chiplet/multi-controller scaling).
/// Throws std::invalid_argument for cores < 1.
MulticoreResult simulate_multicore(const nn::Model& model,
                                   const sim::AcceleratorConfig& config,
                                   int cores,
                                   bool shared_dram = true,
                                   sched::Objective objective =
                                       sched::Objective::Cycles);

}  // namespace sqz::core
