#include "core/codesign.h"

#include <algorithm>
#include <exception>
#include <limits>
#include <stdexcept>

#include "core/validate.h"
#include "util/hash.h"
#include "util/strings.h"
#include "util/threadpool.h"

namespace sqz::core {

TuningResult tune_accelerator(const nn::Model& model, const TuningSpace& space,
                              const sim::AcceleratorConfig& base,
                              sched::Objective objective,
                              const energy::UnitEnergies& units) {
  TuningResult result;

  // Materialize the (array_n x rf) cross product in sweep order, evaluate
  // every candidate in parallel into its own slot, then reduce serially in
  // the original order so the winner and its tie-breaks never depend on
  // thread scheduling.
  for (int n : space.array_n) {
    for (int rf : space.rf_entries) {
      sim::AcceleratorConfig cfg = base;
      cfg.array_n = n;
      cfg.rf_entries = rf;
      TuningCandidate cand;
      cand.config = cfg;
      result.candidates.push_back(cand);
    }
  }

  // Per-candidate fault isolation: a candidate that fails pre-flight or
  // throws mid-simulation must not cost the whole tuning run — the sweep
  // continues and the winner is picked among the survivors.
  std::vector<std::exception_ptr> errors;
  const std::size_t failed = util::ThreadPool::global().parallel_for_index_capture(
      result.candidates.size(),
      [&](std::size_t i) {
        TuningCandidate& cand = result.candidates[i];
        const ValidationReport report = validate_design(model, cand.config);
        if (!report.ok()) throw ValidationError(report.summary());
        const sim::NetworkResult net =
            sched::simulate_network(model, cand.config, objective, units);
        cand.cycles = net.total_cycles();
        cand.energy = energy::network_energy(net, units).total();
      },
      errors);

  if (failed > 0) {
    std::vector<TuningCandidate> survivors;
    for (std::size_t i = 0; i < result.candidates.size(); ++i) {
      const sim::AcceleratorConfig& cfg = result.candidates[i].config;
      const std::string label =
          util::format("N=%d RF=%d", cfg.array_n, cfg.rf_entries);
      if (errors[i]) {
        result.errors.push_back(classify_point_error(
            label,
            util::format("%016llx",
                         static_cast<unsigned long long>(util::fnv1a64(
                             design_point_key(model, label, cfg, objective)))),
            errors[i]));
        continue;
      }
      survivors.push_back(result.candidates[i]);
    }
    result.candidates = std::move(survivors);
    if (result.candidates.empty())
      throw std::runtime_error(
          "tune_accelerator: every candidate failed; first: " +
          result.errors.front().label + ": " + result.errors.front().what);
  }

  double best_primary = std::numeric_limits<double>::infinity();
  double best_secondary = std::numeric_limits<double>::infinity();
  int best_rf = std::numeric_limits<int>::max();
  for (const TuningCandidate& cand : result.candidates) {
    const double primary = objective == sched::Objective::Cycles
                               ? static_cast<double>(cand.cycles)
                               : cand.energy;
    const double secondary = objective == sched::Objective::Cycles
                                 ? cand.energy
                                 : static_cast<double>(cand.cycles);
    const int rf = cand.config.rf_entries;
    const bool better =
        primary < best_primary ||
        (primary == best_primary && secondary < best_secondary) ||
        (primary == best_primary && secondary == best_secondary && rf < best_rf);
    if (better) {
      best_primary = primary;
      best_secondary = secondary;
      best_rf = rf;
      result.best = cand.config;
    }
  }
  return result;
}

const char* bottleneck_name(Bottleneck b) noexcept {
  switch (b) {
    case Bottleneck::None: return "healthy";
    case Bottleneck::FewChannels: return "few-channels";
    case Bottleneck::SmallFeatureMap: return "small-feature-map";
    case Bottleneck::DrainDominated: return "drain-dominated";
    case Bottleneck::DramBound: return "dram-bound";
  }
  return "?";
}

namespace {

Bottleneck diagnose(const nn::Layer& layer, const sim::LayerResult& r,
                    const sim::AcceleratorConfig& config) {
  if (r.dram_cycles > r.compute_cycles) return Bottleneck::DramBound;
  if (r.utilization(config.pe_count()) >= 0.5) return Bottleneck::None;

  const int n = config.array_n;
  if (layer.is_conv()) {
    if (r.dataflow == sim::Dataflow::WeightStationary) {
      // Idle rows: fewer input channels (per group) than PE rows.
      if (layer.in_shape.c / layer.conv.groups < n / 2)
        return Bottleneck::FewChannels;
      if (layer.conv.out_channels / layer.conv.groups < n / 2)
        return Bottleneck::FewChannels;
    } else {
      const std::int64_t tile = static_cast<std::int64_t>(
          std::min(n, layer.out_shape.h) * std::min(n, layer.out_shape.w));
      if (tile < static_cast<std::int64_t>(n) * n / 2)
        return Bottleneck::SmallFeatureMap;
      // Short accumulation per drain: few input channels per output tile.
      if (layer.taps_per_output() < config.pe_count() / config.drain_width)
        return Bottleneck::DrainDominated;
    }
  }
  return Bottleneck::None;
}

}  // namespace

std::vector<LayerDiagnosis> ModelAdvice::low_utilization(double threshold) const {
  std::vector<LayerDiagnosis> out;
  for (const LayerDiagnosis& l : layers)
    if (l.utilization < threshold) out.push_back(l);
  return out;
}

ModelAdvice analyze_model(const nn::Model& model,
                          const sim::AcceleratorConfig& config,
                          sched::Objective objective) {
  const sim::NetworkResult net = sched::simulate_network(model, config, objective);
  ModelAdvice advice;
  advice.network_utilization = net.utilization();
  for (const sim::LayerResult& r : net.layers) {
    const nn::Layer& l = model.layer(r.layer_idx);
    if (!l.is_macs_layer()) continue;
    LayerDiagnosis d;
    d.layer_idx = r.layer_idx;
    d.layer_name = r.layer_name;
    d.dataflow = r.dataflow;
    d.utilization = r.utilization(config.pe_count());
    d.bottleneck = diagnose(l, r, config);
    advice.layers.push_back(std::move(d));
  }
  return advice;
}

}  // namespace sqz::core
