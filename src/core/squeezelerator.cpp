#include "core/squeezelerator.h"

namespace sqz::core {

namespace {

double ratio(std::int64_t base, std::int64_t ours) {
  if (ours <= 0) return 0.0;
  return static_cast<double>(base) / static_cast<double>(ours);
}

double reduction(double base, double ours) {
  if (base <= 0.0) return 0.0;
  return 1.0 - ours / base;
}

}  // namespace

double ComparisonResult::speedup_vs_ws() const noexcept {
  return ratio(ws_only.total_cycles(), hybrid.total_cycles());
}

double ComparisonResult::speedup_vs_os() const noexcept {
  return ratio(os_only.total_cycles(), hybrid.total_cycles());
}

double ComparisonResult::energy_reduction_vs_ws() const {
  return reduction(energy::network_energy(ws_only, units).total(),
                   energy::network_energy(hybrid, units).total());
}

double ComparisonResult::energy_reduction_vs_os() const {
  return reduction(energy::network_energy(os_only, units).total(),
                   energy::network_energy(hybrid, units).total());
}

ComparisonResult compare_dataflows(const nn::Model& model,
                                   const sim::AcceleratorConfig& base,
                                   sched::Objective objective,
                                   const energy::UnitEnergies& units) {
  sim::AcceleratorConfig hybrid_cfg = base;
  hybrid_cfg.support = sim::DataflowSupport::Hybrid;
  sim::AcceleratorConfig ws_cfg = base;
  ws_cfg.support = sim::DataflowSupport::WsOnly;
  ws_cfg.ws_psums_in_gb = true;  // the naive reference lacks the accumulator
  sim::AcceleratorConfig os_cfg = base;
  os_cfg.support = sim::DataflowSupport::OsOnly;

  ComparisonResult r;
  r.units = units;
  r.hybrid = sched::simulate_network(model, hybrid_cfg, objective, units);
  r.ws_only = sched::simulate_network(model, ws_cfg, objective, units);
  r.os_only = sched::simulate_network(model, os_cfg, objective, units);
  return r;
}

}  // namespace sqz::core
