// Design-space exploration over accelerator configurations.
//
// Backs the ablation benches (register-file size, PE-array size, sparsity,
// DRAM parameters) and the Pareto view of cycles-vs-energy trade-offs the
// paper's co-design narrative implies.
#pragma once

#include <exception>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "energy/model.h"
#include "nn/model.h"
#include "sched/network_sim.h"
#include "sim/config.h"

namespace sqz::core {

struct DesignPoint {
  std::string label;
  sim::AcceleratorConfig config;
  std::int64_t cycles = 0;
  double energy = 0.0;
  double utilization = 0.0;

  /// Two-phase sweeps (SweepOptions::screen): which phase produced
  /// cycles/energy. Screen points carry the analytical estimate; Exact
  /// points were re-simulated cycle-exactly, with the phase-1 estimate
  /// retained in est_cycles/est_energy for error accounting. Single-phase
  /// sweeps leave the defaults (Exact, -1).
  enum class Phase { Exact, Screen };
  Phase phase = Phase::Exact;
  std::int64_t est_cycles = -1;
  double est_energy = -1.0;
};

/// Evaluate every configuration on `model` (cycles, energy, utilization).
std::vector<DesignPoint> evaluate_designs(
    const nn::Model& model,
    const std::vector<std::pair<std::string, sim::AcceleratorConfig>>& configs,
    sched::Objective objective = sched::Objective::Cycles,
    const energy::UnitEnergies& units = {});

// --- checked sweeps: fault isolation, pre-flight, crash safety ------------

class SweepJournal;

/// One design point that failed, as recorded in sweep dumps and /v1/sweep
/// responses. A poisoned point must not tear down the other n-1 evaluations,
/// so the sweep engine turns its exception into this structured record.
struct PointError {
  std::string label;  ///< The point's sweep label (e.g. "RF=16").
  std::string key;    ///< 16-hex FNV-1a of the canonical design-point key.
  /// "validate" | "simulate" | "estimate" | "journal", plus "dispatch" for
  /// points a coordinator could not place on any worker after requeues
  /// (serve/coordinator.h).
  std::string phase;
  std::string what;   ///< Diagnostic: validation summary or exception text.
};

struct SweepOptions {
  sched::Objective objective = sched::Objective::Cycles;
  energy::UnitEnergies units;

  /// Fidelity knobs forwarded to sched::simulate_network (and mirrored by
  /// the analytical estimator in screened mode). Defaults reproduce the
  /// historical flat-model sweep byte-for-byte.
  bool tile_timeline = false;
  bool double_buffered = true;
  bool tile_search = false;
  bool fuse_pool_drain = false;

  /// Two-phase screening (docs/ESTIMATOR.md): phase 1 scores every point
  /// with the closed-form estimator (src/est), phase 2 re-simulates only
  /// the retained Pareto band cycle-exactly. Phase-1 journal records carry
  /// a "phase":"screen" key member so both phases resume independently.
  bool screen = false;
  /// Fraction of successful phase-1 points retained for phase 2. Successive
  /// Pareto fronts are peeled (never split) until the retained set reaches
  /// ceil(screen_keep x successful); the first front is always kept whole.
  double screen_keep = 0.25;

  /// Cross-check each model x config pair (core/validate.h) before paying
  /// for its simulation; an infeasible point fails with phase "validate"
  /// and every violation listed, instead of whatever a mapper throws first.
  bool preflight = true;

  /// Non-null: append each completed point to this write-ahead journal and
  /// skip points whose key the journal already holds (crash-safe resume;
  /// restored metrics re-render byte-identically, see util/json.h).
  SweepJournal* journal = nullptr;

  /// Called after every point completes (and once up front with the resumed
  /// count) as progress(done, total, errors). Invoked from worker threads
  /// concurrently — the callback must be thread-safe. In screened mode the
  /// total grows from n to n + kept once the phase-2 band is chosen.
  std::function<void(std::size_t, std::size_t, std::size_t)> progress;
};

struct SweepOutcome {
  std::vector<DesignPoint> points;  ///< Successful points, input order.
  std::vector<PointError> errors;   ///< Failed points, input order.
  std::size_t resumed = 0;          ///< Points restored from the journal.

  /// Two-phase accounting (meaningful when `screened`): how many points the
  /// analytical phase scored, how many survived into the cycle-exact phase,
  /// and the worst phase-1 cycle error observed over the re-simulated band.
  /// Feeds the screen_* /metrics counters and the dump's "screening" block.
  bool screened = false;
  std::size_t screen_points = 0;
  std::size_t screen_kept = 0;
  double screen_error_max_pct = 0.0;
};

/// The canonical identity of one design point: compact JSON carrying the
/// serialized model text, the sweep label, the config_to_ini rendering, and
/// the objective — the same canonicalization discipline as the serving
/// cache (serve/api.h), so a point's journal entry survives process
/// restarts and config-struct reordering alike.
std::string design_point_key(const nn::Model& model, const std::string& label,
                             const sim::AcceleratorConfig& config,
                             sched::Objective objective);

/// Same key with the model already serialized (nn/serialize.h): a sweep —
/// or a coordinator sharding one — serializes the model once, not per point.
std::string design_point_key(const std::string& model_text,
                             const std::string& label,
                             const sim::AcceleratorConfig& config,
                             sched::Objective objective);

/// The 16-hex FNV-1a digest of a canonical design-point key — the form
/// recorded in PointError::key, exposed so the serve-layer coordinator
/// reports dispatch failures under the same identity the sweep engine uses.
std::string design_point_short_key(const std::string& key);

/// The journal value for one completed point ({"cycles","energy",
/// "utilization"} as compact JSON) and its parser. util::json_number emits
/// the shortest decimal that round-trips bit-exactly through strtod, so a
/// value parsed back re-renders to identical bytes — the property both the
/// local resume path and the coordinator's completion record stand on.
/// parse returns false on a foreign or garbled value (caller re-evaluates).
std::string design_point_value_json(const DesignPoint& point);
bool parse_design_point_value(const std::string& json, DesignPoint& point);

/// Fault-isolating evaluate_designs: every configuration is evaluated even
/// when some throw. Failed points become PointErrors (input order); the
/// "dse.point" fault site (util/faultinject.h) can poison or stall points
/// for chaos tests. With a journal, completed points are appended as they
/// finish and already-journaled points are restored without re-simulating.
SweepOutcome evaluate_designs_checked(
    const nn::Model& model,
    const std::vector<std::pair<std::string, sim::AcceleratorConfig>>& configs,
    const SweepOptions& options = {});

/// Classify one captured per-index exception (ValidationError -> "validate",
/// SweepJournalError -> "journal", anything else -> "simulate") into a
/// PointError. `error` must be non-null.
PointError classify_point_error(std::string label, std::string key,
                                const std::exception_ptr& error);

/// Points not dominated in (cycles, energy); input order is preserved.
std::vector<DesignPoint> pareto_front(const std::vector<DesignPoint>& points);

/// Dump a sweep as a JSON document: every DesignPoint with its label, full
/// config provenance, metrics, and `"pareto": true/false` membership in the
/// (cycles, energy) front — the dashboard/regression-diff format for DSE
/// runs. `sweep_name` labels the document (e.g. "rf_entries on sqnxt23").
void write_design_points_json(const std::string& sweep_name,
                              const std::vector<DesignPoint>& points,
                              std::ostream& out);

/// The same document for a checked sweep. With zero errors the output is
/// byte-identical to write_design_points_json (the golden dumps and the
/// serve byte-identity suite depend on that); failed points add an
/// "errors" array of {label, key, phase, what} after "points".
void write_sweep_outcome_json(const std::string& sweep_name,
                              const SweepOutcome& outcome, std::ostream& out);

// --- sweep builders -------------------------------------------------------

/// Vary one integer knob of a base config.
std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_rf_entries(
    const sim::AcceleratorConfig& base, const std::vector<int>& values);
std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_array_n(
    const sim::AcceleratorConfig& base, const std::vector<int>& values);
std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_sparsity(
    const sim::AcceleratorConfig& base, const std::vector<double>& values);
std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_dram_bandwidth(
    const sim::AcceleratorConfig& base, const std::vector<double>& bytes_per_cycle);

}  // namespace sqz::core
