// Design-space exploration over accelerator configurations.
//
// Backs the ablation benches (register-file size, PE-array size, sparsity,
// DRAM parameters) and the Pareto view of cycles-vs-energy trade-offs the
// paper's co-design narrative implies.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "energy/model.h"
#include "nn/model.h"
#include "sched/network_sim.h"
#include "sim/config.h"

namespace sqz::core {

struct DesignPoint {
  std::string label;
  sim::AcceleratorConfig config;
  std::int64_t cycles = 0;
  double energy = 0.0;
  double utilization = 0.0;
};

/// Evaluate every configuration on `model` (cycles, energy, utilization).
std::vector<DesignPoint> evaluate_designs(
    const nn::Model& model,
    const std::vector<std::pair<std::string, sim::AcceleratorConfig>>& configs,
    sched::Objective objective = sched::Objective::Cycles,
    const energy::UnitEnergies& units = {});

/// Points not dominated in (cycles, energy); input order is preserved.
std::vector<DesignPoint> pareto_front(const std::vector<DesignPoint>& points);

/// Dump a sweep as a JSON document: every DesignPoint with its label, full
/// config provenance, metrics, and `"pareto": true/false` membership in the
/// (cycles, energy) front — the dashboard/regression-diff format for DSE
/// runs. `sweep_name` labels the document (e.g. "rf_entries on sqnxt23").
void write_design_points_json(const std::string& sweep_name,
                              const std::vector<DesignPoint>& points,
                              std::ostream& out);

// --- sweep builders -------------------------------------------------------

/// Vary one integer knob of a base config.
std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_rf_entries(
    const sim::AcceleratorConfig& base, const std::vector<int>& values);
std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_array_n(
    const sim::AcceleratorConfig& base, const std::vector<int>& values);
std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_sparsity(
    const sim::AcceleratorConfig& base, const std::vector<double>& values);
std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_dram_bandwidth(
    const sim::AcceleratorConfig& base, const std::vector<double>& bytes_per_cycle);

}  // namespace sqz::core
