// Chrome trace-event export of a simulated network schedule.
//
// Writes the JSON object format consumed by chrome://tracing and Perfetto
// (ui.perfetto.dev): three tracks — "PE array", "SIMD unit", "DMA" — with
// one complete ("ph":"X") event per layer phase, and, when the run used the
// tile timeline (sim/timeline.h), the per-tile load/compute/store intervals
// nested inside each layer span. One trace microsecond equals one core
// clock cycle (1 ns at the paper's 1 GHz), so durations read directly as
// cycle counts.
#pragma once

#include <iosfwd>

#include "nn/model.h"
#include "sim/counters.h"

namespace sqz::core {

/// Trace track (thread) ids, stable across runs.
inline constexpr int kTracePidSim = 0;
inline constexpr int kTraceTidPeArray = 0;
inline constexpr int kTraceTidSimd = 1;
inline constexpr int kTraceTidDma = 2;

/// Write `result`'s whole-network schedule as a Chrome trace. Layers are
/// laid out back-to-back (the sequencer executes them in order), so the
/// last event ends at result.total_cycles(). Events on each track are
/// non-overlapping and well-nested: a layer's tile/phase events lie inside
/// its layer span.
void write_chrome_trace(const nn::Model& model, const sim::NetworkResult& result,
                        std::ostream& out);

}  // namespace sqz::core
