// The co-design engine (paper §4.2): tune the accelerator to a DNN and
// diagnose the DNN's hardware behaviour to guide model redesign.
//
// The paper's loop: (1) design the accelerator for SqueezeNet; (2) study
// SqueezeNext's per-layer utilization on it and move layers from
// low-utilization early stages to later stages, shrink the first filter;
// (3) re-tune the accelerator (register file 8 -> 16). `tune_accelerator`
// automates step 3 and `analyze_model` produces the diagnosis of step 2.
#pragma once

#include <string>
#include <vector>

#include "core/dse.h"
#include "energy/model.h"
#include "nn/model.h"
#include "sched/network_sim.h"
#include "sim/config.h"
#include "sim/counters.h"

namespace sqz::core {

/// Candidate dimensions swept by tune_accelerator.
struct TuningSpace {
  std::vector<int> rf_entries = {4, 8, 16, 32};
  std::vector<int> array_n = {32};

  /// The paper's fine-tuning pass: RF size only (8 -> 16 study).
  static TuningSpace rf_only() { return TuningSpace{}; }
  /// Broader sweep including array size.
  static TuningSpace full() {
    TuningSpace s;
    s.array_n = {8, 16, 24, 32};
    return s;
  }
};

struct TuningCandidate {
  sim::AcceleratorConfig config;
  std::int64_t cycles = 0;
  double energy = 0.0;
};

struct TuningResult {
  std::vector<TuningCandidate> candidates;  ///< Successfully evaluated points.
  sim::AcceleratorConfig best;              ///< Winner by the tuning objective.
  std::vector<PointError> errors;  ///< Candidates that failed, sweep order.
};

/// Sweep the tuning space and pick the configuration that minimizes the
/// objective for `model`. Ties break toward lower energy, then smaller RF.
/// A candidate that fails pre-flight validation or throws mid-simulation is
/// recorded in `errors` instead of aborting the sweep; the winner is chosen
/// among the survivors. Throws std::runtime_error only when every candidate
/// fails (there is no winner to return).
TuningResult tune_accelerator(const nn::Model& model, const TuningSpace& space,
                              const sim::AcceleratorConfig& base =
                                  sim::AcceleratorConfig::squeezelerator(),
                              sched::Objective objective = sched::Objective::Cycles,
                              const energy::UnitEnergies& units = {});

/// Why a layer under-uses the array (Figure 3's diagnosis).
enum class Bottleneck {
  None,             ///< Utilization is healthy.
  FewChannels,      ///< Input channels << N: idle PE rows (early layers).
  SmallFeatureMap,  ///< Output tile << N x N: idle PEs (late layers, OS).
  DrainDominated,   ///< Short compute behind a fixed output-drain cost.
  DramBound,        ///< DMA traffic exceeds compute (FC at batch 1).
};

const char* bottleneck_name(Bottleneck b) noexcept;

struct LayerDiagnosis {
  int layer_idx = 0;
  std::string layer_name;
  sim::Dataflow dataflow = sim::Dataflow::WeightStationary;
  double utilization = 0.0;
  Bottleneck bottleneck = Bottleneck::None;
};

struct ModelAdvice {
  std::vector<LayerDiagnosis> layers;  ///< MAC layers only, network order.
  double network_utilization = 0.0;

  /// Layers below `threshold` utilization — the redesign targets.
  std::vector<LayerDiagnosis> low_utilization(double threshold = 0.25) const;
};

/// Simulate `model` on `config` and attribute each MAC layer's utilization
/// loss to a bottleneck class.
ModelAdvice analyze_model(const nn::Model& model,
                          const sim::AcceleratorConfig& config =
                              sim::AcceleratorConfig::squeezelerator(),
                          sched::Objective objective = sched::Objective::Cycles);

}  // namespace sqz::core
