#include "core/config_io.h"

#include <stdexcept>

#include "util/json.h"
#include "util/strings.h"

namespace sqz::core {

namespace {

constexpr const char* kSection = "accelerator";

sim::DataflowSupport parse_support(const std::string& text) {
  if (text == "hybrid") return sim::DataflowSupport::Hybrid;
  if (text == "ws") return sim::DataflowSupport::WsOnly;
  if (text == "os") return sim::DataflowSupport::OsOnly;
  throw std::invalid_argument("config: support must be hybrid|ws|os, got '" +
                              text + "'");
}

const char* support_str(sim::DataflowSupport s) {
  switch (s) {
    case sim::DataflowSupport::Hybrid: return "hybrid";
    case sim::DataflowSupport::WsOnly: return "ws";
    case sim::DataflowSupport::OsOnly: return "os";
  }
  return "?";
}

}  // namespace

sim::AcceleratorConfig config_from_ini(const util::IniFile& ini,
                                       const sim::AcceleratorConfig& base) {
  sim::AcceleratorConfig c = base;
  // Accept both "[accelerator]" and top-level keys.
  const std::string section = ini.has_section(kSection) ? kSection : "";

  const auto known = {
      "array_n", "rf_entries", "gb_kib", "preload_width", "drain_width",
      "weight_reserve_words", "psum_accum_words", "simd_lanes",
      "dram_latency", "dram_bytes_per_cycle", "batch", "data_bytes",
      "weight_sparsity", "os_zero_skip", "ws_psums_in_gb", "support"};
  for (const std::string& key : ini.keys(section)) {
    bool ok = false;
    for (const char* k : known) ok |= key == k;
    if (!ok)
      throw std::invalid_argument("config: unknown key '" + key +
                                  "' in [" + section + "]");
  }

  if (auto v = ini.get_int(section, "array_n")) c.array_n = static_cast<int>(*v);
  if (auto v = ini.get_int(section, "rf_entries"))
    c.rf_entries = static_cast<int>(*v);
  if (auto v = ini.get_int(section, "gb_kib")) c.gb_kib = static_cast<int>(*v);
  if (auto v = ini.get_int(section, "preload_width"))
    c.preload_width = static_cast<int>(*v);
  if (auto v = ini.get_int(section, "drain_width"))
    c.drain_width = static_cast<int>(*v);
  if (auto v = ini.get_int(section, "weight_reserve_words"))
    c.weight_reserve_words = static_cast<int>(*v);
  if (auto v = ini.get_int(section, "psum_accum_words"))
    c.psum_accum_words = static_cast<int>(*v);
  if (auto v = ini.get_int(section, "simd_lanes"))
    c.simd_lanes = static_cast<int>(*v);
  if (auto v = ini.get_int(section, "dram_latency"))
    c.dram_latency_cycles = static_cast<int>(*v);
  if (auto v = ini.get_double(section, "dram_bytes_per_cycle"))
    c.dram_bytes_per_cycle = *v;
  if (auto v = ini.get_int(section, "batch")) c.batch = static_cast<int>(*v);
  if (auto v = ini.get_int(section, "data_bytes"))
    c.data_bytes = static_cast<int>(*v);
  if (auto v = ini.get_double(section, "weight_sparsity")) c.weight_sparsity = *v;
  if (auto v = ini.get_bool(section, "os_zero_skip")) c.os_zero_skip = *v;
  if (auto v = ini.get_bool(section, "ws_psums_in_gb")) c.ws_psums_in_gb = *v;
  if (auto v = ini.get(section, "support")) c.support = parse_support(*v);

  c.validate();
  return c;
}

std::string config_to_ini(const sim::AcceleratorConfig& config) {
  util::IniFile ini;
  const std::string s = kSection;
  ini.set(s, "array_n", std::to_string(config.array_n));
  ini.set(s, "rf_entries", std::to_string(config.rf_entries));
  ini.set(s, "gb_kib", std::to_string(config.gb_kib));
  ini.set(s, "preload_width", std::to_string(config.preload_width));
  ini.set(s, "drain_width", std::to_string(config.drain_width));
  ini.set(s, "weight_reserve_words", std::to_string(config.weight_reserve_words));
  ini.set(s, "psum_accum_words", std::to_string(config.psum_accum_words));
  ini.set(s, "simd_lanes", std::to_string(config.simd_lanes));
  ini.set(s, "dram_latency", std::to_string(config.dram_latency_cycles));
  ini.set(s, "dram_bytes_per_cycle",
          util::format("%g", config.dram_bytes_per_cycle));
  ini.set(s, "batch", std::to_string(config.batch));
  ini.set(s, "data_bytes", std::to_string(config.data_bytes));
  ini.set(s, "weight_sparsity", util::format("%g", config.weight_sparsity));
  ini.set(s, "os_zero_skip", config.os_zero_skip ? "true" : "false");
  ini.set(s, "ws_psums_in_gb", config.ws_psums_in_gb ? "true" : "false");
  ini.set(s, "support", support_str(config.support));
  return ini.to_string();
}

void config_to_json(const sim::AcceleratorConfig& config, util::JsonWriter& w) {
  w.member("array_n", config.array_n);
  w.member("rf_entries", config.rf_entries);
  w.member("gb_kib", config.gb_kib);
  w.member("preload_width", config.preload_width);
  w.member("drain_width", config.drain_width);
  w.member("weight_reserve_words", config.weight_reserve_words);
  w.member("psum_accum_words", config.psum_accum_words);
  w.member("simd_lanes", config.simd_lanes);
  w.member("dram_latency_cycles", config.dram_latency_cycles);
  w.member("dram_bytes_per_cycle", config.dram_bytes_per_cycle);
  w.member("batch", config.batch);
  w.member("data_bytes", config.data_bytes);
  w.member("weight_sparsity", config.weight_sparsity);
  w.member("os_zero_skip", config.os_zero_skip);
  w.member("ws_psums_in_gb", config.ws_psums_in_gb);
  w.member("support", support_str(config.support));
  w.member("pe_count", config.pe_count());
  w.member("summary", config.to_string());
}

}  // namespace sqz::core
