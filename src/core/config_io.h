// AcceleratorConfig <-> INI text, for the sqzsim CLI.
//
// Example file:
//   [accelerator]
//   array_n        = 32
//   rf_entries     = 16
//   gb_kib         = 128
//   dram_latency   = 100
//   dram_bytes_per_cycle = 16
//   weight_sparsity = 0.4
//   support        = hybrid        ; hybrid | ws | os
#pragma once

#include <string>

#include "sim/config.h"
#include "util/ini.h"

namespace sqz::util {
class JsonWriter;
}

namespace sqz::core {

/// Apply every recognized key of `[accelerator]` (or the top-level section)
/// on top of `base`; unknown keys throw std::invalid_argument so typos are
/// loud. The returned config is validated.
sim::AcceleratorConfig config_from_ini(const util::IniFile& ini,
                                       const sim::AcceleratorConfig& base =
                                           sim::AcceleratorConfig::squeezelerator());

/// Render a config as INI text that config_from_ini round-trips.
std::string config_to_ini(const sim::AcceleratorConfig& config);

/// Append every config parameter as a member of the currently open JSON
/// object — the provenance block of the run report (core/report.h).
void config_to_json(const sim::AcceleratorConfig& config, util::JsonWriter& w);

}  // namespace sqz::core
