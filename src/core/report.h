// Report builders shared by the benchmark binaries: render simulation
// results as the paper's tables and per-layer figures.
#pragma once

#include <string>

#include "core/squeezelerator.h"
#include "energy/model.h"
#include "nn/model.h"
#include "sim/counters.h"
#include "util/table.h"

namespace sqz::core {

/// Per-layer inference time + utilization table (Figure 1 / Figure 3 style).
/// Lists MAC layers; non-MAC layers are folded into an "(other)" row.
util::Table per_layer_table(const nn::Model& model, const sim::NetworkResult& result,
                            const std::string& title);

/// Side-by-side per-layer comparison of the three architectures (Figure 1).
util::Table per_layer_comparison_table(const nn::Model& model,
                                       const ComparisonResult& cmp,
                                       const std::string& title);

/// One Table-2 row: speedups and energy reductions vs the references.
struct Table2Row {
  std::string network;
  double speedup_vs_os = 0.0;
  double speedup_vs_ws = 0.0;
  double energy_red_vs_os = 0.0;  ///< Fraction (0.23 == 23%).
  double energy_red_vs_ws = 0.0;
};

Table2Row table2_row(const nn::Model& model, const ComparisonResult& cmp);

/// Energy breakdown table over hierarchy levels for one result.
util::Table energy_table(const sim::NetworkResult& result,
                         const energy::UnitEnergies& units,
                         const std::string& title);

}  // namespace sqz::core
