// Report builders shared by the benchmark binaries: render simulation
// results as the paper's tables and per-layer figures, plus the
// machine-readable JSON run report behind `sqzsim --json`.
#pragma once

#include <iosfwd>
#include <string>

#include "core/squeezelerator.h"
#include "energy/model.h"
#include "nn/model.h"
#include "sim/counters.h"
#include "util/table.h"

namespace sqz::core {

/// Per-layer inference time + utilization table (Figure 1 / Figure 3 style).
/// Lists MAC layers; non-MAC layers are folded into an "(other)" row.
util::Table per_layer_table(const nn::Model& model, const sim::NetworkResult& result,
                            const std::string& title);

/// Side-by-side per-layer comparison of the three architectures (Figure 1).
util::Table per_layer_comparison_table(const nn::Model& model,
                                       const ComparisonResult& cmp,
                                       const std::string& title);

/// One Table-2 row: speedups and energy reductions vs the references.
struct Table2Row {
  std::string network;
  double speedup_vs_os = 0.0;
  double speedup_vs_ws = 0.0;
  double energy_red_vs_os = 0.0;  ///< Fraction (0.23 == 23%).
  double energy_red_vs_ws = 0.0;
};

Table2Row table2_row(const nn::Model& model, const ComparisonResult& cmp);

/// Energy breakdown table over hierarchy levels for one result.
util::Table energy_table(const sim::NetworkResult& result,
                         const energy::UnitEnergies& units,
                         const std::string& title);

/// Version of the JSON run-report schema ("schema_version" in the report).
/// Bump on any field rename/removal; additions are backward compatible.
inline constexpr int kReportSchemaVersion = 1;

/// Write the complete machine-readable run report: schema version, config
/// provenance, unit energies, network totals, and one record per layer
/// (dataflow decision, cycles, per-level access counts, energy breakdown).
/// Every total is computed from `result` exactly as the ASCII tables
/// compute it, so the JSON and table paths can be diffed against each other.
void write_json_report(const nn::Model& model, const sim::NetworkResult& result,
                       const energy::UnitEnergies& units, std::ostream& out);

/// write_json_report into a string — the serving layer's response body and
/// cache value. Byte-identical to what `sqzsim --json` writes to its file.
std::string json_report_string(const nn::Model& model,
                               const sim::NetworkResult& result,
                               const energy::UnitEnergies& units);

}  // namespace sqz::core
