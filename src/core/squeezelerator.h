// Top-level facade: one-call comparisons between the Squeezelerator and the
// single-dataflow reference architectures — the measurement underlying the
// paper's Figure 1 and Table 2.
#pragma once

#include "energy/model.h"
#include "nn/model.h"
#include "sched/network_sim.h"
#include "sim/config.h"
#include "sim/counters.h"

namespace sqz::core {

/// One network simulated on the hybrid accelerator and on both references.
struct ComparisonResult {
  sim::NetworkResult hybrid;
  sim::NetworkResult ws_only;
  sim::NetworkResult os_only;
  energy::UnitEnergies units;

  double speedup_vs_ws() const noexcept;
  double speedup_vs_os() const noexcept;
  /// Fractional energy reduction, e.g. 0.23 == "23% less energy than WS".
  double energy_reduction_vs_ws() const;
  double energy_reduction_vs_os() const;
};

/// Simulate `model` on `base` (as Hybrid) and on WS-only / OS-only variants
/// of the same micro-architecture.
ComparisonResult compare_dataflows(
    const nn::Model& model,
    const sim::AcceleratorConfig& base = sim::AcceleratorConfig::squeezelerator(),
    sched::Objective objective = sched::Objective::Cycles,
    const energy::UnitEnergies& units = {});

}  // namespace sqz::core
