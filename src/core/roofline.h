// Roofline analysis for the Squeezelerator.
//
// The paper's model-design argument is roofline-shaped: SqueezeNext avoids
// MobileNet's "depthwise separable convolutions that have poor Arithmetic
// Intensity (Ops/MAC per byte of memory accessed)". This module makes the
// argument quantitative: the machine's balance point is
//
//     AI* = peak MACs/cycle  /  DRAM bytes/cycle
//
// and a layer whose arithmetic intensity (MACs per DRAM byte it actually
// moves under the residency plan) falls below AI* is memory-bound on this
// accelerator, no matter how well its dataflow maps.
#pragma once

#include <string>
#include <vector>

#include "nn/model.h"
#include "sim/config.h"
#include "sim/counters.h"

namespace sqz::core {

struct RooflinePoint {
  int layer_idx = 0;
  std::string layer_name;
  double arithmetic_intensity = 0.0;  ///< Executed MACs per DRAM byte moved
                                      ///< (zero-skipped MACs count on neither
                                      ///< axis).
  double attained_macs_per_cycle = 0.0;
  double roof_macs_per_cycle = 0.0;   ///< min(peak, AI * bandwidth).
  bool memory_bound = false;          ///< AI below the machine balance point.

  /// Attained / roof: how close the layer runs to its own ceiling.
  double roof_fraction() const noexcept {
    return roof_macs_per_cycle > 0.0
               ? attained_macs_per_cycle / roof_macs_per_cycle
               : 0.0;
  }
};

struct RooflineReport {
  double peak_macs_per_cycle = 0.0;   ///< N*N (all PEs busy).
  double dram_bytes_per_cycle = 0.0;
  double balance_point = 0.0;         ///< AI* = peak / bandwidth.
  std::vector<RooflinePoint> layers;  ///< MAC layers with DRAM traffic > 0
                                      ///< use true AI; fully resident layers
                                      ///< are reported compute-side.

  int memory_bound_count() const noexcept;
};

/// Build the roofline from an already-simulated network result.
RooflineReport roofline(const nn::Model& model, const sim::NetworkResult& result);

}  // namespace sqz::core
