#include "core/dse.h"

#include <atomic>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "core/config_io.h"
#include "core/report.h"
#include "core/sweepjournal.h"
#include "core/validate.h"
#include "nn/serialize.h"
#include "util/faultinject.h"
#include "util/hash.h"
#include "util/json.h"
#include "util/json_parse.h"
#include "util/strings.h"
#include "util/threadpool.h"

namespace sqz::core {

namespace {

bool dominated_by_any(const DesignPoint& p, const std::vector<DesignPoint>& points) {
  for (const DesignPoint& q : points) {
    const bool q_no_worse = q.cycles <= p.cycles && q.energy <= p.energy;
    const bool q_better = q.cycles < p.cycles || q.energy < p.energy;
    if (q_no_worse && q_better) return true;
  }
  return false;
}

// The canonical key with the model already serialized — a sweep serializes
// the model once, not once per point.
std::string key_from_parts(const std::string& model_text,
                           const std::string& label,
                           const sim::AcceleratorConfig& config,
                           sched::Objective objective) {
  std::ostringstream os;
  util::JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.member("op", "design_point");
  w.member("model", model_text);
  w.member("label", label);
  w.member("config", config_to_ini(config));
  w.member("objective",
           objective == sched::Objective::Energy ? "energy" : "cycles");
  w.end_object();
  return os.str();
}

std::string short_key(const std::string& canonical) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(util::fnv1a64(canonical)));
  return hex;
}

// Journal value: the point's metrics as compact JSON. util::json_number
// emits the shortest decimal that round-trips bit-exactly through strtod,
// so a value parsed back from the journal re-renders to identical bytes —
// the property the resume byte-identity guarantee stands on.
std::string point_value_json(const DesignPoint& p) {
  std::ostringstream os;
  util::JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.member("cycles", p.cycles);
  w.member("energy", p.energy);
  w.member("utilization", p.utilization);
  w.end_object();
  return os.str();
}

bool parse_point_value(const std::string& json, DesignPoint& p) {
  try {
    const util::JsonValue v = util::parse_json(json);
    p.cycles = v.at("cycles").as_int();
    p.energy = v.at("energy").as_double();
    p.utilization = v.at("utilization").as_double();
    return true;
  } catch (const std::exception&) {
    return false;  // foreign/garbled journal value: re-simulate the point
  }
}

}  // namespace

std::vector<DesignPoint> evaluate_designs(
    const nn::Model& model,
    const std::vector<std::pair<std::string, sim::AcceleratorConfig>>& configs,
    sched::Objective objective, const energy::UnitEnergies& units) {
  // Each design point is an independent full-network simulation; fan them
  // out and write into position-indexed slots so the output (and therefore
  // Pareto membership and JSON dumps) is byte-identical at any job count.
  std::vector<DesignPoint> points(configs.size());
  util::ThreadPool::global().parallel_for_index(
      configs.size(), [&](std::size_t i) {
        const auto& [label, cfg] = configs[i];
        const sim::NetworkResult net =
            sched::simulate_network(model, cfg, objective, units);
        DesignPoint& p = points[i];
        p.label = label;
        p.config = cfg;
        p.cycles = net.total_cycles();
        p.energy = energy::network_energy(net, units).total();
        p.utilization = net.utilization();
      });
  return points;
}

std::string design_point_key(const nn::Model& model, const std::string& label,
                             const sim::AcceleratorConfig& config,
                             sched::Objective objective) {
  return key_from_parts(nn::serialize_model(model), label, config, objective);
}

PointError classify_point_error(std::string label, std::string key,
                                const std::exception_ptr& error) {
  PointError pe;
  pe.label = std::move(label);
  pe.key = std::move(key);
  try {
    std::rethrow_exception(error);
  } catch (const ValidationError& e) {
    pe.phase = "validate";
    pe.what = e.what();
  } catch (const SweepJournalError& e) {
    pe.phase = "journal";
    pe.what = e.what();
  } catch (const std::exception& e) {
    pe.phase = "simulate";
    pe.what = e.what();
  } catch (...) {
    pe.phase = "simulate";
    pe.what = "unknown exception";
  }
  return pe;
}

SweepOutcome evaluate_designs_checked(
    const nn::Model& model,
    const std::vector<std::pair<std::string, sim::AcceleratorConfig>>& configs,
    const SweepOptions& opt) {
  const std::size_t n = configs.size();
  const std::string model_text = nn::serialize_model(model);

  std::vector<std::string> keys(n);
  for (std::size_t i = 0; i < n; ++i)
    keys[i] =
        key_from_parts(model_text, configs[i].first, configs[i].second,
                       opt.objective);

  SweepOutcome out;
  std::vector<DesignPoint> slots(n);
  std::vector<char> restored(n, 0);
  if (opt.journal) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto it = opt.journal->entries().find(keys[i]);
      if (it == opt.journal->entries().end()) continue;
      if (!parse_point_value(it->second, slots[i])) continue;
      slots[i].label = configs[i].first;
      slots[i].config = configs[i].second;
      restored[i] = 1;
      ++out.resumed;
    }
  }

  std::atomic<std::size_t> done{out.resumed};
  std::atomic<std::size_t> failed{0};
  if (opt.progress) opt.progress(done.load(), n, 0);

  std::vector<std::exception_ptr> errors;
  util::ThreadPool::global().parallel_for_index_capture(
      n,
      [&](std::size_t i) {
        if (restored[i]) return;
        try {
          // "dse.point" fault site: Errno poisons the point (the structured
          // PointError path must absorb it), Stall slows it down (the
          // SIGKILL-mid-sweep chaos test widens the crash window with it).
          if (util::fault::enabled()) {
            const util::fault::Action a = util::fault::at("dse.point");
            if (a.kind == util::fault::Kind::Errno)
              throw std::runtime_error(
                  "injected dse.point fault (" + configs[i].first + ")");
          }
          if (opt.preflight) {
            const ValidationReport report =
                validate_design(model, configs[i].second);
            if (!report.ok()) throw ValidationError(report.summary());
          }
          const sim::NetworkResult net = sched::simulate_network(
              model, configs[i].second, opt.objective, opt.units);
          DesignPoint& p = slots[i];
          p.label = configs[i].first;
          p.config = configs[i].second;
          p.cycles = net.total_cycles();
          p.energy = energy::network_energy(net, opt.units).total();
          p.utilization = net.utilization();
          if (opt.journal) opt.journal->append(keys[i], point_value_json(p));
        } catch (...) {
          failed.fetch_add(1, std::memory_order_relaxed);
          done.fetch_add(1, std::memory_order_relaxed);
          if (opt.progress) opt.progress(done.load(), n, failed.load());
          throw;  // captured into errors[i] by the pool
        }
        done.fetch_add(1, std::memory_order_relaxed);
        if (opt.progress) opt.progress(done.load(), n, failed.load());
      },
      errors);

  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) {
      out.errors.push_back(classify_point_error(configs[i].first,
                                                short_key(keys[i]), errors[i]));
      continue;
    }
    out.points.push_back(std::move(slots[i]));
  }
  return out;
}

std::vector<DesignPoint> pareto_front(const std::vector<DesignPoint>& points) {
  std::vector<DesignPoint> front;
  for (const DesignPoint& p : points)
    if (!dominated_by_any(p, points)) front.push_back(p);
  return front;
}

namespace {

// Shared by the clean and checked dump paths. The "errors" array is emitted
// only when non-empty so a zero-error checked sweep stays byte-identical to
// write_design_points_json — the golden dumps and the serve byte-identity
// suite compare against that exact form.
void write_points_doc(const std::string& sweep_name,
                      const std::vector<DesignPoint>& points,
                      const std::vector<PointError>& errors,
                      std::ostream& out) {
  util::JsonWriter w(out);
  w.begin_object();
  w.member("schema_version", kReportSchemaVersion);
  w.member("generator", "sqzsim");
  w.member("sweep", sweep_name);
  w.key("points");
  w.begin_array();
  for (const DesignPoint& p : points) {
    w.begin_object();
    w.member("label", p.label);
    w.member("cycles", p.cycles);
    w.member("energy", p.energy);
    w.member("utilization", p.utilization);
    w.member("pareto", !dominated_by_any(p, points));
    w.key("config");
    w.begin_object();
    config_to_json(p.config, w);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  if (!errors.empty()) {
    w.key("errors");
    w.begin_array();
    for (const PointError& e : errors) {
      w.begin_object();
      w.member("label", e.label);
      w.member("key", e.key);
      w.member("phase", e.phase);
      w.member("what", e.what);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  out << "\n";
}

}  // namespace

void write_design_points_json(const std::string& sweep_name,
                              const std::vector<DesignPoint>& points,
                              std::ostream& out) {
  write_points_doc(sweep_name, points, {}, out);
}

void write_sweep_outcome_json(const std::string& sweep_name,
                              const SweepOutcome& outcome, std::ostream& out) {
  write_points_doc(sweep_name, outcome.points, outcome.errors, out);
}

std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_rf_entries(
    const sim::AcceleratorConfig& base, const std::vector<int>& values) {
  std::vector<std::pair<std::string, sim::AcceleratorConfig>> out;
  for (int v : values) {
    sim::AcceleratorConfig c = base;
    c.rf_entries = v;
    out.emplace_back(util::format("RF=%d", v), c);
  }
  return out;
}

std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_array_n(
    const sim::AcceleratorConfig& base, const std::vector<int>& values) {
  std::vector<std::pair<std::string, sim::AcceleratorConfig>> out;
  for (int v : values) {
    sim::AcceleratorConfig c = base;
    c.array_n = v;
    out.emplace_back(util::format("%dx%d", v, v), c);
  }
  return out;
}

std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_sparsity(
    const sim::AcceleratorConfig& base, const std::vector<double>& values) {
  std::vector<std::pair<std::string, sim::AcceleratorConfig>> out;
  for (double v : values) {
    sim::AcceleratorConfig c = base;
    c.weight_sparsity = v;
    out.emplace_back(util::format("sparsity=%.0f%%", v * 100.0), c);
  }
  return out;
}

std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_dram_bandwidth(
    const sim::AcceleratorConfig& base, const std::vector<double>& bytes_per_cycle) {
  std::vector<std::pair<std::string, sim::AcceleratorConfig>> out;
  for (double v : bytes_per_cycle) {
    sim::AcceleratorConfig c = base;
    c.dram_bytes_per_cycle = v;
    out.emplace_back(util::format("DRAM=%.0fB/cyc", v), c);
  }
  return out;
}

}  // namespace sqz::core
