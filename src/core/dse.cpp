#include "core/dse.h"

#include <ostream>

#include "core/config_io.h"
#include "core/report.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/threadpool.h"

namespace sqz::core {

namespace {

bool dominated_by_any(const DesignPoint& p, const std::vector<DesignPoint>& points) {
  for (const DesignPoint& q : points) {
    const bool q_no_worse = q.cycles <= p.cycles && q.energy <= p.energy;
    const bool q_better = q.cycles < p.cycles || q.energy < p.energy;
    if (q_no_worse && q_better) return true;
  }
  return false;
}

}  // namespace

std::vector<DesignPoint> evaluate_designs(
    const nn::Model& model,
    const std::vector<std::pair<std::string, sim::AcceleratorConfig>>& configs,
    sched::Objective objective, const energy::UnitEnergies& units) {
  // Each design point is an independent full-network simulation; fan them
  // out and write into position-indexed slots so the output (and therefore
  // Pareto membership and JSON dumps) is byte-identical at any job count.
  std::vector<DesignPoint> points(configs.size());
  util::ThreadPool::global().parallel_for_index(
      configs.size(), [&](std::size_t i) {
        const auto& [label, cfg] = configs[i];
        const sim::NetworkResult net =
            sched::simulate_network(model, cfg, objective, units);
        DesignPoint& p = points[i];
        p.label = label;
        p.config = cfg;
        p.cycles = net.total_cycles();
        p.energy = energy::network_energy(net, units).total();
        p.utilization = net.utilization();
      });
  return points;
}

std::vector<DesignPoint> pareto_front(const std::vector<DesignPoint>& points) {
  std::vector<DesignPoint> front;
  for (const DesignPoint& p : points)
    if (!dominated_by_any(p, points)) front.push_back(p);
  return front;
}

void write_design_points_json(const std::string& sweep_name,
                              const std::vector<DesignPoint>& points,
                              std::ostream& out) {
  util::JsonWriter w(out);
  w.begin_object();
  w.member("schema_version", kReportSchemaVersion);
  w.member("generator", "sqzsim");
  w.member("sweep", sweep_name);
  w.key("points");
  w.begin_array();
  for (const DesignPoint& p : points) {
    w.begin_object();
    w.member("label", p.label);
    w.member("cycles", p.cycles);
    w.member("energy", p.energy);
    w.member("utilization", p.utilization);
    w.member("pareto", !dominated_by_any(p, points));
    w.key("config");
    w.begin_object();
    config_to_json(p.config, w);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_rf_entries(
    const sim::AcceleratorConfig& base, const std::vector<int>& values) {
  std::vector<std::pair<std::string, sim::AcceleratorConfig>> out;
  for (int v : values) {
    sim::AcceleratorConfig c = base;
    c.rf_entries = v;
    out.emplace_back(util::format("RF=%d", v), c);
  }
  return out;
}

std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_array_n(
    const sim::AcceleratorConfig& base, const std::vector<int>& values) {
  std::vector<std::pair<std::string, sim::AcceleratorConfig>> out;
  for (int v : values) {
    sim::AcceleratorConfig c = base;
    c.array_n = v;
    out.emplace_back(util::format("%dx%d", v, v), c);
  }
  return out;
}

std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_sparsity(
    const sim::AcceleratorConfig& base, const std::vector<double>& values) {
  std::vector<std::pair<std::string, sim::AcceleratorConfig>> out;
  for (double v : values) {
    sim::AcceleratorConfig c = base;
    c.weight_sparsity = v;
    out.emplace_back(util::format("sparsity=%.0f%%", v * 100.0), c);
  }
  return out;
}

std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_dram_bandwidth(
    const sim::AcceleratorConfig& base, const std::vector<double>& bytes_per_cycle) {
  std::vector<std::pair<std::string, sim::AcceleratorConfig>> out;
  for (double v : bytes_per_cycle) {
    sim::AcceleratorConfig c = base;
    c.dram_bytes_per_cycle = v;
    out.emplace_back(util::format("DRAM=%.0fB/cyc", v), c);
  }
  return out;
}

}  // namespace sqz::core
