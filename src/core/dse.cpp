#include "core/dse.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "core/config_io.h"
#include "core/report.h"
#include "core/sweepjournal.h"
#include "core/validate.h"
#include "est/estimator.h"
#include "nn/serialize.h"
#include "util/faultinject.h"
#include "util/hash.h"
#include "util/json.h"
#include "util/json_parse.h"
#include "util/strings.h"
#include "util/threadpool.h"

namespace sqz::core {

namespace {

bool dominated_by_any(const DesignPoint& p, const std::vector<DesignPoint>& points) {
  for (const DesignPoint& q : points) {
    const bool q_no_worse = q.cycles <= p.cycles && q.energy <= p.energy;
    const bool q_better = q.cycles < p.cycles || q.energy < p.energy;
    if (q_no_worse && q_better) return true;
  }
  return false;
}

// The canonical key with the model already serialized — a sweep serializes
// the model once, not once per point. Screen-phase records append a
// "phase":"screen" member so analytical estimates and cycle-exact results
// never collide in one journal; exact-phase keys keep the legacy form, so a
// journal written by an unscreened sweep seeds a screened resume's phase 2.
std::string key_from_parts(const std::string& model_text,
                           const std::string& label,
                           const sim::AcceleratorConfig& config,
                           sched::Objective objective,
                           bool screen_phase = false) {
  std::ostringstream os;
  util::JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.member("op", "design_point");
  w.member("model", model_text);
  w.member("label", label);
  w.member("config", config_to_ini(config));
  w.member("objective",
           objective == sched::Objective::Energy ? "energy" : "cycles");
  if (screen_phase) w.member("phase", "screen");
  w.end_object();
  return os.str();
}

std::string short_key(const std::string& canonical) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(util::fnv1a64(canonical)));
  return hex;
}

// Journal value: the point's metrics as compact JSON. util::json_number
// emits the shortest decimal that round-trips bit-exactly through strtod,
// so a value parsed back from the journal re-renders to identical bytes —
// the property the resume byte-identity guarantee stands on.
std::string point_value_json(const DesignPoint& p) {
  std::ostringstream os;
  util::JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.member("cycles", p.cycles);
  w.member("energy", p.energy);
  w.member("utilization", p.utilization);
  w.end_object();
  return os.str();
}

bool parse_point_value(const std::string& json, DesignPoint& p) {
  try {
    const util::JsonValue v = util::parse_json(json);
    p.cycles = v.at("cycles").as_int();
    p.energy = v.at("energy").as_double();
    p.utilization = v.at("utilization").as_double();
    return true;
  } catch (const std::exception&) {
    return false;  // foreign/garbled journal value: re-simulate the point
  }
}

sched::SimulationOptions sim_options_from(const SweepOptions& opt) {
  sched::SimulationOptions s;
  s.objective = opt.objective;
  s.units = opt.units;
  s.tile_timeline = opt.tile_timeline;
  s.double_buffered = opt.double_buffered;
  s.tile_search = opt.tile_search;
  s.fuse_pool_drain = opt.fuse_pool_drain;
  return s;
}

void fill_point(DesignPoint& p, const std::string& label,
                const sim::AcceleratorConfig& cfg,
                const sim::NetworkResult& net,
                const energy::UnitEnergies& units) {
  p.label = label;
  p.config = cfg;
  p.cycles = net.total_cycles();
  p.energy = energy::network_energy(net, units).total();
  p.utilization = net.utilization();
}

// One fault-isolated parallel pass over `idx` (indices into configs), the
// engine under both sweep phases. `keys` and `restored` run parallel to
// `idx`; restored slots are skipped, completed slots are journaled under
// their key, and exceptions land in errors[j] without tearing down the other
// points. `analytical` routes the point through est::estimate_network
// (phase 1 of a screened sweep) instead of the cycle-exact simulator.
void run_pass(
    const nn::Model& model,
    const std::vector<std::pair<std::string, sim::AcceleratorConfig>>& configs,
    const std::vector<std::size_t>& idx, const std::vector<std::string>& keys,
    const std::vector<char>& restored, const SweepOptions& opt, bool preflight,
    bool analytical, std::vector<DesignPoint>& slots,
    std::vector<std::exception_ptr>& errors, std::atomic<std::size_t>& done,
    std::atomic<std::size_t>& failed, std::size_t total) {
  const sched::SimulationOptions sim_opts = sim_options_from(opt);
  util::ThreadPool::global().parallel_for_index_capture(
      idx.size(),
      [&](std::size_t j) {
        const std::size_t i = idx[j];
        if (restored[j]) return;
        try {
          // "dse.point" fault site: Errno poisons the point (the structured
          // PointError path must absorb it), Stall slows it down (the
          // SIGKILL-mid-sweep chaos test widens the crash window with it).
          if (util::fault::enabled()) {
            const util::fault::Action a = util::fault::at("dse.point");
            if (a.kind == util::fault::Kind::Errno)
              throw std::runtime_error(
                  "injected dse.point fault (" + configs[i].first + ")");
          }
          if (preflight) {
            const ValidationReport report =
                validate_design(model, configs[i].second);
            if (!report.ok()) throw ValidationError(report.summary());
          }
          const sim::NetworkResult net =
              analytical
                  ? est::estimate_network(model, configs[i].second, sim_opts)
                  : sched::simulate_network(model, configs[i].second, sim_opts);
          DesignPoint& p = slots[i];
          fill_point(p, configs[i].first, configs[i].second, net, opt.units);
          if (opt.journal) opt.journal->append(keys[j], point_value_json(p));
        } catch (...) {
          failed.fetch_add(1, std::memory_order_relaxed);
          done.fetch_add(1, std::memory_order_relaxed);
          if (opt.progress) opt.progress(done.load(), total, failed.load());
          throw;  // captured into errors[j] by the pool
        }
        done.fetch_add(1, std::memory_order_relaxed);
        if (opt.progress) opt.progress(done.load(), total, failed.load());
      },
      errors);
}

// Peel successive Pareto fronts off the estimated points until the retained
// band reaches ceil(keep x candidates); fronts are never split, so the band
// is a deterministic function of the estimates alone — a resumed screened
// sweep re-derives the identical phase-2 work list. Returns ascending
// indices into `slots`.
std::vector<std::size_t> retain_band(const std::vector<DesignPoint>& slots,
                                     const std::vector<std::size_t>& candidates,
                                     double keep) {
  if (candidates.empty()) return {};
  const double frac = std::clamp(keep, 0.0, 1.0);
  const std::size_t target = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(frac * static_cast<double>(candidates.size()))));
  std::vector<std::size_t> kept;
  std::vector<std::size_t> remaining = candidates;
  while (kept.size() < target && !remaining.empty()) {
    std::vector<std::size_t> front, rest;
    for (const std::size_t i : remaining) {
      bool dominated = false;
      for (const std::size_t q : remaining) {
        if (q == i) continue;
        const DesignPoint& a = slots[q];
        const DesignPoint& b = slots[i];
        if (a.cycles <= b.cycles && a.energy <= b.energy &&
            (a.cycles < b.cycles || a.energy < b.energy)) {
          dominated = true;
          break;
        }
      }
      (dominated ? rest : front).push_back(i);
    }
    if (front.empty()) {  // unreachable with a partial order; belt-and-braces
      kept.insert(kept.end(), remaining.begin(), remaining.end());
      break;
    }
    kept.insert(kept.end(), front.begin(), front.end());
    remaining = std::move(rest);
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

}  // namespace

std::vector<DesignPoint> evaluate_designs(
    const nn::Model& model,
    const std::vector<std::pair<std::string, sim::AcceleratorConfig>>& configs,
    sched::Objective objective, const energy::UnitEnergies& units) {
  // Each design point is an independent full-network simulation; fan them
  // out and write into position-indexed slots so the output (and therefore
  // Pareto membership and JSON dumps) is byte-identical at any job count.
  std::vector<DesignPoint> points(configs.size());
  util::ThreadPool::global().parallel_for_index(
      configs.size(), [&](std::size_t i) {
        const auto& [label, cfg] = configs[i];
        const sim::NetworkResult net =
            sched::simulate_network(model, cfg, objective, units);
        DesignPoint& p = points[i];
        p.label = label;
        p.config = cfg;
        p.cycles = net.total_cycles();
        p.energy = energy::network_energy(net, units).total();
        p.utilization = net.utilization();
      });
  return points;
}

std::string design_point_key(const nn::Model& model, const std::string& label,
                             const sim::AcceleratorConfig& config,
                             sched::Objective objective) {
  return key_from_parts(nn::serialize_model(model), label, config, objective);
}

std::string design_point_key(const std::string& model_text,
                             const std::string& label,
                             const sim::AcceleratorConfig& config,
                             sched::Objective objective) {
  return key_from_parts(model_text, label, config, objective);
}

std::string design_point_short_key(const std::string& key) {
  return short_key(key);
}

std::string design_point_value_json(const DesignPoint& point) {
  return point_value_json(point);
}

bool parse_design_point_value(const std::string& json, DesignPoint& point) {
  return parse_point_value(json, point);
}

PointError classify_point_error(std::string label, std::string key,
                                const std::exception_ptr& error) {
  PointError pe;
  pe.label = std::move(label);
  pe.key = std::move(key);
  try {
    std::rethrow_exception(error);
  } catch (const ValidationError& e) {
    pe.phase = "validate";
    pe.what = e.what();
  } catch (const SweepJournalError& e) {
    pe.phase = "journal";
    pe.what = e.what();
  } catch (const std::exception& e) {
    pe.phase = "simulate";
    pe.what = e.what();
  } catch (...) {
    pe.phase = "simulate";
    pe.what = "unknown exception";
  }
  return pe;
}

SweepOutcome evaluate_designs_checked(
    const nn::Model& model,
    const std::vector<std::pair<std::string, sim::AcceleratorConfig>>& configs,
    const SweepOptions& opt) {
  const std::size_t n = configs.size();
  const std::string model_text = nn::serialize_model(model);

  SweepOutcome out;
  std::vector<DesignPoint> slots(n);
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> failed{0};

  // Keys for whichever phase runs first: legacy form for a plain sweep,
  // "phase":"screen" form for the analytical phase of a screened one.
  std::vector<std::string> keys(n);
  for (std::size_t i = 0; i < n; ++i)
    keys[i] = key_from_parts(model_text, configs[i].first, configs[i].second,
                             opt.objective, /*screen_phase=*/opt.screen);

  std::vector<char> restored(n, 0);
  if (opt.journal) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto it = opt.journal->entries().find(keys[i]);
      if (it == opt.journal->entries().end()) continue;
      if (!parse_point_value(it->second, slots[i])) continue;
      slots[i].label = configs[i].first;
      slots[i].config = configs[i].second;
      restored[i] = 1;
      ++out.resumed;
    }
  }

  done.store(out.resumed);
  if (opt.progress) opt.progress(done.load(), n, 0);

  std::vector<std::exception_ptr> errors;
  run_pass(model, configs, all, keys, restored, opt, opt.preflight,
           /*analytical=*/opt.screen, slots, errors, done, failed, n);

  if (!opt.screen) {
    for (std::size_t i = 0; i < n; ++i) {
      if (errors[i]) {
        out.errors.push_back(classify_point_error(
            configs[i].first, short_key(keys[i]), errors[i]));
        continue;
      }
      out.points.push_back(std::move(slots[i]));
    }
    return out;
  }

  // --- screened sweep, phase 1 done: tag estimates, retain the band -------
  out.screened = true;
  std::vector<std::size_t> ok;
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) continue;
    slots[i].phase = DesignPoint::Phase::Screen;
    slots[i].est_cycles = slots[i].cycles;
    slots[i].est_energy = slots[i].energy;
    ok.push_back(i);
  }
  out.screen_points = ok.size();

  const std::vector<std::size_t> kept = retain_band(slots, ok, opt.screen_keep);
  out.screen_kept = kept.size();

  // --- phase 2: re-simulate the band cycle-exactly under legacy keys ------
  std::vector<std::string> xkeys(kept.size());
  std::vector<char> xrestored(kept.size(), 0);
  for (std::size_t j = 0; j < kept.size(); ++j)
    xkeys[j] = key_from_parts(model_text, configs[kept[j]].first,
                              configs[kept[j]].second, opt.objective);
  if (opt.journal) {
    for (std::size_t j = 0; j < kept.size(); ++j) {
      const auto it = opt.journal->entries().find(xkeys[j]);
      if (it == opt.journal->entries().end()) continue;
      // Overwrites cycles/energy/utilization in place; the phase-1 estimate
      // stays behind in est_cycles/est_energy for the error accounting.
      if (!parse_point_value(it->second, slots[kept[j]])) continue;
      xrestored[j] = 1;
      ++out.resumed;
      done.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Phase 2 grows the progress total from n to n + kept: the band size is
  // unknown until the estimates are in.
  const std::size_t total = n + kept.size();
  if (opt.progress) opt.progress(done.load(), total, failed.load());

  std::vector<std::exception_ptr> xerrors;
  run_pass(model, configs, kept, xkeys, xrestored, opt, /*preflight=*/false,
           /*analytical=*/false, slots, xerrors, done, failed, total);

  std::vector<std::ptrdiff_t> kept_pos(n, -1);
  for (std::size_t j = 0; j < kept.size(); ++j) {
    kept_pos[kept[j]] = static_cast<std::ptrdiff_t>(j);
    if (xerrors[j]) continue;
    DesignPoint& p = slots[kept[j]];
    p.phase = DesignPoint::Phase::Exact;
    if (p.cycles > 0) {
      const double err = 100.0 *
                         std::abs(static_cast<double>(p.est_cycles - p.cycles)) /
                         static_cast<double>(p.cycles);
      out.screen_error_max_pct = std::max(out.screen_error_max_pct, err);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) {
      PointError pe = classify_point_error(configs[i].first, short_key(keys[i]),
                                           errors[i]);
      if (pe.phase == "simulate") pe.phase = "estimate";
      out.errors.push_back(std::move(pe));
      continue;
    }
    const std::ptrdiff_t j = kept_pos[i];
    if (j >= 0 && xerrors[j]) {
      out.errors.push_back(classify_point_error(
          configs[i].first, short_key(xkeys[j]), xerrors[j]));
      continue;
    }
    out.points.push_back(std::move(slots[i]));
  }
  return out;
}

std::vector<DesignPoint> pareto_front(const std::vector<DesignPoint>& points) {
  std::vector<DesignPoint> front;
  for (const DesignPoint& p : points)
    if (!dominated_by_any(p, points)) front.push_back(p);
  return front;
}

namespace {

// Shared by the clean and checked dump paths. The "errors" array is emitted
// only when non-empty, and the screened-mode additions ("screening" summary,
// per-point "phase"/"est_*") only when `screened` is non-null, so an
// unscreened zero-error checked sweep stays byte-identical to
// write_design_points_json — the golden dumps and the serve byte-identity
// suite compare against that exact form.
void write_points_doc(const std::string& sweep_name,
                      const std::vector<DesignPoint>& points,
                      const std::vector<PointError>& errors,
                      const SweepOutcome* screened, std::ostream& out) {
  util::JsonWriter w(out);
  w.begin_object();
  w.member("schema_version", kReportSchemaVersion);
  w.member("generator", "sqzsim");
  w.member("sweep", sweep_name);
  if (screened) {
    w.key("screening");
    w.begin_object();
    w.member("screen_points",
             static_cast<std::int64_t>(screened->screen_points));
    w.member("screen_kept", static_cast<std::int64_t>(screened->screen_kept));
    w.member("screen_error_max_pct", screened->screen_error_max_pct);
    w.end_object();
  }
  w.key("points");
  w.begin_array();
  for (const DesignPoint& p : points) {
    w.begin_object();
    w.member("label", p.label);
    w.member("cycles", p.cycles);
    w.member("energy", p.energy);
    w.member("utilization", p.utilization);
    if (screened) {
      w.member("phase",
               p.phase == DesignPoint::Phase::Screen ? "screen" : "exact");
      if (p.phase == DesignPoint::Phase::Exact) {
        w.member("est_cycles", p.est_cycles);
        w.member("est_energy", p.est_energy);
      }
    }
    w.member("pareto", !dominated_by_any(p, points));
    w.key("config");
    w.begin_object();
    config_to_json(p.config, w);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  if (!errors.empty()) {
    w.key("errors");
    w.begin_array();
    for (const PointError& e : errors) {
      w.begin_object();
      w.member("label", e.label);
      w.member("key", e.key);
      w.member("phase", e.phase);
      w.member("what", e.what);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  out << "\n";
}

}  // namespace

void write_design_points_json(const std::string& sweep_name,
                              const std::vector<DesignPoint>& points,
                              std::ostream& out) {
  write_points_doc(sweep_name, points, {}, nullptr, out);
}

void write_sweep_outcome_json(const std::string& sweep_name,
                              const SweepOutcome& outcome, std::ostream& out) {
  write_points_doc(sweep_name, outcome.points, outcome.errors,
                   outcome.screened ? &outcome : nullptr, out);
}

std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_rf_entries(
    const sim::AcceleratorConfig& base, const std::vector<int>& values) {
  std::vector<std::pair<std::string, sim::AcceleratorConfig>> out;
  for (int v : values) {
    sim::AcceleratorConfig c = base;
    c.rf_entries = v;
    out.emplace_back(util::format("RF=%d", v), c);
  }
  return out;
}

std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_array_n(
    const sim::AcceleratorConfig& base, const std::vector<int>& values) {
  std::vector<std::pair<std::string, sim::AcceleratorConfig>> out;
  for (int v : values) {
    sim::AcceleratorConfig c = base;
    c.array_n = v;
    out.emplace_back(util::format("%dx%d", v, v), c);
  }
  return out;
}

std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_sparsity(
    const sim::AcceleratorConfig& base, const std::vector<double>& values) {
  std::vector<std::pair<std::string, sim::AcceleratorConfig>> out;
  for (double v : values) {
    sim::AcceleratorConfig c = base;
    c.weight_sparsity = v;
    out.emplace_back(util::format("sparsity=%.0f%%", v * 100.0), c);
  }
  return out;
}

std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_dram_bandwidth(
    const sim::AcceleratorConfig& base, const std::vector<double>& bytes_per_cycle) {
  std::vector<std::pair<std::string, sim::AcceleratorConfig>> out;
  for (double v : bytes_per_cycle) {
    sim::AcceleratorConfig c = base;
    c.dram_bytes_per_cycle = v;
    out.emplace_back(util::format("DRAM=%.0fB/cyc", v), c);
  }
  return out;
}

}  // namespace sqz::core
