#include "core/roofline.h"

#include <algorithm>

namespace sqz::core {

int RooflineReport::memory_bound_count() const noexcept {
  int n = 0;
  for (const RooflinePoint& p : layers)
    if (p.memory_bound) ++n;
  return n;
}

RooflineReport roofline(const nn::Model& model, const sim::NetworkResult& result) {
  RooflineReport rep;
  const sim::AcceleratorConfig& cfg = result.config;
  rep.peak_macs_per_cycle = static_cast<double>(cfg.pe_count());
  rep.dram_bytes_per_cycle = cfg.dram_bytes_per_cycle;
  rep.balance_point = rep.peak_macs_per_cycle / rep.dram_bytes_per_cycle;

  for (const sim::LayerResult& l : result.layers) {
    if (!model.layer(l.layer_idx).is_macs_layer()) continue;
    RooflinePoint p;
    p.layer_idx = l.layer_idx;
    p.layer_name = l.layer_name;
    const double bytes =
        static_cast<double>(l.counts.dram_words) * cfg.data_bytes;
    // Executed MACs, not algorithmic ones: the OS dataflow's zero-skip
    // removes ~40% of the MACs from both the time and the energy axes, so a
    // consistent roofline counts what the array actually performs.
    const double executed = static_cast<double>(l.counts.mac_ops);
    // Fully resident layers move only their (always-streamed) weights; the
    // AI is still well-defined because weights dominate `bytes` then.
    p.arithmetic_intensity =
        bytes > 0.0 ? executed / bytes
                    : rep.balance_point * 1e3;  // effectively unbounded
    p.attained_macs_per_cycle =
        l.total_cycles > 0 ? executed / static_cast<double>(l.total_cycles)
                           : 0.0;
    p.roof_macs_per_cycle =
        std::min(rep.peak_macs_per_cycle,
                 p.arithmetic_intensity * rep.dram_bytes_per_cycle);
    p.memory_bound = p.arithmetic_intensity < rep.balance_point;
    rep.layers.push_back(std::move(p));
  }
  return rep;
}

}  // namespace sqz::core
