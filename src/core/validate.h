// Pre-flight feasibility validation for model x config design points.
//
// A design-space sweep feeds thousands of generated configurations into the
// simulator; an infeasible one used to surface as a std::invalid_argument
// thrown from deep inside a mapper, aborting the whole sweep with a message
// naming no design point. This pass cross-checks the pair *before* any
// simulation and returns every violation it finds (not just the first) as
// an actionable diagnostic, so the sweep engine can record a structured
// PointError{phase: "validate"} and move on (core/dse.h).
//
// Checks, mirroring what the simulator would otherwise trip over mid-run:
//   - every AcceleratorConfig::validate() constraint, collected instead of
//     thrown one at a time;
//   - WS weight streaming: the double-buffered weight reserve must hold one
//     N x N weight block;
//   - per-layer kernel vs padded input (a 7x7 kernel cannot slide over a
//     5x5 padded map) and non-positive derived dimensions;
//   - tile footprint: the minimal one-output-row tile of each layer must
//     fit the global buffer's activation region (capacity minus the weight
//     reserve) — the row loop is the only loop the tiler can split.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "nn/model.h"
#include "sim/config.h"

namespace sqz::core {

/// Thrown by the sweep engines when the pre-flight pass rejects a design
/// point; typed so the error collector can record phase "validate" (the
/// point never reached the simulator) instead of "simulate".
class ValidationError : public std::runtime_error {
 public:
  explicit ValidationError(const std::string& what)
      : std::runtime_error(what) {}
};

struct ValidationIssue {
  std::string where;  ///< "config" or "layer <name>".
  std::string what;   ///< Actionable diagnostic (what to change and why).
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;

  bool ok() const noexcept { return issues.empty(); }

  /// Every issue as "where: what", "; "-joined — the PointError message.
  std::string summary() const;
};

/// Configuration-only feasibility (no model required).
ValidationReport validate_config(const sim::AcceleratorConfig& config);

/// Full model x config cross-check. `model` must be finalized.
ValidationReport validate_design(const nn::Model& model,
                                 const sim::AcceleratorConfig& config);

}  // namespace sqz::core
