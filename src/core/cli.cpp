#include "core/cli.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/config_io.h"
#include "core/dse.h"
#include "core/sweepjournal.h"
#include "core/report.h"
#include "core/trace.h"
#include "sched/compile.h"
#include "sched/plan_io.h"
#include "core/squeezelerator.h"
#include "energy/model.h"
#include "nn/serialize.h"
#include "nn/zoo/zoo.h"
#include "sched/network_sim.h"
#include "serve/httpclient.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/threadpool.h"

namespace sqz::core {

namespace {

struct CliOptions {
  std::string model = "squeezenet10";
  std::string model_file;
  std::string config_file;
  int array_n = 0;        // 0 = keep config default
  int rf = 0;
  double sparsity = -1.0;
  std::string support;
  std::string objective = "cycles";
  int batch = 0;
  bool per_layer = false;
  bool compare = false;
  bool timeline = false;
  bool tile_search = false;
  bool fuse = false;
  bool program = false;
  bool csv = false;
  bool help = false;
  bool dump_rf_sweep = false;  ///< --dump-rf-sweep: sweep JSON to stdout.
  int jobs = 0;            ///< --jobs: 0 = SQZ_JOBS / hardware concurrency.
  std::string connect;     ///< --connect host:port: run on a sqzserved daemon.
  int retries = 3;         ///< --retries: extra attempts after a retryable
                           ///  failure (refused / timeout / 503); 0 = none.
  int retry_base_ms = 100; ///< --retry-base-ms: backoff floor per retry.
  std::string json_path;   ///< --json: machine-readable run report.
  std::string trace_path;  ///< --trace: Chrome trace-event schedule.
  std::string sweep_spec;  ///< --sweep KNOB=V1,V2,...: generic DSE sweep.
  std::string journal_dir; ///< --journal DIR: crash-safe sweep journal.
  bool resume = false;     ///< --resume: skip points the journal holds.
  bool progress = false;   ///< --progress: stderr heartbeat during sweeps.
  bool screen = false;     ///< --screen: two-phase analytically-screened sweep.
  double screen_keep = -1.0;  ///< --screen-keep FRAC: phase-2 band fraction.
  std::string save_plan_path;  ///< --save-plan: write the compiled plan.
  std::string load_plan_path;  ///< --load-plan: replay a compiled plan.
};

nn::Model load_model(const CliOptions& opt) {
  if (!opt.model_file.empty()) {
    std::ifstream in(opt.model_file);
    if (!in)
      throw std::invalid_argument("cannot open model file: " + opt.model_file);
    std::ostringstream text;
    text << in.rdbuf();
    return nn::parse_model(text.str());
  }
  return zoo_model_by_name(opt.model);
}

CliOptions parse_args(const std::vector<std::string>& args) {
  CliOptions opt;
  const auto value_of = [&](std::size_t& i) -> const std::string& {
    if (i + 1 >= args.size())
      throw std::invalid_argument("missing value for " + args[i]);
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") opt.help = true;
    else if (a == "--model") opt.model = value_of(i);
    else if (a == "--model-file") opt.model_file = value_of(i);
    else if (a == "--config") opt.config_file = value_of(i);
    else if (a == "--array") opt.array_n = std::stoi(value_of(i));
    else if (a == "--rf") opt.rf = std::stoi(value_of(i));
    else if (a == "--sparsity") opt.sparsity = std::stod(value_of(i));
    else if (a == "--support") opt.support = value_of(i);
    else if (a == "--objective") opt.objective = value_of(i);
    else if (a == "--batch") opt.batch = std::stoi(value_of(i));
    else if (a == "--per-layer") opt.per_layer = true;
    else if (a == "--compare") opt.compare = true;
    else if (a == "--timeline") opt.timeline = true;
    else if (a == "--tile-search") opt.tile_search = true;
    else if (a == "--fuse") opt.fuse = true;
    else if (a == "--program") opt.program = true;
    else if (a == "--csv") opt.csv = true;
    else if (a == "--jobs")
      opt.jobs = util::ThreadPool::parse_jobs(value_of(i), "--jobs");
    else if (a == "--connect") opt.connect = value_of(i);
    else if (a == "--retries") {
      const std::string& v = value_of(i);
      if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos)
        throw std::invalid_argument(
            "--retries expects a non-negative integer, got '" + v + "'");
      opt.retries = std::stoi(v);
    }
    else if (a == "--retry-base-ms")
      opt.retry_base_ms =
          util::ThreadPool::parse_jobs(value_of(i), "--retry-base-ms");
    else if (a == "--json") opt.json_path = value_of(i);
    else if (a == "--trace") opt.trace_path = value_of(i);
    else if (a == "--dump-rf-sweep") opt.dump_rf_sweep = true;
    else if (a == "--sweep") opt.sweep_spec = value_of(i);
    else if (a == "--journal") opt.journal_dir = value_of(i);
    else if (a == "--resume") opt.resume = true;
    else if (a == "--progress") opt.progress = true;
    else if (a == "--screen") opt.screen = true;
    else if (a == "--screen-keep") {
      opt.screen_keep = std::stod(value_of(i));
      if (!(opt.screen_keep > 0.0) || opt.screen_keep > 1.0)
        throw std::invalid_argument("--screen-keep expects a fraction in (0, 1]");
    }
    else if (a == "--save-plan") opt.save_plan_path = value_of(i);
    else if (a == "--load-plan") opt.load_plan_path = value_of(i);
    else throw std::invalid_argument("unknown argument: " + a);
  }
  if ((!opt.save_plan_path.empty() || !opt.load_plan_path.empty()) &&
      (opt.dump_rf_sweep || !opt.sweep_spec.empty()))
    throw std::invalid_argument(
        "--save-plan/--load-plan apply to single runs, not sweeps");
  if (opt.screen_keep >= 0.0 && !opt.screen)
    throw std::invalid_argument("--screen-keep requires --screen");
  if (opt.screen && opt.sweep_spec.empty() && !opt.dump_rf_sweep)
    throw std::invalid_argument(
        "--screen requires a sweep (--sweep or --dump-rf-sweep)");
  return opt;
}

sim::AcceleratorConfig build_config(const CliOptions& opt) {
  sim::AcceleratorConfig cfg = sim::AcceleratorConfig::squeezelerator();
  if (!opt.config_file.empty()) {
    std::ifstream in(opt.config_file);
    if (!in)
      throw std::invalid_argument("cannot open config file: " + opt.config_file);
    std::ostringstream text;
    text << in.rdbuf();
    cfg = config_from_ini(util::IniFile::parse(text.str()), cfg);
  }
  if (opt.array_n > 0) {
    cfg.array_n = opt.array_n;
    cfg.preload_width = opt.array_n;
    cfg.drain_width = opt.array_n;
  }
  if (opt.rf > 0) cfg.rf_entries = opt.rf;
  if (opt.batch > 0) cfg.batch = opt.batch;
  if (opt.sparsity >= 0.0) cfg.weight_sparsity = opt.sparsity;
  if (!opt.support.empty()) {
    if (opt.support == "hybrid") cfg.support = sim::DataflowSupport::Hybrid;
    else if (opt.support == "ws") cfg.support = sim::DataflowSupport::WsOnly;
    else if (opt.support == "os") cfg.support = sim::DataflowSupport::OsOnly;
    else throw std::invalid_argument("--support must be hybrid|ws|os");
  }
  cfg.validate();
  return cfg;
}

// --connect: post the run to a sqzserved daemon (serve/server.h) instead of
// simulating locally. The daemon executes the same core paths, so the JSON
// it returns is byte-identical to what a local `--json` run writes.
int run_remote(const CliOptions& opt, std::ostream& out, std::ostream& err) {
  const char* local_only = nullptr;
  if (opt.per_layer) local_only = "--per-layer";
  else if (opt.compare) local_only = "--compare";
  else if (opt.csv) local_only = "--csv";
  else if (opt.program) local_only = "--program";
  else if (!opt.trace_path.empty()) local_only = "--trace";
  else if (!opt.sweep_spec.empty()) local_only = "--sweep";
  else if (!opt.journal_dir.empty()) local_only = "--journal";
  else if (opt.resume) local_only = "--resume";
  else if (opt.progress) local_only = "--progress";
  else if (!opt.save_plan_path.empty()) local_only = "--save-plan";
  else if (!opt.load_plan_path.empty()) local_only = "--load-plan";
  if (local_only)
    throw std::invalid_argument(
        std::string(local_only) +
        " is local-only; with --connect the daemon returns the JSON report");

  const serve::HostPort endpoint =
      serve::parse_host_port(opt.connect, "--connect");

  if (opt.objective != "cycles" && opt.objective != "energy")
    throw std::invalid_argument("--objective must be cycles|energy");
  const sim::AcceleratorConfig cfg = build_config(opt);

  std::ostringstream body;
  util::JsonWriter w(body, /*indent=*/0);
  w.begin_object();
  if (!opt.model_file.empty()) {
    std::ifstream in(opt.model_file);
    if (!in)
      throw std::invalid_argument("cannot open model file: " + opt.model_file);
    std::ostringstream text;
    text << in.rdbuf();
    w.member("model_text", text.str());
  } else {
    w.member("model", opt.model);
  }
  w.member("config_ini", config_to_ini(cfg));
  if (opt.dump_rf_sweep) {
    // Mirrors the local path: the RF {8,16} sweep at the default objective.
    // Screen members are appended only when screening is requested, so an
    // unscreened request body — and therefore its cache key — is unchanged.
    w.key("sweep");
    w.begin_object();
    w.member("knob", "rf_entries");
    w.key("values");
    w.begin_array();
    w.value(8);
    w.value(16);
    w.end_array();
    if (opt.screen) {
      w.member("screen", true);
      if (opt.screen_keep >= 0.0) w.member("screen_keep", opt.screen_keep);
    }
    w.end_object();
  } else {
    w.key("options");
    w.begin_object();
    w.member("objective", opt.objective);
    w.member("timeline", opt.timeline || opt.tile_search);
    w.member("tile_search", opt.tile_search);
    w.member("fuse", opt.fuse);
    w.end_object();
  }
  w.end_object();

  serve::HttpRequest req;
  req.method = "POST";
  req.target = opt.dump_rf_sweep ? "/v1/sweep" : "/v1/simulate";
  req.headers.emplace_back("Content-Type", "application/json");
  req.body = body.str();

  // Bounded retries with decorrelated jitter on refused connections,
  // timeouts, and 503 sheds (serve/http.h). The service is idempotent —
  // the daemon's content-addressed cache makes a replayed request free —
  // so retrying is always safe; 4xx responses are never retried.
  serve::RetryPolicy policy;
  policy.max_attempts = opt.retries + 1;
  policy.base_ms = opt.retry_base_ms;
  const serve::HttpResponse resp = serve::http_fetch_retry(
      endpoint.host, endpoint.port, req, /*timeout_ms=*/60000, policy);
  if (resp.status != 200) {
    err << "sqzsim: daemon returned " << resp.status << " " << resp.reason
        << ": " << resp.body;
    return 1;
  }
  if (!opt.json_path.empty() && !opt.dump_rf_sweep) {
    std::ofstream f(opt.json_path);
    if (!f)
      throw std::invalid_argument("cannot open --json output: " + opt.json_path);
    f << resp.body;
  } else {
    out << resp.body;
  }
  return 0;
}

// --sweep KNOB=V1,V2,... -> labeled configurations, mirroring the serve
// API's knob set (serve/api.h) so the CLI and /v1/sweep accept the same
// sweeps.
std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_from_spec(
    const std::string& spec, const sim::AcceleratorConfig& base,
    std::string& knob_out) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size())
    throw std::invalid_argument("--sweep expects KNOB=V1,V2,..., got '" +
                                spec + "'");
  const std::string knob = spec.substr(0, eq);
  std::vector<double> values;
  for (const std::string& tok : util::split(spec.substr(eq + 1), ',')) {
    std::size_t used = 0;
    double v = 0.0;
    try {
      v = std::stod(tok, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != tok.size() || tok.empty())
      throw std::invalid_argument("--sweep " + knob + ": bad value '" + tok +
                                  "'");
    values.push_back(v);
  }
  knob_out = knob;

  const auto integral = [&]() {
    std::vector<int> out;
    for (const double v : values) {
      const int i = static_cast<int>(v);
      if (static_cast<double>(i) != v)
        throw std::invalid_argument("--sweep " + knob +
                                    " expects integer values");
      out.push_back(i);
    }
    return out;
  };
  if (knob == "rf_entries") return sweep_rf_entries(base, integral());
  if (knob == "array_n") return sweep_array_n(base, integral());
  if (knob == "sparsity") return sweep_sparsity(base, values);
  if (knob == "dram_bytes_per_cycle") return sweep_dram_bandwidth(base, values);
  throw std::invalid_argument(
      "--sweep knob must be one of rf_entries|array_n|sparsity|"
      "dram_bytes_per_cycle, got '" + knob + "'");
}

// The --sweep / --dump-rf-sweep execution path: checked evaluation with
// optional journaling, resume, and a stderr heartbeat. Exit code 0 as long
// as at least one point succeeded (failures are recorded in the dump's
// "errors" array); 1 when every point failed.
int run_sweep_cli(const CliOptions& opt, const nn::Model& model,
                  const sim::AcceleratorConfig& cfg, std::ostream& out,
                  std::ostream& err) {
  std::string knob = "rf_entries";
  const auto configs = opt.sweep_spec.empty()
                           ? sweep_rf_entries(cfg, {8, 16})
                           : sweep_from_spec(opt.sweep_spec, cfg, knob);

  SweepOptions sopt;
  if (opt.objective == "cycles") sopt.objective = sched::Objective::Cycles;
  else if (opt.objective == "energy") sopt.objective = sched::Objective::Energy;
  else throw std::invalid_argument("--objective must be cycles|energy");
  sopt.tile_timeline = opt.timeline || opt.tile_search;
  sopt.tile_search = opt.tile_search;
  sopt.fuse_pool_drain = opt.fuse;
  sopt.screen = opt.screen;
  if (opt.screen_keep >= 0.0) sopt.screen_keep = opt.screen_keep;

  if (opt.resume && opt.journal_dir.empty())
    throw std::invalid_argument("--resume requires --journal DIR");
  std::unique_ptr<SweepJournal> journal;
  if (!opt.journal_dir.empty()) {
    if (!opt.resume) {
      // A fresh (non-resumed) run must not inherit a previous run's
      // entries: stale metrics for a matching key would silently replace
      // re-evaluation.
      std::error_code ec;
      std::filesystem::remove(SweepJournal::journal_path(opt.journal_dir), ec);
    }
    journal = std::make_unique<SweepJournal>(opt.journal_dir);
    sopt.journal = journal.get();
  }

  std::mutex progress_mu;
  const auto start = std::chrono::steady_clock::now();
  std::int64_t last_print_ms = -1000000;
  if (opt.progress) {
    sopt.progress = [&](std::size_t done, std::size_t total,
                        std::size_t errors) {
      const std::int64_t ms = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start).count();
      std::lock_guard<std::mutex> lock(progress_mu);
      if (done < total && ms - last_print_ms < 500) return;
      last_print_ms = ms;
      err << util::format("sqzsim: sweep %zu/%zu done, %zu errors, %.1fs elapsed\n",
                          done, total, errors, static_cast<double>(ms) / 1000.0);
    };
  }

  const SweepOutcome outcome = evaluate_designs_checked(model, configs, sopt);
  if (opt.resume) {
    err << "sqzsim: resumed " << outcome.resumed << " completed points\n";
    // A journal written by a newer build (e.g. a coordinator's membership
    // events) replays fine; say what was passed over so nobody mistakes
    // skipped records for lost points.
    if (journal && journal->recovery().skipped > 0)
      err << "sqzsim: skipped " << journal->recovery().skipped
          << " journal records of unknown type (written by a newer build)\n";
  }
  if (outcome.screened)
    err << util::format(
        "sqzsim: screened %zu points, re-simulated %zu cycle-exactly "
        "(max estimator error %.2f%%)\n",
        outcome.screen_points, outcome.screen_kept,
        outcome.screen_error_max_pct);
  if (!outcome.errors.empty())
    err << "sqzsim: " << outcome.errors.size() << " of " << configs.size()
        << " design points failed (see the dump's \"errors\" array)\n";

  const std::string name =
      opt.model_file.empty() ? opt.model : model.name();
  write_sweep_outcome_json(knob + " on " + name, outcome, out);
  return outcome.points.empty() && !configs.empty() ? 1 : 0;
}

void emit_csv(const nn::Model& model, const sim::NetworkResult& r,
              std::ostream& out) {
  util::CsvWriter csv(out);
  csv.write_row({"layer", "kind", "dataflow", "total_cycles", "compute_cycles",
                 "dram_words", "utilization", "energy"});
  for (const auto& l : r.layers) {
    csv.write_row(
        {l.layer_name, nn::layer_kind_name(model.layer(l.layer_idx).kind),
         l.on_pe_array ? sim::dataflow_abbrev(l.dataflow) : "simd",
         std::to_string(l.total_cycles), std::to_string(l.compute_cycles),
         std::to_string(l.counts.dram_words),
         util::format("%.4f", l.utilization(r.config.pe_count())),
         util::format("%.0f", energy::energy_of(l.counts).total())});
  }
}

}  // namespace

nn::Model zoo_model_by_name(const std::string& name) {
  using namespace nn::zoo;
  if (name == "alexnet") return alexnet();
  if (name == "mobilenet") return mobilenet();
  if (name == "tinydarknet") return tiny_darknet();
  if (name == "squeezenet10") return squeezenet_v10();
  if (name == "squeezenet11") return squeezenet_v11();
  if (name == "sqnxt" || name == "sqnxt23") return squeezenext();
  throw std::invalid_argument(
      "unknown model '" + name +
      "' (alexnet mobilenet tinydarknet squeezenet10 squeezenet11 sqnxt, or "
      "--model-file)");
}

std::string cli_usage() {
  return
      "usage: sqzsim [options]\n"
      "  --model NAME        zoo network: alexnet mobilenet tinydarknet\n"
      "                      squeezenet10 squeezenet11 sqnxt (default\n"
      "                      squeezenet10)\n"
      "  --model-file FILE   load a network description (nn/serialize.h format)\n"
      "  --config FILE       accelerator INI (core/config_io.h format)\n"
      "  --array N           PE array N x N (also scales port widths)\n"
      "  --rf N              per-PE register file entries\n"
      "  --sparsity F        weight zero fraction in [0,1)\n"
      "  --support MODE      hybrid | ws | os\n"
      "  --objective OBJ     cycles | energy (per-layer dataflow choice)\n"
      "  --per-layer         print the per-layer schedule table\n"
      "  --compare           also simulate the WS-only / OS-only references\n"
      "  --batch N           images per inference (default 1, the paper's\n"
      "                      embedded operating point)\n"
      "  --timeline          re-time layers through the tile-level event\n"
      "                      timeline (double-buffered)\n"
      "  --tile-search       also search per-layer tile sizes for the\n"
      "                      shortest makespan (implies --timeline)\n"
      "  --fuse              fuse pools into their producing conv's drain\n"
      "  --program           print the compiled static schedule (the layer\n"
      "                      command stream a sequencer would execute)\n"
      "  --csv               per-layer CSV instead of tables\n"
      "  --jobs N            worker threads for parallel evaluation (sweeps,\n"
      "                      co-design tuning, multicore); default SQZ_JOBS or\n"
      "                      hardware concurrency. Results are bit-identical\n"
      "                      at any job count\n"
      "  --json FILE         write the machine-readable run report (per-layer\n"
      "                      cycles/counts/energy, config provenance; see\n"
      "                      ARCHITECTURE.md \"Observability\")\n"
      "  --trace FILE        write the schedule as a Chrome trace-event file\n"
      "                      (open at ui.perfetto.dev or chrome://tracing;\n"
      "                      tile-level detail with --timeline)\n"
      "  --dump-rf-sweep     evaluate the RF {8,16} sweep on the selected\n"
      "                      model and print the DSE sweep JSON to stdout\n"
      "                      (regenerates tests/data/rf_sweep_golden.json\n"
      "                      with --model sqnxt23)\n"
      "  --sweep KNOB=V1,V2,...\n"
      "                      evaluate a design-space sweep and print the DSE\n"
      "                      sweep JSON; knobs: rf_entries array_n sparsity\n"
      "                      dram_bytes_per_cycle. Each point is validated\n"
      "                      pre-flight and fault-isolated: a failing point\n"
      "                      lands in the dump's \"errors\" array instead of\n"
      "                      aborting the sweep. Honors --timeline,\n"
      "                      --tile-search, and --fuse for every point\n"
      "  --journal DIR       write-ahead journal for sweeps: append each\n"
      "                      completed point to DIR/sweep.sqzj so a killed\n"
      "                      sweep can be resumed. Without --resume any\n"
      "                      existing journal is discarded first\n"
      "  --resume            with --journal: skip points the journal already\n"
      "                      holds; the final dump is byte-identical to an\n"
      "                      uninterrupted run\n"
      "  --progress          stderr heartbeat during sweeps (done/total,\n"
      "                      errors, elapsed seconds)\n"
      "  --screen            two-phase sweep: score every point with the\n"
      "                      analytical estimator (docs/ESTIMATOR.md), then\n"
      "                      re-simulate only the retained Pareto band\n"
      "                      cycle-exactly. The dump gains a \"screening\"\n"
      "                      summary and per-point \"phase\" markers\n"
      "  --screen-keep FRAC  fraction of screened points retained for the\n"
      "                      cycle-exact phase, in (0, 1] (default 0.25);\n"
      "                      whole Pareto fronts are kept, never split\n"
      "  --save-plan FILE    write the compiled plan (schedule + config +\n"
      "                      model identity + fidelity flags) as a versioned,\n"
      "                      checksummed binary artifact (docs/PLANS.md).\n"
      "                      Stdout is unchanged; a confirmation goes to\n"
      "                      stderr\n"
      "  --load-plan FILE    replay a saved plan instead of re-running the\n"
      "                      compile search. The artifact must match the\n"
      "                      requested model, config, and fidelity flags;\n"
      "                      output is byte-identical to a fresh run\n"
      "  --connect HOST:PORT run on a sqzserved daemon instead of locally;\n"
      "                      prints the daemon's JSON report (or sweep JSON\n"
      "                      with --dump-rf-sweep), byte-identical to a local\n"
      "                      --json run. Table flags (--per-layer, --compare,\n"
      "                      --csv, --program, --trace) are local-only\n"
      "  --retries N         with --connect: retry a refused connection,\n"
      "                      timeout, or 503 shed up to N times with\n"
      "                      exponential backoff + jitter (default 3; 0\n"
      "                      disables). 4xx errors are never retried\n"
      "  --retry-base-ms MS  backoff floor for --retries (default 100)\n";
}

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  try {
    const CliOptions opt = parse_args(args);
    if (opt.help) {
      out << cli_usage();
      return 0;
    }
    util::ThreadPool::set_global_jobs(opt.jobs);

    if (!opt.connect.empty()) return run_remote(opt, out, err);

    const nn::Model model = load_model(opt);
    const sim::AcceleratorConfig cfg = build_config(opt);

    if (opt.dump_rf_sweep || !opt.sweep_spec.empty())
      return run_sweep_cli(opt, model, cfg, out, err);

    sched::SimulationOptions sim_opt;
    if (opt.objective == "cycles") sim_opt.objective = sched::Objective::Cycles;
    else if (opt.objective == "energy")
      sim_opt.objective = sched::Objective::Energy;
    else throw std::invalid_argument("--objective must be cycles|energy");
    sim_opt.tile_timeline = opt.timeline || opt.tile_search;
    sim_opt.tile_search = opt.tile_search;
    sim_opt.fuse_pool_drain = opt.fuse;

    // --load-plan replays the artifact's recorded dataflow decisions; every
    // report below is byte-identical to a fresh compile by determinism
    // (tests/sched/test_plan_io.cpp), the compile search just never runs.
    const sim::NetworkResult result = [&] {
      if (!opt.load_plan_path.empty()) {
        const sched::PlanArtifact artifact =
            sched::load_plan(opt.load_plan_path);
        sched::check_plan_serves(artifact, model, cfg, sim_opt);
        return sched::simulate_with_plan(model, cfg, sim_opt,
                                         artifact.program);
      }
      return sched::simulate_network(model, cfg, sim_opt);
    }();

    if (!opt.save_plan_path.empty()) {
      sched::save_plan(opt.save_plan_path,
                       sched::plan_from_result(model, cfg, sim_opt, result));
      // Confirmation goes to the error stream: stdout must stay
      // byte-identical with and without --save-plan.
      err << "sqzsim: wrote compiled plan to " << opt.save_plan_path << "\n";
    }

    if (!opt.json_path.empty()) {
      std::ofstream f(opt.json_path);
      if (!f)
        throw std::invalid_argument("cannot open --json output: " +
                                    opt.json_path);
      write_json_report(model, result, sim_opt.units, f);
    }
    if (!opt.trace_path.empty()) {
      std::ofstream f(opt.trace_path);
      if (!f)
        throw std::invalid_argument("cannot open --trace output: " +
                                    opt.trace_path);
      write_chrome_trace(model, result, f);
    }

    if (opt.csv) {
      emit_csv(model, result, out);
      return 0;
    }

    out << model.name() << " on " << cfg.to_string() << "\n";
    out << util::format(
        "total: %s cycles (%.3f ms @ 1 GHz), utilization %s, energy %s\n",
        util::with_commas(result.total_cycles()).c_str(), result.latency_ms(),
        util::percent(result.utilization()).c_str(),
        util::si(energy::network_energy(result).total()).c_str());

    if (opt.compare) {
      const ComparisonResult cmp = compare_dataflows(model, cfg, sim_opt.objective);
      out << util::format(
          "references: %s faster than WS-only, %s faster than OS-only\n",
          util::times(cmp.speedup_vs_ws()).c_str(),
          util::times(cmp.speedup_vs_os()).c_str());
    }
    if (opt.per_layer) {
      out << "\n";
      per_layer_table(model, result, "Per-layer schedule").print(out);
    }
    if (opt.program) {
      out << "\n" << sched::compile(model, cfg, sim_opt).listing();
    }
    return 0;
  } catch (const std::exception& e) {
    err << "sqzsim: " << e.what() << "\n" << cli_usage();
    return 1;
  }
}

}  // namespace sqz::core
