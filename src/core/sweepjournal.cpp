#include "core/sweepjournal.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "util/faultinject.h"
#include "util/hash.h"
#include "util/logging.h"

namespace sqz::core {

namespace fs = std::filesystem;

namespace {

constexpr char kPointMagic[] = "sqzw1";
constexpr char kMembershipMagic[] = "sqzm1";
constexpr std::size_t kMagicLen = 5;  ///< "sqz" + two type characters.
constexpr std::size_t kMaxHeader = 96;

std::string render_record(const char* magic, const std::string& key,
                          const std::string& value) {
  char header[kMaxHeader];
  std::snprintf(header, sizeof(header), "%s %zu %zu %016llx\n", magic,
                key.size(), value.size(),
                static_cast<unsigned long long>(
                    util::fnv1a64(key + value)));
  std::string record = header;
  record += key;
  record += value;
  return record;
}

// Parse one record at `offset`. On success returns the offset one past the
// record and fills `magic` with the record's 5-byte type tag; 0 on any
// framing or checksum violation (the caller stops trusting the file from
// `offset` on). The type tag is *not* interpreted here: any "sqz??" record
// whose frame and checksum verify parses, so recovery can skip types this
// build does not know (forward compatibility).
std::size_t parse_record(const std::string& raw, std::size_t offset,
                         std::string& magic, std::string& key,
                         std::string& value) {
  const std::size_t nl = raw.find('\n', offset);
  if (nl == std::string::npos || nl - offset > kMaxHeader) return 0;
  unsigned long long key_len = 0, value_len = 0, stored_sum = 0;
  char magic_buf[8] = {0};
  if (std::sscanf(raw.c_str() + offset, "%7s %llu %llu %16llx", magic_buf,
                  &key_len, &value_len, &stored_sum) != 4 ||
      std::strlen(magic_buf) != kMagicLen ||
      std::strncmp(magic_buf, "sqz", 3) != 0)
    return 0;
  const std::size_t payload_at = nl + 1;
  // Length guards before the sum: hostile lengths must not wrap the check.
  if (key_len > raw.size() || value_len > raw.size()) return 0;
  if (key_len + value_len > raw.size() - payload_at) return 0;  // torn tail
  const std::string_view payload(raw.data() + payload_at, key_len + value_len);
  if (util::fnv1a64(payload) != stored_sum) return 0;
  magic.assign(magic_buf);
  key.assign(payload.substr(0, key_len));
  value.assign(payload.substr(key_len, value_len));
  return payload_at + key_len + value_len;
}

}  // namespace

std::string SweepJournal::journal_path(const std::string& dir) {
  return dir + "/sweep.sqzj";
}

std::string SweepJournal::lock_path(const std::string& dir) {
  return dir + "/sweep.lock";
}

SweepJournal::SweepJournal(const std::string& dir)
    : path_(journal_path(dir)) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec || !fs::is_directory(dir))
    throw SweepJournalError("sweepjournal: cannot create journal dir '" +
                             dir + "'");

  // Writer fence, before the first byte is read: an exclusive flock held
  // for this object's lifetime. Recovery under the lock cannot race a
  // concurrent append, and a second writer (a partitioned standby trying
  // to promote onto a live primary's journal) is refused outright. flock
  // conflicts between separate open descriptions even within one process,
  // and evaporates with a SIGKILLed holder — no stale-lock cleanup.
  lock_fd_ = ::open(lock_path(dir).c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
                    0644);
  if (lock_fd_ < 0)
    throw SweepJournalError("sweepjournal: cannot open " + lock_path(dir) +
                             ": " + std::strerror(errno));
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    const int err = errno;
    ::close(lock_fd_);
    lock_fd_ = -1;
    if (err == EWOULDBLOCK)
      throw SweepJournalLocked(
          "sweepjournal: " + path_ +
          " is held by another live writer (journal dirs are single-writer)");
    throw SweepJournalError("sweepjournal: cannot lock " + lock_path(dir) +
                             ": " + std::strerror(err));
  }
  // From here on a throw must release the lock: a half-constructed object
  // never runs its destructor.
  try {
    open_and_recover();
  } catch (...) {
    ::close(lock_fd_);
    lock_fd_ = -1;
    throw;
  }
}

SweepJournal::~SweepJournal() {
  if (lock_fd_ >= 0) ::close(lock_fd_);  // releases the flock
}

void SweepJournal::open_and_recover() {
  std::error_code ec;
  // Recovery: replay the valid record prefix, truncate everything after it.
  std::string raw;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      std::ostringstream bytes;
      bytes << in.rdbuf();
      if (in.bad())
        throw SweepJournalError("sweepjournal: cannot read " + path_);
      raw = bytes.str();
    }
  }
  std::size_t trusted = 0;
  while (trusted < raw.size()) {
    std::string magic, key, value;
    const std::size_t next = parse_record(raw, trusted, magic, key, value);
    if (next == 0) break;
    if (magic == kPointMagic) {
      entries_[std::move(key)] = std::move(value);
      ++recovery_.records;
    } else if (magic == kMembershipMagic) {
      membership_.emplace_back(std::move(key), std::move(value));
      ++recovery_.records;
    } else {
      // A record type this build does not know, behind a valid checksum: a
      // newer writer appended it. Skip it — failing recovery here would
      // strand every point already journaled (forward compatibility).
      ++recovery_.skipped;
      SQZ_LOG(Warn) << "sweepjournal: skipping unknown record type '" << magic
                    << "' (" << (next - trusted) << " bytes) in " << path_;
    }
    trusted = next;
  }
  if (trusted < raw.size()) {
    recovery_.torn = true;
    recovery_.dropped_bytes = raw.size() - trusted;
    fs::resize_file(path_, trusted, ec);
    if (ec)
      throw SweepJournalError("sweepjournal: cannot truncate torn tail of " +
                               path_ + ": " + ec.message());
    SQZ_LOG(Warn) << "sweepjournal: dropped torn tail ("
                  << recovery_.dropped_bytes << " bytes) of " << path_
                  << "; " << recovery_.records << " records recovered";
  }

  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_)
    throw SweepJournalError("sweepjournal: cannot open " + path_ +
                             " for append");
}

void SweepJournal::append_record(const char* magic, const std::string& key,
                                 const std::string& value) {
  std::string record = render_record(magic, key, value);

  // "sweepjournal.append" fault point: ShortIo publishes a torn record (the
  // crash-mid-write wire — recovery must drop it on the next open), Errno
  // models a full disk (the append fails loudly; crash safety that silently
  // stopped journaling would be a lie).
  if (util::fault::enabled()) {
    const util::fault::Action a = util::fault::at("sweepjournal.append");
    if (a.kind == util::fault::Kind::Errno)
      throw SweepJournalError("sweepjournal: append to " + path_ +
                               " failed (injected)");
    if (a.kind == util::fault::Kind::ShortIo)
      record.resize(std::min(record.size(), a.bytes));
  }

  std::lock_guard<std::mutex> lock(mu_);
  out_.write(record.data(), static_cast<std::streamsize>(record.size()));
  out_.flush();
  if (!out_.good())
    throw SweepJournalError("sweepjournal: append to " + path_ + " failed");
  if (std::strcmp(magic, kPointMagic) == 0)
    entries_[key] = value;
  else if (std::strcmp(magic, kMembershipMagic) == 0)
    membership_.emplace_back(key, value);
}

void SweepJournal::append(const std::string& key, const std::string& value) {
  append_record(kPointMagic, key, value);
}

void SweepJournal::append_membership(const std::string& key,
                                     const std::string& value) {
  append_record(kMembershipMagic, key, value);
}

}  // namespace sqz::core
