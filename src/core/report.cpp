#include "core/report.h"

#include <ostream>
#include <sstream>

#include <thread>

#include "core/config_io.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/threadpool.h"

namespace sqz::core {

using util::format;
using util::Table;

Table per_layer_table(const nn::Model& model, const sim::NetworkResult& result,
                      const std::string& title) {
  Table t(title);
  t.set_header({"layer", "dataflow", "kcycles", "util", "dram kwords"});
  std::int64_t other_cycles = 0;
  for (const sim::LayerResult& r : result.layers) {
    if (!model.layer(r.layer_idx).is_macs_layer()) {
      other_cycles += r.total_cycles;
      continue;
    }
    t.add_row({r.layer_name, sim::dataflow_abbrev(r.dataflow),
               format("%.1f", static_cast<double>(r.total_cycles) / 1e3),
               util::percent(r.utilization(result.config.pe_count())),
               format("%.1f", static_cast<double>(r.counts.dram_words) / 1e3)});
  }
  t.add_separator();
  t.add_row({"(other layers)", "-",
             format("%.1f", static_cast<double>(other_cycles) / 1e3), "-", "-"});
  t.add_row({"TOTAL", "-",
             format("%.1f", static_cast<double>(result.total_cycles()) / 1e3),
             util::percent(result.utilization()), "-"});
  return t;
}

Table per_layer_comparison_table(const nn::Model& model, const ComparisonResult& cmp,
                                 const std::string& title) {
  Table t(title);
  t.set_header({"layer", "WS kcyc", "OS kcyc", "SQZ kcyc", "SQZ df", "SQZ util"});
  const int pes = cmp.hybrid.config.pe_count();
  for (std::size_t i = 0; i < cmp.hybrid.layers.size(); ++i) {
    const sim::LayerResult& h = cmp.hybrid.layers[i];
    if (!model.layer(h.layer_idx).is_macs_layer()) continue;
    const sim::LayerResult& ws = cmp.ws_only.layers[i];
    const sim::LayerResult& os = cmp.os_only.layers[i];
    t.add_row({h.layer_name,
               format("%.1f", static_cast<double>(ws.total_cycles) / 1e3),
               format("%.1f", static_cast<double>(os.total_cycles) / 1e3),
               format("%.1f", static_cast<double>(h.total_cycles) / 1e3),
               sim::dataflow_abbrev(h.dataflow), util::percent(h.utilization(pes))});
  }
  t.add_separator();
  t.add_row({"TOTAL",
             format("%.1f", static_cast<double>(cmp.ws_only.total_cycles()) / 1e3),
             format("%.1f", static_cast<double>(cmp.os_only.total_cycles()) / 1e3),
             format("%.1f", static_cast<double>(cmp.hybrid.total_cycles()) / 1e3),
             "-", util::percent(cmp.hybrid.utilization())});
  return t;
}

Table2Row table2_row(const nn::Model& model, const ComparisonResult& cmp) {
  Table2Row row;
  row.network = model.name();
  row.speedup_vs_os = cmp.speedup_vs_os();
  row.speedup_vs_ws = cmp.speedup_vs_ws();
  row.energy_red_vs_os = cmp.energy_reduction_vs_os();
  row.energy_red_vs_ws = cmp.energy_reduction_vs_ws();
  return row;
}

Table energy_table(const sim::NetworkResult& result, const energy::UnitEnergies& units,
                   const std::string& title) {
  const energy::EnergyBreakdown e = energy::network_energy(result, units);
  Table t(title);
  t.set_header({"level", "energy (MAC units)", "share"});
  const auto add = [&](const char* name, double v) {
    t.add_row({name, util::si(v), util::percent(e.total() > 0 ? v / e.total() : 0)});
  };
  add("MAC", e.mac);
  add("RF", e.rf);
  add("inter-PE", e.inter_pe);
  add("psum accumulator", e.acc);
  add("global buffer", e.gb);
  add("DRAM", e.dram);
  t.add_separator();
  t.add_row({"TOTAL", util::si(e.total()), "100.0%"});
  return t;
}

void write_json_report(const nn::Model& model, const sim::NetworkResult& result,
                       const energy::UnitEnergies& units, std::ostream& out) {
  util::JsonWriter w(out);
  w.begin_object();
  w.member("schema_version", kReportSchemaVersion);
  w.member("generator", "sqzsim");

  // Provenance of the producing process, not of the result: metrics are
  // bit-identical at any job count, so `jobs` here is purely diagnostic.
  w.key("provenance");
  w.begin_object();
  w.member("jobs", util::ThreadPool::global_jobs());
  w.member("hardware_concurrency",
           static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  w.end_object();

  w.key("model");
  w.begin_object();
  w.member("name", result.model_name);
  w.member("layers", static_cast<std::int64_t>(result.layers.size()));
  w.end_object();

  w.key("config");
  w.begin_object();
  config_to_json(result.config, w);
  w.end_object();

  w.key("unit_energies");
  w.begin_object();
  energy::units_to_json(units, w);
  w.end_object();

  w.key("totals");
  w.begin_object();
  w.member("cycles", result.total_cycles());
  w.member("latency_ms", result.latency_ms());
  w.member("useful_macs", result.total_useful_macs());
  w.member("utilization", result.utilization());
  w.key("counts");
  w.begin_object();
  sim::counts_to_json(result.total_counts(), w);
  w.end_object();
  w.key("energy");
  w.begin_object();
  energy::breakdown_to_json(energy::network_energy(result, units), w);
  w.end_object();
  w.end_object();

  w.key("layers");
  w.begin_array();
  const int pes = result.config.pe_count();
  for (const sim::LayerResult& l : result.layers) {
    w.begin_object();
    w.member("index", l.layer_idx);
    w.member("name", l.layer_name);
    w.member("kind", nn::layer_kind_name(model.layer(l.layer_idx).kind));
    w.member("engine", l.on_pe_array ? "pe-array" : "simd");
    w.key("dataflow");
    if (l.on_pe_array)
      w.value(sim::dataflow_abbrev(l.dataflow));
    else
      w.null_value();
    w.member("useful_macs", l.useful_macs);
    w.member("compute_cycles", l.compute_cycles);
    w.member("dram_cycles", l.dram_cycles);
    w.member("total_cycles", l.total_cycles);
    w.member("utilization", l.utilization(pes));
    w.key("counts");
    w.begin_object();
    sim::counts_to_json(l.counts, w);
    w.end_object();
    w.key("energy");
    w.begin_object();
    energy::breakdown_to_json(energy::energy_of(l.counts, units), w);
    w.end_object();
    w.end_object();
  }
  w.end_array();

  w.end_object();
  out << "\n";
}

std::string json_report_string(const nn::Model& model,
                               const sim::NetworkResult& result,
                               const energy::UnitEnergies& units) {
  std::ostringstream os;
  write_json_report(model, result, units, os);
  return os.str();
}

}  // namespace sqz::core
