// Whole-network simulation: residency planning + per-layer dataflow
// selection + per-layer simulation, producing the NetworkResult that every
// benchmark table and figure is built from.
#pragma once

#include <vector>

#include "energy/model.h"
#include "nn/model.h"
#include "sched/selector.h"
#include "sim/config.h"
#include "sim/counters.h"

namespace sqz::sched {

/// Simulate one inference (batch 1) of `model` on `config`.
///
/// On a Hybrid config the dataflow is chosen per layer by `objective`
/// (paper default: fastest execution). WsOnly/OsOnly configs model the
/// reference architectures.
sim::NetworkResult simulate_network(const nn::Model& model,
                                    const sim::AcceleratorConfig& config,
                                    Objective objective = Objective::Cycles,
                                    const energy::UnitEnergies& units = {});

/// Extended knobs for simulate_network.
struct SimulationOptions {
  Objective objective = Objective::Cycles;
  energy::UnitEnergies units{};
  /// Re-time each layer through the tile-level event timeline
  /// (sim/timeline.h) instead of the flat max(compute, dma) model. Exposes
  /// halo re-read traffic and DMA/compute interleaving.
  bool tile_timeline = false;
  /// Meaningful with tile_timeline: false models a single staging buffer
  /// (ablates the paper's double buffering).
  bool double_buffered = true;
  /// Meaningful with tile_timeline: search the band count per layer for the
  /// shortest makespan (the paper's tile-size selection) instead of the
  /// fixed streaming heuristic.
  bool tile_search = false;
  /// Fuse max/avg pools into their producing conv's drain path
  /// (sched/fusion.h): the intermediate full-resolution tensor never
  /// reaches the global buffer.
  bool fuse_pool_drain = false;
};

sim::NetworkResult simulate_network(const nn::Model& model,
                                    const sim::AcceleratorConfig& config,
                                    const SimulationOptions& options);

/// simulate_network with the per-layer dataflow search replaced by a replay
/// of `dataflow_by_layer` (one entry per model layer; entries for layers
/// with no choice are ignored — see select_dataflows' `pinned`). This is
/// the compiled-plan serve path: scheduling decisions come from the plan,
/// each hybrid conv is simulated once instead of twice, and the result is
/// byte-identical to the searching path that produced the pins.
sim::NetworkResult simulate_network_pinned(
    const nn::Model& model, const sim::AcceleratorConfig& config,
    const SimulationOptions& options,
    const std::vector<sim::Dataflow>& dataflow_by_layer);

}  // namespace sqz::sched
