// Global-buffer residency planning.
//
// The paper's accelerator holds feature maps in the 128 KiB global buffer
// when they fit; when "the memory footprint of the layer exceeds the
// capacity of the buffer, some of the six convolution loops are tiled" and
// the overflowing tensors stream through DRAM with double buffering. This
// planner decides, per layer, whether its input and output activations stay
// on-chip, chaining decisions so a producer's keep-decision is its
// consumers' input placement.
#pragma once

#include <vector>

#include "nn/model.h"
#include "sim/config.h"
#include "sim/layer_sim.h"

namespace sqz::sched {

struct ResidencyPlan {
  /// kept[i] == true when layer i's output tensor stays in the global buffer.
  std::vector<bool> kept;

  /// Placement flags for one layer (input side = all producers kept).
  sim::TensorPlacement placement_for(const nn::Model& model, int layer_idx) const;
};

/// Plan residency for the whole model on the given configuration.
///
/// Policy: the model input always arrives from DRAM (sensor/camera). A
/// layer's output is kept on-chip when it fits in the GB's activation region
/// (capacity minus the weight-streaming reserve) together with the input it
/// is consumed with; a tensor larger than half the activation region streams
/// to DRAM. This reproduces the paper's behaviour where large early feature
/// maps tile through DRAM while mid/late-network activations ping-pong
/// on-chip.
ResidencyPlan plan_residency(const nn::Model& model,
                             const sim::AcceleratorConfig& config);

}  // namespace sqz::sched
