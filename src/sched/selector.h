// Per-layer dataflow selection — the Squeezelerator's defining feature.
//
// "As the DNN inference computation is statically schedulable, simulation
// results can be used to determine the dataflow approach (WS or OS) that
// best executes the [layer]" (paper §4.1.1). The selector simulates each
// conv layer under both dataflows and picks the winner by the chosen
// objective; single-dataflow reference configs have no choice to make.
#pragma once

#include <vector>

#include "energy/model.h"
#include "nn/model.h"
#include "sched/residency.h"
#include "sim/config.h"
#include "sim/layer_sim.h"

namespace sqz::sched {

enum class Objective { Cycles, Energy };

struct LayerChoice {
  int layer_idx = 0;
  sim::Dataflow dataflow = sim::Dataflow::WeightStationary;
  /// Both candidates, for reporting (only filled for conv layers on a
  /// hybrid config; otherwise the forced result only).
  sim::LayerResult chosen;
};

/// Select a dataflow per layer. `plan` must come from plan_residency() on
/// the same model/config.
///
/// `pinned` (optional) replays a previous selection instead of searching:
/// indexed by layer, it names the dataflow each hybrid conv layer must use,
/// so the layer is simulated once instead of twice. Compiled-plan serving
/// (sched/plan_io.h) rides this path; with pins taken from a prior
/// select_dataflows run the choices are identical by construction. Must
/// have model.layer_count() entries when given (throws
/// std::invalid_argument otherwise); entries for forced/non-conv layers are
/// ignored.
std::vector<LayerChoice> select_dataflows(
    const nn::Model& model, const sim::AcceleratorConfig& config,
    const ResidencyPlan& plan, Objective objective = Objective::Cycles,
    const energy::UnitEnergies& units = {},
    const std::vector<sim::Dataflow>* pinned = nullptr);

}  // namespace sqz::sched
