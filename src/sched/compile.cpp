#include "sched/compile.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "sched/fusion.h"
#include "sched/residency.h"
#include "sim/tiling.h"
#include "util/strings.h"

namespace sqz::sched {

std::string LayerCommand::to_string() const {
  const char* unit_str = unit == Unit::PeArray             ? "pe-array"
                         : unit == Unit::Simd              ? "simd"
                         : unit == Unit::FusedIntoProducer ? "fused"
                                                           : "view";
  std::string s = util::format(
      "[%3d] %-26s %-8s", layer_idx, layer_name.c_str(), unit_str);
  if (unit == Unit::PeArray)
    s += util::format(" %s", sim::dataflow_abbrev(dataflow));
  else
    s += "   ";
  s += util::format(
      "  in:%-5s out:%-5s  dma %8s/%-8s  tiles %-3d  ~%s cycles",
      input_from_dram ? "DRAM" : "GB", output_to_dram ? "DRAM" : "GB",
      util::si(static_cast<double>(dma_in_words), 1).c_str(),
      util::si(static_cast<double>(dma_out_words), 1).c_str(), tile_count,
      util::si(static_cast<double>(expected_cycles), 1).c_str());
  return s;
}

std::int64_t Program::expected_total_cycles() const noexcept {
  std::int64_t total = 0;
  for (const LayerCommand& c : commands) total += c.expected_cycles;
  return total;
}

std::int64_t Program::total_dma_words() const noexcept {
  std::int64_t total = 0;
  for (const LayerCommand& c : commands) total += c.dma_in_words + c.dma_out_words;
  return total;
}

std::string Program::listing() const {
  std::ostringstream out;
  out << "program " << model_name << " on " << config.to_string() << "\n";
  for (const LayerCommand& c : commands) out << c.to_string() << "\n";
  out << util::format("expected total: %s cycles, %s DMA words\n",
                      util::with_commas(expected_total_cycles()).c_str(),
                      util::with_commas(total_dma_words()).c_str());
  return out.str();
}

void Program::validate(int expected_layer_count) const {
  const auto fail = [](const std::string& why) {
    throw std::invalid_argument("program: " + why);
  };
  if (model_name.empty()) fail("empty model name");
  config.validate();  // throws its own invalid_argument on bad parameters
  if (expected_layer_count >= 0 &&
      commands.size() != static_cast<std::size_t>(expected_layer_count) - 1)
    fail("command count " + std::to_string(commands.size()) +
         " does not match model layer count " +
         std::to_string(expected_layer_count) + " (want layers - 1)");
  for (std::size_t i = 0; i < commands.size(); ++i) {
    const LayerCommand& c = commands[i];
    const std::string at = "command " + std::to_string(i) + " (" +
                           c.layer_name + "): ";
    if (c.layer_idx != static_cast<int>(i) + 1)
      fail(at + "layer index " + std::to_string(c.layer_idx) +
           " out of sequence (want " + std::to_string(i + 1) + ")");
    if (c.layer_name.empty()) fail(at + "empty layer name");
    if (c.tile_count < 1)
      fail(at + "tile count " + std::to_string(c.tile_count) + " < 1");
    if (c.weight_words < 0) fail(at + "negative weight words");
    if (c.dma_in_words < 0 || c.dma_out_words < 0)
      fail(at + "negative DMA words");
    if (c.expected_cycles < 0) fail(at + "negative expected cycles");
  }
}

Program compile(const nn::Model& model, const sim::AcceleratorConfig& config,
                const SimulationOptions& options) {
  // The simulator is the single source of truth for the schedule: compile
  // runs it and reads the decisions back out, attaching the DMA/tiling
  // detail a sequencer needs.
  return compile_from_result(model, config, options,
                             simulate_network(model, config, options));
}

Program compile_from_result(const nn::Model& model,
                            const sim::AcceleratorConfig& config,
                            const SimulationOptions& options,
                            const sim::NetworkResult& result) {
  const ResidencyPlan plan = plan_residency(model, config);

  std::vector<int> fused_pools;
  if (options.fuse_pool_drain)
    for (const Fusion& f : find_pool_fusions(model)) fused_pools.push_back(f.pool_idx);

  Program prog;
  prog.model_name = model.name();
  prog.config = config;
  prog.commands.reserve(result.layers.size());

  for (const sim::LayerResult& l : result.layers) {
    const nn::Layer& layer = model.layer(l.layer_idx);
    LayerCommand cmd;
    cmd.layer_idx = l.layer_idx;
    cmd.layer_name = l.layer_name;
    cmd.expected_cycles = l.total_cycles;

    const bool is_fused_pool =
        std::find(fused_pools.begin(), fused_pools.end(), l.layer_idx) !=
        fused_pools.end();
    if (is_fused_pool) {
      cmd.unit = LayerCommand::Unit::FusedIntoProducer;
      prog.commands.push_back(std::move(cmd));
      continue;
    }
    if (layer.kind == nn::LayerKind::Concat) {
      cmd.unit = LayerCommand::Unit::View;
    } else if (layer.is_macs_layer()) {
      cmd.unit = LayerCommand::Unit::PeArray;
      cmd.dataflow = l.dataflow;
      cmd.weight_words = layer.params();
    } else {
      cmd.unit = LayerCommand::Unit::Simd;
    }

    const sim::TensorPlacement placement = plan.placement_for(model, l.layer_idx);
    cmd.input_from_dram = !placement.input_in_gb;
    cmd.output_to_dram = !placement.output_in_gb;

    // DMA descriptors and band count from the tiler (matching what the
    // timeline executes).
    const sim::TilePlan tiles = sim::plan_layer_tiles(
        model, l.layer_idx, config, placement, l.compute_cycles);
    cmd.tile_count = static_cast<int>(tiles.tiles.size());
    for (const sim::TileJob& t : tiles.tiles) {
      cmd.dma_in_words += t.dma_in_words;
      cmd.dma_out_words += t.dma_out_words;
    }
    prog.commands.push_back(std::move(cmd));
  }
  return prog;
}

sim::NetworkResult simulate_with_plan(const nn::Model& model,
                                      const sim::AcceleratorConfig& config,
                                      const SimulationOptions& options,
                                      const Program& program) {
  program.validate(model.layer_count());
  // Pins default to WS; entries for non-PE layers are ignored by the
  // selector, so only PE-array commands need to speak.
  std::vector<sim::Dataflow> pins(
      static_cast<std::size_t>(model.layer_count()),
      sim::Dataflow::WeightStationary);
  for (const LayerCommand& c : program.commands)
    if (c.unit == LayerCommand::Unit::PeArray)
      pins[static_cast<std::size_t>(c.layer_idx)] = c.dataflow;
  return simulate_network_pinned(model, config, options, pins);
}

}  // namespace sqz::sched
