#include "sched/selector.h"

#include <stdexcept>

namespace sqz::sched {

namespace {

double objective_value(const sim::LayerResult& r, Objective objective,
                       const energy::UnitEnergies& units) {
  if (objective == Objective::Cycles)
    return static_cast<double>(r.total_cycles);
  return energy::energy_of(r.counts, units).total();
}

}  // namespace

std::vector<LayerChoice> select_dataflows(const nn::Model& model,
                                          const sim::AcceleratorConfig& config,
                                          const ResidencyPlan& plan,
                                          Objective objective,
                                          const energy::UnitEnergies& units,
                                          const std::vector<sim::Dataflow>* pinned) {
  if (pinned &&
      pinned->size() != static_cast<std::size_t>(model.layer_count()))
    throw std::invalid_argument(
        "select_dataflows: pinned dataflows must have one entry per layer");

  std::vector<LayerChoice> choices;
  choices.reserve(static_cast<std::size_t>(model.layer_count()));

  for (int i = 1; i < model.layer_count(); ++i) {
    const nn::Layer& l = model.layer(i);
    const sim::TensorPlacement placement = plan.placement_for(model, i);
    LayerChoice choice;
    choice.layer_idx = i;

    const bool has_choice = l.is_conv() &&
                            config.support == sim::DataflowSupport::Hybrid;
    if (has_choice && pinned) {
      // Replay: the search already happened when the plan was compiled.
      const sim::Dataflow df = (*pinned)[static_cast<std::size_t>(i)];
      choice.chosen = sim::simulate_layer(model, i, config, df, placement);
      choice.dataflow = df;
    } else if (has_choice) {
      const sim::LayerResult ws = sim::simulate_layer(
          model, i, config, sim::Dataflow::WeightStationary, placement);
      const sim::LayerResult os = sim::simulate_layer(
          model, i, config, sim::Dataflow::OutputStationary, placement);
      const bool take_ws = objective_value(ws, objective, units) <=
                           objective_value(os, objective, units);
      choice.chosen = take_ws ? ws : os;
      choice.dataflow = take_ws ? sim::Dataflow::WeightStationary
                                : sim::Dataflow::OutputStationary;
    } else {
      // Forced by the config (or a non-conv layer): a single simulation.
      const sim::Dataflow df =
          sim::effective_dataflow(l, config, sim::Dataflow::WeightStationary);
      choice.chosen = sim::simulate_layer(model, i, config, df, placement);
      choice.dataflow = choice.chosen.dataflow;
    }
    choices.push_back(std::move(choice));
  }
  return choices;
}

}  // namespace sqz::sched
