// Drain-side pooling fusion.
//
// A conv layer followed by a max/avg pool that consumes only that conv can
// pool *in the drain path*: as results leave the PE array, the pooling unit
// reduces them on the fly and only the pooled tensor is written to the
// global buffer (and, if spilled, to DRAM). The intermediate full-resolution
// tensor never exists in memory. This is a standard NPU optimization that
// composes naturally with the Squeezelerator's serial OS drain, and it is
// exactly the kind of memory-hierarchy tune-up the paper's co-design loop
// hunts for — benchmarked in bench_ablation_fusion.
#pragma once

#include <vector>

#include "nn/model.h"

namespace sqz::sched {

struct Fusion {
  int conv_idx = 0;  ///< The producing conv layer.
  int pool_idx = 0;  ///< The max/avg pool fused into its drain.
};

/// All conv -> pool pairs where the pool is the conv's only consumer and
/// immediately follows it. (ReLU is already fused into the conv's requant
/// step and needs no scheduling support.)
std::vector<Fusion> find_pool_fusions(const nn::Model& model);

}  // namespace sqz::sched
