#include "sched/network_sim.h"

#include <map>
#include <stdexcept>

#include "sched/fusion.h"
#include "sched/residency.h"

namespace sqz::sched {

sim::NetworkResult simulate_network(const nn::Model& model,
                                    const sim::AcceleratorConfig& config,
                                    Objective objective,
                                    const energy::UnitEnergies& units) {
  SimulationOptions options;
  options.objective = objective;
  options.units = units;
  return simulate_network(model, config, options);
}

namespace {

sim::NetworkResult simulate_network_impl(
    const nn::Model& model, const sim::AcceleratorConfig& config,
    const SimulationOptions& options,
    const std::vector<sim::Dataflow>* pinned) {
  if (!model.finalized())
    throw std::invalid_argument("simulate_network: model must be finalized");
  config.validate();

  const ResidencyPlan plan = plan_residency(model, config);
  std::vector<LayerChoice> choices =
      select_dataflows(model, config, plan, options.objective, options.units,
                       pinned);

  // Pool-drain fusion: re-simulate each fused conv with the pool's output as
  // its stored tensor, and zero out the pool (it runs inside the drain).
  std::map<int, int> fused_conv_to_pool;   // conv idx -> pool idx
  std::map<int, int> fused_pool_to_conv;
  if (options.fuse_pool_drain) {
    for (const Fusion& f : find_pool_fusions(model)) {
      fused_conv_to_pool[f.conv_idx] = f.pool_idx;
      fused_pool_to_conv[f.pool_idx] = f.conv_idx;
    }
  }

  sim::NetworkResult result;
  result.model_name = model.name();
  result.config = config;
  result.layers.reserve(choices.size());
  for (LayerChoice& c : choices) {
    sim::LayerResult layer = std::move(c.chosen);
    sim::TensorPlacement placement = plan.placement_for(model, c.layer_idx);

    if (const auto conv_it = fused_conv_to_pool.find(c.layer_idx);
        conv_it != fused_conv_to_pool.end()) {
      // The conv's stored output is the pooled tensor; its residency follows
      // the pool's keep decision.
      const int pool_idx = conv_it->second;
      placement.output_in_gb = plan.kept.at(static_cast<std::size_t>(pool_idx));
      placement.output_words_override =
          model.layer(pool_idx).out_shape.elems();
      layer = sim::simulate_layer(model, c.layer_idx, config, layer.dataflow,
                                  placement);
      layer.layer_name += "+pool";
    } else if (fused_pool_to_conv.count(c.layer_idx) > 0) {
      // The pool itself runs in the conv's drain path: keep the entry for
      // bookkeeping, but it costs nothing.
      sim::LayerResult fused;
      fused.layer_idx = c.layer_idx;
      fused.layer_name = layer.layer_name + " (fused)";
      fused.on_pe_array = false;
      result.layers.push_back(std::move(fused));
      continue;
    }

    if (options.tile_timeline) {
      result.layers.push_back(sim::retime_layer(model, layer, config, placement,
                                                options.double_buffered,
                                                options.tile_search));
    } else {
      result.layers.push_back(std::move(layer));
    }
  }
  return result;
}

}  // namespace

sim::NetworkResult simulate_network(const nn::Model& model,
                                    const sim::AcceleratorConfig& config,
                                    const SimulationOptions& options) {
  return simulate_network_impl(model, config, options, nullptr);
}

sim::NetworkResult simulate_network_pinned(
    const nn::Model& model, const sim::AcceleratorConfig& config,
    const SimulationOptions& options,
    const std::vector<sim::Dataflow>& dataflow_by_layer) {
  return simulate_network_impl(model, config, options, &dataflow_by_layer);
}

}  // namespace sqz::sched
