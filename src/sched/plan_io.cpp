#include "sched/plan_io.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "nn/serialize.h"
#include "util/faultinject.h"
#include "util/hash.h"

namespace sqz::sched {

namespace {

constexpr char kMagic[8] = {'S', 'Q', 'Z', 'P', 'L', 'A', 'N', '1'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8;

// Sanity ceilings for attacker-controlled counts: large enough for any real
// model, small enough that a hostile length field cannot ask for gigabytes.
constexpr std::uint32_t kMaxCommands = 100000;
constexpr std::uint32_t kMaxStringBytes = 4096;

// --- little-endian primitives ------------------------------------------

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_str(std::string& out, const std::string& s) {
  if (s.size() > kMaxStringBytes)
    throw PlanError(PlanErrorCode::Malformed,
                    "string too long to serialize (" +
                        std::to_string(s.size()) + " bytes)");
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

/// Strictly bounds-checked payload reader: every primitive either yields a
/// value or throws Truncated/Malformed. Nothing is ever read past `end`.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : p_(bytes.data()), n_(bytes.size()) {}

  std::uint8_t u8(const char* what) {
    need(1, what);
    return static_cast<std::uint8_t>(p_[pos_++]);
  }

  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p_[pos_ + i]))
           << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p_[pos_ + i]))
           << (8 * i);
    pos_ += 8;
    return v;
  }

  std::int32_t i32(const char* what) {
    return static_cast<std::int32_t>(u32(what));
  }
  std::int64_t i64(const char* what) {
    return static_cast<std::int64_t>(u64(what));
  }

  double f64(const char* what) {
    const std::uint64_t bits = u64(what);
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool flag(const char* what) {
    const std::uint8_t v = u8(what);
    if (v > 1)
      throw PlanError(PlanErrorCode::Malformed,
                      std::string(what) + " flag byte " + std::to_string(v) +
                          " (want 0 or 1)");
    return v != 0;
  }

  std::uint8_t enum8(const char* what, std::uint8_t max_value) {
    const std::uint8_t v = u8(what);
    if (v > max_value)
      throw PlanError(PlanErrorCode::Malformed,
                      std::string(what) + " enum value " + std::to_string(v) +
                          " out of range (max " + std::to_string(max_value) +
                          ")");
    return v;
  }

  std::string str(const char* what) {
    const std::uint32_t len = u32(what);
    if (len > kMaxStringBytes)
      throw PlanError(PlanErrorCode::Malformed,
                      std::string(what) + " length " + std::to_string(len) +
                          " exceeds the " + std::to_string(kMaxStringBytes) +
                          "-byte cap");
    need(len, what);
    std::string s(p_ + pos_, len);
    pos_ += len;
    return s;
  }

  std::size_t leftover() const { return n_ - pos_; }

 private:
  void need(std::size_t bytes, const char* what) {
    if (n_ - pos_ < bytes)
      throw PlanError(PlanErrorCode::Truncated,
                      std::string("payload ends inside ") + what);
  }

  const char* p_;
  std::size_t n_;
  std::size_t pos_ = 0;
};

void write_config(std::string& out, const sim::AcceleratorConfig& c) {
  put_i32(out, c.array_n);
  put_i32(out, c.rf_entries);
  put_i32(out, c.gb_kib);
  put_i32(out, c.preload_width);
  put_i32(out, c.drain_width);
  put_i32(out, c.weight_reserve_words);
  put_i32(out, c.psum_accum_words);
  put_i32(out, c.simd_lanes);
  put_i32(out, c.dram_latency_cycles);
  put_i32(out, c.batch);
  put_i32(out, c.data_bytes);
  put_f64(out, c.dram_bytes_per_cycle);
  put_f64(out, c.weight_sparsity);
  put_u8(out, c.os_zero_skip ? 1 : 0);
  put_u8(out, static_cast<std::uint8_t>(c.support));
  put_u8(out, c.ws_psums_in_gb ? 1 : 0);
}

sim::AcceleratorConfig read_config(Reader& r) {
  sim::AcceleratorConfig c;
  c.array_n = r.i32("config.array_n");
  c.rf_entries = r.i32("config.rf_entries");
  c.gb_kib = r.i32("config.gb_kib");
  c.preload_width = r.i32("config.preload_width");
  c.drain_width = r.i32("config.drain_width");
  c.weight_reserve_words = r.i32("config.weight_reserve_words");
  c.psum_accum_words = r.i32("config.psum_accum_words");
  c.simd_lanes = r.i32("config.simd_lanes");
  c.dram_latency_cycles = r.i32("config.dram_latency_cycles");
  c.batch = r.i32("config.batch");
  c.data_bytes = r.i32("config.data_bytes");
  c.dram_bytes_per_cycle = r.f64("config.dram_bytes_per_cycle");
  c.weight_sparsity = r.f64("config.weight_sparsity");
  c.os_zero_skip = r.flag("config.os_zero_skip");
  c.support = static_cast<sim::DataflowSupport>(r.enum8("config.support", 2));
  c.ws_psums_in_gb = r.flag("config.ws_psums_in_gb");
  return c;
}

void write_options(std::string& out, const SimulationOptions& o) {
  put_u8(out, static_cast<std::uint8_t>(o.objective));
  put_u8(out, o.tile_timeline ? 1 : 0);
  put_u8(out, o.double_buffered ? 1 : 0);
  put_u8(out, o.tile_search ? 1 : 0);
  put_u8(out, o.fuse_pool_drain ? 1 : 0);
}

SimulationOptions read_options(Reader& r) {
  SimulationOptions o;
  o.objective = static_cast<Objective>(r.enum8("options.objective", 1));
  o.tile_timeline = r.flag("options.tile_timeline");
  o.double_buffered = r.flag("options.double_buffered");
  o.tile_search = r.flag("options.tile_search");
  o.fuse_pool_drain = r.flag("options.fuse_pool_drain");
  return o;
}

void write_command(std::string& out, const LayerCommand& c) {
  put_i32(out, c.layer_idx);
  put_str(out, c.layer_name);
  put_u8(out, static_cast<std::uint8_t>(c.unit));
  put_u8(out, static_cast<std::uint8_t>(c.dataflow));
  put_u8(out, c.input_from_dram ? 1 : 0);
  put_u8(out, c.output_to_dram ? 1 : 0);
  put_i64(out, c.weight_words);
  put_i64(out, c.dma_in_words);
  put_i64(out, c.dma_out_words);
  put_i32(out, c.tile_count);
  put_i64(out, c.expected_cycles);
}

LayerCommand read_command(Reader& r) {
  LayerCommand c;
  c.layer_idx = r.i32("command.layer_idx");
  c.layer_name = r.str("command.layer_name");
  c.unit = static_cast<LayerCommand::Unit>(r.enum8("command.unit", 3));
  c.dataflow = static_cast<sim::Dataflow>(r.enum8("command.dataflow", 1));
  c.input_from_dram = r.flag("command.input_from_dram");
  c.output_to_dram = r.flag("command.output_to_dram");
  c.weight_words = r.i64("command.weight_words");
  c.dma_in_words = r.i64("command.dma_in_words");
  c.dma_out_words = r.i64("command.dma_out_words");
  c.tile_count = r.i32("command.tile_count");
  c.expected_cycles = r.i64("command.expected_cycles");
  return c;
}

}  // namespace

const char* plan_error_code_name(PlanErrorCode code) noexcept {
  switch (code) {
    case PlanErrorCode::Io: return "plan io error";
    case PlanErrorCode::Truncated: return "plan truncated";
    case PlanErrorCode::BadMagic: return "not a plan file";
    case PlanErrorCode::BadVersion: return "unsupported plan version";
    case PlanErrorCode::ChecksumMismatch: return "plan checksum mismatch";
    case PlanErrorCode::Malformed: return "malformed plan";
    case PlanErrorCode::Invalid: return "invalid plan";
    case PlanErrorCode::ModelMismatch: return "plan model mismatch";
    case PlanErrorCode::ConfigMismatch: return "plan config mismatch";
    case PlanErrorCode::OptionsMismatch: return "plan options mismatch";
  }
  return "plan error";
}

std::uint64_t model_identity_hash(const nn::Model& model) {
  return util::fnv1a64(nn::serialize_model(model));
}

bool plan_options_equal(const SimulationOptions& a,
                        const SimulationOptions& b) noexcept {
  return a.objective == b.objective && a.tile_timeline == b.tile_timeline &&
         a.double_buffered == b.double_buffered &&
         a.tile_search == b.tile_search &&
         a.fuse_pool_drain == b.fuse_pool_drain;
}

PlanArtifact compile_plan(const nn::Model& model,
                          const sim::AcceleratorConfig& config,
                          const SimulationOptions& options) {
  PlanArtifact artifact;
  artifact.model_hash = model_identity_hash(model);
  artifact.options = options;
  artifact.program = compile(model, config, options);
  return artifact;
}

PlanArtifact plan_from_result(const nn::Model& model,
                              const sim::AcceleratorConfig& config,
                              const SimulationOptions& options,
                              const sim::NetworkResult& result) {
  PlanArtifact artifact;
  artifact.model_hash = model_identity_hash(model);
  artifact.options = options;
  artifact.program = compile_from_result(model, config, options, result);
  return artifact;
}

std::string serialize_plan(const PlanArtifact& artifact) {
  if (artifact.program.commands.size() > kMaxCommands)
    throw PlanError(PlanErrorCode::Malformed,
                    "program has more commands than the format allows");

  std::string payload;
  put_u64(payload, artifact.model_hash);
  put_str(payload, artifact.program.model_name);
  write_config(payload, artifact.program.config);
  write_options(payload, artifact.options);
  put_u32(payload, static_cast<std::uint32_t>(artifact.program.commands.size()));
  for (const LayerCommand& c : artifact.program.commands)
    write_command(payload, c);

  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kPlanFormatVersion);
  put_u64(out, payload.size());
  put_u64(out, util::fnv1a64(payload));
  out += payload;
  return out;
}

PlanArtifact deserialize_plan(std::string_view bytes) {
  if (bytes.size() < sizeof(kMagic))
    throw PlanError(PlanErrorCode::Truncated,
                    "file shorter than the magic (" +
                        std::to_string(bytes.size()) + " bytes)");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    throw PlanError(PlanErrorCode::BadMagic, "magic bytes do not match");
  if (bytes.size() < kHeaderBytes)
    throw PlanError(PlanErrorCode::Truncated,
                    "file ends inside the header (" +
                        std::to_string(bytes.size()) + " bytes)");

  Reader header(bytes.substr(sizeof(kMagic), kHeaderBytes - sizeof(kMagic)));
  const std::uint32_t version = header.u32("header.version");
  if (version != kPlanFormatVersion)
    throw PlanError(PlanErrorCode::BadVersion,
                    "version " + std::to_string(version) +
                        " (this build speaks version " +
                        std::to_string(kPlanFormatVersion) +
                        "; see docs/PLANS.md)");
  const std::uint64_t payload_len = header.u64("header.payload_len");
  const std::uint64_t stored_sum = header.u64("header.checksum");

  const std::string_view payload = bytes.substr(kHeaderBytes);
  // Exact-length match: a short file is truncation, a long one is trailing
  // garbage; neither may pass.
  if (payload.size() != payload_len)
    throw PlanError(PlanErrorCode::Truncated,
                    "payload is " + std::to_string(payload.size()) +
                        " bytes, header promises " +
                        std::to_string(payload_len));
  if (util::fnv1a64(payload) != stored_sum)
    throw PlanError(PlanErrorCode::ChecksumMismatch,
                    "payload bytes do not match the stored checksum");

  Reader r(payload);
  PlanArtifact artifact;
  artifact.model_hash = r.u64("model_hash");
  artifact.program.model_name = r.str("model_name");
  artifact.program.config = read_config(r);
  artifact.options = read_options(r);
  const std::uint32_t count = r.u32("command_count");
  if (count > kMaxCommands)
    throw PlanError(PlanErrorCode::Malformed,
                    "command count " + std::to_string(count) +
                        " exceeds the " + std::to_string(kMaxCommands) +
                        " cap");
  artifact.program.commands.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i)
    artifact.program.commands.push_back(read_command(r));
  if (r.leftover() != 0)
    throw PlanError(PlanErrorCode::Malformed,
                    std::to_string(r.leftover()) +
                        " unread bytes after the last command");

  try {
    artifact.program.validate();
  } catch (const std::invalid_argument& e) {
    throw PlanError(PlanErrorCode::Invalid, e.what());
  }
  return artifact;
}

void save_plan(const std::string& path, const PlanArtifact& artifact) {
  std::string bytes = serialize_plan(artifact);

  // "plan.write" fault point: Errno models a full/failing disk, ShortIo a
  // crash after a partial write — the truncated bytes are published so the
  // read path's checksum must catch them.
  bool truncated = false;
  if (util::fault::enabled()) {
    const util::fault::Action a = util::fault::at("plan.write");
    if (a.kind == util::fault::Kind::Errno) {
      errno = a.err;
      throw PlanError(PlanErrorCode::Io, "cannot write '" + path +
                                             "': " + std::strerror(a.err));
    }
    if (a.kind == util::fault::Kind::ShortIo) {
      bytes.resize(std::min(bytes.size(), a.bytes));
      truncated = true;
    }
  }
  (void)truncated;

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw PlanError(PlanErrorCode::Io, "cannot open '" + tmp + "'");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      throw PlanError(PlanErrorCode::Io, "write failed for '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {  // atomic publish
    std::remove(tmp.c_str());
    throw PlanError(PlanErrorCode::Io, "rename failed for '" + path + "'");
  }
}

PlanArtifact load_plan(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw PlanError(PlanErrorCode::Io, "cannot open '" + path + "'");
  std::string bytes;
  {
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
      throw PlanError(PlanErrorCode::Io, "read failed for '" + path + "'");
    bytes = buf.str();
  }

  // "plan.read" fault point: Errno models a failing device, ShortIo a torn
  // read — deserialize_plan must reject the remainder.
  if (util::fault::enabled()) {
    const util::fault::Action a = util::fault::at("plan.read");
    if (a.kind == util::fault::Kind::Errno) {
      errno = a.err;
      throw PlanError(PlanErrorCode::Io, "read failed for '" + path +
                                             "': " + std::strerror(a.err));
    }
    if (a.kind == util::fault::Kind::ShortIo)
      bytes.resize(std::min(bytes.size(), a.bytes));
  }

  return deserialize_plan(bytes);
}

void check_plan_serves(const PlanArtifact& artifact, const nn::Model& model,
                       const sim::AcceleratorConfig& config,
                       const SimulationOptions& options) {
  const std::uint64_t want = model_identity_hash(model);
  if (artifact.model_hash != want) {
    char msg[128];
    std::snprintf(msg, sizeof(msg),
                  "plan was compiled for model %016llx, request is %016llx",
                  static_cast<unsigned long long>(artifact.model_hash),
                  static_cast<unsigned long long>(want));
    throw PlanError(PlanErrorCode::ModelMismatch, msg);
  }
  if (!(artifact.program.config == config))
    throw PlanError(PlanErrorCode::ConfigMismatch,
                    "plan was compiled for accelerator config " +
                        artifact.program.config.to_string() +
                        ", request is " + config.to_string());
  if (!plan_options_equal(artifact.options, options))
    throw PlanError(PlanErrorCode::OptionsMismatch,
                    "plan was compiled under different simulation fidelity "
                    "flags than the request");
}

}  // namespace sqz::sched
