#include "sched/residency.h"

namespace sqz::sched {

sim::TensorPlacement ResidencyPlan::placement_for(const nn::Model& model,
                                                  int layer_idx) const {
  const nn::Layer& l = model.layer(layer_idx);
  sim::TensorPlacement p;
  p.input_in_gb = true;
  for (int in : l.inputs)
    if (!kept.at(static_cast<std::size_t>(in))) p.input_in_gb = false;
  p.output_in_gb = kept.at(static_cast<std::size_t>(layer_idx));
  return p;
}

ResidencyPlan plan_residency(const nn::Model& model,
                             const sim::AcceleratorConfig& config) {
  ResidencyPlan plan;
  plan.kept.assign(static_cast<std::size_t>(model.layer_count()), false);

  const std::int64_t activation_words =
      config.gb_capacity_words() - config.weight_reserve_words;

  // The model input streams from DRAM.
  plan.kept[0] = false;

  for (int i = 1; i < model.layer_count(); ++i) {
    const nn::Layer& l = model.layer(i);
    const std::int64_t out_words = l.out_shape.elems() * config.batch;
    std::int64_t in_words = 0;
    for (int in : l.inputs)
      in_words += model.layer(in).out_shape.elems() * config.batch;

    // Keep the output when it coexists with its input in the activation
    // region, or at least fits in half of it (ping-pong with the next
    // layer's working tensor).
    const bool fits_jointly = in_words + out_words <= activation_words;
    const bool fits_half = out_words <= activation_words / 2;
    plan.kept[static_cast<std::size_t>(i)] = fits_jointly || fits_half;
  }

  // The network's final output is always written back to the host.
  if (model.layer_count() > 1)
    plan.kept[static_cast<std::size_t>(model.layer_count() - 1)] = false;

  return plan;
}

}  // namespace sqz::sched
