#include "sched/fusion.h"

namespace sqz::sched {

std::vector<Fusion> find_pool_fusions(const nn::Model& model) {
  // Consumer counts: a conv feeding anything besides its pool can't fuse
  // (the full tensor must exist for the other consumer).
  std::vector<int> consumers(static_cast<std::size_t>(model.layer_count()), 0);
  for (int i = 1; i < model.layer_count(); ++i)
    for (int in : model.layer(i).inputs)
      ++consumers[static_cast<std::size_t>(in)];

  std::vector<Fusion> fusions;
  for (int i = 1; i < model.layer_count(); ++i) {
    const nn::Layer& pool = model.layer(i);
    if (pool.kind != nn::LayerKind::MaxPool && pool.kind != nn::LayerKind::AvgPool)
      continue;
    const int producer = pool.inputs.at(0);
    const nn::Layer& conv = model.layer(producer);
    if (!conv.is_conv()) continue;
    if (consumers[static_cast<std::size_t>(producer)] != 1) continue;
    // Overlapping pool windows (stride < kernel) re-read drained values; the
    // drain-path pooling unit holds one window row, which covers the zoo's
    // 3x3/stride-2 and 2x2/stride-2 pools alike.
    fusions.push_back(Fusion{producer, i});
  }
  return fusions;
}

}  // namespace sqz::sched
