// Static schedule compilation.
//
// "As the DNN inference computation is statically schedulable, simulation
// results can be used to determine the dataflow approach (WS or OS) that
// best executes the [layer]" (paper §4.1.1). This module produces that
// static schedule as an explicit artifact: an ordered program of layer
// commands — dataflow mode, operand placements, DMA descriptors, tile
// counts, expected cycles — the host CPU would hand the Squeezelerator's
// DMA controller and sequencer at deployment time.
//
// The program is derived from the same residency/selection/tiling machinery
// the simulator uses, so its expectations match simulate_network exactly
// (tested in tests/sched/test_compile.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.h"
#include "sched/network_sim.h"
#include "sim/config.h"

namespace sqz::sched {

/// One command of the static program.
struct LayerCommand {
  int layer_idx = 0;
  std::string layer_name;

  enum class Unit { PeArray, Simd, FusedIntoProducer, View } unit = Unit::Simd;
  sim::Dataflow dataflow = sim::Dataflow::WeightStationary;  ///< PeArray only.

  // Operand staging.
  bool input_from_dram = false;
  bool output_to_dram = false;
  std::int64_t weight_words = 0;
  std::int64_t dma_in_words = 0;   ///< Weights + any streamed input.
  std::int64_t dma_out_words = 0;

  // Execution shape.
  int tile_count = 1;              ///< Double-buffered row bands.
  std::int64_t expected_cycles = 0;

  std::string to_string() const;
};

struct Program {
  std::string model_name;
  sim::AcceleratorConfig config;
  std::vector<LayerCommand> commands;

  std::int64_t expected_total_cycles() const noexcept;
  /// Total DMA words the program moves (both directions).
  std::int64_t total_dma_words() const noexcept;
  /// Human-readable listing, one command per line.
  std::string listing() const;
};

/// Compile `model` for `config` under `options` (objective, fusion). The
/// timeline flag is honoured for the per-command expected cycles.
Program compile(const nn::Model& model, const sim::AcceleratorConfig& config,
                const SimulationOptions& options = {});

}  // namespace sqz::sched
