// Static schedule compilation.
//
// "As the DNN inference computation is statically schedulable, simulation
// results can be used to determine the dataflow approach (WS or OS) that
// best executes the [layer]" (paper §4.1.1). This module produces that
// static schedule as an explicit artifact: an ordered program of layer
// commands — dataflow mode, operand placements, DMA descriptors, tile
// counts, expected cycles — the host CPU would hand the Squeezelerator's
// DMA controller and sequencer at deployment time.
//
// The program is derived from the same residency/selection/tiling machinery
// the simulator uses, so its expectations match simulate_network exactly
// (tested in tests/sched/test_compile.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.h"
#include "sched/network_sim.h"
#include "sim/config.h"

namespace sqz::sched {

/// One command of the static program.
struct LayerCommand {
  int layer_idx = 0;
  std::string layer_name;

  enum class Unit { PeArray, Simd, FusedIntoProducer, View } unit = Unit::Simd;
  sim::Dataflow dataflow = sim::Dataflow::WeightStationary;  ///< PeArray only.

  // Operand staging.
  bool input_from_dram = false;
  bool output_to_dram = false;
  std::int64_t weight_words = 0;
  std::int64_t dma_in_words = 0;   ///< Weights + any streamed input.
  std::int64_t dma_out_words = 0;

  // Execution shape.
  int tile_count = 1;              ///< Double-buffered row bands.
  std::int64_t expected_cycles = 0;

  std::string to_string() const;

  friend bool operator==(const LayerCommand&, const LayerCommand&) = default;
};

struct Program {
  std::string model_name;
  sim::AcceleratorConfig config;
  std::vector<LayerCommand> commands;

  std::int64_t expected_total_cycles() const noexcept;
  /// Total DMA words the program moves (both directions).
  std::int64_t total_dma_words() const noexcept;
  /// Human-readable listing, one command per line.
  std::string listing() const;

  /// Structural invariants every well-formed program satisfies: a non-empty
  /// model name, commands numbered 1..N in order (one per non-input layer),
  /// tile counts >= 1, and non-negative word/cycle totals. With
  /// `expected_layer_count` >= 0 the command count must additionally match
  /// that model's layer count (count == layers - 1). Throws
  /// std::invalid_argument naming the first violation. Called on every
  /// plan deserialization (sched/plan_io.h), so a corrupt or hand-edited
  /// artifact can never produce a half-valid schedule.
  void validate(int expected_layer_count = -1) const;

  friend bool operator==(const Program&, const Program&) = default;
};

/// Compile `model` for `config` under `options` (objective, fusion). The
/// timeline flag is honoured for the per-command expected cycles.
Program compile(const nn::Model& model, const sim::AcceleratorConfig& config,
                const SimulationOptions& options = {});

/// Derive the program from an already-computed simulation of the same
/// model/config/options — what `compile` does after its internal
/// simulate_network call. Lets callers that already hold the NetworkResult
/// (the serving cold path) avoid simulating twice.
Program compile_from_result(const nn::Model& model,
                            const sim::AcceleratorConfig& config,
                            const SimulationOptions& options,
                            const sim::NetworkResult& result);

/// Simulate `model` replaying `program`'s per-layer dataflow decisions
/// instead of re-running the selector's dual-dataflow search — the serve
/// hot path once a compiled plan is in hand. Because the selector is
/// deterministic, the result is byte-identical to simulate_network with the
/// same options (enforced by tests/sched/test_plan_io.cpp). Throws
/// std::invalid_argument when the program does not fit the model.
sim::NetworkResult simulate_with_plan(const nn::Model& model,
                                      const sim::AcceleratorConfig& config,
                                      const SimulationOptions& options,
                                      const Program& program);

}  // namespace sqz::sched
