// Compiled-plan artifacts: serialize a static schedule once, serve it
// forever.
//
// The paper's premise (§4.1.1) is that DNN inference is statically
// schedulable — every dataflow choice, residency decision and DMA
// descriptor is known before the first cycle runs. This module makes that
// schedule a durable artifact: a small, versioned, checksummed binary file
// holding the sched::Program together with the identity of everything it
// was compiled against (model hash, accelerator config, simulation
// fidelity flags). A deployment can compile on a build machine, ship the
// artifact, and replay it on the serving path without ever re-running the
// dual-dataflow search.
//
// Container layout (all integers little-endian):
//
//   offset  size  field
//        0     8  magic "SQZPLAN1"
//        8     4  u32 format version (kPlanFormatVersion)
//       12     8  u64 payload length in bytes
//       20     8  u64 FNV-1a of the payload bytes
//       28     -  payload
//
// The payload is the model identity hash, the model name, the
// AcceleratorConfig (field-wise), the SimulationOptions fidelity flags,
// and the command list. Doubles travel as IEEE-754 bit patterns, so a
// round trip is bit-exact and re-serialization is byte-identical
// (property-tested in tests/sched/test_plan_io.cpp).
//
// Failure discipline mirrors the serving cache (serve/simcache.h): every
// malformed, truncated, or mismatched artifact raises a structured
// PlanError — deserialization either yields a fully validated Program or
// throws; there is no partial success. The hostile-input corpus in
// tests/sched/test_plan_io_fuzz.cpp holds that line.
//
// NOT part of a plan's identity: energy::UnitEnergies. Unit energies scale
// reported energy numbers but never change the schedule when the objective
// is Cycles; like the serving cache key (serve/api.cpp), plans deliberately
// omit them. Callers serving Objective::Energy with non-default units
// should not share artifacts across unit tables.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "nn/model.h"
#include "sched/compile.h"
#include "sched/network_sim.h"
#include "sim/config.h"

namespace sqz::sched {

/// Bump when the container layout changes, and record the change in
/// docs/PLANS.md (version history is mandatory — a reader meeting an
/// unknown version must be able to say what to rebuild with).
inline constexpr std::uint32_t kPlanFormatVersion = 1;

/// Why a plan could not be read or must not be served.
enum class PlanErrorCode {
  Io,                ///< Could not open/read/write the file at all.
  Truncated,         ///< Fewer bytes than the header/payload promise.
  BadMagic,          ///< Not a plan file.
  BadVersion,        ///< A format this build does not speak.
  ChecksumMismatch,  ///< Payload bytes corrupted after the header.
  Malformed,         ///< Checksum fine but the payload grammar is not.
  Invalid,           ///< Decoded cleanly but Program::validate rejected it.
  ModelMismatch,     ///< Artifact was compiled for a different model.
  ConfigMismatch,    ///< ... for a different accelerator config.
  OptionsMismatch,   ///< ... under different fidelity flags.
};

const char* plan_error_code_name(PlanErrorCode code) noexcept;

class PlanError : public std::runtime_error {
 public:
  PlanError(PlanErrorCode code, const std::string& message)
      : std::runtime_error(std::string(plan_error_code_name(code)) + ": " +
                           message),
        code_(code) {}
  PlanErrorCode code() const noexcept { return code_; }

 private:
  PlanErrorCode code_;
};

/// True when the schedule-relevant fidelity flags agree (objective,
/// tile_timeline, double_buffered, tile_search, fuse_pool_drain).
bool plan_options_equal(const SimulationOptions& a,
                        const SimulationOptions& b) noexcept;

/// A compiled plan plus the identity of what it was compiled against.
struct PlanArtifact {
  /// fnv1a64 over nn::serialize_model(model) — the same canonical text the
  /// serving cache keys on, so "same model" means the same thing everywhere.
  std::uint64_t model_hash = 0;
  /// The fidelity flags the plan's expected cycles were computed under.
  /// (units are intentionally absent — see the header comment.)
  SimulationOptions options{};
  Program program;

  // Not defaulted: SimulationOptions carries the units table, which is not
  // equality-comparable and (deliberately) not part of plan identity.
  friend bool operator==(const PlanArtifact& a, const PlanArtifact& b) {
    return a.model_hash == b.model_hash &&
           plan_options_equal(a.options, b.options) && a.program == b.program;
  }
};

/// Canonical model identity: fnv1a64 of the serialized model text.
std::uint64_t model_identity_hash(const nn::Model& model);

/// Compile `model` and wrap the program in an artifact.
PlanArtifact compile_plan(const nn::Model& model,
                          const sim::AcceleratorConfig& config,
                          const SimulationOptions& options = {});

/// Wrap an already-computed simulation (the serving cold path: one
/// simulate_network call yields both the response and the artifact).
PlanArtifact plan_from_result(const nn::Model& model,
                              const sim::AcceleratorConfig& config,
                              const SimulationOptions& options,
                              const sim::NetworkResult& result);

/// Serialize to the container format. Deterministic: equal artifacts
/// produce identical bytes.
std::string serialize_plan(const PlanArtifact& artifact);

/// Parse and fully validate an artifact. Throws PlanError on any defect —
/// never returns a partially-decoded plan.
PlanArtifact deserialize_plan(std::string_view bytes);

/// Atomic write (tmp + rename), matching the cache's publish discipline so
/// a crash mid-write can never leave a half-plan under the final name.
/// Throws PlanError{Io} on filesystem failure.
void save_plan(const std::string& path, const PlanArtifact& artifact);

/// Read + deserialize_plan. Throws PlanError (Io if unreadable, otherwise
/// whatever deserialize_plan finds).
PlanArtifact load_plan(const std::string& path);

/// Refuse to serve a plan compiled for different inputs: throws PlanError
/// {ModelMismatch, ConfigMismatch, OptionsMismatch} naming the first
/// disagreement. A passing check means simulate_with_plan(model, config,
/// options, artifact.program) is byte-identical to a fresh compile.
void check_plan_serves(const PlanArtifact& artifact, const nn::Model& model,
                       const sim::AcceleratorConfig& config,
                       const SimulationOptions& options);

}  // namespace sqz::sched
