// Text serialization of Model graphs.
//
// A line-oriented format so users can describe their own networks in a file
// and feed them to the sqzsim CLI without recompiling:
//
//   model TinyNet input 3x32x32
//   conv     name=conv1 out=16 kernel=3x3 stride=2 pad=1x1 groups=1 relu=1
//   maxpool  name=pool1 kernel=3 stride=2 pad=0
//   conv     name=a out=8 kernel=1x1 from=2
//   conv     name=b out=8 kernel=3x3 pad=1x1 from=2
//   concat   name=cat from=3,4
//   add      name=res from=5,2
//   gavgpool name=gap
//   fc       name=fc out=10 relu=0
//
// `from` is a layer index (the implicit input layer is 0) and defaults to
// the previous line's layer. Unspecified attributes take the same defaults
// as the builder API. round-trips: parse(serialize(m)) reproduces m exactly.
#pragma once

#include <string>

#include "nn/model.h"

namespace sqz::nn {

/// Render a finalized model in the text format above.
std::string serialize_model(const Model& model);

/// Parse the text format; returns a finalized model. Throws
/// std::invalid_argument with a line number on malformed input.
Model parse_model(const std::string& text);

}  // namespace sqz::nn
