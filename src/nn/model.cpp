#include "nn/model.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace sqz::nn {

Model::Model(std::string name, TensorShape input_shape)
    : name_(std::move(name)), input_shape_(input_shape) {
  if (input_shape.c <= 0 || input_shape.h <= 0 || input_shape.w <= 0)
    throw std::invalid_argument("Model: input shape must be positive");
  Layer input;
  input.name = "input";
  input.kind = LayerKind::Input;
  input.out_shape = input_shape;
  layers_.push_back(std::move(input));
}

void Model::require_not_finalized() const {
  if (finalized_) throw std::logic_error("Model: cannot add layers after finalize()");
}

int Model::resolve(int from) const {
  if (from == -1) return layer_count() - 1;
  if (from < 0 || from >= layer_count())
    throw std::invalid_argument(util::format(
        "Model '%s': layer input index %d out of range [0,%d)", name_.c_str(), from,
        layer_count()));
  return from;
}

// Shape inference runs eagerly as layers are appended, so builders (e.g. the
// SqueezeNext residual blocks) can inspect intermediate shapes while building.
int Model::append(Layer layer, int from) {
  require_not_finalized();
  if (layer.inputs.empty()) layer.inputs = {resolve(from)};

  Layer& l = layer;
  const TensorShape in0 = layers_[static_cast<std::size_t>(l.inputs.at(0))].out_shape;
  l.in_shape = in0;
  switch (l.kind) {
    case LayerKind::Input:
      throw std::invalid_argument("Model: duplicate input layer");
    case LayerKind::Conv: {
      ConvParams& c = l.conv;
      if (c.groups == -1) {  // depthwise sentinel from add_depthwise()
        c.groups = in0.c;
        if (c.out_channels == -1) c.out_channels = in0.c;
      }
      if (c.out_channels <= 0 || c.kh <= 0 || c.kw <= 0 || c.groups <= 0)
        throw std::invalid_argument(
            util::format("Model '%s': conv '%s' has non-positive parameter",
                         name_.c_str(), l.name.c_str()));
      if (in0.c % c.groups != 0 || c.out_channels % c.groups != 0)
        throw std::invalid_argument(util::format(
            "Model '%s': conv '%s' groups=%d does not divide channels (%d->%d)",
            name_.c_str(), l.name.c_str(), c.groups, in0.c, c.out_channels));
      l.out_shape = TensorShape{c.out_channels,
                                conv_out_extent(in0.h, c.kh, c.stride, c.pad_h),
                                conv_out_extent(in0.w, c.kw, c.stride, c.pad_w)};
      break;
    }
    case LayerKind::FullyConnected:
      if (l.fc.out_features <= 0)
        throw std::invalid_argument("Model: fc with non-positive out_features");
      l.out_shape = TensorShape{l.fc.out_features, 1, 1};
      break;
    case LayerKind::MaxPool:
    case LayerKind::AvgPool:
      l.out_shape = TensorShape{
          in0.c, conv_out_extent(in0.h, l.pool.kh, l.pool.stride, l.pool.pad),
          conv_out_extent(in0.w, l.pool.kw, l.pool.stride, l.pool.pad)};
      break;
    case LayerKind::GlobalAvgPool:
      l.out_shape = TensorShape{in0.c, 1, 1};
      break;
    case LayerKind::ReLU:
      l.out_shape = in0;
      break;
    case LayerKind::Concat: {
      int channels = 0;
      for (int in : l.inputs) {
        const TensorShape s = layers_[static_cast<std::size_t>(in)].out_shape;
        if (s.h != in0.h || s.w != in0.w)
          throw std::invalid_argument(util::format(
              "Model '%s': concat '%s' spatial mismatch", name_.c_str(),
              l.name.c_str()));
        channels += s.c;
      }
      l.out_shape = TensorShape{channels, in0.h, in0.w};
      break;
    }
    case LayerKind::Add: {
      const TensorShape rhs = layers_[static_cast<std::size_t>(l.inputs.at(1))].out_shape;
      if (!(rhs == in0))
        throw std::invalid_argument(util::format(
            "Model '%s': add '%s' shape mismatch %s vs %s", name_.c_str(),
            l.name.c_str(), in0.to_string().c_str(), rhs.to_string().c_str()));
      l.out_shape = in0;
      break;
    }
  }

  layers_.push_back(std::move(layer));
  return layer_count() - 1;
}

int Model::add_conv(const std::string& name, ConvParams params, int from) {
  Layer l;
  l.name = name;
  l.kind = LayerKind::Conv;
  l.conv = params;
  return append(std::move(l), from);
}

int Model::add_conv(const std::string& name, int out_channels, int kernel, int stride,
                    int pad, int from) {
  ConvParams p;
  p.out_channels = out_channels;
  p.kh = p.kw = kernel;
  p.stride = stride;
  p.pad_h = p.pad_w = pad;
  return add_conv(name, p, from);
}

int Model::add_depthwise(const std::string& name, int kernel, int stride, int pad,
                         int from) {
  ConvParams p;
  p.out_channels = -1;  // resolved to producer channels at append time
  p.kh = p.kw = kernel;
  p.stride = stride;
  p.pad_h = p.pad_w = pad;
  p.groups = -1;
  Layer l;
  l.name = name;
  l.kind = LayerKind::Conv;
  l.conv = p;
  return append(std::move(l), from);
}

int Model::add_fc(const std::string& name, int out_features, bool relu, int from) {
  Layer l;
  l.name = name;
  l.kind = LayerKind::FullyConnected;
  l.fc = FcParams{out_features, relu};
  return append(std::move(l), from);
}

int Model::add_maxpool(const std::string& name, int kernel, int stride, int from,
                       int pad) {
  Layer l;
  l.name = name;
  l.kind = LayerKind::MaxPool;
  l.pool = PoolParams{kernel, kernel, stride, pad};
  return append(std::move(l), from);
}

int Model::add_avgpool(const std::string& name, int kernel, int stride, int from,
                       int pad) {
  Layer l;
  l.name = name;
  l.kind = LayerKind::AvgPool;
  l.pool = PoolParams{kernel, kernel, stride, pad};
  return append(std::move(l), from);
}

int Model::add_global_avgpool(const std::string& name, int from) {
  Layer l;
  l.name = name;
  l.kind = LayerKind::GlobalAvgPool;
  return append(std::move(l), from);
}

int Model::add_relu(const std::string& name, int from) {
  Layer l;
  l.name = name;
  l.kind = LayerKind::ReLU;
  return append(std::move(l), from);
}

int Model::add_concat(const std::string& name, std::vector<int> from) {
  if (from.size() < 2)
    throw std::invalid_argument("Model::add_concat: needs at least two inputs");
  Layer l;
  l.name = name;
  l.kind = LayerKind::Concat;
  for (int idx : from) l.inputs.push_back(resolve(idx));
  return append(std::move(l), /*from=*/-1);
}

int Model::add_add(const std::string& name, int lhs, int rhs) {
  Layer l;
  l.name = name;
  l.kind = LayerKind::Add;
  l.inputs = {resolve(lhs), resolve(rhs)};
  return append(std::move(l), /*from=*/-1);
}

void Model::finalize() {
  // Shapes are inferred eagerly in append(); finalize() validates the graph
  // is non-trivial and freezes it.
  if (finalized_) return;
  if (layer_count() < 2)
    throw std::invalid_argument(
        util::format("Model '%s': no layers", name_.c_str()));
  finalized_ = true;
}

int Model::first_conv_index() const noexcept {
  for (int i = 0; i < layer_count(); ++i)
    if (layers_[static_cast<std::size_t>(i)].is_conv()) return i;
  return -1;
}

std::int64_t Model::total_macs() const {
  std::int64_t total = 0;
  for (const Layer& l : layers_) total += l.macs();
  return total;
}

std::int64_t Model::total_params() const {
  std::int64_t total = 0;
  for (const Layer& l : layers_) total += l.params();
  return total;
}

std::int64_t Model::peak_activation_bytes(int bytes_per_word) const {
  std::int64_t peak = 0;
  for (const Layer& l : layers_) {
    if (l.kind == LayerKind::Input) continue;
    peak = std::max(peak, l.in_shape.bytes(bytes_per_word) +
                              l.out_shape.bytes(bytes_per_word));
  }
  return peak;
}

std::string Model::summary() const {
  std::ostringstream out;
  out << name_ << " (input " << input_shape_.to_string() << ")\n";
  for (int i = 0; i < layer_count(); ++i) {
    const Layer& l = layers_[static_cast<std::size_t>(i)];
    out << util::format("  [%3d] %-9s %-24s out=%-12s macs=%-8s params=%s\n", i,
                        layer_kind_name(l.kind), l.name.c_str(),
                        l.out_shape.to_string().c_str(),
                        util::si(static_cast<double>(l.macs())).c_str(),
                        util::si(static_cast<double>(l.params())).c_str());
  }
  out << util::format("  total: macs=%s params=%s\n",
                      util::si(static_cast<double>(total_macs())).c_str(),
                      util::si(static_cast<double>(total_params())).c_str());
  return out.str();
}

}  // namespace sqz::nn
