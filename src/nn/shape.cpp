#include "nn/shape.h"

#include <stdexcept>

#include "util/strings.h"

namespace sqz::nn {

std::string TensorShape::to_string() const {
  return util::format("%dx%dx%d", c, h, w);
}

int conv_out_extent(int in, int kernel, int stride, int pad) {
  if (in <= 0 || kernel <= 0 || stride <= 0 || pad < 0)
    throw std::invalid_argument("conv_out_extent: non-positive dimension");
  const int padded = in + 2 * pad;
  if (padded < kernel)
    throw std::invalid_argument("conv_out_extent: kernel larger than padded input");
  return (padded - kernel) / stride + 1;
}

}  // namespace sqz::nn
