// Static workload analysis: the layer-type taxonomy of the paper's Table 1.
//
// The paper classifies convolution MACs into four categories — the first
// convolutional layer ("Conv1"), pointwise 1x1 convolutions, FxF convolutions
// with F>1, and depthwise convolutions — because each category favours a
// different dataflow (Section 4.1.1). Fully-connected MACs form a fifth
// implicit category (AlexNet's rows do not sum to 100% for this reason).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "nn/model.h"

namespace sqz::nn {

enum class LayerCategory {
  FirstConv = 0,   ///< The network's first convolution (large map, 3 input ch).
  Pointwise,       ///< 1x1 convolution, groups < channels.
  Spatial,         ///< FxF convolution with max(kh,kw) > 1 (incl. 1x3 / 3x1).
  Depthwise,       ///< groups == in_channels.
  FullyConnected,
  Other,           ///< Pool / ReLU / concat / add — no MACs.
};
inline constexpr int kLayerCategoryCount = 6;

const char* layer_category_name(LayerCategory cat) noexcept;

/// Category of one layer within its model (needs the model to identify Conv1).
LayerCategory categorize(const Model& model, int layer_idx);

/// MAC totals per category plus fractions of the model total (Table 1 rows).
struct OpBreakdown {
  std::array<std::int64_t, kLayerCategoryCount> macs{};
  std::int64_t total = 0;

  double fraction(LayerCategory cat) const noexcept {
    if (total == 0) return 0.0;
    return static_cast<double>(macs[static_cast<int>(cat)]) /
           static_cast<double>(total);
  }
};

OpBreakdown analyze_ops(const Model& model);

/// Weight bytes of the whole model at the given word size.
std::int64_t model_weight_bytes(const Model& model, int bytes_per_word);

/// Arithmetic intensity of a layer: MACs per byte moved if each input,
/// weight and output word were touched in DRAM exactly once. The paper uses
/// this to argue against depthwise separable convolutions ("poor Arithmetic
/// Intensity").
double arithmetic_intensity(const Layer& layer, int bytes_per_word);

}  // namespace sqz::nn
