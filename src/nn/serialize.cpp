#include "nn/serialize.h"

#include <map>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace sqz::nn {

namespace {

using util::format;

std::string shape_str(const TensorShape& s) {
  return format("%dx%dx%d", s.c, s.h, s.w);
}

/// "key=value" attribute map of one line (tokens after the kind word).
class Attrs {
 public:
  Attrs(const std::vector<std::string>& tokens, std::size_t first, int line)
      : line_(line) {
    for (std::size_t i = first; i < tokens.size(); ++i) {
      const std::string& tok = tokens[i];
      const auto eq = tok.find('=');
      if (eq == std::string::npos)
        throw std::invalid_argument(
            format("model parse: expected key=value at line %d: '%s'", line,
                   tok.c_str()));
      map_[tok.substr(0, eq)] = tok.substr(eq + 1);
    }
  }

  std::string str(const std::string& key, const std::string& fallback) const {
    const auto it = map_.find(key);
    return it == map_.end() ? fallback : it->second;
  }

  int integer(const std::string& key, int fallback) const {
    const auto it = map_.find(key);
    if (it == map_.end()) return fallback;
    try {
      return std::stoi(it->second);
    } catch (const std::exception&) {
      throw std::invalid_argument(format(
          "model parse: '%s' is not an integer at line %d", key.c_str(), line_));
    }
  }

  /// "AxB" pair (kernel, pad); a single number means A == B.
  std::pair<int, int> pair(const std::string& key, std::pair<int, int> fallback) const {
    const auto it = map_.find(key);
    if (it == map_.end()) return fallback;
    const auto x = it->second.find('x');
    try {
      if (x == std::string::npos) {
        const int v = std::stoi(it->second);
        return {v, v};
      }
      return {std::stoi(it->second.substr(0, x)),
              std::stoi(it->second.substr(x + 1))};
    } catch (const std::exception&) {
      throw std::invalid_argument(format("model parse: malformed pair '%s' at line %d",
                                         it->second.c_str(), line_));
    }
  }

  std::vector<int> int_list(const std::string& key) const {
    const auto it = map_.find(key);
    std::vector<int> out;
    if (it == map_.end()) return out;
    for (const std::string& part : util::split(it->second, ','))
      out.push_back(std::stoi(part));
    return out;
  }

  bool has(const std::string& key) const { return map_.count(key) > 0; }

 private:
  std::map<std::string, std::string> map_;
  int line_;
};

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

TensorShape parse_shape(const std::string& text, int line) {
  const auto parts = util::split(text, 'x');
  if (parts.size() != 3)
    throw std::invalid_argument(
        format("model parse: expected CxHxW shape at line %d: '%s'", line,
               text.c_str()));
  try {
    return TensorShape{std::stoi(parts[0]), std::stoi(parts[1]),
                       std::stoi(parts[2])};
  } catch (const std::exception&) {
    throw std::invalid_argument(
        format("model parse: malformed shape at line %d: '%s'", line,
               text.c_str()));
  }
}

}  // namespace

std::string serialize_model(const Model& model) {
  std::ostringstream out;
  out << "model " << model.name() << " input "
      << shape_str(model.input_shape()) << "\n";
  for (int i = 1; i < model.layer_count(); ++i) {
    const Layer& l = model.layer(i);
    const int prev = i - 1;
    const auto from_attr = [&]() -> std::string {
      if (l.inputs.size() == 1 && l.inputs[0] == prev) return "";
      std::string list;
      for (std::size_t j = 0; j < l.inputs.size(); ++j) {
        if (j) list += ",";
        list += std::to_string(l.inputs[j]);
      }
      return " from=" + list;
    }();
    switch (l.kind) {
      case LayerKind::Conv:
        out << format(
            "conv name=%s out=%d kernel=%dx%d stride=%d pad=%dx%d groups=%d "
            "relu=%d%s\n",
            l.name.c_str(), l.conv.out_channels, l.conv.kh, l.conv.kw,
            l.conv.stride, l.conv.pad_h, l.conv.pad_w, l.conv.groups,
            l.conv.relu ? 1 : 0, from_attr.c_str());
        break;
      case LayerKind::FullyConnected:
        out << format("fc name=%s out=%d relu=%d%s\n", l.name.c_str(),
                      l.fc.out_features, l.fc.relu ? 1 : 0, from_attr.c_str());
        break;
      case LayerKind::MaxPool:
      case LayerKind::AvgPool:
        out << format("%s name=%s kernel=%d stride=%d pad=%d%s\n",
                      l.kind == LayerKind::MaxPool ? "maxpool" : "avgpool",
                      l.name.c_str(), l.pool.kh, l.pool.stride, l.pool.pad,
                      from_attr.c_str());
        break;
      case LayerKind::GlobalAvgPool:
        out << format("gavgpool name=%s%s\n", l.name.c_str(), from_attr.c_str());
        break;
      case LayerKind::ReLU:
        out << format("relu name=%s%s\n", l.name.c_str(), from_attr.c_str());
        break;
      case LayerKind::Concat:
        out << format("concat name=%s%s\n", l.name.c_str(), from_attr.c_str());
        break;
      case LayerKind::Add:
        out << format("add name=%s%s\n", l.name.c_str(), from_attr.c_str());
        break;
      case LayerKind::Input:
        throw std::logic_error("serialize_model: unexpected input layer");
    }
  }
  return out.str();
}

Model parse_model(const std::string& text) {
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;

  // Header line: "model <name with spaces> input CxHxW".
  std::string header;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = util::trim_copy(raw);
    if (line.empty() || line[0] == '#') continue;
    header = line;
    break;
  }
  const auto bad_header = [] {
    return std::invalid_argument(
        "model parse: expected header 'model <name> input CxHxW'");
  };
  if (header.rfind("model ", 0) != 0) throw bad_header();
  const auto input_kw = header.rfind(" input ");
  if (input_kw == std::string::npos) throw bad_header();
  const std::string name = util::trim_copy(header.substr(6, input_kw - 6));
  const std::string shape_text = util::trim_copy(header.substr(input_kw + 7));
  if (name.empty()) throw bad_header();
  Model model(name, parse_shape(shape_text, line_no));

  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = util::trim_copy(raw);
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> tokens = tokenize(line);
    const std::string& kind = tokens[0];
    const Attrs attrs(tokens, 1, line_no);
    const std::string name = attrs.str("name", format("layer%d", line_no));
    const int from = attrs.integer("from", -1);
    const std::vector<int> from_list = attrs.int_list("from");

    if (kind == "conv") {
      ConvParams p;
      p.out_channels = attrs.integer("out", 0);
      std::tie(p.kh, p.kw) = attrs.pair("kernel", {0, 0});
      p.stride = attrs.integer("stride", 1);
      std::tie(p.pad_h, p.pad_w) = attrs.pair("pad", {0, 0});
      p.groups = attrs.integer("groups", 1);
      p.relu = attrs.integer("relu", 1) != 0;
      model.add_conv(name, p, from);
    } else if (kind == "depthwise") {
      const auto [kh, kw] = attrs.pair("kernel", {3, 3});
      (void)kw;
      model.add_depthwise(name, kh, attrs.integer("stride", 1),
                          attrs.pair("pad", {kh / 2, kh / 2}).first, from);
    } else if (kind == "fc") {
      model.add_fc(name, attrs.integer("out", 0), attrs.integer("relu", 1) != 0,
                   from);
    } else if (kind == "maxpool") {
      model.add_maxpool(name, attrs.pair("kernel", {2, 2}).first,
                        attrs.integer("stride", 2), from, attrs.integer("pad", 0));
    } else if (kind == "avgpool") {
      model.add_avgpool(name, attrs.pair("kernel", {2, 2}).first,
                        attrs.integer("stride", 2), from, attrs.integer("pad", 0));
    } else if (kind == "gavgpool") {
      model.add_global_avgpool(name, from);
    } else if (kind == "relu") {
      model.add_relu(name, from);
    } else if (kind == "concat") {
      if (from_list.size() < 2)
        throw std::invalid_argument(
            format("model parse: concat needs from=a,b,... at line %d", line_no));
      model.add_concat(name, from_list);
    } else if (kind == "add") {
      if (from_list.size() != 2)
        throw std::invalid_argument(
            format("model parse: add needs from=a,b at line %d", line_no));
      model.add_add(name, from_list[0], from_list[1]);
    } else {
      throw std::invalid_argument(format("model parse: unknown layer kind '%s' at line %d",
                                         kind.c_str(), line_no));
    }
  }
  model.finalize();
  return model;
}

}  // namespace sqz::nn
