// Layer definitions for the DNN intermediate representation.
//
// The IR covers exactly the operator set needed by the paper's six networks:
// convolution (including grouped / depthwise / pointwise), fully-connected,
// max/avg/global-average pooling, ReLU, channel concatenation (SqueezeNet fire
// modules) and elementwise addition (SqueezeNext residuals).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/shape.h"

namespace sqz::nn {

enum class LayerKind {
  Input,           ///< Placeholder producing the model input tensor.
  Conv,            ///< 2-D convolution, optionally grouped/depthwise.
  FullyConnected,  ///< Dense matrix-vector layer.
  MaxPool,
  AvgPool,
  GlobalAvgPool,   ///< Pools each channel to 1x1.
  ReLU,
  Concat,          ///< Channel-wise concatenation of >=2 inputs.
  Add,             ///< Elementwise sum of exactly 2 inputs (residual).
};

const char* layer_kind_name(LayerKind kind) noexcept;

/// Convolution hyper-parameters. A depthwise convolution is expressed as
/// groups == in_channels (with out_channels a multiple of groups).
struct ConvParams {
  int out_channels = 0;
  int kh = 0, kw = 0;
  int stride = 1;
  int pad_h = 0, pad_w = 0;
  int groups = 1;
  bool relu = true;  ///< Fused activation; affects numerics, not timing.
};

struct PoolParams {
  int kh = 0, kw = 0;
  int stride = 1;
  int pad = 0;
};

struct FcParams {
  int out_features = 0;
  bool relu = true;
};

/// One node of the layer graph. `inputs` are indices of producer layers in
/// the owning Model; shape and derived quantities are filled by
/// Model::finalize().
struct Layer {
  std::string name;
  LayerKind kind = LayerKind::Input;
  std::vector<int> inputs;

  ConvParams conv;
  PoolParams pool;
  FcParams fc;

  // Derived by Model::finalize():
  TensorShape in_shape;   ///< Shape of inputs[0] (Concat: first input).
  TensorShape out_shape;

  bool is_conv() const noexcept { return kind == LayerKind::Conv; }
  bool is_fc() const noexcept { return kind == LayerKind::FullyConnected; }
  /// Layers that run on the PE array (everything else uses the 1-D SIMD unit).
  bool is_macs_layer() const noexcept { return is_conv() || is_fc(); }

  /// True for a depthwise convolution (each input channel filtered alone).
  bool is_depthwise() const noexcept {
    return is_conv() && conv.groups > 1 && conv.groups == in_shape.c;
  }
  /// True for a 1x1 (pointwise) non-depthwise convolution.
  bool is_pointwise() const noexcept {
    return is_conv() && conv.kh == 1 && conv.kw == 1 && !is_depthwise();
  }

  /// Multiply-accumulate count for this layer (0 for non-MAC layers).
  std::int64_t macs() const noexcept;
  /// Weight + bias parameter count (0 for parameterless layers).
  std::int64_t params() const noexcept;
  /// Filter-tap count per output channel (kh*kw*in_c/groups); 0 if not conv.
  std::int64_t taps_per_output() const noexcept;
};

}  // namespace sqz::nn
