// Published ImageNet top-1 accuracies for the networks in the zoo.
//
// SUBSTITUTION (see DESIGN.md §3): the paper's Figure 4 plots accuracy
// against simulated energy/speed. Training ImageNet is outside this
// reproduction's scope, so the accuracy axis uses the numbers published in
// the respective papers (SqueezeNet, MobileNet, SqueezeNext, Tiny Darknet),
// tagged with their provenance. The energy/speed axes are produced by our
// simulator.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace sqz::nn {

struct AccuracyRecord {
  std::string model_name;   ///< Must match Model::name() of the zoo builder.
  double top1 = 0.0;        ///< ImageNet top-1, percent.
  std::string source;       ///< Citation for the number.
};

/// Full table of literature accuracies known to the library.
const std::vector<AccuracyRecord>& accuracy_table();

/// Lookup by exact model name; nullopt when the model is not in the table.
std::optional<AccuracyRecord> published_accuracy(const std::string& model_name);

}  // namespace sqz::nn
