// The Model: an append-only layer graph with a fluent builder interface.
//
// Models are built by the zoo (or by users, see examples/custom_network.cpp),
// then finalize() runs shape inference and validation. All simulator and
// analysis code consumes a finalized Model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace sqz::nn {

class Model {
 public:
  Model(std::string name, TensorShape input_shape);

  // ---- builder interface; each returns the new layer's index ----------
  // `from` defaults to the most recently added layer (-1 sentinel).

  int add_conv(const std::string& name, ConvParams params, int from = -1);
  /// Convenience: square kernel, "same"-style explicit padding.
  int add_conv(const std::string& name, int out_channels, int kernel, int stride,
               int pad, int from = -1);
  /// Depthwise convolution over the producer's channels.
  int add_depthwise(const std::string& name, int kernel, int stride, int pad,
                    int from = -1);
  int add_fc(const std::string& name, int out_features, bool relu = true,
             int from = -1);
  int add_maxpool(const std::string& name, int kernel, int stride, int from = -1,
                  int pad = 0);
  int add_avgpool(const std::string& name, int kernel, int stride, int from = -1,
                  int pad = 0);
  int add_global_avgpool(const std::string& name, int from = -1);
  int add_relu(const std::string& name, int from = -1);
  int add_concat(const std::string& name, std::vector<int> from);
  int add_add(const std::string& name, int lhs, int rhs);

  /// Run shape inference + validation. Must be called once after building;
  /// throws std::invalid_argument on malformed graphs. Idempotent.
  void finalize();
  bool finalized() const noexcept { return finalized_; }

  // ---- queries ---------------------------------------------------------

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  TensorShape input_shape() const noexcept { return input_shape_; }

  int layer_count() const noexcept { return static_cast<int>(layers_.size()); }
  const Layer& layer(int idx) const { return layers_.at(static_cast<std::size_t>(idx)); }
  const std::vector<Layer>& layers() const noexcept { return layers_; }

  /// Index of the first Conv layer ("conv1" in the paper's taxonomy); -1 if none.
  int first_conv_index() const noexcept;

  std::int64_t total_macs() const;
  std::int64_t total_params() const;
  /// Largest single-layer activation footprint (in+out) in bytes.
  std::int64_t peak_activation_bytes(int bytes_per_word) const;

  /// One-line-per-layer structural dump (debugging / examples).
  std::string summary() const;

 private:
  int append(Layer layer, int from);
  int resolve(int from) const;
  void require_not_finalized() const;

  std::string name_;
  TensorShape input_shape_;
  std::vector<Layer> layers_;
  bool finalized_ = false;
};

}  // namespace sqz::nn
