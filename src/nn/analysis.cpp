#include "nn/analysis.h"

#include "util/checked.h"

namespace sqz::nn {

const char* layer_category_name(LayerCategory cat) noexcept {
  switch (cat) {
    case LayerCategory::FirstConv: return "Conv1";
    case LayerCategory::Pointwise: return "1x1";
    case LayerCategory::Spatial: return "FxF";
    case LayerCategory::Depthwise: return "DW";
    case LayerCategory::FullyConnected: return "FC";
    case LayerCategory::Other: return "other";
  }
  return "?";
}

LayerCategory categorize(const Model& model, int layer_idx) {
  const Layer& l = model.layer(layer_idx);
  switch (l.kind) {
    case LayerKind::Conv:
      if (layer_idx == model.first_conv_index()) return LayerCategory::FirstConv;
      if (l.is_depthwise()) return LayerCategory::Depthwise;
      if (l.is_pointwise()) return LayerCategory::Pointwise;
      return LayerCategory::Spatial;
    case LayerKind::FullyConnected:
      return LayerCategory::FullyConnected;
    default:
      return LayerCategory::Other;
  }
}

OpBreakdown analyze_ops(const Model& model) {
  OpBreakdown b;
  for (int i = 0; i < model.layer_count(); ++i) {
    const std::int64_t macs = model.layer(i).macs();
    std::int64_t& bucket = b.macs[static_cast<int>(categorize(model, i))];
    bucket = util::checked_add(bucket, macs, "analyze_ops: category MACs");
    b.total = util::checked_add(b.total, macs, "analyze_ops: total MACs");
  }
  return b;
}

std::int64_t model_weight_bytes(const Model& model, int bytes_per_word) {
  return util::checked_mul(model.total_params(), bytes_per_word,
                           "model_weight_bytes");
}

double arithmetic_intensity(const Layer& layer, int bytes_per_word) {
  const std::int64_t macs = layer.macs();
  if (macs == 0) return 0.0;
  const std::int64_t bytes = layer.in_shape.bytes(bytes_per_word) +
                             layer.out_shape.bytes(bytes_per_word) +
                             layer.params() * bytes_per_word;
  return static_cast<double>(macs) / static_cast<double>(bytes);
}

}  // namespace sqz::nn
