#include "nn/accuracy.h"

namespace sqz::nn {

const std::vector<AccuracyRecord>& accuracy_table() {
  static const std::vector<AccuracyRecord> kTable = {
      {"AlexNet", 57.2, "Krizhevsky et al., NeurIPS 2012"},
      {"SqueezeNet v1.0", 57.1, "Iandola et al., arXiv:1602.07360 (as cited by DAC'18 paper)"},
      {"SqueezeNet v1.1", 57.1, "SqueezeNet v1.1 release notes"},
      {"SqueezeNet v1.0 bypass", 60.4, "Iandola et al., arXiv:1602.07360 Table 3"},
      {"Tiny Darknet", 58.7, "pjreddie.com/darknet/tiny-darknet"},
      {"1.0 MobileNet-224", 70.6, "Howard et al., arXiv:1704.04861"},
      {"0.75 MobileNet-224", 68.4, "Howard et al., arXiv:1704.04861"},
      {"0.5 MobileNet-224", 63.7, "Howard et al., arXiv:1704.04861"},
      {"0.25 MobileNet-224", 50.6, "Howard et al., arXiv:1704.04861"},
      // SqueezeNext variants: the DAC'18 paper reports 59.2 top-1 for the
      // optimized family and notes the optimized variants are slightly more
      // accurate than the baseline.
      {"1.0-SqNxt-23 v1", 59.0, "Gholami et al., arXiv:1803.10615"},
      {"1.0-SqNxt-23 v2", 59.1, "Gholami et al., arXiv:1803.10615"},
      {"1.0-SqNxt-23 v3", 59.1, "Gholami et al., arXiv:1803.10615"},
      {"1.0-SqNxt-23 v4", 59.2, "Gholami et al., arXiv:1803.10615"},
      {"1.0-SqNxt-23 v5", 59.2, "Gholami et al., arXiv:1803.10615"},
      {"1.0-SqNxt-34 v5", 61.4, "Gholami et al., arXiv:1803.10615"},
      {"1.0-SqNxt-44 v5", 62.6, "Gholami et al., arXiv:1803.10615"},
      {"2.0-SqNxt-23 v5", 67.4, "Gholami et al., arXiv:1803.10615"},
  };
  return kTable;
}

std::optional<AccuracyRecord> published_accuracy(const std::string& model_name) {
  for (const AccuracyRecord& r : accuracy_table())
    if (r.model_name == model_name) return r;
  return std::nullopt;
}

}  // namespace sqz::nn
