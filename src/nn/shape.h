// Tensor shapes for batch-1 inference (the paper evaluates batch size 1,
// which is "typical usage in embedded vision applications").
#pragma once

#include <cstdint>
#include <string>

namespace sqz::nn {

/// Channel-major 3-D activation shape (C, H, W). Batch is implicitly 1.
struct TensorShape {
  int c = 0;
  int h = 0;
  int w = 0;

  std::int64_t elems() const noexcept {
    return static_cast<std::int64_t>(c) * h * w;
  }
  /// Size in bytes at the given word size (the accelerator uses 16-bit data).
  std::int64_t bytes(int bytes_per_word) const noexcept {
    return elems() * bytes_per_word;
  }

  bool operator==(const TensorShape&) const = default;

  std::string to_string() const;
};

/// Output extent of a strided, padded sliding window:
/// floor((in + 2*pad - kernel) / stride) + 1. Throws std::invalid_argument
/// if the window does not fit (misconfigured layer).
int conv_out_extent(int in, int kernel, int stride, int pad);

}  // namespace sqz::nn
