#include "nn/zoo/zoo.h"

namespace sqz::nn::zoo {

Model alexnet() {
  Model m("AlexNet", TensorShape{3, 227, 227});

  m.add_conv("conv1", 96, 11, 4, 0);
  m.add_maxpool("pool1", 3, 2);

  ConvParams conv2;
  conv2.out_channels = 256;
  conv2.kh = conv2.kw = 5;
  conv2.stride = 1;
  conv2.pad_h = conv2.pad_w = 2;
  conv2.groups = 2;
  m.add_conv("conv2", conv2);
  m.add_maxpool("pool2", 3, 2);

  m.add_conv("conv3", 384, 3, 1, 1);

  ConvParams conv4;
  conv4.out_channels = 384;
  conv4.kh = conv4.kw = 3;
  conv4.stride = 1;
  conv4.pad_h = conv4.pad_w = 1;
  conv4.groups = 2;
  m.add_conv("conv4", conv4);

  ConvParams conv5 = conv4;
  conv5.out_channels = 256;
  m.add_conv("conv5", conv5);
  m.add_maxpool("pool5", 3, 2);

  m.add_fc("fc6", 4096);
  m.add_fc("fc7", 4096);
  m.add_fc("fc8", 1000, /*relu=*/false);

  m.finalize();
  return m;
}

}  // namespace sqz::nn::zoo
