#include "nn/zoo/zoo.h"

namespace sqz::nn::zoo {

std::vector<Model> all_table1_models() {
  std::vector<Model> models;
  models.push_back(alexnet());
  models.push_back(mobilenet(1.0, 224));
  models.push_back(tiny_darknet());
  models.push_back(squeezenet_v10());
  models.push_back(squeezenet_v11());
  Model sqnxt = squeezenext(SqNxtVariant::V5, 1.0, 23);
  sqnxt.set_name("SqueezeNext");  // paper row label
  models.push_back(std::move(sqnxt));
  return models;
}

std::vector<Model> figure4_models() {
  std::vector<Model> models;
  models.push_back(squeezenet_v10());
  models.push_back(squeezenet_v11());
  models.push_back(tiny_darknet());
  for (double w : {0.25, 0.5, 0.75, 1.0}) models.push_back(mobilenet(w, 224));
  for (auto v : {SqNxtVariant::V1, SqNxtVariant::V5})
    models.push_back(squeezenext(v, 1.0, 23));
  models.push_back(squeezenext(SqNxtVariant::V5, 1.0, 34));
  models.push_back(squeezenext(SqNxtVariant::V5, 1.0, 44));
  models.push_back(squeezenext(SqNxtVariant::V5, 2.0, 23));
  return models;
}

}  // namespace sqz::nn::zoo
