#include "nn/zoo/zoo.h"

#include "util/strings.h"

namespace sqz::nn::zoo {

namespace {

/// Fire module: squeeze 1x1 -> s channels, then parallel expand 1x1 (e1) and
/// expand 3x3 (e3, pad 1), concatenated.
int add_fire(Model& m, int from, const std::string& name, int s, int e1, int e3) {
  const int squeeze =
      m.add_conv(name + "/squeeze1x1", s, 1, 1, 0, from);
  const int expand1 =
      m.add_conv(name + "/expand1x1", e1, 1, 1, 0, squeeze);
  const int expand3 =
      m.add_conv(name + "/expand3x3", e3, 3, 1, 1, squeeze);
  return m.add_concat(name + "/concat", {expand1, expand3});
}

}  // namespace

Model squeezenet_v10() {
  Model m("SqueezeNet v1.0", TensorShape{3, 227, 227});
  int x = m.add_conv("conv1", 96, 7, 2, 0);
  x = m.add_maxpool("pool1", 3, 2, x);
  x = add_fire(m, x, "fire2", 16, 64, 64);
  x = add_fire(m, x, "fire3", 16, 64, 64);
  x = add_fire(m, x, "fire4", 32, 128, 128);
  x = m.add_maxpool("pool4", 3, 2, x);
  x = add_fire(m, x, "fire5", 32, 128, 128);
  x = add_fire(m, x, "fire6", 48, 192, 192);
  x = add_fire(m, x, "fire7", 48, 192, 192);
  x = add_fire(m, x, "fire8", 64, 256, 256);
  x = m.add_maxpool("pool8", 3, 2, x);
  x = add_fire(m, x, "fire9", 64, 256, 256);
  x = m.add_conv("conv10", 1000, 1, 1, 0, x);
  m.add_global_avgpool("pool10", x);
  m.finalize();
  return m;
}

Model squeezenet_v10_bypass() {
  Model m("SqueezeNet v1.0 bypass", TensorShape{3, 227, 227});
  int x = m.add_conv("conv1", 96, 7, 2, 0);
  x = m.add_maxpool("pool1", 3, 2, x);
  x = add_fire(m, x, "fire2", 16, 64, 64);
  // Simple bypass wraps the fire modules whose input and output widths
  // match (fire3/5/7/9 in the SqueezeNet paper's Figure 2, middle).
  int f3 = add_fire(m, x, "fire3", 16, 64, 64);
  x = m.add_add("bypass3", f3, x);
  x = add_fire(m, x, "fire4", 32, 128, 128);
  x = m.add_maxpool("pool4", 3, 2, x);
  int f5 = add_fire(m, x, "fire5", 32, 128, 128);
  x = m.add_add("bypass5", f5, x);
  x = add_fire(m, x, "fire6", 48, 192, 192);
  int f7 = add_fire(m, x, "fire7", 48, 192, 192);
  x = m.add_add("bypass7", f7, x);
  x = add_fire(m, x, "fire8", 64, 256, 256);
  x = m.add_maxpool("pool8", 3, 2, x);
  int f9 = add_fire(m, x, "fire9", 64, 256, 256);
  x = m.add_add("bypass9", f9, x);
  x = m.add_conv("conv10", 1000, 1, 1, 0, x);
  m.add_global_avgpool("pool10", x);
  m.finalize();
  return m;
}

Model squeezenet_v11() {
  Model m("SqueezeNet v1.1", TensorShape{3, 227, 227});
  int x = m.add_conv("conv1", 64, 3, 2, 0);
  x = m.add_maxpool("pool1", 3, 2, x);
  x = add_fire(m, x, "fire2", 16, 64, 64);
  x = add_fire(m, x, "fire3", 16, 64, 64);
  x = m.add_maxpool("pool3", 3, 2, x);
  x = add_fire(m, x, "fire4", 32, 128, 128);
  x = add_fire(m, x, "fire5", 32, 128, 128);
  x = m.add_maxpool("pool5", 3, 2, x);
  x = add_fire(m, x, "fire6", 48, 192, 192);
  x = add_fire(m, x, "fire7", 48, 192, 192);
  x = add_fire(m, x, "fire8", 64, 256, 256);
  x = add_fire(m, x, "fire9", 64, 256, 256);
  x = m.add_conv("conv10", 1000, 1, 1, 0, x);
  m.add_global_avgpool("pool10", x);
  m.finalize();
  return m;
}

}  // namespace sqz::nn::zoo
