#include "nn/zoo/zoo.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "util/strings.h"

namespace sqz::nn::zoo {

namespace {

int scaled(int channels, double width) {
  return std::max(8, static_cast<int>(std::lround(channels * width)));
}

/// SqueezeNext bottleneck block (Gholami et al., arXiv:1803.10615):
/// two 1x1 reductions (to C/2 then C/4 of the *input* width), a separated
/// 1x3 + 3x1 pair at C/2, a 1x1 expansion to the output width, and a
/// residual connection (identity, or a 1x1 projection when shape changes).
int add_block(Model& m, int from, const std::string& name, int out_channels,
              int stride) {
  const TensorShape in = m.layer(from).out_shape;
  const int c_in = in.c;
  const int half = std::max(8, c_in / 2);
  const int quarter = std::max(8, c_in / 4);

  int x = m.add_conv(name + "/reduce1", half, 1, stride, 0, from);
  x = m.add_conv(name + "/reduce2", quarter, 1, 1, 0, x);

  ConvParams c13;  // 1x3: kh=1, kw=3, pad only along width
  c13.out_channels = half;
  c13.kh = 1;
  c13.kw = 3;
  c13.stride = 1;
  c13.pad_h = 0;
  c13.pad_w = 1;
  x = m.add_conv(name + "/conv1x3", c13, x);

  ConvParams c31;  // 3x1: kh=3, kw=1, pad only along height
  c31.out_channels = half;
  c31.kh = 3;
  c31.kw = 1;
  c31.stride = 1;
  c31.pad_h = 1;
  c31.pad_w = 0;
  x = m.add_conv(name + "/conv3x1", c31, x);

  x = m.add_conv(name + "/expand", out_channels, 1, 1, 0, x);

  int shortcut = from;
  if (c_in != out_channels || stride != 1)
    shortcut = m.add_conv(name + "/shortcut", out_channels, 1, stride, 0, from);
  return m.add_add(name + "/add", x, shortcut);
}

struct VariantCfg {
  int conv1_kernel;               ///< 7 (v1) or 5 (v2..v5).
  std::array<int, 4> blocks;      ///< Blocks per stage.
};

VariantCfg variant_cfg(SqNxtVariant v, int depth) {
  // Depth-23 variants: the paper's Figure 3 studies v1..v5, combining the
  // 7x7 -> 5x5 first-layer reduction with a progressive reallocation of
  // blocks from the low-utilization early stages to later stages
  // (reconstruction documented in DESIGN.md §3).
  if (depth == 23) {
    switch (v) {
      case SqNxtVariant::V1: return {7, {6, 6, 8, 1}};
      case SqNxtVariant::V2: return {5, {6, 6, 8, 1}};
      case SqNxtVariant::V3: return {5, {4, 8, 8, 1}};
      case SqNxtVariant::V4: return {5, {2, 10, 8, 1}};
      case SqNxtVariant::V5: return {5, {2, 4, 14, 1}};
    }
  }
  // Deeper family members for the Figure 4 spectrum (v5-style allocation).
  if (depth == 34) return {5, {2, 6, 22, 2}};
  if (depth == 44) return {5, {2, 8, 30, 2}};
  throw std::invalid_argument(
      util::format("squeezenext: unsupported depth %d (use 23, 34, 44)", depth));
}

}  // namespace

Model squeezenext(SqNxtVariant variant, double width, int depth) {
  const VariantCfg cfg = variant_cfg(variant, depth);
  const std::string width_str = width == static_cast<int>(width)
                                    ? util::format("%.1f", width)
                                    : util::format("%.4g", width);
  Model m(util::format("%s-SqNxt-%d v%d", width_str.c_str(), depth,
                       static_cast<int>(variant)),
          TensorShape{3, 227, 227});

  const std::array<int, 4> stage_width = {
      scaled(32, width), scaled(64, width), scaled(128, width), scaled(256, width)};

  // Padding keeps the output resolution identical across the 7x7 and 5x5
  // first-layer variants (112x112), so variants differ only in conv1 work.
  const int conv1_pad = cfg.conv1_kernel == 7 ? 1 : 0;
  int x = m.add_conv("conv1", scaled(64, width), cfg.conv1_kernel, 2, conv1_pad);
  x = m.add_maxpool("pool1", 3, 2, x);

  for (int stage = 0; stage < 4; ++stage) {
    for (int b = 0; b < cfg.blocks[static_cast<std::size_t>(stage)]; ++b) {
      const int stride = (stage > 0 && b == 0) ? 2 : 1;
      x = add_block(m, x, util::format("stage%d/block%d", stage + 1, b + 1),
                    stage_width[static_cast<std::size_t>(stage)], stride);
    }
  }

  x = m.add_conv("conv_final", scaled(128, width), 1, 1, 0, x);
  x = m.add_global_avgpool("pool_final", x);
  m.add_fc("fc", 1000, /*relu=*/false, x);
  m.finalize();
  return m;
}

}  // namespace sqz::nn::zoo
