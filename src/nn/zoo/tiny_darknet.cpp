#include "nn/zoo/zoo.h"

#include "util/strings.h"

namespace sqz::nn::zoo {

Model tiny_darknet() {
  Model m("Tiny Darknet", TensorShape{3, 224, 224});

  int idx = 1;
  const auto conv = [&](int channels, int kernel, int from = -1) {
    const int pad = kernel == 3 ? 1 : 0;
    return m.add_conv(util::format("conv%d", idx++), channels, kernel, 1, pad, from);
  };

  int x = conv(16, 3);
  x = m.add_maxpool("pool1", 2, 2, x);
  x = conv(32, 3, x);
  x = m.add_maxpool("pool2", 2, 2, x);
  x = conv(16, 1, x);
  x = conv(128, 3, x);
  x = conv(16, 1, x);
  x = conv(128, 3, x);
  x = m.add_maxpool("pool3", 2, 2, x);
  x = conv(32, 1, x);
  x = conv(256, 3, x);
  x = conv(32, 1, x);
  x = conv(256, 3, x);
  x = m.add_maxpool("pool4", 2, 2, x);
  x = conv(64, 1, x);
  x = conv(512, 3, x);
  x = conv(64, 1, x);
  x = conv(512, 3, x);
  x = conv(128, 1, x);
  x = conv(1000, 1, x);
  m.add_global_avgpool("pool5", x);
  m.finalize();
  return m;
}

}  // namespace sqz::nn::zoo
