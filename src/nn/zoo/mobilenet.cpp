#include "nn/zoo/zoo.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/strings.h"

namespace sqz::nn::zoo {

namespace {

int scaled(int channels, double width) {
  return std::max(8, static_cast<int>(std::lround(channels * width)));
}

/// Depthwise-separable block: 3x3 depthwise (stride s) + 1x1 pointwise.
int add_separable(Model& m, int from, int block_idx, int out_channels, int stride) {
  const std::string base = util::format("conv%d", block_idx);
  const int dw = m.add_depthwise(base + "/dw", 3, stride, 1, from);
  return m.add_conv(base + "/pw", out_channels, 1, 1, 0, dw);
}

}  // namespace

Model mobilenet(double width, int resolution) {
  if (width <= 0.0) throw std::invalid_argument("mobilenet: width must be positive");
  // Width renders as in the MobileNet paper: "1.0", "0.75", "0.5", "0.25".
  const std::string prefix = width == static_cast<int>(width)
                                 ? util::format("%.1f", width)
                                 : util::format("%.4g", width);
  Model m(prefix + util::format(" MobileNet-%d", resolution),
          TensorShape{3, resolution, resolution});

  int x = m.add_conv("conv1", scaled(32, width), 3, 2, 1);

  struct BlockCfg { int out; int stride; };
  // The 13 separable blocks of MobileNet v1 (Howard et al., Table 1).
  const BlockCfg blocks[] = {
      {64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},  {512, 2}, {512, 1},
      {512, 1}, {512, 1}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1},
  };
  int idx = 2;
  for (const BlockCfg& b : blocks) {
    x = add_separable(m, x, idx++, scaled(b.out, width), b.stride);
  }

  x = m.add_global_avgpool("pool", x);
  m.add_fc("fc", 1000, /*relu=*/false, x);
  m.finalize();
  return m;
}

}  // namespace sqz::nn::zoo
