// The model zoo: builders for every network the paper evaluates.
//
// Layer configurations are reconstructed from the original architecture
// papers (AlexNet, SqueezeNet v1.0/v1.1, MobileNet v1, Tiny Darknet,
// SqueezeNext). All returned models are finalized.
#pragma once

#include <vector>

#include "nn/model.h"

namespace sqz::nn::zoo {

/// AlexNet (Krizhevsky 2012), 227x227 input, grouped conv2/4/5, three FCs.
Model alexnet();

/// SqueezeNet v1.0 (Iandola 2016): 7x7 conv1 + 8 fire modules.
Model squeezenet_v10();

/// SqueezeNet v1.1: 3x3/64 conv1, pooling moved earlier (same fire configs).
Model squeezenet_v11();

/// SqueezeNet v1.0 with simple bypass (Iandola 2016 §6): residual adds
/// around fire3/5/7/9, where input and output channel counts match. Same
/// MAC budget as v1.0; the bypass improves published accuracy to 60.4%.
Model squeezenet_v10_bypass();

/// MobileNet v1. `width` is the channel multiplier (0.25/0.5/0.75/1.0).
Model mobilenet(double width = 1.0, int resolution = 224);

/// Tiny Darknet (Redmon): alternating 1x1 bottleneck / 3x3 expand stacks.
Model tiny_darknet();

/// The five 1.0-SqNxt-23 design variants of the paper's Figure 3.
/// v1 is the baseline ([6,6,8,1] blocks, 7x7 conv1); v2 shrinks conv1 to 5x5;
/// v3..v5 progressively move blocks from the low-utilization early stages to
/// later stages (see DESIGN.md §3 for the reconstruction note).
enum class SqNxtVariant { V1 = 1, V2, V3, V4, V5 };

/// SqueezeNext. `depth` in {23, 34, 44} selects total block count; `width`
/// scales channels (1.0 or 2.0 in the SqueezeNext paper).
Model squeezenext(SqNxtVariant variant = SqNxtVariant::V5, double width = 1.0,
                  int depth = 23);

/// The six networks of the paper's Table 1 / Table 2, in paper row order.
/// The "SqueezeNext" row is the optimized 1.0-SqNxt-23 v5.
std::vector<Model> all_table1_models();

/// The DNN spectrum of Figure 4: SqueezeNet (both), Tiny Darknet, the
/// MobileNet width family, and the SqueezeNext depth/width family.
std::vector<Model> figure4_models();

}  // namespace sqz::nn::zoo
