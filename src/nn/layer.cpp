#include "nn/layer.h"

namespace sqz::nn {

const char* layer_kind_name(LayerKind kind) noexcept {
  switch (kind) {
    case LayerKind::Input: return "input";
    case LayerKind::Conv: return "conv";
    case LayerKind::FullyConnected: return "fc";
    case LayerKind::MaxPool: return "maxpool";
    case LayerKind::AvgPool: return "avgpool";
    case LayerKind::GlobalAvgPool: return "gavgpool";
    case LayerKind::ReLU: return "relu";
    case LayerKind::Concat: return "concat";
    case LayerKind::Add: return "add";
  }
  return "?";
}

std::int64_t Layer::taps_per_output() const noexcept {
  if (!is_conv()) return 0;
  const std::int64_t cin_per_group = in_shape.c / conv.groups;
  return static_cast<std::int64_t>(conv.kh) * conv.kw * cin_per_group;
}

std::int64_t Layer::macs() const noexcept {
  switch (kind) {
    case LayerKind::Conv:
      return out_shape.elems() * taps_per_output();
    case LayerKind::FullyConnected:
      return in_shape.elems() * fc.out_features;
    default:
      return 0;
  }
}

std::int64_t Layer::params() const noexcept {
  switch (kind) {
    case LayerKind::Conv: {
      const std::int64_t cin_per_group = in_shape.c / conv.groups;
      const std::int64_t weights =
          static_cast<std::int64_t>(conv.out_channels) * conv.kh * conv.kw * cin_per_group;
      return weights + conv.out_channels;  // + bias
    }
    case LayerKind::FullyConnected:
      return in_shape.elems() * fc.out_features + fc.out_features;
    default:
      return 0;
  }
}

}  // namespace sqz::nn
