#include "util/csv.h"

#include "util/strings.h"

namespace sqz::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out += "\"";
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) os_ << ',';
    os_ << csv_escape(fields[i]);
  }
  os_ << '\n';
  ++rows_;
}

void CsvWriter::write_numeric_row(const std::string& label,
                                  const std::vector<double>& values, int precision) {
  std::vector<std::string> fields;
  fields.reserve(values.size() + 1);
  fields.push_back(label);
  for (double v : values) fields.push_back(format("%.*f", precision, v));
  write_row(fields);
}

}  // namespace sqz::util
