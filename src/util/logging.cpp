#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace sqz::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

namespace detail {

LogStatement::~LogStatement() {
  if (!enabled()) return;
  std::fprintf(stderr, "[sqz %s] %s\n", log_level_name(level_), stream_.str().c_str());
}

}  // namespace detail

}  // namespace sqz::util
