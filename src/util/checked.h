// Overflow-checked 64-bit arithmetic for workload accounting.
//
// MAC, parameter, and cycle totals are products of five-or-more tensor
// dimensions; a hostile or typo'd model description can push them past
// INT64_MAX, and plain arithmetic would wrap silently — a sweep would then
// rank a nonsense design "fastest". These helpers wrap the compiler
// overflow intrinsics and throw std::overflow_error with the offending
// operands instead, so huge configurations fail loudly at the accumulation
// site (nn/analysis, sim/counters) rather than corrupting results.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace sqz::util {

[[noreturn]] inline void throw_overflow(const char* op, std::int64_t a,
                                        std::int64_t b, const char* what) {
  throw std::overflow_error(std::string(what ? what : "checked arithmetic") +
                            ": " + std::to_string(a) + " " + op + " " +
                            std::to_string(b) + " overflows int64");
}

/// a + b, throwing std::overflow_error (naming `what`) on wraparound.
inline std::int64_t checked_add(std::int64_t a, std::int64_t b,
                                const char* what = nullptr) {
  std::int64_t r;
  if (__builtin_add_overflow(a, b, &r)) throw_overflow("+", a, b, what);
  return r;
}

/// a * b, throwing std::overflow_error (naming `what`) on wraparound.
inline std::int64_t checked_mul(std::int64_t a, std::int64_t b,
                                const char* what = nullptr) {
  std::int64_t r;
  if (__builtin_mul_overflow(a, b, &r)) throw_overflow("*", a, b, what);
  return r;
}

}  // namespace sqz::util
