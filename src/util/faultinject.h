// Deterministic fault injection for I/O seams.
//
// Production code routes risky operations (socket reads, cache-file writes,
// accept loops) through named *fault points*. When nothing is armed — the
// normal case — a fault point costs one relaxed atomic load. Tests (or an
// operator, via the SQZ_FAULT environment variable) arm a site with an
// action and a shot count, and the next N visits to that site observe the
// injected failure: an errno, a truncated transfer, or a stall. Because the
// registry is explicit and counted, chaos tests are deterministic: the same
// arming always fails the same operations the same number of times.
//
//   util::fault::arm("simcache.write", util::fault::make_errno(ENOSPC), 3);
//   ... the next three disk_put calls behave as if the disk were full ...
//
// Sites are ad-hoc strings named at the call site. The membership/HA drills
// (serve/workerpool.h, serve/server.h) add "coord.register" (refuse a
// worker registration), "coord.lease" (force-expire one lease), and
// "coord.takeover" (fail a standby's primary probe) alongside the older
// serve/coordinator sites ("coord.health", "coord.dispatch", "coord.steal")
// and the I/O sites ("serve.accept", "serve.recv", "serve.send",
// "simcache.*", "sweepjournal.append", "dse.point").
//
// Env spec (parsed once at process start):
//   SQZ_FAULT="site=kind[:arg][*times][;site=...]"
//   kinds: errno:<ENOSPC|EMFILE|ENFILE|EIO|integer>, short:<bytes>,
//          stall:<millis>. `*times` defaults to 1.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace sqz::util::fault {

enum class Kind {
  None,     ///< Site not armed (or shots exhausted): proceed normally.
  Errno,    ///< Fail the operation with `err` (the syscall is not made).
  ShortIo,  ///< Cap the transfer at `bytes` (short read / partial write).
  Stall,    ///< Sleep `millis` before proceeding normally.
};

struct Action {
  Kind kind = Kind::None;
  int err = 0;            ///< Errno to report (Kind::Errno).
  std::size_t bytes = 0;  ///< Transfer cap (Kind::ShortIo).
  int millis = 0;         ///< Stall duration (Kind::Stall).

  explicit operator bool() const { return kind != Kind::None; }
};

inline Action make_errno(int err) { return Action{Kind::Errno, err, 0, 0}; }
inline Action make_short(std::size_t bytes) {
  return Action{Kind::ShortIo, 0, bytes, 0};
}
inline Action make_stall(int millis) {
  return Action{Kind::Stall, 0, 0, millis};
}

namespace detail {
extern std::atomic<int> g_armed_sites;  ///< Registry size; 0 = all disarmed.
}

/// True when at least one site is armed. This is the only cost a fault
/// point pays in production: one relaxed atomic load and a branch.
inline bool enabled() noexcept {
  return detail::g_armed_sites.load(std::memory_order_relaxed) != 0;
}

/// Consult the registry for `site`. When the site is armed with shots
/// remaining, consumes one shot, bumps the site's hit counter, and returns
/// the action (a Stall action sleeps *inside* this call, so callers only
/// need to handle Errno and ShortIo). Otherwise returns Kind::None.
Action consume(const char* site) noexcept;

/// Shorthand used at call sites: registry consult gated on enabled().
inline Action at(const char* site) noexcept {
  return enabled() ? consume(site) : Action{};
}

/// Arm `site` to fire `times` times (replacing any previous arming).
void arm(const std::string& site, Action action, int times = 1);

/// Disarm one site / every site. reset() also clears hit counters.
void disarm(const std::string& site);
void reset();

/// Times `site` actually fired since it was last armed via arm()/spec.
std::uint64_t hits(const std::string& site);

/// Shots left on `site`; 0 when disarmed or exhausted.
int remaining(const std::string& site);

/// Parse and apply an SQZ_FAULT-style spec. On a malformed spec nothing is
/// armed, `error` (if non-null) explains why, and false is returned.
bool arm_from_spec(const std::string& spec, std::string* error = nullptr);

}  // namespace sqz::util::fault
