// FNV-1a 64-bit — the content-address hash shared by the serving cache
// (serve/simcache.h) and the sweep journal (core/sweepjournal.h). One
// definition so cache keys and journal checksums can never drift apart.
#pragma once

#include <cstdint>
#include <string_view>

namespace sqz::util {

inline std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;  // FNV prime
  }
  return h;
}

}  // namespace sqz::util
