// ASCII table renderer. Every benchmark binary prints its paper table/figure
// through this so the output is uniform and diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sqz::util {

enum class Align { Left, Right };

/// A simple column-aligned text table.
///
///   Table t("Table 2: Speedups");
///   t.set_header({"Network", "vs OS", "vs WS"});
///   t.add_row({"SqueezeNet v1.0", "1.26x", "2.06x"});
///   t.print(std::cout);
class Table {
 public:
  Table() = default;
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  /// Alignment per column; default is Left for column 0, Right otherwise.
  void set_alignments(std::vector<Align> alignments);
  void add_row(std::vector<std::string> row);
  /// Horizontal separator before the next added row.
  void add_separator();

  std::size_t row_count() const noexcept { return rows_.size(); }
  std::string to_string() const;
  void print(std::ostream& os) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  Align alignment_for(std::size_t col) const;

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> alignments_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace sqz::util
