#include "util/threadpool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>

namespace sqz::util {

namespace {

// Set for the lifetime of a pool worker thread; nested parallel_for_index
// calls from inside a task detect it and run inline instead of enqueueing
// (a worker blocking on its own pool's queue could deadlock).
thread_local bool tl_pool_worker = false;

}  // namespace

// Shared state of one parallel_for_index call. Runners (workers and the
// caller) pull indices from `next` until exhausted or a failure is recorded.
struct ThreadPool::Batch {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};

  /// Per-index capture mode (parallel_for_index_capture): exceptions land in
  /// their own slot and the batch keeps running instead of aborting. Each
  /// slot is written by exactly one runner (the one that claimed the index),
  /// so no lock is needed beyond the batch join.
  std::vector<std::exception_ptr>* captured = nullptr;

  std::mutex mu;
  std::condition_variable done_cv;
  int pending = 0;  ///< Enqueued runner tasks not yet finished.
  std::exception_ptr error;

  void run_indices() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        (*fn)(i);
      } catch (...) {
        if (captured) {
          (*captured)[i] = std::current_exception();
          continue;  // isolate: the rest of the batch still runs
        }
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
        return;
      }
    }
  }
};

ThreadPool::ThreadPool(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {
  workers_.reserve(static_cast<std::size_t>(jobs_ - 1));
  for (int i = 0; i < jobs_ - 1; ++i)
    workers_.emplace_back([this] { worker_main(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_main() {
  tl_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

// Fan a prepared batch out to the workers, participate from the caller
// thread, and block until every runner has finished.
void ThreadPool::run_batch(const std::shared_ptr<Batch>& batch) {
  // One runner per worker that could usefully participate; the caller is
  // runner number `runners + 1`.
  const std::size_t runners =
      std::min(workers_.size(), batch->n > 1 ? batch->n - 1 : std::size_t{0});
  batch->pending = static_cast<int>(runners);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t r = 0; r < runners; ++r) {
      queue_.emplace_back([batch] {
        batch->run_indices();
        {
          std::lock_guard<std::mutex> batch_lock(batch->mu);
          --batch->pending;
        }
        batch->done_cv.notify_one();
      });
    }
  }
  work_cv_.notify_all();

  batch->run_indices();

  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done_cv.wait(lock, [&] { return batch->pending == 0; });
}

void ThreadPool::parallel_for_index(std::size_t n,
                                    const std::function<void(std::size_t)>& fn) {
  // Inline paths: trivial batches, a one-job pool, or a nested call from a
  // worker thread. Exceptions propagate naturally.
  if (n == 0) return;
  if (jobs_ == 1 || n == 1 || tl_pool_worker) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  run_batch(batch);
  if (batch->error) std::rethrow_exception(batch->error);
}

std::size_t ThreadPool::parallel_for_index_capture(
    std::size_t n, const std::function<void(std::size_t)>& fn,
    std::vector<std::exception_ptr>& errors) {
  errors.assign(n, nullptr);
  if (n == 0) return 0;
  if (jobs_ == 1 || n == 1 || tl_pool_worker) {
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  } else {
    auto batch = std::make_shared<Batch>();
    batch->n = n;
    batch->fn = &fn;
    batch->captured = &errors;
    run_batch(batch);
  }
  std::size_t failures = 0;
  for (const std::exception_ptr& e : errors)
    if (e) ++failures;
  return failures;
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {  // one-job pool: degenerate to a direct call
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

namespace {

std::mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global_pool;  // guarded by g_global_mu
int g_global_override = 0;                  // guarded by g_global_mu; 0 = auto

}  // namespace

int ThreadPool::parse_jobs(const std::string& text, const std::string& what) {
  const auto bad = [&](const std::string& why) {
    throw std::invalid_argument(what + " must be a positive integer, got '" +
                                text + "' (" + why + ")");
  };
  if (text.empty()) bad("empty");
  std::size_t i = 0;
  if (text[0] == '+' || text[0] == '-') i = 1;
  if (i == text.size()) bad("no digits");
  long long v = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') bad("not a number");
    v = v * 10 + (c - '0');
    if (v > 1 << 20) bad("out of range");
  }
  if (text[0] == '-') bad("negative");
  if (v == 0) bad("zero");
  return static_cast<int>(v);
}

int ThreadPool::default_jobs() {
  if (const char* env = std::getenv("SQZ_JOBS"))
    return parse_jobs(env, "SQZ_JOBS");
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (!g_global_pool) {
    const int jobs = g_global_override > 0 ? g_global_override : default_jobs();
    g_global_pool = std::make_unique<ThreadPool>(jobs);
  }
  return *g_global_pool;
}

void ThreadPool::set_global_jobs(int jobs) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  g_global_override = jobs > 0 ? jobs : 0;
  const int want = g_global_override > 0 ? g_global_override : default_jobs();
  if (g_global_pool && g_global_pool->jobs() == want) return;
  g_global_pool.reset();  // next global() call rebuilds at the new size
}

int ThreadPool::global_jobs() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_pool) return g_global_pool->jobs();
  return g_global_override > 0 ? g_global_override : default_jobs();
}

}  // namespace sqz::util
